(* unroll-ml: command-line front end for the CGO 2005 reproduction.

   Subcommands mirror the workflow of the paper: generate and label the
   workload ([dataset]), inspect a single loop through the whole pipeline
   ([inspect]), run any table/figure reproduction ([experiment]), and train
   or query predictors ([predict]). *)

open Cmdliner

let config_of ~fast ~scale ~seed ~machine ~runs ~noise ~jobs =
  let base = if fast then Config.fast else Config.default in
  let machine =
    match Machine.by_name machine with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown machine '%s'; available:%s\n" machine
        (String.concat "" (List.map (fun m -> " " ^ m.Machine.mach_name) Machine.all));
      exit 2
  in
  {
    base with
    Config.scale = Option.value scale ~default:base.Config.scale;
    seed = Option.value seed ~default:base.Config.seed;
    machine;
    runs = Option.value runs ~default:base.Config.runs;
    noise = Option.value noise ~default:base.Config.noise;
    jobs = max 1 (match jobs with Some 0 -> Parallel.default_jobs () | Some j -> j | None -> base.Config.jobs);
  }

(* Shared flags *)
let fast_flag =
  Arg.(value & flag & info [ "fast" ] ~doc:"Use the reduced configuration (same as FAST=1).")

let scale_opt =
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"S" ~doc:"Workload scale multiplier.")

let seed_opt =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Master workload seed.")

let machine_opt =
  Arg.(value & opt string "itanium2" & info [ "machine" ] ~docv:"NAME" ~doc:"Target machine model.")

let runs_opt =
  Arg.(value & opt (some int) None & info [ "runs" ] ~docv:"N" ~doc:"Measurement repetitions per configuration.")

let noise_opt =
  Arg.(value & opt (some float) None & info [ "noise" ] ~docv:"F" ~doc:"Relative measurement noise.")

let jobs_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for labelling sweeps and cross-validation loops (results \
           are identical for any value; 0 = all cores, or the UNROLLML_JOBS \
           environment variable when set).")

let telemetry_flag =
  Arg.(
    value
    & flag
    & info [ "telemetry" ]
        ~doc:"Print per-pass compile telemetry (wall time, op deltas, cache hits) at exit.")

let config_term =
  Term.(
    const (fun fast scale seed machine runs noise jobs ->
        config_of ~fast ~scale ~seed ~machine ~runs ~noise ~jobs)
    $ fast_flag $ scale_opt $ seed_opt $ machine_opt $ runs_opt $ noise_opt $ jobs_opt)

(* Rates derived from the raw counters — the table above only shows the
   absolute counts.  A section is omitted when its denominator is zero
   (e.g. no simulation ran, or the dependence-graph memo was disabled). *)
let rate_summary t =
  let c pass name = Telemetry.counter t ~pass name in
  let buf = Buffer.create 256 in
  let rate label num den =
    if den > 0 then
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %5.1f%%  (%d of %d)\n" label
           (100.0 *. float_of_int num /. float_of_int den)
           num den)
  in
  let hit_rate label pass prefix =
    let h = c pass (prefix ^ "-hits") and m = c pass (prefix ^ "-misses") in
    rate label h (h + m)
  in
  hit_rate "L1d hit rate" "simulator" "l1d";
  hit_rate "L1i hit rate" "simulator" "l1i";
  hit_rate "L2 hit rate" "simulator" "l2";
  let is = c "simulator" "iters-simulated" and iff = c "simulator" "iters-fast-forwarded" in
  rate "iterations fast-forwarded" iff (is + iff);
  let es = c "simulator" "entries-simulated" and sk = c "simulator" "entries-skipped" in
  rate "entries skipped" sk (es + sk);
  let dh = c "deps-memo" "hits" and dm = c "deps-memo" "misses" in
  rate "deps-memo hit rate" dh (dh + dm);
  if Buffer.length buf = 0 then "" else "derived rates\n" ^ Buffer.contents buf

let with_telemetry telemetry f =
  Fun.protect
    ~finally:(fun () ->
      if telemetry then begin
        print_string (Telemetry.to_table Telemetry.global);
        print_string (rate_summary Telemetry.global)
      end)
    f

(* dataset *)
let dataset_cmd =
  let output =
    Arg.(value & opt string "dataset.csv" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let swp =
    Arg.(value & flag & info [ "swp" ] ~doc:"Label with software pipelining enabled.")
  in
  let run config output swp telemetry =
    with_telemetry telemetry (fun () ->
        let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
        let labeled = Labeling.collect ~jobs:config.Config.jobs config ~swp benchmarks in
        let ds = Labeling.to_dataset config labeled in
        Dataset.to_csv ds output;
        Printf.printf "wrote %d labelled loops (of %d measured) to %s\n" (Dataset.size ds)
          (Array.length labeled) output)
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate the 72-benchmark suite, label every loop, write a CSV.")
    Term.(const run $ config_term $ output $ swp $ telemetry_flag)

(* experiment *)
let experiment_cmd =
  let which =
    let all = [ "fig1"; "fig2"; "fig3"; "table2"; "table3"; "table4"; "fig4"; "fig5"; "joint"; "summary"; "ablations"; "all" ] in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun s -> (s, s)) all))) None
      & info [] ~docv:"EXPERIMENT" ~doc:"One of fig1 fig2 fig3 table2 table3 table4 fig4 fig5 joint summary ablations all.")
  in
  let run config which telemetry =
    with_telemetry telemetry (fun () ->
        let env = Experiments.build_env config in
        let out =
          match which with
          | "fig1" -> Experiments.fig1 env
          | "fig2" -> Experiments.fig2 env
          | "fig3" -> Experiments.fig3 env
          | "table2" -> Experiments.table2 env
          | "table3" -> Experiments.table3 env
          | "table4" -> Experiments.table4 env
          | "fig4" -> Experiments.fig4 env
          | "fig5" -> Experiments.fig5 env
          | "joint" -> Experiments.joint env
          | "summary" -> Experiments.summary env
          | "ablations" -> Experiments.ablations env
          | _ -> Experiments.all env
        in
        print_string out)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce a table or figure from the paper.")
    Term.(const run $ config_term $ which $ telemetry_flag)

(* inspect *)
let inspect_cmd =
  let kernel =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KERNEL" ~doc:"Kernel name (see `unroll-ml kernels`).")
  in
  let trip =
    Arg.(value & opt int 512 & info [ "trip" ] ~docv:"N" ~doc:"Runtime trip count.")
  in
  let factor =
    Arg.(value & opt (some int) None & info [ "unroll" ] ~docv:"U" ~doc:"Unroll factor to show (default: sweep all).")
  in
  let swp = Arg.(value & flag & info [ "swp" ] ~doc:"Software pipelining enabled.") in
  let run config kernel trip factor swp telemetry =
    match List.assoc_opt kernel Kernels.all with
    | None ->
      Printf.eprintf "unknown kernel '%s'; try `unroll-ml kernels`\n" kernel;
      exit 2
    | Some maker ->
      with_telemetry telemetry @@ fun () ->
      let loop = maker ~name:kernel ~trip in
      Format.printf "%a@." Pretty.pp_loop loop;
      let features = Features.extract config.Config.machine loop in
      Format.printf "features:@.";
      Array.iteri
        (fun i v -> Format.printf "  %-26s %g@." Features.names.(i) v)
        features;
      let factors = match factor with Some u -> [ u ] | None -> List.init 8 (fun i -> i + 1) in
      List.iter
        (fun u ->
          let exe = Simulator.compile config.Config.machine ~swp loop u in
          let state = Simulator.create_state config.Config.machine in
          ignore (Simulator.run state exe);
          let cycles = Simulator.run state exe in
          let kind =
            match exe.Simulator.schedules with
            | (s, _, _) :: _ -> begin
              match s.Schedule.kind with
              | Schedule.Straight -> Printf.sprintf "straight len=%d" s.Schedule.length
              | Schedule.Pipelined { ii; stages } -> Printf.sprintf "pipelined II=%d stages=%d" ii stages
            end
            | [] -> "?"
          in
          Format.printf "u=%d: %d cycles (%s, %d spills, %dB code)@." u cycles kind
            exe.Simulator.total_spills exe.Simulator.total_code_bytes)
        factors;
      let orc = Orc_heuristic.predict config.Config.machine ~swp loop in
      Format.printf "ORC heuristic picks u=%d@." orc
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Compile and simulate one kernel across unroll factors.")
    Term.(const run $ config_term $ kernel $ trip $ factor $ swp $ telemetry_flag)

(* export *)
let export_cmd =
  let output =
    Arg.(value & opt string "loops.txt" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let what =
    Arg.(
      value
      & opt (enum [ ("suite", `Suite); ("kernels", `Kernels) ]) `Kernels
      & info [ "what" ] ~docv:"WHAT" ~doc:"'kernels' (default) or the full 'suite'.")
  in
  let run config output what =
    let loops =
      match what with
      | `Kernels ->
        List.map (fun (name, maker) -> maker ~name ~trip:256) Kernels.all
      | `Suite ->
        List.map snd
          (Suite.all_loops (Suite.full ~scale:config.Config.scale ~seed:config.Config.seed))
    in
    let oc = open_out output in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc (Loop_text.to_string l);
            output_char oc '\n')
          loops);
    Printf.printf "wrote %d loops to %s\n" (List.length loops) output
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write loops in the textual format (the paper's released raw loop data).")
    Term.(const run $ config_term $ output $ what)

(* inspect-file *)
let inspect_file_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .loop file (see `unroll-ml export`).")
  in
  let swp = Arg.(value & flag & info [ "swp" ] ~doc:"Software pipelining enabled.") in
  let run config file swp =
    let contents =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Loop_text.parse_many contents with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 2
    | Ok loops ->
      List.iter
        (fun loop ->
          Format.printf "%a@." Pretty.pp_loop loop;
          for u = 1 to Unroll.max_factor do
            let exe = Simulator.compile config.Config.machine ~swp loop u in
            let state = Simulator.create_state config.Config.machine in
            ignore (Simulator.run state exe);
            let cycles = Simulator.run state exe in
            Format.printf "  u=%d: %d cycles@." u cycles
          done;
          Format.printf "  ORC heuristic picks u=%d@.@."
            (Orc_heuristic.predict config.Config.machine ~swp loop))
        loops
  in
  Cmd.v
    (Cmd.info "inspect-file" ~doc:"Parse loops from the textual format and sweep them.")
    Term.(const run $ config_term $ file $ swp)

(* fuzz *)
let fuzz_cmd =
  let budget =
    Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let fuzz_seed =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed.  The whole report, shrunk reproducers included, is a pure \
             function of (seed, budget) — identical at any $(b,--jobs) setting.")
  in
  let corpus =
    Arg.(
      value
      & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Reproducer corpus: every .loop file is replayed before the campaign, and \
             shrunk crashes are serialised back into it.")
  in
  let run seed budget corpus jobs telemetry =
    with_telemetry telemetry @@ fun () ->
    let jobs =
      max 1 (match jobs with Some 0 -> Parallel.default_jobs () | Some j -> j | None -> 1)
    in
    let replay_violations =
      match Fuzz.Driver.load_corpus corpus with
      | Error e ->
        Printf.eprintf "corpus: %s\n" e;
        exit 2
      | Ok entries ->
        let violations =
          List.concat_map
            (fun (file, repro) ->
              List.map
                (fun (oracle, detail) ->
                  Printf.printf "corpus %s [%s]: %s\n" file oracle detail;
                  (file, oracle, detail))
                (Fuzz.Driver.check_repro repro))
            entries
        in
        Printf.printf "corpus replay: %d file(s), %d violation(s)\n" (List.length entries)
          (List.length violations);
        violations
    in
    let report = Fuzz.Driver.run ~jobs ~budget ~seed () in
    List.iter
      (fun (crash : Fuzz.Driver.crash) ->
        let path = Fuzz.Driver.write_crash ~dir:corpus crash in
        Printf.printf "wrote reproducer %s\n" path)
      report.Fuzz.Driver.crashes;
    print_string (Fuzz.Driver.summary report);
    print_string (Fuzz.Driver.coverage_block report);
    if
      replay_violations <> []
      || report.Fuzz.Driver.crashes <> []
      || report.Fuzz.Driver.digest_collisions <> []
    then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate adversarial loops, check every transform and \
          the simulator against the reference interpreter, shrink and serialise any \
          failure.")
    Term.(const run $ fuzz_seed $ budget $ corpus $ jobs_opt $ telemetry_flag)

(* verify *)
let verify_cmd =
  let corpus =
    Arg.(
      value
      & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Reproducer corpus to verify (the default mode): every .loop file is \
             checked at its recorded coordinates.")
  in
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Verify loops parsed from a .loop file instead of the corpus.")
  in
  let factor =
    Arg.(
      value
      & opt (some int) None
      & info [ "factor" ] ~docv:"U"
          ~doc:"Unroll factor for FILE mode (default: sweep 1..8).")
  in
  let fuzz_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Verify N freshly generated fuzz cases at their own coordinates; failure \
             reproducers are written to $(b,--out).")
  in
  let fuzz_seed =
    Arg.(
      value & opt int 42
      & info [ "fuzz-seed" ] ~docv:"N" ~doc:"Campaign seed for $(b,--fuzz) mode.")
  in
  let out =
    Arg.(
      value
      & opt string "verify-failures"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory receiving failure reproducers and reports in $(b,--fuzz) mode.")
  in
  let write_failure ~out (c : Fuzz.Gen.case) report =
    if not (Sys.file_exists out) then Unix.mkdir out 0o755;
    let base = Filename.concat out (Printf.sprintf "verify-symbolic-%04d" c.Fuzz.Gen.id) in
    let write path contents =
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
    in
    write (base ^ ".loop") (Fuzz.Driver.repro_to_string c ~oracle:"verify-symbolic");
    write (base ^ ".report.txt") (Verify.Validate.report_to_string report ^ "\n");
    base ^ ".loop"
  in
  let run config corpus file factor fuzz_n fuzz_seed out telemetry =
    with_telemetry telemetry @@ fun () ->
    let tl = Telemetry.global in
    let failures = ref 0 in
    let show ?header report =
      Option.iter print_endline header;
      print_endline (Verify.Validate.report_to_string report);
      if not (Verify.Validate.report_ok report) then incr failures
    in
    (match (fuzz_n, file) with
    | Some n, _ ->
      let jobs = max 1 config.Config.jobs in
      let reports =
        Parallel.tabulate ~jobs n (fun id ->
            let c = Fuzz.Gen.case ~seed:fuzz_seed ~id () in
            let r =
              Verify.Validate.verify_case ~telemetry:tl
                ~coords:[ (c.Fuzz.Gen.swp, c.Fuzz.Gen.rle) ]
                ~machine:c.Fuzz.Gen.machine c.Fuzz.Gen.loop ~factor:c.Fuzz.Gen.factor
            in
            (c, r))
      in
      Array.iter
        (fun (c, r) ->
          if not (Verify.Validate.report_ok r) then begin
            show ~header:(Printf.sprintf "== fuzz case %d" c.Fuzz.Gen.id) r;
            Printf.printf "wrote reproducer %s\n" (write_failure ~out c r)
          end)
        reports;
      Printf.printf "verified %d fuzz case(s) (seed %d): %d failure(s)\n" n fuzz_seed
        !failures
    | None, Some f ->
      let contents =
        let ic = open_in_bin f in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Loop_text.parse_many contents with
      | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 2
      | Ok loops ->
        let factors =
          match factor with
          | Some u -> [ u ]
          | None -> List.init Unroll.max_factor (fun i -> i + 1)
        in
        List.iter
          (fun loop ->
            List.iter
              (fun u ->
                show
                  (Verify.Validate.verify_case ~telemetry:tl
                     ~machine:config.Config.machine loop ~factor:u))
              factors)
          loops)
    | None, None -> begin
      match Fuzz.Driver.load_corpus corpus with
      | Error e ->
        Printf.eprintf "corpus: %s\n" e;
        exit 2
      | Ok entries ->
        List.iter
          (fun (fname, (repro : Fuzz.Driver.repro)) ->
            let c = repro.Fuzz.Driver.rcase in
            show ~header:("== " ^ fname)
              (Verify.Validate.verify_case ~telemetry:tl
                 ~coords:[ (c.Fuzz.Gen.swp, c.Fuzz.Gen.rle) ]
                 ~machine:c.Fuzz.Gen.machine c.Fuzz.Gen.loop ~factor:c.Fuzz.Gen.factor))
          entries;
        Printf.printf "corpus verify: %d file(s), %d not proved\n" (List.length entries)
          !failures
    end);
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Bounded translation validation: symbolically prove unroll, RLE and the full \
          pipeline observationally equivalent to the source loop for every trip count \
          up to a bound, over the corpus, a .loop file, or generated fuzz cases.")
    Term.(
      const run $ config_term $ corpus $ file $ factor $ fuzz_n $ fuzz_seed $ out
      $ telemetry_flag)

(* train *)
let train_cmd =
  let output =
    Arg.(value & opt string "model.artifact" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Artifact output path.")
  in
  let swp =
    Arg.(value & flag & info [ "swp" ] ~doc:"Label with software pipelining enabled.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Crash-safe label journal.  Measurements are appended as they complete; \
             re-running with the same journal resumes the sweep, skipping every \
             loop already journalled.")
  in
  let model =
    Arg.(
      value
      & opt
          (enum
             [ ("nn", Train.Nn); ("svm", Train.Svm); ("mlp", Train.Mlp); ("best", Train.Best) ])
          Train.Best
      & info [ "model" ] ~docv:"M"
          ~doc:
            "Which learner to package: 'nn', 'svm', 'mlp', or 'best' (highest \
             cross-validation accuracy; default).")
  in
  let joint =
    Arg.(
      value
      & flag
      & info [ "joint" ]
          ~doc:
            "Train over the joint (unroll factor x SWP) decision space: sweep the \
             suite at both SWP settings and fit a 16-way classifier.  Exclusive \
             with --swp and --follow.")
  in
  let follow =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"FILE"
          ~doc:
            "Online training: tail a label journal another process is writing \
             (see {!--journal}) and refit as sweeps complete, instead of \
             measuring in-process.  Each refit rewrites --output atomically and \
             appends a provenance line to OUTPUT.lineage.")
  in
  let every =
    Arg.(
      value
      & opt int 64
      & info [ "every" ] ~docv:"N"
          ~doc:"With --follow: refit after every N newly completed sweeps (default 64).")
  in
  let idle_exit =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-exit" ] ~docv:"S"
          ~doc:
            "With --follow: once the journal has been quiet for S seconds, emit a \
             final artifact and exit (default: follow forever).")
  in
  (* Online training: tail a journal another process is writing, refit every
     [--every] completed sweeps, and atomically replace the artifact so a
     concurrent `ctl reload` can never observe a half-written file.  Each
     emitted version appends a lineage line (version, parent digest, own
     digest, dataset digest) to OUTPUT.lineage — the digest chain that ties a
     served model back through every generation to its training data.  The
     digests live in the sidecar, not the artifact, so an online artifact
     stays bit-identical to the batch retrain over the same journal. *)
  let run_follow config ~output ~swp ~model ~path ~every ~idle_exit =
    let fl =
      match Label_store.follow path with
      | Ok fl -> fl
      | Error e ->
        Printf.eprintf "follow: %s\n" e;
        exit 2
    in
    let online = Train.Online.create ~progress:false config ~swp ~model in
    let version = ref 0 in
    let parent = ref "-" in
    let pending = ref 0 in
    (* Completed sweeps not yet covered by an emitted artifact. *)
    let emit () =
      match Train.Online.retrain online with
      | Error e ->
        Printf.eprintf "follow: not training yet: %s\n%!" e;
        pending := 0
      | Ok (artifact, report) ->
        incr version;
        let digest = Digest.to_hex (Digest.string (Model_artifact.to_string artifact)) in
        let tmp = Printf.sprintf "%s.tmp.%d" output (Unix.getpid ()) in
        Model_artifact.save artifact tmp;
        Sys.rename tmp output;
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (output ^ ".lineage") in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Printf.fprintf oc "v%d parent %s digest %s dataset %s\n" !version !parent
              digest report.Train.dataset_digest);
        Printf.printf "v%d %s: %s model, %d/%d sweeps complete (%d loops kept)\n%!"
          !version digest report.Train.chosen
          (Train.Online.complete_sweeps online)
          (Train.Online.total_sweeps online)
          report.Train.kept;
        parent := digest;
        pending := 0
    in
    let stop = ref false in
    Fun.protect
      ~finally:(fun () -> Label_store.close_follower fl)
      (fun () ->
        while not !stop do
          match Label_store.follow_next ?timeout:idle_exit fl with
          | Some (key, factor, cycles) ->
            if Train.Online.ingest online ~key ~factor ~cycles then begin
              incr pending;
              if !pending >= every then emit ()
            end
          | None ->
            (* Journal quiet past the idle deadline: flush and exit. *)
            if !pending > 0 || !version = 0 then emit ();
            stop := true
        done);
    if Train.Online.unknown_records online > 0 then
      Printf.eprintf "follow: ignored %d foreign records\n%!"
        (Train.Online.unknown_records online);
    if !version = 0 then begin
      Printf.eprintf "follow: no artifact emitted (%d/%d sweeps complete)\n"
        (Train.Online.complete_sweeps online)
        (Train.Online.total_sweeps online);
      exit 1
    end
  in
  let run config output swp joint journal model follow every idle_exit telemetry =
    with_telemetry telemetry (fun () ->
        if joint && swp then begin
          (* --joint sweeps both SWP settings itself; a pinned setting
             contradicts it. *)
          Printf.eprintf "train: --joint and --swp are exclusive\n";
          exit 2
        end;
        match follow with
        | Some path ->
          if joint then begin
            Printf.eprintf "train: --joint is not supported with --follow\n";
            exit 2
          end;
          if journal <> None then begin
            Printf.eprintf "train: --follow and --journal are exclusive\n";
            exit 2
          end;
          (try run_follow config ~output ~swp ~model ~path ~every:(max 1 every) ~idle_exit
           with Label_store.Corrupt e ->
             Printf.eprintf "follow: %s\n" e;
             exit 1)
        | None ->
          let journal =
            match journal with
            | None -> None
            | Some path -> (
              match Label_store.open_ path with
              | Ok j ->
                if Label_store.recovered_records j > 0 then
                  Printf.eprintf "journal: resumed %d records from %s (%d torn bytes discarded)\n%!"
                    (Label_store.recovered_records j) path (Label_store.truncated_bytes j);
                Some j
              | Error e ->
                Printf.eprintf "journal: %s\n" e;
                exit 2)
          in
          Fun.protect
            ~finally:(fun () -> Option.iter Label_store.close journal)
            (fun () ->
              let artifact, report =
                if joint then Train.run_joint ~progress:true ?journal config ~model
                else Train.run ~progress:true ?journal config ~swp ~model
              in
              Model_artifact.save artifact output;
              Printf.printf "trained %s model (%s space) on %d loops (%d measured), %d features\n"
                report.Train.chosen
                (Model_artifact.label_space_name artifact.Model_artifact.label_space)
                report.Train.kept report.Train.measured
                (Array.length report.Train.features);
              Printf.printf "cross-validation accuracy: nn %.3f, svm %.3f, mlp %.3f\n"
                report.Train.nn_loocv report.Train.svm_loocv report.Train.mlp_loocv;
              Printf.printf "dataset digest: %s\n" report.Train.dataset_digest;
              Printf.printf "wrote %s\n" output))
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Full training pipeline: sweep the suite (journalled, resumable), select \
          features, fit and cross-validate both learners, write a versioned model \
          artifact.  With --follow, tail a live journal instead and refit \
          incrementally as sweeps complete.")
    Term.(
      const run $ config_term $ output $ swp $ joint $ journal $ model $ follow $ every
      $ idle_exit $ telemetry_flag)

(* predict *)
let predict_cmd =
  let artifact =
    Arg.(
      value
      & opt (some file) None
      & info [ "artifact" ] ~docv:"FILE" ~doc:"Model artifact written by `unroll-ml train`.")
  in
  let remote =
    Arg.(
      value
      & opt (some string) None
      & info [ "remote" ] ~docv:"HOST:PORT"
          ~doc:
            "Query a running `unroll-ml serve` instead of loading an artifact \
             locally.  Output is identical to the local path, so the two can be \
             bit-diffed.")
  in
  let kernels =
    Arg.(value & flag & info [ "kernels" ] ~doc:"Predict for the built-in kernel loops.")
  in
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .loop file (see `unroll-ml export`).")
  in
  let output =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path ('-' = stdout).")
  in
  let run config artifact remote kernels file output telemetry =
    with_telemetry telemetry (fun () ->
        let loops =
          match (kernels, file) with
          | true, None -> List.map (fun (name, maker) -> maker ~name ~trip:256) Kernels.all
          | false, Some path -> begin
            let contents =
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            match Loop_text.parse_many contents with
            | Ok loops -> loops
            | Error e ->
              Printf.eprintf "parse error: %s\n" e;
              exit 2
          end
          | _ ->
            Printf.eprintf "predict: give exactly one of --kernels or a .loop FILE\n";
            exit 2
        in
        (* Decisions are [(factor, swp)]; [swps] stays [None] unless a local
           joint-space artifact answered, so factor-space output (local and
           remote) is byte-identical to what it always was. *)
        let factors, swps =
          match (remote, artifact) with
          | Some addr, _ -> begin
            (* The remote path speaks the same Wire codec as the server and
               the load bench; responses come back in request order. *)
            let client =
              match Serve_client.connect addr with
              | Ok c -> c
              | Error e ->
                Printf.eprintf "remote: %s\n" e;
                exit 2
            in
            Fun.protect
              ~finally:(fun () -> Serve_client.close client)
              (fun () ->
                match Serve_client.predict_all client loops with
                | Error e ->
                  Printf.eprintf "remote: %s\n" e;
                  exit 2
                | Ok responses ->
                  ( Array.map
                      (function
                        | Wire.Factor f -> f
                        | Wire.Busy ->
                          Printf.eprintf "remote: server shed the request (busy)\n";
                          exit 1
                        | Wire.Okay _ ->
                          Printf.eprintf "remote: unexpected control response\n";
                          exit 1
                        | Wire.Failure e ->
                          Printf.eprintf "remote: %s\n" e;
                          exit 1)
                      responses,
                    None ))
          end
          | None, Some artifact -> begin
            let service =
              match
                Result.bind (Model_artifact.load artifact) (Predict_service.create config)
              with
              | Ok s -> s
              | Error e ->
                Printf.eprintf "artifact: %s\n" e;
                exit 2
            in
            match Predict_service.label_space service with
            | Model_artifact.Factor -> (Predict_service.predict_batch service loops, None)
            | Model_artifact.Joint ->
              let decisions = Predict_service.predict_joint_batch service loops in
              (Array.map fst decisions, Some (Array.map snd decisions))
          end
          | None, None ->
            Printf.eprintf "predict: give --artifact FILE or --remote HOST:PORT\n";
            exit 2
        in
        let buf = Buffer.create 256 in
        List.iteri
          (fun i loop ->
            match swps with
            | None ->
              Buffer.add_string buf (Printf.sprintf "%s %d\n" loop.Loop.name factors.(i))
            | Some swps ->
              Buffer.add_string buf
                (Printf.sprintf "%s %d swp=%s\n" loop.Loop.name factors.(i)
                   (if swps.(i) then "on" else "off")))
          loops;
        if output = "-" then print_string (Buffer.contents buf)
        else begin
          let oc = open_out output in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Buffer.contents buf));
          Printf.printf "wrote %d predictions to %s\n" (List.length loops) output
        end)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Batched prediction from a model artifact (or a running server with \
          --remote): verify provenance against the serving machine, print `name \
          factor` per loop (joint-space artifacts add `swp=on|off`).")
    Term.(
      const run $ config_term $ artifact $ remote $ kernels $ file $ output
      $ telemetry_flag)

(* serve *)
let serve_cmd =
  let model =
    Arg.(
      required
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE" ~doc:"Model artifact written by `unroll-ml train`.")
  in
  let port =
    Arg.(value & opt int 7811 & info [ "port" ] ~docv:"P" ~doc:"Listen port (0 = ephemeral).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let batch_window_us =
    Arg.(
      value
      & opt int 2000
      & info [ "batch-window-us" ] ~docv:"US"
          ~doc:
            "Micro-batching window in microseconds: how long a forming batch waits \
             for more requests before firing (it fires early when the arrival \
             stream pauses or the cap is hit).")
  in
  let batch_cap =
    Arg.(value & opt int 64 & info [ "batch-cap" ] ~docv:"N" ~doc:"Max loops per prediction batch.")
  in
  let queue_cap =
    Arg.(
      value
      & opt int 1024
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission-control bound: beyond this queue depth requests are shed (busy).")
  in
  let cache_cap =
    Arg.(
      value
      & opt int Predict_service.default_cache_capacity
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:"Feature-vector cache entries kept (FIFO eviction; 0 disables).")
  in
  let drain_timeout =
    Arg.(
      value
      & opt float 5.0
      & info [ "drain-timeout" ] ~docv:"S"
          ~doc:"Seconds to wait for connections to close during graceful shutdown.")
  in
  let shadow_window =
    Arg.(
      value
      & opt int 0
      & info [ "shadow-window" ] ~docv:"N"
          ~doc:
            "Shadow-evaluate reloaded models: a reloaded candidate predicts N loops \
             alongside the live model (its answers are never sent) before being \
             promoted or rejected on its disagreement rate.  0 (default) swaps \
             immediately.")
  in
  let shadow_threshold =
    Arg.(
      value
      & opt float 0.0
      & info [ "shadow-threshold" ] ~docv:"F"
          ~doc:
            "Max disagreement rate (fraction of shadowed loops) at which a shadow \
             candidate is still promoted (default 0: require exact agreement).")
  in
  let run config model port host batch_window_us batch_cap queue_cap cache_cap
      drain_timeout shadow_window shadow_threshold telemetry =
    with_telemetry telemetry (fun () ->
        let opts =
          {
            Serve.host;
            port;
            jobs = config.Config.jobs;
            batch_window = float_of_int (max 0 batch_window_us) /. 1e6;
            batch_cap = max 1 batch_cap;
            queue_cap = max 1 queue_cap;
            cache_capacity = max 0 cache_cap;
            drain_timeout = Float.max 0. drain_timeout;
            shadow_window = max 0 shadow_window;
            shadow_threshold = Float.max 0. shadow_threshold;
          }
        in
        match Serve.listen ~opts config ~artifact:model with
        | Error e ->
          Printf.eprintf "%s\n" e;
          exit 2
        | Ok server ->
          (* SIGINT/SIGTERM drain gracefully; SIGHUP hot-reloads the model
             path in place.  Handlers only flip atomic flags the accept loop
             polls — nothing signal-unsafe runs here. *)
          let stop _ = Serve.stop server in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Sys.set_signal Sys.sighup
            (Sys.Signal_handle (fun _ -> Serve.request_reload server model));
          Printf.printf
            "unroll-ml serve: listening on %s:%d (model %s, batch window %dus cap \
             %d, queue %d, jobs %d)\n%!"
            host (Serve.port server) model batch_window_us opts.Serve.batch_cap
            opts.Serve.queue_cap opts.Serve.jobs;
          Serve.run server;
          print_string (Serve.stats_text server))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve predictions over TCP: connections are multiplexed into adaptive \
          micro-batches with admission control and backpressure; SIGHUP (or the \
          `reload` control frame) hot-swaps the model without dropping requests.")
    Term.(
      const run $ config_term $ model $ port $ host $ batch_window_us $ batch_cap
      $ queue_cap $ cache_cap $ drain_timeout $ shadow_window $ shadow_threshold
      $ telemetry_flag)

(* ctl *)
let ctl_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT" ~doc:"A running `unroll-ml serve`.")
  in
  let command =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"CMD"
          ~doc:"Control command: ping | stats | reload PATH | shutdown.")
  in
  let run addr command =
    match Serve_client.connect addr with
    | Error e ->
      Printf.eprintf "ctl: %s\n" e;
      exit 2
    | Ok client ->
      Fun.protect
        ~finally:(fun () -> Serve_client.close client)
        (fun () ->
          match Serve_client.control client (String.concat " " command) with
          | Ok (Wire.Okay text) ->
            print_string text;
            if text = "" || text.[String.length text - 1] <> '\n' then print_newline ()
          | Ok (Wire.Failure e) ->
            Printf.eprintf "ctl: %s\n" e;
            exit 1
          | Ok Wire.Busy ->
            Printf.eprintf "ctl: server busy\n";
            exit 1
          | Ok (Wire.Factor _) ->
            Printf.eprintf "ctl: unexpected prediction response\n";
            exit 1
          | Error e ->
            Printf.eprintf "ctl: %s\n" e;
            exit 1)
  in
  Cmd.v
    (Cmd.info "ctl"
       ~doc:
         "Send a control frame to a running server: ping, stats, hot reload, or \
          graceful shutdown.")
    Term.(const run $ addr $ command)

(* kernels *)
let kernels_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Kernels.all
  in
  Cmd.v (Cmd.info "kernels" ~doc:"List the built-in kernel loops.") Term.(const run $ const ())

(* machines *)
let machines_cmd =
  let run () =
    List.iter
      (fun m ->
        Printf.printf "%-10s %d-issue M%d I%d F%d B%d, %d/%d regs, L1D %dKB\n"
          m.Machine.mach_name m.Machine.issue_width m.Machine.m_units m.Machine.i_units
          m.Machine.f_units m.Machine.b_units m.Machine.int_regs m.Machine.fp_regs
          (m.Machine.l1d.Machine.size_bytes / 1024))
      Machine.all
  in
  Cmd.v (Cmd.info "machines" ~doc:"List the machine models.") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "unroll-ml" ~version:"1.0.0"
       ~doc:"Predicting unroll factors using supervised classification (CGO 2005 reproduction).")
    [
      dataset_cmd; experiment_cmd; inspect_cmd; inspect_file_cmd; export_cmd;
      train_cmd; predict_cmd; serve_cmd; ctl_cmd; fuzz_cmd; verify_cmd; kernels_cmd;
      machines_cmd;
    ]

let () = exit (Cmd.eval main)
