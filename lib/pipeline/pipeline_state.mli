(** The typed compile-state record threaded through the pass pipeline.

    Every pass consumes and produces a {!state}: the immutable inputs
    (machine, SWP flag, unroll factor, source loop) plus the artefacts
    filled in as compilation progresses — the unrolled loop, the
    scheduled/allocated kernel and remainder, and finally the packaged
    {!executable} the simulator runs.  Keeping the record explicit is what
    lets passes be registered, reordered, observed and cached from
    outside ({!Pipeline}). *)

type executable = {
  schedules : (Schedule.t * int * int) list;
  (** [(schedule, trips, phase)] in execution order: the unrolled kernel
      followed by the remainder loop when present.  [phase] is the
      original-iteration index at which the schedule starts, so remainder
      references continue where the kernel stopped. *)
  unroll_factor : int;
  total_code_bytes : int;   (** kernel + remainder + glue *)
  outer_trip : int;         (** times the whole nest is re-entered *)
  exit_prob : float;        (** per-original-iteration early-exit probability *)
  entry_extra_cycles : int; (** per-entry fixed cost (exit mispredict, glue) *)
  total_spills : int;       (** spill values inserted by the allocator *)
}

type state = {
  machine : Machine.t;
  swp : bool;
  factor : int;
  source : Loop.t;
  deps_memo : Deps_memo.t;           (** dependence graphs shared by every pass *)
  unrolled : Unroll.t option;        (** after the unroll (and rle) passes *)
  kernel_sched : Schedule.t option;  (** after scheduling / allocation *)
  remainder_sched : Schedule.t option;
  exe : executable option;           (** after assembly *)
}

val init : ?deps_memo:Deps_memo.t -> Machine.t -> swp:bool -> Loop.t -> int -> state
(** A fresh state with only the inputs filled in; dependence graphs are
    memoised in [deps_memo] (default {!Deps_memo.global}). *)

val executable_exn : state -> executable
(** The assembled executable; raises [Invalid_argument] if the assemble
    pass has not run. *)
