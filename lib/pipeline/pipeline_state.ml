type executable = {
  schedules : (Schedule.t * int * int) list;
  unroll_factor : int;
  total_code_bytes : int;
  outer_trip : int;
  exit_prob : float;
  entry_extra_cycles : int;
  total_spills : int;
}

type state = {
  machine : Machine.t;
  swp : bool;
  factor : int;
  source : Loop.t;
  deps_memo : Deps_memo.t;
  unrolled : Unroll.t option;
  kernel_sched : Schedule.t option;
  remainder_sched : Schedule.t option;
  exe : executable option;
}

let init ?(deps_memo = Deps_memo.global) machine ~swp source factor =
  {
    machine;
    swp;
    factor;
    source;
    deps_memo;
    unrolled = None;
    kernel_sched = None;
    remainder_sched = None;
    exe = None;
  }

let executable_exn st =
  match st.exe with
  | Some exe -> exe
  | None -> invalid_arg "Pipeline_state.executable_exn: assemble pass has not run"
