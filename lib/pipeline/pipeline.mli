(** The pass-pipeline compiler core.

    [compile] is the one entry point everything goes through —
    {!val:Simulator.compile} delegates here, so labelling sweeps, the
    experiment drivers and the CLI all share it.  Internally the compile
    path is an explicit list of registered {!pass}es over the typed
    {!Pipeline_state.state} record:

    {ol
    {- [unroll] — body replication with register renaming, remainder loop;}
    {- [rle] — redundant-load / dead-store elimination over the kernel;}
    {- [schedule] — list scheduling, or modulo scheduling with list
       fallback when SWP is on;}
    {- [regalloc] — pressure analysis and spill insertion (reschedules
       only when a spill forces it);}
    {- [assemble] — trip arithmetic, entry overhead and code-size
       accounting into an {!Pipeline_state.executable}.}}

    Each pass reports wall-time and its own metrics (op-count deltas,
    II, spills, code bytes) into a {!Telemetry} sink, and compiled
    results are memoised in a content-addressed {!Compile_cache}. *)

type pass = {
  pass_name : string;
  transform : Pipeline_state.state -> Pipeline_state.state * (string * int) list;
  (** The new state plus the metrics to accumulate for this invocation. *)
}

val default_passes : pass list
(** [unroll; rle; schedule; regalloc; assemble]. *)

val testing_phantom_trips : bool ref
(** Test-only: when set, the assembler reverts to the historical
    phantom-iteration bug (a zero-trip loop assembled as if it ran once).
    Reintroduced so the translation validator's refutation tests can
    prove they would catch it.  Never set outside tests; toggling it
    poisons any shared compile cache, so pair it with uncached
    compilation ({!run} on a fresh {!Pipeline_state.init}). *)

val pass_names : string list
(** Names of {!default_passes}, in order. *)

val run :
  ?telemetry:Telemetry.t -> ?passes:pass list -> Pipeline_state.state ->
  Pipeline_state.state
(** Fold the state through the passes, timing each and recording its
    metrics under its name.  Telemetry defaults to {!Telemetry.global}. *)

val compile :
  ?cache:Compile_cache.t -> ?telemetry:Telemetry.t ->
  Machine.t -> swp:bool -> Loop.t -> int -> Pipeline_state.executable
(** [compile machine ~swp loop u] runs {!default_passes} (consulting and
    filling [cache], default {!Compile_cache.global}) and returns the
    executable. *)

val of_unrolled :
  ?telemetry:Telemetry.t ->
  Machine.t -> swp:bool -> Unroll.t -> outer_trip:int -> exit_prob:float ->
  Pipeline_state.executable
(** Enter the pipeline after the transform stages with an already-unrolled
    loop: schedule, allocate and assemble only.  Used by callers that
    perform their own transformations (tiling, hand-unrolled input). *)
