(** Content-addressed compile cache.

    The labelling methodology compiles every loop at eight unroll factors,
    twice (SWP off/on), and the experiment drivers re-enter the compiler
    with the same loops again and again.  This cache memoises both the
    compiled executables and the deterministic (noise-free) cycle counts,
    keyed by a digest of the loop's {e content} (its name is blanked, so
    identical loops under different names share entries), the unroll
    factor, the SWP flag, and the full machine description.

    All operations are mutex-protected: worker domains of the parallel
    labelling sweep share one cache.  Both stores are bounded and evict
    oldest-first; a capacity of 0 disables storing entirely (useful for
    benchmarking cold compiles).  Hit/miss counters feed the telemetry
    sink under the ["compile-cache"] pass. *)

type key = string
(** A content digest; cheap to compare and hash. *)

type t

val create : ?exe_capacity:int -> ?cycles_capacity:int -> ?telemetry:Telemetry.t -> unit -> t
(** Defaults: [exe_capacity] 4096 (executables hold whole schedules),
    [cycles_capacity] 262144 (an int each), telemetry {!Telemetry.global}. *)

val global : t
(** The process-wide cache used by {!val:Pipeline.compile} by default. *)

val key : machine:Machine.t -> swp:bool -> factor:int -> Loop.t -> key
(** Digest of the quadruple.  Every field of the loop except its name and
    every field of the machine participate. *)

val find_exe : t -> key -> Pipeline_state.executable option
val store_exe : t -> key -> Pipeline_state.executable -> unit

val find_cycles : t -> key -> max_sim_iters:int option -> int option
(** The memoised noise-free measurement for the keyed compile under the
    given simulation window (the window changes the extrapolation, so it
    is part of the lookup). *)

val store_cycles : t -> key -> max_sim_iters:int option -> int -> unit

val hits : t -> int
val misses : t -> int
(** Lookup counters across both stores since creation (or {!clear}). *)

val hit_rate : t -> float
(** [hits / (hits + misses)], 0 when empty. *)

val clear : t -> unit
(** Drop all entries and zero the counters. *)
