type key = string

(* A bounded hashtable with oldest-first eviction: entries remember their
   insertion order through a queue; when over capacity the head is
   dropped.  Re-insertions of a live key are no-ops, so the queue never
   holds stale duplicates. *)
type 'v store = {
  table : (key, 'v) Hashtbl.t;
  fifo : key Queue.t;
  capacity : int;
}

let store_create capacity = { table = Hashtbl.create 64; fifo = Queue.create (); capacity }

let store_find s k = Hashtbl.find_opt s.table k

let store_add s k v =
  if s.capacity > 0 && not (Hashtbl.mem s.table k) then begin
    if Hashtbl.length s.table >= s.capacity then begin
      let oldest = Queue.pop s.fifo in
      Hashtbl.remove s.table oldest
    end;
    Hashtbl.add s.table k v;
    Queue.push k s.fifo
  end

let store_clear s =
  Hashtbl.reset s.table;
  Queue.clear s.fifo

type t = {
  mutex : Mutex.t;
  exes : Pipeline_state.executable store;
  cycles : int store;
  telemetry : Telemetry.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(exe_capacity = 4096) ?(cycles_capacity = 262144)
    ?(telemetry = Telemetry.global) () =
  {
    mutex = Mutex.create ();
    exes = store_create exe_capacity;
    cycles = store_create cycles_capacity;
    telemetry;
    hit_count = 0;
    miss_count = 0;
  }

let global = create ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let key ~machine ~swp ~factor (loop : Loop.t) =
  (* Content address: the name does not participate, so structurally
     identical loops share compiles.  Marshal covers every field of both
     records (pure data, no closures). *)
  Digest.string
    (Marshal.to_string ({ loop with Loop.name = "" }, factor, swp, machine) [])

let tally t found =
  if found then begin
    t.hit_count <- t.hit_count + 1;
    Telemetry.incr t.telemetry ~pass:"compile-cache" "hits" 1
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    Telemetry.incr t.telemetry ~pass:"compile-cache" "misses" 1
  end

let find_exe t k =
  locked t (fun () ->
      let r = store_find t.exes k in
      tally t (r <> None);
      r)

let store_exe t k exe = locked t (fun () -> store_add t.exes k exe)

let cycles_key k ~max_sim_iters =
  k ^ ":" ^ (match max_sim_iters with Some n -> string_of_int n | None -> "d")

let find_cycles t k ~max_sim_iters =
  locked t (fun () ->
      let r = store_find t.cycles (cycles_key k ~max_sim_iters) in
      tally t (r <> None);
      r)

let store_cycles t k ~max_sim_iters c =
  locked t (fun () -> store_add t.cycles (cycles_key k ~max_sim_iters) c)

let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)

let hit_rate t =
  locked t (fun () ->
      let total = t.hit_count + t.miss_count in
      if total = 0 then 0.0 else float_of_int t.hit_count /. float_of_int total)

let clear t =
  locked t (fun () ->
      store_clear t.exes;
      store_clear t.cycles;
      t.hit_count <- 0;
      t.miss_count <- 0)
