type pass = {
  pass_name : string;
  transform : Pipeline_state.state -> Pipeline_state.state * (string * int) list;
}

let unrolled_exn (st : Pipeline_state.state) =
  match st.Pipeline_state.unrolled with
  | Some u -> u
  | None -> invalid_arg "Pipeline: unroll pass has not run"

let kernel_sched_exn (st : Pipeline_state.state) =
  match st.Pipeline_state.kernel_sched with
  | Some s -> s
  | None -> invalid_arg "Pipeline: schedule pass has not run"

(* Scheduling strategy for this compile: modulo scheduling with list
   fallback when software pipelining is requested, plain list scheduling
   otherwise.  Both the schedule pass and the allocator's respill loop use
   the same function. *)
let sched_fn (st : Pipeline_state.state) =
  let machine = st.Pipeline_state.machine in
  let memo = st.Pipeline_state.deps_memo in
  if st.Pipeline_state.swp then fun l ->
    (match Modulo_sched.schedule ~memo machine l with
    | Some s -> s
    | None -> List_sched.schedule ~memo machine l)
  else List_sched.schedule ~memo machine

let unroll_pass =
  {
    pass_name = "unroll";
    transform =
      (fun st ->
        let u = Unroll.run st.Pipeline_state.source st.Pipeline_state.factor in
        let metrics =
          [
            ("kernel-ops", Array.length u.Unroll.kernel.Loop.body);
            ("remainders", match u.Unroll.remainder with Some _ -> 1 | None -> 0);
            ("code-bytes", u.Unroll.code_bytes);
          ]
        in
        ({ st with Pipeline_state.unrolled = Some u }, metrics));
  }

let rle_pass =
  {
    pass_name = "rle";
    transform =
      (fun st ->
        let u = unrolled_exn st in
        let before = Array.length u.Unroll.kernel.Loop.body in
        let r = Rle.run u.Unroll.kernel in
        let u = { u with Unroll.kernel = r.Rle.loop } in
        let metrics =
          [
            ("loads-eliminated", r.Rle.loads_eliminated);
            ("stores-eliminated", r.Rle.stores_eliminated);
            ("ops-removed", before - Array.length r.Rle.loop.Loop.body);
          ]
        in
        ({ st with Pipeline_state.unrolled = Some u }, metrics));
  }

let schedule_pass =
  {
    pass_name = "schedule";
    transform =
      (fun st ->
        let u = unrolled_exn st in
        let sched = sched_fn st in
        let kernel_sched = sched u.Unroll.kernel in
        let remainder_sched = Option.map sched u.Unroll.remainder in
        let metrics =
          [
            ("kernel-len", kernel_sched.Schedule.length);
            ( "kernel-ii",
              match kernel_sched.Schedule.kind with
              | Schedule.Pipelined { ii; _ } -> ii
              | Schedule.Straight -> 0 );
            ( "modulo-fallbacks",
              if
                st.Pipeline_state.swp
                && kernel_sched.Schedule.kind = Schedule.Straight
              then 1
              else 0 );
          ]
        in
        ( { st with Pipeline_state.kernel_sched = Some kernel_sched; remainder_sched },
          metrics ));
  }

let regalloc_pass =
  {
    pass_name = "regalloc";
    transform =
      (fun st ->
        let sched = sched_fn st in
        let kernel_sched = Regalloc.allocate_from ~sched (kernel_sched_exn st) in
        let remainder_sched =
          Option.map (Regalloc.allocate_from ~sched) st.Pipeline_state.remainder_sched
        in
        let spills =
          kernel_sched.Schedule.spills
          + (match remainder_sched with Some s -> s.Schedule.spills | None -> 0)
        in
        let metrics =
          [
            ("spills", spills);
            ("int-pressure", kernel_sched.Schedule.int_pressure);
            ("fp-pressure", kernel_sched.Schedule.fp_pressure);
          ]
        in
        ( { st with Pipeline_state.kernel_sched = Some kernel_sched; remainder_sched },
          metrics ));
  }

(* Test-only: reintroduces the historical phantom-iteration bug where a
   zero-trip loop was assembled as if it ran once ([effective_trips]
   clamps to >= 1 even with no iteration to run; fixed after fuzzing
   caught it).  The translation validator's refutation tests re-enable
   it to prove they would catch it. *)
let testing_phantom_trips = ref false

(* Expected iterations before a geometric early exit fires, capped at the
   trip count. *)
let effective_trips trip p =
  if p <= 0.0 then trip
  else begin
    let t = float_of_int trip in
    let expected = (1.0 -. ((1.0 -. p) ** t)) /. p in
    max 1 (min trip (int_of_float (Float.round expected)))
  end

let assemble_pass =
  {
    pass_name = "assemble";
    transform =
      (fun st ->
        let u = unrolled_exn st in
        let machine = st.Pipeline_state.machine in
        let outer_trip = st.Pipeline_state.source.Loop.outer_trip in
        let exit_prob = st.Pipeline_state.source.Loop.exit_prob in
        let trip = (u.Unroll.kernel_trips * u.Unroll.factor) + u.Unroll.remainder_trips in
        (* A zero-trip loop executes nothing: [effective_trips] clamps to at
           least one iteration (a geometric exit always fires eventually),
           which is right only when there is an iteration to run.  Without
           this guard a trip-0 loop compiled at factor 1 executed once. *)
        let eff =
          if !testing_phantom_trips then effective_trips (max trip 1) exit_prob
          else if trip = 0 then 0
          else effective_trips trip exit_prob
        in
        let kernel_trips =
          if exit_prob > 0.0 then
            (* An exit mid-kernel still executes (and wastes) the whole
               unrolled iteration it fired in. *)
            (eff + u.Unroll.factor - 1) / u.Unroll.factor
          else eff / u.Unroll.factor
        in
        let remainder_trips =
          if exit_prob > 0.0 then 0
          else
            match u.Unroll.remainder with
            | Some _ -> eff mod u.Unroll.factor
            | None -> 0
        in
        let kernel_sched = kernel_sched_exn st in
        let rem =
          match st.Pipeline_state.remainder_sched with
          | Some r -> [ (r, remainder_trips, kernel_trips * u.Unroll.factor) ]
          | None -> []
        in
        let entry_extra_cycles =
          (* Loop setup: computing the kernel trip count and dispatching
             between kernel and remainder costs a few cycles per entry once
             unrolled. *)
          4
          + (if u.Unroll.factor > 1 then 4 else 0)
          + (match u.Unroll.remainder with Some _ -> 6 | None -> 0)
          + (if exit_prob > 0.0 then machine.Machine.mispredict_cost else 0)
        in
        let total_spills =
          List.fold_left
            (fun acc (s, _, _) -> acc + s.Schedule.spills)
            0
            ((kernel_sched, 0, 0) :: rem)
        in
        let exe =
          {
            Pipeline_state.schedules = (kernel_sched, kernel_trips, 0) :: rem;
            unroll_factor = u.Unroll.factor;
            total_code_bytes = u.Unroll.code_bytes;
            outer_trip;
            exit_prob;
            entry_extra_cycles;
            total_spills;
          }
        in
        let metrics =
          [
            ("code-bytes", exe.Pipeline_state.total_code_bytes);
            ("entry-cycles", entry_extra_cycles);
            ("spills", total_spills);
          ]
        in
        ({ st with Pipeline_state.exe = Some exe }, metrics));
  }

let default_passes = [ unroll_pass; rle_pass; schedule_pass; regalloc_pass; assemble_pass ]
let pass_names = List.map (fun p -> p.pass_name) default_passes

let run ?(telemetry = Telemetry.global) ?(passes = default_passes) st =
  List.fold_left
    (fun st p ->
      let t0 = Unix.gettimeofday () in
      let st, metrics = p.transform st in
      Telemetry.record telemetry ~pass:p.pass_name
        ~seconds:(Unix.gettimeofday () -. t0)
        ~metrics ();
      st)
    st passes

let compile ?(cache = Compile_cache.global) ?telemetry machine ~swp loop factor =
  let key = Compile_cache.key ~machine ~swp ~factor loop in
  match Compile_cache.find_exe cache key with
  | Some exe -> exe
  | None ->
    let st = run ?telemetry (Pipeline_state.init machine ~swp loop factor) in
    let exe = Pipeline_state.executable_exn st in
    Compile_cache.store_exe cache key exe;
    exe

(* The tail of the pipeline: callers that did their own transformation
   (tiling, hand-unrolled input) enter after unroll/rle. *)
let backend_passes = [ schedule_pass; regalloc_pass; assemble_pass ]

let of_unrolled ?telemetry machine ~swp (u : Unroll.t) ~outer_trip ~exit_prob =
  let source = { u.Unroll.kernel with Loop.outer_trip; exit_prob } in
  let st =
    {
      (Pipeline_state.init machine ~swp source u.Unroll.factor) with
      Pipeline_state.unrolled = Some u;
    }
  in
  let st = run ?telemetry ~passes:backend_passes st in
  Pipeline_state.executable_exn st
