(** The offline half of the train/serve split: sweep → select → fit →
    artifact.

    [run] is the whole paper pipeline as one deterministic function of the
    config: label the suite (optionally journalled so a killed sweep
    resumes), build the filtered dataset, commit the §7 feature subset,
    fit the NN and LS-SVM, score both by leave-one-out cross-validation,
    and package the winner (or a forced choice) as a versioned
    {!Model_artifact} stamped with the training dataset's digest.  The
    CLI trainer, the CI golden job and the fixture generator all call
    this one function, so a shipped artifact can never diverge from what
    an in-process experiment would have trained. *)

type model_choice = Nn | Svm | Best

type report = {
  measured : int;          (** loops swept (before filters) *)
  kept : int;              (** examples surviving the paper's filters *)
  features : int array;    (** committed feature subset *)
  nn_loocv : float;        (** NN leave-one-out accuracy *)
  svm_loocv : float;       (** SVM leave-one-out accuracy (capped set) *)
  chosen : string;         (** ["nn"] or ["svm"] *)
  dataset_digest : string;
}

val run :
  ?progress:bool -> ?journal:Label_store.t ->
  Config.t -> swp:bool -> model:model_choice -> Model_artifact.t * report
(** [Best] picks the higher LOOCV accuracy; an exact tie goes to the SVM
    (the paper's overall winner).  Raises [Failure] if the filtered
    dataset is empty (scale too small to train anything). *)
