(** The offline half of the train/serve split: sweep → select → fit →
    artifact.

    [run] is the whole paper pipeline as one deterministic function of the
    config: label the suite (optionally journalled so a killed sweep
    resumes), build the filtered dataset, commit the §7 feature subset,
    fit the NN and LS-SVM, score both by leave-one-out cross-validation,
    and package the winner (or a forced choice) as a versioned
    {!Model_artifact} stamped with the training dataset's digest.  The
    CLI trainer, the CI golden job and the fixture generator all call
    this one function, so a shipped artifact can never diverge from what
    an in-process experiment would have trained. *)

type model_choice = Nn | Svm | Mlp | Best

type report = {
  measured : int;          (** loops swept (before filters) *)
  kept : int;              (** examples surviving the paper's filters *)
  features : int array;    (** committed feature subset *)
  nn_loocv : float;        (** NN leave-one-out accuracy *)
  svm_loocv : float;       (** SVM leave-one-out accuracy (capped set) *)
  mlp_loocv : float;       (** MLP leave-one-benchmark-out accuracy (no
                               closed-form LOO shortcut exists for SGD) *)
  chosen : string;         (** ["nn"], ["svm"] or ["mlp"] *)
  dataset_digest : string;
}

val run :
  ?progress:bool -> ?journal:Label_store.t ->
  Config.t -> swp:bool -> model:model_choice -> Model_artifact.t * report
(** [Best] picks the highest cross-validation accuracy; an exact NN/SVM
    tie goes to the SVM (the paper's overall winner), and the MLP must
    strictly beat both.  Raises [Failure] if the filtered dataset is
    empty (scale too small to train anything). *)

val run_joint :
  ?progress:bool -> ?journal:Label_store.t ->
  Config.t -> model:model_choice -> Model_artifact.t * report
(** {!run} over the joint (unroll factor × SWP) decision space: sweeps
    the suite at both SWP settings (one journal serves both — sweep keys
    differ in the swp coordinate), builds the 16-class
    {!Labeling.to_joint_dataset}, and stamps the artifact
    [label-space joint]. *)

(** {1 Online training}

    The incremental half of [unroll-ml train --follow]: labels stream in
    from a {!Label_store} journal (typically tailed with
    {!Label_store.follow} while another process sweeps) instead of being
    measured in-process, and the model is refit as sweeps complete.

    The trainer only ever trains on {e journal-complete} sweeps — all
    factors 1..8 present — assembled in suite order, so the training set
    is a function of {e which} sweeps are complete, never of record
    arrival order.  Once the journal covers the whole suite, {!Online.retrain}
    emits an artifact bit-identical to a batch {!run} over the same
    journal at any [-j]: the sweep cycles are the journal's, and
    everything downstream (filters, selection, fit, artifact formatting)
    is the same code.  Greedy-NN selection warm-starts from the previous
    generation ({!Greedy_select.Warm}); LOOCV scoring is skipped unless
    the model choice is [Best] (the report carries [nan] scores then —
    the artifact never depends on them). *)

module Online : sig
  type t

  val create : ?progress:bool -> Config.t -> swp:bool -> model:model_choice -> t
  (** Generate the suite for [config] and index every loop's sweep key.
      No measuring happens — the journal is the only label source. *)

  val ingest : t -> key:string -> factor:int -> cycles:int -> bool
  (** Feed one journal record; returns [true] when it completes a sweep
      (the signal [--every] batches on).  Records for unknown keys or
      out-of-range factors are counted and ignored — a journal may hold
      sweeps from other configs.  Duplicate records overwrite (last
      wins), matching {!Label_store} recovery. *)

  val retrain : t -> (Model_artifact.t * report, string) result
  (** Refit on the complete sweeps ingested so far.  [Error] while the
      filtered dataset is still empty. *)

  val total_sweeps : t -> int
  val complete_sweeps : t -> int
  val ingested : t -> int

  val unknown_records : t -> int
  (** Records ignored (foreign key or bad factor). *)

  val warm_cache : t -> Greedy_select.Warm.t
  (** The greedy-NN warm cache, for instrumentation. *)
end
