(** The baseline hand-written unroll heuristics, modelled on ORC's.

    ORC v2.1 uses two heuristics (paper §1): one when software pipelining
    is disabled, and one — rewritten in every major release, ~205 lines of
    C++ by v2.1 — used together with the software pipeliner to reach
    fractional initiation intervals.  These are from-scratch renditions of
    the same design ideas, not ports:

    - {b no-SWP}: unroll to a code-size budget (bigger bodies get smaller
      factors), prefer powers of two, never exceed a known trip count, and
      back off for calls, early exits and heavy divides.
    - {b SWP}: pick the factor that minimises the per-original-iteration
      resource bound ceil(u * ResMII₁) / u subject to a code-size cap and
      a register-pressure estimate — the "fractional II" rationale. *)

val no_swp : Machine.t -> Loop.t -> int
(** Unroll factor in 1..8. *)

val swp : Machine.t -> Loop.t -> int
(** Unroll factor in 1..8 for the software-pipelining pipeline. *)

val predict : Machine.t -> swp:bool -> Loop.t -> int
