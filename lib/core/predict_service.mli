(** The online half of the train/serve split: batched prediction from a
    loaded artifact.

    A service wraps one {!Model_artifact} — verified against the serving
    machine, reconstructed through {!Predictor.of_artifact} — and answers
    prediction traffic in batches: query loops are featurised once, the
    scaled vectors assembled into one flat row-major matrix through
    {!Dataset.points_matrix}, and classified row by row.  A
    per-artifact feature-vector cache (keyed by loop content, names
    blanked) means repeated loops — the common case for a compiler
    serving many compilation units of the same program — skip feature
    extraction and normalisation entirely.  The cache is bounded
    ([cache_capacity] entries, FIFO eviction in insertion order), so a
    long-lived server's footprint stays flat no matter how many distinct
    loops stream past.

    Predictions are bit-identical to calling {!Predictor.predict} with
    the same artifact's model loop by loop — at any [jobs] value: the
    batch path shares the featurisation ({!Predictor.featurize}) and
    classification ({!Predictor.predict_scaled}) code, caching returns
    the exact vector it stored, and parallel classification writes each
    row's answer at its input index.  Batch sizes and cache
    hit/miss/eviction counts land in telemetry under the
    ["predict-service"] pass.  A service is safe to share between
    domains (the cache is lock-protected). *)

type t

val default_cache_capacity : int
(** Cache entries kept when [cache_capacity] is not given (8192). *)

val create :
  ?telemetry:Telemetry.t ->
  ?cache_capacity:int ->
  Config.t ->
  Model_artifact.t ->
  (t, string) result
(** Fails if the artifact was trained for a different machine description
    than [config]'s, or if its feature subset has drifted from this
    build's feature table.  [cache_capacity] bounds the feature-vector
    cache; [0] disables caching entirely. *)

val predictor : t -> Predictor.t
(** The reconstructed in-compiler predictor (shared load path). *)

val model_kind : t -> string
(** ["nn"], ["svm"] or ["mlp"] — the loaded artifact's payload kind. *)

val label_space : t -> Model_artifact.label_space
(** The loaded artifact's decision space: [Factor] (8-way unroll factor)
    or [Joint] (16-way factor × SWP). *)

val model_digest : t -> string
(** Hex digest of the loaded artifact's canonical serialisation.  Every
    counter a service reports belongs to this digest: a hot reload builds
    a fresh service with fresh counters, so stats tagged with the digest
    are unambiguously since-load and never mix models across reloads. *)

val predict : t -> Loop.t -> int
(** One loop; equivalent to a batch of one. *)

val predict_batch : ?jobs:int -> t -> Loop.t list -> int array
(** Factors in 1..8, in input order.  Non-unrollable loops get 1 without
    consulting the model, like {!Predictor.predict}.  Joint-space
    artifacts answer with the factor half of their decision.  [jobs]
    (default 1) fans the per-row classification over the {!Parallel}
    domain pool; results are bit-identical at any value. *)

val classify_batch : ?jobs:int -> t -> Loop.t list -> int array
(** Raw 0-based classes in the artifact's label space, in input order —
    [0..7] for [Factor] artifacts, [0..15] for [Joint] ones.
    Non-unrollable loops get class 0, which decodes to (factor 1, SWP
    off) in both spaces. *)

val predict_joint_batch : ?jobs:int -> t -> Loop.t list -> (int * bool) array
(** [(factor, swp)] decisions in input order.  [Factor] artifacts always
    answer [(factor, false)]; [Joint] ones decode their 16-way class. *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_evictions : t -> int
(** Feature-vector cache counters since {!create}. *)

val cache_size : t -> int
(** Entries currently cached (at most the capacity). *)
