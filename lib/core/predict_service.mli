(** The online half of the train/serve split: batched prediction from a
    loaded artifact.

    A service wraps one {!Model_artifact} — verified against the serving
    machine, reconstructed through {!Predictor.of_artifact} — and answers
    prediction traffic in batches: query loops are featurised once, the
    scaled vectors assembled into one flat row-major matrix through
    {!Dataset.points_matrix}, and classified row by row.  A
    per-artifact feature-vector cache (keyed by loop content, names
    blanked) means repeated loops — the common case for a compiler
    serving many compilation units of the same program — skip feature
    extraction and normalisation entirely.

    Predictions are bit-identical to calling {!Predictor.predict} with
    the same artifact's model loop by loop: the batch path shares the
    featurisation ({!Predictor.featurize}) and classification
    ({!Predictor.predict_scaled}) code, and caching returns the exact
    vector it stored.  Batch sizes and cache hits are counted in
    telemetry under the ["predict-service"] pass. *)

type t

val create : ?telemetry:Telemetry.t -> Config.t -> Model_artifact.t -> (t, string) result
(** Fails if the artifact was trained for a different machine description
    than [config]'s, or if its feature subset has drifted from this
    build's feature table. *)

val predictor : t -> Predictor.t
(** The reconstructed in-compiler predictor (shared load path). *)

val predict : t -> Loop.t -> int
(** One loop; equivalent to a batch of one. *)

val predict_batch : t -> Loop.t list -> int array
(** Factors in 1..8, in input order.  Non-unrollable loops get 1 without
    consulting the model, like {!Predictor.predict}. *)

val cache_hits : t -> int
val cache_misses : t -> int
(** Feature-vector cache counters since {!create}. *)
