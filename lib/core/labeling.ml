type labeled = {
  bench : string;
  loop : Loop.t;
  weight : float;
  cycles : int array;
}

let best_factor l = 1 + Stats.min_index (Array.map float_of_int l.cycles)

let passes_filters l =
  let fc = Array.map float_of_int l.cycles in
  let best = fc.(Stats.min_index fc) in
  let mean = Stats.mean fc in
  Loop.unrollable l.loop
  && best >= float_of_int Measure.min_cycles_filter
  && mean /. best >= 1.05

(* One task per loop, in suite order — the canonical flattening shared by
   the batch sweep and the online trainer (which must rebuild the same
   ordering from journal records regardless of arrival order). *)
let tasks benchmarks =
  List.concat_map
    (fun (b : Suite.benchmark) ->
      Array.to_list
        (Array.mapi
           (fun i (loop, weight) -> (b.Suite.bname, i, loop, weight))
           b.Suite.loops))
    benchmarks
  |> Array.of_list

let task_key (config : Config.t) ~swp ~bench ~index loop =
  Label_store.sweep_key ~machine:config.Config.machine ~swp
    ~noise:config.Config.noise ~noise_seed:config.Config.noise_seed
    ~runs:config.Config.runs ~max_sim_iters:config.Config.max_sim_iters ~bench
    ~index loop

let collect ?progress ?(jobs = 1) ?journal (config : Config.t) ~swp benchmarks =
  (* Each loop's measurement RNG is derived from (noise_seed, benchmark,
     loop index) rather than threaded through a single sequential stream,
     so the noise a loop observes does not depend on which loops were
     measured before it — which is what makes the parallel sweep
     bit-identical to the sequential one, and a journalled resume
     (skipping already-measured loops) bit-identical to both. *)
  let tasks = tasks benchmarks in
  let total = Array.length tasks in
  let done_ = Atomic.make 0 in
  let progress_mutex = Mutex.create () in
  let measure (bench, i, loop, weight) =
    let key =
      Option.map (fun _ -> task_key config ~swp ~bench ~index:i loop) journal
    in
    let journalled =
      match (journal, key) with
      | Some j, Some k -> Label_store.find_sweep j ~key:k ~n_factors:Unroll.max_factor
      | _ -> None
    in
    let cycles =
      match journalled with
      | Some cycles ->
        Telemetry.incr Telemetry.global ~pass:"label-store" "resume-hits" 1;
        cycles
      | None ->
        let rng = Rng.derive config.Config.noise_seed bench i in
        let cycles =
          Measure.sweep ~noise:config.Config.noise ~runs:config.Config.runs
            ~max_sim_iters:config.Config.max_sim_iters ~rng
            ~machine:config.Config.machine ~swp loop
        in
        (match (journal, key) with
        | Some j, Some k ->
          Telemetry.incr Telemetry.global ~pass:"label-store" "sweeps-measured" 1;
          Label_store.append_sweep j ~key:k cycles
        | _ -> ());
        cycles
    in
    let d = Atomic.fetch_and_add done_ 1 + 1 in
    (match progress with
    | Some f ->
      Mutex.lock progress_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock progress_mutex) (fun () ->
          f ~done_:d ~total)
    | None -> ());
    { bench; loop; weight; cycles }
  in
  Parallel.map ~jobs measure tasks

(* --- joint (unroll factor × SWP) label space ----------------------------- *)

module Joint = struct
  let classes = 2 * Unroll.max_factor

  (* Class layout mirrors the concatenated cost array [off ++ on]:
     classes 0..7 are factors 1..8 with SWP off, 8..15 the same with SWP
     on.  Keeping encode/decode and the cost concatenation in one place
     is what the round-trip tests pin down. *)
  let encode ~factor ~swp =
    if factor < 1 || factor > Unroll.max_factor then
      invalid_arg "Labeling.Joint.encode: factor out of range";
    (if swp then Unroll.max_factor else 0) + factor - 1

  let decode c =
    if c < 0 || c >= classes then invalid_arg "Labeling.Joint.decode: class out of range";
    ((c mod Unroll.max_factor) + 1, c >= Unroll.max_factor)
end

let merge_joint ~off ~on =
  if Array.length off <> Array.length on then
    invalid_arg "Labeling: off/on sweeps differ in length";
  Array.map2
    (fun (o : labeled) (s : labeled) ->
      if o.loop.Loop.name <> s.loop.Loop.name || o.bench <> s.bench then
        invalid_arg "Labeling: off/on sweeps are not positionally aligned";
      { o with cycles = Array.append o.cycles s.cycles })
    off on

let to_joint_dataset ?(filtered = true) (config : Config.t) ~off ~on =
  let merged = merge_joint ~off ~on in
  let keep =
    if filtered then List.filter passes_filters (Array.to_list merged)
    else Array.to_list merged
  in
  let examples =
    List.map
      (fun l ->
        {
          Dataset.features = Features.extract config.Config.machine l.loop;
          label = Stats.min_index (Array.map float_of_int l.cycles);
          tag = l.loop.Loop.name;
          group = l.bench;
          costs = Array.map float_of_int l.cycles;
        })
      keep
  in
  Dataset.create ~feature_names:Features.names ~n_classes:Joint.classes examples

let to_dataset ?(filtered = true) (config : Config.t) labeled =
  let keep =
    if filtered then List.filter passes_filters (Array.to_list labeled)
    else Array.to_list labeled
  in
  let examples =
    List.map
      (fun l ->
        {
          Dataset.features = Features.extract config.Config.machine l.loop;
          label = best_factor l - 1;
          tag = l.loop.Loop.name;
          group = l.bench;
          costs = Array.map float_of_int l.cycles;
        })
      keep
  in
  Dataset.create ~feature_names:Features.names ~n_classes:Unroll.max_factor examples
