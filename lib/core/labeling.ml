type labeled = {
  bench : string;
  loop : Loop.t;
  weight : float;
  cycles : int array;
}

let best_factor l = 1 + Stats.min_index (Array.map float_of_int l.cycles)

let passes_filters l =
  let fc = Array.map float_of_int l.cycles in
  let best = fc.(Stats.min_index fc) in
  let mean = Stats.mean fc in
  Loop.unrollable l.loop
  && best >= float_of_int Measure.min_cycles_filter
  && mean /. best >= 1.05

let collect ?progress (config : Config.t) ~swp benchmarks =
  let rng = Rng.create config.Config.noise_seed in
  let total =
    List.fold_left (fun acc (b : Suite.benchmark) -> acc + Array.length b.Suite.loops) 0 benchmarks
  in
  let done_ = ref 0 in
  List.concat_map
    (fun (b : Suite.benchmark) ->
      Array.to_list
        (Array.map
           (fun (loop, weight) ->
             let cycles =
               Measure.sweep ~noise:config.Config.noise ~runs:config.Config.runs
                 ~max_sim_iters:config.Config.max_sim_iters ~rng
                 ~machine:config.Config.machine ~swp loop
             in
             incr done_;
             (match progress with
             | Some f -> f ~done_:!done_ ~total
             | None -> ());
             { bench = b.Suite.bname; loop; weight; cycles })
           b.Suite.loops))
    benchmarks

let to_dataset ?(filtered = true) (config : Config.t) labeled =
  let keep = if filtered then List.filter passes_filters labeled else labeled in
  let examples =
    List.map
      (fun l ->
        {
          Dataset.features = Features.extract config.Config.machine l.loop;
          label = best_factor l - 1;
          tag = l.loop.Loop.name;
          group = l.bench;
          costs = Array.map float_of_int l.cycles;
        })
      keep
  in
  Dataset.create ~feature_names:Features.names ~n_classes:Unroll.max_factor examples
