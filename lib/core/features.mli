(** The 38-feature loop characterisation (paper §4.1, Table 1).

    Every feature is a static property the compiler can compute at the
    point where it must pick an unroll factor: simple op counts, dependence
    DAG statistics, memory-reference structure, trip-count knowledge, and
    machine-relative estimates (critical path, resource-bound cycle
    length).  Unknown quantities use the paper's conventions (trip count
    −1 when unknown; minimum memory-carried dependence −1 when there is
    none).  Heavy-tailed magnitudes (trip count, data footprint, code size)
    are log-scaled so that distance-based learners see comparable ranges
    — the monotone transform leaves the feature's information content
    unchanged. *)

val names : string array
(** Exactly 38 names, index-aligned with {!extract}'s output. *)

val count : int

val index_of : string -> int
(** Index of a feature by name; raises [Not_found] for unknown names. *)

val extract : Machine.t -> Loop.t -> float array
(** The feature vector of a loop (length {!count}). *)
