(** The end-to-end compilation pipeline with a pluggable unroll predictor.

    [compile] is what the modified ORC does per loop: ask the predictor for
    a factor, unroll, clean up exposed redundancy, schedule (modulo
    scheduling with list fallback when software pipelining is on), and
    allocate registers.  [benchmark_speedup] reproduces the whole-program
    methodology of §6.1: per-benchmark runtimes combine the per-loop cycle
    measurements with the benchmark's loop weights and its non-loop
    fraction (Amdahl dilution), and speedups are reported against the ORC
    baseline. *)

val compile :
  Config.t -> swp:bool -> Predictor.t -> ?cycles:int array -> Loop.t ->
  int * Simulator.executable
(** The chosen factor and the compiled, schedulable result. *)

val run_compiled : Config.t -> Simulator.executable -> int
(** Execute a compiled loop on a fresh machine state (one warm-up entry
    already included in the executable's outer trips). *)

val predictions_for :
  Config.t -> swp:bool -> Predictor.t -> Labeling.labeled array -> int array
(** The factor the predictor picks for every labelled loop (oracle
    predictors consult the measurements). *)

val benchmark_speedup :
  Config.t -> swp:bool -> Predictor.t -> baseline:Predictor.t ->
  Suite.benchmark -> Labeling.labeled array -> float
(** Whole-benchmark speedup of [Predictor.t] over [baseline] (> 1.0 is
    faster), using each loop's measured per-factor cycles, the loop
    weights, and the benchmark's loop fraction.  Per-loop picks go through
    {!predictions_for}. *)

val speedup_rows :
  ?jobs:int ->
  Config.t -> swp:bool -> features:int array ->
  benchmarks:Suite.benchmark list -> dataset:Dataset.t ->
  Labeling.labeled array ->
  (string * bool * float * float * float * float) array
(** One row per benchmark under the leave-one-benchmark-out protocol of
    §6.1: [(name, is_fp, nn, svm, mlp, oracle)] speedups over the ORC
    baseline.  The learners are retrained per benchmark on the other
    benchmarks' loops (restricted to [features]); retrainings run across
    [jobs] worker domains (default 1), with the NN and SVM of a row
    trained as a nested fork-join, and order-independent output. *)

(** The decision space a realisation runs over. *)
type space =
  | Pinned of bool  (** factor only, SWP fixed to the given setting *)
  | Joint           (** (factor × SWP) chosen jointly per loop *)

val joint_benchmark_speedup :
  Config.t -> space:space -> Predictor.t -> baseline:Predictor.t ->
  Suite.benchmark -> Labeling.labeled array -> float
(** {!benchmark_speedup} generalised over a decision space.  Loops must
    carry the 16 merged cycle counts of {!Labeling.merge_joint}; a
    decision (factor, swp) costs the merged entry at its
    {!Labeling.Joint} class.  [Pinned s] restricts every decision (and
    the oracle's argmin) to SWP setting [s] — an independent re-derivation
    of the single-space engine, testable against it. *)

val joint_speedup_rows :
  ?jobs:int ->
  Config.t -> space:space -> features:int array ->
  benchmarks:Suite.benchmark list -> dataset:Dataset.t ->
  Labeling.labeled array ->
  (string * bool * float * float * float * float) array
(** {!speedup_rows} over a decision space: [(name, is_fp, nn, svm, mlp,
    oracle)] against the ORC baseline (ORC runs at the pinned setting,
    or at SWP off for [Joint]).  The caller supplies the dataset matching
    the space — 8-way single-space for [Pinned], 16-way joint for
    [Joint] — and the merged sweep from {!Labeling.merge_joint}. *)
