(** Experiment configuration.

    Everything an experiment run depends on lives here, so that results are
    reproducible from a single value: the machine model, workload scale and
    seed, measurement methodology, and learner hyperparameters. *)

type t = {
  seed : int;               (** master seed for workload generation *)
  noise_seed : int;         (** separate stream for measurement noise *)
  scale : float;            (** suite size multiplier (1.0 = paper scale) *)
  machine : Machine.t;
  noise : float;            (** relative measurement noise (§4.4) *)
  runs : int;               (** measurements per configuration (paper: 30) *)
  max_sim_iters : int;      (** exact simulation window per loop entry *)
  jobs : int;
  (** worker domains for the labelling sweep and cross-validation loops
      (1 = sequential; results are bit-identical either way) *)
  knn_radius : float;       (** near-neighbor radius (paper: 0.3) *)
  svm_kernel : Kernel.t;
  svm_gamma : float;        (** LS-SVM ridge parameter *)
  greedy_k : int;           (** features chosen per greedy run (paper: 5) *)
  mis_k : int;              (** features taken from the MIS ranking *)
  fig4_svm_cap : int;
  (** max training examples per leave-one-benchmark-out SVM training in the
      speedup experiments (keeps 24 retrainings tractable) *)
  loocv_svm_cap : int;
  (** max examples entering the LOOCV SVM factorisation (Table 2) *)
  mlp_seed : int;
  (** seed for MLP weight init, epoch shuffles and the holdout split *)
  mlp_hyper : Mlp.hyper;  (** MLP architecture and SGD hyperparameters *)
}

val default : t
(** Paper-scale configuration: 72 benchmarks, ~2,500 surviving loops. *)

val fast : t
(** Reduced configuration for tests and quick runs (~15% scale, fewer
    measurement repeats). *)

val of_env : unit -> t
(** [default], or [fast] when the environment variable [FAST] is set to a
    non-empty value other than ["0"].  The [JOBS] environment variable, if
    a positive integer, overrides [jobs]. *)
