let names =
  [|
    "nest_level";
    "num_ops";
    "num_fp_ops";
    "num_branches";
    "num_mem_ops";
    "num_operands";
    "num_implicit_ops";
    "num_unique_predicates";
    "critical_path_latency";
    "est_cycle_length";
    "is_fortran";
    "data_footprint_kb";
    "num_parallel_computations";
    "max_dependence_height";
    "max_memory_height";
    "max_control_height";
    "avg_dependence_height";
    "num_indirect_refs";
    "min_mem_carried_distance";
    "num_mem_carried_deps";
    "tripcount";
    "num_uses";
    "num_defs";
    "num_loads";
    "num_stores";
    "num_fdiv";
    "num_calls";
    "has_early_exit";
    "known_tripcount";
    "max_fan_in";
    "live_range_size";
    "reg_pressure_est";
    "code_size_bytes";
    "recurrence_latency";
    "may_alias";
    "trip_div2";
    "trip_div4";
    "trip_div8";
  |]

let count = Array.length names

let index_of name =
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name then found := i) names;
  if !found < 0 then raise Not_found else !found

(* Body-order live-range statistics: an approximation of what the register
   allocator will see, computable before scheduling.  Loop-carried values
   span the whole body. *)
let live_range_stats (loop : Loop.t) =
  let body = loop.Loop.body in
  let n = Array.length body in
  let first_def = Hashtbl.create 16 in
  let first_use = Hashtbl.create 16 in
  let last_occ = Hashtbl.create 16 in
  Array.iteri
    (fun i op ->
      let note_use (r : Op.reg) =
        if not (Hashtbl.mem first_use r) then Hashtbl.add first_use r i;
        Hashtbl.replace last_occ r i
      in
      List.iter note_use (Op.uses op);
      (match op.Op.pred with
      | Some p -> note_use { Op.id = p; cls = Op.Int }
      | None -> ());
      List.iter
        (fun r ->
          if not (Hashtbl.mem first_def r) then Hashtbl.add first_def r i;
          Hashtbl.replace last_occ r i)
        (Op.defs op))
    body;
  let ranges = ref [] in
  Hashtbl.iter
    (fun r d ->
      let carried =
        match Hashtbl.find_opt first_use r with
        | Some u -> u <= d
        | None -> false
      in
      let carried = carried || List.mem r loop.Loop.live_out in
      let lo, hi =
        if carried then (0, n - 1)
        else (d, Option.value (Hashtbl.find_opt last_occ r) ~default:d)
      in
      ranges := (lo, hi) :: !ranges)
    first_def;
  let ranges = !ranges in
  let avg_len =
    match ranges with
    | [] -> 0.0
    | _ ->
      let total = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges in
      float_of_int total /. float_of_int (List.length ranges)
  in
  let pressure = ref 0 in
  for i = 0 to n - 1 do
    let live = List.length (List.filter (fun (lo, hi) -> lo <= i && i <= hi) ranges) in
    pressure := max !pressure live
  done;
  (avg_len, float_of_int !pressure)

let extract machine (loop : Loop.t) =
  let latency op = Machine.latency machine op in
  let deps = Deps_memo.deps machine loop in
  let stats = Dag.analyze deps (fun i -> latency loop.Loop.body.(i)) in
  let f = float_of_int in
  let fdivs =
    Array.fold_left
      (fun acc (op : Op.t) -> match op.Op.opcode with Op.Fdiv -> acc + 1 | _ -> acc)
      0 loop.Loop.body
  in
  let calls =
    Array.fold_left
      (fun acc (op : Op.t) -> match op.Op.opcode with Op.Call -> acc + 1 | _ -> acc)
      0 loop.Loop.body
  in
  let avg_live, pressure = live_range_stats loop in
  let ops = Loop.op_count loop in
  let mem = Loop.memory_op_count loop in
  [|
    f loop.Loop.nest_level;
    f ops;
    f (Loop.float_op_count loop);
    f (Loop.branch_count loop);
    f mem;
    f (Loop.operand_count loop);
    f (Loop.implicit_count loop);
    f (Loop.unique_predicates loop);
    f stats.Dag.critical_path;
    f (Machine.res_cycles machine loop.Loop.body);
    (match loop.Loop.lang with Loop.C -> 0.0 | Loop.Fortran | Loop.Fortran90 -> 1.0);
    log1p
      (Array.fold_left
         (fun acc (a : Loop.array_info) -> acc +. (f (a.Loop.elem_size * a.Loop.length) /. 1024.0))
         0.0 loop.Loop.arrays);
    f stats.Dag.computations;
    f stats.Dag.max_dependence_height;
    f stats.Dag.max_memory_height;
    f stats.Dag.max_control_height;
    stats.Dag.avg_dependence_height;
    f (Loop.indirect_ref_count loop);
    (if stats.Dag.min_mem_to_mem_distance = max_int then -1.0
     else f stats.Dag.min_mem_to_mem_distance);
    f stats.Dag.mem_to_mem_dependences;
    (match loop.Loop.trip_static with Some n -> log1p (f n) | None -> -1.0);
    f (Loop.use_count loop);
    f (Loop.def_count loop);
    f (Loop.load_count loop);
    f (Loop.store_count loop);
    f fdivs;
    f calls;
    (if Loop.has_early_exit loop then 1.0 else 0.0);
    (match loop.Loop.trip_static with Some _ -> 1.0 | None -> 0.0);
    f stats.Dag.max_fan_in;
    avg_live;
    pressure;
    log1p (f (Loop.code_bytes loop));
    f stats.Dag.recurrence_latency;
    (if loop.Loop.aliased then 1.0 else 0.0);
    (match loop.Loop.trip_static with Some n when n mod 2 = 0 -> 1.0 | _ -> 0.0);
    (match loop.Loop.trip_static with Some n when n mod 4 = 0 -> 1.0 | _ -> 0.0);
    (match loop.Loop.trip_static with Some n when n mod 8 = 0 -> 1.0 | _ -> 0.0);
  |]
