type t = {
  seed : int;
  noise_seed : int;
  scale : float;
  machine : Machine.t;
  noise : float;
  runs : int;
  max_sim_iters : int;
  jobs : int;
  knn_radius : float;
  svm_kernel : Kernel.t;
  svm_gamma : float;
  greedy_k : int;
  mis_k : int;
  fig4_svm_cap : int;
  loocv_svm_cap : int;
  mlp_seed : int;
  mlp_hyper : Mlp.hyper;
}

let default =
  {
    seed = 2005;
    noise_seed = 42;
    scale = 1.0;
    machine = Machine.itanium2;
    noise = 0.015;
    runs = 30;
    max_sim_iters = 400;
    jobs = 1;
    knn_radius = 0.5;
    svm_kernel = Kernel.Rbf 0.03;
    svm_gamma = 16.0;
    greedy_k = 5;
    mis_k = 5;
    fig4_svm_cap = 2000;
    loocv_svm_cap = 2600;
    mlp_seed = 7;
    mlp_hyper = Mlp.default_hyper;
  }

let fast =
  {
    default with
    scale = 0.15;
    runs = 9;
    max_sim_iters = 200;
    fig4_svm_cap = 400;
  }

let of_env () =
  let base =
    match Sys.getenv_opt "FAST" with
    | Some v when v <> "" && v <> "0" -> fast
    | Some _ | None -> default
  in
  match Sys.getenv_opt "JOBS" with
  | Some v -> (
    match int_of_string_opt v with
    | Some j when j >= 1 -> { base with jobs = j }
    | Some _ | None -> base)
  | None -> base
