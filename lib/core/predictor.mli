(** Unroll-factor predictors: the pluggable heuristic interface.

    A predictor maps a loop to a factor in 1..8.  Learned predictors carry
    their scaler and feature subset so they can be dropped into the
    compiler exactly as §4.1 envisions; the oracle consults measured
    cycles and is only available where a sweep exists. *)

type t =
  | Fixed of int                    (** always the same factor *)
  | Orc                             (** the hand heuristic baseline *)
  | Oracle                          (** best measured factor *)
  | Nn of learned_nn
  | Svm of learned_svm
  | Tree of learned_tree
  | Mlp of learned_mlp

and learned_nn = {
  nn_model : Knn.t;
  nn_scaler : Scale.t;
  nn_features : int array;
}

and learned_svm = {
  svm_model : Multiclass.t;
  svm_scaler : Scale.t;
  svm_features : int array;
}

and learned_tree = {
  tree_model : Decision_tree.t;
  tree_scaler : Scale.t;
  tree_features : int array;
}

and learned_mlp = {
  mlp_model : Mlp.t;
  mlp_scaler : Scale.t;
  mlp_features : int array;
}

val name : t -> string

val train_nn : Config.t -> features:int array -> Dataset.t -> t
(** Populate the near-neighbor database from a (raw, unnormalised)
    dataset restricted to [features]. *)

val train_svm : ?cap:int -> Config.t -> features:int array -> Dataset.t -> t
(** Train the multi-class LS-SVM; [cap] optionally subsamples the training
    set (deterministically) to bound the O(N³) solve. *)

val train_tree : Config.t -> features:int array -> Dataset.t -> t

val train_mlp :
  ?jobs:int -> ?telemetry:Telemetry.t -> Config.t -> features:int array -> Dataset.t -> t
(** Train the from-scratch MLP ({!Mlp}) on the restricted, normalised
    dataset.  Deterministic from [config.mlp_seed] at every [jobs] value;
    [telemetry] records the ["mlp"] training pass. *)

val to_artifact :
  ?label_space:Model_artifact.label_space ->
  Config.t -> dataset_digest:string -> t -> Model_artifact.t
(** Package a learned NN/SVM/MLP predictor as a versioned,
    provenance-stamped deployment artifact ({!Model_artifact}): model
    state, feature subset, scale parameters, dataset/machine/code digests.
    [label_space] (default [Factor]) stamps which decision space the
    model's classes index into.  Raises [Invalid_argument] for predictors
    with no learned state. *)

val of_artifact : Model_artifact.t -> (t, string) result
(** Reconstruct the in-compiler predictor from an artifact — the single
    load path the CLI service and the compiler share.  Fails if the
    artifact's feature subset does not name the same features this build
    extracts (feature drift across code versions). *)

val predict :
  t -> Config.t -> swp:bool -> ?cycles:int array -> Loop.t -> int
(** Factor in 1..8.  Loops the compiler cannot unroll (calls, early exits)
    always get 1.  [cycles] (per-factor measurements) must be supplied for
    [Oracle]; raises [Invalid_argument] otherwise (not consulted for
    non-unrollable loops). *)

val featurize : t -> Config.t -> Loop.t -> float array
(** The scaled, feature-subset vector a learned predictor would classify
    for this loop — extraction, projection and normalisation exactly as
    {!predict} performs them.  Raises [Invalid_argument] for non-learned
    predictors. *)

val predict_scaled : t -> float array -> int
(** Classify an already-{!featurize}d vector (factor in 1..8, no
    unrollability check).  [predict t config ~swp loop] equals
    [predict_scaled t (featurize t config loop)] for every unrollable
    loop — the contract the batched {!Predict_service} relies on. *)

val classify_scaled : t -> float array -> int
(** Raw 0-based class of an already-{!featurize}d vector —
    [predict_scaled] minus the factor offset.  For joint-space models the
    class is a {!Labeling.Joint} index; decode with
    {!Labeling.Joint.decode}. *)

val predict_joint :
  t -> Config.t -> ?cycles:int array -> Loop.t -> int * bool
(** The joint (factor, SWP on/off) decision for a loop.  Non-unrollable
    loops get [(1, false)]; [Orc] is the hand heuristic at SWP off (it
    never enables pipelining by itself); [Oracle] needs the 16 merged
    cycle counts ({!Labeling.merge_joint} order) and picks their argmin.
    Learned predictors must have been trained on a 16-class joint
    dataset — their class output is decoded with
    {!Labeling.Joint.decode}. *)
