(** Unroll-factor predictors: the pluggable heuristic interface.

    A predictor maps a loop to a factor in 1..8.  Learned predictors carry
    their scaler and feature subset so they can be dropped into the
    compiler exactly as §4.1 envisions; the oracle consults measured
    cycles and is only available where a sweep exists. *)

type t =
  | Fixed of int                    (** always the same factor *)
  | Orc                             (** the hand heuristic baseline *)
  | Oracle                          (** best measured factor *)
  | Nn of learned_nn
  | Svm of learned_svm
  | Tree of learned_tree

and learned_nn = {
  nn_model : Knn.t;
  nn_scaler : Scale.t;
  nn_features : int array;
}

and learned_svm = {
  svm_model : Multiclass.t;
  svm_scaler : Scale.t;
  svm_features : int array;
}

and learned_tree = {
  tree_model : Decision_tree.t;
  tree_scaler : Scale.t;
  tree_features : int array;
}

val name : t -> string

val train_nn : Config.t -> features:int array -> Dataset.t -> t
(** Populate the near-neighbor database from a (raw, unnormalised)
    dataset restricted to [features]. *)

val train_svm : ?cap:int -> Config.t -> features:int array -> Dataset.t -> t
(** Train the multi-class LS-SVM; [cap] optionally subsamples the training
    set (deterministically) to bound the O(N³) solve. *)

val train_tree : Config.t -> features:int array -> Dataset.t -> t

val save : t -> string -> unit
(** Persist a trained predictor to a file (its own small text format).
    §4.1: "the learned classifier can easily be incorporated into a
    compiler" — a compiler ships the trained model as data, not code.
    Supported for [Nn] and [Svm]; other predictors raise
    [Invalid_argument] (they carry no learned state worth shipping). *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] with a diagnostic on malformed
    input. *)

val predict :
  t -> Config.t -> swp:bool -> ?cycles:int array -> Loop.t -> int
(** Factor in 1..8.  Loops the compiler cannot unroll (calls, early exits)
    always get 1.  [cycles] (per-factor measurements) must be supplied for
    [Oracle]; raises [Invalid_argument] otherwise (not consulted for
    non-unrollable loops). *)
