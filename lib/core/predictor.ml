type t =
  | Fixed of int
  | Orc
  | Oracle
  | Nn of learned_nn
  | Svm of learned_svm
  | Tree of learned_tree
  | Mlp of learned_mlp

and learned_nn = { nn_model : Knn.t; nn_scaler : Scale.t; nn_features : int array }

and learned_svm = {
  svm_model : Multiclass.t;
  svm_scaler : Scale.t;
  svm_features : int array;
}

and learned_tree = {
  tree_model : Decision_tree.t;
  tree_scaler : Scale.t;
  tree_features : int array;
}

and learned_mlp = { mlp_model : Mlp.t; mlp_scaler : Scale.t; mlp_features : int array }

let name = function
  | Fixed k -> Printf.sprintf "fixed-%d" k
  | Orc -> "orc"
  | Oracle -> "oracle"
  | Nn _ -> "nn"
  | Svm _ -> "svm"
  | Tree _ -> "tree"
  | Mlp _ -> "mlp"

let prepare ~features ds =
  let ds = Dataset.select_features ds features in
  let scaler = Scale.fit ds in
  (Scale.apply scaler ds, scaler)

let train_nn (config : Config.t) ~features ds =
  let scaled, scaler = prepare ~features ds in
  let model =
    Knn.train ~radius:config.Config.knn_radius ~n_classes:ds.Dataset.n_classes
      (Dataset.points scaled)
  in
  Nn { nn_model = model; nn_scaler = scaler; nn_features = features }

let subsample_cap ds cap =
  let n = Dataset.size ds in
  if n <= cap then ds
  else begin
    let stride = float_of_int n /. float_of_int cap in
    let keep = List.init cap (fun i -> int_of_float (float_of_int i *. stride)) in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

let train_svm ?cap (config : Config.t) ~features ds =
  let ds = match cap with Some c -> subsample_cap ds c | None -> ds in
  let scaled, scaler = prepare ~features ds in
  let model =
    Multiclass.train ~n_classes:ds.Dataset.n_classes ~kernel:config.Config.svm_kernel
      ~gamma:config.Config.svm_gamma (Dataset.points scaled)
  in
  Svm { svm_model = model; svm_scaler = scaler; svm_features = features }

let train_mlp ?jobs ?telemetry (config : Config.t) ~features ds =
  let scaled, scaler = prepare ~features ds in
  let model, _stats =
    Mlp.train ?jobs ?telemetry ~seed:config.Config.mlp_seed ~hyper:config.Config.mlp_hyper
      ~n_classes:ds.Dataset.n_classes (Dataset.points scaled)
  in
  Mlp { mlp_model = model; mlp_scaler = scaler; mlp_features = features }

let train_tree (_config : Config.t) ~features ds =
  let scaled, scaler = prepare ~features ds in
  let model =
    Decision_tree.train ~n_classes:ds.Dataset.n_classes (Dataset.points scaled)
  in
  Tree { tree_model = model; tree_scaler = scaler; tree_features = features }

let project features x = Array.map (fun j -> x.(j)) features

(* --- versioned artifacts ------------------------------------------------

   The deployment format (lib/store): provenance-stamped, checksummed,
   bit-exact.  [to_artifact]/[of_artifact] are the single conversion the
   CLI trainer, the predict service, and the in-compiler load path all
   share, so a shipped model cannot diverge from the in-process one. *)

let to_artifact ?(label_space = Model_artifact.Factor) (config : Config.t) ~dataset_digest t =
  let provenance =
    {
      Model_artifact.dataset_digest;
      machine_name = config.Config.machine.Machine.mach_name;
      machine_digest = Model_artifact.machine_digest config.Config.machine;
      code_version = Model_artifact.code_version;
    }
  in
  let names features = Array.map (fun j -> Features.names.(j)) features in
  match t with
  | Nn { nn_model; nn_scaler; nn_features } ->
    let radius, n_classes, db = Knn.export nn_model in
    let mean, std = Scale.export nn_scaler in
    {
      Model_artifact.provenance;
      label_space;
      features = nn_features;
      feature_names = names nn_features;
      mean;
      std;
      payload = Model_artifact.Nn { radius; n_classes; db };
    }
  | Svm { svm_model; svm_scaler; svm_features } ->
    let codewords, machines = Multiclass.export svm_model in
    if Array.length machines = 0 then invalid_arg "Predictor.to_artifact: empty SVM";
    let mean, std = Scale.export svm_scaler in
    {
      Model_artifact.provenance;
      label_space;
      features = svm_features;
      feature_names = names svm_features;
      mean;
      std;
      payload =
        Model_artifact.Svm
          {
            kernel = Lssvm.kernel_of machines.(0);
            codewords;
            alphas = Array.map Lssvm.export machines;
            points = Lssvm.training_points machines.(0);
          };
    }
  | Mlp { mlp_model; mlp_scaler; mlp_features } ->
    let dims, weights, biases = Mlp.export mlp_model in
    let mean, std = Scale.export mlp_scaler in
    {
      Model_artifact.provenance;
      label_space;
      features = mlp_features;
      feature_names = names mlp_features;
      mean;
      std;
      payload = Model_artifact.Mlp { dims; weights; biases };
    }
  | Fixed _ | Orc | Oracle | Tree _ ->
    invalid_arg "Predictor.to_artifact: only learned NN/SVM/MLP predictors persist"

let of_artifact (a : Model_artifact.t) =
  (* The artifact names the features it was trained on; a mismatch with
     this build's feature table means the indices would silently select
     different loop properties — reject instead. *)
  let drift =
    Array.to_list
      (Array.map2
         (fun j name ->
           if j < 0 || j >= Features.count then Some (Printf.sprintf "index %d out of range" j)
           else if Features.names.(j) <> name then
             Some (Printf.sprintf "feature %d is %s here, %s in the artifact" j Features.names.(j) name)
           else None)
         a.Model_artifact.features a.Model_artifact.feature_names)
    |> List.filter_map Fun.id
  in
  match drift with
  | d :: _ -> Error ("Predictor.of_artifact: feature drift — " ^ d)
  | [] -> (
    let scaler = Scale.import ~mean:a.Model_artifact.mean ~std:a.Model_artifact.std in
    match a.Model_artifact.payload with
    | Model_artifact.Nn { radius; n_classes; db } ->
      Ok
        (Nn
           {
             nn_model = Knn.train ~radius ~n_classes db;
             nn_scaler = scaler;
             nn_features = a.Model_artifact.features;
           })
    | Model_artifact.Svm { kernel; codewords; alphas; points } ->
      let machines = Array.map (fun al -> Lssvm.import ~kernel ~points ~alphas:al) alphas in
      Ok
        (Svm
           {
             svm_model = Multiclass.import ~codewords ~machines;
             svm_scaler = scaler;
             svm_features = a.Model_artifact.features;
           })
    | Model_artifact.Mlp { dims; weights; biases } ->
      Ok
        (Mlp
           {
             mlp_model = Mlp.import ~dims ~weights ~biases;
             mlp_scaler = scaler;
             mlp_features = a.Model_artifact.features;
           }))

let predict t (config : Config.t) ~swp ?cycles loop =
  (* Like ORC, the compiler leaves loops with calls or early exits rolled,
     whatever the predictor would say. *)
  if not (Loop.unrollable loop) then 1
  else
  match t with
  | Fixed k -> max 1 (min Unroll.max_factor k)
  | Orc -> Orc_heuristic.predict config.Config.machine ~swp loop
  | Oracle -> begin
    match cycles with
    | Some cs -> 1 + Stats.min_index (Array.map float_of_int cs)
    | None -> invalid_arg "Predictor.predict: Oracle needs measured cycles"
  end
  | Nn { nn_model; nn_scaler; nn_features } ->
    let x = project nn_features (Features.extract config.Config.machine loop) in
    1 + Knn.predict nn_model (Scale.transform nn_scaler x)
  | Svm { svm_model; svm_scaler; svm_features } ->
    let x = project svm_features (Features.extract config.Config.machine loop) in
    1 + Multiclass.predict svm_model (Scale.transform svm_scaler x)
  | Tree { tree_model; tree_scaler; tree_features } ->
    let x = project tree_features (Features.extract config.Config.machine loop) in
    1 + Decision_tree.predict tree_model (Scale.transform tree_scaler x)
  | Mlp { mlp_model; mlp_scaler; mlp_features } ->
    let x = project mlp_features (Features.extract config.Config.machine loop) in
    1 + Mlp.predict mlp_model (Scale.transform mlp_scaler x)

let featurize t (config : Config.t) loop =
  let go features scaler =
    Scale.transform scaler (project features (Features.extract config.Config.machine loop))
  in
  match t with
  | Nn { nn_scaler; nn_features; _ } -> go nn_features nn_scaler
  | Svm { svm_scaler; svm_features; _ } -> go svm_features svm_scaler
  | Tree { tree_scaler; tree_features; _ } -> go tree_features tree_scaler
  | Mlp { mlp_scaler; mlp_features; _ } -> go mlp_features mlp_scaler
  | Fixed _ | Orc | Oracle ->
    invalid_arg "Predictor.featurize: only learned predictors have a feature space"

let classify_scaled t x =
  match t with
  | Nn { nn_model; _ } -> Knn.predict nn_model x
  | Svm { svm_model; _ } -> Multiclass.predict svm_model x
  | Tree { tree_model; _ } -> Decision_tree.predict tree_model x
  | Mlp { mlp_model; _ } -> Mlp.predict mlp_model x
  | Fixed _ | Orc | Oracle ->
    invalid_arg "Predictor.classify_scaled: only learned predictors take feature vectors"

let predict_scaled t x = 1 + classify_scaled t x

(* --- joint (factor × SWP) decisions -------------------------------------- *)

let predict_joint t (config : Config.t) ?cycles loop =
  if not (Loop.unrollable loop) then (1, false)
  else
  match t with
  | Fixed k -> (max 1 (min Unroll.max_factor k), false)
  (* The hand heuristic never turns SWP on by itself — it picks a factor
     for whatever pipeline setting it is given.  As a joint baseline it
     is ORC at SWP off, mirroring the single-decision experiments. *)
  | Orc -> (Orc_heuristic.predict config.Config.machine ~swp:false loop, false)
  | Oracle -> begin
    match cycles with
    | Some cs ->
      if Array.length cs <> Labeling.Joint.classes then
        invalid_arg "Predictor.predict_joint: Oracle needs the 16 merged cycle counts";
      Labeling.Joint.decode (Stats.min_index (Array.map float_of_int cs))
    | None -> invalid_arg "Predictor.predict_joint: Oracle needs measured cycles"
  end
  | Nn _ | Svm _ | Tree _ | Mlp _ ->
    Labeling.Joint.decode (classify_scaled t (featurize t config loop))
