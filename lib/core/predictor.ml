type t =
  | Fixed of int
  | Orc
  | Oracle
  | Nn of learned_nn
  | Svm of learned_svm
  | Tree of learned_tree

and learned_nn = { nn_model : Knn.t; nn_scaler : Scale.t; nn_features : int array }

and learned_svm = {
  svm_model : Multiclass.t;
  svm_scaler : Scale.t;
  svm_features : int array;
}

and learned_tree = {
  tree_model : Decision_tree.t;
  tree_scaler : Scale.t;
  tree_features : int array;
}

let name = function
  | Fixed k -> Printf.sprintf "fixed-%d" k
  | Orc -> "orc"
  | Oracle -> "oracle"
  | Nn _ -> "nn"
  | Svm _ -> "svm"
  | Tree _ -> "tree"

let prepare ~features ds =
  let ds = Dataset.select_features ds features in
  let scaler = Scale.fit ds in
  (Scale.apply scaler ds, scaler)

let train_nn (config : Config.t) ~features ds =
  let scaled, scaler = prepare ~features ds in
  let model =
    Knn.train ~radius:config.Config.knn_radius ~n_classes:ds.Dataset.n_classes
      (Dataset.points scaled)
  in
  Nn { nn_model = model; nn_scaler = scaler; nn_features = features }

let subsample_cap ds cap =
  let n = Dataset.size ds in
  if n <= cap then ds
  else begin
    let stride = float_of_int n /. float_of_int cap in
    let keep = List.init cap (fun i -> int_of_float (float_of_int i *. stride)) in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

let train_svm ?cap (config : Config.t) ~features ds =
  let ds = match cap with Some c -> subsample_cap ds c | None -> ds in
  let scaled, scaler = prepare ~features ds in
  let model =
    Multiclass.train ~n_classes:ds.Dataset.n_classes ~kernel:config.Config.svm_kernel
      ~gamma:config.Config.svm_gamma (Dataset.points scaled)
  in
  Svm { svm_model = model; svm_scaler = scaler; svm_features = features }

let train_tree (_config : Config.t) ~features ds =
  let scaled, scaler = prepare ~features ds in
  let model =
    Decision_tree.train ~n_classes:ds.Dataset.n_classes (Dataset.points scaled)
  in
  Tree { tree_model = model; tree_scaler = scaler; tree_features = features }

let project features x = Array.map (fun j -> x.(j)) features

(* Persistence: a small CSV-backed format.  The first row tags the
   predictor kind; the rest carry the scaler, the feature subset, and the
   learned state (the NN database or the SVM dual coefficients plus
   training points). *)

let floats_row tag xs = tag :: List.map string_of_float (Array.to_list xs)
let ints_row tag xs = tag :: List.map string_of_int (Array.to_list xs)

let parse_floats = function
  | _ :: rest -> Array.of_list (List.map float_of_string rest)
  | [] -> failwith "Predictor.load: empty row"

let parse_ints = function
  | _ :: rest -> Array.of_list (List.map int_of_string rest)
  | [] -> failwith "Predictor.load: empty row"

let save t path =
  match t with
  | Nn { nn_model; nn_scaler; nn_features } ->
    let radius, classes, db = Knn.export nn_model in
    let mean, std = Scale.export nn_scaler in
    let rows =
      [ [ "nn" ]; [ "radius"; string_of_float radius ]; [ "classes"; string_of_int classes ] ]
      @ [ ints_row "features" nn_features; floats_row "mean" mean; floats_row "std" std ]
      @ Array.to_list
          (Array.map
             (fun (x, y) -> "point" :: string_of_int y :: List.map string_of_float (Array.to_list x))
             db)
    in
    Csvio.write path rows
  | Svm { svm_model; svm_scaler; svm_features } ->
    let codewords, machines = Multiclass.export svm_model in
    if Array.length machines = 0 then invalid_arg "Predictor.save: empty SVM";
    let mean, std = Scale.export svm_scaler in
    let points = Lssvm.training_points machines.(0) in
    let kernel = Lssvm.kernel_of machines.(0) in
    let rows =
      [ [ "svm" ]; [ "kernel"; Kernel.name kernel ] ]
      @ [ ints_row "features" svm_features; floats_row "mean" mean; floats_row "std" std ]
      @ Array.to_list (Array.map (fun cw -> ints_row "codeword" cw) codewords)
      @ Array.to_list (Array.map (fun m -> floats_row "alphas" (Lssvm.export m)) machines)
      @ Array.to_list (Array.map (fun x -> floats_row "point" x) points)
    in
    Csvio.write path rows
  | Fixed _ | Orc | Oracle | Tree _ ->
    invalid_arg "Predictor.save: only learned NN/SVM predictors persist"

let load path =
  match Csvio.read path with
  | [ "nn" ] :: rest ->
    let radius = ref 0.3 and classes = ref 8 in
    let features = ref [||] and mean = ref [||] and std = ref [||] in
    let db = ref [] in
    List.iter
      (fun row ->
        match row with
        | [ "radius"; r ] -> radius := float_of_string r
        | [ "classes"; c ] -> classes := int_of_string c
        | "features" :: _ -> features := parse_ints row
        | "mean" :: _ -> mean := parse_floats row
        | "std" :: _ -> std := parse_floats row
        | "point" :: y :: xs ->
          db := (Array.of_list (List.map float_of_string xs), int_of_string y) :: !db
        | _ -> failwith "Predictor.load: unrecognised NN row")
      rest;
    let model = Knn.train ~radius:!radius ~n_classes:!classes (Array.of_list (List.rev !db)) in
    Nn
      {
        nn_model = model;
        nn_scaler = Scale.import ~mean:!mean ~std:!std;
        nn_features = !features;
      }
  | [ "svm" ] :: rest ->
    let kernel = ref Kernel.Linear in
    let features = ref [||] and mean = ref [||] and std = ref [||] in
    let codewords = ref [] and alphas = ref [] and points = ref [] in
    List.iter
      (fun row ->
        match row with
        | [ "kernel"; k ] -> begin
          match Kernel.of_string k with
          | Some kk -> kernel := kk
          | None -> failwith ("Predictor.load: bad kernel " ^ k)
        end
        | "features" :: _ -> features := parse_ints row
        | "mean" :: _ -> mean := parse_floats row
        | "std" :: _ -> std := parse_floats row
        | "codeword" :: _ -> codewords := parse_ints row :: !codewords
        | "alphas" :: _ -> alphas := parse_floats row :: !alphas
        | "point" :: _ -> points := parse_floats row :: !points
        | _ -> failwith "Predictor.load: unrecognised SVM row")
      rest;
    let points = Array.of_list (List.rev !points) in
    let machines =
      Array.of_list
        (List.rev_map (fun a -> Lssvm.import ~kernel:!kernel ~points ~alphas:a) !alphas)
    in
    let model =
      Multiclass.import ~codewords:(Array.of_list (List.rev !codewords)) ~machines
    in
    Svm
      {
        svm_model = model;
        svm_scaler = Scale.import ~mean:!mean ~std:!std;
        svm_features = !features;
      }
  | _ -> failwith "Predictor.load: unsupported or malformed file"


let predict t (config : Config.t) ~swp ?cycles loop =
  (* Like ORC, the compiler leaves loops with calls or early exits rolled,
     whatever the predictor would say. *)
  if not (Loop.unrollable loop) then 1
  else
  match t with
  | Fixed k -> max 1 (min Unroll.max_factor k)
  | Orc -> Orc_heuristic.predict config.Config.machine ~swp loop
  | Oracle -> begin
    match cycles with
    | Some cs -> 1 + Stats.min_index (Array.map float_of_int cs)
    | None -> invalid_arg "Predictor.predict: Oracle needs measured cycles"
  end
  | Nn { nn_model; nn_scaler; nn_features } ->
    let x = project nn_features (Features.extract config.Config.machine loop) in
    1 + Knn.predict nn_model (Scale.transform nn_scaler x)
  | Svm { svm_model; svm_scaler; svm_features } ->
    let x = project svm_features (Features.extract config.Config.machine loop) in
    1 + Multiclass.predict svm_model (Scale.transform svm_scaler x)
  | Tree { tree_model; tree_scaler; tree_features } ->
    let x = project tree_features (Features.extract config.Config.machine loop) in
    1 + Decision_tree.predict tree_model (Scale.transform tree_scaler x)
