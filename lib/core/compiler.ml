let compile (config : Config.t) ~swp predictor ?cycles loop =
  let u = Predictor.predict predictor config ~swp ?cycles loop in
  (u, Simulator.compile config.Config.machine ~swp loop u)

let run_compiled (config : Config.t) exe =
  let state = Simulator.create_state config.Config.machine in
  Simulator.run ~max_sim_iters:config.Config.max_sim_iters state exe

let predictions_for config ~swp predictor labeled =
  Array.of_list
    (List.map
       (fun (l : Labeling.labeled) ->
         Predictor.predict predictor config ~swp ~cycles:l.Labeling.cycles l.Labeling.loop)
       labeled)

let benchmark_speedup config ~swp predictor ~baseline (b : Suite.benchmark) labeled =
  let mine =
    List.filter (fun (l : Labeling.labeled) -> l.Labeling.bench = b.Suite.bname) labeled
  in
  match mine with
  | [] -> 1.0
  | _ ->
    (* Relative loop time under a predictor, weighted by each loop's share
       of baseline loop runtime. *)
    let ratio =
      let num = ref 0.0 and den = ref 0.0 in
      List.iter
        (fun (l : Labeling.labeled) ->
          let pick p =
            Predictor.predict p config ~swp ~cycles:l.Labeling.cycles l.Labeling.loop
          in
          let u_p = pick predictor and u_b = pick baseline in
          let c_p = float_of_int l.Labeling.cycles.(u_p - 1) in
          let c_b = float_of_int l.Labeling.cycles.(u_b - 1) in
          num := !num +. (l.Labeling.weight *. (c_p /. c_b));
          den := !den +. l.Labeling.weight)
        mine;
      if !den > 0.0 then !num /. !den else 1.0
    in
    let f = b.Suite.loop_fraction in
    1.0 /. ((1.0 -. f) +. (f *. ratio))
