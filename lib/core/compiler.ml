let compile (config : Config.t) ~swp predictor ?cycles loop =
  let u = Predictor.predict predictor config ~swp ?cycles loop in
  (u, Simulator.compile config.Config.machine ~swp loop u)

let run_compiled (config : Config.t) exe =
  let state = Simulator.create_state config.Config.machine in
  Simulator.run ~max_sim_iters:config.Config.max_sim_iters state exe

let predictions_for config ~swp predictor labeled =
  Array.map
    (fun (l : Labeling.labeled) ->
      Predictor.predict predictor config ~swp ~cycles:l.Labeling.cycles l.Labeling.loop)
    labeled

let benchmark_speedup config ~swp predictor ~baseline (b : Suite.benchmark) labeled =
  let mine =
    Array.of_list
      (List.filter
         (fun (l : Labeling.labeled) -> l.Labeling.bench = b.Suite.bname)
         (Array.to_list labeled))
  in
  if Array.length mine = 0 then 1.0
  else begin
    (* Relative loop time under a predictor, weighted by each loop's share
       of baseline loop runtime.  Both pick arrays come from
       [predictions_for] — the single place per-loop factors are chosen. *)
    let picks = predictions_for config ~swp predictor mine in
    let base = predictions_for config ~swp baseline mine in
    let ratio =
      let num = ref 0.0 and den = ref 0.0 in
      Array.iteri
        (fun i (l : Labeling.labeled) ->
          let c_p = float_of_int l.Labeling.cycles.(picks.(i) - 1) in
          let c_b = float_of_int l.Labeling.cycles.(base.(i) - 1) in
          num := !num +. (l.Labeling.weight *. (c_p /. c_b));
          den := !den +. l.Labeling.weight)
        mine;
      if !den > 0.0 then !num /. !den else 1.0
    in
    let f = b.Suite.loop_fraction in
    1.0 /. ((1.0 -. f) +. (f *. ratio))
  end

let speedup_rows ?(jobs = 1) (config : Config.t) ~swp ~features ~benchmarks ~dataset
    labeled =
  (* Leave-one-benchmark-out protocol (§6.1): for each benchmark, train the
     learners on every other benchmark's loops, then realise the speedup on
     the held-out one.  The retrainings are independent, so they fan out
     over [jobs] worker domains; rows come back in benchmark order.  Within
     a row the NN and SVM trainings are themselves independent, so when the
     scheduler has room they run as a nested fork-join — idle workers steal
     one half instead of waiting out the row. *)
  Parallel.map ~jobs
    (fun (b : Suite.benchmark) ->
      let train = Dataset.without_group dataset b.Suite.bname in
      let nn, svm =
        Parallel.fork_join
          ~jobs:(if jobs > 1 then 2 else 1)
          (fun () -> Predictor.train_nn config ~features train)
          (fun () ->
            Predictor.train_svm ~cap:config.Config.fig4_svm_cap config ~features train)
      in
      let mlp = Predictor.train_mlp config ~features train in
      let sp p = benchmark_speedup config ~swp p ~baseline:Predictor.Orc b labeled in
      (b.Suite.bname, b.Suite.fp, sp nn, sp svm, sp mlp, sp Predictor.Oracle))
    (Array.of_list benchmarks)

(* --- joint (factor × SWP) realisation ------------------------------------ *)

type space = Pinned of bool | Joint

(* The generalised engine below works over loops carrying the 16 merged
   cycle counts of Labeling.merge_joint; a decision (factor, swp) costs
   the merged entry at its Joint class.  [Pinned s] restricts decisions to
   one SWP setting — deliberately re-deriving what [speedup_rows] computes
   over a single-space sweep, so the two implementations can be checked
   against each other. *)

let joint_cost (l : Labeling.labeled) ~factor ~swp =
  float_of_int l.Labeling.cycles.(Labeling.Joint.encode ~factor ~swp)

let joint_decisions_for config ~space predictor merged =
  Array.map
    (fun (l : Labeling.labeled) ->
      match space with
      | Pinned swp ->
        let half =
          Array.sub l.Labeling.cycles
            (if swp then Unroll.max_factor else 0)
            Unroll.max_factor
        in
        (Predictor.predict predictor config ~swp ~cycles:half l.Labeling.loop, swp)
      | Joint -> Predictor.predict_joint predictor config ~cycles:l.Labeling.cycles l.Labeling.loop)
    merged

let joint_benchmark_speedup config ~space predictor ~baseline (b : Suite.benchmark) merged =
  let mine =
    Array.of_list
      (List.filter
         (fun (l : Labeling.labeled) -> l.Labeling.bench = b.Suite.bname)
         (Array.to_list merged))
  in
  if Array.length mine = 0 then 1.0
  else begin
    let picks = joint_decisions_for config ~space predictor mine in
    let base = joint_decisions_for config ~space baseline mine in
    let ratio =
      let num = ref 0.0 and den = ref 0.0 in
      Array.iteri
        (fun i (l : Labeling.labeled) ->
          let pf, ps = picks.(i) and bf, bs = base.(i) in
          let c_p = joint_cost l ~factor:pf ~swp:ps in
          let c_b = joint_cost l ~factor:bf ~swp:bs in
          num := !num +. (l.Labeling.weight *. (c_p /. c_b));
          den := !den +. l.Labeling.weight)
        mine;
      if !den > 0.0 then !num /. !den else 1.0
    in
    let f = b.Suite.loop_fraction in
    1.0 /. ((1.0 -. f) +. (f *. ratio))
  end

let joint_speedup_rows ?(jobs = 1) (config : Config.t) ~space ~features ~benchmarks
    ~dataset merged =
  (* Same LOBO protocol as [speedup_rows], over decisions in [space]: the
     caller supplies the matching dataset (8-way single-space for
     [Pinned], 16-way joint for [Joint]) and the merged sweep.  The ORC
     baseline runs at the pinned SWP setting, or at SWP off for [Joint] —
     the hand heuristic never enables pipelining by itself. *)
  Parallel.map ~jobs
    (fun (b : Suite.benchmark) ->
      let train = Dataset.without_group dataset b.Suite.bname in
      let nn, svm =
        Parallel.fork_join
          ~jobs:(if jobs > 1 then 2 else 1)
          (fun () -> Predictor.train_nn config ~features train)
          (fun () ->
            Predictor.train_svm ~cap:config.Config.fig4_svm_cap config ~features train)
      in
      let mlp = Predictor.train_mlp config ~features train in
      let sp p = joint_benchmark_speedup config ~space p ~baseline:Predictor.Orc b merged in
      (b.Suite.bname, b.Suite.fp, sp nn, sp svm, sp mlp, sp Predictor.Oracle))
    (Array.of_list benchmarks)
