(** Reproduction drivers: one per table and figure of the paper's
    evaluation.

    [build_env] performs the heavy, shared work once — generating the
    72-benchmark suite, sweeping every loop at factors 1..8 with software
    pipelining disabled and enabled, building the filtered datasets, and
    running feature selection.  Each experiment then renders its table or
    figure as text (ASCII plots for the figures), shaped after the paper's
    artefact. *)

type speedup_row = string * bool * float * float * float * float
(** [(bname, is_fp, nn, svm, mlp, oracle)] speedups over the ORC baseline. *)

type env = {
  config : Config.t;
  benchmarks : Suite.benchmark list;
  labeled_off : Labeling.labeled array;  (** all loops, SWP disabled *)
  labeled_on : Labeling.labeled array;   (** all loops, SWP enabled *)
  merged : Labeling.labeled array;
  (** positionally merged off++on sweep ({!Labeling.merge_joint}): every
      loop with its 16 joint cycle counts *)
  filtered_off : Labeling.labeled array; (** filter-surviving, dataset order *)
  filtered_on : Labeling.labeled array;
  dataset_off : Dataset.t;
  dataset_on : Dataset.t;
  dataset_joint : Dataset.t;             (** 16-class joint-label dataset *)
  selected : int array;
  (** feature subset used for classification (§7: union of the MIS top-k
      and the greedy picks for both classifiers) *)
  rows_off : speedup_row array Lazy.t;
  rows_on : speedup_row array Lazy.t;
  rows_joint : speedup_row array Lazy.t;
  (** per-benchmark speedups from {!Compiler.speedup_rows} (and the joint
      engine), computed on first demand and shared between the figure
      drivers, {!joint} and {!summary} *)
}

val build_env : ?progress:bool -> Config.t -> env
(** [progress] (default true) prints coarse progress to stderr. *)

val select_feature_subset :
  ?progress:bool -> ?warm:Greedy_select.Warm.t -> Config.t -> Dataset.t ->
  int array
(** §7's committed feature subset: the union (first-appearance order) of
    the MIS top-[mis_k] features and the greedy picks of both the NN and
    the SVM.  Shared by {!build_env} and the {!Train} pipeline so the
    experiments and a deployed artifact select identically.

    [warm] supplies a {!Greedy_select.Warm} cache for the greedy-NN leg —
    identical picks, warm-started when the scaled dataset extends the
    previous call's.  The greedy-SVM leg always re-runs in full (its
    deterministic subsample re-strides as the dataset grows, so no
    incremental bound applies). *)

val fig1 : env -> string
(** Near-neighbor classification on LDA-projected data (4 classes, ≥30%
    margin), with an example query. *)

val fig2 : env -> string
(** SVM decision regions on the projected plane (binary, ≥30% margin). *)

val fig3 : env -> string
(** Histogram of optimal unroll factors, SWP disabled. *)

val table2 : env -> string
(** Prediction-rank distribution for NN, SVM and the ORC heuristic, with
    the misprediction cost column (LOOCV). *)

val table3 : env -> string
(** Top features by mutual information score. *)

val table4 : env -> string
(** Top features by greedy selection for 1-NN and the SVM. *)

val fig4 : env -> string
(** Per-benchmark speedup over ORC, SWP disabled (NN, SVM, oracle), with
    SPEC and SPECfp aggregates. *)

val fig5 : env -> string
(** Same with SWP enabled. *)

val joint : env -> string
(** The widened (unroll factor × SWP) decision space: leave-one-benchmark-out
    accuracy of NN / LS-SVM / MLP on the 8-way factor head vs the 16-way
    joint head, the joint realized-speedup table over the ORC SWP-off
    baseline, and a verdict line comparing the best joint pipeline against
    the best single-decision one. *)

val summary : env -> string
(** Headline numbers next to the paper's claims. *)

val ablations : env -> string
(** Design-choice studies beyond the paper's tables:
    - NN radius sensitivity (the paper picked 0.3 "experimentally", §5.1);
    - one-vs-rest vs dense error-correcting output codes (§5.2 mentions
      ECOC as a possible improvement it does not use);
    - the selected feature subset vs all 38 features (§7's claim that a
      well-chosen subset improves accuracy);
    - the binary unroll/don't-unroll problem of Monsifrot et al. (§9):
      decision-tree accuracy vs the always-unroll baseline the paper
      derives from Figure 3. *)

val all : env -> string
(** Every experiment, concatenated in paper order (ablations last). *)
