type speedup_row = string * bool * float * float * float * float

type env = {
  config : Config.t;
  benchmarks : Suite.benchmark list;
  labeled_off : Labeling.labeled array;
  labeled_on : Labeling.labeled array;
  merged : Labeling.labeled array;
  filtered_off : Labeling.labeled array;
  filtered_on : Labeling.labeled array;
  dataset_off : Dataset.t;
  dataset_on : Dataset.t;
  dataset_joint : Dataset.t;
  selected : int array;
  rows_off : speedup_row array Lazy.t;
  rows_on : speedup_row array Lazy.t;
  rows_joint : speedup_row array Lazy.t;
}

let info progress fmt =
  if progress then Printf.eprintf (fmt ^^ "\n%!") else Printf.ifprintf stderr fmt

(* §7: classification uses the union of the MIS top features and the greedy
   picks of both classifiers. *)
let select_feature_subset ?(progress = false) ?warm (config : Config.t) dataset =
  let scaled = Scale.apply (Scale.fit dataset) dataset in
  let mis = Array.to_list (Mis.rank ~jobs:config.Config.jobs dataset) in
  let mis_top = List.filteri (fun i _ -> i < config.Config.mis_k) mis |> List.map fst in
  info progress "feature selection: MIS done";
  let nn_picks =
    (* The warm cache returns picks identical to [nn_run] — selection is
       the same function of the dataset either way.  The SVM side below
       always re-runs in full: its deterministic subsample re-strides as
       the dataset grows, so no warm bound applies (the invalidation rule
       of DESIGN.md §14). *)
    (match warm with
    | Some cache ->
      Greedy_select.Warm.nn_run ~jobs:config.Config.jobs ~telemetry:Telemetry.global
        ~k:config.Config.greedy_k cache scaled
    | None ->
      Greedy_select.nn_run ~jobs:config.Config.jobs ~telemetry:Telemetry.global
        ~k:config.Config.greedy_k scaled)
    |> List.map fst
  in
  info progress "feature selection: greedy NN done";
  let svm_picks =
    Greedy_select.svm_run ~jobs:config.Config.jobs ~telemetry:Telemetry.global
      ~kernel:config.Config.svm_kernel ~gamma:config.Config.svm_gamma
      ~max_examples:300 ~k:config.Config.greedy_k scaled
    |> List.map fst
  in
  info progress "feature selection: greedy SVM done";
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun f ->
      if not (Hashtbl.mem seen f) then begin
        Hashtbl.add seen f ();
        out := f :: !out
      end)
    (mis_top @ nn_picks @ svm_picks);
  Array.of_list (List.rev !out)

let build_env ?(progress = true) (config : Config.t) =
  info progress "generating 72-benchmark suite (scale %.2f)" config.Config.scale;
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let count =
    List.fold_left (fun acc (b : Suite.benchmark) -> acc + Array.length b.Suite.loops) 0 benchmarks
  in
  info progress "labelling %d loops x 8 factors, SWP disabled" count;
  let tick label ~done_ ~total =
    if progress && (done_ mod (max 1 (total / 10)) = 0 || done_ = total) then
      Printf.eprintf "  %s: %d/%d\n%!" label done_ total
  in
  let labeled_off =
    Labeling.collect ~progress:(tick "swp-off") ~jobs:config.Config.jobs config
      ~swp:false benchmarks
  in
  info progress "labelling %d loops x 8 factors, SWP enabled" count;
  let labeled_on =
    Labeling.collect ~progress:(tick "swp-on") ~jobs:config.Config.jobs config
      ~swp:true benchmarks
  in
  let filter_labeled labeled =
    Array.of_list (List.filter Labeling.passes_filters (Array.to_list labeled))
  in
  let filtered_off = filter_labeled labeled_off in
  let filtered_on = filter_labeled labeled_on in
  let merged = Labeling.merge_joint ~off:labeled_off ~on:labeled_on in
  let dataset_off = Labeling.to_dataset config labeled_off in
  let dataset_on = Labeling.to_dataset config labeled_on in
  let dataset_joint = Labeling.to_joint_dataset config ~off:labeled_off ~on:labeled_on in
  info progress "dataset: %d/%d loops survive filters (swp off), %d (swp on)"
    (Dataset.size dataset_off) count (Dataset.size dataset_on);
  let selected = select_feature_subset ~progress config dataset_off in
  info progress "selected %d features" (Array.length selected);
  let spec =
    List.filter
      (fun (b : Suite.benchmark) ->
        match b.Suite.tag with
        | Suite.Spec2000fp | Suite.Spec2000int -> true
        | _ -> false)
      benchmarks
  in
  let rows ~swp labeled dataset =
    lazy
      (Compiler.speedup_rows ~jobs:config.Config.jobs config ~swp ~features:selected
         ~benchmarks:spec ~dataset labeled)
  in
  {
    config;
    benchmarks;
    labeled_off;
    labeled_on;
    merged;
    filtered_off;
    filtered_on;
    dataset_off;
    dataset_on;
    dataset_joint;
    selected;
    rows_off = rows ~swp:false labeled_off dataset_off;
    rows_on = rows ~swp:true labeled_on dataset_on;
    rows_joint =
      lazy
        (Compiler.joint_speedup_rows ~jobs:config.Config.jobs config ~space:Compiler.Joint
           ~features:selected ~benchmarks:spec ~dataset:dataset_joint merged);
  }

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let scaled_selected env dataset =
  let ds = Dataset.select_features dataset env.selected in
  Scale.apply (Scale.fit ds) ds

let factor_name i = Printf.sprintf "%d" (i + 1)

let cap_examples ds cap =
  let n = Dataset.size ds in
  if n <= cap then ds
  else begin
    let stride = float_of_int n /. float_of_int cap in
    let keep = List.init cap (fun i -> int_of_float (float_of_int i *. stride)) in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)

let fig3 env =
  let labels = Dataset.labels env.dataset_off in
  let n = Array.length labels in
  let counts = Array.make Unroll.max_factor 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) labels;
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 3: histogram of optimal unroll factors (SWP disabled, %d loops)" n)
      [ ("unroll factor", Table.Right); ("frequency", Table.Right); ("", Table.Left) ]
  in
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int (max n 1) in
      Table.add_row t
        [ factor_name i; Table.cell_pct frac; Table.bar ~width:40 frac ])
    counts;
  let unrolled =
    float_of_int (n - counts.(0)) /. float_of_int (max n 1)
  in
  Table.to_string t
  ^ Printf.sprintf "always-unrolling accuracy (paper cites 77%%): %s\n"
      (Table.cell_pct unrolled)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let table2 env =
  let config = env.config in
  let ds = scaled_selected env env.dataset_off in
  let pairs = Dataset.points ds in
  let truth = Dataset.labels ds in
  let costs = Array.map (fun e -> e.Dataset.costs) ds.Dataset.examples in
  let nn = Knn.train ~radius:config.Config.knn_radius ~n_classes:ds.Dataset.n_classes pairs in
  let nn_pred = Knn.loo_predictions ~jobs:config.Config.jobs nn in
  let svm_ds = cap_examples ds config.Config.loocv_svm_cap in
  let svm_pairs = Dataset.points svm_ds in
  let svm_pred =
    Multiclass.loo_predictions ~jobs:config.Config.jobs ~n_classes:ds.Dataset.n_classes
      ~kernel:config.Config.svm_kernel ~gamma:config.Config.svm_gamma svm_pairs
  in
  let svm_truth = Dataset.labels svm_ds in
  let svm_costs = Array.map (fun e -> e.Dataset.costs) svm_ds.Dataset.examples in
  (* The MLP has no closed-form leave-one-out shortcut; per-example
     retraining is O(N × SGD), so it is scored leave-one-benchmark-out
     (one retraining per group — the §6.1 protocol). *)
  let mlp_pred =
    Loocv.grouped ~jobs:config.Config.jobs
      ~groups:(Array.map (fun e -> e.Dataset.group) ds.Dataset.examples)
      ~train:(fun p ->
        fst
          (Mlp.train ~seed:config.Config.mlp_seed ~hyper:config.Config.mlp_hyper
             ~n_classes:ds.Dataset.n_classes p))
      ~predict:Mlp.predict pairs
  in
  let orc_pred =
    Array.map
      (fun (l : Labeling.labeled) ->
        Orc_heuristic.no_swp config.Config.machine l.Labeling.loop - 1)
      env.filtered_off
  in
  let nn_rank = Metrics.rank_distribution ~pred:nn_pred ~costs in
  let svm_rank = Metrics.rank_distribution ~pred:svm_pred ~costs:svm_costs in
  let mlp_rank = Metrics.rank_distribution ~pred:mlp_pred ~costs in
  let orc_rank = Metrics.rank_distribution ~pred:orc_pred ~costs in
  let penalty = Metrics.rank_cost_penalty ~costs in
  let t =
    Table.create ~title:"Table 2: accuracy of predictions (LOOCV, SWP disabled)"
      [
        ("Prediction correctness", Table.Left);
        ("NN", Table.Right);
        ("SVM", Table.Right);
        ("MLP", Table.Right);
        ("ORC", Table.Right);
        ("Cost", Table.Right);
      ]
  in
  let rank_label = function
    | 0 -> "Optimal unroll factor"
    | 1 -> "Second-best unroll factor"
    | 2 -> "Third-best unroll factor"
    | 3 -> "Fourth-best unroll factor"
    | 4 -> "Fifth-best unroll factor"
    | 5 -> "Sixth-best unroll factor"
    | 6 -> "Seventh-best unroll factor"
    | _ -> "Worst unroll factor"
  in
  for r = 0 to Unroll.max_factor - 1 do
    Table.add_row t
      [
        rank_label r;
        Table.cell_float ~decimals:2 nn_rank.(r);
        Table.cell_float ~decimals:2 svm_rank.(r);
        Table.cell_float ~decimals:2 mlp_rank.(r);
        Table.cell_float ~decimals:2 orc_rank.(r);
        Printf.sprintf "%.2fx" penalty.(r);
      ]
  done;
  let within7 p c = Metrics.within_of_optimal ~pred:p ~costs:c 1.07 in
  Table.to_string t
  ^ Printf.sprintf
      "NN accuracy %s (paper 62%%) | SVM accuracy %s (paper 65%%) | MLP accuracy %s | ORC accuracy %s (paper 16%%)\n\
       SVM optimal-or-second %s (paper 79%%) | SVM within 7%% of optimal %s\n\
       truth vs NN agreement on %d examples; SVM LOOCV over %d examples; MLP scored leave-one-benchmark-out\n"
      (Table.cell_pct (Metrics.accuracy ~pred:nn_pred ~truth))
      (Table.cell_pct (Metrics.accuracy ~pred:svm_pred ~truth:svm_truth))
      (Table.cell_pct (Metrics.accuracy ~pred:mlp_pred ~truth))
      (Table.cell_pct (Metrics.accuracy ~pred:orc_pred ~truth))
      (Table.cell_pct (svm_rank.(0) +. svm_rank.(1)))
      (Table.cell_pct (within7 svm_pred svm_costs))
      (Array.length truth) (Array.length svm_truth)

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4                                                      *)

let table3 env =
  let ranked = Mis.rank ~jobs:env.config.Config.jobs env.dataset_off in
  let t =
    Table.create ~title:"Table 3: best features according to MIS"
      [ ("Rank", Table.Right); ("Feature", Table.Left); ("MIS", Table.Right) ]
  in
  Array.iteri
    (fun i (j, score) ->
      if i < env.config.Config.mis_k then
        Table.add_row t
          [
            string_of_int (i + 1);
            env.dataset_off.Dataset.feature_names.(j);
            Table.cell_float ~decimals:3 score;
          ])
    ranked;
  Table.to_string t

let table4 env =
  let config = env.config in
  let scaled = Scale.apply (Scale.fit env.dataset_off) env.dataset_off in
  let nn_picks =
    Greedy_select.nn_run ~jobs:config.Config.jobs ~telemetry:Telemetry.global
      ~k:config.Config.greedy_k scaled
  in
  let svm_picks =
    Greedy_select.svm_run ~jobs:config.Config.jobs ~telemetry:Telemetry.global
      ~kernel:config.Config.svm_kernel ~gamma:config.Config.svm_gamma
      ~max_examples:300 ~k:config.Config.greedy_k scaled
  in
  let t =
    Table.create ~title:"Table 4: greedy feature selection (training error)"
      [
        ("Rank", Table.Right);
        ("NN feature", Table.Left);
        ("Error", Table.Right);
        ("SVM feature", Table.Left);
        ("Error", Table.Right);
      ]
  in
  List.iteri
    (fun i ((fn, en), (fs, es)) ->
      Table.add_row t
        [
          string_of_int (i + 1);
          env.dataset_off.Dataset.feature_names.(fn);
          Table.cell_float ~decimals:2 en;
          env.dataset_off.Dataset.feature_names.(fs);
          Table.cell_float ~decimals:2 es;
        ])
    (List.combine nn_picks svm_picks);
  Table.to_string t

(* ------------------------------------------------------------------ *)
(* Figures 1 and 2: LDA projections                                    *)

let ascii_scatter ~width ~height points =
  (* points: (x, y, char) *)
  match points with
  | [] -> "(no points)\n"
  | _ ->
    let xs = List.map (fun (x, _, _) -> x) points in
    let ys = List.map (fun (_, y, _) -> y) points in
    let xmin = List.fold_left min (List.hd xs) xs in
    let xmax = List.fold_left max (List.hd xs) xs in
    let ymin = List.fold_left min (List.hd ys) ys in
    let ymax = List.fold_left max (List.hd ys) ys in
    let dx = if xmax > xmin then xmax -. xmin else 1.0 in
    let dy = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun (x, y, c) ->
        let i = int_of_float ((y -. ymin) /. dy *. float_of_int (height - 1)) in
        let j = int_of_float ((x -. xmin) /. dx *. float_of_int (width - 1)) in
        let i = height - 1 - i in
        grid.(i).(j) <- c)
      points;
    let buf = Buffer.create (width * height) in
    Array.iter
      (fun row ->
        Buffer.add_char buf '|';
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_string buf "|\n")
      grid;
    Buffer.contents buf

let fig1 env =
  let classes = [| 0; 1; 3; 7 |] in
  let symbols = [| '+'; 'o'; '*'; '#' |] in
  let class_of label = Array.to_list classes |> List.find_index (fun c -> c = label) in
  let ds = scaled_selected env env.dataset_off in
  (* ≥30% margin against the other three classes, as under Figure 1. *)
  let kept =
    Array.to_list ds.Dataset.examples
    |> List.filter_map (fun (e : Dataset.example) ->
           match class_of e.Dataset.label with
           | None -> None
           | Some k ->
             let own = e.Dataset.costs.(e.Dataset.label) in
             let dominated =
               Array.for_all
                 (fun c -> c = e.Dataset.label || e.Dataset.costs.(c) >= 1.3 *. own)
                 classes
             in
             if dominated then Some (e.Dataset.features, k) else None)
  in
  if List.length kept < 8 then
    "Figure 1: too few high-margin examples at this scale to project.\n"
  else begin
    let pairs = Array.of_list kept in
    let lda = Lda.fit pairs in
    let points =
      Array.to_list pairs
      |> List.map (fun (x, k) ->
             let p = Lda.project lda x in
             (p.(0), p.(1), symbols.(k)))
    in
    let counts = Array.make 4 0 in
    List.iter (fun (_, k) -> counts.(k) <- counts.(k) + 1) kept;
    Printf.sprintf
      "Figure 1: near-neighbor view of LDA-projected loops (margin >= 30%%)\n\
       legend: '+' factor 1 (%d), 'o' factor 2 (%d), '*' factor 4 (%d), '#' factor 8 (%d)\n"
      counts.(0) counts.(1) counts.(2) counts.(3)
    ^ ascii_scatter ~width:72 ~height:24 points
  end

let fig2 env =
  let ds = scaled_selected env env.dataset_off in
  (* Binary with ≥30% improvement either way, as under Figure 2. *)
  let kept =
    Array.to_list ds.Dataset.examples
    |> List.filter_map (fun (e : Dataset.example) ->
           let c1 = e.Dataset.costs.(0) in
           let best_unrolled =
             Array.fold_left min infinity (Array.sub e.Dataset.costs 1 (Unroll.max_factor - 1))
           in
           if e.Dataset.label = 0 && best_unrolled >= 1.3 *. c1 then
             Some (e.Dataset.features, 0)
           else if e.Dataset.label > 0 && c1 >= 1.3 *. best_unrolled then
             Some (e.Dataset.features, 1)
           else None)
  in
  if List.length kept < 8 then
    "Figure 2: too few high-margin examples at this scale to project.\n"
  else begin
    let pairs = Array.of_list kept in
    let lda = Lda.fit pairs in
    let projected =
      Array.map (fun (x, y) -> (Lda.project lda x, y)) pairs
    in
    let machine_pairs = Array.map (fun (p, y) -> (p, float_of_int ((2 * y) - 1))) projected in
    let svm =
      Lssvm.train ~kernel:(Kernel.Rbf 1.0) ~gamma:env.config.Config.svm_gamma
        (Array.map fst machine_pairs) (Array.map snd machine_pairs)
    in
    (* Decision-region map with training points overlaid. *)
    let xs = Array.map (fun (p, _) -> p.(0)) projected in
    let ys = Array.map (fun (p, _) -> p.(1)) projected in
    let xmin = Array.fold_left min xs.(0) xs and xmax = Array.fold_left max xs.(0) xs in
    let ymin = Array.fold_left min ys.(0) ys and ymax = Array.fold_left max ys.(0) ys in
    let width = 72 and height = 24 in
    let grid = Array.make_matrix height width ' ' in
    for i = 0 to height - 1 do
      for j = 0 to width - 1 do
        let x = xmin +. (float_of_int j /. float_of_int (width - 1) *. (xmax -. xmin)) in
        let y = ymin +. (float_of_int (height - 1 - i) /. float_of_int (height - 1) *. (ymax -. ymin)) in
        let d = Lssvm.decision svm [| x; y |] in
        grid.(i).(j) <- (if d >= 0.0 then ':' else ' ')
      done
    done;
    Array.iter
      (fun (p, y) ->
        let j = int_of_float ((p.(0) -. xmin) /. (max (xmax -. xmin) 1e-9) *. float_of_int (width - 1)) in
        let i = height - 1 - int_of_float ((p.(1) -. ymin) /. (max (ymax -. ymin) 1e-9) *. float_of_int (height - 1)) in
        if i >= 0 && i < height && j >= 0 && j < width then
          grid.(i).(j) <- (if y = 1 then 'o' else '+'))
      projected;
    let buf = Buffer.create (width * height) in
    Array.iter
      (fun row ->
        Buffer.add_char buf '|';
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_string buf "|\n")
      grid;
    let n0 = Array.length (Array.of_list (List.filter (fun (_, y) -> y = 0) kept)) in
    let n1 = List.length kept - n0 in
    Printf.sprintf
      "Figure 2: SVM decision regions on LDA plane (binary, margin >= 30%%)\n\
       legend: '+' don't unroll (%d), 'o' unroll (%d), ':' unroll region\n" n0 n1
    ^ Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: realized speedups                                  *)

let speedup_rows env ~swp =
  Lazy.force (if swp then env.rows_on else env.rows_off)

let nn_of (_, _, v, _, _, _) = v
let svm_of (_, _, _, v, _, _) = v
let mlp_of (_, _, _, _, v, _) = v
let oracle_of (_, _, _, _, _, v) = v

let render_speedups ~title rows =
  let t =
    Table.create ~title
      [
        ("Benchmark", Table.Left);
        ("NN v. ORC", Table.Right);
        ("SVM v. ORC", Table.Right);
        ("MLP v. ORC", Table.Right);
        ("Oracle v. ORC", Table.Right);
      ]
  in
  Array.iter
    (fun (name, _, nn, svm, mlp, oracle) ->
      Table.add_row t
        [
          name;
          Table.cell_pct (nn -. 1.0);
          Table.cell_pct (svm -. 1.0);
          Table.cell_pct (mlp -. 1.0);
          Table.cell_pct (oracle -. 1.0);
        ])
    rows;
  Table.add_separator t;
  let agg f rows = Stats.geomean (Array.map f rows) in
  let fp_rows =
    Array.of_list (List.filter (fun (_, fp, _, _, _, _) -> fp) (Array.to_list rows))
  in
  let geomean_row label rows =
    Table.add_row t
      [
        label;
        Table.cell_pct (agg nn_of rows -. 1.0);
        Table.cell_pct (agg svm_of rows -. 1.0);
        Table.cell_pct (agg mlp_of rows -. 1.0);
        Table.cell_pct (agg oracle_of rows -. 1.0);
      ]
  in
  geomean_row "GEOMEAN (all 24)" rows;
  geomean_row "GEOMEAN (SPECfp)" fp_rows;
  let wins f =
    Array.fold_left (fun acc r -> if f r > 1.0 then acc + 1 else acc) 0 rows
  in
  Table.to_string t
  ^ Printf.sprintf "SVM beats ORC on %d of %d benchmarks; NN on %d of %d; MLP on %d of %d\n"
      (wins svm_of) (Array.length rows) (wins nn_of) (Array.length rows) (wins mlp_of)
      (Array.length rows)

let fig4 env =
  render_speedups
    ~title:"Figure 4: realized speedup over ORC's heuristic, SWP disabled"
    (speedup_rows env ~swp:false)

let fig5 env =
  render_speedups
    ~title:"Figure 5: realized speedup over ORC's heuristic, SWP enabled"
    (speedup_rows env ~swp:true)

(* ------------------------------------------------------------------ *)

let summary env =
  let rows_off = speedup_rows env ~swp:false in
  let rows_on = speedup_rows env ~swp:true in
  let agg f rows = Stats.geomean (Array.map f rows) -. 1.0 in
  let fp rows =
    Array.of_list (List.filter (fun (_, fp, _, _, _, _) -> fp) (Array.to_list rows))
  in
  let t =
    Table.create ~title:"Summary: paper claim vs this reproduction"
      [ ("Claim", Table.Left); ("Paper", Table.Right); ("Here", Table.Right) ]
  in
  let ds = scaled_selected env env.dataset_off in
  let pairs = Dataset.points ds in
  let truth = Dataset.labels ds in
  let nn = Knn.train ~radius:env.config.Config.knn_radius ~n_classes:ds.Dataset.n_classes pairs in
  let nn_acc =
    Metrics.accuracy ~pred:(Knn.loo_predictions ~jobs:env.config.Config.jobs nn) ~truth
  in
  let svm_ds = cap_examples ds env.config.Config.loocv_svm_cap in
  let svm_pred =
    Multiclass.loo_predictions ~jobs:env.config.Config.jobs ~n_classes:ds.Dataset.n_classes
      ~kernel:env.config.Config.svm_kernel ~gamma:env.config.Config.svm_gamma
      (Dataset.points svm_ds)
  in
  let svm_rank =
    Metrics.rank_distribution ~pred:svm_pred
      ~costs:(Array.map (fun e -> e.Dataset.costs) svm_ds.Dataset.examples)
  in
  let row label paper here = Table.add_row t [ label; paper; here ] in
  row "dataset size (loops surviving filters)" "2500+"
    (string_of_int (Dataset.size env.dataset_off));
  row "SVM optimal prediction rate (LOOCV)" "65%" (Table.cell_pct svm_rank.(0));
  row "SVM optimal-or-second rate" "79%" (Table.cell_pct (svm_rank.(0) +. svm_rank.(1)));
  row "NN optimal prediction rate (LOOCV)" "62%" (Table.cell_pct nn_acc);
  row "speedup over ORC, SWP off (SPEC 2000)" "5%"
    (Table.cell_pct (agg svm_of rows_off));
  row "speedup over ORC, SWP off (SPECfp)" "9%"
    (Table.cell_pct (agg svm_of (fp rows_off)));
  row "MLP speedup over ORC, SWP off" "n/a"
    (Table.cell_pct (agg mlp_of rows_off));
  row "oracle speedup, SWP off" "7.2%"
    (Table.cell_pct (agg oracle_of rows_off));
  row "speedup over ORC, SWP on (SPEC 2000)" "1%"
    (Table.cell_pct (agg svm_of rows_on));
  row "oracle speedup, SWP on" "4.4%"
    (Table.cell_pct (agg oracle_of rows_on));
  let improved rows =
    Array.fold_left
      (fun acc r -> if svm_of r > 1.0 then acc + 1 else acc)
      0 rows
  in
  row "benchmarks improved, SWP off" "19 of 24"
    (Printf.sprintf "%d of %d" (improved rows_off) (Array.length rows_off));
  row "benchmarks improved, SWP on" "16 of 24"
    (Printf.sprintf "%d of %d" (improved rows_on) (Array.length rows_on));
  Table.to_string t

(* ------------------------------------------------------------------ *)
(* Joint (unroll factor × SWP) decision space                          *)

let joint env =
  let config = env.config in
  let jobs = config.Config.jobs in
  let buf = Buffer.create 2048 in
  (* LOOCV-vs-LOOCV: every learner scored leave-one-benchmark-out on its
     own label space.  One protocol for all three learners and both heads,
     so the 8-way and 16-way columns are directly comparable (the
     closed-form per-example shortcuts only exist for NN/SVM, and only on
     a fixed training set). *)
  let head ds =
    let scaled = scaled_selected env ds in
    let pairs = Dataset.points scaled in
    let groups = Array.map (fun e -> e.Dataset.group) scaled.Dataset.examples in
    let truth = Dataset.labels scaled in
    let n_classes = scaled.Dataset.n_classes in
    let score train predict =
      Metrics.accuracy ~pred:(Loocv.grouped ~jobs ~groups ~train ~predict pairs) ~truth
    in
    let nn =
      score
        (fun p -> Knn.train ~radius:config.Config.knn_radius ~n_classes p)
        Knn.predict
    in
    let svm_cap = min config.Config.loocv_svm_cap 800 in
    let svm_scaled = cap_examples scaled svm_cap in
    let svm_pairs = Dataset.points svm_scaled in
    let svm_groups = Array.map (fun e -> e.Dataset.group) svm_scaled.Dataset.examples in
    let svm =
      Metrics.accuracy
        ~pred:
          (Loocv.grouped ~jobs ~groups:svm_groups
             ~train:(fun p ->
               Multiclass.train ~n_classes ~kernel:config.Config.svm_kernel
                 ~gamma:config.Config.svm_gamma p)
             ~predict:Multiclass.predict svm_pairs)
        ~truth:(Dataset.labels svm_scaled)
    in
    let mlp =
      score
        (fun p ->
          fst
            (Mlp.train ~seed:config.Config.mlp_seed ~hyper:config.Config.mlp_hyper
               ~n_classes p))
        Mlp.predict
    in
    (nn, svm, mlp, Dataset.size scaled)
  in
  let f_nn, f_svm, f_mlp, f_n = head env.dataset_off in
  let j_nn, j_svm, j_mlp, j_n = head env.dataset_joint in
  let t =
    Table.create
      ~title:"Joint decision space: leave-one-benchmark-out accuracy per head"
      [
        ("Head", Table.Left);
        ("Classes", Table.Right);
        ("NN", Table.Right);
        ("SVM", Table.Right);
        ("MLP", Table.Right);
        ("Examples", Table.Right);
      ]
  in
  Table.add_row t
    [
      "factor (SWP off)";
      string_of_int Unroll.max_factor;
      Table.cell_pct f_nn;
      Table.cell_pct f_svm;
      Table.cell_pct f_mlp;
      string_of_int f_n;
    ];
  Table.add_row t
    [
      "joint (factor x SWP)";
      string_of_int Labeling.Joint.classes;
      Table.cell_pct j_nn;
      Table.cell_pct j_svm;
      Table.cell_pct j_mlp;
      string_of_int j_n;
    ];
  Buffer.add_string buf (Table.to_string t);
  (* Realized speedup over the shared ORC-at-SWP-off baseline: the joint
     head may pick any (factor, swp) coordinate, the single-decision rows
     (Figure 4) only a factor at SWP off. *)
  let rows_joint = Lazy.force env.rows_joint in
  Buffer.add_string buf
    (render_speedups
       ~title:
         "Joint (unroll x SWP) realized speedup over ORC (SWP off baseline, LOBO)"
       rows_joint);
  let rows_off = Lazy.force env.rows_off in
  let geo f rows = Stats.geomean (Array.map f rows) in
  let best rows =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
      ("nn", geo nn_of rows)
      [ ("svm", geo svm_of rows); ("mlp", geo mlp_of rows) ]
  in
  let sn, sv = best rows_off in
  let jn, jv = best rows_joint in
  Buffer.add_string buf
    (Printf.sprintf
       "best joint pipeline: %s %+.2f%% | best single-decision pipeline (SWP off): %s %+.2f%% | joint %s\n\
        (both against the ORC SWP-off baseline; the SWP-on rows of Figure 5 use a different baseline)\n"
       jn
       ((jv -. 1.0) *. 100.0)
       sn
       ((sv -. 1.0) *. 100.0)
       (if jv >= sv then "beats-or-matches" else "trails"));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ablations: design choices the paper mentions but does not evaluate.  *)

let ablations env =
  let config = env.config in
  let buf = Buffer.create 1024 in
  let ds = scaled_selected env env.dataset_off in
  let pairs = Dataset.points ds in
  let truth = Dataset.labels ds in
  (* NN radius sensitivity. *)
  let t =
    Table.create ~title:"Ablation: near-neighbor radius (LOOCV accuracy)"
      [ ("radius", Table.Right); ("accuracy", Table.Right) ]
  in
  List.iter
    (fun r ->
      let nn = Knn.train ~radius:r ~n_classes:ds.Dataset.n_classes pairs in
      Table.add_row t
        [
          Table.cell_float ~decimals:2 r;
          Table.cell_pct (Metrics.accuracy ~pred:(Knn.loo_predictions nn) ~truth);
        ])
    [ 0.0; 0.2; 0.35; 0.5; 0.7; 1.0; 1.5 ];
  Buffer.add_string buf (Table.to_string t);
  (* Output codes. *)
  let svm_ds = cap_examples ds (min config.Config.loocv_svm_cap 800) in
  let svm_pairs = Dataset.points svm_ds in
  let svm_truth = Dataset.labels svm_ds in
  let t =
    Table.create ~title:"Ablation: output codes for the LS-SVM (LOOCV accuracy)"
      [ ("code", Table.Left); ("bits", Table.Right); ("accuracy", Table.Right) ]
  in
  List.iter
    (fun (name, code, bits) ->
      let pred =
        Multiclass.loo_predictions ~code ~n_classes:ds.Dataset.n_classes
          ~kernel:config.Config.svm_kernel ~gamma:config.Config.svm_gamma svm_pairs
      in
      Table.add_row t
        [
          name;
          string_of_int bits;
          Table.cell_pct (Metrics.accuracy ~pred ~truth:svm_truth);
        ])
    [
      ("one-vs-rest (paper)", Multiclass.One_vs_rest, Unroll.max_factor);
      ("dense random ECOC", Multiclass.Dense_random { bits = 15; seed = 11 }, 15);
    ];
  Buffer.add_string buf (Table.to_string t);
  (* Feature subset vs the full set. *)
  let eval_features features =
    let ds0 = Dataset.select_features env.dataset_off features in
    let scaled = Scale.apply (Scale.fit ds0) ds0 in
    let nn =
      Knn.train ~radius:config.Config.knn_radius ~n_classes:ds0.Dataset.n_classes
        (Dataset.points scaled)
    in
    Metrics.accuracy ~pred:(Knn.loo_predictions nn) ~truth:(Dataset.labels scaled)
  in
  let t =
    Table.create ~title:"Ablation: feature subset (NN LOOCV accuracy, paper 7)"
      [ ("feature set", Table.Left); ("count", Table.Right); ("accuracy", Table.Right) ]
  in
  Table.add_row t
    [
      "all features";
      string_of_int Features.count;
      Table.cell_pct (eval_features (Array.init Features.count (fun i -> i)));
    ];
  Table.add_row t
    [
      "MIS + greedy union";
      string_of_int (Array.length env.selected);
      Table.cell_pct (eval_features env.selected);
    ];
  Buffer.add_string buf (Table.to_string t);
  (* Binary problem (Monsifrot et al., paper 9).  Tree LOOCV retrains per
     example, so bound the sample. *)
  let binary_pairs =
    Array.map (fun (x, y) -> (x, if y = 0 then 0 else 1)) pairs
  in
  let binary_pairs =
    let n = Array.length binary_pairs in
    let cap = 500 in
    if n <= cap then binary_pairs
    else begin
      let stride = float_of_int n /. float_of_int cap in
      Array.init cap (fun i -> binary_pairs.(int_of_float (float_of_int i *. stride)))
    end
  in
  let n = Array.length binary_pairs in
  let tree_hits = ref 0 in
  Array.iteri
    (fun i (x, y) ->
      let rest =
        Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list binary_pairs))
      in
      (* Grow shallow trees so that n leave-one-out trainings stay cheap. *)
      let tree = Decision_tree.train ~max_depth:4 ~n_classes:2 rest in
      if Decision_tree.predict tree x = y then incr tree_hits)
    binary_pairs;
  let always = Array.length (Array.of_list (List.filter (fun (_, y) -> y = 1) (Array.to_list binary_pairs))) in
  (* Boosted trees, evaluated on a deterministic split (LOO x rounds of
     boosting would be quadratic). *)
  let train_b, test_b =
    let n = Array.length binary_pairs in
    ( Array.of_list (List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list binary_pairs)),
      Array.of_list (List.filteri (fun i _ -> i mod 2 = 1) (Array.to_list binary_pairs))
      |> fun a -> if n < 4 then binary_pairs else a )
  in
  let boosted = Boost.train ~rounds:25 ~n_classes:2 train_b in
  let boost_hits =
    Array.fold_left
      (fun acc (x, y) -> if Boost.predict boosted x = y then acc + 1 else acc)
      0 test_b
  in
  let t =
    Table.create
      ~title:"Ablation: binary unroll/don't-unroll (Monsifrot-style, paper 9)"
      [ ("classifier", Table.Left); ("accuracy", Table.Right) ]
  in
  Table.add_row t
    [ "decision tree (LOOCV)"; Table.cell_pct (float_of_int !tree_hits /. float_of_int n) ];
  Table.add_row t
    [
      Printf.sprintf "boosted trees (%d rounds, held-out)" (Boost.rounds_used boosted);
      Table.cell_pct (float_of_int boost_hits /. float_of_int (max 1 (Array.length test_b)));
    ];
  Table.add_row t
    [ "always unroll"; Table.cell_pct (float_of_int always /. float_of_int n) ];
  Buffer.add_string buf (Table.to_string t);
  Buffer.add_string buf
    "paper reference points: Monsifrot et al. report 86% on binary; the paper\n\
     notes always-unrolling already achieves 77% and argues the multi-class\n\
     problem (Table 2) is the one that matters.\n";
  (* Regression (paper 8, future work): predict the whole cost curve, pick
     the arg-min factor. *)
  let groups = Dataset.groups ds in
  let train_groups = List.filteri (fun i _ -> i mod 2 = 0) groups in
  let is_train (e : Dataset.example) = List.mem e.Dataset.group train_groups in
  let train_ex = Array.of_list (List.filter is_train (Array.to_list ds.Dataset.examples)) in
  let test_ex =
    Array.of_list
      (List.filter (fun e -> not (is_train e)) (Array.to_list ds.Dataset.examples))
  in
  if Array.length train_ex >= 8 && Array.length test_ex >= 8 then begin
    let rows =
      Array.to_list train_ex
      |> List.concat_map (fun (e : Dataset.example) ->
             let c1 = e.Dataset.costs.(0) in
             List.init Unroll.max_factor (fun u ->
                 ( Array.append e.Dataset.features [| float_of_int (u + 1) |],
                   log (e.Dataset.costs.(u) /. c1) )))
      |> Array.of_list
    in
    let knn_reg = Regression.train_knn ~k:7 (Array.map fst rows) (Array.map snd rows) in
    let predict_cost (e : Dataset.example) u =
      Regression.predict_knn knn_reg
        (Array.append e.Dataset.features [| float_of_int u |])
    in
    let reg_hits = ref 0 and cls_hits = ref 0 in
    (* classification baseline on the identical split *)
    let nn_cls =
      Knn.train ~radius:config.Config.knn_radius ~n_classes:ds.Dataset.n_classes
        (Array.map (fun (e : Dataset.example) -> (e.Dataset.features, e.Dataset.label)) train_ex)
    in
    Array.iter
      (fun (e : Dataset.example) ->
        let u_reg = Regression.argmin_factor ~predict:(fun _ u -> predict_cost e u) [||] in
        if u_reg - 1 = e.Dataset.label then incr reg_hits;
        if Knn.predict nn_cls e.Dataset.features = e.Dataset.label then incr cls_hits)
      test_ex;
    let nt = float_of_int (Array.length test_ex) in
    let t =
      Table.create
        ~title:"Ablation: classification vs regression-argmin (paper 8, held-out)"
        [ ("method", Table.Left); ("optimal-factor accuracy", Table.Right) ]
    in
    Table.add_row t
      [ "NN classification"; Table.cell_pct (float_of_int !cls_hits /. nt) ];
    Table.add_row t
      [ "kNN regression of the cost curve, arg-min"; Table.cell_pct (float_of_int !reg_hits /. nt) ];
    Buffer.add_string buf (Table.to_string t)
  end;
  Buffer.contents buf

let all env =
  String.concat "\n"
    [
      fig1 env;
      fig2 env;
      fig3 env;
      table2 env;
      table3 env;
      table4 env;
      fig4 env;
      fig5 env;
      joint env;
      summary env;
      ablations env;
    ]
