let is_pow2 n = n land (n - 1) = 0

let largest_pow2_le n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  if n < 1 then 1 else go 1

let no_swp _machine (loop : Loop.t) =
  if Loop.has_call loop then 1
  else if Loop.has_early_exit loop then 1
  else begin
    let ops = Loop.op_count loop in
    (* Code-size budget: the unrolled body should stay around 96 ops. *)
    let budget = 96 in
    let u = largest_pow2_le (max 1 (budget / max ops 1)) in
    let u = min u Unroll.max_factor in
    (* Long-latency unpipelined divides saturate quickly. *)
    let fdivs =
      Array.fold_left
        (fun acc (op : Op.t) -> match op.Op.opcode with Op.Fdiv -> acc + 1 | _ -> acc)
        0 loop.Loop.body
    in
    let u = if fdivs > 0 then min u 2 else u in
    (* Indirect references defeat the disambiguator; unrolling exposes no
       reordering freedom. *)
    let u = if Loop.indirect_ref_count loop > 1 then min u 2 else u in
    (* Failed alias analysis: replicas cannot be reordered, so only the
       branch saving remains — unroll modestly. *)
    let u = if loop.Loop.aliased then min u 4 else u in
    (* Respect a known trip count: do not unroll past it, and for short
       loops prefer factors that divide it. *)
    let u =
      match loop.Loop.trip_static with
      | None -> u (* unknown trip: unroll anyway, a remainder loop handles it *)
      | Some trip ->
        let u = if trip < u then largest_pow2_le (max trip 1) else u in
        let rec fit u =
          if u > 1 && trip < 64 && trip mod u <> 0 then fit (u / 2) else u
        in
        fit u
    in
    let _ = is_pow2 in
    max 1 (min Unroll.max_factor u)
  end

let swp machine (loop : Loop.t) =
  if Loop.has_call loop || Loop.has_early_exit loop then 1
  else begin
    let m = machine in
    let core, ovh =
      (* Separate the loop overhead (merged once by the unroller) from the
         replicated core. *)
      let n = Array.length loop.Loop.body in
      if n >= 3 then (Array.sub loop.Loop.body 0 (n - 3), 3) else (loop.Loop.body, 0)
    in
    let counts = [| 0; 0; 0; 0 |] in
    Array.iter
      (fun op ->
        let k =
          match Machine.unit_of op with Machine.M -> 0 | Machine.I -> 1 | Machine.F -> 2 | Machine.B -> 3
        in
        let c = match op.Op.opcode with
          | Op.Fdiv when m.Machine.fdiv_unpipelined -> m.Machine.lat_fdiv
          | _ -> 1
        in
        counts.(k) <- counts.(k) + c)
      core;
    let units = [| m.Machine.m_units; m.Machine.i_units; m.Machine.f_units; m.Machine.b_units |] in
    let ii_for u =
      (* Resource bound of the unrolled body: replicated core plus one copy
         of the overhead (which includes the branch). *)
      let bound = ref 1 in
      Array.iteri
        (fun k c ->
          let total = (c * u) + if k = 1 then ovh - 1 else if k = 3 then 1 else 0 in
          bound := max !bound ((total + units.(k) - 1) / units.(k)))
        counts;
      let total_ops = (Array.length core * u) + ovh in
      max !bound ((total_ops + m.Machine.issue_width - 1) / m.Machine.issue_width)
    in
    let ops = Loop.op_count loop in
    (* Register demand estimate: every def needs at least one rotating
       register per replica, plus the loop invariants. *)
    let int_defs, fp_defs =
      Array.fold_left
        (fun (i, f) (op : Op.t) ->
          match op.Op.dst with
          | Some { Op.cls = Op.Int; _ } -> (i + 1, f)
          | Some { Op.cls = Op.Flt; _ } -> (i, f + 1)
          | None -> (i, f))
        (0, 0) core
    in
    let invariants = List.length (Loop.live_in_regs loop) in
    let regs_ok u =
      (int_defs * u) + invariants + 3 <= m.Machine.rot_int_regs
      && fp_defs * u <= m.Machine.rot_fp_regs
    in
    let best = ref 1 and best_metric = ref infinity in
    for u = 1 to Unroll.max_factor do
      let code_ok = ops * u <= 96 in
      let trip_ok = match loop.Loop.trip_static with Some t -> u <= max t 1 | None -> true in
      if code_ok && trip_ok && regs_ok u then begin
        let metric = float_of_int (ii_for u) /. float_of_int u in
        (* Strictly better only: ties keep the smaller factor (less code,
           less register pressure). *)
        if metric < !best_metric -. 1e-9 then begin
          best := u;
          best_metric := metric
        end
      end
    done;
    !best
  end

let predict machine ~swp:swp_mode loop =
  if swp_mode then swp machine loop else no_swp machine loop
