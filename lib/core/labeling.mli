(** Label collection (paper §4.4–4.6).

    Every loop in a suite is measured at unroll factors 1..8 through the
    simulated testbed; the factor with the fewest cycles is the loop's
    label.  Three filters from the paper apply before training: the reference
    compiler must be able to unroll the loop at all (no calls or early
    exits, §4.6), loops must
    run for at least 50,000 cycles (measurement noise otherwise dominates),
    and the optimal factor must beat the mean over all factors by at least
    1.05x (flat loops teach nothing). *)

type labeled = {
  bench : string;
  loop : Loop.t;
  weight : float;          (** runtime weight within its benchmark *)
  cycles : int array;      (** measured cycles per factor, index 0 = u1 *)
}

val best_factor : labeled -> int
(** 1-based optimal unroll factor. *)

val passes_filters : labeled -> bool

val tasks : Suite.benchmark list -> (string * int * Loop.t * float) array
(** The canonical per-loop flattening of a suite, in suite order:
    [(bench, index, loop, weight)].  Shared by {!collect} and the online
    trainer, which must rebuild the same ordering from journal records
    regardless of their arrival order. *)

val task_key : Config.t -> swp:bool -> bench:string -> index:int -> Loop.t -> string
(** The {!Label_store.sweep_key} of one task under a config — the key
    {!collect} journals that loop's measurements under. *)

val collect :
  ?progress:(done_:int -> total:int -> unit) ->
  ?jobs:int ->
  ?journal:Label_store.t ->
  Config.t -> swp:bool -> Suite.benchmark list -> labeled array
(** Sweeps every loop of every benchmark across [jobs] worker domains
    (default 1 = sequential).  Deterministic in the config: each loop's
    measurement RNG is derived from [(noise_seed, benchmark, loop index)],
    so the output is bit-identical for every [jobs] value.  [progress]
    callbacks are serialised but may arrive out of loop order when
    [jobs > 1].

    With [journal], measurements stream into the crash-safe
    {!Label_store} as they complete, and loops whose full sweep is
    already journalled are served from it without simulating — so a
    killed sweep resumed from its journal produces output bit-identical
    to an uninterrupted run (per-loop RNG derivation means skipping work
    perturbs nothing).  Resume skips and fresh measurements are counted
    in {!Telemetry.global} under ["label-store"]. *)

val to_dataset : ?filtered:bool -> Config.t -> labeled array -> Dataset.t
(** Feature extraction + labelling.  [filtered] (default true) applies
    {!passes_filters}.  Labels are 0-based (factor − 1); costs are the
    measured cycles. *)

(** The joint (unroll factor × SWP on/off) decision space: 16 classes laid
    out to mirror the concatenated cost array [off ++ on] — classes 0..7
    are factors 1..8 with SWP off, 8..15 the same factors with SWP on. *)
module Joint : sig
  val classes : int

  val encode : factor:int -> swp:bool -> int
  (** 0-based joint class of a (1-based factor, swp) decision.  Raises
      [Invalid_argument] on a factor outside 1..{!Unroll.max_factor}. *)

  val decode : int -> int * bool
  (** Inverse of {!encode}: [(factor, swp)].  Raises [Invalid_argument]
      outside \[0, {!classes}). *)
end

val merge_joint : off:labeled array -> on:labeled array -> labeled array
(** Positionally merge an SWP-off sweep with an SWP-on sweep of the same
    suite into loops carrying 16-entry cost arrays (off cycles then on
    cycles).  Raises [Invalid_argument] if the sweeps differ in length or
    loop identity at any index. *)

val to_joint_dataset :
  ?filtered:bool -> Config.t -> off:labeled array -> on:labeled array -> Dataset.t
(** {!to_dataset} over the joint space: labels are
    [Joint.encode] indices of the cheapest (factor, swp) coordinate,
    costs the 16 merged cycle counts.  Filters apply to the merged cost
    array (best and mean taken over both SWP settings). *)
