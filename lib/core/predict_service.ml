type t = {
  config : Config.t;
  predictor : Predictor.t;
  feature_names : string array;
  telemetry : Telemetry.t option;
  (* Feature vectors keyed by loop content (name blanked): the scaled,
     projected vector [Predictor.featurize] would recompute.  Returning the
     stored vector verbatim keeps batch predictions bit-identical to the
     uncached path. *)
  cache : (string, float array) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?telemetry (config : Config.t) artifact =
  match Model_artifact.verify_machine artifact config.Config.machine with
  | Error _ as e -> e
  | Ok () -> (
    match Predictor.of_artifact artifact with
    | Error _ as e -> e
    | Ok predictor ->
      Ok
        {
          config;
          predictor;
          feature_names = artifact.Model_artifact.feature_names;
          telemetry;
          cache = Hashtbl.create 256;
          hits = 0;
          misses = 0;
        })

let predictor t = t.predictor

let loop_key (loop : Loop.t) =
  Digest.string (Marshal.to_string { loop with Loop.name = "" } [])

let featurize t loop =
  let key = loop_key loop in
  match Hashtbl.find_opt t.cache key with
  | Some x ->
    t.hits <- t.hits + 1;
    x
  | None ->
    t.misses <- t.misses + 1;
    let x = Predictor.featurize t.predictor t.config loop in
    Hashtbl.replace t.cache key x;
    x

let record t field n =
  match t.telemetry with
  | None -> ()
  | Some tel -> Telemetry.incr tel ~pass:"predict-service" field n

let predict_batch t loops =
  let loops = Array.of_list loops in
  let n = Array.length loops in
  let out = Array.make n 1 in
  (* Unrollable loops go through the model; the rest stay at factor 1, the
     same gate [Predictor.predict] applies. *)
  let idx = ref [] in
  for i = n - 1 downto 0 do
    if Loop.unrollable loops.(i) then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  let hits0 = t.hits and misses0 = t.misses in
  let vectors = Array.map (fun i -> featurize t loops.(i)) idx in
  if Array.length idx > 0 then begin
    (* Assemble the batch as one flat matrix via the same path the training
       datasets take.  The rows come back out bit-identical, so this is a
       pure layout step, but it keeps the service on the flat row-major
       allocation pattern the numeric kernels expect and exercises
       [points_matrix] from the serving side. *)
    let n_classes = Unroll.max_factor in
    let examples =
      Array.to_list
        (Array.mapi
           (fun k x ->
             {
               Dataset.features = x;
               label = 0;
               tag = loops.(idx.(k)).Loop.name;
               group = "predict";
               costs = Array.make n_classes 0.;
             })
           vectors)
    in
    let ds = Dataset.create ~feature_names:t.feature_names ~n_classes examples in
    let m, _labels = Dataset.points_matrix ds in
    Array.iteri
      (fun k i -> out.(i) <- Predictor.predict_scaled t.predictor (Mat.row m k))
      idx
  end;
  record t "loops" n;
  record t "vector-cache-hits" (t.hits - hits0);
  record t "vector-cache-misses" (t.misses - misses0);
  out

let predict t loop = (predict_batch t [ loop ]).(0)
let cache_hits t = t.hits
let cache_misses t = t.misses
