type t = {
  config : Config.t;
  predictor : Predictor.t;
  feature_names : string array;
  (* Identity of the loaded artifact.  Counters below belong to this
     service instance, so tagging the instance with the artifact digest
     makes every stat unambiguously since-load: a hot reload builds a new
     service, and stats reported next to this digest can never silently
     mix models. *)
  model_kind : string;
  model_digest : string;
  label_space : Model_artifact.label_space;
  telemetry : Telemetry.t option;
  (* Feature vectors keyed by loop content (name blanked): the scaled,
     projected vector [Predictor.featurize] would recompute.  Returning the
     stored vector verbatim keeps batch predictions bit-identical to the
     uncached path.

     The cache is bounded: a long-lived server would otherwise grow it
     without limit as distinct loops stream past.  Eviction is FIFO over
     insertion order — deterministic given the request order, and exact
     because entries are never re-inserted while present.  All cache state
     is guarded by [lock] so concurrent [predict_batch] calls (the serve
     path swaps services under load) stay safe. *)
  cache : (string, float array) Hashtbl.t;
  order : string Queue.t;
  capacity : int;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_cache_capacity = 8192

let create ?telemetry ?(cache_capacity = default_cache_capacity) (config : Config.t)
    artifact =
  match Model_artifact.verify_machine artifact config.Config.machine with
  | Error _ as e -> e
  | Ok () -> (
    match Predictor.of_artifact artifact with
    | Error _ as e -> e
    | Ok predictor ->
      Ok
        {
          config;
          predictor;
          feature_names = artifact.Model_artifact.feature_names;
          model_kind = Model_artifact.kind artifact;
          model_digest =
            Digest.to_hex (Digest.string (Model_artifact.to_string artifact));
          label_space = artifact.Model_artifact.label_space;
          telemetry;
          cache = Hashtbl.create (min 256 (max 16 cache_capacity));
          order = Queue.create ();
          capacity = max 0 cache_capacity;
          lock = Mutex.create ();
          hits = 0;
          misses = 0;
          evictions = 0;
        })

let predictor t = t.predictor

let loop_key (loop : Loop.t) =
  Digest.string (Marshal.to_string { loop with Loop.name = "" } [])

let featurize t loop =
  if t.capacity = 0 then begin
    (* Caching disabled: every lookup is a miss and nothing is stored. *)
    Mutex.lock t.lock;
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Predictor.featurize t.predictor t.config loop
  end
  else begin
    let key = loop_key loop in
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.cache key with
    | Some x ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      x
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      let x = Predictor.featurize t.predictor t.config loop in
      Mutex.lock t.lock;
      (* Another batch may have raced the same key in; keep the incumbent so
         the FIFO order stays one entry per key. *)
      if not (Hashtbl.mem t.cache key) then begin
        Hashtbl.replace t.cache key x;
        Queue.push key t.order;
        while Hashtbl.length t.cache > t.capacity do
          let oldest = Queue.pop t.order in
          Hashtbl.remove t.cache oldest;
          t.evictions <- t.evictions + 1
        done
      end;
      Mutex.unlock t.lock;
      x
  end

let record t field n =
  match t.telemetry with
  | None -> ()
  | Some tel -> Telemetry.incr tel ~pass:"predict-service" field n

(* Raw 0-based classes in the artifact's label space.  Class 0 decodes to
   (factor 1, SWP off) in both spaces, so it is the right answer for
   non-unrollable loops — the same gate [Predictor.predict] applies. *)
let classify_batch ?(jobs = 1) t loops =
  let loops = Array.of_list loops in
  let n = Array.length loops in
  let out = Array.make n 0 in
  let idx = ref [] in
  for i = n - 1 downto 0 do
    if Loop.unrollable loops.(i) then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  let hits0 = t.hits and misses0 = t.misses and evict0 = t.evictions in
  (* Featurisation stays sequential so cache insertion order — and with it
     FIFO eviction — is deterministic in the request order. *)
  let vectors = Array.map (fun i -> featurize t loops.(i)) idx in
  if Array.length idx > 0 then begin
    (* Assemble the batch as one flat matrix via the same path the training
       datasets take.  The rows come back out bit-identical, so this is a
       pure layout step, but it keeps the service on the flat row-major
       allocation pattern the numeric kernels expect and exercises
       [points_matrix] from the serving side. *)
    let n_classes =
      match t.label_space with
      | Model_artifact.Factor -> Unroll.max_factor
      | Model_artifact.Joint -> Labeling.Joint.classes
    in
    let examples =
      Array.to_list
        (Array.mapi
           (fun k x ->
             {
               Dataset.features = x;
               label = 0;
               tag = loops.(idx.(k)).Loop.name;
               group = "predict";
               costs = Array.make n_classes 0.;
             })
           vectors)
    in
    let ds = Dataset.create ~feature_names:t.feature_names ~n_classes examples in
    let m, _labels = Dataset.points_matrix ds in
    (* Row classifications are independent and land at their input index, so
       fanning them over the domain pool is bit-identical at any [jobs]. *)
    Parallel.iter ~jobs (Array.length idx) (fun k ->
        out.(idx.(k)) <- Predictor.classify_scaled t.predictor (Mat.row m k))
  end;
  record t "loops" n;
  record t "vector-cache-hits" (t.hits - hits0);
  record t "vector-cache-misses" (t.misses - misses0);
  record t "vector-cache-evictions" (t.evictions - evict0);
  out

let predict_batch ?jobs t loops =
  let classes = classify_batch ?jobs t loops in
  match t.label_space with
  | Model_artifact.Factor -> Array.map (fun c -> c + 1) classes
  | Model_artifact.Joint ->
    Array.map (fun c -> fst (Labeling.Joint.decode c)) classes

let predict_joint_batch ?jobs t loops =
  let classes = classify_batch ?jobs t loops in
  match t.label_space with
  | Model_artifact.Factor -> Array.map (fun c -> (c + 1, false)) classes
  | Model_artifact.Joint -> Array.map Labeling.Joint.decode classes

let predict t loop = (predict_batch t [ loop ]).(0)
let model_kind t = t.model_kind
let model_digest t = t.model_digest
let label_space t = t.label_space
let cache_hits t = t.hits
let cache_misses t = t.misses
let cache_evictions t = t.evictions
let cache_size t = Hashtbl.length t.cache
