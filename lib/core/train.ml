type model_choice = Nn | Svm | Best

type report = {
  measured : int;
  kept : int;
  features : int array;
  nn_loocv : float;
  svm_loocv : float;
  chosen : string;
  dataset_digest : string;
}

let info progress fmt =
  if progress then Printf.eprintf (fmt ^^ "\n%!") else Printf.ifprintf stderr fmt

let cap_examples (ds : Dataset.t) cap =
  let n = Dataset.size ds in
  if n <= cap then ds
  else begin
    let stride = float_of_int n /. float_of_int cap in
    let keep = List.init cap (fun i -> int_of_float (float_of_int i *. stride)) in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

let run ?(progress = false) ?journal (config : Config.t) ~swp ~model =
  let jobs = config.Config.jobs in
  info progress "train: generating suite (scale %.2f)" config.Config.scale;
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let tick ~done_ ~total =
    if progress && (done_ mod (max 1 (total / 10)) = 0 || done_ = total) then
      Printf.eprintf "  sweep: %d/%d\n%!" done_ total
  in
  let labeled = Labeling.collect ~progress:tick ~jobs ?journal config ~swp benchmarks in
  let ds = Labeling.to_dataset config labeled in
  if Dataset.size ds = 0 then
    failwith "Train.run: no loops survive the labelling filters at this scale";
  let dataset_digest = Dataset.digest ds in
  info progress "train: %d/%d loops survive filters (digest %s)" (Dataset.size ds)
    (Array.length labeled) dataset_digest;
  let selected = Experiments.select_feature_subset ~progress config ds in
  info progress "train: %d features committed" (Array.length selected);
  (* LOOCV both learners on the committed subset — the same protocol as
     Table 2 — to pick the artifact that would have won in-process. *)
  let dss = Dataset.select_features ds selected in
  let scaled = Scale.apply (Scale.fit dss) dss in
  let truth = Dataset.labels scaled in
  let nn_model =
    Knn.train ~radius:config.Config.knn_radius ~n_classes:scaled.Dataset.n_classes
      (Dataset.points scaled)
  in
  let nn_loocv = Metrics.accuracy ~pred:(Knn.loo_predictions ~jobs nn_model) ~truth in
  let svm_ds = cap_examples scaled config.Config.loocv_svm_cap in
  let svm_pred =
    Multiclass.loo_predictions ~jobs ~n_classes:scaled.Dataset.n_classes
      ~kernel:config.Config.svm_kernel ~gamma:config.Config.svm_gamma
      (Dataset.points svm_ds)
  in
  let svm_loocv = Metrics.accuracy ~pred:svm_pred ~truth:(Dataset.labels svm_ds) in
  info progress "train: LOOCV nn %.3f, svm %.3f" nn_loocv svm_loocv;
  let choice =
    match model with Nn -> `Nn | Svm -> `Svm | Best -> if nn_loocv > svm_loocv then `Nn else `Svm
  in
  let predictor =
    match choice with
    | `Nn -> Predictor.train_nn config ~features:selected ds
    | `Svm -> Predictor.train_svm ~cap:config.Config.fig4_svm_cap config ~features:selected ds
  in
  let artifact = Predictor.to_artifact config ~dataset_digest predictor in
  ( artifact,
    {
      measured = Array.length labeled;
      kept = Dataset.size ds;
      features = selected;
      nn_loocv;
      svm_loocv;
      chosen = Predictor.name predictor;
      dataset_digest;
    } )
