type model_choice = Nn | Svm | Mlp | Best

type report = {
  measured : int;
  kept : int;
  features : int array;
  nn_loocv : float;
  svm_loocv : float;
  mlp_loocv : float;
  chosen : string;
  dataset_digest : string;
}

let info progress fmt =
  if progress then Printf.eprintf (fmt ^^ "\n%!") else Printf.ifprintf stderr fmt

let cap_examples (ds : Dataset.t) cap =
  let n = Dataset.size ds in
  if n <= cap then ds
  else begin
    let stride = float_of_int n /. float_of_int cap in
    let keep = List.init cap (fun i -> int_of_float (float_of_int i *. stride)) in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

(* Score both learners by LOOCV on the committed subset — the same
   protocol as Table 2 — to pick the artifact that would have won
   in-process. *)
let loocv_scores ~jobs (config : Config.t) ds selected =
  let dss = Dataset.select_features ds selected in
  let scaled = Scale.apply (Scale.fit dss) dss in
  let truth = Dataset.labels scaled in
  let nn_model =
    Knn.train ~radius:config.Config.knn_radius ~n_classes:scaled.Dataset.n_classes
      (Dataset.points scaled)
  in
  let nn_loocv = Metrics.accuracy ~pred:(Knn.loo_predictions ~jobs nn_model) ~truth in
  let svm_ds = cap_examples scaled config.Config.loocv_svm_cap in
  let svm_pred =
    Multiclass.loo_predictions ~jobs ~n_classes:scaled.Dataset.n_classes
      ~kernel:config.Config.svm_kernel ~gamma:config.Config.svm_gamma
      (Dataset.points svm_ds)
  in
  let svm_loocv = Metrics.accuracy ~pred:svm_pred ~truth:(Dataset.labels svm_ds) in
  (* No closed-form LOO shortcut exists for the MLP; per-example
     retraining would be O(N × SGD).  Score it leave-one-benchmark-out —
     one retraining per group, the §6.1 protocol. *)
  let mlp_loocv =
    let groups = Array.map (fun e -> e.Dataset.group) scaled.Dataset.examples in
    Metrics.accuracy
      ~pred:
        (Loocv.grouped ~jobs ~groups
           ~train:(fun p ->
             (* A dataset with a single group leaves an empty training
                fold: nothing to learn, fall back to the neutral class
                (factor 1) so tiny online-training prefixes still score. *)
             if Array.length p = 0 then None
             else
               Some
                 (fst
                    (Mlp.train ~seed:config.Config.mlp_seed ~hyper:config.Config.mlp_hyper
                       ~n_classes:scaled.Dataset.n_classes p)))
           ~predict:(fun m x -> match m with None -> 0 | Some m -> Mlp.predict m x)
           (Dataset.points scaled))
      ~truth
  in
  (nn_loocv, svm_loocv, mlp_loocv)

(* Fit the chosen learner and stamp the artifact — the tail end of the
   pipeline, shared verbatim by the batch and online paths so a followed
   journal can never produce different bits than a batch retrain. *)
let fit ?(progress = false) ?warm ?(label_space = Model_artifact.Factor) ~loocv
    (config : Config.t) ~model ~measured ds =
  let jobs = config.Config.jobs in
  if Dataset.size ds = 0 then
    failwith "Train.run: no loops survive the labelling filters at this scale";
  let dataset_digest = Dataset.digest ds in
  info progress "train: %d/%d loops survive filters (digest %s)" (Dataset.size ds)
    measured dataset_digest;
  let selected = Experiments.select_feature_subset ~progress ?warm config ds in
  info progress "train: %d features committed" (Array.length selected);
  let nn_loocv, svm_loocv, mlp_loocv =
    (* A forced model choice does not need the LOOCV comparison to pick a
       learner; the online path skips it (retraining runs on every batch
       of arriving labels, and the artifact is unaffected), while the
       batch path always scores all three — the report is its point. *)
    if loocv || model = Best then loocv_scores ~jobs config ds selected
    else (Float.nan, Float.nan, Float.nan)
  in
  if loocv || model = Best then
    info progress "train: LOOCV nn %.3f, svm %.3f, mlp %.3f" nn_loocv svm_loocv mlp_loocv;
  let choice =
    (* Ties preserve the pre-MLP precedence: SVM beats NN on an exact tie
       (the paper's overall winner), and the MLP must strictly beat both
       to be chosen. *)
    match model with
    | Nn -> `Nn
    | Svm -> `Svm
    | Mlp -> `Mlp
    | Best ->
      if mlp_loocv > nn_loocv && mlp_loocv > svm_loocv then `Mlp
      else if nn_loocv > svm_loocv then `Nn
      else `Svm
  in
  let predictor =
    match choice with
    | `Nn -> Predictor.train_nn config ~features:selected ds
    | `Svm -> Predictor.train_svm ~cap:config.Config.fig4_svm_cap config ~features:selected ds
    | `Mlp -> Predictor.train_mlp ~jobs ~telemetry:Telemetry.global config ~features:selected ds
  in
  let artifact = Predictor.to_artifact ~label_space config ~dataset_digest predictor in
  ( artifact,
    {
      measured;
      kept = Dataset.size ds;
      features = selected;
      nn_loocv;
      svm_loocv;
      mlp_loocv;
      chosen = Predictor.name predictor;
      dataset_digest;
    } )

let run ?(progress = false) ?journal (config : Config.t) ~swp ~model =
  let jobs = config.Config.jobs in
  info progress "train: generating suite (scale %.2f)" config.Config.scale;
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let tick ~done_ ~total =
    if progress && (done_ mod (max 1 (total / 10)) = 0 || done_ = total) then
      Printf.eprintf "  sweep: %d/%d\n%!" done_ total
  in
  let labeled = Labeling.collect ~progress:tick ~jobs ?journal config ~swp benchmarks in
  let ds = Labeling.to_dataset config labeled in
  fit ~progress ~loocv:true config ~model ~measured:(Array.length labeled) ds

let run_joint ?(progress = false) ?journal (config : Config.t) ~model =
  (* Both SWP coordinates of every loop; one journal holds both sweeps
     (their keys differ in the swp field). *)
  let jobs = config.Config.jobs in
  info progress "train: generating suite (scale %.2f)" config.Config.scale;
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let tick label ~done_ ~total =
    if progress && (done_ mod (max 1 (total / 10)) = 0 || done_ = total) then
      Printf.eprintf "  sweep %s: %d/%d\n%!" label done_ total
  in
  let off =
    Labeling.collect ~progress:(tick "swp-off") ~jobs ?journal config ~swp:false benchmarks
  in
  let on =
    Labeling.collect ~progress:(tick "swp-on") ~jobs ?journal config ~swp:true benchmarks
  in
  let ds = Labeling.to_joint_dataset config ~off ~on in
  fit ~progress ~label_space:Model_artifact.Joint ~loocv:true config ~model
    ~measured:(Array.length off) ds

(* --- online training ---------------------------------------------------- *)

module Online = struct
  type t = {
    o_config : Config.t;
    o_model : model_choice;
    o_progress : bool;
    o_tasks : (string * int * Loop.t * float) array; (* suite order *)
    o_index : (string, int) Hashtbl.t; (* sweep key -> task index *)
    o_cycles : int array array; (* per task, index 0 = factor 1 *)
    o_seen : bool array array;
    o_have : int array; (* distinct factors seen per task *)
    mutable o_complete : int;
    mutable o_ingested : int;
    mutable o_unknown : int;
    o_warm : Greedy_select.Warm.t;
  }

  let create ?(progress = false) (config : Config.t) ~swp ~model =
    let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
    let tasks = Labeling.tasks benchmarks in
    let index = Hashtbl.create (2 * Array.length tasks) in
    Array.iteri
      (fun ti (bench, i, loop, _) ->
        Hashtbl.replace index (Labeling.task_key config ~swp ~bench ~index:i loop) ti)
      tasks;
    {
      o_config = config;
      o_model = model;
      o_progress = progress;
      o_tasks = tasks;
      o_index = index;
      o_cycles = Array.init (Array.length tasks) (fun _ -> Array.make Unroll.max_factor 0);
      o_seen = Array.init (Array.length tasks) (fun _ -> Array.make Unroll.max_factor false);
      o_have = Array.make (Array.length tasks) 0;
      o_complete = 0;
      o_ingested = 0;
      o_unknown = 0;
      o_warm = Greedy_select.Warm.create ();
    }

  let total_sweeps t = Array.length t.o_tasks
  let complete_sweeps t = t.o_complete
  let ingested t = t.o_ingested
  let unknown_records t = t.o_unknown
  let warm_cache t = t.o_warm

  let ingest t ~key ~factor ~cycles =
    t.o_ingested <- t.o_ingested + 1;
    match Hashtbl.find_opt t.o_index key with
    | None ->
      (* A journal can legitimately hold sweeps from other configs or
         suite scales; they are simply not part of this trainer's suite. *)
      t.o_unknown <- t.o_unknown + 1;
      false
    | Some ti ->
      if factor < 1 || factor > Unroll.max_factor then begin
        t.o_unknown <- t.o_unknown + 1;
        false
      end
      else begin
        let fi = factor - 1 in
        t.o_cycles.(ti).(fi) <- cycles;
        if not t.o_seen.(ti).(fi) then begin
          t.o_seen.(ti).(fi) <- true;
          t.o_have.(ti) <- t.o_have.(ti) + 1;
          if t.o_have.(ti) = Unroll.max_factor then begin
            t.o_complete <- t.o_complete + 1;
            true
          end
          else false
        end
        else false
      end

  (* Labeled rows for every journal-complete sweep, in suite order — so
     the training set is a function of *which* sweeps are complete, never
     of the order records arrived in.  With every sweep complete this is
     exactly what [Labeling.collect] returns, cycles included, so the
     emitted artifact is bit-identical to a batch [run] over the same
     journal. *)
  let labeled t =
    let out = ref [] in
    for ti = Array.length t.o_tasks - 1 downto 0 do
      if t.o_have.(ti) = Unroll.max_factor then begin
        let bench, _, loop, weight = t.o_tasks.(ti) in
        out :=
          { Labeling.bench; loop; weight; cycles = Array.copy t.o_cycles.(ti) }
          :: !out
      end
    done;
    Array.of_list !out

  let retrain t =
    let rows = labeled t in
    let ds = Labeling.to_dataset t.o_config rows in
    if Dataset.size ds = 0 then
      Error
        (Printf.sprintf
           "online train: no loops survive the labelling filters yet (%d/%d sweeps)"
           t.o_complete (total_sweeps t))
    else
      Ok
        (fit ~progress:t.o_progress ~warm:t.o_warm ~loocv:false t.o_config
           ~model:t.o_model ~measured:(Array.length rows) ds)
end
