(** SLO load generator for the prediction server.

    Starts an in-process server (ephemeral port, its own telemetry sink,
    batcher on its own domain) over a model artifact, then replays
    loop-prediction requests at ramped client concurrency — each client
    thread holds its own connection and issues synchronous
    request/response pairs, so server-side micro-batching across
    connections is what turns concurrency into batch occupancy.

    Per level it records client-observed p50/p99/p999 latency, throughput
    and the shed count; at the highest level it fires a hot reload (same
    artifact) mid-run to prove the swap drops nothing.  Every response is
    bit-diffed against sequential {!Predict_service} predictions computed
    locally before the run — a throughput number from wrong answers is
    worthless, so [identical = false] (or any transport error) fails the
    bench.  The batch-size histogram, reload and cache counters come back
    from the server's ["stats"] control frame. *)

type level = {
  conc : int;  (** concurrent client connections *)
  requests : int;  (** total requests completed at this level *)
  wall_s : float;
  rps : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  shed : int;  (** server-side sheds during this level *)
  errors : int;  (** transport errors / unexpected responses *)
}

type result_t = {
  levels : level list;
  identical : bool;  (** every Factor response matched the local prediction *)
  mismatches : int;
  total_requests : int;
  reloads : int;
  batch_hist : (int * int) list;  (** [(bucket upper bound, batches)] *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  json : string;  (** the whole result as one JSON object *)
}

val default_levels : int list
(** Ramped concurrency: [1; 8; 32]. *)

val loop_pool : ?size:int -> Config.t -> Loop.t array
(** Distinct request loops: the workload suite's loops plus {!Fuzz_gen}
    structured adversarial loops, deterministically generated, truncated
    or topped up to [size] (default 512). *)

val run :
  ?levels:int list ->
  ?requests_per_level:int ->
  ?opts:Serve.opts ->
  ?progress:bool ->
  config:Config.t ->
  artifact:string ->
  pool:Loop.t array ->
  unit ->
  (result_t, string) result
(** Run the bench.  [opts.port] is forced to 0 (ephemeral) and
    [opts.jobs] defaults to the host width. *)
