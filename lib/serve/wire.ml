let max_payload = 1 lsl 20
let digest_len = 16
let header_len = 4 + digest_len

(* --- frame layer -------------------------------------------------------- *)

type decoded =
  | Payload of string * int
  | Incomplete
  | Corrupt of string

let encode payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Wire.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string (Digest.string payload) 0 b 4 digest_len;
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

let decode ?(pos = 0) buf =
  let avail = String.length buf - pos in
  if avail < 4 then Incomplete
  else begin
    let byte i = Char.code buf.[pos + i] in
    let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if n > max_payload then
      Corrupt (Printf.sprintf "frame length %d exceeds the %d-byte cap" n max_payload)
    else if avail < header_len + n then Incomplete
    else begin
      let digest = String.sub buf (pos + 4) digest_len in
      let payload = String.sub buf (pos + header_len) n in
      if Digest.string payload <> digest then Corrupt "frame digest mismatch"
      else Payload (payload, header_len + n)
    end
  end

(* --- messages ------------------------------------------------------------ *)

type request =
  | Predict of Loop.t
  | Control of string

type response =
  | Factor of int
  | Busy
  | Okay of string
  | Failure of string

let request_payload = function
  | Predict loop -> "P" ^ Marshal.to_string (loop : Loop.t) []
  | Control cmd -> "C" ^ cmd

let parse_request p =
  if String.length p = 0 then Error "empty request payload"
  else
    match p.[0] with
    | 'P' -> (
      (* The digest framing already vouches for the bytes; this guard turns
         a malformed-but-well-digested payload into a connection error
         instead of an exception. *)
      try Ok (Predict (Marshal.from_string p 1 : Loop.t))
      with _ -> Error "undecodable loop in predict request")
    | 'C' -> Ok (Control (String.sub p 1 (String.length p - 1)))
    | c -> Error (Printf.sprintf "unknown request tag %C" c)

let response_payload = function
  | Factor f ->
    if f < 1 || f > 255 then invalid_arg "Wire.response_payload: factor out of range";
    "F" ^ String.make 1 (Char.chr f)
  | Busy -> "B"
  | Okay text -> "O" ^ text
  | Failure text -> "E" ^ text

let parse_response p =
  if String.length p = 0 then Error "empty response payload"
  else
    match p.[0] with
    | 'F' when String.length p = 2 -> Ok (Factor (Char.code p.[1]))
    | 'F' -> Error "malformed factor response"
    | 'B' when String.length p = 1 -> Ok Busy
    | 'B' -> Error "malformed busy response"
    | 'O' -> Ok (Okay (String.sub p 1 (String.length p - 1)))
    | 'E' -> Ok (Failure (String.sub p 1 (String.length p - 1)))
    | c -> Error (Printf.sprintf "unknown response tag %C" c)

(* --- blocking socket I/O ------------------------------------------------- *)

let write_payload fd payload =
  let s = encode payload in
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
}

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

let next r =
  let rec go () =
    match decode (Buffer.contents r.buf) with
    | Payload (p, consumed) ->
      let rest = Buffer.sub r.buf consumed (Buffer.length r.buf - consumed) in
      Buffer.clear r.buf;
      Buffer.add_string r.buf rest;
      `Payload p
    | Corrupt msg -> `Corrupt msg
    | Incomplete -> (
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
        if Buffer.length r.buf = 0 then `Eof
        else `Corrupt "connection closed mid-frame (torn frame)"
      | n ->
        Buffer.add_subbytes r.buf r.chunk 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
        if Buffer.length r.buf = 0 then `Eof
        else `Corrupt "connection reset mid-frame (torn frame)")
  in
  go ()
