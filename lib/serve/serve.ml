type opts = {
  host : string;
  port : int;
  jobs : int;
  batch_window : float;
  batch_cap : int;
  queue_cap : int;
  cache_capacity : int;
  drain_timeout : float;
  shadow_window : int;
  shadow_threshold : float;
}

let default_opts =
  {
    host = "127.0.0.1";
    port = 7811;
    jobs = 1;
    batch_window = 0.002;
    batch_cap = 64;
    queue_cap = 1024;
    cache_capacity = Predict_service.default_cache_capacity;
    drain_timeout = 5.0;
    shadow_window = 0;
    shadow_threshold = 0.0;
  }

(* A connection: one reader thread, and a reorder buffer that sequences
   responses back out in request order.  [next_seq] is touched only by the
   reader thread; [out_buf]/[next_out]/[alive] live under [out_lock]. *)
type conn = {
  c_id : int;
  fd : Unix.file_descr;
  out_lock : Mutex.t;
  out_buf : (int, Wire.response) Hashtbl.t;
  mutable next_out : int;
  mutable next_seq : int;
  mutable alive : bool;
}

type item =
  | Predict_item of conn * int * Loop.t
  | Reload_item of (conn * int) option * string
      (** [None] when the reload came from a signal, not a connection *)

(* Batch-size histogram: bucket [k] counts batches of size in
   (2^(k-1), 2^k]; the last bucket absorbs anything larger. *)
let hist_buckets = 8

(* A reloaded candidate under shadow evaluation: it predicts every batch
   alongside the live model (its answers are never sent) until [sh_seen]
   reaches the warmup window, then is promoted or rejected on its
   disagreement rate.  Touched only by the batcher domain. *)
type shadow = {
  sh_service : Predict_service.t;
  mutable sh_seen : int;
  mutable sh_disagreements : int;
}

type t = {
  opts : opts;
  config : Config.t;
  telemetry : Telemetry.t;
  listener : Unix.file_descr;
  lport : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  q : item Queue.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn_id : int;
  mutable stopping : bool;
  stop_flag : bool Atomic.t;
  reload_flag : string option Atomic.t;
  mutable service : Predict_service.t;
  mutable shadow : shadow option;
  mutable batcher : unit Domain.t option;
  hist : int array;
  mutable max_batch : int;
  mutable accepted : int;
  mutable requests : int;
  mutable shed : int;
  mutable batches : int;
  mutable batched_loops : int;
  mutable reloads : int;
  mutable reload_rejected : int;
  mutable shadow_promoted : int;
  mutable shadow_rejected : int;
  mutable shadow_seen_total : int;
  mutable shadow_disagreements_total : int;
  mutable frames_corrupt : int;
  mutable responses_dropped : int;
}

let tel t name n = Telemetry.incr t.telemetry ~pass:"serve" name n
let port t = t.lport

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- listen -------------------------------------------------------------- *)

let listen ?(opts = default_opts) ?(telemetry = Telemetry.global) config ~artifact =
  (* A client vanishing mid-write must surface as EPIPE on that write, not
     kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match Model_artifact.load ~telemetry artifact with
  | Error e -> Error ("serve: " ^ e)
  | Ok a -> (
    match
      Predict_service.create ~telemetry ~cache_capacity:opts.cache_capacity config a
    with
    | Error e -> Error ("serve: " ^ e)
    | Ok service -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string opts.host, opts.port));
        Unix.listen sock 128;
        let lport =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> opts.port
        in
        Ok
          {
            opts;
            config;
            telemetry;
            listener = sock;
            lport;
            lock = Mutex.create ();
            nonempty = Condition.create ();
            q = Queue.create ();
            conns = Hashtbl.create 64;
            next_conn_id = 0;
            stopping = false;
            stop_flag = Atomic.make false;
            reload_flag = Atomic.make None;
            service;
            shadow = None;
            batcher = None;
            hist = Array.make hist_buckets 0;
            max_batch = 0;
            accepted = 0;
            requests = 0;
            shed = 0;
            batches = 0;
            batched_loops = 0;
            reloads = 0;
            reload_rejected = 0;
            shadow_promoted = 0;
            shadow_rejected = 0;
            shadow_seen_total = 0;
            shadow_disagreements_total = 0;
            frames_corrupt = 0;
            responses_dropped = 0;
          }
      with Unix.Unix_error (e, fn, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "serve: %s: %s" fn (Unix.error_message e))))

let stop t = Atomic.set t.stop_flag true
let request_reload t path = Atomic.set t.reload_flag (Some path)

(* --- responses ----------------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

(* Park [resp] at [seq] in the reorder buffer and flush the contiguous run
   starting at [next_out] — responses leave each connection strictly in
   request order no matter how batches complete. *)
let deliver t conn seq resp =
  Mutex.lock conn.out_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_lock)
    (fun () ->
      Hashtbl.replace conn.out_buf seq resp;
      let buf = Buffer.create 64 in
      let flushed = ref 0 in
      let rec flush () =
        match Hashtbl.find_opt conn.out_buf conn.next_out with
        | Some r ->
          Hashtbl.remove conn.out_buf conn.next_out;
          conn.next_out <- conn.next_out + 1;
          Buffer.add_string buf (Wire.encode (Wire.response_payload r));
          incr flushed;
          flush ()
        | None -> ()
      in
      flush ();
      if !flushed > 0 then begin
        if conn.alive then begin
          try write_all conn.fd (Buffer.contents buf)
          with Unix.Unix_error _ ->
            conn.alive <- false;
            t.responses_dropped <- t.responses_dropped + !flushed;
            tel t "responses-dropped" !flushed
        end
        else begin
          t.responses_dropped <- t.responses_dropped + !flushed;
          tel t "responses-dropped" !flushed
        end
      end)

(* --- stats ---------------------------------------------------------------- *)

let stats_text t =
  let svc = t.service in
  let shadow = t.shadow in
  let ints kvs = List.map (fun (k, v) -> (k, string_of_int v)) kvs in
  let snapshot =
    locked t (fun () ->
        ints
          ([
             ("accepted", t.accepted);
             ("active", Hashtbl.length t.conns);
             ("queue-depth", Queue.length t.q);
             ("queue-cap", t.opts.queue_cap);
             ("requests", t.requests);
             ("shed", t.shed);
             ("batches", t.batches);
             ("batched-loops", t.batched_loops);
             ("max-batch", t.max_batch);
             ("batch-cap", t.opts.batch_cap);
             ("batch-window-us", int_of_float (t.opts.batch_window *. 1e6));
             ("reloads", t.reloads);
             ("reload-rejected", t.reload_rejected);
             ("shadow-window", t.opts.shadow_window);
             ("shadow-active", if shadow = None then 0 else 1);
             ("shadow-promoted", t.shadow_promoted);
             ("shadow-rejected", t.shadow_rejected);
             ("shadow-seen", t.shadow_seen_total);
             ("shadow-disagreements", t.shadow_disagreements_total);
             ("frames-corrupt", t.frames_corrupt);
             ("responses-dropped", t.responses_dropped);
           ]
          @ List.init hist_buckets (fun k ->
                (Printf.sprintf "batch-le-%d" (1 lsl k), t.hist.(k)))))
  in
  (* Per-model block: the counters below belong to the service instance,
     which is rebuilt on every (promoted) reload — tagging them with the
     artifact digest makes them unambiguously since-load. *)
  let model =
    [
      ("model-kind", Predict_service.model_kind svc);
      ("model-digest", Predict_service.model_digest svc);
      ( "model-label-space",
        Model_artifact.label_space_name (Predict_service.label_space svc) );
    ]
    @ ints
        [
          ("cache-hits", Predict_service.cache_hits svc);
          ("cache-misses", Predict_service.cache_misses svc);
          ("cache-evictions", Predict_service.cache_evictions svc);
          ("cache-size", Predict_service.cache_size svc);
        ]
  in
  let shadow_model =
    match shadow with
    | None -> []
    | Some sh ->
      [
        ("shadow-model-kind", Predict_service.model_kind sh.sh_service);
        ("shadow-model-digest", Predict_service.model_digest sh.sh_service);
      ]
      @ ints
          [
            ("shadow-window-seen", sh.sh_seen);
            ("shadow-window-disagreements", sh.sh_disagreements);
          ]
  in
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %s\n" k v) (snapshot @ model @ shadow_model))

(* --- the batcher ---------------------------------------------------------- *)

let bucket_of n =
  let rec go k = if k >= hist_buckets - 1 || n <= 1 lsl k then k else go (k + 1) in
  go 0

let do_reload t replier path =
  let reject e =
    locked t (fun () -> t.reload_rejected <- t.reload_rejected + 1);
    tel t "reload-rejected" 1;
    match replier with
    | Some (conn, seq) -> deliver t conn seq (Wire.Failure ("reload rejected: " ^ e))
    | None -> ()
  in
  match Model_artifact.load ~telemetry:t.telemetry path with
  | Error e -> reject e
  | Ok a -> (
    match
      Predict_service.create ~telemetry:t.telemetry
        ~cache_capacity:t.opts.cache_capacity t.config a
    with
    | Error e -> reject e
    | Ok svc ->
      if t.opts.shadow_window > 0 then begin
        (* Shadow evaluation: the candidate predicts alongside the live
           model for [shadow_window] loops before it may take over.  A
           second reload while one is shadowing replaces the candidate
           (latest wins) and restarts the window. *)
        t.shadow <- Some { sh_service = svc; sh_seen = 0; sh_disagreements = 0 };
        tel t "shadow-started" 1;
        match replier with
        | Some (conn, seq) ->
          deliver t conn seq
            (Wire.Okay
               (Printf.sprintf "shadowing %s (window %d)" (Model_artifact.kind a)
                  t.opts.shadow_window))
        | None -> ()
      end
      else begin
        (* The swap happens between batches, on the only domain that predicts,
           so no in-flight request ever sees a half-installed model. *)
        t.service <- svc;
        locked t (fun () -> t.reloads <- t.reloads + 1);
        tel t "reloads" 1;
        match replier with
        | Some (conn, seq) ->
          deliver t conn seq (Wire.Okay ("reloaded " ^ Model_artifact.kind a))
        | None -> ()
      end)

(* Pop ready predict items (up to the cap), stopping at a reload boundary so
   reloads stay ordered with the traffic around them.  Lock held. *)
let take_available t acc n blocked =
  let continue = ref true in
  while !continue && !n < t.opts.batch_cap && not (Queue.is_empty t.q) do
    match Queue.peek t.q with
    | Predict_item (c, s, l) ->
      ignore (Queue.pop t.q);
      acc := (c, s, l) :: !acc;
      incr n
    | Reload_item _ ->
      blocked := true;
      continue := false
  done

(* Adaptive micro-batching: the first request opens a bounded window
   ([batch_window]); the batch tops up in small slices while the arrival
   stream keeps flowing, and fires early the moment it pauses (or the cap
   or a reload boundary is hit).  A lone request therefore pays one slice,
   not the whole window; a saturated queue pays nothing. *)
let collect t =
  let acc = ref [] and n = ref 0 and blocked = ref false in
  take_available t acc n blocked;
  Mutex.unlock t.lock;
  if (not !blocked) && !n < t.opts.batch_cap then begin
    let deadline = Unix.gettimeofday () +. t.opts.batch_window in
    let slice = Float.max 1e-5 (t.opts.batch_window /. 8.) in
    let rec top_up () =
      if (not !blocked) && !n < t.opts.batch_cap && Unix.gettimeofday () < deadline
      then begin
        let before = !n in
        Unix.sleepf slice;
        locked t (fun () -> take_available t acc n blocked);
        if !n > before then top_up ()
      end
    in
    top_up ()
  end;
  List.rev !acc

(* Shadow-predict the same batch and promote or reject the candidate once
   its warmup window fills.  Runs on the batcher domain, after the live
   answers are known; the candidate's answers are never sent to clients. *)
let run_shadow t sh loops nb (factors : (int array, string) result) =
  match factors with
  | Error _ -> () (* the live model failed; there is nothing to compare against *)
  | Ok fs ->
  let disagreements =
    match
      try Ok (Predict_service.predict_batch ~jobs:t.opts.jobs sh.sh_service loops)
      with e -> Error (Printexc.to_string e)
    with
    | Ok cand ->
      let d = ref 0 in
      Array.iteri (fun i f -> if f <> cand.(i) then incr d) fs;
      !d
    | Error _ -> nb (* a crashing candidate must never be promoted *)
  in
  sh.sh_seen <- sh.sh_seen + nb;
  sh.sh_disagreements <- sh.sh_disagreements + disagreements;
  locked t (fun () ->
      t.shadow_seen_total <- t.shadow_seen_total + nb;
      t.shadow_disagreements_total <- t.shadow_disagreements_total + disagreements);
  if disagreements > 0 then tel t "shadow-disagreements" disagreements;
  if sh.sh_seen >= t.opts.shadow_window then begin
    let rate = float_of_int sh.sh_disagreements /. float_of_int (max 1 sh.sh_seen) in
    t.shadow <- None;
    if rate <= t.opts.shadow_threshold then begin
      t.service <- sh.sh_service;
      locked t (fun () ->
          t.shadow_promoted <- t.shadow_promoted + 1;
          t.reloads <- t.reloads + 1);
      tel t "shadow-promoted" 1;
      tel t "reloads" 1
    end
    else begin
      locked t (fun () -> t.shadow_rejected <- t.shadow_rejected + 1);
      tel t "shadow-rejected" 1
    end
  end

let run_batch t batch =
  let loops = List.map (fun (_, _, l) -> l) batch in
  let nb = List.length batch in
  let factors =
    try Ok (Predict_service.predict_batch ~jobs:t.opts.jobs t.service loops)
    with e -> Error (Printexc.to_string e)
  in
  (match t.shadow with
  | Some sh when nb > 0 -> run_shadow t sh loops nb factors
  | Some _ | None -> ());
  locked t (fun () ->
      t.batches <- t.batches + 1;
      t.batched_loops <- t.batched_loops + nb;
      t.hist.(bucket_of nb) <- t.hist.(bucket_of nb) + 1;
      if nb > t.max_batch then t.max_batch <- nb);
  tel t "batches" 1;
  tel t "batched-loops" nb;
  match factors with
  | Ok fs -> List.iteri (fun i (c, s, _) -> deliver t c s (Wire.Factor fs.(i))) batch
  | Error msg -> List.iter (fun (c, s, _) -> deliver t c s (Wire.Failure msg)) batch

let batcher_loop t =
  let rec main () =
    Mutex.lock t.lock;
    while Queue.is_empty t.q && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.q then Mutex.unlock t.lock (* stopping && drained: exit *)
    else begin
      match Queue.peek t.q with
      | Reload_item (replier, path) ->
        ignore (Queue.pop t.q);
        Mutex.unlock t.lock;
        do_reload t replier path;
        main ()
      | Predict_item _ ->
        let batch = collect t in
        (* collect released the lock *)
        run_batch t batch;
        main ()
    end
  in
  main ()

(* --- connections ---------------------------------------------------------- *)

let close_conn t conn =
  Mutex.lock conn.out_lock;
  conn.alive <- false;
  Mutex.unlock conn.out_lock;
  locked t (fun () -> Hashtbl.remove t.conns conn.c_id);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let handle_request t conn seq = function
  | Wire.Predict loop ->
    let verdict =
      locked t (fun () ->
          if t.stopping then `Draining
          else if Queue.length t.q >= t.opts.queue_cap then begin
            t.shed <- t.shed + 1;
            `Shed
          end
          else begin
            Queue.push (Predict_item (conn, seq, loop)) t.q;
            t.requests <- t.requests + 1;
            Condition.signal t.nonempty;
            `Queued
          end)
    in
    (match verdict with
    | `Queued -> tel t "requests" 1
    | `Shed ->
      tel t "shed" 1;
      deliver t conn seq Wire.Busy
    | `Draining -> deliver t conn seq (Wire.Failure "server draining"))
  | Wire.Control cmd -> (
    match String.split_on_char ' ' (String.trim cmd) with
    | [ "ping" ] -> deliver t conn seq (Wire.Okay "pong")
    | [ "stats" ] -> deliver t conn seq (Wire.Okay (stats_text t))
    | [ "shutdown" ] ->
      deliver t conn seq (Wire.Okay "draining");
      stop t
    | "reload" :: (_ :: _ as rest) ->
      let path = String.concat " " rest in
      let queued =
        locked t (fun () ->
            if t.stopping then false
            else begin
              Queue.push (Reload_item (Some (conn, seq), path)) t.q;
              Condition.signal t.nonempty;
              true
            end)
      in
      if not queued then deliver t conn seq (Wire.Failure "server draining")
    | _ -> deliver t conn seq (Wire.Failure ("unknown control command: " ^ cmd)))

let reader_thread t conn =
  let rd = Wire.reader conn.fd in
  let corrupt () =
    locked t (fun () -> t.frames_corrupt <- t.frames_corrupt + 1);
    tel t "frames-corrupt" 1
  in
  let rec loop () =
    match Wire.next rd with
    | `Eof -> ()
    | `Corrupt _ -> corrupt ()
    | `Payload p -> (
      match Wire.parse_request p with
      | Error _ -> corrupt ()
      | Ok req ->
        let seq = conn.next_seq in
        conn.next_seq <- seq + 1;
        handle_request t conn seq req;
        loop ())
  in
  loop ();
  close_conn t conn

(* --- the accept loop and graceful drain ----------------------------------- *)

let accept_one t =
  match Unix.accept t.listener with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
  | fd, _ ->
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let conn =
      locked t (fun () ->
          let id = t.next_conn_id in
          t.next_conn_id <- id + 1;
          t.accepted <- t.accepted + 1;
          let conn =
            {
              c_id = id;
              fd;
              out_lock = Mutex.create ();
              out_buf = Hashtbl.create 8;
              next_out = 0;
              next_seq = 0;
              alive = true;
            }
          in
          Hashtbl.replace t.conns id conn;
          conn)
    in
    tel t "accepted" 1;
    ignore (Thread.create (fun () -> reader_thread t conn) ())

let run t =
  t.batcher <- Some (Domain.spawn (fun () -> batcher_loop t));
  let rec accept_loop () =
    (match Atomic.exchange t.reload_flag None with
    | Some path ->
      locked t (fun () ->
          Queue.push (Reload_item (None, path)) t.q;
          Condition.signal t.nonempty)
    | None -> ());
    if Atomic.get t.stop_flag then
      locked t (fun () ->
          t.stopping <- true;
          Condition.broadcast t.nonempty)
    else begin
      (match Unix.select [ t.listener ] [] [] 0.1 with
      | [ _ ], _, _ -> accept_one t
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: the batcher empties the queue (readers now refuse new work),
     then connections get [drain_timeout] to close on their own before
     being forced.  Every queued request has been answered by the time the
     batcher joins. *)
  (match t.batcher with
  | Some d ->
    Domain.join d;
    t.batcher <- None
  | None -> ());
  let deadline = Unix.gettimeofday () +. t.opts.drain_timeout in
  let active () = locked t (fun () -> Hashtbl.length t.conns) in
  while active () > 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  if active () > 0 then begin
    (* Readers own their fds; shutdown wakes their blocking reads and each
       cleans itself up. *)
    locked t (fun () ->
        Hashtbl.iter
          (fun _ c ->
            try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          t.conns);
    let force_deadline = Unix.gettimeofday () +. 1.0 in
    while active () > 0 && Unix.gettimeofday () < force_deadline do
      Unix.sleepf 0.01
    done
  end;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
