type level = {
  conc : int;
  requests : int;
  wall_s : float;
  rps : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  shed : int;
  errors : int;
}

type result_t = {
  levels : level list;
  identical : bool;
  mismatches : int;
  total_requests : int;
  reloads : int;
  batch_hist : (int * int) list;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  json : string;
}

let default_levels = [ 1; 8; 32 ]

let loop_pool ?(size = 512) (config : Config.t) =
  let suite = Suite.full ~scale:(Float.min config.Config.scale 0.15) ~seed:config.Config.seed in
  let arr = Array.of_list (List.map snd (Suite.all_loops suite)) in
  if Array.length arr >= size then Array.sub arr 0 size
  else
    let extra = size - Array.length arr in
    let fz =
      Array.init extra (fun i ->
          let rng = Rng.create (9000 + i) in
          Fuzz_gen.loop rng Fuzz_gen.default ~id:i
            ~factor:(1 + (i mod Unroll.max_factor))
            ~name:(Printf.sprintf "fz%d" i))
    in
    Array.append arr fz

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (p *. float_of_int n)) - 1)))

let stats_assoc text =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ k; v ] -> Option.map (fun n -> (k, n)) (int_of_string_opt v)
      | _ -> None)
    (String.split_on_char '\n' text)

let stat assoc key = Option.value ~default:0 (List.assoc_opt key assoc)

let server_stats addr =
  match Serve_client.connect addr with
  | Error e -> Error e
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Serve_client.close c)
      (fun () ->
        match Serve_client.control c "stats" with
        | Ok (Wire.Okay text) -> Ok (stats_assoc text)
        | Ok r -> Error ("unexpected stats response: " ^ Wire.response_payload r)
        | Error e -> Error e)

(* One client thread: [per] synchronous request/response pairs over its own
   connection, retrying sheds, recording per-request latency.  Returns
   (latencies_us, mismatches, busy_retries, errors). *)
let client_run addr pool expected ~offset ~per =
  let lat = Array.make per Float.nan in
  let mism = ref 0 and busy = ref 0 and errors = ref 0 in
  (match Serve_client.connect addr with
  | Error _ -> errors := per
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Serve_client.close c)
      (fun () ->
        (try
           for i = 0 to per - 1 do
             let idx = (offset + i) mod Array.length pool in
             let t0 = Unix.gettimeofday () in
             let rec attempt tries =
               match Serve_client.predict c pool.(idx) with
               | Ok (Wire.Factor f) ->
                 if f <> expected.(idx) then incr mism
               | Ok Wire.Busy ->
                 incr busy;
                 if tries < 200 then begin
                   Thread.yield ();
                   attempt (tries + 1)
                 end
                 else incr errors
               | Ok _ -> incr errors
               | Error _ ->
                 incr errors;
                 raise Exit
             in
             attempt 0;
             lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e6
           done
         with Exit -> ())));
  (lat, !mism, !busy, !errors)

let json_of_level l =
  Printf.sprintf
    "{\"conc\":%d,\"requests\":%d,\"wall_s\":%.3f,\"rps\":%.0f,\"p50_us\":%.1f,\
     \"p99_us\":%.1f,\"p999_us\":%.1f,\"shed\":%d,\"errors\":%d}"
    l.conc l.requests l.wall_s l.rps l.p50_us l.p99_us l.p999_us l.shed l.errors

let run ?(levels = default_levels) ?(requests_per_level = 8000) ?opts ?(progress = true)
    ~config ~artifact ~pool () =
  let opts =
    let base =
      match opts with
      | Some o -> o
      | None ->
        {
          Serve.default_opts with
          Serve.jobs = max 2 (Parallel.default_jobs ());
          batch_window = 0.001;
        }
    in
    { base with Serve.port = 0 }
  in
  (* Local sequential ground truth first: the gate every server response is
     bit-diffed against. *)
  let local =
    Result.bind (Model_artifact.load ~telemetry:(Telemetry.create ()) artifact)
      (Predict_service.create ~telemetry:(Telemetry.create ()) config)
  in
  match local with
  | Error e -> Error ("serve-bench: " ^ e)
  | Ok local_service -> (
    let expected = Predict_service.predict_batch local_service (Array.to_list pool) in
    let telemetry = Telemetry.create () in
    match Serve.listen ~opts ~telemetry config ~artifact with
    | Error e -> Error e
    | Ok server ->
      let server_domain = Domain.spawn (fun () -> Serve.run server) in
      let addr = Printf.sprintf "127.0.0.1:%d" (Serve.port server) in
      let mismatches = ref 0 and errors_total = ref 0 in
      let reload_ok = ref true in
      let max_level = List.fold_left max 1 levels in
      let run_level conc =
        let per = max 1 (requests_per_level / conc) in
        let total = per * conc in
        let shed0 =
          match server_stats addr with Ok a -> stat a "shed" | Error _ -> 0
        in
        let slots = Array.make conc None in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init conc (fun k ->
              Thread.create
                (fun () ->
                  slots.(k) <- Some (client_run addr pool expected ~offset:(k * per) ~per))
                ())
        in
        (* At the top of the ramp, hot-reload the (same) artifact mid-run:
           the swap must drop nothing and change nothing. *)
        let reloader =
          if conc = max_level then
            Some
              (Thread.create
                 (fun () ->
                   Thread.delay 0.05;
                   match Serve_client.connect addr with
                   | Error _ -> reload_ok := false
                   | Ok c ->
                     Fun.protect
                       ~finally:(fun () -> Serve_client.close c)
                       (fun () ->
                         match Serve_client.control c ("reload " ^ artifact) with
                         | Ok (Wire.Okay _) -> ()
                         | _ -> reload_ok := false))
                 ())
          else None
        in
        List.iter Thread.join threads;
        Option.iter Thread.join reloader;
        let wall = Unix.gettimeofday () -. t0 in
        let lats = ref [] and mism = ref 0 and errs = ref 0 in
        Array.iter
          (function
            | Some (lat, m, _busy, e) ->
              lats := lat :: !lats;
              mism := !mism + m;
              errs := !errs + e
            | None -> errs := !errs + per)
          slots;
        mismatches := !mismatches + !mism;
        errors_total := !errors_total + !errs;
        let all = Array.concat !lats in
        let ok = Array.of_seq (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq all)) in
        Array.sort compare ok;
        let shed1 =
          match server_stats addr with Ok a -> stat a "shed" | Error _ -> shed0
        in
        let l =
          {
            conc;
            requests = total;
            wall_s = wall;
            rps = float_of_int (Array.length ok) /. Float.max wall 1e-9;
            p50_us = percentile ok 0.50;
            p99_us = percentile ok 0.99;
            p999_us = percentile ok 0.999;
            shed = shed1 - shed0;
            errors = !errs;
          }
        in
        if progress then
          Printf.printf
            "serve  conc=%-3d %d req in %.2fs | %.0f req/s | p50 %.0fus p99 %.0fus \
             p999 %.0fus | shed %d errors %d\n%!"
            conc total wall l.rps l.p50_us l.p99_us l.p999_us l.shed l.errors;
        l
      in
      let level_stats = List.map run_level levels in
      let final = match server_stats addr with Ok a -> a | Error _ -> [] in
      (match Serve_client.connect addr with
      | Ok c ->
        ignore (Serve_client.control c "shutdown");
        Serve_client.close c
      | Error _ -> Serve.stop server);
      Domain.join server_domain;
      let batch_hist =
        List.filter_map
          (fun (k, v) ->
            match String.index_opt k '-' with
            | Some _ when String.length k > 9 && String.sub k 0 9 = "batch-le-" ->
              Option.map
                (fun le -> (le, v))
                (int_of_string_opt (String.sub k 9 (String.length k - 9)))
            | _ -> None)
          final
      in
      let reloads = stat final "reloads" in
      let total_requests = List.fold_left (fun a l -> a + l.requests) 0 level_stats in
      let identical = !mismatches = 0 && !errors_total = 0 && !reload_ok && reloads >= 1 in
      let json =
        Printf.sprintf
          "{\"bench\":\"serve\",\"pool_loops\":%d,\"requests\":%d,\"identical\":%b,\
           \"mismatches\":%d,\"errors\":%d,\"reloads\":%d,\"levels\":[%s],\
           \"batch_hist\":[%s],\"cache_hits\":%d,\"cache_misses\":%d,\
           \"cache_evictions\":%d}"
          (Array.length pool) total_requests identical !mismatches !errors_total reloads
          (String.concat "," (List.map json_of_level level_stats))
          (String.concat ","
             (List.map (fun (le, n) -> Printf.sprintf "[%d,%d]" le n) batch_hist))
          (stat final "cache-hits") (stat final "cache-misses")
          (stat final "cache-evictions")
      in
      Ok
        {
          levels = level_stats;
          identical;
          mismatches = !mismatches;
          total_requests;
          reloads;
          batch_hist;
          cache_hits = stat final "cache-hits";
          cache_misses = stat final "cache-misses";
          cache_evictions = stat final "cache-evictions";
          json;
        })
