(** [unroll-ml serve]: the concurrent prediction server.

    A server binds one TCP listener over one {!Predict_service}.  Each
    accepted connection gets a reader thread speaking the {!Wire} codec; a
    torn or corrupt frame kills that connection, never the server.
    Requests are not predicted one at a time: readers push them through
    admission control into a bounded queue, and a dedicated batcher
    domain coalesces whatever arrives within a bounded window (capped at
    [batch_cap]) into a single {!Predict_service.predict_batch} call —
    concurrent load therefore hits the blocked matrix kernels, fanned over
    the {!Parallel} work-stealing pool, instead of the scalar path.  The
    batching is adaptive: a full queue fires immediately, a lone request
    fires as soon as the arrival stream pauses, so light load pays
    microseconds of window, not the whole thing.

    Responses return to each connection strictly in request order (a
    per-connection reorder buffer sequences batch results), so clients may
    pipeline.  When the queue is full the reader answers {!Wire.Busy}
    immediately — explicit backpressure, counted as a shed.

    Hot reload: a ["reload PATH"] control frame (or {!request_reload},
    wired to [SIGHUP] by the CLI) loads and verifies a new
    {!Model_artifact} and swaps it in between batches, so in-flight
    requests are never dropped; a bad artifact is rejected — counted and
    reported to the requester — while the old model keeps serving.

    Shadow evaluation ([shadow_window > 0]): instead of swapping
    immediately, a reloaded candidate predicts every batch {e alongside}
    the live model (its answers are never sent) until it has seen
    [shadow_window] loops; it is then promoted — swapped in between
    batches exactly like an immediate reload — if its disagreement rate
    against the live model is at most [shadow_threshold], and discarded
    otherwise.  Online training feeds this: [train --follow] emits
    artifacts whose predictions should match the eventual batch retrain,
    so a candidate that disagrees with serving traffic beyond the
    threshold is evidence of a divergent (partial or corrupt) artifact
    and is auto-rejected while the old model keeps serving.  A second
    reload during a shadow window replaces the candidate and restarts
    the window; [shadow_window = 0] (the default) keeps the immediate
    swap.

    Shutdown ({!stop}, a ["shutdown"] control frame, or [SIGINT]/[SIGTERM]
    in the CLI) is a graceful drain: the listener stops accepting, every
    queued request is still answered, and connections get up to
    [drain_timeout] seconds to close before being forced.

    Telemetry accumulates under the ["serve"] pass: [accepted], [requests],
    [shed], [batches], [batched-loops], [reloads], [reload-rejected],
    [shadow-started], [shadow-disagreements], [shadow-promoted],
    [shadow-rejected], [frames-corrupt], [responses-dropped] — alongside
    the ["parallel"] and ["predict-service"] counters the batch path
    already feeds.  The ["stats"] control frame renders a live snapshot
    (queue depth, active connections, batch-size histogram, shadow state,
    and a per-model block — [model-kind], [model-digest] and the cache
    counters, which belong to the loaded service instance and are
    therefore since-load) as [key value] lines. *)

type opts = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  jobs : int;  (** domain-pool width for batch classification *)
  batch_window : float;  (** seconds a forming batch waits for company *)
  batch_cap : int;  (** max loops per predict batch *)
  queue_cap : int;  (** admission-control bound; beyond it requests shed *)
  cache_capacity : int;  (** {!Predict_service} feature-vector cache bound *)
  drain_timeout : float;  (** seconds to wait for connections on shutdown *)
  shadow_window : int;
      (** loops a reloaded candidate shadow-predicts before promotion;
          0 swaps immediately *)
  shadow_threshold : float;
      (** max disagreement rate (fraction of shadowed loops) for
          promotion *)
}

val default_opts : opts
(** [127.0.0.1:7811], jobs 1, a 2 ms window, batches of 64, a 1024-deep
    queue, the default cache bound, a 5 s drain, shadowing off. *)

type t

val listen :
  ?opts:opts -> ?telemetry:Telemetry.t -> Config.t -> artifact:string ->
  (t, string) result
(** Load and verify the artifact (provenance gates as in
    {!Predict_service.create}), bind and listen.  No traffic is served
    until {!run}. *)

val port : t -> int
(** The bound port (useful with [opts.port = 0]). *)

val run : t -> unit
(** Serve until shutdown is requested, then drain gracefully and release
    every descriptor.  Blocks; call from the main thread (tests run it in
    a background thread and drive it with control frames). *)

val stop : t -> unit
(** Request graceful shutdown.  Async-signal-safe: sets a flag the accept
    loop polls. *)

val request_reload : t -> string -> unit
(** Request a hot reload from [path] before the next batch.  Used by the
    CLI's [SIGHUP] handler; remote clients use the ["reload"] control
    frame instead (which also carries the verdict back). *)

val stats_text : t -> string
(** The ["stats"] snapshot: [key value] lines. *)
