type t = {
  fd : Unix.file_descr;
  rd : Wire.reader;
}

let parse_addr addr =
  match String.rindex_opt addr ':' with
  | Some i ->
    let host = String.sub addr 0 i in
    let port = String.sub addr (i + 1) (String.length addr - i - 1) in
    let host = if host = "" then "127.0.0.1" else host in
    (match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Ok (host, p)
    | _ -> Error (Printf.sprintf "bad port in %S" addr))
  | None -> (
    match int_of_string_opt addr with
    | Some p when p > 0 && p < 65536 -> Ok ("127.0.0.1", p)
    | _ -> Error (Printf.sprintf "expected HOST:PORT, got %S" addr))

let connect addr =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok (host, port) -> (
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let inet =
      match Unix.inet_addr_of_string host with
      | a -> Ok a
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> Error ("no address for host " ^ host)
        | h -> Ok h.Unix.h_addr_list.(0)
        | exception Not_found -> Error ("unknown host " ^ host))
    in
    match inet with
    | Error _ as e -> e
    | Ok inet -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        Ok { fd; rd = Wire.reader fd }
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  try Ok (Wire.write_payload t.fd (Wire.request_payload req))
  with Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)

let recv t =
  match Wire.next t.rd with
  | `Payload p -> Wire.parse_response p
  | `Eof -> Error "connection closed by server"
  | `Corrupt msg -> Error ("corrupt response: " ^ msg)

let rpc t req = Result.bind (send t req) (fun () -> recv t)
let predict t loop = rpc t (Wire.Predict loop)
let control t cmd = rpc t (Wire.Control cmd)

let predict_all ?(depth = 64) t loops =
  let loops = Array.of_list loops in
  let n = Array.length loops in
  let out = Array.make n Wire.Busy in
  let err = ref None in
  let sent = ref 0 and received = ref 0 in
  while !err = None && !received < n do
    while !err = None && !sent < n && !sent - !received < depth do
      (match send t (Wire.Predict loops.(!sent)) with
      | Ok () -> incr sent
      | Error e -> err := Some e)
    done;
    if !err = None then begin
      match recv t with
      | Ok r ->
        out.(!received) <- r;
        incr received
      | Error e -> err := Some e
    end
  done;
  match !err with None -> Ok out | Some e -> Error e
