(** The prediction wire protocol: length-prefixed, digest-framed messages.

    One frame is [4-byte big-endian payload length | 16-byte MD5 of the
    payload | payload].  The framing follows the {!Label_store} journal
    idiom: a frame is valid iff it is complete and its digest matches, and
    anything else is damage.  Damage is handled per connection, never per
    process — a torn or corrupt frame kills the connection it arrived on
    while the server keeps serving everyone else.

    Payloads carry one tagged message.  Requests are either a loop to
    predict (the loop travels as its [Marshal] image, which round-trips
    structurally — the server featurises exactly the loop the client
    holds, so remote predictions bit-match local ones) or a textual
    control command (["ping"], ["stats"], ["reload PATH"], ["shutdown"]).
    Responses are a factor, an explicit backpressure shed ({!Busy}), or a
    control acknowledgement/error.

    The same codec is shared by [unroll-ml serve], [unroll-ml predict
    --remote], [unroll-ml ctl], the load-generator bench, and the test
    suite's torn-frame properties. *)

val max_payload : int
(** Upper bound on a payload (1 MiB); larger length prefixes are rejected
    as corrupt rather than trusted as allocations. *)

(** {1 Frame layer} *)

type decoded =
  | Payload of string * int
      (** the payload, and the total frame size consumed from the buffer *)
  | Incomplete  (** a valid prefix: read more bytes and retry *)
  | Corrupt of string  (** digest mismatch or impossible length *)

val encode : string -> string
(** Wrap a payload into one frame. *)

val decode : ?pos:int -> string -> decoded
(** Decode the frame starting at [pos] (default 0). *)

(** {1 Messages} *)

type request =
  | Predict of Loop.t
  | Control of string

type response =
  | Factor of int  (** a prediction, 1..{!Unroll.max_factor} *)
  | Busy  (** admission control shed the request; retry later *)
  | Okay of string  (** control acknowledgement ([pong], stats text, …) *)
  | Failure of string  (** the request was understood but failed *)

val request_payload : request -> string
val parse_request : string -> (request, string) result

val response_payload : response -> string
val parse_response : string -> (response, string) result

(** {1 Blocking socket I/O} *)

val write_payload : Unix.file_descr -> string -> unit
(** Frame and write fully.  Raises [Unix.Unix_error] on a dead peer. *)

type reader
(** Incremental frame reader over a connection: buffers partial frames
    across reads. *)

val reader : Unix.file_descr -> reader

val next : reader -> [ `Payload of string | `Eof | `Corrupt of string ]
(** Block until one whole frame, end of stream, or damage.  [`Eof] in the
    middle of a frame is a torn frame and reported as [`Corrupt]. *)
