(** Client side of the {!Wire} protocol — the piece [unroll-ml predict
    --remote], [unroll-ml ctl], the load-generator bench and the tests
    share.

    A client is one connection.  Requests may be pipelined (the server
    answers strictly in request order per connection); {!predict_all}
    does bounded-depth pipelining so arbitrarily long loop lists cannot
    wedge on socket buffers.  A client is not thread-safe — give each
    concurrent load-generator thread its own connection, which is also
    what makes the server batch. *)

type t

val connect : string -> (t, string) result
(** [connect "host:port"] (or [":port"] / ["port"] for localhost). *)

val close : t -> unit

val send : t -> Wire.request -> (unit, string) result
(** Fire one request without waiting — pipelining. *)

val recv : t -> (Wire.response, string) result
(** Block for the next response. *)

val rpc : t -> Wire.request -> (Wire.response, string) result
(** [send] then [recv]. *)

val predict : t -> Loop.t -> (Wire.response, string) result

val predict_all : ?depth:int -> t -> Loop.t list -> (Wire.response array, string) result
(** Predict every loop, pipelined [depth] (default 64) requests deep;
    responses land at their input index.  Stops at the first transport
    error. *)

val control : t -> string -> (Wire.response, string) result
(** Send a control command (["ping"], ["stats"], ["reload PATH"],
    ["shutdown"]) and wait for the verdict. *)
