type cfg = {
  synth_prob : float;
  comps_max : int;
  chain_max : int;
  rec_distance_max : int;
  arrays_max : int;
  indirect_prob : float;
  guard_prob : float;
  sel_prob : float;
  mov_prob : float;
  fmadd_prob : float;
  div_prob : float;
  call_prob : float;
  exit_prob : float;
  reduction_prob : float;
  alias_prob : float;
  dynamic_trip_prob : float;
  small_array_prob : float;
  strides : int array;
}

let default =
  {
    synth_prob = 0.5;
    comps_max = 5;
    chain_max = 5;
    rec_distance_max = 4;
    arrays_max = 3;
    indirect_prob = 0.08;
    guard_prob = 0.2;
    sel_prob = 0.15;
    mov_prob = 0.12;
    fmadd_prob = 0.25;
    div_prob = 0.05;
    call_prob = 0.05;
    exit_prob = 0.07;
    reduction_prob = 0.3;
    alias_prob = 0.35;
    dynamic_trip_prob = 0.4;
    small_array_prob = 0.25;
    strides = [| 1; 1; 1; 2; 3; 4; 8 |];
  }

type case = {
  id : int;
  loop : Loop.t;
  factor : int;
  swp : bool;
  rle : bool;
  machine : Machine.t;
}

let machines = Array.of_list Machine.all

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* Trip counts concentrated where remainder-loop logic can be wrong. *)
let adversarial_trip rng ~factor =
  let f = factor in
  match Rng.int rng 12 with
  | 0 -> 0
  | 1 -> 1
  | 2 -> max 0 (f - 1)
  | 3 -> f
  | 4 -> f + 1
  | 5 -> (2 * f) - 1
  | 6 -> 2 * f
  | 7 -> (3 * f) + 1
  | 8 -> 1 + Rng.int rng 9
  | 9 -> (f * (2 + Rng.int rng 6)) + Rng.int rng f
  | 10 -> Synth.snap_trip rng (24 + Rng.int rng 200)
  | _ -> 8 + Rng.int rng 56

(* --- shared helpers for the test suites -------------------------------- *)

let synth_profile seed =
  match seed mod 4 with
  | 0 -> Synth.fp_numeric
  | 1 -> Synth.int_pointer
  | 2 -> Synth.media
  | _ -> Synth.scientific_c

let synth_loop ?(prefix = "qf") seed =
  let rng = Rng.create seed in
  Synth.generate rng (synth_profile seed) ~name:(Printf.sprintf "%s%d" prefix seed)

let with_exact_trip ?(dynamic = false) (l : Loop.t) trip =
  {
    l with
    Loop.trip_actual = trip;
    trip_static =
      (if dynamic then None else Option.map (fun _ -> trip) l.Loop.trip_static);
    exit_prob = 0.0;
  }

let with_array_lengths (l : Loop.t) len =
  {
    l with
    Loop.arrays =
      Array.map (fun (a : Loop.array_info) -> { a with Loop.length = len }) l.Loop.arrays;
  }

(* --- op-kind coverage --------------------------------------------------- *)

let op_kind (op : Op.t) =
  match op.Op.opcode with
  | Op.Ialu -> "ialu"
  | Op.Imul -> "imul"
  | Op.Fadd -> "fadd"
  | Op.Fmul -> "fmul"
  | Op.Fmadd -> "fmadd"
  | Op.Fdiv -> "fdiv"
  | Op.Load { Op.mkind = Op.Indirect; _ } -> "load-ind"
  | Op.Load _ -> "load"
  | Op.Store { Op.mkind = Op.Indirect; _ } -> "store-ind"
  | Op.Store _ -> "store"
  | Op.Cmp -> "cmp"
  | Op.Sel -> "sel"
  | Op.Mov -> "mov"
  | Op.Call -> "call"
  | Op.Br Op.Backedge -> "br-backedge"
  | Op.Br Op.Exit -> "br-exit"
  | Op.Br Op.Internal -> "br-internal"

let op_kinds =
  [
    "ialu"; "imul"; "fadd"; "fmul"; "fmadd"; "fdiv"; "load"; "load-ind"; "store";
    "store-ind"; "cmp"; "sel"; "mov"; "call"; "br-backedge"; "br-exit";
  ]

let op_histogram (l : Loop.t) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun op ->
      let k = op_kind op in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    l.Loop.body;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* --- the structured generator ------------------------------------------ *)

(* Mutable generation context around a Builder: pools of defined values per
   class so later computations, selects and stores can reuse them. *)
type ctx = {
  b : Builder.t;
  rng : Rng.t;
  cfg : cfg;
  n_arrays : int;
  mutable ivals : Op.reg list;
  mutable fvals : Op.reg list;
  mutable preds : Op.reg list;
  mutable loaded : int list; (* array ids the loop reads *)
}

let remember c (r : Op.reg) =
  match r.Op.cls with
  | Op.Int -> c.ivals <- r :: c.ivals
  | Op.Flt -> c.fvals <- r :: c.fvals

let any_array c = Rng.int c.rng c.n_arrays

let stride_of c = pick c.rng c.cfg.strides

let direct_load c ~cls ?(array = any_array c) ?(offset = Rng.int c.rng 3) () =
  c.loaded <- array :: c.loaded;
  let r = Builder.load c.b ~cls ~array ~stride:(stride_of c) ~offset () in
  remember c r;
  r

let any_int c =
  match c.ivals with
  | [] -> direct_load c ~cls:Op.Int ()
  | l -> List.nth l (Rng.int c.rng (List.length l))

let any_flt c =
  match c.fvals with
  | [] -> direct_load c ~cls:Op.Flt ()
  | l -> List.nth l (Rng.int c.rng (List.length l))

let any_pred c =
  match c.preds with
  | [] ->
    let p = Builder.cmp c.b [ any_int c ] in
    c.preds <- p :: c.preds;
    p
  | l -> List.nth l (Rng.int c.rng (List.length l))

let maybe_pred c = if Rng.float c.rng 1.0 < c.cfg.guard_prob then Some (any_pred c) else None

(* One arithmetic step of class [cls] over existing values. *)
let arith_step c ?pred cls v =
  let r =
    match cls with
    | Op.Flt ->
      if Rng.float c.rng 1.0 < c.cfg.fmadd_prob then
        Builder.fmadd c.b ?pred [ v; any_flt c; any_flt c ]
      else if Rng.float c.rng 1.0 < c.cfg.div_prob then
        Builder.fdiv c.b ?pred [ v; any_flt c ]
      else if Rng.bool c.rng then Builder.fmul c.b ?pred [ v; any_flt c ]
      else Builder.fadd c.b ?pred [ v; any_flt c ]
    | Op.Int ->
      if Rng.bool c.rng then Builder.imul c.b ?pred [ v; any_int c ]
      else Builder.ialu c.b ?pred [ v; any_int c ]
  in
  remember c r;
  r

let store_value c ?pred v =
  (* With [alias_prob], target an array the loop also reads, at a nearby
     offset — genuine (potential) memory dependences across iterations and
     replicas, exactly what RLE and the dependence analysis must respect. *)
  let array =
    if c.loaded <> [] && Rng.float c.rng 1.0 < c.cfg.alias_prob then
      List.nth c.loaded (Rng.int c.rng (List.length c.loaded))
    else any_array c
  in
  Builder.store c.b ?pred ~array ~stride:(stride_of c) ~offset:(Rng.int c.rng 3) v

(* A loop-carried recurrence at distance [d]: the fresh value enters a
   rotation chain of [d] registers and is consumed [d] iterations later. *)
let rotation c ~cls ~d =
  let fresh () = if cls = Op.Flt then Builder.freg c.b else Builder.ireg c.b in
  let regs = Array.init d (fun _ -> fresh ()) in
  let oldest = regs.(d - 1) in
  let v =
    match cls with
    | Op.Flt -> Builder.fmadd c.b [ oldest; any_flt c; any_flt c ]
    | Op.Int -> Builder.ialu c.b [ oldest; any_int c ]
  in
  for i = d - 1 downto 1 do
    Builder.assign c.b ~dst:regs.(i) regs.(i - 1)
  done;
  Builder.assign c.b ~dst:regs.(0) v;
  Builder.mark_live_out c.b regs.(0);
  remember c v;
  v

let computation c =
  let cls = if Rng.bool c.rng then Op.Flt else Op.Int in
  let pred = maybe_pred c in
  let v = ref (direct_load c ~cls ()) in
  let chain = 1 + Rng.int c.rng c.cfg.chain_max in
  for _ = 1 to chain do
    v := arith_step c ?pred cls !v
  done;
  if Rng.float c.rng 1.0 < c.cfg.sel_prob then begin
    let a = !v in
    let alt = if cls = Op.Flt then any_flt c else any_int c in
    let r = Builder.sel c.b ~pred:(any_pred c) a alt in
    remember c r;
    v := r
  end;
  if Rng.float c.rng 1.0 < c.cfg.mov_prob then begin
    let r = Builder.mov c.b !v in
    remember c r;
    v := r
  end;
  if Rng.float c.rng 1.0 < c.cfg.reduction_prob then begin
    let d = 1 + Rng.int c.rng c.cfg.rec_distance_max in
    if d = 1 then begin
      let acc = if cls = Op.Flt then Builder.freg c.b else Builder.ireg c.b in
      Builder.accumulate c.b ~acc ~op:(if cls = Op.Flt then `Fadd else `Ialu) [ !v ];
      Builder.mark_live_out c.b acc
    end
    else ignore (rotation c ~cls ~d)
  end;
  if Rng.float c.rng 1.0 < 0.8 then store_value c ?pred:(maybe_pred c) !v;
  if Rng.float c.rng 1.0 < 0.4 then Builder.mark_live_out c.b !v

let indirect_pair c =
  (* Index load feeding an indirect load (gather) and an indirect store
     (scatter): the address-generation dependence must survive every
     transform, and precise dependence analysis is off the table. *)
  let k = direct_load c ~cls:Op.Int ~offset:0 () in
  let tbl = any_array c in
  let g =
    Builder.load c.b ~mkind:Op.Indirect ~addr:k ~cls:Op.Flt ~array:tbl ~stride:0 ~offset:0 ()
  in
  remember c g;
  let v = arith_step c Op.Flt g in
  Builder.store c.b ~mkind:Op.Indirect ~addr:k ~array:(any_array c) ~stride:0 ~offset:0 v

let alias_block c =
  (* Same-array traffic at neighbouring offsets: in-iteration forwarding
     (store then load of the same address), a cross-iteration distance-1
     memory recurrence (load [i+1], store [i]), and a doomed store that a
     correct DSE may remove only when nothing can read it in between. *)
  let a = any_array c in
  c.loaded <- a :: c.loaded;
  let x = Builder.load c.b ~cls:Op.Int ~array:a ~stride:1 ~offset:1 () in
  remember c x;
  let y = Builder.imul c.b [ x; any_int c ] in
  remember c y;
  Builder.store c.b ~array:a ~stride:1 ~offset:0 y;
  let z = Builder.load c.b ~cls:Op.Int ~array:a ~stride:1 ~offset:0 () in
  remember c z;
  let w = Builder.ialu c.b [ z; x ] in
  remember c w;
  Builder.store c.b ~array:a ~stride:1 ~offset:0 w;
  Builder.mark_live_out c.b w

let predicated_block c =
  let x = direct_load c ~cls:Op.Flt () in
  let p = Builder.cmp c.b [ x ] in
  c.preds <- p :: c.preds;
  let y = Builder.fadd c.b ~pred:p [ x; any_flt c ] in
  remember c y;
  let s = Builder.sel c.b ~pred:p y x in
  remember c s;
  let i = Builder.ialu c.b ~pred:p [ any_int c; any_int c ] in
  remember c i;
  store_value c ~pred:p s;
  Builder.mark_live_out c.b s

let exit_block c =
  let v = direct_load c ~cls:Op.Int ~offset:0 () in
  let p = Builder.cmp c.b [ v ] in
  Builder.early_exit c.b ~pred:p

(* Directed shapes, cycled by [id mod 10] so small budgets still cover the
   whole op-kind and oracle space. *)
let shape_count = 10

let build_structured rng cfg ~shape ~factor ~name =
  let dynamic =
    if shape = 0 then Rng.bool rng else Rng.float rng 1.0 < cfg.dynamic_trip_prob
  in
  let trip =
    if shape = 0 then pick rng [| 0; 1; max 0 (factor - 1); factor; factor + 1; 2 * factor |]
    else adversarial_trip rng ~factor
  in
  let lang = pick rng [| Loop.C; Loop.Fortran; Loop.Fortran90 |] in
  let aliased = match lang with Loop.C -> Rng.float rng 1.0 < 0.6 | _ -> false in
  let b =
    Builder.create ~nest_level:(1 + Rng.int rng 3) ~lang
      ~trip_static:(if dynamic then None else Some trip)
      ~aliased ~outer_trip:(1 + Rng.int rng 24) ~name ~trip ()
  in
  let max_stride = Array.fold_left max 1 cfg.strides in
  let n_arrays = 1 + Rng.int rng cfg.arrays_max in
  for i = 0 to n_arrays - 1 do
    let len =
      if Rng.float rng 1.0 < cfg.small_array_prob then 3 + Rng.int rng 14
      else (max trip 1 * max_stride) + 16 + Rng.int rng 32
    in
    let elem = if Rng.bool rng then 8 else 4 in
    ignore (Builder.add_array b ~elem_size:elem ~length:len (Printf.sprintf "a%d" i))
  done;
  let c = { b; rng; cfg; n_arrays; ivals = []; fvals = []; preds = []; loaded = [] } in
  (match shape with
  | 0 ->
    (* remainder edge: a plain fp kernel whose only adversarial feature is
       the trip count straddling the factor *)
    let x = direct_load c ~cls:Op.Flt () in
    let y = direct_load c ~cls:Op.Flt () in
    let v = Builder.fmul c.b [ x; y ] in
    remember c v;
    let w = Builder.fadd c.b [ v; any_flt c ] in
    remember c w;
    store_value c w;
    Builder.mark_live_out c.b w
  | 1 ->
    let d = 1 + Rng.int rng cfg.rec_distance_max in
    let v = rotation c ~cls:Op.Flt ~d:(max 2 d) in
    store_value c v;
    if Rng.bool rng then ignore (rotation c ~cls:Op.Int ~d:(1 + Rng.int rng 2))
  | 2 -> alias_block c
  | 3 ->
    indirect_pair c;
    computation c
  | 4 -> predicated_block c
  | 5 ->
    let x = direct_load c ~cls:Op.Flt () in
    let q = Builder.fdiv c.b [ x; any_flt c ] in
    remember c q;
    Builder.call c.b;
    store_value c q;
    Builder.mark_live_out c.b q
  | 6 ->
    computation c;
    exit_block c
  | 9 ->
    (* tiny body, the regime where high factors pay *)
    let x = direct_load c ~cls:Op.Flt ~offset:0 () in
    let v = arith_step c Op.Flt x in
    store_value c v
  | _ ->
    (* mixed: everything by probability *)
    let comps = 1 + Rng.int rng cfg.comps_max in
    for _ = 1 to comps do
      computation c
    done;
    if Rng.float rng 1.0 < cfg.indirect_prob then indirect_pair c;
    if Rng.float rng 1.0 < cfg.call_prob then Builder.call c.b;
    if Rng.float rng 1.0 < cfg.exit_prob then exit_block c);
  Builder.finish b

let loop rng cfg ~id ~factor ~name =
  let shape = id mod shape_count in
  if shape >= 7 && shape <= 8 && Rng.float rng 1.0 < cfg.synth_prob then begin
    (* benchmark-profile loops keep the fuzzer anchored to the learning
       workload's distribution; trips still land adversarially *)
    let profile = synth_profile (Rng.int rng 4) in
    let l = Synth.generate rng profile ~name in
    let dynamic = Rng.float rng 1.0 < cfg.dynamic_trip_prob in
    with_exact_trip ~dynamic l (adversarial_trip rng ~factor)
  end
  else build_structured rng cfg ~shape ~factor ~name

let case ?(cfg = default) ~seed ~id () =
  let rng = Rng.derive seed "fuzz-case" id in
  let factor = 1 + Rng.int rng 8 in
  let swp = id land 1 = 1 in
  let rle = id land 2 = 0 in
  let machine = machines.(id mod Array.length machines) in
  let loop = loop rng cfg ~id ~factor ~name:(Printf.sprintf "fz%d" id) in
  { id; loop; factor; swp; rle; machine }
