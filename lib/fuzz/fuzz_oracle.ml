type outcome = {
  checked : string list;
  violations : (string * string) list;
  digest : (string * string) option;
}

(* --- helpers shared with the test suites -------------------------------- *)

let spill_ranges (exe : Pipeline_state.executable) =
  List.filter_map
    (fun ((s : Schedule.t), _, _) ->
      Array.find_opt
        (fun (a : Loop.array_info) -> a.Loop.aname = Regalloc.spill_array_name)
        s.Schedule.loop.Loop.arrays
      |> Option.map (fun (a : Loop.array_info) ->
             (a.Loop.base, a.Loop.base + (a.Loop.elem_size * a.Loop.length))))
    exe.Pipeline_state.schedules

let run_exe st (exe : Pipeline_state.executable) =
  (* Kernel then remainder, like Interp.run_unrolled: the remainder is
     skipped when the kernel fired an early exit. *)
  let exited = ref false in
  List.iter
    (fun ((s : Schedule.t), trips, phase) ->
      if (not !exited) && trips > 0 then begin
        let out = Interp.run st s.Schedule.loop ~trips ~phase in
        if out.Interp.exited_early then exited := true
      end)
    exe.Pipeline_state.schedules

let equivalent_modulo_spills exe st_orig st_new live_out =
  let ranges = spill_ranges exe in
  let keep (addr, _) =
    not (List.exists (fun (lo, hi) -> addr >= lo && addr < hi) ranges)
  in
  List.filter keep (Interp.memory_image st_orig)
  = List.filter keep (Interp.memory_image st_new)
  && List.for_all
       (fun r -> Interp.register_value st_orig r = Interp.register_value st_new r)
       live_out

let structurally_equal (a : Loop.t) (b : Loop.t) =
  let sig_of (l : Loop.t) =
    ( Array.map
        (fun (op : Op.t) ->
          ( op.Op.opcode,
            Option.map (fun (r : Op.reg) -> r.Op.cls) op.Op.dst,
            List.length op.Op.srcs,
            op.Op.pred <> None ))
        l.Loop.body,
      Array.map
        (fun (x : Loop.array_info) -> (x.Loop.aname, x.Loop.elem_size, x.Loop.length))
        l.Loop.arrays,
      l.Loop.nest_level,
      l.Loop.lang,
      l.Loop.trip_static,
      l.Loop.trip_actual,
      l.Loop.aliased,
      l.Loop.outer_trip,
      List.length l.Loop.live_out )
  in
  sig_of a = sig_of b

(* --- oracle naming ------------------------------------------------------ *)

let pipeline_oracle_name ~swp ~rle =
  Printf.sprintf "pipeline-interp[%s,%s]"
    (if swp then "swp" else "list")
    (if rle then "rle" else "norle")

let oracle_names =
  [
    "unroll-interp";
    "rle-interp";
    pipeline_oracle_name ~swp:false ~rle:true;
    pipeline_oracle_name ~swp:false ~rle:false;
    pipeline_oracle_name ~swp:true ~rle:true;
    pipeline_oracle_name ~swp:true ~rle:false;
    "pipeline-interp[noregalloc]";
    "sim-fast-vs-ref";
    "cache-roundtrip";
    "text-roundtrip";
    "artifact-predict";
    "verify-symbolic";
  ]

let oracles_for ~id =
  (* swp/rle must mirror Fuzz_gen.case's coordinate cycling *)
  let swp = id land 1 = 1 and rle = id land 2 = 0 in
  [ "unroll-interp"; "rle-interp"; pipeline_oracle_name ~swp ~rle; "text-roundtrip" ]
  @ (if id mod 3 = 0 then [ "pipeline-interp[noregalloc]" ] else [])
  @ (if id mod 4 = 0 then [ "cache-roundtrip" ] else [])
  @ (if id mod 4 = 1 then [ "sim-fast-vs-ref" ] else [])
  @ (if id mod 4 = 2 then [ "artifact-predict" ] else [])
  @ if id mod 4 = 3 then [ "verify-symbolic" ] else []

(* --- the oracles -------------------------------------------------------- *)

let baseline (loop : Loop.t) =
  let st = Interp.fresh_state () in
  ignore (Interp.run st loop ~trips:loop.Loop.trip_actual ~phase:0);
  st

let check_unroll (c : Fuzz_gen.case) =
  let st0 = baseline c.Fuzz_gen.loop in
  let u = Unroll.run c.Fuzz_gen.loop c.Fuzz_gen.factor in
  let st1 = Interp.fresh_state () in
  ignore (Interp.run_unrolled st1 u);
  if Interp.equivalent st0 st1 c.Fuzz_gen.loop.Loop.live_out then None
  else Some (Printf.sprintf "unroll x%d diverges from interp baseline" c.Fuzz_gen.factor)

let check_rle (c : Fuzz_gen.case) =
  let st0 = baseline c.Fuzz_gen.loop in
  let u = Unroll.run c.Fuzz_gen.loop c.Fuzz_gen.factor in
  let r = Rle.run u.Unroll.kernel in
  let u = { u with Unroll.kernel = r.Rle.loop } in
  let st1 = Interp.fresh_state () in
  ignore (Interp.run_unrolled st1 u);
  if Interp.equivalent st0 st1 c.Fuzz_gen.loop.Loop.live_out then None
  else
    Some
      (Printf.sprintf "rle after unroll x%d diverges (%d loads, %d stores eliminated)"
         c.Fuzz_gen.factor r.Rle.loads_eliminated r.Rle.stores_eliminated)

let passes_without names =
  List.filter (fun p -> not (List.mem p.Pipeline.pass_name names)) Pipeline.default_passes

let compile_with ~passes (c : Fuzz_gen.case) ~swp =
  let st = Pipeline_state.init c.Fuzz_gen.machine ~swp c.Fuzz_gen.loop c.Fuzz_gen.factor in
  let st = Pipeline.run ~telemetry:(Telemetry.create ()) ~passes st in
  Pipeline_state.executable_exn st

let check_compiled (c : Fuzz_gen.case) exe =
  let st0 = baseline c.Fuzz_gen.loop in
  let st1 = Interp.fresh_state () in
  run_exe st1 exe;
  if equivalent_modulo_spills exe st0 st1 c.Fuzz_gen.loop.Loop.live_out then None
  else
    Some
      (Printf.sprintf "compiled loop diverges (machine %s, factor %d)"
         c.Fuzz_gen.machine.Machine.mach_name c.Fuzz_gen.factor)

let check_pipeline (c : Fuzz_gen.case) ~swp ~rle =
  let passes = if rle then Pipeline.default_passes else passes_without [ "rle" ] in
  check_compiled c (compile_with ~passes c ~swp)

let check_noregalloc (c : Fuzz_gen.case) =
  check_compiled c (compile_with ~passes:(passes_without [ "regalloc" ]) c ~swp:c.Fuzz_gen.swp)

let sim_iters = [| 40; 75; 200 |]

let check_sim (c : Fuzz_gen.case) =
  (* Semantics are trip-exact already; here only cycle accounting is on
     trial, so bound the nest re-entry count to keep the reference
     simulator affordable. *)
  let loop =
    { c.Fuzz_gen.loop with Loop.outer_trip = min c.Fuzz_gen.loop.Loop.outer_trip 256 }
  in
  let exe =
    Pipeline.compile
      ~cache:(Compile_cache.create ())
      ~telemetry:(Telemetry.create ()) c.Fuzz_gen.machine ~swp:c.Fuzz_gen.swp loop
      c.Fuzz_gen.factor
  in
  let iters = sim_iters.(c.Fuzz_gen.id mod Array.length sim_iters) in
  let fast =
    let st = Simulator.create_state c.Fuzz_gen.machine in
    let c1, s1 = Simulator.run_profiled ~max_sim_iters:iters st exe in
    let c2, s2 = Simulator.run_profiled ~max_sim_iters:iters st exe in
    ( (c1, (s1.Simulator.issue_cycles, s1.Simulator.data_stall_cycles,
            s1.Simulator.fetch_stall_cycles, s1.Simulator.branch_cycles,
            s1.Simulator.entry_overhead_cycles, s1.Simulator.pipeline_fill_cycles)),
      (c2, (s2.Simulator.issue_cycles, s2.Simulator.data_stall_cycles,
            s2.Simulator.fetch_stall_cycles, s2.Simulator.branch_cycles,
            s2.Simulator.entry_overhead_cycles, s2.Simulator.pipeline_fill_cycles)) )
  in
  let reference =
    let st = Sim_reference.create_state c.Fuzz_gen.machine in
    let c1, s1 = Sim_reference.run_profiled ~max_sim_iters:iters st exe in
    let c2, s2 = Sim_reference.run_profiled ~max_sim_iters:iters st exe in
    ( (c1, (s1.Sim_reference.issue_cycles, s1.Sim_reference.data_stall_cycles,
            s1.Sim_reference.fetch_stall_cycles, s1.Sim_reference.branch_cycles,
            s1.Sim_reference.entry_overhead_cycles, s1.Sim_reference.pipeline_fill_cycles)),
      (c2, (s2.Sim_reference.issue_cycles, s2.Sim_reference.data_stall_cycles,
            s2.Sim_reference.fetch_stall_cycles, s2.Sim_reference.branch_cycles,
            s2.Sim_reference.entry_overhead_cycles, s2.Sim_reference.pipeline_fill_cycles)) )
  in
  if fast = reference then None
  else
    let (f1, _), _ = fast and (r1, _), _ = reference in
    Some
      (Printf.sprintf "fast simulator %d cycles, reference %d (window %d)" f1 r1 iters)

let canonical_content (c : Fuzz_gen.case) =
  Printf.sprintf "%s|swp=%b|factor=%d|%s" c.Fuzz_gen.machine.Machine.mach_name
    c.Fuzz_gen.swp c.Fuzz_gen.factor
    (Loop_text.to_string { c.Fuzz_gen.loop with Loop.name = "_" })

let cache_key (c : Fuzz_gen.case) =
  Compile_cache.key ~machine:c.Fuzz_gen.machine ~swp:c.Fuzz_gen.swp
    ~factor:c.Fuzz_gen.factor c.Fuzz_gen.loop

let check_cache (c : Fuzz_gen.case) =
  let compile cache =
    Pipeline.compile ~cache ~telemetry:(Telemetry.create ()) c.Fuzz_gen.machine
      ~swp:c.Fuzz_gen.swp c.Fuzz_gen.loop c.Fuzz_gen.factor
  in
  let cold = compile (Compile_cache.create ~exe_capacity:0 ~cycles_capacity:0 ()) in
  let shared = Compile_cache.create () in
  ignore (compile shared);
  let hit_before = Compile_cache.hits shared in
  let warm = compile shared in
  if Compile_cache.hits shared <= hit_before then Some "warm compile did not hit the cache"
  else if cold <> warm then Some "cache hit differs from cold compile"
  else None

let check_text_semantics (loop : Loop.t) (l2 : Loop.t) =
  if loop.Loop.body = l2.Loop.body then begin
    (* Register ids survived the round trip (no gaps from unused regs), so
       the interpreter's id-keyed initial values line up and full semantic
       equality must hold too. *)
    let st1 = baseline loop and st2 = baseline l2 in
    if Interp.equivalent st1 st2 loop.Loop.live_out then None
    else Some "parse(print) structurally equal but semantically different"
  end
  else None

let check_text (c : Fuzz_gen.case) =
  let loop = c.Fuzz_gen.loop in
  let text = Loop_text.to_string loop in
  match Loop_text.parse text with
  | Error e -> Some ("reprint does not parse: " ^ e)
  | Ok l2 ->
    (* Parsing renumbers registers in textual occurrence order, so the
       first print may not be literally reproduced; the renumbered form,
       however, must be a true fixed point of parse ∘ print. *)
    let normal = Loop_text.to_string l2 in
    if not (structurally_equal loop l2) then Some "parse(print) not structurally equal"
    else begin
      match Loop_text.parse normal with
      | Error e -> Some ("normal form does not re-parse: " ^ e)
      | Ok l3 ->
        if Loop_text.to_string l3 <> normal then
          Some "normal form is not a print fixed point"
        else check_text_semantics loop l2
    end

(* --- artifact round-trip oracle -----------------------------------------

   Fixture predictors trained once per machine on the built-in kernels with
   synthetic labels (i mod 8 — the oracle judges serialisation and the
   serving path, not prediction quality), serialised to text, then compared
   along two routes: the in-compiler path (Predictor.of_artifact on the
   original artifact) and the serving path (Predict_service on the artifact
   re-parsed from text).  Any disagreement means the text format or the
   batched matrix path changed a bit somewhere. *)

let artifact_fixtures : (string, string * string) Hashtbl.t = Hashtbl.create 4
let artifact_mutex = Mutex.create ()

let fixture_config machine = { Config.fast with Config.machine }

let fixture_texts machine =
  Mutex.protect artifact_mutex (fun () ->
      match Hashtbl.find_opt artifact_fixtures machine.Machine.mach_name with
      | Some t -> t
      | None ->
        let config = fixture_config machine in
        let examples =
          List.mapi
            (fun i (name, maker) ->
              let loop = maker ~name ~trip:256 in
              {
                Dataset.features = Features.extract machine loop;
                label = i mod Unroll.max_factor;
                tag = name;
                group = "fuzz-fixture";
                costs = Array.make Unroll.max_factor 0.;
              })
            Kernels.all
        in
        let ds =
          Dataset.create ~feature_names:Features.names ~n_classes:Unroll.max_factor examples
        in
        let features = Array.init 12 (fun i -> i * 3) in
        let dataset_digest = Dataset.digest ds in
        let pack train = Model_artifact.to_string (Predictor.to_artifact config ~dataset_digest train) in
        let t =
          ( pack (Predictor.train_nn config ~features ds),
            pack (Predictor.train_svm config ~features ds) )
        in
        Hashtbl.replace artifact_fixtures machine.Machine.mach_name t;
        t)

let check_artifact (c : Fuzz_gen.case) =
  let machine = c.Fuzz_gen.machine in
  let config = fixture_config machine in
  let loop = c.Fuzz_gen.loop in
  let nn_text, svm_text = fixture_texts machine in
  let check_one kind text =
    match Model_artifact.of_string text with
    | Error e -> Some (Printf.sprintf "%s artifact does not re-parse: %s" kind e)
    | Ok a ->
      if Model_artifact.to_string a <> text then
        Some (kind ^ " artifact is not a print fixed point")
      else begin
        match Predictor.of_artifact a with
        | Error e -> Some (Printf.sprintf "%s of_artifact: %s" kind e)
        | Ok p -> begin
          match Predict_service.create config a with
          | Error e -> Some (Printf.sprintf "%s predict service: %s" kind e)
          | Ok service ->
            let direct = Predictor.predict p config ~swp:c.Fuzz_gen.swp loop in
            let batch = Predict_service.predict_batch service [ loop; loop ] in
            let single = Predict_service.predict service loop in
            if batch.(0) <> direct || batch.(1) <> direct || single <> direct then
              Some
                (Printf.sprintf "%s service predicts %d/%d/%d, in-compiler path %d" kind
                   batch.(0) batch.(1) single direct)
            else if Loop.unrollable loop && Predict_service.cache_hits service < 2 then
              Some (kind ^ " vector cache never hit on a repeated loop")
            else None
        end
      end
  in
  match check_one "nn" nn_text with Some v -> Some v | None -> check_one "svm" svm_text

(* --- bounded translation validation oracle ------------------------------

   The symbolic prover at the case's own swp×rle coordinate.  Only a
   Refuted verdict — a concrete (trip, location) counterexample — is a
   violation; Unknown means the normalizer could not close the proof,
   which is incompleteness, not evidence of a bug (the interp oracles
   above still cover the case concretely). *)

let check_verify (c : Fuzz_gen.case) =
  let report =
    Verify_validate.verify_case
      ~coords:[ (c.Fuzz_gen.swp, c.Fuzz_gen.rle) ]
      ~machine:c.Fuzz_gen.machine c.Fuzz_gen.loop ~factor:c.Fuzz_gen.factor
  in
  List.find_map
    (fun (ch : Verify_validate.check) ->
      match ch.Verify_validate.verdict with
      | Verify_validate.Refuted _ ->
        Some
          (Printf.sprintf "%s %s" ch.Verify_validate.check_name
             (Verify_validate.verdict_to_string ch.Verify_validate.verdict))
      | Verify_validate.Proved | Verify_validate.Unknown _ -> None)
    report.Verify_validate.checks

let check (c : Fuzz_gen.case) ~oracle =
  let f =
    match oracle with
    | "unroll-interp" -> check_unroll
    | "rle-interp" -> check_rle
    | "pipeline-interp[list,rle]" -> fun c -> check_pipeline c ~swp:false ~rle:true
    | "pipeline-interp[list,norle]" -> fun c -> check_pipeline c ~swp:false ~rle:false
    | "pipeline-interp[swp,rle]" -> fun c -> check_pipeline c ~swp:true ~rle:true
    | "pipeline-interp[swp,norle]" -> fun c -> check_pipeline c ~swp:true ~rle:false
    | "pipeline-interp[noregalloc]" -> check_noregalloc
    | "sim-fast-vs-ref" -> check_sim
    | "cache-roundtrip" -> check_cache
    | "text-roundtrip" -> check_text
    | "artifact-predict" -> check_artifact
    | "verify-symbolic" -> check_verify
    | other -> invalid_arg ("Fuzz_oracle.check: unknown oracle " ^ other)
  in
  try f c
  with e -> Some ("exception: " ^ Printexc.to_string e)

let run_case (c : Fuzz_gen.case) =
  let checked = oracles_for ~id:c.Fuzz_gen.id in
  let violations =
    List.filter_map
      (fun oracle -> Option.map (fun d -> (oracle, d)) (check c ~oracle))
      checked
  in
  let digest =
    if List.mem "cache-roundtrip" checked then Some (cache_key c, canonical_content c)
    else None
  in
  { checked; violations; digest }
