(** Greedy minimisation of failing loops.

    [shrink still_fails loop] repeatedly applies the first size reduction
    that keeps [still_fails] true — dropping body ops (the loop overhead
    trio is preserved), lowering the trip count toward the 0/1/factor
    boundary, clearing predication, forgetting live-outs, dropping unused
    arrays and shrinking array footprints — until no candidate reproduces
    the failure or the evaluation budget is spent.  Every candidate is
    revalidated ({!Loop.validate}); invalid reductions (e.g. removing a
    [Cmp] something is guarded by) are skipped, so the result is always a
    well-formed loop that still fails the oracle it came from. *)

val shrink : ?max_evals:int -> (Loop.t -> bool) -> Loop.t -> Loop.t
(** [max_evals] bounds calls to the predicate (default 500).  The input is
    returned unchanged when it does not satisfy [still_fails]. *)
