type crash = {
  case : Fuzz_gen.case;
  oracle : string;
  detail : string;
  shrunk : Loop.t;
}

type report = {
  budget : int;
  seed : int;
  cases_run : int;
  oracle_runs : (string * int) list;
  op_coverage : (string * int) list;
  feature_bins : (string * int array) list;
  crashes : crash list;
  buckets : (string * int) list;
  digest_collisions : (string * string * string) list;
}

let bin_of v =
  if v < 0.0 then 0
  else if v = 0.0 then 1
  else if v <= 1.0 then 2
  else if v <= 4.0 then 3
  else 4

let bin_labels = [| "<0"; "=0"; "(0,1]"; "(1,4]"; ">4" |]

let count_into tbl key n =
  Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let run ?cfg ?(jobs = 1) ?(telemetry = Telemetry.global) ~budget ~seed () =
  let results =
    Parallel.tabulate ~jobs budget (fun id ->
        let case = Fuzz_gen.case ?cfg ~seed ~id () in
        let outcome = Fuzz_oracle.run_case case in
        let hist = Fuzz_gen.op_histogram case.Fuzz_gen.loop in
        let feats = Features.extract case.Fuzz_gen.machine case.Fuzz_gen.loop in
        (case, outcome, hist, feats))
  in
  let oracle_tbl = Hashtbl.create 16 in
  let op_tbl = Hashtbl.create 16 in
  let feature_bins =
    Array.map (fun name -> (name, Array.make (Array.length bin_labels) 0)) Features.names
  in
  let digests = Hashtbl.create 64 in
  let collisions = ref [] in
  let crashes = ref [] in
  Array.iter
    (fun ((case : Fuzz_gen.case), (o : Fuzz_oracle.outcome), hist, feats) ->
      List.iter (fun name -> count_into oracle_tbl name 1) o.Fuzz_oracle.checked;
      List.iter (fun (kind, n) -> count_into op_tbl kind n) hist;
      Array.iteri (fun i v -> (snd feature_bins.(i)).(bin_of v) <- (snd feature_bins.(i)).(bin_of v) + 1) feats;
      (match o.Fuzz_oracle.digest with
      | Some (key, content) -> (
        match Hashtbl.find_opt digests key with
        | Some other when other <> content -> collisions := (key, other, content) :: !collisions
        | Some _ -> ()
        | None -> Hashtbl.add digests key content)
      | None -> ());
      List.iter
        (fun (oracle, detail) ->
          (* Shrinking re-runs the oracle many times; sequential and after
             the parallel phase, so reports are jobs-invariant. *)
          let still_fails l =
            Fuzz_oracle.check { case with Fuzz_gen.loop = l } ~oracle <> None
          in
          let shrunk = Fuzz_shrink.shrink still_fails case.Fuzz_gen.loop in
          crashes := { case; oracle; detail; shrunk } :: !crashes)
        o.Fuzz_oracle.violations)
    results;
  let crashes = List.rev !crashes in
  let buckets =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun ((case : Fuzz_gen.case), (o : Fuzz_oracle.outcome), _, _) ->
        if o.Fuzz_oracle.violations <> [] then begin
          let signature =
            List.map fst o.Fuzz_oracle.violations |> List.sort_uniq compare
            |> String.concat ","
          in
          ignore case;
          count_into tbl signature 1
        end)
      (Array.to_list results);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  let oracle_runs = sorted oracle_tbl and op_coverage = sorted op_tbl in
  List.iter (fun (o, n) -> Telemetry.incr telemetry ~pass:"fuzz" ("oracle." ^ o) n) oracle_runs;
  List.iter (fun (k, n) -> Telemetry.incr telemetry ~pass:"fuzz" ("op." ^ k) n) op_coverage;
  Telemetry.record telemetry ~pass:"fuzz" ~seconds:0.0
    ~metrics:[ ("cases", budget); ("crashes", List.length crashes) ]
    ();
  {
    budget;
    seed;
    cases_run = budget;
    oracle_runs;
    op_coverage;
    feature_bins = Array.to_list feature_bins;
    crashes;
    buckets;
    digest_collisions = List.rev !collisions;
  }

let coverage_block r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "coverage:\n  ops:\n";
  List.iter
    (fun kind ->
      let n = Option.value (List.assoc_opt kind r.op_coverage) ~default:0 in
      Buffer.add_string buf
        (Printf.sprintf "    %-12s %8d%s\n" kind n (if n = 0 then "  MISSING" else "")))
    Fuzz_gen.op_kinds;
  Buffer.add_string buf "  oracles:\n";
  List.iter
    (fun name ->
      let n = Option.value (List.assoc_opt name r.oracle_runs) ~default:0 in
      Buffer.add_string buf
        (Printf.sprintf "    %-28s %8d%s\n" name n (if n = 0 then "  MISSING" else "")))
    Fuzz_oracle.oracle_names;
  Buffer.add_string buf
    (Printf.sprintf "  features (bins %s):\n" (String.concat " " (Array.to_list bin_labels)));
  List.iter
    (fun (name, bins) ->
      Buffer.add_string buf
        (Printf.sprintf "    %-28s %s\n" name
           (String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "%6d") bins)))))
    r.feature_bins;
  Buffer.contents buf

let summary r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fuzz: %d cases (seed %d): %d crash%s\n" r.cases_run r.seed
       (List.length r.crashes)
       (if List.length r.crashes = 1 then "" else "es"));
  List.iter
    (fun (signature, n) ->
      Buffer.add_string buf (Printf.sprintf "  bucket %s: %d case%s\n" signature n
                               (if n = 1 then "" else "s")))
    r.buckets;
  List.iter
    (fun ({ case; oracle; detail; shrunk } : crash) ->
      Buffer.add_string buf
        (Printf.sprintf "  case %d [%s]: %s (shrunk to %d ops, trip %d)\n"
           case.Fuzz_gen.id oracle detail
           (Array.length shrunk.Loop.body) shrunk.Loop.trip_actual))
    r.crashes;
  (match r.digest_collisions with
  | [] -> ()
  | l ->
    Buffer.add_string buf
      (Printf.sprintf "  %d compile-cache digest collision(s)!\n" (List.length l)));
  Buffer.contents buf

(* --- corpus ------------------------------------------------------------- *)

type repro = {
  rcase : Fuzz_gen.case;
  roracle : string option;
}

let repro_to_string (c : Fuzz_gen.case) ~oracle =
  Printf.sprintf
    "# fuzz-id: %d\n# fuzz-factor: %d\n# fuzz-swp: %b\n# fuzz-rle: %b\n\
     # fuzz-machine: %s\n# fuzz-oracle: %s\n%s"
    c.Fuzz_gen.id c.Fuzz_gen.factor c.Fuzz_gen.swp c.Fuzz_gen.rle
    c.Fuzz_gen.machine.Machine.mach_name oracle
    (Loop_text.to_string c.Fuzz_gen.loop)

let header_value lines key =
  let prefix = Printf.sprintf "# fuzz-%s:" key in
  List.find_map
    (fun line ->
      let line = String.trim line in
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        Some
          (String.trim
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix)))
      else None)
    lines

let parse_repro text =
  let lines = String.split_on_char '\n' text in
  match Loop_text.parse text with
  | Error e -> Error e
  | Ok loop ->
    let get key = header_value lines key in
    let int_of key default =
      match get key with Some v -> int_of_string_opt v | None -> Some default
    in
    let bool_of key default =
      match get key with Some v -> bool_of_string_opt v | None -> Some default
    in
    (match (int_of "id" 0, int_of "factor" 1, bool_of "swp" false, bool_of "rle" true) with
    | Some id, Some factor, Some swp, Some rle ->
      let machine =
        match get "machine" with
        | None -> Some Machine.itanium2
        | Some name -> Machine.by_name name
      in
      (match machine with
      | None -> Error "unknown machine in # fuzz-machine header"
      | Some machine ->
        if factor < 1 || factor > Unroll.max_factor then
          Error "factor out of range in # fuzz-factor header"
        else
          Ok
            {
              rcase = { Fuzz_gen.id; loop; factor; swp; rle; machine };
              roracle = get "oracle";
            })
    | _ -> Error "malformed # fuzz-* header")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_corpus dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then Ok []
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".loop")
      |> List.sort compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
        match parse_repro (read_file (Filename.concat dir f)) with
        | Ok r -> go ((f, r) :: acc) rest
        | Error e -> Error (Printf.sprintf "%s: %s" f e))
    in
    go [] files
  end

let check_repro { rcase; roracle } =
  match roracle with
  | Some oracle -> (
    match Fuzz_oracle.check rcase ~oracle with
    | None -> []
    | Some detail -> [ (oracle, detail) ])
  | None -> (Fuzz_oracle.run_case rcase).Fuzz_oracle.violations

let slug s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '-')
    (String.lowercase_ascii s)

let write_crash ~dir ({ case; oracle; shrunk; _ } : crash) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "%s-%04d.loop" (slug oracle) case.Fuzz_gen.id) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (repro_to_string { case with Fuzz_gen.loop = shrunk } ~oracle));
  path
