(** Differential oracles for the fuzzer.

    Every oracle reduces to the same judgment: run the transformed artifact
    and the {!Interp} reference on fresh states and demand observational
    equivalence (final memory image modulo spill slots, plus live-out
    register values) — or, for the simulator oracle, demand bit-identical
    cycle counts and stats between {!Simulator} and {!Sim_reference}.  An
    exception escaping any stage is itself a violation (the fuzzer shrinks
    crashes like any other failure).

    The oracle matrix:

    - [unroll-interp] — {!Unroll.run} alone preserves semantics;
    - [rle-interp] — RLE over the unrolled kernel preserves semantics;
    - [pipeline-interp[list|swp,rle|norle]] — the full pass pipeline at the
      case's coordinates, interpreting the scheduled kernel and remainder;
    - [pipeline-interp[noregalloc]] — pipeline with the allocator disabled
      (schedules still on virtual registers);
    - [sim-fast-vs-ref] — fast-forwarded simulator vs the frozen reference,
      warm-state pairs included (PR 3's contract);
    - [cache-roundtrip] — a compile served from a warm {!Compile_cache} is
      structurally identical to a cold compile;
    - [text-roundtrip] — [Loop_text.parse ∘ to_string] is the identity up
      to register numbering (the parser renumbers registers in textual
      occurrence order), and the renumbered normal form is a true print
      fixed point;
    - [artifact-predict] — a fixture model serialised to the
      {!Model_artifact} text format and served back through
      {!Predict_service}'s batched matrix path predicts the case's loop
      identically to {!Predictor.of_artifact}'s in-compiler path, the
      artifact text is a print fixed point, and the feature-vector cache
      hits on a repeated loop;
    - [verify-symbolic] — the bounded translation validator
      ({!Verify_validate}) proves unroll, unroll+RLE and the full pipeline
      at the case's coordinate observationally equivalent for every trip
      count up to the bound; a [Refuted] verdict (a concrete trip/location
      counterexample) is a violation, while [Unknown] (normalizer
      incompleteness) is not — the concrete interp oracles still cover the
      case. *)

type outcome = {
  checked : string list;                (** oracle names that ran *)
  violations : (string * string) list;  (** (oracle name, detail) *)
  digest : (string * string) option;
      (** (cache key, canonical content) when the cache oracle ran; the
          driver checks for cross-case digest collisions *)
}

val oracle_names : string list
(** Every oracle name a campaign can emit, for coverage accounting. *)

val pipeline_oracle_name : swp:bool -> rle:bool -> string

val oracles_for : id:int -> string list
(** The deterministic per-case schedule: the pure-transform, pipeline and
    text oracles always run; the allocator-off oracle cycles with period 3
    and the cache, simulator, artifact and symbolic-verify oracles share
    the period-4 wheel, so any contiguous id range of length 12 runs every
    oracle at least once. *)

val check : Fuzz_gen.case -> oracle:string -> string option
(** [None] when the oracle holds on this case, [Some detail] otherwise.
    Never raises: exceptions from the pipeline under test are reported as
    violations.  This is the predicate the shrinker re-evaluates. *)

val run_case : Fuzz_gen.case -> outcome
(** Run the case's full oracle schedule. *)

(** {1 Shared helpers (also used by the property-test suites)} *)

val run_exe : Interp.state -> Pipeline_state.executable -> unit
(** Interpret a compiled executable: kernel then remainder, remainder
    skipped when the kernel fired an early exit — {!Interp.run_unrolled}'s
    convention lifted to schedules. *)

val spill_ranges : Pipeline_state.executable -> (int * int) list
(** Address ranges of the allocator's spill arrays, excluded from memory
    comparison (spill slots are implementation detail, not behaviour). *)

val equivalent_modulo_spills :
  Pipeline_state.executable -> Interp.state -> Interp.state -> Op.reg list -> bool

val structurally_equal : Loop.t -> Loop.t -> bool
(** Equality up to register numbering: opcode/class/arity/predication
    signature of the body plus all scalar loop attributes. *)
