(** Structured random loop generation for differential fuzzing.

    Where {!Synth} draws loops from benchmark-suite profiles so the
    {e learning} experiments see a realistic joint distribution, this
    generator is adversarial: it exists to break the compile pipeline, so
    it concentrates probability mass where transforms have historically
    been wrong — trip counts straddling the unroll factor (0, 1, factor−1,
    factor, factor+1, non-multiples), loop-carried recurrences at distance
    1..k built from rotation chains, stores aliasing the arrays a loop
    also reads, indirect references, predication and selects, opaque
    calls, early exits, and compile-time-unknown trip counts.

    Generation is deterministic: a {!case} is a pure function of
    [(seed, id)] via {!Rng.derive}, so a fuzzing campaign is reproducible
    and independent of how many worker domains ran it.  Every tenth [id]
    cycles through a fixed list of directed shapes, which guarantees that
    any budget ≥ 10 exercises every IR op kind and every oracle
    coordinate. *)

type cfg = {
  synth_prob : float;       (** mixed shapes draw a {!Synth} profile loop *)
  comps_max : int;          (** computations per structured body *)
  chain_max : int;          (** arithmetic chain length per computation *)
  rec_distance_max : int;   (** loop-carried recurrence distance 1..k *)
  arrays_max : int;         (** arrays beyond the first *)
  indirect_prob : float;
  guard_prob : float;       (** computation is predicated *)
  sel_prob : float;
  mov_prob : float;
  fmadd_prob : float;
  div_prob : float;
  call_prob : float;
  exit_prob : float;        (** loop body contains an early-exit branch *)
  reduction_prob : float;
  alias_prob : float;       (** a store targets an array the loop loads *)
  dynamic_trip_prob : float;(** trip count unknown at compile time *)
  small_array_prob : float; (** arrays short enough to wrap in-window *)
  strides : int array;
}

val default : cfg

type case = {
  id : int;
  loop : Loop.t;
  factor : int;        (** unroll factor 1..8 *)
  swp : bool;          (** modulo scheduling (with list fallback) *)
  rle : bool;          (** redundant-load elimination pass enabled *)
  machine : Machine.t;
}

val machines : Machine.t array
(** The machine models a campaign cycles through ({!Machine.all}). *)

val adversarial_trip : Rng.t -> factor:int -> int
(** A trip count drawn around the unroll factor: 0, 1, factor−1, factor,
    factor+1, small multiples and non-multiples, with an occasional
    {!Synth.snap_trip}-style larger value. *)

val loop : Rng.t -> cfg -> id:int -> factor:int -> name:string -> Loop.t
(** One structured loop.  [id] selects the directed shape ([id mod 10]);
    the trip count is drawn adversarially around [factor].  Always
    validates, and always has [exit_prob = 0] so compiled schedules carry
    exact trip counts (semantic oracles need that; the early-exit {e ops}
    are still generated). *)

val case : ?cfg:cfg -> seed:int -> id:int -> unit -> case
(** The [id]-th case of a campaign keyed by [seed]: a loop plus its
    pipeline coordinates.  [factor] is random per case; [swp], [rle] and
    [machine] cycle deterministically with [id] so the full oracle matrix
    is covered by any contiguous id range of length 12. *)

(** {1 Shared helpers for the property-test suites} *)

val synth_profile : int -> Synth.profile
(** The four-way profile rotation ([fp_numeric], [int_pointer], [media],
    [scientific_c]) the test suites key on [seed mod 4]. *)

val synth_loop : ?prefix:string -> int -> Loop.t
(** [synth_loop seed] is the {!Synth} loop the ad-hoc QCheck generators in
    [test_pipeline] and [test_sim_equiv] used to build by hand: profile by
    [seed mod 4], RNG [Rng.create seed], name [prefix ^ seed]. *)

val with_exact_trip : ?dynamic:bool -> Loop.t -> int -> Loop.t
(** Pin the runtime trip count, keep (or, with [~dynamic:true], erase) the
    compiler's knowledge of it, and zero [exit_prob] so the executable's
    expected-trip arithmetic is exact — the convention every semantic
    equivalence property uses. *)

val with_array_lengths : Loop.t -> int -> Loop.t
(** Shrink every array to [len] elements (address bases unchanged), so
    references wrap within the simulated window — the configuration that
    engages the simulator's wrap-period fast-forward. *)

val op_kind : Op.t -> string
(** Coverage key of an op: ["ialu"], ["fmadd"], ["load"], ["br-exit"], … *)

val op_kinds : string list
(** Every op kind the generator can emit; campaign coverage is checked
    against this list. *)

val op_histogram : Loop.t -> (string * int) list
(** Count of each {!op_kind} in the body (zero-count kinds omitted). *)
