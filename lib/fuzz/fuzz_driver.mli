(** Fuzzing campaigns: budgeted case generation, parallel oracle runs,
    sequential shrinking, crash bucketing, coverage accounting, and the
    serialised-reproducer corpus.

    A campaign is a pure function of [(cfg, budget, seed)]: case [id] is
    generated from [Rng.derive seed "fuzz-case" id] and the worker pool
    returns results in input order, so the report — including shrunk
    reproducers — is bit-identical at any [jobs] setting. *)

type crash = {
  case : Fuzz_gen.case;  (** the original failing case *)
  oracle : string;
  detail : string;
  shrunk : Loop.t;       (** minimised loop still violating [oracle] *)
}

type report = {
  budget : int;
  seed : int;
  cases_run : int;
  oracle_runs : (string * int) list;  (** oracle name → times executed *)
  op_coverage : (string * int) list;  (** op kind → occurrences generated *)
  feature_bins : (string * int array) list;
      (** per {!Features} name, counts in bins [<0], [=0], [(0,1]], [(1,4]],
          [>4] over all generated loops *)
  crashes : crash list;
  buckets : (string * int) list;
      (** failing-oracle signature (sorted, comma-joined) → case count *)
  digest_collisions : (string * string * string) list;
      (** (cache key, content A, content B): same digest, different loop *)
}

val run :
  ?cfg:Fuzz_gen.cfg ->
  ?jobs:int ->
  ?telemetry:Telemetry.t ->
  budget:int ->
  seed:int ->
  unit ->
  report
(** Run cases [0 .. budget-1].  Oracle and op-kind coverage counters are
    also published into [telemetry] (default {!Telemetry.global}) under the
    ["fuzz"] pass as [oracle.*] and [op.*]. *)

val coverage_block : report -> string
(** The telemetry block: op kinds (with [MISSING] markers), oracle run
    counts, and the feature histogram. *)

val summary : report -> string
(** Campaign verdict: cases, crash buckets, digest collisions. *)

(** {1 Corpus} *)

type repro = {
  rcase : Fuzz_gen.case;      (** coordinates parsed from [# fuzz-*] headers *)
  roracle : string option;    (** the oracle this reproducer once violated *)
}

val repro_to_string : Fuzz_gen.case -> oracle:string -> string
(** Serialise a case: [# fuzz-*] header comments (factor, swp, rle,
    machine, oracle) followed by the {!Loop_text} form. *)

val parse_repro : string -> (repro, string) result

val load_corpus : string -> ((string * repro) list, string) result
(** All [*.loop] files in a directory, sorted by name.  A missing directory
    is an empty corpus; an unparsable file is an [Error]. *)

val check_repro : repro -> (string * string) list
(** Replay: the named oracle (or, without one, the case's full schedule)
    must {e hold} — a reproducer in the corpus documents a fixed bug.
    Returns the violations, empty when the corpus entry passes. *)

val write_crash : dir:string -> crash -> string
(** Serialise a shrunk crash into [dir] as
    [<oracle-slug>-<case-id>.loop]; returns the path.  Creates [dir] if
    needed. *)
