(** Namespace for the differential-fuzzing subsystem: [Fuzz.Gen] generates
    adversarial loops, [Fuzz.Oracle] judges them against the reference
    interpreter and frozen simulator, [Fuzz.Shrink] minimises failures, and
    [Fuzz.Driver] runs budgeted campaigns over the worker pool and manages
    the reproducer corpus. *)

module Gen = Fuzz_gen
module Oracle = Fuzz_oracle
module Shrink = Fuzz_shrink
module Driver = Fuzz_driver
