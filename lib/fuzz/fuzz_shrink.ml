let renumber body = Array.mapi (fun i (op : Op.t) -> { op with Op.uid = i }) body

let with_trip (l : Loop.t) t =
  {
    l with
    Loop.trip_actual = t;
    trip_static = Option.map (fun _ -> t) l.Loop.trip_static;
  }

(* Candidate reductions, strongest first.  The overhead trio (induction
   update, compare, backedge) is the last three ops and is never touched:
   every transform and the validator assume its shape. *)
let candidates (l : Loop.t) =
  let n = Array.length l.Loop.body in
  let core = max 0 (n - 3) in
  let drops =
    List.init core (fun i ->
        let body =
          Array.to_list l.Loop.body |> List.filteri (fun j _ -> j <> i) |> Array.of_list
        in
        { l with Loop.body = renumber body })
  in
  let trips =
    let t = l.Loop.trip_actual in
    [ 0; 1; 2; t / 2; t - 1 ]
    |> List.filter (fun x -> x >= 0 && x < t)
    |> List.sort_uniq compare
    |> List.map (with_trip l)
  in
  let unpred =
    List.concat
      (List.init core (fun i ->
           let op = l.Loop.body.(i) in
           if op.Op.pred = None then []
           else begin
             let body = Array.copy l.Loop.body in
             body.(i) <- { op with Op.pred = None };
             [ { l with Loop.body = body } ]
           end))
  in
  let liveouts =
    List.map
      (fun r -> { l with Loop.live_out = List.filter (fun r' -> r' <> r) l.Loop.live_out })
      l.Loop.live_out
  in
  let drop_arrays =
    if Array.length l.Loop.arrays <= 1 then []
    else begin
      let used = Hashtbl.create 8 in
      Array.iter
        (fun op ->
          match Op.mref op with
          | Some m -> Hashtbl.replace used m.Op.array ()
          | None -> ())
        l.Loop.body;
      List.concat
        (List.init (Array.length l.Loop.arrays) (fun j ->
             if Hashtbl.mem used j then []
             else begin
               let arrays =
                 Array.to_list l.Loop.arrays
                 |> List.filteri (fun k _ -> k <> j)
                 |> Array.of_list
               in
               let remap (op : Op.t) =
                 match op.Op.opcode with
                 | Op.Load m when m.Op.array > j ->
                   { op with Op.opcode = Op.Load { m with Op.array = m.Op.array - 1 } }
                 | Op.Store m when m.Op.array > j ->
                   { op with Op.opcode = Op.Store { m with Op.array = m.Op.array - 1 } }
                 | _ -> op
               in
               [ { l with Loop.arrays; body = Array.map remap l.Loop.body } ]
             end))
    end
  in
  let shrink_arrays =
    if Array.exists (fun (a : Loop.array_info) -> a.Loop.length > 8) l.Loop.arrays then
      [
        {
          l with
          Loop.arrays =
            Array.map
              (fun (a : Loop.array_info) ->
                { a with Loop.length = max 4 (a.Loop.length / 2) })
              l.Loop.arrays;
        };
      ]
    else []
  in
  let scalars =
    (if l.Loop.outer_trip > 1 then [ { l with Loop.outer_trip = 1 } ] else [])
    @ (if l.Loop.nest_level > 1 then [ { l with Loop.nest_level = 1 } ] else [])
    @ if l.Loop.aliased then [ { l with Loop.aliased = false } ] else []
  in
  drops @ trips @ unpred @ liveouts @ drop_arrays @ shrink_arrays @ scalars

let shrink ?(max_evals = 500) still_fails loop =
  let evals = ref 0 in
  let fails l =
    if !evals >= max_evals then false
    else begin
      incr evals;
      still_fails l
    end
  in
  if not (fails loop) then loop
  else begin
    let current = ref loop in
    let progress = ref true in
    while !progress && !evals < max_evals do
      progress := false;
      let rec try_candidates = function
        | [] -> ()
        | c :: rest ->
          if Loop.validate c = Ok () && fails c then begin
            current := c;
            progress := true
          end
          else try_candidates rest
      in
      try_candidates (candidates !current)
    done;
    !current
  end
