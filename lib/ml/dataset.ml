type example = {
  features : float array;
  label : int;
  tag : string;
  group : string;
  costs : float array;
}

type t = {
  examples : example array;
  feature_names : string array;
  n_classes : int;
}

let create ~feature_names ~n_classes examples =
  let d = Array.length feature_names in
  List.iter
    (fun e ->
      if Array.length e.features <> d then
        invalid_arg
          (Printf.sprintf "Dataset.create: %s has %d features, expected %d" e.tag
             (Array.length e.features) d);
      if e.label < 0 || e.label >= n_classes then
        invalid_arg (Printf.sprintf "Dataset.create: %s label out of range" e.tag);
      if Array.length e.costs <> n_classes then
        invalid_arg (Printf.sprintf "Dataset.create: %s costs wrong length" e.tag))
    examples;
  { examples = Array.of_list examples; feature_names; n_classes }

let size t = Array.length t.examples

let select_features t idx =
  Array.iter
    (fun i ->
      if i < 0 || i >= Array.length t.feature_names then
        invalid_arg "Dataset.select_features: index out of range")
    idx;
  {
    t with
    feature_names = Array.map (fun i -> t.feature_names.(i)) idx;
    examples =
      Array.map
        (fun e -> { e with features = Array.map (fun i -> e.features.(i)) idx })
        t.examples;
  }

let feature_column t i = Array.map (fun e -> e.features.(i)) t.examples

let labels t = Array.map (fun e -> e.label) t.examples

let without_group t g =
  {
    t with
    examples = Array.of_list (List.filter (fun e -> e.group <> g) (Array.to_list t.examples));
  }

let groups t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun e ->
      if not (Hashtbl.mem seen e.group) then begin
        Hashtbl.add seen e.group ();
        out := e.group :: !out
      end)
    t.examples;
  List.rev !out

let points t = Array.map (fun e -> (e.features, e.label)) t.examples

let points_matrix t =
  let n = Array.length t.examples in
  let d = Array.length t.feature_names in
  let m = Mat.create n d in
  let a = Mat.data m in
  Array.iteri (fun i e -> Array.blit e.features 0 a (i * d) d) t.examples;
  (m, Array.map (fun e -> e.label) t.examples)

let digest t =
  Digest.to_hex (Digest.string (Marshal.to_string (t.feature_names, t.n_classes, t.examples) []))

let to_csv t path =
  let header =
    [ "tag"; "group"; "label"; "n_classes" ]
    @ List.init t.n_classes (Printf.sprintf "cost%d")
    @ Array.to_list t.feature_names
  in
  let rows =
    Array.to_list
      (Array.map
         (fun e ->
           [ e.tag; e.group; string_of_int e.label; string_of_int t.n_classes ]
           @ List.map string_of_float (Array.to_list e.costs)
           @ List.map string_of_float (Array.to_list e.features))
         t.examples)
  in
  Csvio.write path (header :: rows)

let of_csv path =
  match Csvio.read path with
  | [] -> invalid_arg "Dataset.of_csv: empty file"
  | header :: rows ->
    let n_classes =
      match rows with
      | [] -> invalid_arg "Dataset.of_csv: no examples"
      | r :: _ -> int_of_string (List.nth r 3)
    in
    let feature_names =
      Array.of_list (List.filteri (fun i _ -> i >= 4 + n_classes) header)
    in
    let parse row =
      match row with
      | tag :: group :: label :: _nc :: rest ->
        let rest = Array.of_list (List.map float_of_string rest) in
        {
          tag;
          group;
          label = int_of_string label;
          costs = Array.sub rest 0 n_classes;
          features = Array.sub rest n_classes (Array.length rest - n_classes);
        }
      | _ -> invalid_arg "Dataset.of_csv: malformed row"
    in
    create ~feature_names ~n_classes (List.map parse rows)
