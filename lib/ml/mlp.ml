(* Multi-layer perceptron with a softmax cross-entropy head.

   Parameter layout: one flat [float array]; layer l (mapping dims.(l)
   inputs to dims.(l+1) outputs) occupies the weight block
   [dims.(l+1) * dims.(l)] row-major followed by [dims.(l+1)] biases.
   Momentum buffers, early-stopping snapshots and the finite-difference
   gradient checker all address parameters through this one indexing.

   Determinism: weight init and the per-epoch shuffle derive from the
   seed alone; per-example passes fan out over Parallel.tabulate (results
   land at their input index) and every reduction — gradient sums, loss
   means, the weight update — runs sequentially in index order.  Trained
   weights are therefore bit-identical at every jobs value. *)

type t = {
  dims : int array;
  params : float array;
}

type hyper = {
  hidden : int array;
  epochs : int;
  batch : int;
  lr : float;
  momentum : float;
  holdout : float;
  patience : int;
}

let default_hyper =
  {
    hidden = [| 24 |];
    epochs = 150;
    batch = 32;
    lr = 0.08;
    momentum = 0.9;
    holdout = 0.18;
    patience = 18;
  }

type stats = {
  epochs_run : int;
  final_loss : float;
  holdout_accuracy : float;
  holdout_size : int;
}

let n_layers t = Array.length t.dims - 1
let dims t = t.dims
let n_classes t = t.dims.(Array.length t.dims - 1)

(* Start of layer l's block in the flat parameter array. *)
let layer_offset dims l =
  let off = ref 0 in
  for i = 0 to l - 1 do
    off := !off + (dims.(i + 1) * (dims.(i) + 1))
  done;
  !off

let param_count_of dims = layer_offset dims (Array.length dims - 1)
let param_count t = param_count_of t.dims
let get_param t i = t.params.(i)
let set_param t i v = t.params.(i) <- v

let check_dims dims =
  if Array.length dims < 2 then invalid_arg "Mlp: need at least input and output layers";
  Array.iter (fun d -> if d < 1 then invalid_arg "Mlp: layer width must be positive") dims

let init ~seed ~dims =
  check_dims dims;
  let params = Array.make (param_count_of dims) 0.0 in
  for l = 0 to Array.length dims - 2 do
    let fan_in = dims.(l) and fan_out = dims.(l + 1) in
    let rng = Rng.derive seed "mlp-init" l in
    let limit = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
    let off = layer_offset dims l in
    for i = 0 to (fan_out * fan_in) - 1 do
      params.(off + i) <- Rng.float rng (2.0 *. limit) -. limit
    done
    (* biases stay zero *)
  done;
  { dims; params }

(* --- forward pass -------------------------------------------------------- *)

(* Activations per layer: acts.(0) is the input, acts.(l+1) the layer-l
   output (tanh for hidden layers, raw logits at the head). *)
let forward t x =
  let nl = n_layers t in
  let acts = Array.make (nl + 1) x in
  for l = 0 to nl - 1 do
    let fan_in = t.dims.(l) and fan_out = t.dims.(l + 1) in
    let off = layer_offset t.dims l in
    let bias_off = off + (fan_out * fan_in) in
    let inp = acts.(l) in
    let out = Array.make fan_out 0.0 in
    for i = 0 to fan_out - 1 do
      let row = off + (i * fan_in) in
      let s = ref t.params.(bias_off + i) in
      for j = 0 to fan_in - 1 do
        s := !s +. (t.params.(row + j) *. inp.(j))
      done;
      out.(i) <- (if l = nl - 1 then !s else tanh !s)
    done;
    acts.(l + 1) <- out
  done;
  acts

let decision_values t x =
  let acts = forward t x in
  Array.copy acts.(n_layers t)

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let predict t x = argmax (forward t x).(n_layers t)

(* Softmax probabilities from logits, max-shifted for stability. *)
let softmax logits =
  let m = Array.fold_left max neg_infinity logits in
  let e = Array.map (fun z -> exp (z -. m)) logits in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. s) e

let loss_of_logits logits y =
  let p = softmax logits in
  -.log (Float.max p.(y) 1e-300)

(* --- backward pass ------------------------------------------------------- *)

(* Cross-entropy loss of one example plus its analytic gradient, flat. *)
let backward t x y =
  let nl = n_layers t in
  let acts = forward t x in
  let logits = acts.(nl) in
  let loss = loss_of_logits logits y in
  let grad = Array.make (param_count t) 0.0 in
  (* delta at the head: softmax − one-hot *)
  let delta = ref (softmax logits) in
  !delta.(y) <- !delta.(y) -. 1.0;
  for l = nl - 1 downto 0 do
    let fan_in = t.dims.(l) and fan_out = t.dims.(l + 1) in
    let off = layer_offset t.dims l in
    let bias_off = off + (fan_out * fan_in) in
    let inp = acts.(l) and d = !delta in
    for i = 0 to fan_out - 1 do
      let row = off + (i * fan_in) in
      let di = d.(i) in
      grad.(bias_off + i) <- di;
      for j = 0 to fan_in - 1 do
        grad.(row + j) <- di *. inp.(j)
      done
    done;
    if l > 0 then begin
      (* back-propagate through the tanh: d_in.(j) = (1 − a²) Σᵢ dᵢ·Wᵢⱼ *)
      let prev = Array.make fan_in 0.0 in
      for j = 0 to fan_in - 1 do
        let s = ref 0.0 in
        for i = 0 to fan_out - 1 do
          s := !s +. (d.(i) *. t.params.(off + (i * fan_in) + j))
        done;
        let a = inp.(j) in
        prev.(j) <- !s *. (1.0 -. (a *. a))
      done;
      delta := prev
    end
  done;
  (loss, grad)

let example_loss t x y = loss_of_logits (forward t x).(n_layers t) y
let example_gradient t x y = snd (backward t x y)

(* --- content-keyed holdout split ----------------------------------------- *)

(* An example's holdout membership is a pure function of (seed, features,
   label): hash the content, map the first 48 bits to [0, 1) and compare
   against the holdout fraction.  Appending examples to the dataset (or
   permuting it) cannot move any existing example across the split. *)
let holdout_member ~seed ~holdout features label =
  if holdout <= 0.0 then false
  else begin
    let b = Buffer.create 64 in
    Buffer.add_string b (string_of_int seed);
    Buffer.add_char b '#';
    Buffer.add_string b (string_of_int label);
    Array.iter
      (fun v ->
        Buffer.add_char b '#';
        Buffer.add_string b (Printf.sprintf "%h" v))
      features;
    let d = Digest.string (Buffer.contents b) in
    let bits = ref 0 in
    for i = 0 to 5 do
      bits := (!bits lsl 8) lor Char.code d.[i]
    done;
    float_of_int !bits /. 281474976710656.0 < holdout
  end

(* --- serialisation ------------------------------------------------------- *)

let export t =
  let nl = n_layers t in
  let weights = Array.make nl [||] and biases = Array.make nl [||] in
  for l = 0 to nl - 1 do
    let fan_in = t.dims.(l) and fan_out = t.dims.(l + 1) in
    let off = layer_offset t.dims l in
    weights.(l) <- Array.sub t.params off (fan_out * fan_in);
    biases.(l) <- Array.sub t.params (off + (fan_out * fan_in)) fan_out
  done;
  (Array.copy t.dims, weights, biases)

let import ~dims ~weights ~biases =
  check_dims dims;
  let nl = Array.length dims - 1 in
  if Array.length weights <> nl || Array.length biases <> nl then
    invalid_arg "Mlp.import: layer count mismatch";
  let params = Array.make (param_count_of dims) 0.0 in
  for l = 0 to nl - 1 do
    let fan_in = dims.(l) and fan_out = dims.(l + 1) in
    if Array.length weights.(l) <> fan_out * fan_in then
      invalid_arg "Mlp.import: weight block size mismatch";
    if Array.length biases.(l) <> fan_out then
      invalid_arg "Mlp.import: bias size mismatch";
    let off = layer_offset dims l in
    Array.blit weights.(l) 0 params off (fan_out * fan_in);
    Array.blit biases.(l) 0 params (off + (fan_out * fan_in)) fan_out
  done;
  { dims = Array.copy dims; params }

(* --- training ------------------------------------------------------------ *)

(* Mean loss and accuracy over a fixed index set.  Per-example passes fan
   out; both sums read results back in index order. *)
let evaluate ?(jobs = 1) t xs ys idx =
  let n = Array.length idx in
  if n = 0 then (nan, nan)
  else begin
    let per =
      Parallel.tabulate ~jobs n (fun k ->
          let i = idx.(k) in
          let logits = (forward t xs.(i)).(n_layers t) in
          (loss_of_logits logits ys.(i), if argmax logits = ys.(i) then 1 else 0))
    in
    let loss = ref 0.0 and correct = ref 0 in
    Array.iter
      (fun (l, c) ->
        loss := !loss +. l;
        correct := !correct + c)
      per;
    (!loss /. float_of_int n, float_of_int !correct /. float_of_int n)
  end

let train ?(jobs = 1) ?telemetry ~seed ~hyper ~n_classes pairs =
  let t0 = Unix.gettimeofday () in
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Mlp.train: empty training set";
  if n_classes < 2 then invalid_arg "Mlp.train: need at least two classes";
  let d = Array.length (fst pairs.(0)) in
  Array.iter
    (fun (x, y) ->
      if Array.length x <> d then invalid_arg "Mlp.train: ragged feature vectors";
      if y < 0 || y >= n_classes then invalid_arg "Mlp.train: label out of range")
    pairs;
  let xs = Array.map fst pairs and ys = Array.map snd pairs in
  let dims = Array.concat [ [| d |]; hyper.hidden; [| n_classes |] ] in
  let net = init ~seed ~dims in
  (* Content-keyed split; if everything lands in the holdout (tiny sets),
     train on all of it and skip early stopping. *)
  let held = Array.init n (fun i -> holdout_member ~seed ~holdout:hyper.holdout xs.(i) ys.(i)) in
  let train_idx = ref [] and hold_idx = ref [] in
  for i = n - 1 downto 0 do
    if held.(i) then hold_idx := i :: !hold_idx else train_idx := i :: !train_idx
  done;
  let train_idx, hold_idx =
    match !train_idx with
    | [] -> (Array.init n (fun i -> i), [||])
    | l -> (Array.of_list l, Array.of_list !hold_idx)
  in
  let n_train = Array.length train_idx in
  let n_hold = Array.length hold_idx in
  let np = param_count net in
  let velocity = Array.make np 0.0 in
  let batch = max 1 hyper.batch in
  let order = Array.copy train_idx in
  let best_params = Array.copy net.params in
  let best_loss = ref infinity in
  let stale = ref 0 in
  let last_train_loss = ref nan in
  let epochs_run = ref 0 in
  (try
     for epoch = 0 to hyper.epochs - 1 do
       incr epochs_run;
       Rng.shuffle (Rng.derive seed "mlp-epoch" epoch) order;
       let epoch_loss = ref 0.0 in
       let pos = ref 0 in
       while !pos < n_train do
         let nb = min batch (n_train - !pos) in
         let base = !pos in
         (* per-example forward/backward fans out; the sum is sequential *)
         let grads =
           Parallel.tabulate ~jobs nb (fun k ->
               let i = order.(base + k) in
               backward net xs.(i) ys.(i))
         in
         let acc = Array.make np 0.0 in
         Array.iter
           (fun (l, g) ->
             epoch_loss := !epoch_loss +. l;
             Vec.axpy 1.0 g acc)
           grads;
         let inv = 1.0 /. float_of_int nb in
         for i = 0 to np - 1 do
           velocity.(i) <- (hyper.momentum *. velocity.(i)) -. (hyper.lr *. acc.(i) *. inv);
           net.params.(i) <- net.params.(i) +. velocity.(i)
         done;
         pos := !pos + nb
       done;
       last_train_loss := !epoch_loss /. float_of_int n_train;
       if n_hold > 0 then begin
         let hloss, _ = evaluate ~jobs net xs ys hold_idx in
         if hloss < !best_loss then begin
           best_loss := hloss;
           Array.blit net.params 0 best_params 0 np;
           stale := 0
         end
         else begin
           incr stale;
           if !stale > hyper.patience then raise Exit
         end
       end
     done
   with Exit -> ());
  if n_hold > 0 then Array.blit best_params 0 net.params 0 np;
  let _, holdout_accuracy =
    if n_hold > 0 then evaluate ~jobs net xs ys hold_idx else (nan, nan)
  in
  let stats =
    {
      epochs_run = !epochs_run;
      final_loss = !last_train_loss;
      holdout_accuracy;
      holdout_size = n_hold;
    }
  in
  (match telemetry with
  | None -> ()
  | Some tel ->
    let scaled v mult = if Float.is_nan v then -1 else int_of_float (v *. mult) in
    Telemetry.record tel ~pass:"mlp"
      ~seconds:(Unix.gettimeofday () -. t0)
      ~metrics:
        [
          ("epochs", stats.epochs_run);
          ("params", np);
          ("examples", n);
          ("holdout", n_hold);
          ("final-loss-milli", scaled stats.final_loss 1000.0);
          ("holdout-acc-bp", scaled stats.holdout_accuracy 10000.0);
        ]
      ());
  (net, stats)
