(** Regression on loop performance — the paper's stated future work.

    §8: "future work will consider regression, which can predict values
    outside the range of the labels with which the learning algorithm is
    trained."  Two regressors are provided:

    - kernel ridge regression (the regression form of the LS-SVM already
      used for classification, sharing its solver), and
    - near-neighbor regression (distance-weighted average of the k nearest
      training responses),

    plus a harness that turns per-factor cycle predictions into an
    unroll-factor decision by arg-min — the "regress the whole curve, then
    choose" alternative to direct classification. *)

type ridge

val train_ridge :
  kernel:Kernel.t -> gamma:float -> float array array -> float array -> ridge
(** [train_ridge ~kernel ~gamma points responses] fits kernel ridge
    regression (identical normal equations to the LS-SVM with continuous
    targets). *)

val predict_ridge : ridge -> float array -> float

type knn_reg

val train_knn : ?k:int -> float array array -> float array -> knn_reg
(** [k] defaults to 5. *)

val predict_knn : knn_reg -> float array -> float
(** Inverse-distance-weighted mean of the [k] nearest responses. *)

val argmin_factor :
  predict:(float array -> int -> float) -> float array -> int
(** [argmin_factor ~predict features] evaluates a per-(features, factor)
    cost predictor at factors 1..8 and returns the arg-min factor — how a
    regression model plugs into the compiler's decision. *)

val r_squared : truth:float array -> predicted:float array -> float
(** Coefficient of determination of a prediction vector. *)
