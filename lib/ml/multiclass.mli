(** Multi-class classification over binary machines via output codes.

    §5.2 of the paper: each class gets a binary codeword, one binary
    classifier is trained per codeword bit, and a query is assigned the
    class whose codeword is closest to the concatenated binary predictions.
    The paper uses the identity (one-vs-rest) code; error-correcting codes
    are supported as the extension it mentions but does not use. *)

type code =
  | One_vs_rest
  | Dense_random of { bits : int; seed : int }
  (** each class gets [bits] random ±1 bits (distinct rows guaranteed) *)

type t

val train :
  ?jobs:int ->
  ?code:code -> n_classes:int -> kernel:Kernel.t -> gamma:float ->
  (float array * int) array -> t
(** Trains one LS-SVM per codeword bit, sharing the kernel factorisation.
    The Gram build fans out over [jobs] domains, bit-identical at every
    value. *)

val train_system : ?code:code -> n_classes:int -> Lssvm.system -> int array -> t
(** Train over a live {!Lssvm.system} instead of raw points: same
    codewords and targets as {!train}, solved against the system's
    incrementally maintained factorisation — bit-identical to [train] on
    {!Lssvm.system_points} with the system's kernel and gamma.  This is
    the online-training path: append points to the system, then re-derive
    the machines in O(bits·n²). *)

val predict : t -> float array -> int
(** Soft Hamming decoding: the class whose codeword best agrees with the
    signed decision values (margins break ties). *)

val decision_values : t -> float array -> float array
(** Raw per-bit decision values for a query. *)

val loo_predictions :
  ?jobs:int ->
  ?code:code -> n_classes:int -> kernel:Kernel.t -> gamma:float ->
  (float array * int) array -> int array
(** Leave-one-out multi-class predictions over a training set, using the
    closed-form LS-SVM LOO residuals (one O(N³) factorisation total).
    Identical output for every [jobs] value. *)

val training_predictions :
  ?code:code -> n_classes:int -> gamma:float -> gram:Mat.t -> int array ->
  int array
(** Train on a precomputed Gram matrix (e.g. {!Pairwise.rbf_gram}) and
    classify the training points in place — decision values are K·alpha
    rows, no kernel re-evaluation.  Bit-identical to training via {!train}
    on the same Gram and calling {!predict} on every training point. *)

val codeword : t -> int -> int array
(** The ±1 codeword of a class. *)

val export : t -> int array array * Lssvm.trained array
(** (codewords, binary machines) — for persistence. *)

val import : codewords:int array array -> machines:Lssvm.trained array -> t
