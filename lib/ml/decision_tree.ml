type node =
  | Leaf of int
  | Split of { feature : int; threshold : float; below : node; above : node }

type t = { root : node }

let majority n_classes pairs =
  let counts = Array.make n_classes 0 in
  Array.iter (fun (_, y) -> counts.(y) <- counts.(y) + 1) pairs;
  Stats.max_index (Array.map float_of_int counts)

let gini n_classes pairs =
  let n = Array.length pairs in
  if n = 0 then 0.0
  else begin
    let counts = Array.make n_classes 0 in
    Array.iter (fun (_, y) -> counts.(y) <- counts.(y) + 1) pairs;
    let acc = ref 1.0 in
    Array.iter
      (fun c ->
        let p = float_of_int c /. float_of_int n in
        acc := !acc -. (p *. p))
      counts;
    !acc
  end

let pure pairs =
  Array.length pairs <= 1
  ||
  let y0 = snd pairs.(0) in
  Array.for_all (fun (_, y) -> y = y0) pairs

(* Best (feature, threshold) by weighted Gini, scanning midpoints of
   consecutive distinct values. *)
let best_split n_classes pairs =
  let n = Array.length pairs in
  let d = Array.length (fst pairs.(0)) in
  let best = ref None in
  for f = 0 to d - 1 do
    let values = Array.map (fun (x, _) -> x.(f)) pairs in
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let thresholds = ref [] in
    for i = 0 to n - 2 do
      if sorted.(i) < sorted.(i + 1) then
        thresholds := ((sorted.(i) +. sorted.(i + 1)) /. 2.0) :: !thresholds
    done;
    List.iter
      (fun th ->
        let below = Array.of_list (List.filter (fun (x, _) -> x.(f) <= th) (Array.to_list pairs)) in
        let above = Array.of_list (List.filter (fun (x, _) -> x.(f) > th) (Array.to_list pairs)) in
        if Array.length below > 0 && Array.length above > 0 then begin
          let wb = float_of_int (Array.length below) /. float_of_int n in
          let wa = float_of_int (Array.length above) /. float_of_int n in
          let score = (wb *. gini n_classes below) +. (wa *. gini n_classes above) in
          match !best with
          | Some (s, _, _, _, _) when s <= score -> ()
          | _ -> best := Some (score, f, th, below, above)
        end)
      !thresholds
  done;
  !best

let train ?(max_depth = 6) ?(min_leaf = 4) ~n_classes pairs =
  if Array.length pairs = 0 then invalid_arg "Decision_tree.train: empty data";
  let rec grow depth pairs =
    if depth >= max_depth || Array.length pairs < 2 * min_leaf || pure pairs then
      Leaf (majority n_classes pairs)
    else
      match best_split n_classes pairs with
      | None -> Leaf (majority n_classes pairs)
      | Some (_, feature, threshold, below, above) ->
        if Array.length below < min_leaf || Array.length above < min_leaf then
          Leaf (majority n_classes pairs)
        else
          Split
            { feature; threshold; below = grow (depth + 1) below; above = grow (depth + 1) above }
  in
  { root = grow 0 pairs }

let rec predict_node node x =
  match node with
  | Leaf y -> y
  | Split { feature; threshold; below; above } ->
    if x.(feature) <= threshold then predict_node below x else predict_node above x

let predict t x = predict_node t.root x

let rec node_depth = function
  | Leaf _ -> 1
  | Split { below; above; _ } -> 1 + max (node_depth below) (node_depth above)

let rec node_leaves = function
  | Leaf _ -> 1
  | Split { below; above; _ } -> node_leaves below + node_leaves above

let depth t = node_depth t.root
let leaves t = node_leaves t.root
