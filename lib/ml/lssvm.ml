type trained = {
  alphas : float array;
  kernel : Kernel.t;
  points : float array array;
}

let ridge_matrix ?jobs ~kernel ~gamma points =
  if gamma <= 0.0 then invalid_arg "Lssvm: gamma must be positive";
  let h = Kernel.gram ?jobs kernel points in
  Mat.add_diagonal h (1.0 /. gamma);
  h

(* Solve (K + I/gamma) alpha = y for each target set over a precomputed
   Gram matrix — the pairwise-engine entry point, where K comes from the
   running dist² triangle rather than raw features.  [gram] is left
   untouched (the ridge is added to a copy) so callers can reuse it for
   the K·alpha decision values. *)
let solve_gram ~gamma gram target_sets =
  if gamma <= 0.0 then invalid_arg "Lssvm: gamma must be positive";
  let n = Mat.rows gram in
  let h = Mat.copy gram in
  Mat.add_diagonal h (1.0 /. gamma);
  let chol = Solve.cholesky h in
  Array.map
    (fun targets ->
      if Array.length targets <> n then invalid_arg "Lssvm.solve_gram: sizes";
      Solve.cholesky_solve chol targets)
    target_sets

let train ?jobs ~kernel ~gamma points targets =
  if Array.length points <> Array.length targets then invalid_arg "Lssvm.train: sizes";
  let h = ridge_matrix ?jobs ~kernel ~gamma points in
  let chol = Solve.cholesky h in
  { alphas = Solve.cholesky_solve chol targets; kernel; points }

let train_multi ?jobs ~kernel ~gamma points target_sets =
  let h = ridge_matrix ?jobs ~kernel ~gamma points in
  let chol = Solve.cholesky h in
  Array.map
    (fun targets ->
      if Array.length targets <> Array.length points then
        invalid_arg "Lssvm.train_multi: sizes";
      { alphas = Solve.cholesky_solve chol targets; kernel; points })
    target_sets

let decision t x =
  let acc = ref 0.0 in
  Array.iteri
    (fun i p -> acc := !acc +. (t.alphas.(i) *. Kernel.apply t.kernel p x))
    t.points;
  !acc

let decision_batch machines x =
  match machines with
  | [||] -> [||]
  | _ ->
    let first = machines.(0) in
    let n = Array.length first.points in
    let krow = Array.init n (fun i -> Kernel.apply first.kernel first.points.(i) x) in
    Array.map
      (fun m ->
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (m.alphas.(i) *. krow.(i))
        done;
        !acc)
      machines

let loo_decisions ?jobs ~kernel ~gamma points target_sets =
  let h = ridge_matrix ?jobs ~kernel ~gamma points in
  let chol = Solve.cholesky h in
  let hdiag = Solve.cholesky_inverse_diagonal chol in
  Array.map
    (fun targets ->
      let alphas = Solve.cholesky_solve chol targets in
      Array.mapi
        (fun i y_i ->
          (* Closed-form LOO residual: e_i = alpha_i / (H^-1)_ii, and the
             decision without example i is y_i - e_i. *)
          y_i -. (alphas.(i) /. hdiag.(i)))
        targets)
    target_sets

(* ------------------------------------------------------------------ *)
(* Growable ridge system: the shared factorisation of H = K + I/gamma kept
   across appended training points.  H is label-independent, so one system
   serves every codeword bit of a multiclass machine; appending a point
   borders the Cholesky factor in O(n²) instead of refactoring in O(n³).

   Bit-identity: the bordering row is built with [Kernel.apply], whose
   entries are bit-identical to the blocked [Kernel.gram] matrix (the
   blocked pairwise kernels document bit-identity with their per-pair
   forms), and the diagonal adds 1/gamma after the kernel value in the
   same order as [Mat.add_diagonal] — so an appended system factors the
   same bits as a cold-started one, and [system_train] output matches
   [train_multi] exactly. *)

type system = {
  sy_kernel : Kernel.t;
  sy_gamma : float;
  mutable sy_points : float array array; (* capacity-doubled; rows 0..n-1 live *)
  mutable sy_n : int;
  sy_chol : Solve.Chol.t;
}

let system_of_points ?jobs ~kernel ~gamma points =
  if gamma <= 0.0 then invalid_arg "Lssvm: gamma must be positive";
  let n = Array.length points in
  let chol =
    if n = 0 then Solve.Chol.create ()
    else Solve.Chol.of_matrix (ridge_matrix ?jobs ~kernel ~gamma points)
  in
  {
    sy_kernel = kernel;
    sy_gamma = gamma;
    sy_points = Array.copy points;
    sy_n = n;
    sy_chol = chol;
  }

let system_size sys = sys.sy_n
let system_points sys = Array.sub sys.sy_points 0 sys.sy_n

let system_append sys x =
  let n = sys.sy_n in
  if n > 0 && Array.length x <> Array.length sys.sy_points.(0) then
    invalid_arg "Lssvm.system_append: dimension mismatch";
  let b = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    b.(i) <- Kernel.apply sys.sy_kernel sys.sy_points.(i) x
  done;
  b.(n) <- Kernel.apply sys.sy_kernel x x +. (1.0 /. sys.sy_gamma);
  (* Factor first: a Singular raise leaves the system unchanged. *)
  Solve.Chol.append sys.sy_chol b;
  if n >= Array.length sys.sy_points then begin
    let bigger = Array.make (max 4 (2 * Array.length sys.sy_points)) [||] in
    Array.blit sys.sy_points 0 bigger 0 n;
    sys.sy_points <- bigger
  end;
  sys.sy_points.(n) <- Array.copy x;
  sys.sy_n <- n + 1

let system_remove_last sys =
  if sys.sy_n = 0 then invalid_arg "Lssvm.system_remove_last: empty";
  Solve.Chol.remove_last sys.sy_chol;
  sys.sy_n <- sys.sy_n - 1;
  sys.sy_points.(sys.sy_n) <- [||]

let system_solve sys targets =
  if Array.length targets <> sys.sy_n then invalid_arg "Lssvm.system_solve: sizes";
  Solve.Chol.solve sys.sy_chol targets

let system_train sys target_sets =
  let points = system_points sys in
  (* One [factor] snapshot shares the transposed-column cache across all
     target sets — the same sharing [train_multi] gets from one [cholesky]. *)
  let f = Solve.Chol.factor sys.sy_chol in
  Array.map
    (fun targets ->
      if Array.length targets <> sys.sy_n then invalid_arg "Lssvm.system_train: sizes";
      { alphas = Solve.cholesky_solve f targets; kernel = sys.sy_kernel; points })
    target_sets

let export t = t.alphas

let import ~kernel ~points ~alphas =
  if Array.length points <> Array.length alphas then invalid_arg "Lssvm.import";
  { alphas; kernel; points }

let training_points t = t.points
let kernel_of t = t.kernel
