type trained = {
  alphas : float array;
  kernel : Kernel.t;
  points : float array array;
}

let ridge_matrix ?jobs ~kernel ~gamma points =
  if gamma <= 0.0 then invalid_arg "Lssvm: gamma must be positive";
  let h = Kernel.gram ?jobs kernel points in
  Mat.add_diagonal h (1.0 /. gamma);
  h

(* Solve (K + I/gamma) alpha = y for each target set over a precomputed
   Gram matrix — the pairwise-engine entry point, where K comes from the
   running dist² triangle rather than raw features.  [gram] is left
   untouched (the ridge is added to a copy) so callers can reuse it for
   the K·alpha decision values. *)
let solve_gram ~gamma gram target_sets =
  if gamma <= 0.0 then invalid_arg "Lssvm: gamma must be positive";
  let n = Mat.rows gram in
  let h = Mat.copy gram in
  Mat.add_diagonal h (1.0 /. gamma);
  let chol = Solve.cholesky h in
  Array.map
    (fun targets ->
      if Array.length targets <> n then invalid_arg "Lssvm.solve_gram: sizes";
      Solve.cholesky_solve chol targets)
    target_sets

let train ?jobs ~kernel ~gamma points targets =
  if Array.length points <> Array.length targets then invalid_arg "Lssvm.train: sizes";
  let h = ridge_matrix ?jobs ~kernel ~gamma points in
  let chol = Solve.cholesky h in
  { alphas = Solve.cholesky_solve chol targets; kernel; points }

let train_multi ?jobs ~kernel ~gamma points target_sets =
  let h = ridge_matrix ?jobs ~kernel ~gamma points in
  let chol = Solve.cholesky h in
  Array.map
    (fun targets ->
      if Array.length targets <> Array.length points then
        invalid_arg "Lssvm.train_multi: sizes";
      { alphas = Solve.cholesky_solve chol targets; kernel; points })
    target_sets

let decision t x =
  let acc = ref 0.0 in
  Array.iteri
    (fun i p -> acc := !acc +. (t.alphas.(i) *. Kernel.apply t.kernel p x))
    t.points;
  !acc

let decision_batch machines x =
  match machines with
  | [||] -> [||]
  | _ ->
    let first = machines.(0) in
    let n = Array.length first.points in
    let krow = Array.init n (fun i -> Kernel.apply first.kernel first.points.(i) x) in
    Array.map
      (fun m ->
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (m.alphas.(i) *. krow.(i))
        done;
        !acc)
      machines

let loo_decisions ?jobs ~kernel ~gamma points target_sets =
  let h = ridge_matrix ?jobs ~kernel ~gamma points in
  let chol = Solve.cholesky h in
  let hdiag = Solve.cholesky_inverse_diagonal chol in
  Array.map
    (fun targets ->
      let alphas = Solve.cholesky_solve chol targets in
      Array.mapi
        (fun i y_i ->
          (* Closed-form LOO residual: e_i = alpha_i / (H^-1)_ii, and the
             decision without example i is y_i - e_i. *)
          y_i -. (alphas.(i) /. hdiag.(i)))
        targets)
    target_sets

let export t = t.alphas

let import ~kernel ~points ~alphas =
  if Array.length points <> Array.length alphas then invalid_arg "Lssvm.import";
  { alphas; kernel; points }

let training_points t = t.points
let kernel_of t = t.kernel
