let run ~train ~predict pairs =
  let n = Array.length pairs in
  Array.init n (fun i ->
      let rest =
        Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list pairs))
      in
      let model = train rest in
      predict model (fst pairs.(i)))

let accuracy ~train ~predict pairs =
  let preds = run ~train ~predict pairs in
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = snd pairs.(i) then incr hits) preds;
  if Array.length pairs = 0 then 0.0
  else float_of_int !hits /. float_of_int (Array.length pairs)

let grouped ~groups ~train ~predict pairs =
  if Array.length groups <> Array.length pairs then invalid_arg "Loocv.grouped: sizes";
  let distinct = List.sort_uniq compare (Array.to_list groups) in
  let out = Array.make (Array.length pairs) 0 in
  List.iter
    (fun g ->
      let rest =
        Array.of_list
          (List.filteri (fun j _ -> groups.(j) <> g) (Array.to_list pairs))
      in
      let model = train rest in
      Array.iteri
        (fun i (x, _) -> if groups.(i) = g then out.(i) <- predict model x)
        pairs)
    distinct;
  out
