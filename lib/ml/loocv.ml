let run ?(jobs = 1) ~train ~predict pairs =
  let n = Array.length pairs in
  (* Each fold is independent and results land at their fold's index, so
     the output does not depend on [jobs]. *)
  Parallel.map ~jobs
    (fun i ->
      let rest =
        Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list pairs))
      in
      let model = train rest in
      predict model (fst pairs.(i)))
    (Array.init n Fun.id)

let accuracy ?jobs ~train ~predict pairs =
  let preds = run ?jobs ~train ~predict pairs in
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = snd pairs.(i) then incr hits) preds;
  if Array.length pairs = 0 then 0.0
  else float_of_int !hits /. float_of_int (Array.length pairs)

let grouped ?(jobs = 1) ~groups ~train ~predict pairs =
  if Array.length groups <> Array.length pairs then invalid_arg "Loocv.grouped: sizes";
  let distinct = List.sort_uniq compare (Array.to_list groups) in
  let per_group =
    Parallel.map_list ~jobs
      (fun g ->
        let rest =
          Array.of_list
            (List.filteri (fun j _ -> groups.(j) <> g) (Array.to_list pairs))
        in
        let model = train rest in
        List.init (Array.length pairs) Fun.id
        |> List.filter (fun i -> groups.(i) = g)
        |> List.map (fun i -> (i, predict model (fst pairs.(i)))))
      distinct
  in
  let out = Array.make (Array.length pairs) 0 in
  List.iter (List.iter (fun (i, p) -> out.(i) <- p)) per_group;
  out
