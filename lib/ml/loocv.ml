(* Hold-out training sets are built with direct blits — no
   array/list/array round-trip per fold. *)
let without_index pairs i =
  let n = Array.length pairs in
  let rest = Array.make (n - 1) pairs.(0) in
  Array.blit pairs 0 rest 0 i;
  Array.blit pairs (i + 1) rest i (n - 1 - i);
  rest

let run ?(jobs = 1) ~train ~predict pairs =
  let n = Array.length pairs in
  (* Each fold is independent and results land at their fold's index, so
     the output does not depend on [jobs]. *)
  Parallel.tabulate ~jobs n (fun i ->
      let model = train (without_index pairs i) in
      predict model (fst pairs.(i)))

let accuracy ?jobs ~train ~predict pairs =
  let preds = run ?jobs ~train ~predict pairs in
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = snd pairs.(i) then incr hits) preds;
  if Array.length pairs = 0 then 0.0
  else float_of_int !hits /. float_of_int (Array.length pairs)

let without_group groups pairs g =
  let n = Array.length pairs in
  let keep = ref 0 in
  for j = 0 to n - 1 do
    if groups.(j) <> g then incr keep
  done;
  if !keep = 0 then [||]
  else begin
    let rest = Array.make !keep pairs.(0) in
    let at = ref 0 in
    for j = 0 to n - 1 do
      if groups.(j) <> g then begin
        rest.(!at) <- pairs.(j);
        incr at
      end
    done;
    rest
  end

let grouped ?(jobs = 1) ~groups ~train ~predict pairs =
  if Array.length groups <> Array.length pairs then invalid_arg "Loocv.grouped: sizes";
  let distinct = Array.of_list (List.sort_uniq compare (Array.to_list groups)) in
  let per_group =
    Parallel.map ~jobs
      (fun g ->
        let model = train (without_group groups pairs g) in
        let mine = ref [] in
        for i = Array.length pairs - 1 downto 0 do
          if groups.(i) = g then mine := (i, predict model (fst pairs.(i))) :: !mine
        done;
        !mine)
      distinct
  in
  let out = Array.make (Array.length pairs) 0 in
  Array.iter (List.iter (fun (i, p) -> out.(i) <- p)) per_group;
  out
