type ridge = { model : Lssvm.trained }

let train_ridge ~kernel ~gamma points responses =
  { model = Lssvm.train ~kernel ~gamma points responses }

let predict_ridge r x = Lssvm.decision r.model x

type knn_reg = { k : int; points : float array array; responses : float array }

let train_knn ?(k = 5) points responses =
  if Array.length points = 0 then invalid_arg "Regression.train_knn: empty data";
  if Array.length points <> Array.length responses then
    invalid_arg "Regression.train_knn: sizes";
  { k = max 1 k; points; responses }

let predict_knn t x =
  let n = Array.length t.points in
  let d = Array.mapi (fun i p -> (Vec.dist2 p x, i)) t.points in
  Array.sort compare d;
  let k = min t.k n in
  let wsum = ref 0.0 and acc = ref 0.0 in
  for j = 0 to k - 1 do
    let dist2, i = d.(j) in
    let w = 1.0 /. (1e-9 +. sqrt dist2) in
    wsum := !wsum +. w;
    acc := !acc +. (w *. t.responses.(i))
  done;
  !acc /. !wsum

let argmin_factor ~predict features =
  let best = ref 1 and best_cost = ref infinity in
  for u = 1 to 8 do
    let c = predict features u in
    if c < !best_cost then begin
      best_cost := c;
      best := u
    end
  done;
  !best

let r_squared ~truth ~predicted =
  if Array.length truth <> Array.length predicted then
    invalid_arg "Regression.r_squared: sizes";
  let mean = Stats.mean truth in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i t ->
      let e = t -. predicted.(i) in
      ss_res := !ss_res +. (e *. e);
      ss_tot := !ss_tot +. ((t -. mean) *. (t -. mean)))
    truth;
  if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot)
