(** Incremental pairwise-distance engine for greedy feature selection.

    Squared Euclidean distance decomposes additively over features:
    [dist²(x, y; S ∪ {f}) = dist²(x, y; S) + (x_f − y_f)²].  The engine
    keeps the running n×n dist² of a {e committed} feature subset in a
    single strict upper triangle (n(n−1)/2 floats) over a flat row-major
    points matrix; a greedy candidate is evaluated by adding only that
    feature's pairwise contribution on the fly — O(n²) per candidate
    instead of O(n²·|subset|) — and the winner's contribution is folded in
    once per round with {!commit}.  The RBF Gram matrix
    [exp (-gamma * dist²)] falls out of the same triangle for the SVM
    variant.

    The triangle is stored in {e column-block} order — pair (i, k) with
    i < k at k(k−1)/2 + i — so all pairs whose larger index is k are one
    contiguous block.  {!append} therefore extends the engine by one point
    in O(n·|subset|): one new point row, one new block of committed
    distances, nothing else moves.  This is what online training leans on.

    {b Determinism contract.}  Contributions accumulate in commit order
    with the candidate term added last — exactly the left-to-right
    summation order of [Vec.dist2] over features projected in selection
    order — so committed-plus-candidate distances are bit-identical to
    direct recomputation, and an appended engine is bit-identical to one
    created from scratch over the extended point set.  Nothing depends on
    [jobs]: candidate evaluations may fan out over {!Parallel} domains
    that only read the triangle, and {!commit}/{!append} are the
    sequential write points between rounds. *)

type t

val create : Mat.t -> t
(** [create points] over an n×d row-major feature matrix, with the empty
    committed subset (all distances 0).  The points are copied into
    growable storage, so the argument is not retained. *)

val of_dataset : Dataset.t -> t * int array
(** Engine over {!Dataset.points_matrix}, plus the label vector. *)

val size : t -> int
(** Number of points n. *)

val dim : t -> int
(** Number of feature columns d. *)

val committed : t -> int list
(** Committed features in commit (selection) order. *)

val is_committed : t -> int -> bool

val commit : t -> int -> unit
(** Fold a feature's pairwise contribution into the running triangle —
    O(n²), once per greedy round.  Raises [Invalid_argument] if the
    feature is out of range or already committed. *)

val append : t -> float array -> unit
(** [append t x] adds point [x] (length {!dim}) with index [size t],
    extending the triangle by one contiguous block of committed-subset
    distances — O(n·|subset|), amortised over capacity doubling.  The
    resulting engine is bit-identical to [create] over the extended
    matrix followed by the same commits. *)

val iter_pairs : ?cand:int -> t -> (int -> int -> float -> unit) -> unit
(** [iter_pairs ?cand t f] calls [f i k dist2] for every pair [i < k] in
    column-block order (ascending [k], then ascending [i]), where [dist2]
    covers the committed subset plus the optional candidate feature.  The
    candidate path reads the triangle and the points matrix only, so
    concurrent candidate evaluations are safe. *)

val dist2 : ?cand:int -> t -> int -> int -> float
(** Random access to one pairwise distance (0 on the diagonal). *)

val dist2_matrix : ?cand:int -> t -> Mat.t
(** The full symmetric n×n dist² matrix for the current subset. *)

val rbf_gram : ?cand:int -> gamma:float -> t -> Mat.t
(** RBF Gram matrix [exp (-gamma * dist²)] with an exact unit diagonal —
    bit-identical to [Kernel.gram (Rbf gamma)] over the projected subset. *)

val nn_loo_error : ?cand:int -> t -> labels:int array -> float
(** Leave-one-out training error of radius-0 {!Knn} on the current subset
    (plus candidate) — the §7.2 greedy-NN objective, bit-identical to
    [Knn.loo_predictions] over the projected features.  Each point is
    classified by its single nearest other point (ties to the lowest
    index), except that exact duplicates (dist² = 0) majority-vote, which
    is Knn's [<=] radius test at radius 0.  Returns 1.0 when fewer than
    two points exist. *)

val nn_loo_error_count :
  ?cand:int -> ?nearest_out:float array -> t -> labels:int array -> int
(** The same objective as an integer misclassification count (0 when
    fewer than two points exist) — the form warm-started greedy selection
    caches, since counts admit exact ±bounds under appended points where
    ratios do not.  [nearest_out] (length [size]) is filled, when given,
    with each query's nearest-other dist² under the scored subset
    ([infinity] when fewer than two points exist) — the displacement
    thresholds the warm cache certifies against, at no extra cost. *)
