(** Least-squares support vector machines.

    The paper prototypes its SVM with the LS-SVMlab toolkit [13]; this is
    the same formulation, built from scratch.  A binary LS-SVM (bias-free
    variant) solves the ridge system

    {v (K + I/gamma) alpha = y v}

    over the kernel Gram matrix K and targets y in {-1, +1}; the decision
    function is f(x) = sum_i alpha_i k(x_i, x).

    Two structural facts make full-dataset experiments tractable:
    - H = K + I/gamma does not depend on the labels, so one Cholesky
      factorisation is shared across all one-vs-rest subproblems; and
    - leave-one-out residuals have the closed form
      e_i = alpha_i / (H^-1)_ii, so LOOCV costs one inversion rather than
      N retrainings. *)

type trained

val train :
  ?jobs:int ->
  kernel:Kernel.t -> gamma:float -> float array array -> float array -> trained
(** [train ~kernel ~gamma points targets] with targets in {-1, +1}.  The
    Gram build fans out over [jobs] worker domains (default 1) with
    bit-identical results at every value. *)

val train_multi :
  ?jobs:int ->
  kernel:Kernel.t -> gamma:float -> float array array -> float array array ->
  trained array
(** Train one binary machine per target vector, sharing the factorisation
    of H across all of them. *)

val solve_gram : gamma:float -> Mat.t -> float array array -> float array array
(** [solve_gram ~gamma gram target_sets] solves (K + I/gamma) alpha = y
    per target set over a precomputed Gram matrix (which is not modified)
    — the entry point for the {!Pairwise} engine, where K comes from the
    running dist² triangle.  One shared Cholesky factorisation. *)

val decision : trained -> float array -> float
(** Signed decision value; positive means class +1. *)

val decision_batch : trained array -> float array -> float array
(** Decision values of several machines sharing the same training points,
    evaluating each kernel row once. *)

val export : trained -> float array
(** The dual coefficients (alphas) — for persistence; pair with the
    training points and kernel to reconstruct via {!import}. *)

val training_points : trained -> float array array
val kernel_of : trained -> Kernel.t

val import :
  kernel:Kernel.t -> points:float array array -> alphas:float array -> trained

val loo_decisions :
  ?jobs:int ->
  kernel:Kernel.t -> gamma:float -> float array array -> float array array ->
  float array array
(** [loo_decisions ~kernel ~gamma points targets] returns, per binary
    subproblem, the leave-one-out decision value for every training
    example: element [(c, i)] is f_c computed without example [i],
    evaluated at x_i.  Costs a single O(N³) inversion. *)

(** {1 Growable ridge system}

    The factorisation of H = K + I/gamma kept live across appended
    training points.  H does not depend on the labels, so one system
    serves every codeword bit of a multiclass machine; appending a point
    borders the Cholesky factor in O(n²) (see {!Solve.Chol}) instead of
    refactoring in O(n³) — the incremental path of online training.

    {b Bit-identity contract.}  [system_train] over a system grown by any
    interleaving of {!system_of_points} and {!system_append} returns
    machines bit-identical to {!train_multi} over the same final point
    set: the bordering kernel row is computed with [Kernel.apply], whose
    entries match the blocked Gram bit for bit, and the ridge term is
    added in the same order as [Mat.add_diagonal]. *)

type system

val system_of_points :
  ?jobs:int -> kernel:Kernel.t -> gamma:float -> float array array -> system
(** Cold-start a system over an (possibly empty) point set: one blocked
    Gram build plus one O(n³) factorisation.  The point array is copied.
    Raises {!Solve.Singular} if the ridge matrix is not positive
    definite, and [Invalid_argument] if [gamma <= 0]. *)

val system_size : system -> int

val system_points : system -> float array array
(** The live training points, oldest first (a fresh array of shared
    rows). *)

val system_append : system -> float array -> unit
(** Add one training point: n kernel evaluations plus an O(n²) factor
    bordering.  Raises {!Solve.Singular} — leaving the system unchanged —
    if the bordered matrix loses positive definiteness. *)

val system_remove_last : system -> unit
(** Drop the most recently appended point in O(1) — the exact downdate,
    since the factor of a leading principal submatrix never read the
    dropped row.  Raises [Invalid_argument] on an empty system. *)

val system_solve : system -> float array -> float array
(** Solve (K + I/gamma) alpha = y for one target vector at the current
    size. *)

val system_train : system -> float array array -> trained array
(** One {!trained} machine per target vector, sharing the live
    factorisation and one snapshot of the points — bit-identical to
    {!train_multi} on the same point set (see the contract above). *)
