(** Least-squares support vector machines.

    The paper prototypes its SVM with the LS-SVMlab toolkit [13]; this is
    the same formulation, built from scratch.  A binary LS-SVM (bias-free
    variant) solves the ridge system

    {v (K + I/gamma) alpha = y v}

    over the kernel Gram matrix K and targets y in {-1, +1}; the decision
    function is f(x) = sum_i alpha_i k(x_i, x).

    Two structural facts make full-dataset experiments tractable:
    - H = K + I/gamma does not depend on the labels, so one Cholesky
      factorisation is shared across all one-vs-rest subproblems; and
    - leave-one-out residuals have the closed form
      e_i = alpha_i / (H^-1)_ii, so LOOCV costs one inversion rather than
      N retrainings. *)

type trained

val train :
  ?jobs:int ->
  kernel:Kernel.t -> gamma:float -> float array array -> float array -> trained
(** [train ~kernel ~gamma points targets] with targets in {-1, +1}.  The
    Gram build fans out over [jobs] worker domains (default 1) with
    bit-identical results at every value. *)

val train_multi :
  ?jobs:int ->
  kernel:Kernel.t -> gamma:float -> float array array -> float array array ->
  trained array
(** Train one binary machine per target vector, sharing the factorisation
    of H across all of them. *)

val solve_gram : gamma:float -> Mat.t -> float array array -> float array array
(** [solve_gram ~gamma gram target_sets] solves (K + I/gamma) alpha = y
    per target set over a precomputed Gram matrix (which is not modified)
    — the entry point for the {!Pairwise} engine, where K comes from the
    running dist² triangle.  One shared Cholesky factorisation. *)

val decision : trained -> float array -> float
(** Signed decision value; positive means class +1. *)

val decision_batch : trained array -> float array -> float array
(** Decision values of several machines sharing the same training points,
    evaluating each kernel row once. *)

val export : trained -> float array
(** The dual coefficients (alphas) — for persistence; pair with the
    training points and kernel to reconstruct via {!import}. *)

val training_points : trained -> float array array
val kernel_of : trained -> Kernel.t

val import :
  kernel:Kernel.t -> points:float array array -> alphas:float array -> trained

val loo_decisions :
  ?jobs:int ->
  kernel:Kernel.t -> gamma:float -> float array array -> float array array ->
  float array array
(** [loo_decisions ~kernel ~gamma points targets] returns, per binary
    subproblem, the leave-one-out decision value for every training
    example: element [(c, i)] is f_c computed without example [i],
    evaluated at x_i.  Costs a single O(N³) inversion. *)
