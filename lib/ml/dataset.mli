(** Labelled datasets for supervised classification.

    An example pairs a feature vector with a class label (unroll factor − 1)
    and carries the per-class measured costs so evaluation can compute
    rank-of-prediction and misprediction-cost statistics (paper Table 2).
    The [group] field names the benchmark an example came from, enabling the
    leave-one-benchmark-out protocol of §6.1. *)

type example = {
  features : float array;
  label : int;           (** 0-based class index *)
  tag : string;          (** loop name *)
  group : string;        (** benchmark name *)
  costs : float array;   (** measured cost (cycles) per class *)
}

type t = {
  examples : example array;
  feature_names : string array;
  n_classes : int;
}

val create : feature_names:string array -> n_classes:int -> example list -> t
(** Validates that every example has [Array.length feature_names] features
    and a label within range; raises [Invalid_argument] otherwise. *)

val size : t -> int

val select_features : t -> int array -> t
(** Keep only the given feature columns (in the given order). *)

val feature_column : t -> int -> float array
val labels : t -> int array

val without_group : t -> string -> t
(** Drop every example of one benchmark — leave-one-benchmark-out. *)

val groups : t -> string list
(** Distinct group names, in first-appearance order. *)

val points : t -> (float array * int) array
(** (features, label) pairs, for classifier training. *)

val points_matrix : t -> Mat.t * int array
(** The examples as one flat row-major n×d matrix plus the label vector —
    the allocation-free input of the {!Pairwise} engine and the blocked
    distance/Gram kernels, replacing per-example [float array array]
    copies on the hot path. *)

val digest : t -> string
(** Hex digest over the whole dataset — feature names, class count, and
    every example (features, label, tag, group, costs).  The provenance
    stamp a model artifact carries: two training runs that produce the
    same digest trained on identical data. *)

val to_csv : t -> string -> unit
(** Persist as CSV: header row with feature names, then one row per example
    (tag, group, label, costs..., features...). *)

val of_csv : string -> t
(** Inverse of {!to_csv}. *)
