(** Fisher linear discriminant analysis.

    Used, as in the paper's Figures 1 and 2, to find a "good" plane onto
    which high-dimensional loop data is projected for visualisation: the
    projection maximises between-class scatter relative to within-class
    scatter.  Axes of the projected plot are linear combinations of the
    original features. *)

type t

val fit : ?dims:int -> (float array * int) array -> t
(** Learn a [dims]-dimensional (default 2) discriminant projection.
    Within-class scatter is regularised with a small ridge so the inverse
    exists even with collinear features. *)

val project : t -> float array -> float array
(** Map a feature vector into the discriminant subspace. *)

val axes : t -> float array array
(** The projection vectors (one row per output dimension). *)
