(* Reduce candidate evaluations in candidate order: the first strictly
   lower error wins, so the pick does not depend on [jobs]. *)
let best_of errs =
  Array.fold_left
    (fun best (f, err) ->
      match best with
      | Some (_, e) when e <= err -> best
      | _ -> Some (f, err))
    None errs

let run ?(jobs = 1) ~n_features ~k error =
  let chosen = ref [] in
  let remaining = ref (Array.init n_features Fun.id) in
  let picks = ref [] in
  for _ = 1 to min k n_features do
    (* Candidate evaluations within a round are independent. *)
    let errs =
      Parallel.map ~jobs (fun f -> (f, error (List.rev (f :: !chosen)))) !remaining
    in
    match best_of errs with
    | None -> ()
    | Some (f, err) ->
      chosen := f :: !chosen;
      remaining :=
        Array.of_list (List.filter (fun g -> g <> f) (Array.to_list !remaining));
      picks := (f, err) :: !picks
  done;
  List.rev !picks

(* ------------------------------------------------------------------ *)
(* Pairwise-engine driver: one running dist² triangle, candidates add
   their own O(n²) contribution, the winner commits once per round. *)

let round_telemetry telemetry ~name ~round ~t0 ~candidates best =
  match telemetry with
  | None -> ()
  | Some sink ->
    let seconds = Unix.gettimeofday () -. t0 in
    let metrics =
      ("candidates", candidates)
      ::
      (match best with
      | None -> []
      | Some (f, err) ->
        (* error as basis points: Telemetry counters are integers *)
        [ ("best_feature", f); ("best_err_bp", int_of_float (err *. 10000.0)) ])
    in
    Telemetry.record sink
      ~pass:(Printf.sprintf "greedy.%s[round %d]" name round)
      ~seconds ~metrics ()

let run_pairwise ?(jobs = 1) ?telemetry ?(name = "select") ~k engine eval =
  let d = Pairwise.dim engine in
  let picks = ref [] in
  (try
     for round = 1 to min k d do
       let t0 = Unix.gettimeofday () in
       let remaining =
         Array.of_list
           (List.filter
              (fun f -> not (Pairwise.is_committed engine f))
              (List.init d Fun.id))
       in
       (* Candidate evaluations only read the committed triangle; the same
          candidate-order reduction as [run] keeps picks jobs-invariant. *)
       let errs = Parallel.map ~jobs (fun f -> (f, eval f)) remaining in
       let best = best_of errs in
       round_telemetry telemetry ~name ~round ~t0 ~candidates:(Array.length remaining)
         best;
       match best with
       | None -> raise Exit
       | Some (f, err) ->
         Pairwise.commit engine f;
         picks := (f, err) :: !picks
     done
   with Exit -> ());
  List.rev !picks

let project (e : Dataset.example) subset =
  Array.of_list (List.map (fun j -> e.Dataset.features.(j)) subset)

let nn_training_error (ds : Dataset.t) subset =
  let pts = Array.map (fun e -> (project e subset, e.Dataset.label)) ds.Dataset.examples in
  if Array.length pts < 2 then 1.0
  else begin
    (* §7.2: for greedy selection the NN algorithm is modified to use the
       single closest point.  Radius 0 makes every query fall through to
       the 1-NN fallback. *)
    let knn = Knn.train ~radius:0.0 ~n_classes:ds.Dataset.n_classes pts in
    let preds = Knn.loo_predictions knn in
    let errs = ref 0 in
    Array.iteri (fun i p -> if p <> snd pts.(i) then incr errs) preds;
    float_of_int !errs /. float_of_int (Array.length pts)
  end

let subsample (ds : Dataset.t) max_examples =
  let n = Dataset.size ds in
  if n <= max_examples then ds
  else begin
    (* Deterministic stride-based subsample preserving class mix. *)
    let stride = float_of_int n /. float_of_int max_examples in
    let keep =
      List.init max_examples (fun i -> int_of_float (float_of_int i *. stride))
    in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

let svm_training_error ?(kernel = Kernel.Rbf 0.5) ?(gamma = 16.0) ?(max_examples = 400)
    (ds : Dataset.t) subset =
  let ds = subsample ds max_examples in
  let pairs =
    Array.map (fun e -> (project e subset, e.Dataset.label)) ds.Dataset.examples
  in
  if Array.length pairs < 2 then 1.0
  else begin
    let model =
      Multiclass.train ~n_classes:ds.Dataset.n_classes ~kernel ~gamma pairs
    in
    let errs = ref 0 in
    Array.iter
      (fun (x, y) -> if Multiclass.predict model x <> y then incr errs)
      pairs;
    float_of_int !errs /. float_of_int (Array.length pairs)
  end

(* ------------------------------------------------------------------ *)
(* Engine-backed selections: same picks as [run] over the brute-force
   objectives above, at O(rounds · candidates · n²) instead of
   O(rounds · candidates · n² · d). *)

let nn_run ?jobs ?telemetry ~k (ds : Dataset.t) =
  let engine, labels = Pairwise.of_dataset ds in
  run_pairwise ?jobs ?telemetry ~name:"nn" ~k engine (fun cand ->
      Pairwise.nn_loo_error ~cand engine ~labels)

let svm_run ?jobs ?telemetry ?(kernel = Kernel.Rbf 0.5) ?(gamma = 16.0)
    ?(max_examples = 400) ~k (ds : Dataset.t) =
  match kernel with
  | Kernel.Rbf rbf_gamma ->
    let ds = subsample ds max_examples in
    let n_classes = ds.Dataset.n_classes in
    let engine, labels = Pairwise.of_dataset ds in
    run_pairwise ?jobs ?telemetry ~name:"svm" ~k engine (fun cand ->
        if Pairwise.size engine < 2 then 1.0
        else begin
          let gram = Pairwise.rbf_gram ~cand ~gamma:rbf_gamma engine in
          let preds = Multiclass.training_predictions ~n_classes ~gamma ~gram labels in
          let errs = ref 0 in
          Array.iteri (fun i p -> if p <> labels.(i) then incr errs) preds;
          float_of_int !errs /. float_of_int (Pairwise.size engine)
        end)
  | Kernel.Linear | Kernel.Poly _ ->
    (* non-RBF kernels are not a function of dist² — keep the generic path *)
    run ?jobs
      ~n_features:(Array.length ds.Dataset.feature_names)
      ~k
      (svm_training_error ~kernel ~gamma ~max_examples ds)

(* ------------------------------------------------------------------ *)
(* Warm-started greedy NN selection for online training.

   Online retraining re-runs selection over a dataset that usually only
   *extends* the previous one: the scaled coordinates of every old point
   are bit-identical and a few new points arrived.  A full [nn_run] costs
   O(k·d·n²); most of that work re-derives winners that cannot have
   changed.  The cache certifies each cached round winner with ONE exact
   candidate evaluation plus cheap per-candidate flag scans over the
   appended points, falling back to a full round — and from the first
   flipped winner, to full rounds for the rest — whenever certification
   fails.  Output is the *identical* pick list a from-scratch [nn_run]
   would return, unconditionally (the correctness gate of the
   online-training design; tests diff the two).

   Soundness of certification, in the engine's own float arithmetic.  Let
   S_r be the committed subset entering round r (identical to the batch
   run's, by induction), and let the replay engine hold the extended
   point set.  When round r was last scored in full — over the first n₀
   points — we recorded, per candidate c, the exact error count and the
   displacement thresholds

     u_c(i) = min_{j ≠ i, j < n₀} dist2_{S_r ∪ c}(i, j).

   An old query i's LOO vote under candidate c can change only if some
   appended point p ties or beats its nearest incumbent:

     dist2_{S_r ∪ c}(i, p)  <=  min_j dist2_{S_r ∪ c}(i, j),

   and the right side only *shrinks* as points are appended, so it is
   still bounded by the cached u_c(i).  Both sides are engine-arithmetic
   sums over the same feature subset; the 1e-9 relative margin below
   absorbs their accumulation-order rounding (<= #terms · 2⁻⁵³).  Flag
   i for candidate c iff  min_{p >= n₀} dist2(i,p) <= u_c(i)·margin —
   this also catches a new zero-distance duplicate joining a radius-0
   vote.  Let F_c count the flags.  Queries appended after n₀ were not
   part of the cached count and can only ADD errors, so

     count_now(c) >= count_cached(c) - F_c

   (integer counts admit this exact bound; error *ratios* do not, which
   is why the engine exposes [nn_loo_error_count]).  The cached winner
   f_r is re-scored exactly on the extended engine; it is certified iff
   every other remaining candidate's lower bound still loses to it under
   [best_of]'s first-minimum rule (strictly for c < f_r, weakly for
   c > f_r).  A certified round commits f_r after one exact evaluation;
   an uncertified round runs in full — exactly the batch computation —
   and re-primes its cache. *)

module Warm = struct
  type round = {
    mutable w_feature : int; (* cached winner *)
    mutable w_n0 : int; (* point count at last full scoring *)
    mutable w_counts : int array; (* exact per-candidate counts at n0 *)
    mutable w_u : float array array; (* per candidate: thresholds u_c(i), i < n0 *)
  }

  type t = {
    mutable c_primed : bool;
    mutable c_k : int;
    mutable c_d : int;
    mutable c_n : int;
    mutable c_pts : float array; (* n×d scaled coordinates of the cached run *)
    mutable c_labels : int array;
    mutable c_rounds : round array;
    mutable c_picks : (int * float) list;
    (* instrumentation *)
    mutable c_primes : int;
    mutable c_generations : int;
    mutable c_certified : int;
    mutable c_full : int;
  }

  let create () =
    {
      c_primed = false;
      c_k = 0;
      c_d = 0;
      c_n = 0;
      c_pts = [||];
      c_labels = [||];
      c_rounds = [||];
      c_picks = [];
      c_primes = 0;
      c_generations = 0;
      c_certified = 0;
      c_full = 0;
    }

  let primes t = t.c_primes
  let generations t = t.c_generations
  let certified_rounds t = t.c_certified
  let full_rounds t = t.c_full

  (* Matches [nn_loo_error]'s n < 2 convention bit for bit. *)
  let err_of_count ~n cnt =
    if n < 2 then 1.0 else float_of_int cnt /. float_of_int n

  (* Conservative margin for comparing two differently-accumulated sums of
     non-negative terms: each carries relative error <= #terms · 2⁻⁵³,
     orders of magnitude below 1e-9 for any realistic feature count. *)
  let margin = 1.0 +. 1e-9

  let remaining_of engine =
    Array.of_list
      (List.filter
         (fun f -> not (Pairwise.is_committed engine f))
         (List.init (Pairwise.dim engine) Fun.id))

  (* One full round — exactly the batch computation of [nn_run]'s round,
     plus recording each candidate's count and displacement thresholds. *)
  let full_round ~jobs ~telemetry t engine labels round rnd =
    let t0 = Unix.gettimeofday () in
    let n = Pairwise.size engine in
    let remaining = remaining_of engine in
    let scored =
      Parallel.map ~jobs
        (fun f ->
          let uc = Array.make n infinity in
          let cnt = Pairwise.nn_loo_error_count ~cand:f ~nearest_out:uc engine ~labels in
          (f, cnt, uc))
        remaining
    in
    let errs = Array.map (fun (f, c, _) -> (f, err_of_count ~n c)) scored in
    let best = best_of errs in
    round_telemetry telemetry ~name:"nn-warm" ~round ~t0
      ~candidates:(Array.length remaining) best;
    t.c_full <- t.c_full + 1;
    match best with
    | None -> None
    | Some (f, err) ->
      let d = Pairwise.dim engine in
      let counts = Array.make d max_int in
      let u = Array.make d [||] in
      Array.iter
        (fun (g, c, uc) ->
          counts.(g) <- c;
          u.(g) <- uc)
        scored;
      rnd.w_feature <- f;
      rnd.w_n0 <- n;
      rnd.w_counts <- counts;
      rnd.w_u <- u;
      Pairwise.commit engine f;
      Some (f, err)

  (* Certify the cached winner of one round; [Some pick] commits it,
     [None] means the caller must fall back to a full round.  The cached
     state is left untouched either way — counts and thresholds stay
     coherent with their own n0 epoch. *)
  let certified_round ~telemetry t engine labels round rnd =
    let t0 = Unix.gettimeofday () in
    let n = Pairwise.size engine in
    let n0 = rnd.w_n0 in
    let fr = rnd.w_feature in
    let exact = Pairwise.nn_loo_error_count ~cand:fr engine ~labels in
    let ok = ref true in
    Array.iter
      (fun c ->
        if !ok && c <> fr then begin
          (* [best_of] keeps the first minimum: an earlier candidate wins
             on ties, a later one only by being strictly lower — so the
             flag budget is one tighter for c < fr. *)
          let budget = rnd.w_counts.(c) - exact - (if c < fr then 1 else 0) in
          if budget < 0 then ok := false
          else begin
            let uc = rnd.w_u.(c) in
            let flags = ref 0 in
            (try
               for i = 0 to n0 - 1 do
                 let nearest_new = ref infinity in
                 for p = n0 to n - 1 do
                   let d2 = Pairwise.dist2 ~cand:c engine i p in
                   if d2 < !nearest_new then nearest_new := d2
                 done;
                 if !nearest_new <= uc.(i) *. margin then begin
                   incr flags;
                   if !flags > budget then raise Exit
                 end
               done
             with Exit -> ok := false)
          end
        end)
      (remaining_of engine);
    if not !ok then None
    else begin
      let pick = (fr, err_of_count ~n exact) in
      round_telemetry telemetry ~name:"nn-warm" ~round ~t0 ~candidates:1 (Some pick);
      t.c_certified <- t.c_certified + 1;
      Pairwise.commit engine fr;
      Some pick
    end

  let fresh_round () = { w_feature = -1; w_n0 = 0; w_counts = [||]; w_u = [||] }

  let run_rounds ?(jobs = 1) ?telemetry ~k t engine labels ~use_cache =
    let d = Pairwise.dim engine in
    let rounds = min k d in
    let cached = if use_cache then t.c_rounds else [||] in
    let new_rounds = Array.init rounds (fun _ -> fresh_round ()) in
    let picks = ref [] in
    (* Once a cached winner flips, every later round's cache describes a
       selection path that no longer exists — warm off from there. *)
    let warm = ref use_cache in
    (try
       for round = 0 to rounds - 1 do
         let rnd = new_rounds.(round) in
         let pick =
           if !warm && round < Array.length cached then begin
             let c = cached.(round) in
             rnd.w_feature <- c.w_feature;
             rnd.w_n0 <- c.w_n0;
             rnd.w_counts <- c.w_counts;
             rnd.w_u <- c.w_u;
             match certified_round ~telemetry t engine labels (round + 1) rnd with
             | Some _ as pick -> pick
             | None ->
               let pick = full_round ~jobs ~telemetry t engine labels (round + 1) rnd in
               (match pick with
               | Some (f, _) when f <> c.w_feature -> warm := false
               | _ -> ());
               pick
           end
           else full_round ~jobs ~telemetry t engine labels (round + 1) rnd
         in
         match pick with
         | None -> raise Exit
         | Some p -> picks := p :: !picks
       done
     with Exit -> ());
    t.c_rounds <- new_rounds;
    List.rev !picks

  let bits_equal a b len =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < len do
      (* bit comparison, not [Float.equal]: artifacts print %h hex floats,
         so -0. vs 0. in a scaled coordinate is an observable difference *)
      if not (Int64.equal (Int64.bits_of_float a.(!i)) (Int64.bits_of_float b.(!i)))
      then ok := false;
      incr i
    done;
    !ok

  let ints_equal a b len =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < len do
      if a.(!i) <> b.(!i) then ok := false;
      incr i
    done;
    !ok

  let nn_run ?(jobs = 1) ?telemetry ~k t (ds : Dataset.t) =
    let m, labels = Dataset.points_matrix ds in
    let n = Mat.rows m and d = Mat.cols m in
    let pts = Mat.data m in
    let extends =
      t.c_primed && t.c_k = k && t.c_d = d && n >= t.c_n
      && ints_equal labels t.c_labels t.c_n
      && bits_equal pts t.c_pts (t.c_n * d)
    in
    let engine = Pairwise.create m in
    if extends then t.c_generations <- t.c_generations + 1
    else t.c_primes <- t.c_primes + 1;
    let picks = run_rounds ~jobs ?telemetry ~k t engine labels ~use_cache:extends in
    t.c_primed <- true;
    t.c_k <- k;
    t.c_d <- d;
    t.c_n <- n;
    t.c_pts <- Array.sub pts 0 (n * d);
    t.c_labels <- Array.sub labels 0 n;
    t.c_picks <- picks;
    picks
end
