(* Reduce candidate evaluations in candidate order: the first strictly
   lower error wins, so the pick does not depend on [jobs]. *)
let best_of errs =
  Array.fold_left
    (fun best (f, err) ->
      match best with
      | Some (_, e) when e <= err -> best
      | _ -> Some (f, err))
    None errs

let run ?(jobs = 1) ~n_features ~k error =
  let chosen = ref [] in
  let remaining = ref (Array.init n_features Fun.id) in
  let picks = ref [] in
  for _ = 1 to min k n_features do
    (* Candidate evaluations within a round are independent. *)
    let errs =
      Parallel.map ~jobs (fun f -> (f, error (List.rev (f :: !chosen)))) !remaining
    in
    match best_of errs with
    | None -> ()
    | Some (f, err) ->
      chosen := f :: !chosen;
      remaining :=
        Array.of_list (List.filter (fun g -> g <> f) (Array.to_list !remaining));
      picks := (f, err) :: !picks
  done;
  List.rev !picks

(* ------------------------------------------------------------------ *)
(* Pairwise-engine driver: one running dist² triangle, candidates add
   their own O(n²) contribution, the winner commits once per round. *)

let round_telemetry telemetry ~name ~round ~t0 ~candidates best =
  match telemetry with
  | None -> ()
  | Some sink ->
    let seconds = Unix.gettimeofday () -. t0 in
    let metrics =
      ("candidates", candidates)
      ::
      (match best with
      | None -> []
      | Some (f, err) ->
        (* error as basis points: Telemetry counters are integers *)
        [ ("best_feature", f); ("best_err_bp", int_of_float (err *. 10000.0)) ])
    in
    Telemetry.record sink
      ~pass:(Printf.sprintf "greedy.%s[round %d]" name round)
      ~seconds ~metrics ()

let run_pairwise ?(jobs = 1) ?telemetry ?(name = "select") ~k engine eval =
  let d = Pairwise.dim engine in
  let picks = ref [] in
  (try
     for round = 1 to min k d do
       let t0 = Unix.gettimeofday () in
       let remaining =
         Array.of_list
           (List.filter
              (fun f -> not (Pairwise.is_committed engine f))
              (List.init d Fun.id))
       in
       (* Candidate evaluations only read the committed triangle; the same
          candidate-order reduction as [run] keeps picks jobs-invariant. *)
       let errs = Parallel.map ~jobs (fun f -> (f, eval f)) remaining in
       let best = best_of errs in
       round_telemetry telemetry ~name ~round ~t0 ~candidates:(Array.length remaining)
         best;
       match best with
       | None -> raise Exit
       | Some (f, err) ->
         Pairwise.commit engine f;
         picks := (f, err) :: !picks
     done
   with Exit -> ());
  List.rev !picks

let project (e : Dataset.example) subset =
  Array.of_list (List.map (fun j -> e.Dataset.features.(j)) subset)

let nn_training_error (ds : Dataset.t) subset =
  let pts = Array.map (fun e -> (project e subset, e.Dataset.label)) ds.Dataset.examples in
  if Array.length pts < 2 then 1.0
  else begin
    (* §7.2: for greedy selection the NN algorithm is modified to use the
       single closest point.  Radius 0 makes every query fall through to
       the 1-NN fallback. *)
    let knn = Knn.train ~radius:0.0 ~n_classes:ds.Dataset.n_classes pts in
    let preds = Knn.loo_predictions knn in
    let errs = ref 0 in
    Array.iteri (fun i p -> if p <> snd pts.(i) then incr errs) preds;
    float_of_int !errs /. float_of_int (Array.length pts)
  end

let subsample (ds : Dataset.t) max_examples =
  let n = Dataset.size ds in
  if n <= max_examples then ds
  else begin
    (* Deterministic stride-based subsample preserving class mix. *)
    let stride = float_of_int n /. float_of_int max_examples in
    let keep =
      List.init max_examples (fun i -> int_of_float (float_of_int i *. stride))
    in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

let svm_training_error ?(kernel = Kernel.Rbf 0.5) ?(gamma = 16.0) ?(max_examples = 400)
    (ds : Dataset.t) subset =
  let ds = subsample ds max_examples in
  let pairs =
    Array.map (fun e -> (project e subset, e.Dataset.label)) ds.Dataset.examples
  in
  if Array.length pairs < 2 then 1.0
  else begin
    let model =
      Multiclass.train ~n_classes:ds.Dataset.n_classes ~kernel ~gamma pairs
    in
    let errs = ref 0 in
    Array.iter
      (fun (x, y) -> if Multiclass.predict model x <> y then incr errs)
      pairs;
    float_of_int !errs /. float_of_int (Array.length pairs)
  end

(* ------------------------------------------------------------------ *)
(* Engine-backed selections: same picks as [run] over the brute-force
   objectives above, at O(rounds · candidates · n²) instead of
   O(rounds · candidates · n² · d). *)

let nn_run ?jobs ?telemetry ~k (ds : Dataset.t) =
  let engine, labels = Pairwise.of_dataset ds in
  run_pairwise ?jobs ?telemetry ~name:"nn" ~k engine (fun cand ->
      Pairwise.nn_loo_error ~cand engine ~labels)

let svm_run ?jobs ?telemetry ?(kernel = Kernel.Rbf 0.5) ?(gamma = 16.0)
    ?(max_examples = 400) ~k (ds : Dataset.t) =
  match kernel with
  | Kernel.Rbf rbf_gamma ->
    let ds = subsample ds max_examples in
    let n_classes = ds.Dataset.n_classes in
    let engine, labels = Pairwise.of_dataset ds in
    run_pairwise ?jobs ?telemetry ~name:"svm" ~k engine (fun cand ->
        if Pairwise.size engine < 2 then 1.0
        else begin
          let gram = Pairwise.rbf_gram ~cand ~gamma:rbf_gamma engine in
          let preds = Multiclass.training_predictions ~n_classes ~gamma ~gram labels in
          let errs = ref 0 in
          Array.iteri (fun i p -> if p <> labels.(i) then incr errs) preds;
          float_of_int !errs /. float_of_int (Pairwise.size engine)
        end)
  | Kernel.Linear | Kernel.Poly _ ->
    (* non-RBF kernels are not a function of dist² — keep the generic path *)
    run ?jobs
      ~n_features:(Array.length ds.Dataset.feature_names)
      ~k
      (svm_training_error ~kernel ~gamma ~max_examples ds)
