let run ?(jobs = 1) ~n_features ~k error =
  let chosen = ref [] in
  let remaining = ref (List.init n_features (fun i -> i)) in
  let picks = ref [] in
  for _ = 1 to min k n_features do
    (* Candidate evaluations within a round are independent; the winner is
       reduced in candidate order (first strictly-lower error wins), so the
       pick does not depend on [jobs]. *)
    let errs =
      Parallel.map_list ~jobs (fun f -> (f, error (List.rev (f :: !chosen)))) !remaining
    in
    let best = ref None in
    List.iter
      (fun (f, err) ->
        match !best with
        | Some (_, e) when e <= err -> ()
        | _ -> best := Some (f, err))
      errs;
    match !best with
    | None -> ()
    | Some (f, err) ->
      chosen := f :: !chosen;
      remaining := List.filter (fun g -> g <> f) !remaining;
      picks := (f, err) :: !picks
  done;
  List.rev !picks

let project (e : Dataset.example) subset =
  Array.of_list (List.map (fun j -> e.Dataset.features.(j)) subset)

let nn_training_error (ds : Dataset.t) subset =
  let pts = Array.map (fun e -> (project e subset, e.Dataset.label)) ds.Dataset.examples in
  if Array.length pts < 2 then 1.0
  else begin
    (* §7.2: for greedy selection the NN algorithm is modified to use the
       single closest point.  Radius 0 makes every query fall through to
       the 1-NN fallback. *)
    let knn = Knn.train ~radius:0.0 ~n_classes:ds.Dataset.n_classes pts in
    let preds = Knn.loo_predictions knn in
    let errs = ref 0 in
    Array.iteri (fun i p -> if p <> snd pts.(i) then incr errs) preds;
    float_of_int !errs /. float_of_int (Array.length pts)
  end

let subsample (ds : Dataset.t) max_examples =
  let n = Dataset.size ds in
  if n <= max_examples then ds
  else begin
    (* Deterministic stride-based subsample preserving class mix. *)
    let stride = float_of_int n /. float_of_int max_examples in
    let keep =
      List.init max_examples (fun i -> int_of_float (float_of_int i *. stride))
    in
    {
      ds with
      Dataset.examples = Array.of_list (List.map (fun i -> ds.Dataset.examples.(i)) keep);
    }
  end

let svm_training_error ?(kernel = Kernel.Rbf 0.5) ?(gamma = 16.0) ?(max_examples = 400)
    (ds : Dataset.t) subset =
  let ds = subsample ds max_examples in
  let pairs =
    Array.map (fun e -> (project e subset, e.Dataset.label)) ds.Dataset.examples
  in
  if Array.length pairs < 2 then 1.0
  else begin
    let model =
      Multiclass.train ~n_classes:ds.Dataset.n_classes ~kernel ~gamma pairs
    in
    let errs = ref 0 in
    Array.iter
      (fun (x, y) -> if Multiclass.predict model x <> y then incr errs)
      pairs;
    float_of_int !errs /. float_of_int (Array.length pairs)
  end
