type t = {
  learners : (Decision_tree.t * float) list; (* tree, alpha *)
  classes : int;
}

(* Weighted resampling: draw n examples proportionally to their boosting
   weights, deterministically. *)
let resample rng weights pairs =
  let n = Array.length pairs in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let total = !acc in
  Array.init n (fun _ ->
      let x = Rng.float rng total in
      (* first index with cumulative >= x *)
      let rec bisect lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cumulative.(mid) < x then bisect (mid + 1) hi else bisect lo mid
      in
      pairs.(bisect 0 (n - 1)))

let train ?(rounds = 20) ?(max_depth = 3) ?(seed = 1905) ~n_classes pairs =
  if Array.length pairs = 0 then invalid_arg "Boost.train: empty data";
  let rng = Rng.create seed in
  let n = Array.length pairs in
  let weights = Array.make n (1.0 /. float_of_int n) in
  let learners = ref [] in
  (try
     for _ = 1 to rounds do
       let sample = resample rng weights pairs in
       let tree = Decision_tree.train ~max_depth ~n_classes sample in
       let err = ref 0.0 in
       Array.iteri
         (fun i (x, y) -> if Decision_tree.predict tree x <> y then err := !err +. weights.(i))
         pairs;
       let err = Float.max !err 1e-10 in
       if err >= 0.5 then raise Stdlib.Exit
       else begin
         let alpha = 0.5 *. log ((1.0 -. err) /. err) in
         learners := (tree, alpha) :: !learners;
         (* Reweight: mistakes up, hits down, renormalise. *)
         let z = ref 0.0 in
         Array.iteri
           (fun i (x, y) ->
             let correct = Decision_tree.predict tree x = y in
             weights.(i) <- weights.(i) *. exp (if correct then -.alpha else alpha);
             z := !z +. weights.(i))
           pairs;
         Array.iteri (fun i w -> weights.(i) <- w /. !z) weights;
         if err < 1e-9 then raise Stdlib.Exit
       end
     done
   with Stdlib.Exit -> ());
  (* Always keep at least one learner. *)
  let learners =
    match !learners with
    | [] -> [ (Decision_tree.train ~max_depth ~n_classes pairs, 1.0) ]
    | l -> l
  in
  { learners; classes = n_classes }

let predict t x =
  let votes = Array.make t.classes 0.0 in
  List.iter
    (fun (tree, alpha) ->
      let c = Decision_tree.predict tree x in
      votes.(c) <- votes.(c) +. alpha)
    t.learners;
  Stats.max_index votes

let rounds_used t = List.length t.learners
