(** Mutual information score for feature selection (paper §7.1).

    I(f; u) measures how much knowing feature [f] reduces uncertainty about
    the best unroll factor [u].  Continuous features are discretised with
    equal-frequency binning before the probability mass functions are
    estimated, as in the paper. *)

val score : ?bins:int -> float array -> int array -> float
(** [score values labels] in bits ([bins] defaults to 10). *)

val rank : ?bins:int -> ?jobs:int -> Dataset.t -> (int * float) array
(** Every feature with its MIS, sorted by decreasing score.  Reads the
    flat {!Dataset.points_matrix} and scores features across [jobs]
    worker domains (default 1) with identical output at every value. *)
