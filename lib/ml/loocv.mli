(** Leave-one-out cross-validation (paper §4.2).

    LOOCV iterates N times, removing one example, training on the other
    N−1, and classifying the removed example; the generalization accuracy
    is the fraction classified correctly.  The paper chose it because the
    dataset is small and nearly every example can be used for training.

    Fast paths exist for the classifiers that have them — {!Knn} excludes
    a point from its own vote, {!Lssvm}/{!Multiclass} use the closed-form
    residuals — so this module provides the {e generic} driver (train N
    times) for classifiers without a shortcut, plus a grouped variant for
    the leave-one-benchmark-out protocol of §6.1. *)

val run :
  ?jobs:int ->
  train:((float array * int) array -> 'model) ->
  predict:('model -> float array -> int) ->
  (float array * int) array ->
  int array
(** [run ~train ~predict pairs] returns the LOO prediction for every
    example.  O(N × training cost): use the classifier-specific shortcuts
    when they exist.  Folds run across [jobs] worker domains (default 1);
    the output is identical for every [jobs] value. *)

val accuracy :
  ?jobs:int ->
  train:((float array * int) array -> 'model) ->
  predict:('model -> float array -> int) ->
  (float array * int) array ->
  float
(** Convenience: LOO predictions scored against the labels. *)

val grouped :
  ?jobs:int ->
  groups:string array ->
  train:((float array * int) array -> 'model) ->
  predict:('model -> float array -> int) ->
  (float array * int) array ->
  int array
(** Leave-one-group-out: example [i]'s prediction comes from a model
    trained on every example whose group differs from [groups.(i)] —
    the compile-a-benchmark-you-never-saw protocol.  Trains once per
    distinct group. *)
