(** Kernel functions for the LS-SVM.

    The paper's SVM maps the feature space into a higher-dimensional space
    with a non-linear function — a radial basis kernel in its Figure 2 —
    where classes separate more easily. *)

type t =
  | Linear
  | Rbf of float   (** gamma: k(x,y) = exp (-gamma * |x-y|²) *)
  | Poly of { degree : int; bias : float }

val apply : t -> float array -> float array -> float

val gram : t -> float array array -> Mat.t
(** Symmetric Gram matrix K with K[i][j] = k(x_i, x_j). *)

val name : t -> string
(** e.g. ["rbf(0.03)"]; parseable by {!of_string}. *)

val of_string : string -> t option
