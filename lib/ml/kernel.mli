(** Kernel functions for the LS-SVM.

    The paper's SVM maps the feature space into a higher-dimensional space
    with a non-linear function — a radial basis kernel in its Figure 2 —
    where classes separate more easily. *)

type t =
  | Linear
  | Rbf of float   (** gamma: k(x,y) = exp (-gamma * |x-y|²) *)
  | Poly of { degree : int; bias : float }

val apply : t -> float array -> float array -> float

val gram : ?jobs:int -> t -> float array array -> Mat.t
(** Symmetric Gram matrix K with K[i][j] = k(x_i, x_j), built with the
    blocked flat-matrix kernels ({!Mat.gram} / {!Mat.pairwise_dist2}) over
    [jobs] worker domains (default 1).  Bit-identical across [jobs] and,
    for RBF, to [apply] entry by entry ({!Mat.pairwise_dist2} preserves
    [Vec.dist2] exactly). *)

val gram_matrix : ?jobs:int -> t -> Mat.t -> Mat.t
(** Same, over an already-flat row-major points matrix
    (see {!Dataset.points_matrix}) — no per-row copies. *)

val name : t -> string
(** e.g. ["rbf(0.03)"]; parseable by {!of_string}. *)

val of_string : string -> t option
