type code = One_vs_rest | Dense_random of { bits : int; seed : int }

type t = {
  machines : Lssvm.trained array;
  codewords : int array array; (* class -> ±1 per bit *)
}

let build_codewords code n_classes =
  match code with
  | One_vs_rest ->
    Array.init n_classes (fun c ->
        Array.init n_classes (fun b -> if b = c then 1 else -1))
  | Dense_random { bits; seed } ->
    let rng = Rng.create seed in
    let distinct rows row =
      not (List.exists (fun r -> r = row) rows)
    in
    let rec draw rows remaining =
      if remaining = 0 then List.rev rows
      else begin
        let row = Array.init bits (fun _ -> if Rng.bool rng then 1 else -1) in
        if distinct rows row then draw (row :: rows) (remaining - 1)
        else draw rows remaining
      end
    in
    Array.of_list (draw [] n_classes)

let targets_of_codewords codewords pairs =
  let bits = Array.length codewords.(0) in
  Array.init bits (fun b ->
      Array.map (fun (_, y) -> float_of_int codewords.(y).(b)) pairs)

let train ?jobs ?(code = One_vs_rest) ~n_classes ~kernel ~gamma pairs =
  let codewords = build_codewords code n_classes in
  let points = Array.map fst pairs in
  let target_sets = targets_of_codewords codewords pairs in
  let machines = Lssvm.train_multi ?jobs ~kernel ~gamma points target_sets in
  { machines; codewords }

let train_system ?(code = One_vs_rest) ~n_classes system labels =
  if Array.length labels <> Lssvm.system_size system then
    invalid_arg "Multiclass.train_system: sizes";
  let codewords = build_codewords code n_classes in
  let bits = Array.length codewords.(0) in
  let target_sets =
    Array.init bits (fun b ->
        Array.map (fun y -> float_of_int codewords.(y).(b)) labels)
  in
  { machines = Lssvm.system_train system target_sets; codewords }

(* Soft decoding: score of class c = sum_b codeword(c,b) * f_b; the exact
   Hamming decode on signs is recovered when decisions saturate, and
   margins resolve ties. *)
let decode codewords decisions =
  let best = ref 0 and best_score = ref neg_infinity in
  Array.iteri
    (fun c row ->
      let score = ref 0.0 in
      Array.iteri (fun b bit -> score := !score +. (float_of_int bit *. decisions.(b))) row;
      if !score > !best_score then begin
        best_score := !score;
        best := c
      end)
    codewords;
  !best

let decision_values t x = Lssvm.decision_batch t.machines x

let predict t x = decode t.codewords (decision_values t x)

let loo_predictions ?jobs ?(code = One_vs_rest) ~n_classes ~kernel ~gamma pairs =
  let codewords = build_codewords code n_classes in
  let points = Array.map fst pairs in
  let target_sets = targets_of_codewords codewords pairs in
  let loo = Lssvm.loo_decisions ?jobs ~kernel ~gamma points target_sets in
  let bits = Array.length target_sets in
  Array.init (Array.length pairs) (fun i ->
      decode codewords (Array.init bits (fun b -> loo.(b).(i))))

(* Train on a precomputed Gram matrix and classify the training points in
   place: decision values are K·alpha rows, so no kernel is re-evaluated.
   This is the SVM objective of greedy selection, fed by the pairwise
   engine's incremental RBF Gram. *)
let training_predictions ?(code = One_vs_rest) ~n_classes ~gamma ~gram labels =
  let codewords = build_codewords code n_classes in
  let bits = Array.length codewords.(0) in
  let target_sets =
    Array.init bits (fun b ->
        Array.map (fun y -> float_of_int codewords.(y).(b)) labels)
  in
  let alphas = Lssvm.solve_gram ~gamma gram target_sets in
  let decisions = Array.map (fun a -> Mat.mul_vec gram a) alphas in
  Array.init (Array.length labels) (fun i ->
      decode codewords (Array.init bits (fun b -> decisions.(b).(i))))

let codeword t c = t.codewords.(c)

let export t = (t.codewords, t.machines)

let import ~codewords ~machines =
  if Array.length codewords = 0 then invalid_arg "Multiclass.import";
  { machines; codewords }
