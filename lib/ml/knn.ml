type t = {
  (* Growable flat row-major storage (capacity-doubled): the database is
     an appendable index, so online training adds one labelled point in
     amortised O(d) instead of rebuilding. *)
  mutable data : float array; (* cap × d *)
  mutable labels : int array; (* cap *)
  mutable n : int;
  d : int;
  radius : float;
  classes : int;
}

let train ?(radius = 0.3) ~n_classes pairs =
  if Array.length pairs = 0 then invalid_arg "Knn.train: empty training set";
  let d = Array.length (fst pairs.(0)) in
  let n = Array.length pairs in
  let data = Array.make (n * d) 0.0 in
  Array.iteri
    (fun i (x, _) ->
      if Array.length x <> d then invalid_arg "Knn.train: ragged features";
      Array.blit x 0 data (i * d) d)
    pairs;
  { data; labels = Array.map snd pairs; n; d; radius; classes = n_classes }

let n_classes t = t.classes
let size t = t.n
let radius t = t.radius

let append t (x, label) =
  if Array.length x <> t.d then invalid_arg "Knn.append: dimension mismatch";
  if label < 0 || label >= t.classes then invalid_arg "Knn.append: label out of range";
  if t.n * t.d >= Array.length t.data then begin
    let cap = max 4 (2 * t.n) in
    let data = Array.make (cap * t.d) 0.0 in
    Array.blit t.data 0 data 0 (t.n * t.d);
    let labels = Array.make cap 0 in
    Array.blit t.labels 0 labels 0 t.n;
    t.data <- data;
    t.labels <- labels
  end;
  Array.blit x 0 t.data (t.n * t.d) t.d;
  t.labels.(t.n) <- label;
  t.n <- t.n + 1

(* The used prefix as a Mat view for the blocked kernels.  Exact-capacity
   databases (fresh from [train]) share the buffer; appended ones copy the
   live prefix. *)
let points_matrix t =
  if Array.length t.data = t.n * t.d then Mat.of_flat t.n t.d t.data
  else Mat.of_flat t.n t.d (Array.sub t.data 0 (t.n * t.d))

(* dist²(x, row i) with the same left-to-right summation as [Vec.dist2];
   callers divide by d and take sqrt for the RMS-per-dimension distance. *)
let row_dist2 t x i =
  let d = t.d in
  if Array.length x <> d then invalid_arg "Knn: dimension mismatch";
  let a = t.data in
  let base = i * d in
  let acc = ref 0.0 in
  for j = 0 to d - 1 do
    let dv = x.(j) -. a.(base + j) in
    acc := !acc +. (dv *. dv)
  done;
  !acc

(* Shared vote/fallback logic: [dist i] must yield the RMS-per-dimension
   distance of the query to point [i]; iteration is in index order so ties
   keep the lowest index. *)
let classify_dists t ~skip dist =
  let n = t.n in
  let votes = Array.make t.classes 0 in
  let nearest = ref (-1) in
  let nearest_d = ref infinity in
  let in_radius = ref 0 in
  for i = 0 to n - 1 do
    if i <> skip then begin
      let d = dist i in
      if d < !nearest_d then begin
        nearest_d := d;
        nearest := i
      end;
      if d <= t.radius then begin
        incr in_radius;
        votes.(t.labels.(i)) <- votes.(t.labels.(i)) + 1
      end
    end
  done;
  if !in_radius = 0 then ((if !nearest >= 0 then t.labels.(!nearest) else 0), 0.0)
  else begin
    let best = Stats.max_index (Array.map float_of_int votes) in
    (best, float_of_int votes.(best) /. float_of_int !in_radius)
  end

let classify ?(skip = -1) t x =
  let dims = float_of_int (max t.d 1) in
  classify_dists t ~skip (fun i -> sqrt (row_dist2 t x i /. dims))

let predict t x = fst (classify t x)
let predict_confidence t x = classify t x

let predict_1nn t x =
  let n = t.n in
  let nearest = ref 0 and nearest_d = ref infinity in
  for i = 0 to n - 1 do
    let d2 = row_dist2 t x i in
    (* sqrt/scale are monotone: comparing raw dist² picks the same point *)
    if d2 < !nearest_d then begin
      nearest_d := d2;
      nearest := i
    end
  done;
  t.labels.(!nearest)

let loo_predictions ?jobs t =
  let n = t.n in
  let dims = float_of_int (max t.d 1) in
  (* One blocked O(n²·d) pairwise build replaces n independent O(n·d)
     scans; rows then vote independently across [jobs] domains.  Output is
     identical for every [jobs] value. *)
  let d2 = Mat.pairwise_dist2 ?jobs (points_matrix t) in
  let dd = Mat.data d2 in
  Parallel.tabulate ?jobs n (fun i ->
      let base = i * n in
      fst (classify_dists t ~skip:i (fun k -> sqrt (dd.(base + k) /. dims))))

let export t =
  ( t.radius,
    t.classes,
    Array.init t.n (fun i -> (Array.sub t.data (i * t.d) t.d, t.labels.(i))) )
