type t = {
  points : float array array;
  labels : int array;
  radius : float;
  classes : int;
}

let train ?(radius = 0.3) ~n_classes pairs =
  if Array.length pairs = 0 then invalid_arg "Knn.train: empty training set";
  {
    points = Array.map fst pairs;
    labels = Array.map snd pairs;
    radius;
    classes = n_classes;
  }

let n_classes t = t.classes
let size t = Array.length t.points
let radius t = t.radius

(* RMS-per-dimension distance: Euclidean scaled by 1/sqrt d. *)
let distance x y =
  let d = Array.length x in
  sqrt (Vec.dist2 x y /. float_of_int (max d 1))

let classify ?(skip = -1) t x =
  let votes = Array.make t.classes 0 in
  let nearest = ref (-1) in
  let nearest_d = ref infinity in
  let in_radius = ref 0 in
  Array.iteri
    (fun i p ->
      if i <> skip then begin
        let d = distance x p in
        if d < !nearest_d then begin
          nearest_d := d;
          nearest := i
        end;
        if d <= t.radius then begin
          incr in_radius;
          votes.(t.labels.(i)) <- votes.(t.labels.(i)) + 1
        end
      end)
    t.points;
  if !in_radius = 0 then ((if !nearest >= 0 then t.labels.(!nearest) else 0), 0.0)
  else begin
    let best = Stats.max_index (Array.map float_of_int votes) in
    (best, float_of_int votes.(best) /. float_of_int !in_radius)
  end

let predict t x = fst (classify t x)
let predict_confidence t x = classify t x

let predict_1nn t x =
  let nearest = ref 0 and nearest_d = ref infinity in
  Array.iteri
    (fun i p ->
      let d = distance x p in
      if d < !nearest_d then begin
        nearest_d := d;
        nearest := i
      end)
    t.points;
  t.labels.(!nearest)

let loo_predictions t =
  Array.mapi (fun i p -> fst (classify ~skip:i t p)) t.points

let export t =
  (t.radius, t.classes, Array.mapi (fun i p -> (p, t.labels.(i))) t.points)
