type t = {
  points : Mat.t; (* n × d, row-major — one flat allocation, cache-friendly *)
  labels : int array;
  radius : float;
  classes : int;
}

let train ?(radius = 0.3) ~n_classes pairs =
  if Array.length pairs = 0 then invalid_arg "Knn.train: empty training set";
  let d = Array.length (fst pairs.(0)) in
  let n = Array.length pairs in
  let points = Mat.create n d in
  let a = Mat.data points in
  Array.iteri
    (fun i (x, _) ->
      if Array.length x <> d then invalid_arg "Knn.train: ragged features";
      Array.blit x 0 a (i * d) d)
    pairs;
  { points; labels = Array.map snd pairs; radius; classes = n_classes }

let n_classes t = t.classes
let size t = Array.length t.labels
let radius t = t.radius

(* dist²(x, row i) with the same left-to-right summation as [Vec.dist2];
   callers divide by d and take sqrt for the RMS-per-dimension distance. *)
let row_dist2 t x i =
  let d = Mat.cols t.points in
  if Array.length x <> d then invalid_arg "Knn: dimension mismatch";
  let a = Mat.data t.points in
  let base = i * d in
  let acc = ref 0.0 in
  for j = 0 to d - 1 do
    let dv = x.(j) -. a.(base + j) in
    acc := !acc +. (dv *. dv)
  done;
  !acc

(* Shared vote/fallback logic: [dist i] must yield the RMS-per-dimension
   distance of the query to point [i]; iteration is in index order so ties
   keep the lowest index. *)
let classify_dists t ~skip dist =
  let n = Array.length t.labels in
  let votes = Array.make t.classes 0 in
  let nearest = ref (-1) in
  let nearest_d = ref infinity in
  let in_radius = ref 0 in
  for i = 0 to n - 1 do
    if i <> skip then begin
      let d = dist i in
      if d < !nearest_d then begin
        nearest_d := d;
        nearest := i
      end;
      if d <= t.radius then begin
        incr in_radius;
        votes.(t.labels.(i)) <- votes.(t.labels.(i)) + 1
      end
    end
  done;
  if !in_radius = 0 then ((if !nearest >= 0 then t.labels.(!nearest) else 0), 0.0)
  else begin
    let best = Stats.max_index (Array.map float_of_int votes) in
    (best, float_of_int votes.(best) /. float_of_int !in_radius)
  end

let classify ?(skip = -1) t x =
  let dims = float_of_int (max (Mat.cols t.points) 1) in
  classify_dists t ~skip (fun i -> sqrt (row_dist2 t x i /. dims))

let predict t x = fst (classify t x)
let predict_confidence t x = classify t x

let predict_1nn t x =
  let n = Array.length t.labels in
  let nearest = ref 0 and nearest_d = ref infinity in
  for i = 0 to n - 1 do
    let d2 = row_dist2 t x i in
    (* sqrt/scale are monotone: comparing raw dist² picks the same point *)
    if d2 < !nearest_d then begin
      nearest_d := d2;
      nearest := i
    end
  done;
  t.labels.(!nearest)

let loo_predictions ?jobs t =
  let n = Array.length t.labels in
  let dims = float_of_int (max (Mat.cols t.points) 1) in
  (* One blocked O(n²·d) pairwise build replaces n independent O(n·d)
     scans; rows then vote independently across [jobs] domains.  Output is
     identical for every [jobs] value. *)
  let d2 = Mat.pairwise_dist2 ?jobs t.points in
  let dd = Mat.data d2 in
  Parallel.tabulate ?jobs n (fun i ->
      let base = i * n in
      fst (classify_dists t ~skip:i (fun k -> sqrt (dd.(base + k) /. dims))))

let export t =
  (t.radius, t.classes, Array.mapi (fun i l -> (Mat.row t.points i, l)) t.labels)
