(** AdaBoost.M1 over depth-limited decision trees.

    Monsifrot et al. — the closest related work the paper discusses in §9 —
    predict the binary unroll/don't-unroll decision with {e boosted}
    decision trees.  This implements the classic AdaBoost.M1 ensemble over
    {!Decision_tree} weak learners (trained on weighted resamples drawn
    with a deterministic RNG), so the related-work comparison can use the
    actual algorithm rather than a single tree. *)

type t

val train :
  ?rounds:int -> ?max_depth:int -> ?seed:int -> n_classes:int ->
  (float array * int) array -> t
(** [rounds] defaults to 20, [max_depth] (per weak learner) to 3.
    Training stops early if a weak learner reaches zero weighted error. *)

val predict : t -> float array -> int
(** Weighted vote of the ensemble. *)

val rounds_used : t -> int
