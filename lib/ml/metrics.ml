let check_sizes a b name = if Array.length a <> Array.length b then invalid_arg name

let accuracy ~pred ~truth =
  check_sizes pred truth "Metrics.accuracy";
  if Array.length pred = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iteri (fun i p -> if p = truth.(i) then incr hits) pred;
    float_of_int !hits /. float_of_int (Array.length pred)
  end

let rank_distribution ~pred ~costs =
  check_sizes pred costs "Metrics.rank_distribution";
  let n_classes = Array.length costs.(0) in
  let counts = Array.make n_classes 0 in
  Array.iteri
    (fun i p ->
      let r = Stats.rank_of costs.(i) p in
      counts.(r) <- counts.(r) + 1)
    pred;
  Array.map (fun c -> float_of_int c /. float_of_int (max 1 (Array.length pred))) counts

let mean_cost_ratio ~pred ~costs =
  check_sizes pred costs "Metrics.mean_cost_ratio";
  if Array.length pred = 0 then 1.0
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i p ->
        let best = costs.(i).(Stats.min_index costs.(i)) in
        acc := !acc +. (costs.(i).(p) /. best))
      pred;
    !acc /. float_of_int (Array.length pred)
  end

let rank_cost_penalty ~costs =
  if Array.length costs = 0 then [||]
  else begin
    let n_classes = Array.length costs.(0) in
    let sums = Array.make n_classes 0.0 in
    Array.iter
      (fun cs ->
        let sorted = Array.copy cs in
        Array.sort compare sorted;
        let best = sorted.(0) in
        Array.iteri (fun r c -> sums.(r) <- sums.(r) +. (c /. best)) sorted)
      costs;
    Array.map (fun s -> s /. float_of_int (Array.length costs)) sums
  end

let confusion ~n_classes ~pred ~truth =
  check_sizes pred truth "Metrics.confusion";
  let m = Array.make_matrix n_classes n_classes 0 in
  Array.iteri (fun i p -> m.(truth.(i)).(p) <- m.(truth.(i)).(p) + 1) pred;
  m

let within_of_optimal ~pred ~costs factor =
  check_sizes pred costs "Metrics.within_of_optimal";
  if Array.length pred = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iteri
      (fun i p ->
        let best = costs.(i).(Stats.min_index costs.(i)) in
        if costs.(i).(p) <= best *. factor then incr hits)
      pred;
    float_of_int !hits /. float_of_int (Array.length pred)
  end
