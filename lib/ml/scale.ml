type t = { mean : float array; std : float array }

let fit (ds : Dataset.t) =
  let d = Array.length ds.Dataset.feature_names in
  let mean = Array.make d 0.0 and std = Array.make d 0.0 in
  for j = 0 to d - 1 do
    let col = Dataset.feature_column ds j in
    mean.(j) <- Stats.mean col;
    std.(j) <- Stats.stddev col
  done;
  { mean; std }

let transform t x =
  if Array.length x <> Array.length t.mean then invalid_arg "Scale.transform: dimension";
  Array.mapi
    (fun j v -> if t.std.(j) > 1e-12 then (v -. t.mean.(j)) /. t.std.(j) else 0.0)
    x

let apply t (ds : Dataset.t) =
  {
    ds with
    Dataset.examples =
      Array.map
        (fun e -> { e with Dataset.features = transform t e.Dataset.features })
        ds.Dataset.examples;
  }

let dim t = Array.length t.mean

let export t = (t.mean, t.std)

let import ~mean ~std =
  if Array.length mean <> Array.length std then invalid_arg "Scale.import";
  { mean; std }
