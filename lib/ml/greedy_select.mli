(** Greedy forward feature selection (paper §7.2).

    Starting from the empty set, repeatedly add the feature that minimises
    the training error of a given classifier on the training set, until [k]
    features are chosen.  The classifier is abstracted as a function from a
    feature-index subset to a training error, so the same driver serves the
    1-NN variant the paper uses for near neighbors and the SVM variant. *)

val run :
  ?jobs:int -> n_features:int -> k:int -> (int list -> float) ->
  (int * float) list
(** [run ~n_features ~k error] returns the chosen features in selection
    order, each with the training error achieved once it was added.
    Deterministic: ties pick the lowest feature index, and candidate
    evaluations within a round fan out over [jobs] worker domains
    (default 1) without affecting the picks. *)

val nn_training_error : Dataset.t -> int list -> float
(** Training error of single-nearest-neighbor classification restricted to
    a feature subset — each example classified by its nearest other
    example, as §7.2 describes for NN greedy selection. *)

val svm_training_error :
  ?kernel:Kernel.t -> ?gamma:float -> ?max_examples:int -> Dataset.t ->
  int list -> float
(** Training error of the one-vs-rest LS-SVM on a feature subset.  For
    tractability at most [max_examples] (default 400) examples participate
    (deterministic stratified subsample). *)

(** {1 Pairwise-engine selections}

    The drivers below keep a running n×n dist² triangle ({!Pairwise}):
    each candidate adds only its own O(n²) contribution, and the winner is
    committed once per round — O(rounds·candidates·n²) total instead of
    O(rounds·candidates·n²·d), with identical picks. *)

val run_pairwise :
  ?jobs:int -> ?telemetry:Telemetry.t -> ?name:string -> k:int ->
  Pairwise.t -> (int -> float) -> (int * float) list
(** [run_pairwise ~k engine eval] greedily commits [k] features to
    [engine], scoring each remaining candidate with [eval cand] (which
    should read the engine's committed triangle plus [cand]).  Candidate
    evaluations fan out over [jobs] domains without affecting the picks.
    When [telemetry] is given, each round records a
    [greedy.<name>[round r]] entry (elapsed seconds, candidate count, best
    feature, best error in basis points) — visible via [--telemetry]. *)

val nn_run :
  ?jobs:int -> ?telemetry:Telemetry.t -> k:int -> Dataset.t ->
  (int * float) list
(** Engine-backed greedy NN selection: same picks as [run] over
    {!nn_training_error} (sqrt and the 1/d scale are monotone in dist²),
    without rebuilding the distance matrix per candidate. *)

val svm_run :
  ?jobs:int -> ?telemetry:Telemetry.t -> ?kernel:Kernel.t -> ?gamma:float ->
  ?max_examples:int -> k:int -> Dataset.t -> (int * float) list
(** Engine-backed greedy SVM selection: the incremental RBF Gram feeds
    {!Multiclass.training_predictions}, giving bit-identical picks to
    [run] over {!svm_training_error}.  Non-RBF kernels (no dist² form)
    fall back to the generic path. *)

(** {1 Warm-started NN selection}

    Online retraining repeats greedy NN selection over a dataset that
    usually only {e extends} the previous one (old scaled coordinates
    bit-identical, a few points appended).  {!Warm} caches per-round
    winners with exact integer error counts and, on an extending rerun,
    certifies each cached winner with one exact candidate evaluation plus
    per-candidate flag scans over the appended points — falling back to a
    full round (and, from the
    first flipped winner, to full rounds for the rest) whenever the
    certificate fails, and to a complete re-run whenever the dataset does
    not extend the cached one (coordinate prefixes are compared {e
    bitwise}, so a global re-scaling invalidates the cache as it must).

    {b Identity gate.}  The returned picks are always identical — feature
    indices and error values bit for bit — to a from-scratch {!nn_run} on
    the same dataset; the cache only ever skips work it can prove
    irrelevant, in the engine's own float arithmetic.  Tests enforce the
    equality, including forced winner-flip fallbacks.

    The SVM side of selection has no such bound (its deterministic
    subsample re-strides as n grows, moving every training point), so
    online training re-runs {!svm_run} in full — that asymmetry is the
    warm-start invalidation rule, documented in DESIGN.md §14. *)

module Warm : sig
  type t
  (** Mutable selection cache, reusable across training generations. *)

  val create : unit -> t

  val nn_run :
    ?jobs:int -> ?telemetry:Telemetry.t -> k:int -> t -> Dataset.t ->
    (int * float) list
  (** Identical output to {!nn_run} [?jobs ?telemetry ~k ds], warm-started
      from the cache when the dataset extends the cached one.  Telemetry
      rounds are recorded under [greedy.nn-warm[round r]] with
      [candidates] 1 for a certified round. *)

  (** Instrumentation counters (monotone since [create]): *)

  val primes : t -> int
  (** Complete from-scratch runs (first call, non-extending dataset). *)

  val generations : t -> int
  (** Warm runs over an extending dataset. *)

  val certified_rounds : t -> int
  (** Rounds settled by certification alone (one candidate evaluation). *)

  val full_rounds : t -> int
  (** Rounds that ran a full candidate sweep (priming or fallback). *)
end
