(** Greedy forward feature selection (paper §7.2).

    Starting from the empty set, repeatedly add the feature that minimises
    the training error of a given classifier on the training set, until [k]
    features are chosen.  The classifier is abstracted as a function from a
    feature-index subset to a training error, so the same driver serves the
    1-NN variant the paper uses for near neighbors and the SVM variant. *)

val run :
  ?jobs:int -> n_features:int -> k:int -> (int list -> float) ->
  (int * float) list
(** [run ~n_features ~k error] returns the chosen features in selection
    order, each with the training error achieved once it was added.
    Deterministic: ties pick the lowest feature index, and candidate
    evaluations within a round fan out over [jobs] worker domains
    (default 1) without affecting the picks. *)

val nn_training_error : Dataset.t -> int list -> float
(** Training error of single-nearest-neighbor classification restricted to
    a feature subset — each example classified by its nearest other
    example, as §7.2 describes for NN greedy selection. *)

val svm_training_error :
  ?kernel:Kernel.t -> ?gamma:float -> ?max_examples:int -> Dataset.t ->
  int list -> float
(** Training error of the one-vs-rest LS-SVM on a feature subset.  For
    tractability at most [max_examples] (default 400) examples participate
    (deterministic stratified subsample). *)
