type t = Linear | Rbf of float | Poly of { degree : int; bias : float }

let apply t x y =
  match t with
  | Linear -> Vec.dot x y
  | Rbf gamma -> exp (-.gamma *. Vec.dist2 x y)
  | Poly { degree; bias } -> (Vec.dot x y +. bias) ** float_of_int degree

let gram t points =
  let n = Array.length points in
  let m = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let v = apply t points.(i) points.(j) in
      Mat.set m i j v;
      Mat.set m j i v
    done
  done;
  m

let name = function
  | Linear -> "linear"
  | Rbf g -> Printf.sprintf "rbf(%g)" g
  | Poly { degree; bias } -> Printf.sprintf "poly(%d,%g)" degree bias

let of_string str =
  if str = "linear" then Some Linear
  else
    try Scanf.sscanf str "rbf(%f)" (fun g -> Some (Rbf g))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
      try Scanf.sscanf str "poly(%d,%f)" (fun d b -> Some (Poly { degree = d; bias = b }))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
