type t = Linear | Rbf of float | Poly of { degree : int; bias : float }

let apply t x y =
  match t with
  | Linear -> Vec.dot x y
  | Rbf gamma -> exp (-.gamma *. Vec.dist2 x y)
  | Poly { degree; bias } -> (Vec.dot x y +. bias) ** float_of_int degree

(* Gram matrices go through the blocked flat-matrix kernels: one O(n²·d)
   pass over the row-major points matrix (fanned over [jobs] domains)
   followed by a cheap elementwise map, instead of n²/2 closure calls into
   [apply].  Entries are bit-identical for every [jobs] value. *)
let gram_matrix ?jobs t pm =
  let map_data m f =
    let a = Mat.data m in
    for i = 0 to Array.length a - 1 do
      a.(i) <- f a.(i)
    done;
    m
  in
  match t with
  | Linear -> Mat.gram ?jobs pm
  | Rbf gamma -> map_data (Mat.pairwise_dist2 ?jobs pm) (fun d2 -> exp (-.gamma *. d2))
  | Poly { degree; bias } ->
    map_data (Mat.gram ?jobs pm) (fun dot -> (dot +. bias) ** float_of_int degree)

let gram ?jobs t points = gram_matrix ?jobs t (Mat.of_rows points)

let name = function
  | Linear -> "linear"
  | Rbf g -> Printf.sprintf "rbf(%g)" g
  | Poly { degree; bias } -> Printf.sprintf "poly(%d,%g)" degree bias

let of_string str =
  if str = "linear" then Some Linear
  else
    try Scanf.sscanf str "rbf(%f)" (fun g -> Some (Rbf g))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
      try Scanf.sscanf str "poly(%d,%f)" (fun d b -> Some (Poly { degree = d; bias = b }))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
