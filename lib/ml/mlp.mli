(** From-scratch multi-layer perceptron classifier.

    A softmax cross-entropy head over tanh hidden layers, trained with
    mini-batch SGD plus momentum.  Everything is deterministic from the
    seed: weights initialise from {!Rng.derive}[ seed "mlp-init" layer],
    the per-epoch shuffle derives from [(seed, "mlp-epoch", epoch)], and
    the early-stopping holdout split is {e content-keyed} — an example's
    holdout membership is a pure function of [(seed, features, label)],
    so the split survives dataset append-order changes.

    Parallelism follows the repo contract: per-example forward/backward
    passes fan out over {!Parallel.tabulate} and land at their input
    index; gradient reduction and the weight update itself are
    sequential, in index order, so trained weights are bit-identical at
    every [jobs] value.

    All parameters live in one flat [float array] (per layer: the
    [fan_out × fan_in] weight block row-major, then [fan_out] biases).
    The flat layout makes momentum buffers, best-weight snapshots and
    the finite-difference gradient checker one-[Array.blit] affairs. *)

type t

type hyper = {
  hidden : int array;  (** hidden layer widths, e.g. [\[|24|\]] *)
  epochs : int;        (** maximum training epochs *)
  batch : int;         (** mini-batch size *)
  lr : float;          (** learning rate *)
  momentum : float;    (** classical momentum coefficient *)
  holdout : float;     (** holdout fraction in \[0, 1) for early stopping *)
  patience : int;      (** epochs without holdout improvement before stopping *)
}

val default_hyper : hyper

type stats = {
  epochs_run : int;          (** epochs actually executed *)
  final_loss : float;        (** mean training cross-entropy of the last epoch *)
  holdout_accuracy : float;  (** accuracy of the returned weights on the
                                 holdout split; [nan] when the split is empty *)
  holdout_size : int;
}

val train :
  ?jobs:int ->
  ?telemetry:Telemetry.t ->
  seed:int ->
  hyper:hyper ->
  n_classes:int ->
  (float array * int) array ->
  t * stats
(** [train ~seed ~hyper ~n_classes pairs] fits a classifier on
    (features, label) pairs with labels in \[0, n_classes).  Raises
    [Invalid_argument] on an empty training set or out-of-range labels.
    With [telemetry], records one ["mlp"] pass (epochs, parameter count,
    final loss and holdout accuracy as scaled integers). *)

val predict : t -> float array -> int
(** Class with the highest logit; ties break toward the lowest index. *)

val decision_values : t -> float array -> float array
(** Raw output-layer logits (pre-softmax), one per class. *)

val n_classes : t -> int

val holdout_member : seed:int -> holdout:float -> float array -> int -> bool
(** The content-keyed holdout predicate used by {!train}, exposed so tests
    can assert append-order stability. *)

(** {1 Serialisation} *)

val export : t -> int array * float array array * float array array
(** [(dims, weights, biases)]: [dims] is [[|d; h…; k|]]; [weights.(l)] is
    the layer-[l] weight block row-major ([dims.(l+1) * dims.(l)] floats);
    [biases.(l)] has [dims.(l+1)] floats. *)

val import :
  dims:int array -> weights:float array array -> biases:float array array -> t
(** Inverse of {!export}.  Raises [Invalid_argument] on shape mismatch. *)

(** {1 Test hooks — the gradient-check harness} *)

val init : seed:int -> dims:int array -> t
(** Freshly initialised network (Glorot-uniform weights, zero biases). *)

val dims : t -> int array
val param_count : t -> int
val get_param : t -> int -> float
val set_param : t -> int -> float -> unit

val example_loss : t -> float array -> int -> float
(** Cross-entropy of one example under the current parameters. *)

val example_gradient : t -> float array -> int -> float array
(** Analytic gradient of {!example_loss} with respect to every parameter,
    flattened with the same indexing as {!get_param}. *)
