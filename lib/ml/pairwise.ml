(* Incremental pairwise-distance engine.

   Squared Euclidean distance decomposes additively over features:

     dist²(x, y; S ∪ {f}) = dist²(x, y; S) + (x_f − y_f)²

   so greedy forward selection never needs to rebuild an n×n distance (or
   RBF Gram) matrix from raw features.  The engine keeps the running dist²
   of the *committed* subset in a single strict upper triangle
   (n(n−1)/2 floats); evaluating a candidate feature adds only that
   feature's pairwise contribution on the fly — O(n²) instead of
   O(n²·|S|) — and the winner's contribution is folded in once per round
   by {!commit}.

   Storage is *column-block*: pair (i, k) with i < k lives at
   k(k−1)/2 + i, i.e. all pairs whose larger index is k form one
   contiguous block.  Appending point n therefore appends exactly one
   block of n committed-subset distances at the end of the triangle —
   O(n·|S|) via {!append} — with every existing entry untouched, which is
   what makes the engine reusable across online-training generations.

   Determinism contract: contributions are accumulated in commit order,
   with the candidate term added last, which is exactly the left-to-right
   summation order of [Vec.dist2] over a feature subset projected in
   selection order.  Committed-plus-candidate distances are therefore
   bit-identical to the direct recomputation the engine replaces — and
   {!append} folds the committed contributions of the new pairs in the
   same commit order, so an appended engine is bit-identical to one built
   from scratch over the extended point set.  Nothing here depends on
   [jobs] — candidate evaluations may fan out over domains that only
   *read* the triangle. *)

type t = {
  d : int;
  mutable pts : float array; (* cap rows × d feature columns, row-major *)
  mutable n : int;
  mutable cap : int;
  mutable tri : float array; (* strict upper triangle of committed dist², column-block *)
  committed : bool array; (* per-feature committed flag *)
  mutable committed_rev : int list; (* most recently committed first *)
}

let tri_len n = n * (n - 1) / 2

let create points =
  let n = Mat.rows points in
  let d = Mat.cols points in
  {
    d;
    pts = Array.sub (Mat.data points) 0 (n * d);
    n;
    cap = n;
    tri = Array.make (tri_len n) 0.0;
    committed = Array.make d false;
    committed_rev = [];
  }

let of_dataset ds =
  let m, labels = Dataset.points_matrix ds in
  (create m, labels)

let size t = t.n
let dim t = t.d
let committed t = List.rev t.committed_rev
let is_committed t j = t.committed.(j)

let check_feature t name j =
  if j < 0 || j >= dim t then
    invalid_arg (Printf.sprintf "Pairwise.%s: feature %d out of range" name j)

let commit t j =
  check_feature t "commit" j;
  if t.committed.(j) then invalid_arg "Pairwise.commit: feature already committed";
  let p = t.pts and d = t.d in
  (* One contiguous copy of the feature column keeps the triangle walk
     streaming instead of striding through the points matrix per pair. *)
  let col = Array.init t.n (fun r -> p.((r * d) + j)) in
  let idx = ref 0 in
  for k = 1 to t.n - 1 do
    let vk = col.(k) in
    for i = 0 to k - 1 do
      let dv = col.(i) -. vk in
      t.tri.(!idx) <- t.tri.(!idx) +. (dv *. dv);
      incr idx
    done
  done;
  t.committed.(j) <- true;
  t.committed_rev <- j :: t.committed_rev

let append t x =
  if Array.length x <> t.d then invalid_arg "Pairwise.append: feature dimension";
  let n = t.n and d = t.d in
  if n >= t.cap then begin
    let cap = max 4 (2 * t.cap) in
    let pts = Array.make (cap * d) 0.0 in
    Array.blit t.pts 0 pts 0 (n * d);
    let tri = Array.make (tri_len cap) 0.0 in
    Array.blit t.tri 0 tri 0 (tri_len n);
    t.pts <- pts;
    t.tri <- tri;
    t.cap <- cap
  end;
  Array.blit x 0 t.pts (n * d) d;
  (* New block: dist²(i, n) over the committed subset, contributions folded
     feature by feature in commit order — entry-wise the same accumulation
     sequence {!commit} would have produced, hence bit-identical to a
     from-scratch engine over the extended points. *)
  let base = tri_len n in
  Array.fill t.tri base n 0.0;
  List.iter
    (fun f ->
      let vn = x.(f) in
      for i = 0 to n - 1 do
        let dv = t.pts.((i * d) + f) -. vn in
        t.tri.(base + i) <- t.tri.(base + i) +. (dv *. dv)
      done)
    (List.rev t.committed_rev);
  t.n <- n + 1

let iter_pairs ?cand t f =
  (match cand with
  | None -> ()
  | Some j ->
    check_feature t "iter_pairs" j;
    if t.committed.(j) then invalid_arg "Pairwise.iter_pairs: candidate already committed");
  match cand with
  | None ->
    let idx = ref 0 in
    for k = 1 to t.n - 1 do
      for i = 0 to k - 1 do
        f i k t.tri.(!idx);
        incr idx
      done
    done
  | Some j ->
    let p = t.pts and d = t.d in
    let idx = ref 0 in
    for k = 1 to t.n - 1 do
      let vk = p.((k * d) + j) in
      for i = 0 to k - 1 do
        let dv = p.((i * d) + j) -. vk in
        f i k (t.tri.(!idx) +. (dv *. dv));
        incr idx
      done
    done

let dist2 ?cand t i k =
  if i = k then 0.0
  else begin
    let i, k = if i < k then (i, k) else (k, i) in
    (* column-block strict upper triangle: block k holds pairs (0..k-1, k) *)
    let idx = (k * (k - 1) / 2) + i in
    let base = t.tri.(idx) in
    match cand with
    | None -> base
    | Some j ->
      check_feature t "dist2" j;
      let p = t.pts and d = t.d in
      let dv = p.((i * d) + j) -. p.((k * d) + j) in
      base +. (dv *. dv)
  end

let dist2_matrix ?cand t =
  let m = Mat.create t.n t.n in
  let a = Mat.data m in
  iter_pairs ?cand t (fun i k d2 ->
      a.((i * t.n) + k) <- d2;
      a.((k * t.n) + i) <- d2);
  m

let rbf_gram ?cand ~gamma t =
  let m = Mat.create t.n t.n in
  let a = Mat.data m in
  for i = 0 to t.n - 1 do
    a.((i * t.n) + i) <- 1.0
  done;
  iter_pairs ?cand t (fun i k d2 ->
      let v = exp (-.gamma *. d2) in
      a.((i * t.n) + k) <- v;
      a.((k * t.n) + i) <- v);
  m

let nn_loo_error_count ?cand ?nearest_out t ~labels =
  if Array.length labels <> t.n then invalid_arg "Pairwise.nn_loo_error_count: labels";
  (match nearest_out with
  | Some out when Array.length out <> t.n ->
    invalid_arg "Pairwise.nn_loo_error_count: nearest_out"
  | _ -> ());
  if t.n < 2 then begin
    (match nearest_out with Some out -> Array.fill out 0 t.n infinity | None -> ());
    0
  end
  else begin
    (* Leave-one-out training error of [Knn] at radius 0 — the greedy-NN
       objective (§7.2) — reproduced bit for bit.  Each query sees its
       neighbors in increasing index order and strict [<] keeps the first
       minimum, the same tie-breaking as [Knn]'s linear scan; comparing
       raw dist² instead of Knn's sqrt(dist²/d) picks the same neighbor
       because sqrt and the division by the subset size are monotone.
       (Under the column-block walk a query q still meets 0..q−1 in order
       inside its own block, then q+1.. in ascending later blocks, so the
       first-minimum tie-break is unchanged.)  Exact duplicates
       (dist² = 0) matter: Knn's radius test is [<=], so at radius 0 the
       zero-distance neighbors majority-vote instead of the single nearest
       deciding. *)
    let n_classes = 1 + Array.fold_left max 0 labels in
    let nearest = Array.make t.n (-1) in
    let nearest_d = Array.make t.n infinity in
    let dup_votes = Array.make (t.n * n_classes) 0 in
    let dup_count = Array.make t.n 0 in
    (* Specialised triangle walks (not {!iter_pairs}): this runs once per
       candidate per round, and a per-pair closure call costs more than
       the pair's own arithmetic.  Query [k]'s running minimum lives in
       locals across its block; updates for the smaller index [i] go
       straight to the arrays. *)
    let tri = t.tri in
    let[@inline] update i k d2 =
      if d2 < nearest_d.(i) then begin
        nearest_d.(i) <- d2;
        nearest.(i) <- k
      end;
      if d2 = 0.0 then begin
        dup_count.(i) <- dup_count.(i) + 1;
        dup_votes.((i * n_classes) + labels.(k)) <-
          dup_votes.((i * n_classes) + labels.(k)) + 1;
        dup_count.(k) <- dup_count.(k) + 1;
        dup_votes.((k * n_classes) + labels.(i)) <-
          dup_votes.((k * n_classes) + labels.(i)) + 1
      end
    in
    (match cand with
    | None ->
      let idx = ref 0 in
      for k = 1 to t.n - 1 do
        let best = ref nearest_d.(k) and best_i = ref nearest.(k) in
        for i = 0 to k - 1 do
          let d2 = tri.(!idx) in
          incr idx;
          if d2 < !best then begin
            best := d2;
            best_i := i
          end;
          update i k d2
        done;
        nearest_d.(k) <- !best;
        nearest.(k) <- !best_i
      done
    | Some j ->
      check_feature t "nn_loo_error" j;
      if t.committed.(j) then invalid_arg "Pairwise.nn_loo_error: candidate already committed";
      let p = t.pts and d = t.d in
      (* One contiguous copy of the candidate column: the triangle walk
         then streams it sequentially instead of striding through the
         whole points matrix once per row. *)
      let col = Array.init t.n (fun k -> p.((k * d) + j)) in
      let idx = ref 0 in
      for k = 1 to t.n - 1 do
        let vk = col.(k) in
        let best = ref nearest_d.(k) and best_i = ref nearest.(k) in
        for i = 0 to k - 1 do
          let dv = col.(i) -. vk in
          let d2 = tri.(!idx) +. (dv *. dv) in
          incr idx;
          if d2 < !best then begin
            best := d2;
            best_i := i
          end;
          update i k d2
        done;
        nearest_d.(k) <- !best;
        nearest.(k) <- !best_i
      done);
    (* The per-query nearest distances fall out of the walk for free;
       [Greedy_select.Warm] caches them as displacement thresholds. *)
    (match nearest_out with
    | Some out -> Array.blit nearest_d 0 out 0 t.n
    | None -> ());
    let errs = ref 0 in
    for i = 0 to t.n - 1 do
      let pred =
        if dup_count.(i) = 0 then labels.(nearest.(i))
        else
          Stats.max_index
            (Array.init n_classes (fun c -> float_of_int dup_votes.((i * n_classes) + c)))
      in
      if pred <> labels.(i) then incr errs
    done;
    !errs
  end

let nn_loo_error ?cand t ~labels =
  if Array.length labels <> t.n then invalid_arg "Pairwise.nn_loo_error: labels";
  if t.n < 2 then 1.0
  else float_of_int (nn_loo_error_count ?cand t ~labels) /. float_of_int t.n
