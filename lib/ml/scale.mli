(** Feature normalisation.

    The paper normalises feature vectors "to weigh all features equally" so
    that large-valued features like trip count do not dominate the distance
    metric (§5.1).  We use z-scoring: subtract the training mean, divide by
    the training standard deviation (constant features map to 0). *)

type t

val fit : Dataset.t -> t
(** Learn means and standard deviations from a dataset. *)

val transform : t -> float array -> float array
(** Normalise one feature vector with training statistics. *)

val apply : t -> Dataset.t -> Dataset.t
(** Normalise every example. *)

val dim : t -> int

val export : t -> float array * float array
(** (means, standard deviations) — for persistence. *)

val import : mean:float array -> std:float array -> t
