(** Radius-based near-neighbor classification (paper §5.1).

    Training just populates a database.  Prediction collects every training
    point within a fixed radius of the query and returns the majority label;
    when no neighbor falls inside the radius — or the vote ties with no
    clear winner — the label of the single nearest point is used, exactly
    the fallback the paper describes.  Distances are root-mean-square per
    dimension (Euclidean / √d) so a given radius means the same thing
    regardless of how many features are selected. *)

type t

val train : ?radius:float -> n_classes:int -> (float array * int) array -> t
(** Build the database.  [radius] defaults to 0.3 (the paper's value,
    chosen by inspecting query distances). *)

val n_classes : t -> int
val size : t -> int
val radius : t -> float

val append : t -> float array * int -> unit
(** [append t (x, label)] adds one labelled point to the database in
    amortised O(d) — the appendable-index path online training uses
    instead of rebuilding.  The resulting database behaves bit-identically
    (predictions, LOO, {!export}) to [train] over the extended pair
    array.  Raises [Invalid_argument] on a dimension mismatch or a label
    outside [0, n_classes). *)

val predict : t -> float array -> int
(** Majority label within the radius, 1-NN fallback. *)

val predict_confidence : t -> float array -> int * float
(** Prediction plus confidence: the fraction of in-radius neighbors voting
    for the winner (0 when the 1-NN fallback fired) — the outlier-detection
    signal sketched in §5.1. *)

val predict_1nn : t -> float array -> int
(** Single-nearest-neighbor label (used by greedy feature selection). *)

val loo_predictions : ?jobs:int -> t -> int array
(** Leave-one-out predictions over the training set: example [i] is
    classified with itself excluded from the database.  One blocked
    O(n²·d) pairwise-distance build (see {!Mat.pairwise_dist2}) replaces
    the n independent scans; rows vote across [jobs] worker domains
    (default 1) with identical output at every value. *)

val export : t -> float * int * (float array * int) array
(** (radius, n_classes, database) — for persistence. *)
