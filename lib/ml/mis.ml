(* Equal-frequency binning: bin edges at quantiles, ties collapsed. *)
let binize bins values =
  let n = Array.length values in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let edges =
    List.init (bins - 1) (fun i ->
        sorted.((i + 1) * n / bins))
    |> List.sort_uniq compare
  in
  let edges = Array.of_list edges in
  Array.map
    (fun v ->
      (* index of the first edge greater than v *)
      let rec go i = if i >= Array.length edges || v < edges.(i) then i else go (i + 1) in
      go 0)
    values

let score ?(bins = 10) values labels =
  if Array.length values <> Array.length labels then invalid_arg "Mis.score: sizes";
  let n = Array.length values in
  if n = 0 then 0.0
  else begin
    let binned = binize bins values in
    let n_bins = 1 + Array.fold_left max 0 binned in
    let n_labels = 1 + Array.fold_left max 0 labels in
    let joint = Array.make_matrix n_bins n_labels 0 in
    let pf = Array.make n_bins 0 in
    let pu = Array.make n_labels 0 in
    Array.iteri
      (fun i b ->
        let y = labels.(i) in
        joint.(b).(y) <- joint.(b).(y) + 1;
        pf.(b) <- pf.(b) + 1;
        pu.(y) <- pu.(y) + 1)
      binned;
    let fn = float_of_int n in
    let acc = ref 0.0 in
    for b = 0 to n_bins - 1 do
      for y = 0 to n_labels - 1 do
        if joint.(b).(y) > 0 then begin
          let pxy = float_of_int joint.(b).(y) /. fn in
          let px = float_of_int pf.(b) /. fn in
          let py = float_of_int pu.(y) /. fn in
          acc := !acc +. (pxy *. (log (pxy /. (px *. py)) /. log 2.0))
        end
      done
    done;
    !acc
  end

let rank ?bins ?(jobs = 1) (ds : Dataset.t) =
  (* One flat matrix read instead of per-feature example walks; features
     score independently across [jobs] domains (deterministic: scores land
     at their feature's index before the sort). *)
  let m, labels = Dataset.points_matrix ds in
  let n = Mat.rows m and d = Mat.cols m in
  let a = Mat.data m in
  let scored =
    Parallel.tabulate ~jobs d (fun j ->
        let col = Array.init n (fun i -> a.((i * d) + j)) in
        (j, score ?bins col labels))
  in
  Array.sort (fun (_, x) (_, y) -> compare y x) scored;
  scored
