(** Depth-bounded CART decision tree.

    Supports the related-work comparison with Monsifrot et al. (paper §9),
    who predict the {e binary} unroll / don't-unroll decision with boosted
    decision trees.  Splits minimise Gini impurity over axis-aligned
    thresholds; also usable as a multi-class baseline. *)

type t

val train :
  ?max_depth:int -> ?min_leaf:int -> n_classes:int ->
  (float array * int) array -> t
(** [max_depth] defaults to 6, [min_leaf] to 4. *)

val predict : t -> float array -> int

val depth : t -> int
val leaves : t -> int
