(** Evaluation metrics for unroll-factor prediction (paper Table 2).

    Beyond plain accuracy, predictions are judged by the {e rank} of the
    chosen factor among the measured per-class costs (optimal, second-best,
    …, worst) and by the runtime penalty of mispredicting relative to the
    optimal choice — the "Cost" column of Table 2. *)

val accuracy : pred:int array -> truth:int array -> float

val rank_distribution : pred:int array -> costs:float array array -> float array
(** Element [r] is the fraction of predictions whose measured cost ranks
    [r]-th best (0 = optimal) for that example. *)

val mean_cost_ratio : pred:int array -> costs:float array array -> float
(** Average of cost(prediction) / cost(optimal) — ≥ 1.0. *)

val rank_cost_penalty : costs:float array array -> float array
(** A property of the dataset, not of a predictor: element [r] is the
    average over examples of cost(r-th best factor) / cost(optimal) — the
    paper's Cost column (1x for rank 0, growing towards the worst rank). *)

val confusion : n_classes:int -> pred:int array -> truth:int array -> int array array
(** [confusion.(truth).(pred)] counts. *)

val within_of_optimal : pred:int array -> costs:float array array -> float -> float
(** Fraction of predictions whose cost is within the multiplicative factor
    (e.g. 1.07 for "within 7% of optimal"). *)
