type t = { axes : float array array }

let mean_of points idxs d =
  let m = Array.make d 0.0 in
  List.iter (fun i -> Array.iteri (fun j v -> m.(j) <- m.(j) +. v) points.(i)) idxs;
  let n = float_of_int (List.length idxs) in
  Array.map (fun v -> v /. n) m

let fit ?(dims = 2) pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Lda.fit: empty data";
  let d = Array.length (fst pairs.(0)) in
  let points = Array.map fst pairs in
  let labels = Array.map snd pairs in
  let classes = 1 + Array.fold_left max 0 labels in
  let by_class =
    Array.init classes (fun c ->
        List.filteri (fun i _ -> labels.(i) = c) (List.init n (fun i -> i)))
  in
  let global_mean = mean_of points (List.init n (fun i -> i)) d in
  let sw = Mat.create d d and sb = Mat.create d d in
  Array.iter
    (fun idxs ->
      if idxs <> [] then begin
        let mu = mean_of points idxs d in
        List.iter
          (fun i ->
            let x = points.(i) in
            for a = 0 to d - 1 do
              for b = 0 to d - 1 do
                Mat.set sw a b
                  (Mat.get sw a b +. ((x.(a) -. mu.(a)) *. (x.(b) -. mu.(b))))
              done
            done)
          idxs;
        let nc = float_of_int (List.length idxs) in
        for a = 0 to d - 1 do
          for b = 0 to d - 1 do
            Mat.set sb a b
              (Mat.get sb a b
              +. (nc *. (mu.(a) -. global_mean.(a)) *. (mu.(b) -. global_mean.(b))))
          done
        done
      end)
    by_class;
  (* Ridge so Sw is invertible, then solve the symmetric generalised
     eigenproblem via Sw^{-1/2} Sb Sw^{-1/2}. *)
  Mat.add_diagonal sw (1e-6 *. float_of_int n);
  let vals, vecs = Eigen.symmetric sw in
  let inv_sqrt = Mat.init d d (fun i j ->
      (* Sw^{-1/2} = V diag(1/sqrt(lambda)) V^T *)
      let acc = ref 0.0 in
      for k = 0 to d - 1 do
        let lk = max vals.(k) 1e-9 in
        acc := !acc +. (Mat.get vecs i k *. Mat.get vecs j k /. sqrt lk)
      done;
      !acc)
  in
  let m = Mat.mul inv_sqrt (Mat.mul sb inv_sqrt) in
  let top = Eigen.top_eigenvectors m (min dims d) in
  (* Back-transform: w = Sw^{-1/2} v. *)
  let axes = Array.map (fun v -> Mat.mul_vec inv_sqrt v) top in
  { axes }

let project t x = Array.map (fun axis -> Vec.dot axis x) t.axes

let axes t = t.axes
