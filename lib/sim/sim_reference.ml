(* Reference simulator: a line-for-line copy of the original
   (pre-fast-path) implementation.  It is the oracle the property tests
   compare [Simulator] against bit-for-bit, and the naive baseline
   [bench/bench_sim.ml] times the fast path against.  Keep it dumb: no
   memoised dependence graphs, no fast-forwarding, per-iteration fetch
   probing — any change here weakens the equivalence evidence. *)

type state = {
  machine : Machine.t;
  l1d : Cache_reference.t;
  l1i : Cache_reference.t;
  l2 : Cache_reference.t;
}

let create_state machine =
  {
    machine;
    l1d = Cache_reference.create machine.Machine.l1d;
    l1i = Cache_reference.create machine.Machine.l1i;
    l2 = Cache_reference.create machine.Machine.l2;
  }

let reset_state s =
  Cache_reference.reset s.l1d;
  Cache_reference.reset s.l1i;
  Cache_reference.reset s.l2

type stats = {
  mutable issue_cycles : int;
  mutable data_stall_cycles : int;
  mutable fetch_stall_cycles : int;
  mutable branch_cycles : int;
  mutable entry_overhead_cycles : int;
  mutable pipeline_fill_cycles : int;
}

let empty_stats () =
  {
    issue_cycles = 0;
    data_stall_cycles = 0;
    fetch_stall_cycles = 0;
    branch_cycles = 0;
    entry_overhead_cycles = 0;
    pipeline_fill_cycles = 0;
  }

type executable = Pipeline_state.executable = {
  schedules : (Schedule.t * int * int) list;
  unroll_factor : int;
  total_code_bytes : int;
  outer_trip : int;
  exit_prob : float;
  entry_extra_cycles : int;
  total_spills : int;
}

let of_unrolled machine ~swp (u : Unroll.t) ~outer_trip ~exit_prob =
  Pipeline.of_unrolled machine ~swp u ~outer_trip ~exit_prob

let compile ?cache machine ~swp loop u = Pipeline.compile ?cache machine ~swp loop u

(* Deterministic address scramble for indirect references. *)
let indirect_index uid iter length =
  let h = (uid * 2654435761) + (iter * 40503) in
  let h = (h lxor (h lsr 13)) * 97 in
  (h land max_int) mod length

let code_base = 0x40000000
let scratch_base = 0x70000000

(* Between two entries of a loop nest the rest of the program runs: it
   displaces essentially all of the loop's code from the I-cache (hundreds
   of other basic blocks execute) and part of its data from the D-cache. *)
let inter_entry_dirty_ilines = 384
let inter_entry_dirty_dlines = 96

(* Pre-resolved per-op execution record. *)
type exec_op = {
  cycle : int;
  dst_id : int;        (* -1 = none *)
  src_ids : int array;
  base_latency : int;
  consumer_slack : int;
  (* schedule slack beyond the base latency before any consumer needs the
     result; a cache-miss penalty up to this amount is hidden *)
  mem : mem_info option;
}

and mem_info = {
  is_load : bool;
  addr_base : int;
  elem : int;
  arr_len : int;
  stride : int;
  offset : int;
  indirect : bool;
  uid : int;
}

let prepare (sched : Schedule.t) =
  let m = sched.Schedule.machine in
  let loop = sched.Schedule.loop in
  let window =
    match sched.Schedule.kind with
    | Schedule.Pipelined { ii; _ } -> ii
    | Schedule.Straight -> 0
  in
  let deps = Deps.build ~latency:(Machine.latency m) loop in
  let slack_of pos =
    let t0 = sched.Schedule.assignment.(pos) in
    let lat = Machine.latency m loop.Loop.body.(pos) in
    List.fold_left
      (fun acc (e : Deps.edge) ->
        if e.Deps.dkind = Deps.Reg_flow then
          let consumer = sched.Schedule.assignment.(e.Deps.dst) + (window * e.Deps.distance) in
          min acc (max 0 (consumer - t0 - lat))
        else acc)
      max_int deps.Deps.succs.(pos)
    |> fun s -> if s = max_int then window else s
  in
  let order =
    let idx = Array.init (Array.length loop.Loop.body) (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (sched.Schedule.assignment.(a), a) (sched.Schedule.assignment.(b), b))
      idx;
    idx
  in
  let resolve pos =
    let op = loop.Loop.body.(pos) in
    let mem =
      match Op.mref op with
      | Some r ->
        let a = loop.Loop.arrays.(r.Op.array) in
        Some
          {
            is_load = Op.is_load op;
            addr_base = a.Loop.base;
            elem = a.Loop.elem_size;
            arr_len = max a.Loop.length 1;
            stride = r.Op.stride;
            offset = r.Op.offset;
            indirect = (r.Op.mkind = Op.Indirect);
            uid = op.Op.uid;
          }
      | None -> None
    in
    {
      cycle = sched.Schedule.assignment.(pos);
      dst_id = (match op.Op.dst with Some r -> r.Op.id | None -> -1);
      src_ids = Array.of_list (List.map (fun (r : Op.reg) -> r.Op.id) (Op.uses op));
      base_latency = Machine.latency m op;
      consumer_slack = slack_of pos;
      mem;
    }
  in
  Array.map resolve order

(* Data access through the hierarchy; returns extra stall cycles beyond the
   base latency (0 for stores: they retire through the store buffer but
   still allocate lines). *)
let data_access st ~is_load addr =
  let m = st.machine in
  if Cache_reference.access st.l1d addr then 0
  else begin
    let extra = if Cache_reference.access st.l2 addr then m.Machine.l2_hit_extra else m.Machine.mem_extra in
    if is_load then extra else 0
  end

let fetch_cost st ~code_bytes =
  let m = st.machine in
  let line = m.Machine.l1i.Machine.line_bytes in
  let nlines = max 1 ((code_bytes + line - 1) / line) in
  let cost = ref 0 in
  for l = 0 to nlines - 1 do
    let addr = code_base + (l * line) in
    if not (Cache_reference.access st.l1i addr) then begin
      cost := !cost + m.Machine.l1i_miss_extra;
      if not (Cache_reference.access st.l2 addr) then cost := !cost + (m.Machine.mem_extra / 4)
    end
  done;
  !cost

let dirty_caches st =
  let dl = Cache_reference.line_bytes st.l1d and il = Cache_reference.line_bytes st.l1i in
  for l = 0 to inter_entry_dirty_dlines - 1 do
    ignore (Cache_reference.access st.l1d (scratch_base + (l * dl)))
  done;
  for l = 0 to inter_entry_dirty_ilines - 1 do
    ignore (Cache_reference.access st.l1i (scratch_base + (l * il)))
  done

let address mi iter =
  if mi.indirect then mi.addr_base + (mi.elem * indirect_index mi.uid iter mi.arr_len)
  else begin
    let idx = (mi.stride * iter) + mi.offset in
    let idx = ((idx mod mi.arr_len) + mi.arr_len) mod mi.arr_len in
    mi.addr_base + (mi.elem * idx)
  end

(* One entry's worth of a straight schedule: in-order issue with scoreboard
   stalls; returns cycles consumed. *)
let run_straight st sched exec_ops reg_ready ~stats ~start ~trips ~phase ~max_sim_iters
    ~code_bytes =
  let m = st.machine in
  let issue_span = sched.Schedule.length in
  let per_iter_base = issue_span + m.Machine.taken_branch_cost in
  let sim_iters = min trips max_sim_iters in
  let t = ref start in
  let half = max 1 (sim_iters / 2) in
  let t_at_half = ref start in
  for it = 0 to sim_iters - 1 do
    if it = half then t_at_half := !t;
    let fetch = fetch_cost st ~code_bytes in
    stats.fetch_stall_cycles <- stats.fetch_stall_cycles + fetch;
    t := !t + fetch;
    let stall = ref 0 in
    let orig_iter = phase + it in
    Array.iter
      (fun eop ->
        let issue = ref (!t + eop.cycle + !stall) in
        Array.iter
          (fun id ->
            let ready = reg_ready.(id) in
            if ready > !issue then begin
              stall := !stall + (ready - !issue);
              issue := ready
            end)
          eop.src_ids;
        match eop.mem with
        | Some mi ->
          let extra = data_access st ~is_load:mi.is_load (address mi orig_iter) in
          if eop.dst_id >= 0 then
            reg_ready.(eop.dst_id) <- !issue + eop.base_latency + extra
        | None ->
          if eop.dst_id >= 0 then reg_ready.(eop.dst_id) <- !issue + eop.base_latency)
      exec_ops;
    stats.issue_cycles <- stats.issue_cycles + issue_span;
    stats.branch_cycles <- stats.branch_cycles + m.Machine.taken_branch_cost;
    stats.data_stall_cycles <- stats.data_stall_cycles + !stall;
    t := !t + per_iter_base + !stall
  done;
  if trips > sim_iters && sim_iters > half then begin
    let steady = float_of_int (!t - !t_at_half) /. float_of_int (sim_iters - half) in
    let extra = int_of_float (Float.round (steady *. float_of_int (trips - sim_iters))) in
    (* Attribute extrapolated cycles to categories in the simulated
       window's proportions. *)
    let window = max 1 (!t - start) in
    let scale v = v * extra / window in
    stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
    stats.branch_cycles <- stats.branch_cycles + scale stats.branch_cycles;
    stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
    stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles;
    t := !t + extra
  end;
  !t

(* One entry of a pipelined kernel: II per iteration plus miss stalls. *)
let run_pipelined st sched exec_ops ~stats ~ii ~stages ~start ~trips ~phase ~max_sim_iters
    ~code_bytes =
  let sim_iters = min trips max_sim_iters in
  let t = ref start in
  let half = max 1 (sim_iters / 2) in
  let t_at_half = ref start in
  (* Prologue and epilogue: filling and draining the pipeline. *)
  stats.pipeline_fill_cycles <- stats.pipeline_fill_cycles + (2 * (stages - 1) * ii);
  t := !t + (2 * (stages - 1) * ii);
  ignore sched;
  for it = 0 to sim_iters - 1 do
    if it = half then t_at_half := !t;
    let fetch = fetch_cost st ~code_bytes in
    stats.fetch_stall_cycles <- stats.fetch_stall_cycles + fetch;
    t := !t + fetch;
    let orig_iter = phase + it in
    let stalls = ref 0 in
    Array.iter
      (fun eop ->
        match eop.mem with
        | Some mi ->
          let extra = data_access st ~is_load:mi.is_load (address mi orig_iter) in
          (* The modulo schedule hides up to the consumer slack of the load. *)
          stalls := !stalls + max 0 (extra - eop.consumer_slack)
        | None -> ())
      exec_ops;
    stats.issue_cycles <- stats.issue_cycles + ii;
    stats.data_stall_cycles <- stats.data_stall_cycles + !stalls;
    t := !t + ii + !stalls
  done;
  if trips > sim_iters && sim_iters > half then begin
    let steady = float_of_int (!t - !t_at_half) /. float_of_int (sim_iters - half) in
    let extra = int_of_float (Float.round (steady *. float_of_int (trips - sim_iters))) in
    let window = max 1 (!t - start) in
    let scale v = v * extra / window in
    stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
    stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
    stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles;
    t := !t + extra
  end;
  !t

let run_profiled ?(max_sim_iters = 400) st exe =
  let prepared =
    List.map
      (fun (sched, trips, phase) ->
        let nregs = Loop.max_reg_id sched.Schedule.loop + 1 in
        (sched, trips, phase, prepare sched, nregs))
      exe.schedules
  in
  let max_regs =
    List.fold_left (fun acc (_, _, _, _, n) -> max acc n) 1 prepared
  in
  let reg_ready = Array.make max_regs 0 in
  let stats = empty_stats () in
  let total = ref 0 in
  (* Entries beyond the first few repeat the same warm-cache behaviour;
     simulate three exactly and extrapolate the rest from the last one. *)
  let exact_entries = min exe.outer_trip 3 in
  let last_entry_cycles = ref 0 in
  for _entry = 1 to exact_entries do
    dirty_caches st;
    Array.fill reg_ready 0 max_regs 0;
    (* Time runs continuously across kernel and remainder within an entry so
       that loop-carried values (reductions) stall the remainder correctly. *)
    let entry_clock = ref 0 in
    List.iter
      (fun (sched, trips, phase, exec_ops, _) ->
        if trips > 0 then
          entry_clock :=
            match sched.Schedule.kind with
            | Schedule.Straight ->
              run_straight st sched exec_ops reg_ready ~stats ~start:!entry_clock ~trips
                ~phase ~max_sim_iters ~code_bytes:exe.total_code_bytes
            | Schedule.Pipelined { ii; stages } ->
              run_pipelined st sched exec_ops ~stats ~ii ~stages ~start:!entry_clock
                ~trips ~phase ~max_sim_iters ~code_bytes:exe.total_code_bytes)
      prepared;
    stats.entry_overhead_cycles <- stats.entry_overhead_cycles + exe.entry_extra_cycles;
    last_entry_cycles := !entry_clock + exe.entry_extra_cycles;
    total := !total + !last_entry_cycles
  done;
  if exe.outer_trip > exact_entries then begin
    let extra_entries = exe.outer_trip - exact_entries in
    let scale v = v * extra_entries / max exact_entries 1 in
    stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
    stats.branch_cycles <- stats.branch_cycles + scale stats.branch_cycles;
    stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
    stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles;
    stats.pipeline_fill_cycles <- stats.pipeline_fill_cycles + scale stats.pipeline_fill_cycles;
    stats.entry_overhead_cycles <- stats.entry_overhead_cycles + scale stats.entry_overhead_cycles;
    total := !total + (extra_entries * !last_entry_cycles)
  end;
  (!total, stats)

let run ?max_sim_iters st exe = fst (run_profiled ?max_sim_iters st exe)
