(* Cycle-level simulator with exact fast paths.

   The labeling sweep spends most of its time here, so the hot loops are
   array-backed (struct-of-arrays plans, incremental address cursors,
   shift/mask cache indexing) and three steady-state fast-forwards are
   layered on top, all gated by {!fast_forward} and all bit-identical to
   the naive path ([Sim_reference], property-tested in
   [test/test_sim_equiv.ml]):

   - fetch skip: within one run only fetch probes touch the I-cache, so
     once an iteration's probes all hit, every later fetch hits too and
     probing preserves each set's recency order — stop probing, charge 0.
   - entry skip: entries are separated by a fixed cache-scrubbing access
     sequence; when the post-scrub snapshot (per-set tags in recency
     order) repeats, every remaining entry replays the last simulated
     one's cycle and stall deltas exactly.
   - wrap-period fast-forward: when every reference has a finite
     address period (small arrays that wrap), per-iteration state is
     fingerprinted at period boundaries — normalised scoreboard plus
     touched-set snapshots — and once two consecutive boundaries agree
     the remaining whole periods are replayed analytically; the final
     partial period is then simulated from the (snapshot-equal) state.

   See DESIGN.md §9 for the exactness arguments. *)

(* What one schedule-run did to the stats accumulators, recorded so a
   skipped entry can be replayed exactly.  The in-window increments [rw]
   repeat verbatim across converged entries, but the tail extrapolation
   scales the *cumulative* stats fields — [v + v * rextra / rwindow] on
   the live global value — so replay must re-apply that integer scaling
   rather than copy a delta. *)
type sched_run = {
  rw : int array; (* in-window stats increments, pre-extrapolation *)
  rextra : int; (* extrapolated cycles (0 = no extrapolation) *)
  rwindow : int; (* simulated-window cycles the scaling divides by *)
  rbranch : bool; (* straight schedules scale branch_cycles too *)
}

(* Last simulated entry of the most recent run, kept on the state so a
   follow-up run of the same executable (the sweep's warm-up/measure
   pairs) can skip its entries too.  Safe for any interleaving: the skip
   check re-derives the hypothetical post-scrub snapshot from the *live*
   caches, so a stale memo can only fail the compare, never lie. *)
type entry_memo = {
  m_exe : Pipeline_state.executable;
  m_iters : int; (* max_sim_iters the records were taken under *)
  m_snap : int array; (* post-scrub snapshot at the entry's start *)
  m_records : sched_run list;
  m_cycles : int; (* whole-entry cycles *)
}

(* Pre-resolved execution plan for one schedule, struct-of-arrays: op
   fields indexed by issue position, memory-reference fields indexed by a
   dense reference id ([p_mem] maps op -> reference or -1). *)
type plan = {
  n_ops : int;
  p_span : int; (* schedule length (issue cycles per iteration) *)
  p_cycle : int array;
  p_dst : int array; (* destination reg id, -1 = none *)
  p_lat : int array;
  p_slack : int array;
  p_src_off : int array; (* n_ops + 1 offsets into p_src *)
  p_src : int array;
  p_mem : int array;
  n_refs : int;
  r_load : bool array;
  r_base : int array;
  r_elem : int array;
  r_len : int array;
  r_stride : int array;
  r_stride_mod : int array; (* stride normalised into [0, len) *)
  r_offset : int array;
  r_indirect : bool array;
  r_uid : int array;
  period : int;
      (* lcm of the per-reference address periods; 0 when a reference is
         indirect or the lcm exceeds the cap (wrap fast-forward disabled) *)
}

type state = {
  machine : Machine.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  mutable entry_memo : entry_memo option;
  mutable plan_memo : plan_memo option;
}

(* Pure derivatives of the executable (resolved plans, fetch-line list,
   reachable L2 sets), kept on the state so the sweep's warm-up/measure
   run pairs resolve them once.  Everything here is a deterministic
   function of [(exe, max_sim_iters)], so reuse cannot change results. *)
and plan_memo = {
  pm_exe : Pipeline_state.executable;
  pm_iters : int;
  pm_prepared : (Schedule.t * int * int * plan * int) list;
  pm_max_regs : int;
  pm_fetch_lines : int array;
  pm_l2_sets : int array option; (* None until entry-skip needs it *)
}

let create_state machine =
  {
    machine;
    l1d = Cache.create machine.Machine.l1d;
    l1i = Cache.create machine.Machine.l1i;
    l2 = Cache.create machine.Machine.l2;
    entry_memo = None;
    plan_memo = None;
  }

let reset_state s =
  Cache.reset s.l1d;
  Cache.reset s.l1i;
  Cache.reset s.l2;
  s.entry_memo <- None;
  s.plan_memo <- None

(* Master switch for every fast path; with it off the simulator takes the
   naive per-iteration route (still on the array kernels).  Outputs are
   bit-identical either way. *)
let fast_forward = ref true

type stats = {
  mutable issue_cycles : int;
  mutable data_stall_cycles : int;
  mutable fetch_stall_cycles : int;
  mutable branch_cycles : int;
  mutable entry_overhead_cycles : int;
  mutable pipeline_fill_cycles : int;
}

let empty_stats () =
  {
    issue_cycles = 0;
    data_stall_cycles = 0;
    fetch_stall_cycles = 0;
    branch_cycles = 0;
    entry_overhead_cycles = 0;
    pipeline_fill_cycles = 0;
  }

let stats_arr s =
  [|
    s.issue_cycles;
    s.data_stall_cycles;
    s.fetch_stall_cycles;
    s.branch_cycles;
    s.entry_overhead_cycles;
    s.pipeline_fill_cycles;
  |]

let stats_delta cur prev = Array.init 6 (fun i -> cur.(i) - prev.(i))

let stats_bump s d k =
  s.issue_cycles <- s.issue_cycles + (k * d.(0));
  s.data_stall_cycles <- s.data_stall_cycles + (k * d.(1));
  s.fetch_stall_cycles <- s.fetch_stall_cycles + (k * d.(2));
  s.branch_cycles <- s.branch_cycles + (k * d.(3));
  s.entry_overhead_cycles <- s.entry_overhead_cycles + (k * d.(4));
  s.pipeline_fill_cycles <- s.pipeline_fill_cycles + (k * d.(5))

type executable = Pipeline_state.executable = {
  schedules : (Schedule.t * int * int) list;
  unroll_factor : int;
  total_code_bytes : int;
  outer_trip : int;
  exit_prob : float;
  entry_extra_cycles : int;
  total_spills : int;
}

let of_unrolled machine ~swp (u : Unroll.t) ~outer_trip ~exit_prob =
  Pipeline.of_unrolled machine ~swp u ~outer_trip ~exit_prob

let compile ?cache machine ~swp loop u = Pipeline.compile ?cache machine ~swp loop u

(* Unchecked accessors for the per-iteration op loops: every index is in
   range by construction of the plan (op/ref ids are dense, register ids
   are below the loop's max_reg_id). *)
let ug = Array.unsafe_get
let us = Array.unsafe_set

(* Deterministic address scramble for indirect references. *)
let indirect_index uid iter length =
  let h = (uid * 2654435761) + (iter * 40503) in
  let h = (h lxor (h lsr 13)) * 97 in
  (h land max_int) mod length

let code_base = 0x40000000
let scratch_base = 0x70000000

(* Between two entries of a loop nest the rest of the program runs: it
   displaces essentially all of the loop's code from the I-cache (hundreds
   of other basic blocks execute) and part of its data from the D-cache. *)
let inter_entry_dirty_ilines = 384
let inter_entry_dirty_dlines = 96

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Beyond this the bookkeeping outweighs the savings at realistic
   [max_sim_iters]. *)
let period_cap = 128

let prepare (sched : Schedule.t) =
  let m = sched.Schedule.machine in
  let loop = sched.Schedule.loop in
  let window =
    match sched.Schedule.kind with
    | Schedule.Pipelined { ii; _ } -> ii
    | Schedule.Straight -> 0
  in
  (* The scheduler attached the dependence CSR it built the assignment
     from; reusing it keeps plan resolution free of graph rebuilding and
     of memo keying (which must hash the loop body). *)
  let g = sched.Schedule.csr in
  let slack_of pos =
    let t0 = sched.Schedule.assignment.(pos) in
    let lat = Machine.latency m loop.Loop.body.(pos) in
    let s = ref max_int in
    for ei = g.Deps.succ_off.(pos) to g.Deps.succ_off.(pos + 1) - 1 do
      let e = g.Deps.succ_edge.(ei) in
      if g.Deps.e_kind.(e) = Deps.reg_flow_code then begin
        let consumer =
          sched.Schedule.assignment.(g.Deps.e_dst.(e)) + (window * g.Deps.e_dist.(e))
        in
        let sl = consumer - t0 - lat in
        let sl = if sl > 0 then sl else 0 in
        if sl < !s then s := sl
      end
    done;
    if !s = max_int then window else !s
  in
  let n = Array.length loop.Loop.body in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare sched.Schedule.assignment.(a) sched.Schedule.assignment.(b) in
      if c <> 0 then c else Int.compare a b)
    order;
  let n_src = ref 0 and n_refs = ref 0 in
  Array.iter
    (fun pos ->
      let op = loop.Loop.body.(pos) in
      n_src := !n_src + List.length (Op.uses op);
      if Op.mref op <> None then incr n_refs)
    order;
  let p_cycle = Array.make n 0 in
  let p_dst = Array.make n (-1) in
  let p_lat = Array.make n 0 in
  let p_slack = Array.make n 0 in
  let p_src_off = Array.make (n + 1) 0 in
  let p_src = Array.make !n_src 0 in
  let p_mem = Array.make n (-1) in
  let nr = !n_refs in
  let r_load = Array.make nr false in
  let r_base = Array.make nr 0 in
  let r_elem = Array.make nr 0 in
  let r_len = Array.make nr 1 in
  let r_stride = Array.make nr 0 in
  let r_stride_mod = Array.make nr 0 in
  let r_offset = Array.make nr 0 in
  let r_indirect = Array.make nr false in
  let r_uid = Array.make nr 0 in
  let si = ref 0 and ri = ref 0 in
  Array.iteri
    (fun i pos ->
      let op = loop.Loop.body.(pos) in
      p_cycle.(i) <- sched.Schedule.assignment.(pos);
      p_dst.(i) <- (match op.Op.dst with Some r -> r.Op.id | None -> -1);
      p_lat.(i) <- Machine.latency m op;
      p_slack.(i) <- slack_of pos;
      p_src_off.(i) <- !si;
      List.iter
        (fun (r : Op.reg) ->
          p_src.(!si) <- r.Op.id;
          incr si)
        (Op.uses op);
      match Op.mref op with
      | Some r ->
        let a = loop.Loop.arrays.(r.Op.array) in
        let len = max a.Loop.length 1 in
        let k = !ri in
        p_mem.(i) <- k;
        r_load.(k) <- Op.is_load op;
        r_base.(k) <- a.Loop.base;
        r_elem.(k) <- a.Loop.elem_size;
        r_len.(k) <- len;
        r_stride.(k) <- r.Op.stride;
        r_stride_mod.(k) <- (((r.Op.stride mod len) + len) mod len);
        r_offset.(k) <- r.Op.offset;
        r_indirect.(k) <- r.Op.mkind = Op.Indirect;
        r_uid.(k) <- op.Op.uid;
        incr ri
      | None -> ())
    order;
  p_src_off.(n) <- !si;
  let period =
    let p = ref 1 in
    (try
       for k = 0 to nr - 1 do
         if r_indirect.(k) then raise Exit;
         let pr = r_len.(k) / gcd r_stride_mod.(k) r_len.(k) in
         p := !p / gcd !p pr * pr;
         if !p > period_cap then raise Exit
       done
     with Exit -> p := 0);
    !p
  in
  {
    n_ops = n;
    p_span = sched.Schedule.length;
    p_cycle;
    p_dst;
    p_lat;
    p_slack;
    p_src_off;
    p_src;
    p_mem;
    n_refs = nr;
    r_load;
    r_base;
    r_elem;
    r_len;
    r_stride;
    r_stride_mod;
    r_offset;
    r_indirect;
    r_uid;
    period;
  }

(* Data access through the hierarchy; returns extra stall cycles beyond the
   base latency (0 for stores: they retire through the store buffer but
   still allocate lines). *)
let data_access st ~is_load addr =
  let m = st.machine in
  if Cache.access st.l1d addr then 0
  else begin
    let extra = if Cache.access st.l2 addr then m.Machine.l2_hit_extra else m.Machine.mem_extra in
    if is_load then extra else 0
  end

(* Fetch-skip fast path: within one run call, only fetch probes touch the
   I-cache, so after one iteration whose probes all hit (a) every later
   probe hits too and (b) re-probing only restamps lines in the same
   order, leaving each set's recency order unchanged.  Stopping the
   probing is therefore exact. *)
let fetch_cost st ~fetch_lines ~all_hit =
  if !all_hit then 0
  else begin
    let m = st.machine in
    let cost = ref 0 in
    let missed = ref false in
    for k = 0 to Array.length fetch_lines - 1 do
      let addr = ug fetch_lines k in
      if not (Cache.access st.l1i addr) then begin
        missed := true;
        cost := !cost + m.Machine.l1i_miss_extra;
        if not (Cache.access st.l2 addr) then cost := !cost + (m.Machine.mem_extra / 4)
      end
    done;
    if !fast_forward && not !missed then all_hit := true;
    !cost
  end

let dirty_into l1d l1i =
  let dl = Cache.line_bytes l1d and il = Cache.line_bytes l1i in
  for l = 0 to inter_entry_dirty_dlines - 1 do
    ignore (Cache.access l1d (scratch_base + (l * dl)))
  done;
  for l = 0 to inter_entry_dirty_ilines - 1 do
    ignore (Cache.access l1i (scratch_base + (l * il)))
  done

(* The I-cache half of the scrub floods every set on the shipped
   geometries, so it resolves to one canonical post state (see
   [Cache.plan_flood]) installed at array-copy cost instead of replayed
   access by access — the scrub runs once per simulated entry and
   dominated the cache traffic of a labelling sweep.  The plan depends
   only on the machine, hence the global memo (atomic: labelling sweeps
   run on multiple domains; a lost concurrent append merely recomputes). *)
let l1i_floods : (Machine.t * Cache.flood option) list Atomic.t = Atomic.make []

let l1i_flood st =
  let m = st.machine in
  let rec find = function
    | [] -> None
    | (m', f) :: tl -> if m' == m then Some f else find tl
  in
  match find (Atomic.get l1i_floods) with
  | Some f -> f
  | None ->
    let il = Cache.line_bytes st.l1i in
    let addrs = Array.init inter_entry_dirty_ilines (fun l -> scratch_base + (l * il)) in
    let f = Cache.plan_flood st.l1i addrs in
    let rec push () =
      let cur = Atomic.get l1i_floods in
      if not (Atomic.compare_and_set l1i_floods cur ((m, f) :: cur)) then push ()
    in
    push ();
    f

let dirty_caches st =
  match l1i_flood st with
  | None -> dirty_into st.l1d st.l1i
  | Some f ->
    let dl = Cache.line_bytes st.l1d in
    for l = 0 to inter_entry_dirty_dlines - 1 do
      ignore (Cache.access st.l1d (scratch_base + (l * dl)))
    done;
    Cache.apply_flood st.l1i f

(* --- wrap-period fast-forward support ------------------------------- *)

(* The cache sets one period of the access pattern can touch: data and L2
   sets of every direct reference address, I-cache and L2 sets of every
   fetch line.  Sets outside this list are never accessed during the run
   and so never change. *)
let make_snap_plan st (pl : plan) ~phase ~fetch_lines =
  let l1d_m = Array.make (Cache.sets st.l1d) false in
  let l1i_m = Array.make (Cache.sets st.l1i) false in
  let l2_m = Array.make (Cache.sets st.l2) false in
  for r = 0 to pl.n_refs - 1 do
    let len = pl.r_len.(r) in
    let idx = ref ((((pl.r_stride.(r) * phase) + pl.r_offset.(r)) mod len + len) mod len) in
    for _k = 0 to pl.period - 1 do
      let addr = pl.r_base.(r) + (pl.r_elem.(r) * !idx) in
      l1d_m.(Cache.set_of_addr st.l1d addr) <- true;
      l2_m.(Cache.set_of_addr st.l2 addr) <- true;
      let nx = !idx + pl.r_stride_mod.(r) in
      idx := if nx >= len then nx - len else nx
    done
  done;
  Array.iter
    (fun addr ->
      l1i_m.(Cache.set_of_addr st.l1i addr) <- true;
      l2_m.(Cache.set_of_addr st.l2 addr) <- true)
    fetch_lines;
  let collect marks =
    let n = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 marks in
    let out = Array.make n 0 in
    let j = ref 0 in
    Array.iteri
      (fun i b ->
        if b then begin
          out.(!j) <- i;
          incr j
        end)
      marks;
    out
  in
  [| (st.l1d, collect l1d_m); (st.l1i, collect l1i_m); (st.l2, collect l2_m) |]

let take_snap sp =
  let len =
    Array.fold_left (fun acc (c, sets) -> acc + (Array.length sets * Cache.assoc c)) 0 sp
  in
  let buf = Array.make len (-2) in
  let off = ref 0 in
  Array.iter
    (fun (c, sets) ->
      Array.iter
        (fun s ->
          Cache.snapshot_set c s buf !off;
          off := !off + Cache.assoc c)
        sets)
    sp;
  buf

(* Stop fingerprinting after this many boundary mismatches: the pattern is
   still warming up or genuinely aperiodic (both rare once the period
   gate has passed). *)
let max_boundary_failures = 8

(* Per-run telemetry accumulators, flushed once per {!run_profiled}. *)
type counters = {
  mutable c_iters : int;
  mutable c_ff_iters : int;
  mutable c_entries : int;
  mutable c_entries_skipped : int;
}

let replay_sched_runs stats records =
  List.iter
    (fun r ->
      stats_bump stats r.rw 1;
      if r.rextra <> 0 then begin
        let scale v = v * r.rextra / r.rwindow in
        stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
        if r.rbranch then stats.branch_cycles <- stats.branch_cycles + scale stats.branch_cycles;
        stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
        stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles
      end)
    records

(* One entry's worth of a straight schedule: in-order issue with scoreboard
   stalls; returns cycles consumed. *)
let run_straight st (pl : plan) reg_ready ~stats ~start ~trips ~phase ~max_sim_iters
    ~fetch_lines ~ctr ~slog =
  let m = st.machine in
  (* Hoist the plan's arrays into locals: the op loop below is the hottest
     code in the labelling sweep and closure-mode ocamlopt re-loads record
     fields across the [data_access] calls. *)
  let n_ops = pl.n_ops in
  let pc = pl.p_cycle and pso = pl.p_src_off and psrc = pl.p_src in
  let pmem = pl.p_mem and pdst = pl.p_dst and plat = pl.p_lat in
  let rind = pl.r_indirect and rbase = pl.r_base and relem = pl.r_elem in
  let ruid = pl.r_uid and rlen = pl.r_len and rsmod = pl.r_stride_mod in
  let rload = pl.r_load in
  let stats0 = stats_arr stats in
  let per_iter_base = pl.p_span + m.Machine.taken_branch_cost in
  let sim_iters = min trips max_sim_iters in
  let t = ref start in
  let half = max 1 (sim_iters / 2) in
  let t_at_half = ref start in
  let half_set = ref false in
  let cur = Array.make (max pl.n_refs 1) 0 in
  for r = 0 to pl.n_refs - 1 do
    if not pl.r_indirect.(r) then begin
      let len = pl.r_len.(r) in
      cur.(r) <- (((pl.r_stride.(r) * phase) + pl.r_offset.(r)) mod len + len) mod len
    end
  done;
  let all_hit = ref false in
  let p = pl.period in
  let ff = !fast_forward && p > 0 && sim_iters > 2 * p in
  let sp = if ff then make_snap_plan st pl ~phase ~fetch_lines else [||] in
  let dts = if ff then Array.make p 0 else [||] in
  let nregs = Array.length reg_ready in
  let prev_bound = ref None in
  let engaged = ref false in
  let failures = ref 0 in
  let skipped = ref 0 in
  let it = ref 0 in
  while !it < sim_iters do
    if ff && (not !engaged) && !it > 0 && !it mod p = 0 && !failures < max_boundary_failures
    then begin
      let s = !it in
      let snapshot = take_snap sp in
      let norm =
        Array.init nregs (fun i ->
            let v = reg_ready.(i) - !t in
            if v > 0 then v else 0)
      in
      let cur_stats = stats_arr stats in
      match !prev_bound with
      | Some (t_p, prev_stats, norm_p, snap_p) when norm = norm_p && snapshot = snap_p ->
        let full = (sim_iters - s) / p in
        if full > 0 then begin
          let dt_period = !t - t_p in
          stats_bump stats (stats_delta cur_stats prev_stats) full;
          if half >= s && not !half_set then begin
            (* Reconstruct the top-of-iteration time at [half] from the
               verified period's per-iteration deltas. *)
            let q = (half - s) / p and r0 = (half - s) mod p in
            let pre = ref 0 in
            for k = 0 to r0 - 1 do
              pre := !pre + dts.(k)
            done;
            t_at_half := !t + (q * dt_period) + !pre;
            half_set := true
          end;
          let t_b = !t in
          for i = 0 to nregs - 1 do
            if reg_ready.(i) > t_b then reg_ready.(i) <- reg_ready.(i) + (full * dt_period)
          done;
          t := !t + (full * dt_period);
          it := s + (full * p);
          skipped := full * p;
          engaged := true
        end
      | Some _ ->
        incr failures;
        prev_bound := Some (!t, cur_stats, norm, snapshot)
      | None -> prev_bound := Some (!t, cur_stats, norm, snapshot)
    end;
    if !it < sim_iters then begin
      let t_top = !t in
      if !it = half && not !half_set then begin
        t_at_half := !t;
        half_set := true
      end;
      let fetch = fetch_cost st ~fetch_lines ~all_hit in
      stats.fetch_stall_cycles <- stats.fetch_stall_cycles + fetch;
      t := !t + fetch;
      let stall = ref 0 in
      let orig_iter = phase + !it in
      let issue = ref 0 in
      for i = 0 to n_ops - 1 do
        issue := !t + ug pc i + !stall;
        for si = ug pso i to ug pso (i + 1) - 1 do
          let ready = ug reg_ready (ug psrc si) in
          if ready > !issue then begin
            stall := !stall + (ready - !issue);
            issue := ready
          end
        done;
        let r = ug pmem i in
        if r >= 0 then begin
          let addr =
            if ug rind r then
              ug rbase r + (ug relem r * indirect_index (ug ruid r) orig_iter (ug rlen r))
            else begin
              let a = ug rbase r + (ug relem r * ug cur r) in
              let nx = ug cur r + ug rsmod r in
              us cur r (if nx >= ug rlen r then nx - ug rlen r else nx);
              a
            end
          in
          let extra = data_access st ~is_load:(ug rload r) addr in
          if ug pdst i >= 0 then us reg_ready (ug pdst i) (!issue + ug plat i + extra)
        end
        else if ug pdst i >= 0 then us reg_ready (ug pdst i) (!issue + ug plat i)
      done;
      stats.issue_cycles <- stats.issue_cycles + pl.p_span;
      stats.branch_cycles <- stats.branch_cycles + m.Machine.taken_branch_cost;
      stats.data_stall_cycles <- stats.data_stall_cycles + !stall;
      t := !t + per_iter_base + !stall;
      if ff && not !engaged then dts.(!it mod p) <- !t - t_top;
      incr it
    end
  done;
  ctr.c_iters <- ctr.c_iters + (sim_iters - !skipped);
  ctr.c_ff_iters <- ctr.c_ff_iters + !skipped;
  let w6 = stats_delta (stats_arr stats) stats0 in
  let rextra, rwindow =
    if trips > sim_iters && sim_iters > half then begin
      let steady = float_of_int (!t - !t_at_half) /. float_of_int (sim_iters - half) in
      let extra = int_of_float (Float.round (steady *. float_of_int (trips - sim_iters))) in
      (* Attribute extrapolated cycles to categories in the simulated
         window's proportions. *)
      let window = max 1 (!t - start) in
      let scale v = v * extra / window in
      stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
      stats.branch_cycles <- stats.branch_cycles + scale stats.branch_cycles;
      stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
      stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles;
      t := !t + extra;
      (extra, window)
    end
    else (0, 1)
  in
  slog := { rw = w6; rextra; rwindow; rbranch = true } :: !slog;
  !t

(* One entry of a pipelined kernel: II per iteration plus miss stalls. *)
let run_pipelined st (pl : plan) ~stats ~ii ~stages ~start ~trips ~phase ~max_sim_iters
    ~fetch_lines ~ctr ~slog =
  let stats0 = stats_arr stats in
  (* Same array hoisting as [run_straight]. *)
  let n_ops = pl.n_ops in
  let pmem = pl.p_mem and pslack = pl.p_slack in
  let rind = pl.r_indirect and rbase = pl.r_base and relem = pl.r_elem in
  let ruid = pl.r_uid and rlen = pl.r_len and rsmod = pl.r_stride_mod in
  let rload = pl.r_load in
  let sim_iters = min trips max_sim_iters in
  let t = ref start in
  let half = max 1 (sim_iters / 2) in
  let t_at_half = ref start in
  let half_set = ref false in
  (* Prologue and epilogue: filling and draining the pipeline. *)
  stats.pipeline_fill_cycles <- stats.pipeline_fill_cycles + (2 * (stages - 1) * ii);
  t := !t + (2 * (stages - 1) * ii);
  let cur = Array.make (max pl.n_refs 1) 0 in
  for r = 0 to pl.n_refs - 1 do
    if not pl.r_indirect.(r) then begin
      let len = pl.r_len.(r) in
      cur.(r) <- (((pl.r_stride.(r) * phase) + pl.r_offset.(r)) mod len + len) mod len
    end
  done;
  let all_hit = ref false in
  let p = pl.period in
  let ff = !fast_forward && p > 0 && sim_iters > 2 * p in
  let sp = if ff then make_snap_plan st pl ~phase ~fetch_lines else [||] in
  let dts = if ff then Array.make p 0 else [||] in
  let prev_bound = ref None in
  let engaged = ref false in
  let failures = ref 0 in
  let skipped = ref 0 in
  let it = ref 0 in
  while !it < sim_iters do
    if ff && (not !engaged) && !it > 0 && !it mod p = 0 && !failures < max_boundary_failures
    then begin
      let s = !it in
      let snapshot = take_snap sp in
      let cur_stats = stats_arr stats in
      match !prev_bound with
      | Some (t_p, prev_stats, snap_p) when snapshot = snap_p ->
        let full = (sim_iters - s) / p in
        if full > 0 then begin
          let dt_period = !t - t_p in
          stats_bump stats (stats_delta cur_stats prev_stats) full;
          if half >= s && not !half_set then begin
            let q = (half - s) / p and r0 = (half - s) mod p in
            let pre = ref 0 in
            for k = 0 to r0 - 1 do
              pre := !pre + dts.(k)
            done;
            t_at_half := !t + (q * dt_period) + !pre;
            half_set := true
          end;
          t := !t + (full * dt_period);
          it := s + (full * p);
          skipped := full * p;
          engaged := true
        end
      | Some _ ->
        incr failures;
        prev_bound := Some (!t, cur_stats, snapshot)
      | None -> prev_bound := Some (!t, cur_stats, snapshot)
    end;
    if !it < sim_iters then begin
      let t_top = !t in
      if !it = half && not !half_set then begin
        t_at_half := !t;
        half_set := true
      end;
      let fetch = fetch_cost st ~fetch_lines ~all_hit in
      stats.fetch_stall_cycles <- stats.fetch_stall_cycles + fetch;
      t := !t + fetch;
      let orig_iter = phase + !it in
      let stalls = ref 0 in
      for i = 0 to n_ops - 1 do
        let r = ug pmem i in
        if r >= 0 then begin
          let addr =
            if ug rind r then
              ug rbase r + (ug relem r * indirect_index (ug ruid r) orig_iter (ug rlen r))
            else begin
              let a = ug rbase r + (ug relem r * ug cur r) in
              let nx = ug cur r + ug rsmod r in
              us cur r (if nx >= ug rlen r then nx - ug rlen r else nx);
              a
            end
          in
          let extra = data_access st ~is_load:(ug rload r) addr in
          (* The modulo schedule hides up to the consumer slack of the load. *)
          let exposed = extra - ug pslack i in
          if exposed > 0 then stalls := !stalls + exposed
        end
      done;
      stats.issue_cycles <- stats.issue_cycles + ii;
      stats.data_stall_cycles <- stats.data_stall_cycles + !stalls;
      t := !t + ii + !stalls;
      if ff && not !engaged then dts.(!it mod p) <- !t - t_top;
      incr it
    end
  done;
  ctr.c_iters <- ctr.c_iters + (sim_iters - !skipped);
  ctr.c_ff_iters <- ctr.c_ff_iters + !skipped;
  let w6 = stats_delta (stats_arr stats) stats0 in
  let rextra, rwindow =
    if trips > sim_iters && sim_iters > half then begin
      let steady = float_of_int (!t - !t_at_half) /. float_of_int (sim_iters - half) in
      let extra = int_of_float (Float.round (steady *. float_of_int (trips - sim_iters))) in
      let window = max 1 (!t - start) in
      let scale v = v * extra / window in
      stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
      stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
      stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles;
      t := !t + extra;
      (extra, window)
    end
    else (0, 1)
  in
  slog := { rw = w6; rextra; rwindow; rbranch = false } :: !slog;
  !t

let run_profiled ?(max_sim_iters = 400) st exe =
  let memo0 =
    match st.plan_memo with
    | Some m when m.pm_exe == exe && m.pm_iters = max_sim_iters -> Some m
    | _ -> None
  in
  let prepared, max_regs, fetch_lines =
    match memo0 with
    | Some m -> (m.pm_prepared, m.pm_max_regs, m.pm_fetch_lines)
    | None ->
      let prepared =
        List.map
          (fun (sched, trips, phase) ->
            let nregs = Loop.max_reg_id sched.Schedule.loop + 1 in
            (sched, trips, phase, prepare sched, nregs))
          exe.schedules
      in
      let max_regs = List.fold_left (fun acc (_, _, _, _, n) -> max acc n) 1 prepared in
      let iline = Cache.line_bytes st.l1i in
      let nlines = max 1 ((exe.total_code_bytes + iline - 1) / iline) in
      let fetch_lines = Array.init nlines (fun l -> code_base + (l * iline)) in
      (prepared, max_regs, fetch_lines)
  in
  let reg_ready = Array.make max_regs 0 in
  let stats = empty_stats () in
  let total = ref 0 in
  let ctr = { c_iters = 0; c_ff_iters = 0; c_entries = 0; c_entries_skipped = 0 } in
  let h0 =
    ( Cache.hits st.l1d, Cache.misses st.l1d,
      Cache.hits st.l1i, Cache.misses st.l1i,
      Cache.hits st.l2, Cache.misses st.l2 )
  in
  (* Entries beyond the first few repeat the same warm-cache behaviour;
     simulate three exactly and extrapolate the rest from the last one. *)
  let exact_entries = min exe.outer_trip 3 in
  let last_entry_cycles = ref 0 in
  (* Entry-skip: record the post-scrub snapshot and the per-schedule stats
     records of the last simulated entry.  When applying the scrub again
     would reproduce the same snapshot, this entry — and by induction
     every remaining one — behaves identically, so its schedule-runs are
     replayed instead of simulated, and the current (pre-scrub) cache
     state is already snapshot-equal to the state the skipped entries
     would leave behind, so nothing is mutated.

     The comparison is bounded: the full (small) L1s, but only the L2
     sets this executable can ever touch — data-reference and fetch-line
     addresses are pure functions of the iteration index, so the reachable
     set list is enumerable up front and every other L2 set is inert.
     When the scrub floods every I-cache set with at least [assoc]
     distinct scratch lines, the post-scrub I-cache state is one fixed
     state regardless of what preceded it, and that compare is elided. *)
  let entry_skip_on = !fast_forward && exact_entries >= 1 in
  let scrub_canon_l1i =
    inter_entry_dirty_ilines / Cache.sets st.l1i >= Cache.assoc st.l1i
  in
  let l2_sets =
    if not entry_skip_on then [||]
    else
      match memo0 with
      | Some { pm_l2_sets = Some s; _ } -> s
      | _ -> begin
      let marks = Array.make (Cache.sets st.l2) false in
      Array.iter (fun addr -> marks.(Cache.set_of_addr st.l2 addr) <- true) fetch_lines;
      List.iter
        (fun (_, trips, phase, pl, _) ->
          let iters = min trips max_sim_iters in
          for r = 0 to pl.n_refs - 1 do
            if pl.r_indirect.(r) then
              for it = 0 to iters - 1 do
                let addr =
                  pl.r_base.(r)
                  + (pl.r_elem.(r) * indirect_index pl.r_uid.(r) (phase + it) pl.r_len.(r))
                in
                marks.(Cache.set_of_addr st.l2 addr) <- true
              done
            else begin
              let len = pl.r_len.(r) in
              let idx =
                ref ((((pl.r_stride.(r) * phase) + pl.r_offset.(r)) mod len + len) mod len)
              in
              (* direct indices cycle within [len] steps *)
              for _ = 1 to min iters len do
                let addr = pl.r_base.(r) + (pl.r_elem.(r) * !idx) in
                marks.(Cache.set_of_addr st.l2 addr) <- true;
                let nx = !idx + pl.r_stride_mod.(r) in
                idx := if nx >= len then nx - len else nx
              done
            end
          done)
        prepared;
      let n = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 marks in
      let out = Array.make n 0 in
      let j = ref 0 in
      Array.iteri
        (fun i b ->
          if b then begin
            out.(!j) <- i;
            incr j
          end)
        marks;
      out
    end
  in
  st.plan_memo <-
    Some
      {
        pm_exe = exe;
        pm_iters = max_sim_iters;
        pm_prepared = prepared;
        pm_max_regs = max_regs;
        pm_fetch_lines = fetch_lines;
        pm_l2_sets =
          (if entry_skip_on then Some l2_sets
           else match memo0 with Some m -> m.pm_l2_sets | None -> None);
      };
  (* Snapshot layout: the reachable L2 sets first, then L1D, then L1I
     (elided when the scrub canonicalises it).  L2 leads because the
     scrub never touches it, so the skip check can compare it against
     the live cache with early exit before paying for any hypothetical
     copies — a failing check (every first entry of a cold sweep)
     usually dies in the first few L2 sets for free. *)
  let l2_asc = Cache.assoc st.l2 in
  let seg_l2 = Array.length l2_sets * l2_asc in
  let seg_l1d = Cache.sets st.l1d * Cache.assoc st.l1d in
  let seg_l1i = if scrub_canon_l1i then 0 else Cache.sets st.l1i * Cache.assoc st.l1i in
  let snap_len = seg_l2 + seg_l1d + seg_l1i in
  let write_all c buf off =
    let asc = Cache.assoc c in
    for s = 0 to Cache.sets c - 1 do
      Cache.snapshot_set c s buf (off + (s * asc))
    done
  in
  (* Record the live (post-scrub) state in one flat buffer. *)
  let snap_entry () =
    let buf = Array.make snap_len (-2) in
    Array.iteri (fun i s -> Cache.snapshot_set st.l2 s buf (i * l2_asc)) l2_sets;
    write_all st.l1d buf seg_l2;
    if not scrub_canon_l1i then write_all st.l1i buf (seg_l2 + seg_l1d);
    buf
  in
  let cmp_buf = Array.make 16 (-2) in
  (* set-by-set compare of [c]'s snapshot against [snap.(off ..)] *)
  let seg_matches c sets snap off =
    let asc = Cache.assoc c in
    let ok = ref true in
    let i = ref 0 in
    let n = Array.length sets in
    while !ok && !i < n do
      Cache.snapshot_set c sets.(!i) cmp_buf 0;
      let o = off + (!i * asc) in
      for w = 0 to asc - 1 do
        if cmp_buf.(w) <> snap.(o + w) then ok := false
      done;
      incr i
    done;
    !ok
  in
  let all_sets c = Array.init (Cache.sets c) (fun s -> s) in
  let l1d_sets = all_sets st.l1d in
  let l1i_sets = all_sets st.l1i in
  (* Would scrubbing the live caches reproduce [snap_p]?  Checked lazily:
     live L2 first (no copies), then a scrubbed copy of L1D, then of L1I
     when the scrub does not canonicalise it. *)
  let post_scrub_matches snap_p =
    Array.length snap_p = snap_len
    && seg_matches st.l2 l2_sets snap_p 0
    && begin
         let l1d' = Cache.copy st.l1d in
         let dl = Cache.line_bytes l1d' in
         for l = 0 to inter_entry_dirty_dlines - 1 do
           ignore (Cache.access l1d' (scratch_base + (l * dl)))
         done;
         seg_matches l1d' l1d_sets snap_p seg_l2
       end
    && (scrub_canon_l1i
       || begin
            let l1i' = Cache.copy st.l1i in
            let il = Cache.line_bytes l1i' in
            for l = 0 to inter_entry_dirty_ilines - 1 do
              ignore (Cache.access l1i' (scratch_base + (l * il)))
            done;
            seg_matches l1i' l1i_sets snap_p (seg_l2 + seg_l1d)
          end)
  in
  let prev_entry =
    ref
      (if not entry_skip_on then None
       else
         match st.entry_memo with
         | Some m when m.m_exe == exe && m.m_iters = max_sim_iters ->
           Some (m.m_snap, m.m_records, m.m_cycles)
         | _ -> None)
  in
  let entry = ref 1 in
  while !entry <= exact_entries do
    let skip =
      if not entry_skip_on then None
      else
        match !prev_entry with
        | Some (snap_p, records, d_cycles) ->
          if post_scrub_matches snap_p then Some (records, d_cycles) else None
        | None -> None
    in
    match skip with
    | Some (records, d_cycles) ->
      let remaining = exact_entries - !entry + 1 in
      for _ = 1 to remaining do
        replay_sched_runs stats records;
        stats.entry_overhead_cycles <- stats.entry_overhead_cycles + exe.entry_extra_cycles
      done;
      total := !total + (remaining * d_cycles);
      last_entry_cycles := d_cycles;
      ctr.c_entries_skipped <- ctr.c_entries_skipped + remaining;
      entry := exact_entries + 1
    | None ->
      dirty_caches st;
      (* Record the post-scrub snapshot — except after the first of several
         exact entries, whose cold-to-warm transition almost never matches
         entry 2 (recording less only means simulating an entry that a
         snapshot might have skipped; it cannot change results).  The final
         entry's snapshot is always recorded: it seeds the cross-call memo
         for the next run of this executable. *)
      let snap_after =
        if entry_skip_on && (!entry > 1 || exact_entries = 1) then Some (snap_entry ())
        else None
      in
      Array.fill reg_ready 0 max_regs 0;
      let slog = ref [] in
      (* Time runs continuously across kernel and remainder within an entry so
         that loop-carried values (reductions) stall the remainder correctly. *)
      let entry_clock = ref 0 in
      List.iter
        (fun (sched, trips, phase, pl, _) ->
          if trips > 0 then
            entry_clock :=
              match sched.Schedule.kind with
              | Schedule.Straight ->
                run_straight st pl reg_ready ~stats ~start:!entry_clock ~trips ~phase
                  ~max_sim_iters ~fetch_lines ~ctr ~slog
              | Schedule.Pipelined { ii; stages } ->
                run_pipelined st pl ~stats ~ii ~stages ~start:!entry_clock ~trips ~phase
                  ~max_sim_iters ~fetch_lines ~ctr ~slog)
        prepared;
      stats.entry_overhead_cycles <- stats.entry_overhead_cycles + exe.entry_extra_cycles;
      let entry_total = !entry_clock + exe.entry_extra_cycles in
      last_entry_cycles := entry_total;
      total := !total + entry_total;
      ctr.c_entries <- ctr.c_entries + 1;
      (match snap_after with
      | Some sn -> prev_entry := Some (sn, List.rev !slog, entry_total)
      | None -> ());
      incr entry
  done;
  if exe.outer_trip > exact_entries then begin
    let extra_entries = exe.outer_trip - exact_entries in
    let scale v = v * extra_entries / max exact_entries 1 in
    stats.issue_cycles <- stats.issue_cycles + scale stats.issue_cycles;
    stats.branch_cycles <- stats.branch_cycles + scale stats.branch_cycles;
    stats.data_stall_cycles <- stats.data_stall_cycles + scale stats.data_stall_cycles;
    stats.fetch_stall_cycles <- stats.fetch_stall_cycles + scale stats.fetch_stall_cycles;
    stats.pipeline_fill_cycles <- stats.pipeline_fill_cycles + scale stats.pipeline_fill_cycles;
    stats.entry_overhead_cycles <- stats.entry_overhead_cycles + scale stats.entry_overhead_cycles;
    total := !total + (extra_entries * !last_entry_cycles)
  end;
  (if entry_skip_on then
     match !prev_entry with
     | Some (sn, records, d) ->
       st.entry_memo <-
         Some { m_exe = exe; m_iters = max_sim_iters; m_snap = sn; m_records = records; m_cycles = d }
     | None -> ());
  let tel = Telemetry.global in
  let d1h, d1m, i1h, i1m, l2h, l2m = h0 in
  Telemetry.incr tel ~pass:"simulator" "iters-simulated" ctr.c_iters;
  Telemetry.incr tel ~pass:"simulator" "iters-fast-forwarded" ctr.c_ff_iters;
  Telemetry.incr tel ~pass:"simulator" "entries-simulated" ctr.c_entries;
  Telemetry.incr tel ~pass:"simulator" "entries-skipped" ctr.c_entries_skipped;
  Telemetry.incr tel ~pass:"simulator" "l1d-hits" (Cache.hits st.l1d - d1h);
  Telemetry.incr tel ~pass:"simulator" "l1d-misses" (Cache.misses st.l1d - d1m);
  Telemetry.incr tel ~pass:"simulator" "l1i-hits" (Cache.hits st.l1i - i1h);
  Telemetry.incr tel ~pass:"simulator" "l1i-misses" (Cache.misses st.l1i - i1m);
  Telemetry.incr tel ~pass:"simulator" "l2-hits" (Cache.hits st.l2 - l2h);
  Telemetry.incr tel ~pass:"simulator" "l2-misses" (Cache.misses st.l2 - l2m);
  (!total, stats)

let run ?max_sim_iters st exe = fst (run_profiled ?max_sim_iters st exe)
