let chunks ~trip ~outer ~strip =
  if strip <= 0 || outer <= 0 then invalid_arg "Strip_mine.chunks";
  let rec tiles phase acc =
    if phase >= trip then List.rev acc
    else begin
      let len = min strip (trip - phase) in
      tiles (phase + strip) ((len, phase) :: acc)
    end
  in
  let per_tile = tiles 0 [] in
  (* Tile-major: all outer repetitions of a strip, then the next strip. *)
  List.concat_map (fun chunk -> List.init outer (fun _ -> chunk)) per_tile

let executable machine ~swp (loop : Loop.t) ~strip ~unroll =
  let exe = Simulator.compile machine ~swp loop unroll in
  (* The compiled kernel covers [unroll] original iterations per trip; the
     remainder covers one.  Re-plan the traversal tile by tile, reusing the
     kernel schedule for the divisible part of each strip and the remainder
     schedule (or the kernel at factor 1) for the tail. *)
  let kernel_sched, remainder_sched =
    match exe.Simulator.schedules with
    | [ (k, _, _) ] -> (k, None)
    | [ (k, _, _); (r, _, _) ] -> (k, Some r)
    | _ -> invalid_arg "Strip_mine.executable: unexpected schedule shape"
  in
  let fallback_sched =
    match remainder_sched with
    | Some r -> r
    | None ->
      (* strips not divisible by the unroll factor need a rolled tail even
         when the whole trip was divisible *)
      (match (Simulator.compile machine ~swp loop 1).Simulator.schedules with
      | (s, _, _) :: _ -> s
      | [] -> assert false)
  in
  let schedules =
    chunks ~trip:loop.Loop.trip_actual ~outer:loop.Loop.outer_trip ~strip
    |> List.concat_map (fun (len, phase) ->
           (* The unrolled kernel's scaled references demand a phase that is
              a multiple of the factor; a rolled head chunk aligns it. *)
           let head = min len ((unroll - (phase mod unroll)) mod unroll) in
           let kernel_trips = (len - head) / unroll in
           let tail = len - head - (kernel_trips * unroll) in
           let head_part = if head > 0 then [ (fallback_sched, head, phase) ] else [] in
           let kernel_part =
             if kernel_trips > 0 then
               [ (kernel_sched, kernel_trips, (phase + head) / unroll) ]
             else []
           in
           let tail_part =
             if tail > 0 then
               [ (fallback_sched, tail, phase + head + (kernel_trips * unroll)) ]
             else []
           in
           head_part @ kernel_part @ tail_part)
  in
  (* The tiled nest dispatches once per chunk: each strip costs the loop
     setup the plain nest paid once per entry, which is what puts the left
     wall on the strip-size U-curve. *)
  let n_chunks = List.length schedules in
  {
    exe with
    Simulator.schedules;
    outer_trip = 1;
    entry_extra_cycles = exe.Simulator.entry_extra_cycles * max n_chunks 1;
  }

let best_strip machine ~swp loop ~candidates ~unroll =
  let best = ref (0, max_int) in
  List.iter
    (fun strip ->
      let exe = executable machine ~swp loop ~strip ~unroll in
      let st = Simulator.create_state machine in
      ignore (Simulator.run st exe);
      let cycles = Simulator.run st exe in
      if cycles < snd !best then best := (strip, cycles))
    candidates;
  !best
