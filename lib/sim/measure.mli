(** The instrumentation layer (§4.4 of the paper).

    Wraps simulated execution the way the paper's assembly-level
    instrumentation wraps real execution: each configuration is run
    repeatedly with multiplicative measurement noise injected, and the
    median is reported.  Sweeping a loop across all eight unroll factors
    yields the per-factor cycle counts that labelling consumes. *)

val noisy_median :
  rng:Rng.t -> noise:float -> runs:int -> (unit -> int) -> int
(** [noisy_median ~rng ~noise ~runs f] evaluates [f] once and synthesises
    [runs] noisy observations (Gaussian multiplicative noise of relative
    magnitude [noise]), returning their median.  [noise = 0.] returns the
    exact value. *)

val sweep :
  ?noise:float ->
  ?runs:int ->
  ?max_sim_iters:int ->
  ?cache:Compile_cache.t ->
  rng:Rng.t ->
  machine:Machine.t ->
  swp:bool ->
  Loop.t ->
  int array
(** [sweep ~rng ~machine ~swp loop] measures the loop at unroll factors
    1..8 (paper default: [runs] = 30 per factor with median aggregation,
    [noise] = 0.015) and returns the eight cycle counts, index 0 = factor
    1.  Each factor is a separate program run: caches start cold, a warm-up
    execution primes them, and the measured runs see the steady state.

    Compiled executables and warm cycle counts are memoised in [cache]
    (default {!Compile_cache.global}); noise is drawn from [rng] after the
    lookup, so a warm sweep returns results identical to a cold one. *)

val min_cycles_filter : int
(** Loops measured below this many cycles are too noisy to label (the
    paper's 50,000-cycle threshold). *)
