(** Strip mining and tiling of the iteration space.

    The paper's conclusion names loop tiling and strip mining as the next
    heuristics its infrastructure could learn.  In this IR a loop is one
    dimension plus an [outer_trip] re-entry count, so strip mining is a
    partition of the trip count and {e tiling} is the classic reordering:
    run every outer repetition of one strip before moving to the next
    strip, so a strip that fits in cache is reused [outer] times while
    hot.

    [chunks] produces the (trips, phase) schedule-chunk list the simulator
    executes (its executables already thread an explicit phase per chunk),
    and [executable] packages a compiled loop in tiled order. *)

val chunks : trip:int -> outer:int -> strip:int -> (int * int) list
(** [(trips, phase)] pairs in tile-major order.  Phases partition
    [0, trip); each strip appears [outer] times consecutively.  The final
    strip may be short.  Raises [Invalid_argument] unless
    [0 < strip] and [0 < outer]. *)

val executable :
  Machine.t -> swp:bool -> Loop.t -> strip:int -> unroll:int ->
  Simulator.executable
(** Compile [loop] at unroll factor [unroll] and lay its execution out in
    tiled order with the given strip.  The result runs the same total
    iteration count as the plain loop; only the traversal order (and hence
    cache behaviour) changes. *)

val best_strip :
  Machine.t -> swp:bool -> Loop.t -> candidates:int list -> unroll:int ->
  int * int
(** Sweep candidate strips, returning (best strip, its cycles) — the
    empirical label a strip-size heuristic would learn from. *)
