(** Cycle-level execution of scheduled loop code.

    The simulator plays the role of the paper's Itanium 2 testbed plus its
    loop instrumentation library: it executes a compiled loop — unrolled
    kernel plus optional remainder — through the machine's cache hierarchy
    and reports total cycles, which the labelling pipeline treats as the
    hardware cycle counter reading.

    Straight schedules run in order with scoreboard interlocks: an op whose
    source value is not yet ready stalls the issue (values carried across
    iterations included, so genuine recurrences cost their full latency even
    when the static schedule is short).  Load misses overlap with
    independent work — the penalty is only paid by consumers that catch up
    with it.  Pipelined schedules run at their initiation interval plus
    per-iteration miss stalls, with prologue/epilogue cost per entry.

    The instruction stream touches the I-cache every iteration, so code
    expansion from over-unrolling surfaces as front-end stalls once the
    footprint no longer fits; on every re-entry of the nest the caches are
    partially disturbed, standing in for the rest of the program. *)

type state
(** Mutable architectural state: the three caches. *)

val create_state : Machine.t -> state
val reset_state : state -> unit

val fast_forward : bool ref
(** Master switch (default [true]) for the exact fast paths: fetch-hit
    skipping, steady-state entry skipping and wrap-period iteration
    fast-forwarding.  Cycle totals, {!stats} breakdowns and downstream
    labels are bit-identical with the switch on or off (property-tested
    against [Sim_reference]); only wall-clock time and the telemetry
    counters differ.  Exists so benchmarks can time both paths. *)

type executable = Pipeline_state.executable = {
  schedules : (Schedule.t * int * int) list;
  (** [(schedule, trips, phase)] in execution order: the unrolled kernel
      followed by the remainder loop when present.  [phase] is the
      original-iteration index at which the schedule starts, so remainder
      references continue where the kernel stopped. *)
  unroll_factor : int;
  total_code_bytes : int;   (** kernel + remainder + glue *)
  outer_trip : int;         (** times the whole nest is re-entered *)
  exit_prob : float;        (** per-original-iteration early-exit probability *)
  entry_extra_cycles : int; (** per-entry fixed cost (exit mispredict, glue) *)
  total_spills : int;       (** spill values inserted by the allocator *)
}

val of_unrolled :
  Machine.t -> swp:bool -> Unroll.t -> outer_trip:int -> exit_prob:float -> executable
(** Schedules an unrolled loop — modulo scheduling with list fallback when
    [swp], list scheduling otherwise — with register allocation, and
    packages it for execution.  Early-exit probability shortens the
    effective trip count (expected iterations of a geometric exit).
    Delegates to the backend passes of {!Pipeline}. *)

val compile :
  ?cache:Compile_cache.t -> Machine.t -> swp:bool -> Loop.t -> int -> executable
(** [compile machine ~swp loop u] is the full pipeline the paper's modified
    ORC runs per loop: unroll by [u], redundant-load elimination, schedule,
    allocate.  Delegates to {!Pipeline.compile}: results are memoised in
    [cache] (default {!Compile_cache.global}) keyed by loop content. *)

val run : ?max_sim_iters:int -> state -> executable -> int
(** Total cycles to execute the loop nest over all its entries.  Per loop
    entry at most [max_sim_iters] (default 400) iterations are simulated
    exactly; longer executions extrapolate from the steady-state tail.
    Deterministic. *)

type stats = {
  mutable issue_cycles : int;          (** static schedule issue slots *)
  mutable data_stall_cycles : int;     (** scoreboard stalls on loads/values *)
  mutable fetch_stall_cycles : int;    (** I-cache refetch *)
  mutable branch_cycles : int;         (** taken-branch bubbles *)
  mutable entry_overhead_cycles : int; (** per-entry setup/dispatch *)
  mutable pipeline_fill_cycles : int;  (** SWP prologue/epilogue *)
}
(** Where the cycles went; extrapolated portions are attributed in the
    simulated window's proportions. *)

val run_profiled : ?max_sim_iters:int -> state -> executable -> int * stats
(** {!run} plus the cycle breakdown — the "why is this loop slow" tool. *)
