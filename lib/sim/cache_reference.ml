(* The seed's cache model, frozen verbatim alongside [Sim_reference] so the
   reference path exercises the pre-optimisation stack end to end: division
   indexing, tuple/option-allocating lookups, no snapshots.  Behaviour
   (hits, misses, evictions) is identical to [Cache]; only speed differs. *)

type t = {
  sets : int;
  assoc : int;
  line : int;
  tags : int array;    (* sets * assoc, -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable clock : int;
}

let create (g : Machine.cache_geom) =
  let sets = max 1 (g.Machine.size_bytes / (g.Machine.line_bytes * g.Machine.assoc)) in
  {
    sets;
    assoc = g.Machine.assoc;
    line = g.Machine.line_bytes;
    tags = Array.make (sets * g.Machine.assoc) (-1);
    stamps = Array.make (sets * g.Machine.assoc) 0;
    clock = 0;
  }

let locate t addr =
  let lineno = addr / t.line in
  let set = lineno mod t.sets in
  let tag = lineno / t.sets in
  (set * t.assoc, tag)

let find t base tag =
  let rec scan w = if w = t.assoc then None else if t.tags.(base + w) = tag then Some w else scan (w + 1) in
  scan 0

let access t addr =
  t.clock <- t.clock + 1;
  let base, tag = locate t addr in
  match find t base tag with
  | Some w ->
    t.stamps.(base + w) <- t.clock;
    true
  | None ->
    (* Evict the LRU way. *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.clock;
    false

let probe t addr =
  let base, tag = locate t addr in
  match find t base tag with Some _ -> true | None -> false

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0

let lines t = t.sets * t.assoc
let line_bytes t = t.line
