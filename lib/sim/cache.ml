type t = {
  sets : int;
  assoc : int;
  line : int;
  (* Shift/mask indexing when line and sets are powers of two (all the
     shipped machine geometries); [line_shift < 0] falls back to division. *)
  line_shift : int;
  set_mask : int;
  set_shift : int;
  tags : int array;    (* sets * assoc, -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable clock : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let log2_exact v =
  let rec go s v = if v = 1 then Some s else if v land 1 = 1 then None else go (s + 1) (v lsr 1) in
  if v <= 0 then None else go 0 v

let create (g : Machine.cache_geom) =
  let sets = max 1 (g.Machine.size_bytes / (g.Machine.line_bytes * g.Machine.assoc)) in
  let line_shift, set_mask, set_shift =
    match (log2_exact g.Machine.line_bytes, log2_exact sets) with
    | Some ls, Some ss -> (ls, sets - 1, ss)
    | _ -> (-1, 0, 0)
  in
  {
    sets;
    assoc = g.Machine.assoc;
    line = g.Machine.line_bytes;
    line_shift;
    set_mask;
    set_shift;
    tags = Array.make (sets * g.Machine.assoc) (-1);
    stamps = Array.make (sets * g.Machine.assoc) 0;
    clock = 0;
    hit_count = 0;
    miss_count = 0;
  }

let set_of_addr t addr =
  if t.line_shift >= 0 then (addr lsr t.line_shift) land t.set_mask
  else (addr / t.line) mod t.sets

(* The way scan and the LRU victim scan are the simulator's innermost
   loops; they are written allocation-free (no tuple or option returns —
   the bytecode/native compilers here do not unbox them) and use the
   unchecked accessors, with indices in range by construction
   ([base < sets * assoc], [w < assoc]). *)
let base_of t addr =
  if t.line_shift >= 0 then ((addr lsr t.line_shift) land t.set_mask) * t.assoc
  else addr / t.line mod t.sets * t.assoc

let tag_of t addr =
  if t.line_shift >= 0 then (addr lsr t.line_shift) lsr t.set_shift else addr / t.line / t.sets

(* Way holding [tag] in the set at [base], or -1. *)
let find_way t base tag =
  let rec scan w =
    if w = t.assoc then -1
    else if Array.unsafe_get t.tags (base + w) = tag then w
    else scan (w + 1)
  in
  scan 0

let access t addr =
  t.clock <- t.clock + 1;
  let base = base_of t addr in
  let tag = tag_of t addr in
  let w = find_way t base tag in
  if w >= 0 then begin
    Array.unsafe_set t.stamps (base + w) t.clock;
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    (* Evict the LRU way. *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if Array.unsafe_get t.stamps (base + w) < Array.unsafe_get t.stamps (base + !victim) then
        victim := w
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.clock;
    t.miss_count <- t.miss_count + 1;
    false
  end

let probe t addr = find_way t (base_of t addr) (tag_of t addr) >= 0

let copy t = { t with tags = Array.copy t.tags; stamps = Array.copy t.stamps }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0

let lines t = t.sets * t.assoc
let line_bytes t = t.line
let sets t = t.sets
let assoc t = t.assoc
let hits t = t.hit_count
let misses t = t.miss_count

(* Recency-normalised view of one set: the way tags ordered most- to
   least-recently used.  Two cache states with equal snapshots for every
   relevant set behave identically under any future access sequence —
   hits, victim choices and therefore future snapshots depend only on
   tags and the per-set recency order, never on absolute stamp or clock
   values.  The simulator's steady-state detectors compare these. *)
let snapshot_set t set buf off =
  let base = set * t.assoc in
  (* Rank each way by counting strictly-more-recent peers (ties — possible
     only between never-touched ways, which share stamp 0 — broken by way
     index), then scatter tags by rank.  One pass per way, no sort state,
     no allocation.  assoc <= 8. *)
  for w = 0 to t.assoc - 1 do
    let sw = Array.unsafe_get t.stamps (base + w) in
    let rank = ref 0 in
    for v = 0 to t.assoc - 1 do
      let sv = Array.unsafe_get t.stamps (base + v) in
      if sv > sw || (sv = sw && v < w) then incr rank
    done;
    Array.unsafe_set buf (off + !rank) (Array.unsafe_get t.tags (base + w))
  done

(* A flood: an access sequence that touches every set with at least
   [assoc] distinct lines.  Such a sequence evicts all prior contents, so
   the state it leaves behind — per-set tags and recency order, the only
   state future behaviour can observe — is one canonical state independent
   of what preceded it, and installing that state directly is equivalent
   to replaying the sequence.  The simulator's inter-entry I-cache scrub
   is exactly such a sequence, applied once per simulated loop entry. *)
type flood = {
  f_tags : int array;
  f_rank : int array; (* stamp order within each set, 1 .. assoc = MRU *)
}

let plan_flood t addrs =
  let fresh =
    {
      t with
      tags = Array.make (t.sets * t.assoc) (-1);
      stamps = Array.make (t.sets * t.assoc) 0;
      clock = 0;
      hit_count = 0;
      miss_count = 0;
    }
  in
  Array.iter (fun a -> ignore (access fresh a)) addrs;
  (* Full validity from cold means every set received >= assoc distinct
     lines — the flood condition. *)
  if Array.exists (fun tg -> tg < 0) fresh.tags then None
  else begin
    let rank = Array.make (t.sets * t.assoc) 0 in
    for s = 0 to t.sets - 1 do
      let base = s * t.assoc in
      for w = 0 to t.assoc - 1 do
        let sw = fresh.stamps.(base + w) in
        let r = ref 1 in
        for v = 0 to t.assoc - 1 do
          if fresh.stamps.(base + v) < sw then incr r
        done;
        rank.(base + w) <- !r
      done
    done;
    Some { f_tags = fresh.tags; f_rank = rank }
  end

let apply_flood t f =
  let n = t.sets * t.assoc in
  Array.blit f.f_tags 0 t.tags 0 n;
  let c = t.clock in
  for i = 0 to n - 1 do
    Array.unsafe_set t.stamps i (c + Array.unsafe_get f.f_rank i)
  done;
  t.clock <- c + t.assoc

let snapshot_all t =
  let buf = Array.make (t.sets * t.assoc) (-1) in
  for s = 0 to t.sets - 1 do
    snapshot_set t s buf (s * t.assoc)
  done;
  buf
