let min_cycles_filter = 50_000

let noisy_median ~rng ~noise ~runs f =
  let exact = f () in
  if noise <= 0.0 || runs <= 1 then exact
  else begin
    let samples =
      Array.init runs (fun _ ->
          let factor = 1.0 +. (noise *. Rng.gaussian rng) in
          let factor = Float.max 0.5 factor in
          float_of_int exact *. factor)
    in
    int_of_float (Float.round (Stats.median samples))
  end

let sweep ?(noise = 0.015) ?(runs = 30) ?max_sim_iters ?(cache = Compile_cache.global)
    ~rng ~machine ~swp loop =
  Array.init Unroll.max_factor (fun i ->
      let u = i + 1 in
      let key = Compile_cache.key ~machine ~swp ~factor:u loop in
      let exact =
        (* Simulation is deterministic given the loop content, factor and
           machine, so the warm steady-state cycle count can be memoised
           alongside the compiled executable; measurement noise is applied
           after the lookup, from the caller's RNG, so warm and cold runs
           observe identical distributions. *)
        match Compile_cache.find_cycles cache key ~max_sim_iters with
        | Some cycles -> cycles
        | None ->
          let exe = Simulator.compile ~cache machine ~swp loop u in
          let state = Simulator.create_state machine in
          (* Warm-up run: the paper measures loops inside live processes, so
             steady-state measurements see warm caches. *)
          ignore (Simulator.run ?max_sim_iters state exe);
          let cycles = Simulator.run ?max_sim_iters state exe in
          Compile_cache.store_cycles cache key ~max_sim_iters cycles;
          cycles
      in
      noisy_median ~rng ~noise ~runs (fun () -> exact))
