let min_cycles_filter = 50_000

let noisy_median ~rng ~noise ~runs f =
  let exact = f () in
  if noise <= 0.0 || runs <= 1 then exact
  else begin
    let samples =
      Array.init runs (fun _ ->
          let factor = 1.0 +. (noise *. Rng.gaussian rng) in
          let factor = Float.max 0.5 factor in
          float_of_int exact *. factor)
    in
    int_of_float (Float.round (Stats.median samples))
  end

let sweep ?(noise = 0.015) ?(runs = 30) ?max_sim_iters ~rng ~machine ~swp loop =
  Array.init Unroll.max_factor (fun i ->
      let u = i + 1 in
      let exe = Simulator.compile machine ~swp loop u in
      let state = Simulator.create_state machine in
      (* Warm-up run: the paper measures loops inside live processes, so
         steady-state measurements see warm caches. *)
      ignore (Simulator.run ?max_sim_iters state exe);
      noisy_median ~rng ~noise ~runs (fun () -> Simulator.run ?max_sim_iters state exe))
