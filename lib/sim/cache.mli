(** Set-associative cache with LRU replacement.

    Used for L1D, L1I and the unified L2.  Addresses are plain byte
    addresses in the simulated address space. *)

type t

val create : Machine.cache_geom -> t

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on a
    hit.  On a miss the line is allocated, evicting the LRU way. *)

val probe : t -> int -> bool
(** Like {!access} but without allocating on a miss. *)

val reset : t -> unit
(** Invalidate everything. *)

val lines : t -> int
(** Total number of lines (capacity / line size). *)

val line_bytes : t -> int
