(** Set-associative cache with LRU replacement.

    Used for L1D, L1I and the unified L2.  Addresses are plain byte
    addresses in the simulated address space.  When both the line size and
    the set count are powers of two (true for every shipped machine
    geometry) indexing is shift/mask; otherwise a division fallback is
    used. *)

type t

val create : Machine.cache_geom -> t

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on a
    hit.  On a miss the line is allocated, evicting the LRU way. *)

val probe : t -> int -> bool
(** Like {!access} but without allocating on a miss. *)

val reset : t -> unit
(** Invalidate everything (counters are preserved). *)

val copy : t -> t
(** Independent deep copy; used to evaluate hypothetical access sequences
    without disturbing the live state. *)

val lines : t -> int
(** Total number of lines (capacity / line size). *)

val line_bytes : t -> int
val sets : t -> int
val assoc : t -> int

val set_of_addr : t -> int -> int
(** The set index the line containing [addr] maps to. *)

val hits : t -> int
val misses : t -> int
(** Cumulative {!access} hit/miss counters since creation.  Telemetry
    only — they are not part of the simulator's bit-identical contract. *)

val snapshot_set : t -> int -> int array -> int -> unit
(** [snapshot_set t set buf off] writes [assoc t] ints at [buf.(off)]: the
    set's way tags ordered most- to least-recently used.  Two cache states
    whose snapshots agree on every set relevant to a future access
    sequence produce identical hit/miss behaviour for that sequence — LRU
    depends only on tags and per-set recency order, never on absolute
    stamp values. *)

val snapshot_all : t -> int array
(** Snapshot of every set, [sets t * assoc t] ints. *)

type flood
(** A precomputed overwrite equivalent to replaying an access sequence
    that floods every set with at least [assoc] distinct lines. *)

val plan_flood : t -> int array -> flood option
(** [plan_flood t addrs] is [Some f] when accessing [addrs] in order
    fills every set from cold — which makes the resulting state (tags and
    per-set recency order) independent of the state the sequence is
    applied to — and [None] otherwise.  [f] depends only on the cache
    geometry and [addrs]. *)

val apply_flood : t -> flood -> unit
(** Installs the flood's canonical state: same tags and recency order as
    replaying the sequence through {!access}, at array-copy cost.  The
    hit/miss counters are not touched — flooding is state replacement,
    not measured traffic. *)
