(** Eigendecomposition of symmetric matrices (cyclic Jacobi).

    Fisher LDA — used to project loop feature vectors to the plane for the
    paper's Figures 1 and 2 — needs the leading eigenvectors of a symmetric
    matrix.  Jacobi rotation is simple, unconditionally stable, and fast
    enough for feature-space dimensions (≤ 38). *)

val symmetric : ?max_sweeps:int -> ?eps:float -> Mat.t ->
  float array * Mat.t
(** [symmetric a] diagonalises symmetric [a], returning [(values, vectors)]
    with eigenvalues sorted in decreasing order and the corresponding
    eigenvectors as matrix {e columns}.  Only the lower triangle of [a] is
    trusted.  [max_sweeps] (default 64) bounds the number of Jacobi sweeps;
    [eps] (default 1e-12) is the off-diagonal convergence threshold. *)

val top_eigenvectors : Mat.t -> int -> float array array
(** [top_eigenvectors a k] returns the [k] eigenvectors of symmetric [a]
    with largest eigenvalues, each as a row vector. *)
