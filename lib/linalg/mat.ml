type t = { r : int; c : int; a : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Mat.create";
  { r; c; a = Array.make (r * c) 0.0 }

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.a.((i * c) + j) <- f i j
    done
  done;
  m

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then create 0 0
  else begin
    let c = Array.length rows.(0) in
    Array.iter (fun row -> if Array.length row <> c then invalid_arg "Mat.of_rows: ragged") rows;
    init r c (fun i j -> rows.(i).(j))
  end

let of_flat r c a =
  if r < 0 || c < 0 || Array.length a <> r * c then invalid_arg "Mat.of_flat";
  { r; c; a }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let rows m = m.r
let cols m = m.c

let get m i j = m.a.((i * m.c) + j)
let set m i j v = m.a.((i * m.c) + j) <- v

let copy m = { m with a = Array.copy m.a }

let row m i = Array.sub m.a (i * m.c) m.c

let col m j = Array.init m.r (fun i -> get m i j)

let transpose m = init m.c m.r (fun i j -> get m j i)

let check_same m n =
  if m.r <> n.r || m.c <> n.c then invalid_arg "Mat: dimension mismatch"

let add m n =
  check_same m n;
  { m with a = Array.init (Array.length m.a) (fun i -> m.a.(i) +. n.a.(i)) }

let sub m n =
  check_same m n;
  { m with a = Array.init (Array.length m.a) (fun i -> m.a.(i) -. n.a.(i)) }

let scale s m = { m with a = Array.map (fun v -> s *. v) m.a }

(* i-k-j loop order: the inner loop walks both matrices row-major. *)
let mul m n =
  if m.c <> n.r then invalid_arg "Mat.mul: inner dimensions";
  let out = create m.r n.c in
  for i = 0 to m.r - 1 do
    for k = 0 to m.c - 1 do
      let mik = m.a.((i * m.c) + k) in
      if mik <> 0.0 then
        for j = 0 to n.c - 1 do
          out.a.((i * n.c) + j) <- out.a.((i * n.c) + j) +. (mik *. n.a.((k * n.c) + j))
        done
    done
  done;
  out

let mul_vec m x =
  if m.c <> Array.length x then invalid_arg "Mat.mul_vec: dimension";
  Array.init m.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        acc := !acc +. (m.a.((i * m.c) + j) *. x.(j))
      done;
      !acc)

let add_diagonal m a =
  let n = min m.r m.c in
  for i = 0 to n - 1 do
    m.a.((i * m.c) + i) <- m.a.((i * m.c) + i) +. a
  done

let data m = m.a

(* ------------------------------------------------------------------ *)
(* Blocked pairwise kernels over row-major points matrices.

   Every output entry is a function of exactly two rows, computed with the
   inner summation running left-to-right over the full row — tiling only
   reorders *independent* entries for cache locality, and worker domains
   own disjoint row blocks, so results are bit-identical for every [jobs]
   value and every block size. *)

let block = 64

let row_norms2 m =
  Array.init m.r (fun i ->
      let base = i * m.c in
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        let v = m.a.(base + j) in
        acc := !acc +. (v *. v)
      done;
      !acc)

let gram ?(jobs = 1) m =
  let n = m.r and d = m.c in
  let out = create n n in
  let a = m.a and o = out.a in
  (* Fill the tile rows [i0,i1] x columns [j0,j1] with j >= i entries and
     mirror them; tiles below the diagonal are never visited, so each
     output element is written exactly once (no races across domains). *)
  let fill_rows i0 =
    let i1 = min (n - 1) (i0 + block - 1) in
    let j0 = ref i0 in
    while !j0 < n do
      let j1 = min (n - 1) (!j0 + block - 1) in
      for i = i0 to i1 do
        let bi = i * d in
        for j = max i !j0 to j1 do
          let bj = j * d in
          let acc = ref 0.0 in
          for k = 0 to d - 1 do
            acc := !acc +. (a.(bi + k) *. a.(bj + k))
          done;
          o.((i * n) + j) <- !acc;
          o.((j * n) + i) <- !acc
        done
      done;
      j0 := !j0 + block
    done
  in
  let n_blocks = (n + block - 1) / block in
  Parallel.iter ~jobs n_blocks (fun b -> fill_rows (b * block));
  out

let pairwise_dist2 ?(jobs = 1) m =
  let n = m.r and d = m.c in
  let out = create n n in
  let a = m.a and o = out.a in
  (* Direct blocked differences rather than |x|²+|y|²−2x·y: the gram form
     is a hair faster but its cancellation noise (±1 ulp around 0 for
     duplicate rows) breaks exact-tie reproducibility against the
     incremental Pairwise triangle.  Each entry sums (x_k−y_k)² left to
     right over features — bit-identical to [Vec.dist2] and independent
     of [jobs] and the tile size.  The worker owning row block [i0,i1]
     writes exactly the pairs (i, k) with i0 <= i <= i1 < k plus their
     mirrors and its own diagonal zeros, so no element races. *)
  let fill_rows i0 =
    let i1 = min (n - 1) (i0 + block - 1) in
    let k0 = ref i0 in
    while !k0 < n do
      let k1 = min (n - 1) (!k0 + block - 1) in
      for i = i0 to i1 do
        let bi = i * d in
        for k = max (i + 1) !k0 to k1 do
          let bk = k * d in
          let acc = ref 0.0 in
          for j = 0 to d - 1 do
            let dv = a.(bi + j) -. a.(bk + j) in
            acc := !acc +. (dv *. dv)
          done;
          o.((i * n) + k) <- !acc;
          o.((k * n) + i) <- !acc
        done
      done;
      k0 := !k0 + block
    done
  in
  let n_blocks = (n + block - 1) / block in
  Parallel.iter ~jobs n_blocks (fun b -> fill_rows (b * block));
  out

let equal ?(eps = 1e-9) m n =
  m.r = n.r && m.c = n.c
  &&
  let ok = ref true in
  for i = 0 to Array.length m.a - 1 do
    if Float.abs (m.a.(i) -. n.a.(i)) > eps then ok := false
  done;
  !ok

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.4f" (get m i j)
    done;
    Format.fprintf fmt "]@."
  done
