type t = { r : int; c : int; a : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Mat.create";
  { r; c; a = Array.make (r * c) 0.0 }

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.a.((i * c) + j) <- f i j
    done
  done;
  m

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then create 0 0
  else begin
    let c = Array.length rows.(0) in
    Array.iter (fun row -> if Array.length row <> c then invalid_arg "Mat.of_rows: ragged") rows;
    init r c (fun i j -> rows.(i).(j))
  end

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let rows m = m.r
let cols m = m.c

let get m i j = m.a.((i * m.c) + j)
let set m i j v = m.a.((i * m.c) + j) <- v

let copy m = { m with a = Array.copy m.a }

let row m i = Array.sub m.a (i * m.c) m.c

let col m j = Array.init m.r (fun i -> get m i j)

let transpose m = init m.c m.r (fun i j -> get m j i)

let check_same m n =
  if m.r <> n.r || m.c <> n.c then invalid_arg "Mat: dimension mismatch"

let add m n =
  check_same m n;
  { m with a = Array.init (Array.length m.a) (fun i -> m.a.(i) +. n.a.(i)) }

let sub m n =
  check_same m n;
  { m with a = Array.init (Array.length m.a) (fun i -> m.a.(i) -. n.a.(i)) }

let scale s m = { m with a = Array.map (fun v -> s *. v) m.a }

(* i-k-j loop order: the inner loop walks both matrices row-major. *)
let mul m n =
  if m.c <> n.r then invalid_arg "Mat.mul: inner dimensions";
  let out = create m.r n.c in
  for i = 0 to m.r - 1 do
    for k = 0 to m.c - 1 do
      let mik = m.a.((i * m.c) + k) in
      if mik <> 0.0 then
        for j = 0 to n.c - 1 do
          out.a.((i * n.c) + j) <- out.a.((i * n.c) + j) +. (mik *. n.a.((k * n.c) + j))
        done
    done
  done;
  out

let mul_vec m x =
  if m.c <> Array.length x then invalid_arg "Mat.mul_vec: dimension";
  Array.init m.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        acc := !acc +. (m.a.((i * m.c) + j) *. x.(j))
      done;
      !acc)

let add_diagonal m a =
  let n = min m.r m.c in
  for i = 0 to n - 1 do
    m.a.((i * m.c) + i) <- m.a.((i * m.c) + i) +. a
  done

let equal ?(eps = 1e-9) m n =
  m.r = n.r && m.c = n.c
  &&
  let ok = ref true in
  for i = 0 to Array.length m.a - 1 do
    if Float.abs (m.a.(i) -. n.a.(i)) > eps then ok := false
  done;
  !ok

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.4f" (get m i j)
    done;
    Format.fprintf fmt "]@."
  done
