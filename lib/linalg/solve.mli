(** Direct solvers for dense linear systems.

    LS-SVM training reduces to solving (K + I/gamma) alpha = y with a
    symmetric positive-definite matrix, and its fast leave-one-out rule
    needs the explicit inverse; both are provided here, together with a
    pivoted LU for general systems (used by LDA). *)

exception Singular
(** Raised when a factorisation encounters a (numerically) singular pivot. *)

type cholesky
(** A Cholesky factorisation L with A = L Lᵀ. *)

val cholesky : Mat.t -> cholesky
(** Factorises a symmetric positive-definite matrix.  Only the lower triangle
    of the argument is read.  Raises {!Singular} if a pivot underflows. *)

val cholesky_solve : cholesky -> Vec.t -> Vec.t
(** Solves A x = b given the factorisation of A. *)

val cholesky_inverse : cholesky -> Mat.t
(** The full inverse A⁻¹. *)

val cholesky_inverse_diagonal : cholesky -> float array
(** diag(A⁻¹) alone, via (A⁻¹)_jj = ‖L⁻¹eⱼ‖² — one forward solve per
    column, n³/6 work instead of the inverse's n³.  This is all the
    closed-form LS-SVM LOOCV residuals need. *)

val cholesky_log_det : cholesky -> float
(** log determinant of A (useful for conditioning diagnostics). *)

(** Growable Cholesky factorisation for incremental (online) training.

    Appending row/column n to a symmetric positive-definite A only appends
    row n to its factor L — rows 0..n-1 are unchanged — so n → n+1 costs
    one O(n²) forward substitution instead of the O(n³) refactorisation.

    {b Bit-identity contract.}  After any sequence of {!Chol.append} /
    {!Chol.remove_last} calls, the factor — and therefore every
    {!Chol.solve} / {!Chol.inverse_diagonal} result — is bit-for-bit
    identical to [cholesky] of the same matrix built from scratch: the
    appended row is computed with exactly the batch column loop's
    accumulation order (operand order included, multiplication being
    IEEE-commutative), and batch factorisation of a leading principal
    submatrix never reads the rows being dropped.  The exactness is not an
    ulp bound; it is equality, and the qcheck suite enforces it on the
    solve results {!Lssvm} consumes. *)
module Chol : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** An empty factorisation; [capacity] preallocates row slots. *)

  val of_matrix : Mat.t -> t
  (** Batch-factorise a matrix (same algorithm, and bit-identical result,
      as {!cholesky}).  Raises {!Singular} as {!cholesky} does. *)

  val size : t -> int

  val append : t -> float array -> unit
  (** [append t b] extends the factorisation of A to that of
      [[A b'; b'ᵀ b_n]] where [b] (length [size t + 1]) is the new
      bordering row of the extended matrix, diagonal entry last — O(n²).
      Raises {!Singular} if the new pivot underflows, leaving [t]
      unchanged. *)

  val remove_last : t -> unit
  (** Downdate to the leading principal submatrix: drop the last
      row/column — O(1) and exact, the inverse of {!append}. *)

  val factor : t -> cholesky
  (** A snapshot usable with the [cholesky_*] functions.  Shares row
      storage but stays valid (and immutable) across later appends. *)

  val solve : t -> Vec.t -> Vec.t
  (** [cholesky_solve] against the current factor. *)

  val inverse_diagonal : t -> float array
  val log_det : t -> float
end

type lu
(** An LU factorisation with partial pivoting, P A = L U. *)

val lu : Mat.t -> lu
(** Factorises a square matrix.  Raises {!Singular} on singular input. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solves A x = b given the factorisation. *)

val lu_inverse : lu -> Mat.t

val solve : Mat.t -> Vec.t -> Vec.t
(** One-shot pivoted-LU solve of A x = b. *)

val inverse : Mat.t -> Mat.t
(** One-shot inverse via pivoted LU. *)
