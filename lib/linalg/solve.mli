(** Direct solvers for dense linear systems.

    LS-SVM training reduces to solving (K + I/gamma) alpha = y with a
    symmetric positive-definite matrix, and its fast leave-one-out rule
    needs the explicit inverse; both are provided here, together with a
    pivoted LU for general systems (used by LDA). *)

exception Singular
(** Raised when a factorisation encounters a (numerically) singular pivot. *)

type cholesky
(** A Cholesky factorisation L with A = L Lᵀ. *)

val cholesky : Mat.t -> cholesky
(** Factorises a symmetric positive-definite matrix.  Only the lower triangle
    of the argument is read.  Raises {!Singular} if a pivot underflows. *)

val cholesky_solve : cholesky -> Vec.t -> Vec.t
(** Solves A x = b given the factorisation of A. *)

val cholesky_inverse : cholesky -> Mat.t
(** The full inverse A⁻¹. *)

val cholesky_inverse_diagonal : cholesky -> float array
(** diag(A⁻¹) alone, via (A⁻¹)_jj = ‖L⁻¹eⱼ‖² — one forward solve per
    column, n³/6 work instead of the inverse's n³.  This is all the
    closed-form LS-SVM LOOCV residuals need. *)

val cholesky_log_det : cholesky -> float
(** log determinant of A (useful for conditioning diagnostics). *)

type lu
(** An LU factorisation with partial pivoting, P A = L U. *)

val lu : Mat.t -> lu
(** Factorises a square matrix.  Raises {!Singular} on singular input. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solves A x = b given the factorisation. *)

val lu_inverse : lu -> Mat.t

val solve : Mat.t -> Vec.t -> Vec.t
(** One-shot pivoted-LU solve of A x = b. *)

val inverse : Mat.t -> Mat.t
(** One-shot inverse via pivoted LU. *)
