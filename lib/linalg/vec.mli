(** Dense vectors over [float array].

    Vectors are plain float arrays (unboxed in OCaml), aliased here for
    readability.  Operations allocate fresh results unless suffixed
    [_inplace]. *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
(** Element-wise sum.  Dimensions must agree. *)

val sub : t -> t -> t
(** Element-wise difference. *)

val scale : float -> t -> t
(** Scalar multiple. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
(** Inner product. *)

val norm2 : t -> float
(** Euclidean norm. *)

val dist2 : t -> t -> float
(** Squared Euclidean distance — the hot path of near-neighbor search. *)

val dist : t -> t -> float
(** Euclidean distance. *)

val equal : ?eps:float -> t -> t -> bool
(** Component-wise equality within [eps] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
