exception Singular

(* The Cholesky factor is kept as raw lower-triangular rows: the LS-SVM
   experiments factor and invert matrices in the low thousands, and row
   arrays keep the inner loops free of index arithmetic and matrix
   accessors. *)
type cholesky = {
  rows : float array array;
  (* cols.(i).(k-i) = L(k,i) for k >= i: the transposed factor, stored
     contiguously so the backward substitution streams memory. *)
  mutable cols : float array array option;
}

let cholesky a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Solve.cholesky: non-square";
  (* Copy the lower triangle. *)
  let l = Array.init n (fun i -> Array.init (i + 1) (fun j -> Mat.get a i j)) in
  for j = 0 to n - 1 do
    let lj = l.(j) in
    let s = ref lj.(j) in
    for k = 0 to j - 1 do
      s := !s -. (lj.(k) *. lj.(k))
    done;
    if !s <= 1e-12 then raise Singular;
    let d = sqrt !s in
    lj.(j) <- d;
    for i = j + 1 to n - 1 do
      let li = l.(i) in
      let s = ref li.(j) in
      for k = 0 to j - 1 do
        s := !s -. (li.(k) *. lj.(k))
      done;
      li.(j) <- !s /. d
    done
  done;
  { rows = l; cols = None }

(* Solves L y = b, allowing a known prefix of zeros in [b] (y is zero
   there too, a big saving when inverting column by column). *)
let forward_subst rows ?(first = 0) b y =
  let n = Array.length rows in
  Array.fill y 0 n 0.0;
  for i = first to n - 1 do
    let ri = rows.(i) in
    let s = ref b.(i) in
    for k = first to i - 1 do
      s := !s -. (ri.(k) *. y.(k))
    done;
    y.(i) <- !s /. ri.(i)
  done

let transposed_factor t =
  match t.cols with
  | Some c -> c
  | None ->
    let n = Array.length t.rows in
    let c = Array.init n (fun i -> Array.init (n - i) (fun d -> t.rows.(i + d).(i))) in
    t.cols <- Some c;
    c

(* Solves Lᵀ x = y in place over [y], reading the transposed factor. *)
let backward_subst_transposed cols y =
  let n = Array.length cols in
  for i = n - 1 downto 0 do
    let ci = cols.(i) in
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (ci.(k - i) *. y.(k))
    done;
    y.(i) <- !s /. ci.(0)
  done

let cholesky_solve t b =
  let rows = t.rows in
  let n = Array.length rows in
  if Array.length b <> n then invalid_arg "Solve.cholesky_solve: dimension";
  let y = Array.make n 0.0 in
  forward_subst rows b y;
  backward_subst_transposed (transposed_factor t) y;
  y

let cholesky_inverse t =
  let rows = t.rows in
  let cols = transposed_factor t in
  let n = Array.length rows in
  let inv = Mat.create n n in
  let e = Array.make n 0.0 in
  let y = Array.make n 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    (* e_j is zero before position j, so the forward solve starts there. *)
    forward_subst rows ~first:j e y;
    backward_subst_transposed cols y;
    e.(j) <- 0.0;
    for i = 0 to n - 1 do
      Mat.set inv i j y.(i)
    done
  done;
  inv

(* diag(A^-1) without the full inverse: A^-1 = L^-T L^-1, so
   (A^-1)_jj = || L^-1 e_j ||^2 — one (sparse) forward solve per column. *)
let cholesky_inverse_diagonal t =
  let rows = t.rows in
  let n = Array.length rows in
  let diag = Array.make n 0.0 in
  let e = Array.make n 0.0 in
  let y = Array.make n 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    forward_subst rows ~first:j e y;
    e.(j) <- 0.0;
    let acc = ref 0.0 in
    for i = j to n - 1 do
      acc := !acc +. (y.(i) *. y.(i))
    done;
    diag.(j) <- !acc
  done;
  diag

let cholesky_log_det { rows; _ } =
  let n = Array.length rows in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. log rows.(i).(i)
  done;
  2.0 *. !acc

(* --- growable factorisation ---------------------------------------------

   Appending row/column n to A only adds row n to L: the batch algorithm
   computes L(n,j) = (A(n,j) - sum_{k<j} L(n,k) L(j,k)) / L(j,j) reading
   rows 0..n-1 of the factor, which appending leaves untouched.  That
   recurrence is a forward substitution against the existing rows with the
   same accumulation order as the batch column loop, so the appended factor
   is bit-identical to refactoring the extended matrix from scratch — the
   contract {!Chol} exposes and the incremental LS-SVM trainer relies on. *)

module Chol = struct
  type t = {
    mutable frows : float array array; (* capacity slots; frows.(i) has length i+1 *)
    mutable n : int;
  }

  let create ?(capacity = 16) () = { frows = Array.make (max 1 capacity) [||]; n = 0 }

  let of_matrix a =
    let { rows; _ } = cholesky a in
    { frows = rows; n = Array.length rows }

  let size t = t.n

  let ensure_capacity t =
    if t.n >= Array.length t.frows then begin
      let bigger = Array.make (max 4 (2 * Array.length t.frows)) [||] in
      Array.blit t.frows 0 bigger 0 t.n;
      t.frows <- bigger
    end

  let append t b =
    let n = t.n in
    if Array.length b <> n + 1 then invalid_arg "Solve.Chol.append: row length";
    ensure_capacity t;
    let y = Array.make (n + 1) 0.0 in
    (* Forward substitution L y = b over the existing rows: identical
       arithmetic, operand for operand, to the batch column loop's
       treatment of a final row. *)
    for i = 0 to n - 1 do
      let ri = t.frows.(i) in
      let s = ref b.(i) in
      for k = 0 to i - 1 do
        s := !s -. (ri.(k) *. y.(k))
      done;
      y.(i) <- !s /. ri.(i)
    done;
    let s = ref b.(n) in
    for k = 0 to n - 1 do
      s := !s -. (y.(k) *. y.(k))
    done;
    if !s <= 1e-12 then raise Singular;
    y.(n) <- sqrt !s;
    t.frows.(n) <- y;
    t.n <- n + 1

  let remove_last t =
    if t.n = 0 then invalid_arg "Solve.Chol.remove_last: empty";
    t.n <- t.n - 1;
    t.frows.(t.n) <- [||]

  (* Snapshot view: the outer array is fresh, the row arrays are shared.
     Rows already in the factor are never mutated again (append writes a
     new slot, remove_last only clears slots past [n]), so the snapshot
     stays valid across later appends. *)
  let factor t = { rows = Array.sub t.frows 0 t.n; cols = None }
  let solve t b = cholesky_solve (factor t) b
  let inverse_diagonal t = cholesky_inverse_diagonal (factor t)
  let log_det t = cholesky_log_det (factor t)
end

type lu = { lu : Mat.t; perm : int array }

let lu a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Solve.lu: non-square";
  let m = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude in column k. *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get m i k) > Float.abs (Mat.get m !piv k) then piv := i
    done;
    if Float.abs (Mat.get m !piv k) < 1e-12 then raise Singular;
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get m k j in
        Mat.set m k j (Mat.get m !piv j);
        Mat.set m !piv j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- t
    end;
    let pivot = Mat.get m k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get m i k /. pivot in
      Mat.set m i k factor;
      for j = k + 1 to n - 1 do
        Mat.set m i j (Mat.get m i j -. (factor *. Mat.get m k j))
      done
    done
  done;
  { lu = m; perm }

let lu_solve { lu = m; perm } b =
  let n = Mat.rows m in
  if Array.length b <> n then invalid_arg "Solve.lu_solve: dimension";
  let y = Array.init n (fun i -> b.(perm.(i))) in
  for i = 0 to n - 1 do
    let s = ref y.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get m i k *. y.(k))
    done;
    y.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.get m i k *. y.(k))
    done;
    y.(i) <- !s /. Mat.get m i i
  done;
  y

let lu_inverse f =
  let n = Mat.rows f.lu in
  let inv = Mat.create n n in
  let e = Array.make n 0.0 in
  for j = 0 to n - 1 do
    e.(j) <- 1.0;
    let x = lu_solve f e in
    e.(j) <- 0.0;
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv

let solve a b = lu_solve (lu a) b
let inverse a = lu_inverse (lu a)
