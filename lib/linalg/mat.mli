(** Dense matrices stored row-major in a flat [float array].

    The flat layout keeps the LS-SVM kernel matrix (N×N for N ≈ 2,500)
    allocation- and cache-friendly. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t

val of_flat : int -> int -> float array -> t
(** [of_flat rows cols a] wraps an existing row-major buffer (length must
    be exactly [rows * cols]) without copying.  The matrix takes ownership
    of [a] in the {!data} sense: callers growing flat storage (the
    appendable NN index) hand the used prefix over for the blocked
    kernels. *)

val identity : int -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val row : t -> int -> float array
val col : t -> int -> float array
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product.  Inner dimensions must agree. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix–vector product. *)

val add_diagonal : t -> float -> unit
(** [add_diagonal m a] adds [a] to every diagonal entry in place — the ridge
    term K + I/gamma of LS-SVM. *)

val data : t -> float array
(** The underlying row-major buffer (element [(i,j)] at [i * cols + j]).
    Shared, not a copy — intended for flat kernels that need allocation-free
    access; mutate only if you own the matrix. *)

val row_norms2 : t -> float array
(** Squared Euclidean norm of every row. *)

val gram : ?jobs:int -> t -> t
(** [gram m] is the n×n matrix m·mᵀ of row dot products, computed in
    cache-friendly tiles fanned out over [jobs] worker domains (default 1).
    Each entry is the full left-to-right dot product of two rows, so the
    result is bit-identical for every [jobs] value and block size. *)

val pairwise_dist2 : ?jobs:int -> t -> t
(** Squared Euclidean distance between every pair of rows, computed in
    cache-friendly tiles fanned out over [jobs] worker domains.  Each
    entry sums (x_k − y_k)² left to right over features — deliberately
    not the |x|² + |y|² − 2·x·y gram form, whose cancellation noise
    around 0 breaks exact-tie reproducibility for duplicate rows — so
    the result is bit-identical to per-pair {!Vec.dist2} and to itself
    at every [jobs] value and block size. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
