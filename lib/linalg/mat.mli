(** Dense matrices stored row-major in a flat [float array].

    The flat layout keeps the LS-SVM kernel matrix (N×N for N ≈ 2,500)
    allocation- and cache-friendly. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
val identity : int -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val row : t -> int -> float array
val col : t -> int -> float array
val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product.  Inner dimensions must agree. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix–vector product. *)

val add_diagonal : t -> float -> unit
(** [add_diagonal m a] adds [a] to every diagonal entry in place — the ridge
    term K + I/gamma of LS-SVM. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
