let symmetric ?(max_sweeps = 64) ?(eps = 1e-12) a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Eigen.symmetric: non-square";
  (* Work on a symmetrised copy so that only the lower triangle is trusted. *)
  let m = Mat.init n n (fun i j -> if i >= j then Mat.get a i j else Mat.get a j i) in
  let v = Mat.identity n in
  let off_diag_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Mat.get m i j in
        acc := !acc +. (x *. x)
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    let apq = Mat.get m p q in
    if Float.abs apq > 0.0 then begin
      let app = Mat.get m p p and aqq = Mat.get m q q in
      let theta = (aqq -. app) /. (2.0 *. apq) in
      let t =
        let s = if theta >= 0.0 then 1.0 else -1.0 in
        s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
      in
      let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let mkp = Mat.get m k p and mkq = Mat.get m k q in
        Mat.set m k p ((c *. mkp) -. (s *. mkq));
        Mat.set m k q ((s *. mkp) +. (c *. mkq))
      done;
      for k = 0 to n - 1 do
        let mpk = Mat.get m p k and mqk = Mat.get m q k in
        Mat.set m p k ((c *. mpk) -. (s *. mqk));
        Mat.set m q k ((s *. mpk) +. (c *. mqk))
      done;
      for k = 0 to n - 1 do
        let vkp = Mat.get v k p and vkq = Mat.get v k q in
        Mat.set v k p ((c *. vkp) -. (s *. vkq));
        Mat.set v k q ((s *. vkp) +. (c *. vkq))
      done
    end
  in
  let sweeps = ref 0 in
  while off_diag_norm () > eps && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  let values = Array.init n (fun i -> Mat.get m i i) in
  (* Sort eigenpairs by decreasing eigenvalue. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare values.(j) values.(i)) order;
  let sorted_values = Array.map (fun i -> values.(i)) order in
  let sorted_vectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  (sorted_values, sorted_vectors)

let top_eigenvectors a k =
  let _, vectors = symmetric a in
  let n = Mat.rows a in
  if k > n then invalid_arg "Eigen.top_eigenvectors: k too large";
  Array.init k (fun j -> Array.init n (fun i -> Mat.get vectors i j))
