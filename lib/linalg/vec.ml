type t = float array

let make n v = Array.make n v
let init n f = Array.init n f
let copy = Array.copy
let dim = Array.length

let check_dim x y =
  if Array.length x <> Array.length y then invalid_arg "Vec: dimension mismatch"

let add x y =
  check_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dim x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_dim x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let dist2 x y =
  check_dim x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist x y = sqrt (dist2 x y)

let equal ?(eps = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > eps then ok := false
  done;
  !ok

let pp fmt x =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" v)
    x;
  Format.fprintf fmt "|]"
