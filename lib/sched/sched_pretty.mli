(** Human-readable rendering of schedules.

    Shows one row per cycle with the ops issued in each functional-unit
    column — for pipelined schedules, one row per modulo slot with stage
    annotations — which makes scheduler behaviour reviewable at a glance
    in examples and failing tests. *)

val render : Schedule.t -> string
(** Multi-line rendering; ops appear as [#n] body positions followed by
    their opcode mnemonic. *)

val render_occupancy : Schedule.t -> string
(** One line per unit class with utilisation percentages — how saturated
    the machine is under this schedule. *)
