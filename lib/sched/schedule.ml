type kind = Straight | Pipelined of { ii : int; stages : int }

type t = {
  loop : Loop.t;
  machine : Machine.t;
  assignment : int array;
  length : int;
  kind : kind;
  spills : int;
  int_pressure : int;
  fp_pressure : int;
  csr : Deps.csr;
}

let ii t =
  match t.kind with
  | Pipelined { ii; _ } -> ii
  | Straight -> t.length + t.machine.Machine.taken_branch_cost

let validate t =
  let m = t.machine in
  let deps = Deps_memo.deps m t.loop in
  let window = match t.kind with Pipelined { ii; _ } -> ii | Straight -> max_int in
  let pipelined = match t.kind with Pipelined _ -> true | Straight -> false in
  let err = ref None in
  (* Dependence constraints. *)
  List.iter
    (fun (e : Deps.edge) ->
      let skip =
        (* Pipelined schedules rotate the branch, so intra-iteration
           serialisation against it does not apply; straight schedules
           re-issue in order each iteration, so loop-carried latencies are
           enforced by hardware interlocks rather than the schedule. *)
        (pipelined && e.Deps.dkind = Deps.Serial)
        || ((not pipelined) && e.Deps.distance > 0)
      in
      if (not skip) && !err = None then begin
        let slack_ii = if pipelined then window else 0 in
        let lhs = t.assignment.(e.Deps.dst) + (slack_ii * e.Deps.distance) in
        let rhs = t.assignment.(e.Deps.src) + e.Deps.latency in
        if lhs < rhs then
          err :=
            Some
              (Printf.sprintf "edge %d->%d (lat %d dist %d) violated: %d < %d"
                 e.Deps.src e.Deps.dst e.Deps.latency e.Deps.distance lhs rhs)
      end)
    deps.Deps.edges;
  (* Resource constraints. *)
  (match !err with
  | Some _ -> ()
  | None ->
    let span = if pipelined then window else t.length in
    let per_kind = Hashtbl.create 16 in
    let total = Array.make (max span 1) 0 in
    Array.iteri
      (fun pos time ->
        let op = t.loop.Loop.body.(pos) in
        let slot = if pipelined then time mod window else time in
        if slot >= 0 && slot < span then begin
          total.(slot) <- total.(slot) + 1;
          let k = Machine.unit_of op in
          let key = (slot, k) in
          let c = Option.value (Hashtbl.find_opt per_kind key) ~default:0 in
          Hashtbl.replace per_kind key (c + 1)
        end)
      t.assignment;
    Array.iteri
      (fun slot c ->
        if c > m.Machine.issue_width && !err = None then
          err := Some (Printf.sprintf "cycle %d issues %d ops (width %d)" slot c m.Machine.issue_width))
      total;
    Hashtbl.iter
      (fun (slot, k) c ->
        let avail =
          match k with
          | Machine.M -> m.Machine.m_units
          | Machine.I -> m.Machine.i_units
          | Machine.F -> m.Machine.f_units
          | Machine.B -> m.Machine.b_units
        in
        if c > avail && !err = None then
          err := Some (Printf.sprintf "cycle %d oversubscribes a unit class (%d > %d)" slot c avail))
      per_kind);
  match !err with None -> Ok () | Some msg -> Error msg
