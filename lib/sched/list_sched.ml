(* Per-cycle resource tracking shared conceptually with the modulo
   scheduler's reservation table, but indexed by absolute cycle here. *)
type restable = {
  machine : Machine.t;
  mutable per_cycle : int array array; (* cycle -> [m; i; f; b; total] *)
}

let kind_index = function Machine.M -> 0 | Machine.I -> 1 | Machine.F -> 2 | Machine.B -> 3

let avail m = [| m.Machine.m_units; m.Machine.i_units; m.Machine.f_units; m.Machine.b_units |]

let make_restable machine = { machine; per_cycle = Array.init 32 (fun _ -> Array.make 5 0) }

let ensure rt cycle =
  let n = Array.length rt.per_cycle in
  if cycle >= n then begin
    let bigger = Array.init (max (cycle + 1) (2 * n)) (fun _ -> Array.make 5 0) in
    Array.blit rt.per_cycle 0 bigger 0 n;
    rt.per_cycle <- bigger
  end

(* Cycles an op occupies its unit: unpipelined divides block the unit. *)
let occupancy m (op : Op.t) =
  match op.Op.opcode with
  | Op.Fdiv when m.Machine.fdiv_unpipelined -> m.Machine.lat_fdiv
  | _ -> 1

let fits rt op cycle =
  let m = rt.machine in
  let k = kind_index (Machine.unit_of op) in
  let occ = occupancy m op in
  let ok = ref true in
  for c = cycle to cycle + occ - 1 do
    ensure rt c;
    let row = rt.per_cycle.(c) in
    if row.(k) >= (avail m).(k) then ok := false;
    (* Only the issue cycle consumes issue width. *)
    if c = cycle && row.(4) >= m.Machine.issue_width then ok := false
  done;
  !ok

let reserve rt op cycle =
  let m = rt.machine in
  let k = kind_index (Machine.unit_of op) in
  let occ = occupancy m op in
  for c = cycle to cycle + occ - 1 do
    ensure rt c;
    let row = rt.per_cycle.(c) in
    row.(k) <- row.(k) + 1;
    if c = cycle then row.(4) <- row.(4) + 1
  done

let schedule ?memo machine (loop : Loop.t) =
  let body = loop.Loop.body in
  let n = Array.length body in
  let g = (Deps_memo.get ?memo machine loop).Deps_memo.csr in
  (* All walks below are over the distance-0 subgraph (the per-iteration
     DAG), reading the CSR arrays directly. *)
  let iter_succs0 v f =
    for s = g.Deps.succ_off.(v) to g.Deps.succ_off.(v + 1) - 1 do
      let e = g.Deps.succ_edge.(s) in
      if g.Deps.e_dist.(e) = 0 then f e
    done
  in
  (* Heights: latency-weighted longest path to a sink over distance-0
     edges, computed sinks-first over a reverse topological order. *)
  let height = Array.make n 0 in
  let order = Array.make n 0 in
  let filled = ref 0 in
  let visited = Array.make n false in
  let rec visit v =
    if not visited.(v) then begin
      visited.(v) <- true;
      iter_succs0 v (fun e -> visit g.Deps.e_dst.(e));
      order.(!filled) <- v;
      incr filled
    end
  in
  for v = 0 to n - 1 do visit v done;
  (* [order] holds sinks first. *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    let best = ref 0 in
    iter_succs0 v (fun e ->
        let cand = height.(g.Deps.e_dst.(e)) + g.Deps.e_lat.(e) in
        if cand > !best then best := cand);
    height.(v) <- !best
  done;
  let unscheduled_preds = Array.make n 0 in
  for e = 0 to g.Deps.n_edges - 1 do
    if g.Deps.e_dist.(e) = 0 then begin
      let d = g.Deps.e_dst.(e) in
      unscheduled_preds.(d) <- unscheduled_preds.(d) + 1
    end
  done;
  let assignment = Array.make n (-1) in
  let earliest = Array.make n 0 in
  let rt = make_restable machine in
  let module Ready = Set.Make (struct
    type t = int * int * int (* -height, body position asc for determinism *)
    let compare = compare
  end) in
  let ready = ref Ready.empty in
  for v = 0 to n - 1 do
    if unscheduled_preds.(v) = 0 then ready := Ready.add (-height.(v), v, 0) !ready
  done;
  let scheduled = ref 0 in
  while !scheduled < n do
    (match Ready.min_elt_opt !ready with
    | None -> failwith "List_sched: dependence cycle in distance-0 graph"
    | Some ((_, v, _) as elt) ->
      ready := Ready.remove elt !ready;
      let cycle = ref earliest.(v) in
      while not (fits rt body.(v) !cycle) do incr cycle done;
      reserve rt body.(v) !cycle;
      assignment.(v) <- !cycle;
      incr scheduled;
      iter_succs0 v (fun e ->
          let d = g.Deps.e_dst.(e) in
          earliest.(d) <- max earliest.(d) (!cycle + g.Deps.e_lat.(e));
          unscheduled_preds.(d) <- unscheduled_preds.(d) - 1;
          if unscheduled_preds.(d) = 0 then ready := Ready.add (-height.(d), d, 0) !ready))
  done;
  let length = Array.fold_left (fun acc c -> max acc (c + 1)) 1 assignment in
  {
    Schedule.loop;
    machine;
    assignment;
    length;
    kind = Schedule.Straight;
    spills = 0;
    int_pressure = 0;
    fp_pressure = 0;
    csr = g;
  }
