let res_mii machine (loop : Loop.t) = Machine.res_cycles machine loop.Loop.body

let usable_edges (deps : Deps.t) =
  List.filter (fun (e : Deps.edge) -> e.Deps.dkind <> Deps.Serial) deps.Deps.edges

(* Longest-path fixpoint with weights (lat - II*dist); divergence after n
   rounds means a positive cycle, i.e. II is below RecMII.  Serial edges
   are excluded (the rotated branch is not a constraint). *)
let feasible_ii (g : Deps.csr) ii =
  let n = g.Deps.csr_n in
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    for e = 0 to g.Deps.n_edges - 1 do
      if g.Deps.e_kind.(e) <> Deps.serial_code then begin
        let w = g.Deps.e_lat.(e) - (ii * g.Deps.e_dist.(e)) in
        let cand = dist.(g.Deps.e_src.(e)) + w in
        if cand > dist.(g.Deps.e_dst.(e)) then begin
          dist.(g.Deps.e_dst.(e)) <- cand;
          changed := true
        end
      end
    done
  done;
  not !changed

(* Any recurrence cycle spans at least one iteration (the distance-0
   subgraph is acyclic for a valid loop), so an II of the total edge
   latency makes every cycle's weight non-positive: a sound upper bound
   for the search, derived from the graph instead of a magic constant. *)
let rec_mii_of (g : Deps.csr) =
  let ub = ref 1 in
  for e = 0 to g.Deps.n_edges - 1 do
    if g.Deps.e_kind.(e) <> Deps.serial_code then ub := !ub + g.Deps.e_lat.(e)
  done;
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if feasible_ii g mid then search lo mid else search (mid + 1) hi
  in
  search 1 !ub

let rec_mii ?memo machine (loop : Loop.t) =
  rec_mii_of (Deps_memo.get ?memo machine loop).Deps_memo.csr

let kind_index = function Machine.M -> 0 | Machine.I -> 1 | Machine.F -> 2 | Machine.B -> 3

let avail m = [| m.Machine.m_units; m.Machine.i_units; m.Machine.f_units; m.Machine.b_units |]

let occupancy m (op : Op.t) =
  match op.Op.opcode with
  | Op.Fdiv when m.Machine.fdiv_unpipelined -> m.Machine.lat_fdiv
  | _ -> 1

(* Modulo reservation table: per modulo slot, per unit kind + issue total. *)
type mrt = { ii : int; rows : int array array; machine : Machine.t }

let mrt_create machine ii = { ii; rows = Array.init ii (fun _ -> Array.make 5 0); machine }

let mrt_fits mrt op time =
  let m = mrt.machine in
  let k = kind_index (Machine.unit_of op) in
  let occ = min (occupancy m op) mrt.ii in
  let ok = ref true in
  for d = 0 to occ - 1 do
    let slot = (time + d) mod mrt.ii in
    if mrt.rows.(slot).(k) >= (avail m).(k) then ok := false
  done;
  if mrt.rows.(time mod mrt.ii).(4) >= m.Machine.issue_width then ok := false;
  !ok

let mrt_change mrt op time delta =
  let m = mrt.machine in
  let k = kind_index (Machine.unit_of op) in
  let occ = min (occupancy m op) mrt.ii in
  for d = 0 to occ - 1 do
    let slot = (time + d) mod mrt.ii in
    mrt.rows.(slot).(k) <- mrt.rows.(slot).(k) + delta
  done;
  let islot = time mod mrt.ii in
  mrt.rows.(islot).(4) <- mrt.rows.(islot).(4) + delta

(* Height priorities for a given II: H(v) = max over outgoing edges of
   H(dst) + lat - II*dist, iterated to fixpoint (II >= RecMII guarantees
   convergence). *)
let heights (g : Deps.csr) ii =
  let n = g.Deps.csr_n in
  let h = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    for e = 0 to g.Deps.n_edges - 1 do
      if g.Deps.e_kind.(e) <> Deps.serial_code then begin
        let cand = h.(g.Deps.e_dst.(e)) + g.Deps.e_lat.(e) - (ii * g.Deps.e_dist.(e)) in
        if cand > h.(g.Deps.e_src.(e)) then begin
          h.(g.Deps.e_src.(e)) <- cand;
          changed := true
        end
      end
    done
  done;
  h

(* Rotating-register requirement at a given schedule. *)
let register_requirement (loop : Loop.t) edges assignment ii =
  let body = loop.Loop.body in
  let n = Array.length body in
  let lifetime = Array.make n 0 in
  List.iter
    (fun (e : Deps.edge) ->
      if e.Deps.dkind = Deps.Reg_flow then begin
        let span = assignment.(e.Deps.dst) + (ii * e.Deps.distance) - assignment.(e.Deps.src) in
        lifetime.(e.Deps.src) <- max lifetime.(e.Deps.src) span
      end)
    edges;
  let int_req = ref 0 and fp_req = ref 0 in
  for v = 0 to n - 1 do
    match body.(v).Op.dst with
    | Some { Op.cls; _ } ->
      let l = max lifetime.(v) 1 in
      let copies = (l + ii - 1) / ii in
      (match cls with
      | Op.Int -> int_req := !int_req + copies
      | Op.Flt -> fp_req := !fp_req + copies)
    | None -> ()
  done;
  (* Loop invariants each hold a register for the whole loop. *)
  List.iter
    (fun (r : Op.reg) ->
      match r.Op.cls with
      | Op.Int -> incr int_req
      | Op.Flt -> incr fp_req)
    (Loop.live_in_regs loop);
  (!int_req, !fp_req)

let try_ii machine (loop : Loop.t) edges (g : Deps.csr) ii =
  let body = loop.Loop.body in
  let n = Array.length body in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  List.iter
    (fun (e : Deps.edge) ->
      preds.(e.Deps.dst) <- e :: preds.(e.Deps.dst);
      succs.(e.Deps.src) <- e :: succs.(e.Deps.src))
    edges;
  let h = heights g ii in
  let time = Array.make n (-1) in
  let prev_time = Array.make n (-1) in
  let mrt = mrt_create machine ii in
  let module Q = Set.Make (struct
    type t = int * int (* -height, position *)
    let compare = compare
  end) in
  let queue = ref Q.empty in
  for v = 0 to n - 1 do
    queue := Q.add (-h.(v), v) !queue
  done;
  let unschedule v =
    mrt_change mrt body.(v) time.(v) (-1);
    time.(v) <- -1;
    queue := Q.add (-h.(v), v) !queue
  in
  let budget = ref (n * 16) in
  let failed = ref false in
  while (not !failed) && not (Q.is_empty !queue) do
    if !budget <= 0 then failed := true
    else begin
      decr budget;
      let ((_, v) as elt) = Q.min_elt !queue in
      queue := Q.remove elt !queue;
      let estart =
        List.fold_left
          (fun acc (e : Deps.edge) ->
            if time.(e.Deps.src) >= 0 then
              max acc (time.(e.Deps.src) + e.Deps.latency - (ii * e.Deps.distance))
            else acc)
          0 preds.(v)
      in
      (* Find a resource-feasible slot in the II-wide window. *)
      let slot = ref None in
      (let t = ref estart in
       while !slot = None && !t < estart + ii do
         if mrt_fits mrt body.(v) !t then slot := Some !t;
         incr t
       done);
      let t =
        match !slot with
        | Some t -> t
        | None ->
          (* Force placement, ensuring forward progress on re-placement. *)
          let forced = max estart (prev_time.(v) + 1) in
          (* Evict resource conflicts at the forced slot. *)
          let victims = ref [] in
          for u = 0 to n - 1 do
            if u <> v && time.(u) >= 0 then begin
              let same_issue = time.(u) mod ii = forced mod ii in
              let same_kind = Machine.unit_of body.(u) = Machine.unit_of body.(v) in
              let occ_u = min (occupancy machine body.(u)) ii in
              let occ_v = min (occupancy machine body.(v)) ii in
              let overlap =
                let hits = Array.make ii false in
                for d = 0 to occ_u - 1 do
                  hits.((time.(u) + d) mod ii) <- true
                done;
                let any = ref false in
                for d = 0 to occ_v - 1 do
                  if hits.((forced + d) mod ii) then any := true
                done;
                !any
              in
              if (same_kind && overlap) || same_issue then victims := u :: !victims
            end
          done;
          (* Evict until the op fits; victims in deterministic order. *)
          let rec evict = function
            | [] -> ()
            | u :: rest ->
              if mrt_fits mrt body.(v) forced then ()
              else begin
                unschedule u;
                evict rest
              end
          in
          evict (List.sort compare !victims);
          if not (mrt_fits mrt body.(v) forced) then failed := true;
          forced
      in
      if not !failed then begin
        mrt_change mrt body.(v) t 1;
        time.(v) <- t;
        prev_time.(v) <- t;
        (* Evict scheduled successors whose dependence the placement broke. *)
        List.iter
          (fun (e : Deps.edge) ->
            let u = e.Deps.dst in
            if u <> v && time.(u) >= 0 then
              if time.(u) + (ii * e.Deps.distance) < t + e.Deps.latency then unschedule u)
          succs.(v)
      end
    end
  done;
  if !failed then None else Some time

let schedule ?(max_ii = 128) ?memo machine (loop : Loop.t) =
  if Loop.has_call loop || Loop.has_early_exit loop then None
  else begin
    (* One shared dependence analysis feeds RecMII, placement heights and
       the placement loop itself. *)
    let entry = Deps_memo.get ?memo machine loop in
    let g = entry.Deps_memo.csr in
    let edges = usable_edges entry.Deps_memo.deps in
    let mii = max (res_mii machine loop) (rec_mii_of g) in
    let rec attempt ii =
      if ii > max_ii then None
      else
        match try_ii machine loop edges g ii with
        | None -> attempt (ii + 1)
        | Some time ->
          let int_req, fp_req = register_requirement loop edges time ii in
          if
            int_req > machine.Machine.rot_int_regs
            || fp_req > machine.Machine.rot_fp_regs
          then attempt (ii + 1)
          else begin
            let span = Array.fold_left (fun acc t -> max acc (t + 1)) 1 time in
            let stages = ((span + ii - 1) / ii) in
            Some
              {
                Schedule.loop;
                machine;
                assignment = time;
                length = span;
                kind = Schedule.Pipelined { ii; stages };
                spills = 0;
                int_pressure = int_req;
                fp_pressure = fp_req;
                csr = g;
              }
          end
    in
    attempt mii
  end
