(* Id-indexed liveness tables.  Every register producer (Builder,
   Loop_text, the spill rewriter below) draws ids from a single counter,
   so an id identifies a register including its class; dense arrays
   indexed by id replace the Op.reg-keyed hashtables that dominated
   compile time in the respill loop. *)
type liveness = {
  seen : bool array;              (* register occurs in the intervals *)
  lcls : Op.reg_class array;      (* class, meaningful where seen *)
  carried : bool array;
  live_in : bool array;
  lo : int array;
  hi : int array;
}

(* Loop-carried values: read at or before their first definition, or
   live-out — these stay live across the whole iteration. *)
let mark_carried (loop : Loop.t) nregs =
  let first_def = Array.make nregs (-1) in
  let first_use = Array.make nregs (-1) in
  Array.iteri
    (fun i op ->
      List.iter
        (fun (r : Op.reg) -> if first_use.(r.Op.id) < 0 then first_use.(r.Op.id) <- i)
        (Op.uses op);
      (match op.Op.pred with
      | Some p -> if first_use.(p) < 0 then first_use.(p) <- i
      | None -> ());
      List.iter
        (fun (r : Op.reg) -> if first_def.(r.Op.id) < 0 then first_def.(r.Op.id) <- i)
        (Op.defs op))
    loop.Loop.body;
  let carried = Array.make nregs false in
  for id = 0 to nregs - 1 do
    let d = first_def.(id) and u = first_use.(id) in
    if d >= 0 && u >= 0 && u <= d then carried.(id) <- true
  done;
  List.iter
    (fun (r : Op.reg) -> if first_def.(r.Op.id) >= 0 then carried.(r.Op.id) <- true)
    loop.Loop.live_out;
  carried

(* Per-register live interval in issue cycles, under a given schedule. *)
let live_intervals (sched : Schedule.t) =
  let loop = sched.Schedule.loop in
  let body = loop.Loop.body in
  let nregs = Loop.max_reg_id loop + 1 in
  let carried = mark_carried loop nregs in
  let horizon = max (sched.Schedule.length - 1) 0 in
  let lv =
    {
      seen = Array.make nregs false;
      lcls = Array.make nregs Op.Int;
      carried;
      live_in = Array.make nregs false;
      lo = Array.make nregs 0;
      hi = Array.make nregs 0;
    }
  in
  let extend (r : Op.reg) lo hi =
    let id = r.Op.id in
    if lv.seen.(id) then begin
      if lo < lv.lo.(id) then lv.lo.(id) <- lo;
      if hi > lv.hi.(id) then lv.hi.(id) <- hi
    end
    else begin
      lv.seen.(id) <- true;
      lv.lcls.(id) <- r.Op.cls;
      lv.lo.(id) <- lo;
      lv.hi.(id) <- hi
    end
  in
  List.iter
    (fun (r : Op.reg) ->
      lv.live_in.(r.Op.id) <- true;
      extend r 0 horizon)
    (Loop.live_in_regs loop);
  Array.iteri
    (fun i op ->
      let t = sched.Schedule.assignment.(i) in
      let touch (r : Op.reg) =
        if carried.(r.Op.id) then extend r 0 horizon else extend r t t
      in
      List.iter touch (Op.defs op);
      List.iter touch (Op.uses op);
      match op.Op.pred with
      | Some p -> touch { Op.id = p; cls = Op.Int }
      | None -> ())
    body;
  lv

let pressure (sched : Schedule.t) =
  match sched.Schedule.kind with
  | Schedule.Pipelined _ ->
    (sched.Schedule.int_pressure, sched.Schedule.fp_pressure)
  | Schedule.Straight ->
    let lv = live_intervals sched in
    let len = max sched.Schedule.length 1 in
    (* Difference arrays: each interval contributes +1 at lo and -1 past
       min hi (len-1); a prefix-sum then yields per-cycle live counts. *)
    let int_d = Array.make (len + 1) 0 in
    let fp_d = Array.make (len + 1) 0 in
    let nregs = Array.length lv.seen in
    for id = 0 to nregs - 1 do
      if lv.seen.(id) then begin
        let lo = lv.lo.(id) and hi = min lv.hi.(id) (len - 1) in
        if lo <= hi then begin
          let d = match lv.lcls.(id) with Op.Int -> int_d | Op.Flt -> fp_d in
          d.(lo) <- d.(lo) + 1;
          d.(hi + 1) <- d.(hi + 1) - 1
        end
      end
    done;
    let peak d =
      let best = ref 0 and cur = ref 0 in
      for c = 0 to len - 1 do
        cur := !cur + d.(c);
        if !cur > !best then best := !cur
      done;
      !best
    in
    (peak int_d, peak fp_d)

let spill_array_name = "$spill"

let find_or_add_spill_array (loop : Loop.t) =
  let arrays = loop.Loop.arrays in
  let existing = ref None in
  Array.iteri
    (fun i a -> if a.Loop.aname = spill_array_name then existing := Some i)
    arrays;
  match !existing with
  | Some i -> (loop, i)
  | None ->
    let top =
      Array.fold_left
        (fun acc (a : Loop.array_info) -> max acc (a.Loop.base + (a.Loop.elem_size * a.Loop.length)))
        0x8000 arrays
    in
    let base = (top + 63) land lnot 63 in
    let slot = { Loop.aname = spill_array_name; elem_size = 8; length = 64; base } in
    ({ loop with Loop.arrays = Array.append arrays [| slot |] }, Array.length arrays)

(* Count existing spill slots so repeated rounds use fresh offsets. *)
let used_spill_slots (loop : Loop.t) spill_arr =
  Array.fold_left
    (fun acc op ->
      match Op.mref op with
      | Some { Op.array; offset; _ } when array = spill_arr -> max acc (offset + 1)
      | _ -> acc)
    0 loop.Loop.body

(* Rewrite the loop so that [victim] lives in memory: store once after its
   def, reload before each use. *)
let spill_register (loop : Loop.t) (victim : Op.reg) =
  let loop, spill_arr = find_or_add_spill_array loop in
  let slot = used_spill_slots loop spill_arr in
  let next_reg = ref (Loop.max_reg_id loop + 1) in
  let fresh cls =
    let id = !next_reg in
    incr next_reg;
    { Op.id; cls }
  in
  let out = ref [] in
  let emit op = out := op :: !out in
  Array.iter
    (fun (op : Op.t) ->
      let needs_reload =
        List.mem victim op.Op.srcs
        || (match op.Op.pred with
           | Some p -> victim = { Op.id = p; cls = Op.Int }
           | None -> false)
      in
      let op =
        if not needs_reload then op
        else begin
          let reload = fresh victim.Op.cls in
          emit
            (Op.make ~uid:0 ~dst:reload
               (Op.Load { Op.array = spill_arr; stride = 0; offset = slot; mkind = Op.Direct }));
          let srcs = List.map (fun r -> if r = victim then reload else r) op.Op.srcs in
          let pred =
            match op.Op.pred with
            | Some p when victim = { Op.id = p; cls = Op.Int } -> Some reload.Op.id
            | other -> other
          in
          { op with Op.srcs; pred }
        end
      in
      emit op;
      if List.mem victim (Op.defs op) then
        emit
          (Op.make ~uid:0 ~srcs:[ victim ]
             (Op.Store { Op.array = spill_arr; stride = 0; offset = slot; mkind = Op.Direct })))
    loop.Loop.body;
  let body = Array.of_list (List.rev !out) |> Array.mapi (fun i op -> { op with Op.uid = i }) in
  { loop with Loop.body }

let allocate_from ?(max_rounds = 6) ~sched (first : Schedule.t) =
  let machine_limits (s : Schedule.t) =
    (s.Schedule.machine.Machine.int_regs, s.Schedule.machine.Machine.fp_regs)
  in
  let rec go (s : Schedule.t) round spills =
    let loop = s.Schedule.loop in
    match s.Schedule.kind with
    | Schedule.Pipelined _ -> { s with Schedule.spills }
    | Schedule.Straight ->
      let int_p, fp_p = pressure s in
      let int_max, fp_max = machine_limits s in
      let over_int = int_p > int_max and over_fp = fp_p > fp_max in
      if (not (over_int || over_fp)) || round >= max_rounds then
        { s with Schedule.spills; int_pressure = int_p; fp_pressure = fp_p }
      else begin
        let cls = if over_fp then Op.Flt else Op.Int in
        let lv = live_intervals s in
        (* Widest-live-range value of the over-subscribed class, excluding
           carried values, invariants and values already reloaded from the
           spill area.  Ascending-id scan keeps the lowest id among equal
           spans — the same victim the Op.reg-ordered search picked. *)
        let nregs = Array.length lv.seen in
        let best = ref (-1) and best_span = ref 0 in
        for id = 0 to nregs - 1 do
          if
            lv.seen.(id)
            && lv.lcls.(id) = cls
            && (not lv.carried.(id))
            && not lv.live_in.(id)
          then begin
            let span = lv.hi.(id) - lv.lo.(id) in
            if span >= 1 && span > !best_span then begin
              best := id;
              best_span := span
            end
          end
        done;
        if !best < 0 then { s with Schedule.spills; int_pressure = int_p; fp_pressure = fp_p }
        else
          go
            (sched (spill_register loop { Op.id = !best; cls }))
            (round + 1) (spills + 1)
      end
  in
  go first 0 0

let allocate ?max_rounds ~sched (loop : Loop.t) =
  allocate_from ?max_rounds ~sched (sched loop)
