module RegSet = Set.Make (struct
  type t = Op.reg
  let compare = compare
end)

(* Loop-carried values: read at or before their first definition, or
   live-out — these stay live across the whole iteration. *)
let carried_regs (loop : Loop.t) =
  let first_def = Hashtbl.create 16 in
  let first_use = Hashtbl.create 16 in
  Array.iteri
    (fun i op ->
      List.iter
        (fun r -> if not (Hashtbl.mem first_use r) then Hashtbl.add first_use r i)
        (Op.uses op);
      (match op.Op.pred with
      | Some p ->
        let r = { Op.id = p; cls = Op.Int } in
        if not (Hashtbl.mem first_use r) then Hashtbl.add first_use r i
      | None -> ());
      List.iter
        (fun r -> if not (Hashtbl.mem first_def r) then Hashtbl.add first_def r i)
        (Op.defs op))
    loop.Loop.body;
  let carried = ref RegSet.empty in
  Hashtbl.iter
    (fun r d ->
      match Hashtbl.find_opt first_use r with
      | Some u when u <= d -> carried := RegSet.add r !carried
      | Some _ | None -> ())
    first_def;
  List.iter
    (fun r -> if Hashtbl.mem first_def r then carried := RegSet.add r !carried)
    loop.Loop.live_out;
  !carried

(* Per-register live interval in issue cycles, under a given schedule. *)
let live_intervals (sched : Schedule.t) =
  let loop = sched.Schedule.loop in
  let body = loop.Loop.body in
  let carried = carried_regs loop in
  let horizon = max (sched.Schedule.length - 1) 0 in
  let intervals = Hashtbl.create 32 in
  let extend r lo hi =
    match Hashtbl.find_opt intervals r with
    | Some (lo', hi') -> Hashtbl.replace intervals r (min lo lo', max hi hi')
    | None -> Hashtbl.replace intervals r (lo, hi)
  in
  List.iter (fun r -> extend r 0 horizon) (Loop.live_in_regs loop);
  Array.iteri
    (fun i op ->
      let t = sched.Schedule.assignment.(i) in
      List.iter
        (fun r -> if RegSet.mem r carried then extend r 0 horizon else extend r t t)
        (Op.defs op);
      List.iter
        (fun r -> if RegSet.mem r carried then extend r 0 horizon else extend r t t)
        (Op.uses op);
      match op.Op.pred with
      | Some p ->
        let r = { Op.id = p; cls = Op.Int } in
        if RegSet.mem r carried then extend r 0 horizon else extend r t t
      | None -> ())
    body;
  intervals

let pressure (sched : Schedule.t) =
  match sched.Schedule.kind with
  | Schedule.Pipelined _ ->
    (sched.Schedule.int_pressure, sched.Schedule.fp_pressure)
  | Schedule.Straight ->
    let intervals = live_intervals sched in
    let len = max sched.Schedule.length 1 in
    let int_live = Array.make len 0 in
    let fp_live = Array.make len 0 in
    Hashtbl.iter
      (fun (r : Op.reg) (lo, hi) ->
        let arr = match r.Op.cls with Op.Int -> int_live | Op.Flt -> fp_live in
        for c = lo to min hi (len - 1) do
          arr.(c) <- arr.(c) + 1
        done)
      intervals;
    (Array.fold_left max 0 int_live, Array.fold_left max 0 fp_live)

let spill_array_name = "$spill"

let find_or_add_spill_array (loop : Loop.t) =
  let arrays = loop.Loop.arrays in
  let existing = ref None in
  Array.iteri
    (fun i a -> if a.Loop.aname = spill_array_name then existing := Some i)
    arrays;
  match !existing with
  | Some i -> (loop, i)
  | None ->
    let top =
      Array.fold_left
        (fun acc (a : Loop.array_info) -> max acc (a.Loop.base + (a.Loop.elem_size * a.Loop.length)))
        0x8000 arrays
    in
    let base = (top + 63) land lnot 63 in
    let slot = { Loop.aname = spill_array_name; elem_size = 8; length = 64; base } in
    ({ loop with Loop.arrays = Array.append arrays [| slot |] }, Array.length arrays)

(* Count existing spill slots so repeated rounds use fresh offsets. *)
let used_spill_slots (loop : Loop.t) spill_arr =
  Array.fold_left
    (fun acc op ->
      match Op.mref op with
      | Some { Op.array; offset; _ } when array = spill_arr -> max acc (offset + 1)
      | _ -> acc)
    0 loop.Loop.body

(* Rewrite the loop so that [victim] lives in memory: store once after its
   def, reload before each use. *)
let spill_register (loop : Loop.t) (victim : Op.reg) =
  let loop, spill_arr = find_or_add_spill_array loop in
  let slot = used_spill_slots loop spill_arr in
  let next_reg = ref (Loop.max_reg_id loop + 1) in
  let fresh cls =
    let id = !next_reg in
    incr next_reg;
    { Op.id; cls }
  in
  let out = ref [] in
  let emit op = out := op :: !out in
  Array.iter
    (fun (op : Op.t) ->
      let needs_reload =
        List.mem victim op.Op.srcs
        || (match op.Op.pred with
           | Some p -> victim = { Op.id = p; cls = Op.Int }
           | None -> false)
      in
      let op =
        if not needs_reload then op
        else begin
          let reload = fresh victim.Op.cls in
          emit
            (Op.make ~uid:0 ~dst:reload
               (Op.Load { Op.array = spill_arr; stride = 0; offset = slot; mkind = Op.Direct }));
          let srcs = List.map (fun r -> if r = victim then reload else r) op.Op.srcs in
          let pred =
            match op.Op.pred with
            | Some p when victim = { Op.id = p; cls = Op.Int } -> Some reload.Op.id
            | other -> other
          in
          { op with Op.srcs; pred }
        end
      in
      emit op;
      if List.mem victim (Op.defs op) then
        emit
          (Op.make ~uid:0 ~srcs:[ victim ]
             (Op.Store { Op.array = spill_arr; stride = 0; offset = slot; mkind = Op.Direct })))
    loop.Loop.body;
  let body = Array.of_list (List.rev !out) |> Array.mapi (fun i op -> { op with Op.uid = i }) in
  { loop with Loop.body }

let allocate_from ?(max_rounds = 6) ~sched (first : Schedule.t) =
  let machine_limits (s : Schedule.t) =
    (s.Schedule.machine.Machine.int_regs, s.Schedule.machine.Machine.fp_regs)
  in
  let rec go (s : Schedule.t) round spills =
    let loop = s.Schedule.loop in
    match s.Schedule.kind with
    | Schedule.Pipelined _ -> { s with Schedule.spills }
    | Schedule.Straight ->
      let int_p, fp_p = pressure s in
      let int_max, fp_max = machine_limits s in
      let over_int = int_p > int_max and over_fp = fp_p > fp_max in
      if (not (over_int || over_fp)) || round >= max_rounds then
        { s with Schedule.spills; int_pressure = int_p; fp_pressure = fp_p }
      else begin
        let cls = if over_fp then Op.Flt else Op.Int in
        let carried = carried_regs loop in
        let intervals = live_intervals s in
        (* Widest-live-range value of the over-subscribed class, excluding
           carried values, invariants and values already reloaded from the
           spill area. *)
        let live_ins = RegSet.of_list (Loop.live_in_regs loop) in
        let candidate = ref None in
        Hashtbl.iter
          (fun (r : Op.reg) (lo, hi) ->
            if
              r.Op.cls = cls
              && (not (RegSet.mem r carried))
              && not (RegSet.mem r live_ins)
            then begin
              let span = hi - lo in
              let better =
                match !candidate with
                | None -> true
                | Some (best_span, best_r) ->
                  span > best_span || (span = best_span && compare r best_r < 0)
              in
              if better && span >= 1 then candidate := Some (span, r)
            end)
          intervals;
        match !candidate with
        | None -> { s with Schedule.spills; int_pressure = int_p; fp_pressure = fp_p }
        | Some (_, victim) -> go (sched (spill_register loop victim)) (round + 1) (spills + 1)
      end
  in
  go first 0 0

let allocate ?max_rounds ~sched (loop : Loop.t) =
  allocate_from ?max_rounds ~sched (sched loop)
