let opcode_mnemonic (op : Op.t) =
  match op.Op.opcode with
  | Op.Ialu -> "ialu"
  | Op.Imul -> "imul"
  | Op.Fadd -> "fadd"
  | Op.Fmul -> "fmul"
  | Op.Fmadd -> "fma"
  | Op.Fdiv -> "fdiv"
  | Op.Load _ -> "ld"
  | Op.Store _ -> "st"
  | Op.Cmp -> "cmp"
  | Op.Br _ -> "br"
  | Op.Sel -> "sel"
  | Op.Call -> "call"
  | Op.Mov -> "mov"

let unit_name = function
  | Machine.M -> "M"
  | Machine.I -> "I"
  | Machine.F -> "F"
  | Machine.B -> "B"

let render (s : Schedule.t) =
  let loop = s.Schedule.loop in
  let window, header =
    match s.Schedule.kind with
    | Schedule.Straight -> (s.Schedule.length, Printf.sprintf "straight schedule, %d cycles" s.Schedule.length)
    | Schedule.Pipelined { ii; stages } ->
      (ii, Printf.sprintf "pipelined schedule, II=%d, %d stages" ii stages)
  in
  let rows = Array.make window [] in
  Array.iteri
    (fun pos time ->
      let slot =
        match s.Schedule.kind with
        | Schedule.Straight -> time
        | Schedule.Pipelined { ii; _ } -> time mod ii
      in
      let stage =
        match s.Schedule.kind with
        | Schedule.Straight -> ""
        | Schedule.Pipelined { ii; _ } -> Printf.sprintf "/s%d" (time / ii)
      in
      if slot >= 0 && slot < window then
        rows.(slot) <-
          Printf.sprintf "%s:#%d.%s%s"
            (unit_name (Machine.unit_of loop.Loop.body.(pos)))
            pos
            (opcode_mnemonic loop.Loop.body.(pos))
            stage
          :: rows.(slot))
    s.Schedule.assignment;
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun c ops ->
      Buffer.add_string buf
        (Printf.sprintf "  c%-3d %s\n" c (String.concat "  " (List.rev ops))))
    rows;
  Buffer.contents buf

let render_occupancy (s : Schedule.t) =
  let m = s.Schedule.machine in
  let window =
    match s.Schedule.kind with
    | Schedule.Straight -> max s.Schedule.length 1
    | Schedule.Pipelined { ii; _ } -> ii
  in
  let counts = [| 0; 0; 0; 0 |] in
  Array.iteri
    (fun pos _time ->
      let k =
        match Machine.unit_of s.Schedule.loop.Loop.body.(pos) with
        | Machine.M -> 0
        | Machine.I -> 1
        | Machine.F -> 2
        | Machine.B -> 3
      in
      counts.(k) <- counts.(k) + 1)
    s.Schedule.assignment;
  let avail = [| m.Machine.m_units; m.Machine.i_units; m.Machine.f_units; m.Machine.b_units |] in
  let names = [| "M"; "I"; "F"; "B" |] in
  String.concat "\n"
    (List.init 4 (fun k ->
         let cap = avail.(k) * window in
         Printf.sprintf "  %s: %d/%d slots (%.0f%%)" names.(k) counts.(k) cap
           (100.0 *. float_of_int counts.(k) /. float_of_int (max cap 1))))
  ^ "\n"
