(* Shared dependence-graph layer.

   The same (loop, machine) pair used to be analysed from scratch by the
   schedule pass, the allocator's respill rounds, the modulo scheduler
   (twice: RecMII and placement), the simulator's [prepare] and feature
   extraction — six O(n²) [Deps.build] calls per compiled loop.  This memo
   builds the graph once per distinct loop content and latency model and
   hands out the edge-list view together with its flat CSR arrays.

   Keyed like [Compile_cache]: a digest of the marshalled loop (name
   blanked, so structurally identical loops share an entry) and machine.
   The machine fully determines the latency function, which is the only
   part of [Deps.build] that is not pure loop structure. *)

type entry = { deps : Deps.t; csr : Deps.csr }

type store = {
  table : (string, entry) Hashtbl.t;
  fifo : string Queue.t;
  capacity : int;
}

type t = {
  mutex : Mutex.t;
  store : store;
  telemetry : Telemetry.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(capacity = 16384) ?(telemetry = Telemetry.global) () =
  {
    mutex = Mutex.create ();
    store = { table = Hashtbl.create 256; fifo = Queue.create (); capacity };
    telemetry;
    hit_count = 0;
    miss_count = 0;
  }

let global = create ()

(* Escape hatch for benchmarks that want to measure the unmemoised path. *)
let enabled = ref true

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let key machine (loop : Loop.t) =
  Digest.string (Marshal.to_string ({ loop with Loop.name = "" }, machine) [])

let build machine loop =
  let deps = Deps.build ~latency:(Machine.latency machine) loop in
  { deps; csr = Deps.to_csr deps }

let get ?(memo = global) machine loop =
  if not !enabled then build machine loop
  else begin
    let k = key machine loop in
    let cached =
      locked memo (fun () ->
          match Hashtbl.find_opt memo.store.table k with
          | Some e ->
            memo.hit_count <- memo.hit_count + 1;
            Some e
          | None ->
            memo.miss_count <- memo.miss_count + 1;
            None)
    in
    match cached with
    | Some e ->
      Telemetry.incr memo.telemetry ~pass:"deps-memo" "hits" 1;
      e
    | None ->
      Telemetry.incr memo.telemetry ~pass:"deps-memo" "misses" 1;
      let e = build machine loop in
      locked memo (fun () ->
          let s = memo.store in
          if s.capacity > 0 && not (Hashtbl.mem s.table k) then begin
            if Hashtbl.length s.table >= s.capacity then begin
              let oldest = Queue.pop s.fifo in
              Hashtbl.remove s.table oldest
            end;
            Hashtbl.add s.table k e;
            Queue.push k s.fifo
          end);
      e
  end

let deps ?memo machine loop = (get ?memo machine loop).deps

let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)

let hit_rate t =
  locked t (fun () ->
      let total = t.hit_count + t.miss_count in
      if total = 0 then 0.0 else float_of_int t.hit_count /. float_of_int total)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.store.table;
      Queue.clear t.store.fifo;
      t.hit_count <- 0;
      t.miss_count <- 0)
