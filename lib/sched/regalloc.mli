(** Register pressure analysis and spill insertion for straight schedules.

    After list scheduling, the maximum number of simultaneously-live values
    per register class is compared to the machine's allocatable registers.
    When a class is over-subscribed the allocator spills: the value with the
    widest live range gets a store to a stride-0 spill slot after its
    definition and a reload before each use, the loop is rescheduled, and
    the process repeats.  Spill code competes for memory units and lengthens
    the schedule — the register-pressure cost of over-unrolling emerges
    rather than being asserted.

    Pipelined schedules handle pressure inside {!Modulo_sched} (by raising
    the II), so [allocate] only fills in the pressure fields for them. *)

val spill_array_name : string
(** Name of the stride-0 array spill slots live in (["$spill"]); consumers
    that compare memory images can exclude its address range. *)

val pressure : Schedule.t -> int * int
(** [(int_live, fp_live)] maximum concurrently-live values, counting loop
    invariants and treating loop-carried values as live across the whole
    iteration. *)

val allocate : ?max_rounds:int -> sched:(Loop.t -> Schedule.t) -> Loop.t -> Schedule.t
(** [allocate ~sched loop] schedules with [sched], spilling until pressure
    fits or candidates are exhausted ([max_rounds], default 6).  The
    returned schedule's [loop] includes any inserted spill code, and
    [spills] counts the spilled values. *)

val allocate_from :
  ?max_rounds:int -> sched:(Loop.t -> Schedule.t) -> Schedule.t -> Schedule.t
(** Like {!allocate} but starting from an already-computed schedule, so a
    pipeline whose scheduling stage ran separately does not pay for the
    first scheduling twice.  [sched] is only invoked after a spill forces
    a reschedule. *)
