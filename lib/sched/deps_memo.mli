(** Memoised dependence graphs shared across the whole pipeline.

    One [Deps.build] per distinct (loop content, machine) instead of six:
    the schedule pass, the allocator's respill rounds, the modulo
    scheduler's RecMII and placement phases, the simulator's operand
    resolution and feature extraction all pull the same entry.  Keyed like
    {!Compile_cache}: a digest of the marshalled loop with its name blanked
    plus the machine (which determines the latency model).  Thread-safe and
    bounded (oldest-first eviction). *)

type entry = { deps : Deps.t; csr : Deps.csr }

type t

val create : ?capacity:int -> ?telemetry:Telemetry.t -> unit -> t
val global : t

val enabled : bool ref
(** When set to [false], {!get} builds fresh graphs without touching the
    store or telemetry — the benchmark baseline. Default [true]. *)

val get : ?memo:t -> Machine.t -> Loop.t -> entry
(** The dependence graph of the loop under the machine's latency model,
    built on first request (default memo: {!global}).  Counts a hit or a
    miss in telemetry under pass ["deps-memo"]. *)

val deps : ?memo:t -> Machine.t -> Loop.t -> Deps.t
(** [(get ?memo machine loop).deps]. *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
val clear : t -> unit
