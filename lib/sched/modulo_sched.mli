(** Iterative modulo scheduling (software pipelining).

    Implements Rau-style IMS: starting from
    MII = max(ResMII, RecMII), ops are placed by priority into a modulo
    reservation table, evicting conflicting ops with a bounded budget;
    failure bumps the initiation interval.  A candidate II is also rejected
    when the rotating-register requirement (sum over values of
    ceil(lifetime / II), plus loop invariants) exceeds the machine's
    register files — the way too-aggressive pipelining manifests as register
    pressure on Itanium.

    Loops containing calls or early exits are not pipelined (as in ORC);
    [schedule] returns [None] and the caller falls back to list scheduling. *)

val rec_mii : ?memo:Deps_memo.t -> Machine.t -> Loop.t -> int
(** Recurrence-constrained minimum II: the smallest II such that no
    dependence cycle has positive slack (weights [latency - II * distance]).
    Serial edges are excluded (the rotated branch is not a constraint).
    The search's upper bound is the sum of the graph's edge latencies —
    sound because every recurrence cycle spans at least one iteration — so
    recurrence-heavy loops report their true RecMII instead of saturating
    at an arbitrary constant. *)

val res_mii : Machine.t -> Loop.t -> int
(** Resource-constrained minimum II (see {!Machine.res_cycles}). *)

val schedule : ?max_ii:int -> ?memo:Deps_memo.t -> Machine.t -> Loop.t -> Schedule.t option
(** Pipelines the loop, trying II from MII upwards to [max_ii] (default
    128).  Returns [None] for loops that cannot or should not be pipelined.
    The dependence graph is built once per call via [memo] (default
    {!Deps_memo.global}) and shared by RecMII and placement. *)
