(** Resource-constrained list scheduling.

    Classic critical-path list scheduling of one loop iteration on an
    in-order EPIC machine: ops become ready when all distance-0 predecessors
    have issued and their latencies have elapsed; the ready op with the
    greatest height (latency-weighted longest path to any sink) issues at
    the earliest cycle with a free slot of its unit class and spare issue
    width.  Unpipelined divides occupy their unit for their full latency. *)

val schedule : ?memo:Deps_memo.t -> Machine.t -> Loop.t -> Schedule.t
(** Always succeeds; register pressure fields are filled by
    {!Regalloc.allocate}, so they are 0 here and [spills] is 0.  The
    dependence graph comes from [memo] (default {!Deps_memo.global}). *)
