(** Scheduled loop code.

    A schedule assigns every body op an issue time.  For a straight (list)
    schedule, times live within a single iteration and iterations execute
    back to back.  For a software-pipelined schedule, times are absolute
    within the flat schedule of one iteration; the kernel initiates a new
    iteration every [ii] cycles and an op at time [t] executes in stage
    [t / ii] at kernel cycle [t mod ii]. *)

type kind =
  | Straight
  | Pipelined of { ii : int; stages : int }

type t = {
  loop : Loop.t;
  machine : Machine.t;
  assignment : int array;  (** body position → issue time *)
  length : int;            (** straight: issue span of one iteration;
                               pipelined: flat-schedule span *)
  kind : kind;
  spills : int;            (** spill store/load pairs the allocator added *)
  int_pressure : int;      (** max simultaneously-live integer values *)
  fp_pressure : int;       (** max simultaneously-live FP values *)
  csr : Deps.csr;          (** dependence graph of [(loop, machine)] in CSR
                               form, attached by the scheduler that built
                               the assignment so downstream consumers (the
                               simulator's execution plans) share it
                               instead of re-deriving or re-keying it *)
}

val ii : t -> int
(** Initiation interval: cycles between iteration starts in steady state.
    For a straight schedule this is the issue span plus the taken-branch
    cost. *)

val validate : t -> (unit, string) result
(** Checks that every dependence edge is respected
    ([time dst >= time src + latency - ii * distance], with serial edges
    exempted for pipelined schedules) and that no cycle oversubscribes a
    functional unit class or total issue width (modulo [ii] for pipelined
    schedules). *)
