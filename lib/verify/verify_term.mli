(** Hash-consed symbolic terms for bounded translation validation.

    A term denotes a value the {!Interp} reference interpreter would
    compute, as a function of the {e symbolic} initial state: [Reg0 id]
    and [InitMem] stand for the initial register and memory valuations,
    [App] applies one opcode's exact mixing function, and memory is a
    guarded McCarthy select/store chain ([Store (mem, guard, addr, v)]
    writes [v] at [addr] only when [guard] holds — predication and early
    exits make written-ness conditional, and written-ness is observable
    through {!Interp.memory_image}).

    Terms are hash-consed per {!ctx}: within one context, two terms are
    structurally identical iff {!equal} (same [tid]).  The smart
    constructors normalise as they build; every rewrite preserves the
    grounded value {e exactly} (IEEE-commutative operand sorting,
    select/store resolution, boolean and conditional simplification — no
    float reassociation, which is not exact).  See DESIGN.md §15. *)

type op = Ialu | Imul | Fadd | Fmul | Fmadd | Fdiv | Cmp

type ix = { ibase : int; ielem : int; ilen : int }
(** The address lattice of an indirect reference:
    [{ibase + ielem*i | 0 <= i < ilen}], mirroring {!Interp.address}. *)

type t = private { tid : int; node : node }

and node = private
  | Cst of float
  | Reg0 of int       (** initial value of register [id] *)
  | InitMem           (** the initial memory valuation *)
  | Top               (** boolean true *)
  | Bot               (** boolean false *)
  | App of op * t list
  | Pred of t         (** predicate truth of a data value *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Ite of t * t * t
  | Addr of int       (** concrete cell address *)
  | AddrIx of ix * t  (** indirect address: data value indexed into [ix] *)
  | Select of t * t   (** memory, address *)
  | Store of t * t * t * t  (** memory, guard, address, value *)

type ctx
(** One verification's term universe.  Not domain-safe: concurrent checks
    (the fuzz oracle under {!Parallel}) each build their own. *)

val create_ctx : unit -> ctx

val terms_built : ctx -> int
(** Distinct nodes interned so far (telemetry). *)

val rewrites : ctx -> int
(** Normalisation rules fired so far (telemetry). *)

val equal : t -> t -> bool
(** O(1); meaningful only for terms from the same {!ctx}. *)

(** {2 Smart constructors} *)

val cst : ctx -> float -> t
val reg0 : ctx -> int -> t
val init_mem : ctx -> t
val top : ctx -> t
val bot : ctx -> t
val addr : ctx -> int -> t
val addr_ix : ctx -> ix -> t -> t
val pred_ : ctx -> t -> t
val not_ : ctx -> t -> t
val and_ : ctx -> t -> t -> t
val or_ : ctx -> t -> t -> t
val ite : ctx -> t -> t -> t -> t
val app : ctx -> op -> t list -> t
val store : ctx -> t -> t -> t -> t -> t
(** [store ctx mem guard addr v] — collapses same-address stores, drops
    unfired ([Bot]-guarded) ones, and keeps runs of provably-disjoint
    concrete stores in canonical address order. *)

val select : ctx -> t -> t -> t
(** [select ctx mem addr] — resolves through the store chain while
    addresses are provably equal or provably distinct; goes stuck (a
    [Select] node) at the first possibly-aliasing symbolic store. *)

val definitely_distinct : t -> t -> bool
(** Addresses that provably never denote the same cell (distinct concrete
    addresses, or disjoint indirect footprints). *)

val assume : ctx -> t -> t -> t
(** [assume ctx cond t] simplifies [t] under the assumption that boolean
    [cond] holds — sound only at use sites themselves gated by [cond]
    (e.g. the value of a definition wrapped in [Ite (cond, v, old)]).
    Conjunction-aware: a path condition implies each of its conjuncts, so
    guarded-definition chains collapse to their taken branches and the
    unroller's renamed-register debris disappears from live branches. *)

val filter_stores : ctx -> keep:(int -> bool) -> t -> t
(** Rebuild a store chain keeping only concrete-address stores whose cell
    [keep] accepts (plus all symbolic-address stores).  Used to mask the
    register allocator's spill traffic out of a memory comparison. *)

(** {2 Grounding}

    Evaluating a term under a concrete initial valuation reproduces the
    interpreter bit for bit.  Grounding backs the cross-validation
    property (ground symbolic = concrete run) and counterexample
    extraction (a term mismatch is reported Refuted only once a concrete
    valuation actually diverges). *)

type env = { greg : int -> float; gmem : int -> float }

val standard_env : env
(** The interpreter's own deterministic initial values. *)

val random_env : int -> env
(** Deterministic pseudo-random valuation [seed]; values spread across
    the full bounded range so predicates land on both sides of the truth
    threshold. *)

type gvalue = F of float | B of bool | A of int

type grounding
(** A memo table binding one {!env}; reuse it across terms of one ctx. *)

val grounding : env -> grounding
val ground : grounding -> t -> gvalue
val gfloat : grounding -> t -> float
val ground_cell : grounding -> t -> int -> float
(** Final value of cell [addr] under a memory chain (initial value if no
    fired store hits it). *)

val ground_written : grounding -> t -> int -> bool
(** Did any fired store in the chain hit cell [addr]? *)

val ground_store_addrs : grounding -> t -> int list
(** All addresses the chain's fired stores touch under this valuation,
    sorted and deduplicated. *)

val to_string : t -> string
