(* Bounded translation validation.

   For every trip count t up to a bound straddling the unroll factor, run
   the source loop and a transformed version symbolically ({!Symexec}) —
   trip counts concrete, data symbolic — and compare normalized live-out
   and memory terms.  Term equality proves observational equivalence for
   that trip under EVERY initial valuation; a term mismatch is grounded
   under concrete valuations to either extract a counterexample (Refuted)
   or admit normalization incompleteness (Unknown — never a false
   refutation, and Unknown is never reported as Proved). *)

type counterexample = {
  cx_trip : int;
  cx_env : string;       (* which concrete valuation diverged *)
  cx_location : string;  (* "live-out r3" or "mem[0x1234]" *)
  cx_source : float option;       (* None: cell not written on that side *)
  cx_transformed : float option;
}

type verdict = Proved | Refuted of counterexample | Unknown of string

type check = {
  check_name : string;
  verdict : verdict;
  trips_proved : int;  (* trip counts proved before stopping *)
  terms_built : int;
  rewrites : int;
  seconds : float;
}

type report = {
  loop_name : string;
  factor : int;
  bound : int;
  checks : check list;
}

(* The bound straddles the factor: enough trips to exercise the empty
   loop, a partial remainder at every residue, exactly one kernel trip,
   and kernel-plus-remainder combinations past the factor. *)
let bound_for factor = (2 * factor) + 2

(* Re-aim a loop at trip count [t], keeping static knowledge static: a
   compiler-visible trip stays visible (the unroller's divisibility
   reasoning is part of what is being validated). *)
let retrip (loop : Loop.t) t =
  {
    loop with
    Loop.trip_actual = t;
    Loop.trip_static = Option.map (fun _ -> t) loop.Loop.trip_static;
  }

(* Valuations tried when terms mismatch.  The standard one is the
   interpreter's own; the pseudo-random ones spread values across the
   bounded range so predicates land on both sides of the threshold. *)
let ground_envs =
  [
    ("standard", Verify_term.standard_env);
    ("pseudo-1", Verify_term.random_env 1);
    ("pseudo-2", Verify_term.random_env 2);
    ("pseudo-3", Verify_term.random_env 3);
  ]

let ground_diverge ~trip ~live_out ~src_mem ~tfm_mem =
  let try_env (ename, env) =
    let g = Verify_term.grounding env in
    let cx location source transformed =
      { cx_trip = trip; cx_env = ename; cx_location = location;
        cx_source = source; cx_transformed = transformed }
    in
    let reg_cx =
      List.find_map
        (fun (label, s, t) ->
          let vs = Verify_term.gfloat g s and vt = Verify_term.gfloat g t in
          if vs <> vt then Some (cx ("live-out " ^ label) (Some vs) (Some vt))
          else None)
        live_out
    in
    match reg_cx with
    | Some _ as r -> r
    | None ->
      (* The memory image is the set of written cells with their values,
         so divergence is a cell written on one side only, or written on
         both with different values. *)
      let addrs =
        List.sort_uniq compare
          (Verify_term.ground_store_addrs g src_mem @ Verify_term.ground_store_addrs g tfm_mem)
      in
      List.find_map
        (fun a ->
          let ws = Verify_term.ground_written g src_mem a
          and wt = Verify_term.ground_written g tfm_mem a in
          let loc = Printf.sprintf "mem[0x%x]" a in
          if ws <> wt then
            Some
              (cx loc
                 (if ws then Some (Verify_term.ground_cell g src_mem a) else None)
                 (if wt then Some (Verify_term.ground_cell g tfm_mem a) else None))
          else if ws then begin
            let vs = Verify_term.ground_cell g src_mem a
            and vt = Verify_term.ground_cell g tfm_mem a in
            if vs <> vt then Some (cx loc (Some vs) (Some vt)) else None
          end
          else None)
        addrs
  in
  List.find_map try_env ground_envs

(* One trip count's decision over already-built terms.  Exposed so tests
   can feed hand-built term pairs (bound-exhaustion behaviour: ground-equal
   but term-unequal must come back Unknown, not Proved). *)
let decide ~trip ~live_out ~mem:(src_mem, tfm_mem) =
  let regs_equal = List.for_all (fun (_, s, t) -> Verify_term.equal s t) live_out in
  if regs_equal && Verify_term.equal src_mem tfm_mem then Proved
  else begin
    match ground_diverge ~trip ~live_out ~src_mem ~tfm_mem with
    | Some cx -> Refuted cx
    | None ->
      let what =
        match List.find_opt (fun (_, s, t) -> not (Verify_term.equal s t)) live_out with
        | Some (label, _, _) -> "live-out " ^ label ^ " terms differ"
        | None -> "memory terms differ"
      in
      Unknown
        (Printf.sprintf "trip %d: %s; no tried valuation diverges" trip what)
  end

let reg_label (r : Op.reg) = Format.asprintf "%a" Op.pp_reg r

(* The register allocator's spill traffic is an implementation detail the
   oracle masks out of memory comparisons; the spill array's footprint is
   always concrete. *)
let spill_ranges (exe : Pipeline_state.executable) =
  List.filter_map
    (fun ((s : Schedule.t), _, _) ->
      Array.find_opt
        (fun (a : Loop.array_info) -> a.Loop.aname = Regalloc.spill_array_name)
        s.Schedule.loop.Loop.arrays
      |> Option.map (fun (a : Loop.array_info) ->
             (a.Loop.base, a.Loop.base + (a.Loop.elem_size * a.Loop.length))))
    exe.Pipeline_state.schedules

let keep_all _ = true

let spill_keep exe =
  let ranges = spill_ranges exe in
  fun addr -> not (List.exists (fun (lo, hi) -> addr >= lo && addr < hi) ranges)

(* --- the per-check driver ----------------------------------------------- *)

(* [transformed ctx loop_t] builds the transformed program for one
   re-aimed loop, runs it symbolically, and returns the final state plus
   the memory mask. *)
let run_check ?telemetry ~name ~bound (loop : Loop.t)
    (transformed : Verify_term.ctx -> Loop.t -> Verify_symexec.state * (int -> bool)) =
  let live_out = loop.Loop.live_out in
  let terms = ref 0 and rewrites = ref 0 in
  let started = Unix.gettimeofday () in
  let decide_trip t =
    let t0 = Unix.gettimeofday () in
    let ctx = Verify_term.create_ctx () in
    let loop_t = retrip loop t in
    let verdict =
      try
        let src = Verify_symexec.create ctx in
        Verify_symexec.run src loop_t ~trips:t ~phase:0;
        let tfm, keep = transformed ctx loop_t in
        let src_mem = Verify_symexec.memory_term src in
        let tfm_mem = Verify_term.filter_stores ctx ~keep (Verify_symexec.memory_term tfm) in
        let pairs =
          List.map
            (fun r ->
              (reg_label r, Verify_symexec.register_term src r, Verify_symexec.register_term tfm r))
            live_out
        in
        decide ~trip:t ~live_out:pairs ~mem:(src_mem, tfm_mem)
      with e ->
        Unknown (Printf.sprintf "trip %d: exception %s" t (Printexc.to_string e))
    in
    terms := !terms + Verify_term.terms_built ctx;
    rewrites := !rewrites + Verify_term.rewrites ctx;
    Option.iter
      (fun tl ->
        Telemetry.record tl ~pass:"verify"
          ~seconds:(Unix.gettimeofday () -. t0)
          ~metrics:
            [ ("terms-built", Verify_term.terms_built ctx); ("rewrites", Verify_term.rewrites ctx) ]
          ())
      telemetry;
    verdict
  in
  let rec go t =
    if t > bound then (Proved, bound + 1)
    else begin
      match decide_trip t with
      | Proved -> go (t + 1)
      | v -> (v, t)
    end
  in
  let verdict, trips_proved = go 0 in
  Option.iter
    (fun tl ->
      let k =
        match verdict with
        | Proved -> "proved"
        | Refuted _ -> "refuted"
        | Unknown _ -> "unknown"
      in
      Telemetry.incr tl ~pass:"verify" k 1)
    telemetry;
  {
    check_name = name;
    verdict;
    trips_proved;
    terms_built = !terms;
    rewrites = !rewrites;
    seconds = Unix.gettimeofday () -. started;
  }

(* --- the three transformed programs -------------------------------------- *)

let unroll_transformed factor ctx loop_t =
  let st = Verify_symexec.create ctx in
  Verify_symexec.run_unrolled st (Unroll.run loop_t factor);
  (st, keep_all)

let rle_transformed factor ctx loop_t =
  let u = Unroll.run loop_t factor in
  let r = Rle.run u.Unroll.kernel in
  let st = Verify_symexec.create ctx in
  Verify_symexec.run_unrolled st { u with Unroll.kernel = r.Rle.loop };
  (st, keep_all)

let passes_without_rle =
  List.filter (fun p -> p.Pipeline.pass_name <> "rle") Pipeline.default_passes

let pipeline_transformed ~machine ~swp ~rle factor ctx loop_t =
  let passes = if rle then Pipeline.default_passes else passes_without_rle in
  let pst = Pipeline_state.init machine ~swp loop_t factor in
  let pst = Pipeline.run ~telemetry:(Telemetry.create ()) ~passes pst in
  let exe = Pipeline_state.executable_exn pst in
  let st = Verify_symexec.create ctx in
  Verify_symexec.run_schedules st exe.Pipeline_state.schedules;
  (st, spill_keep exe)

let pipeline_check_name ~swp ~rle =
  Printf.sprintf "pipeline[%s,%s]"
    (if swp then "swp" else "list")
    (if rle then "rle" else "norle")

let all_coords = [ (false, false); (false, true); (true, false); (true, true) ]

let verify_case ?telemetry ?(coords = all_coords) ~machine (loop : Loop.t) ~factor =
  let bound = bound_for factor in
  let run name tf = run_check ?telemetry ~name ~bound loop tf in
  let checks =
    [
      run "unroll" (unroll_transformed factor);
      run "unroll+rle" (rle_transformed factor);
    ]
    @ (if loop.Loop.exit_prob = 0.0 then
         (* The assembler's trip model for probabilistic exits
            (effective_trips) intentionally changes iteration counts, so
            per-trip equivalence only makes sense at exit_prob = 0. *)
         List.map
           (fun (swp, rle) ->
             run (pipeline_check_name ~swp ~rle)
               (pipeline_transformed ~machine ~swp ~rle factor))
           coords
       else [])
  in
  { loop_name = loop.Loop.name; factor; bound; checks }

(* --- reporting ----------------------------------------------------------- *)

let verdict_ok = function Proved -> true | Refuted _ | Unknown _ -> false

let report_ok r = List.for_all (fun c -> verdict_ok c.verdict) r.checks

let float_opt_str = function
  | Some v -> Printf.sprintf "%g" v
  | None -> "<unwritten>"

let verdict_to_string = function
  | Proved -> "proved"
  | Refuted cx ->
    Printf.sprintf "REFUTED at trip %d: %s source=%s transformed=%s (%s valuation)"
      cx.cx_trip cx.cx_location (float_opt_str cx.cx_source)
      (float_opt_str cx.cx_transformed) cx.cx_env
  | Unknown why -> "UNKNOWN: " ^ why

let check_to_string c =
  Printf.sprintf "  %-22s %-8s trips-proved=%-3d terms=%-7d rewrites=%-6d %.1fms%s"
    c.check_name
    (match c.verdict with Proved -> "proved" | Refuted _ -> "REFUTED" | Unknown _ -> "UNKNOWN")
    c.trips_proved c.terms_built c.rewrites (1000.0 *. c.seconds)
    (match c.verdict with
    | Proved -> ""
    | v -> "\n    " ^ verdict_to_string v)

let report_to_string r =
  Printf.sprintf "%s factor=%d trips 0..%d: %s\n%s" r.loop_name r.factor r.bound
    (if report_ok r then "equivalent" else "NOT PROVED")
    (String.concat "\n" (List.map check_to_string r.checks))
