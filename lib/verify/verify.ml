(** Namespace for the bounded translation validator.

    [Verify.Term] — hash-consed normalized symbolic terms;
    [Verify.Symexec] — symbolic mirror of the reference interpreter;
    [Verify.Validate] — the bounded equivalence checker and its reports. *)

module Term = Verify_term
module Symexec = Verify_symexec
module Validate = Verify_validate
