(** Bounded translation validation of the transform passes.

    For every trip count [t] in [0 .. bound_for factor], the source loop
    and a transformed version (unroll-only, unroll+RLE, or the full
    compile pipeline at a swp×rle coordinate) are executed symbolically —
    trip counts concrete, data symbolic — and their normalized live-out
    and memory terms compared.  Term equality proves observational
    equivalence at that trip for {e every} initial valuation; a mismatch
    is grounded under concrete valuations to either extract a
    counterexample or admit incompleteness:

    - [Proved] — terms equal at every trip up to the bound.
    - [Refuted] — a concrete (trip, location, values) divergence.
    - [Unknown] — terms differ but no tried valuation diverges; sound
      (never claimed proved), possibly a normalizer gap.

    See DESIGN.md §15. *)

type counterexample = {
  cx_trip : int;            (** trip count at which behaviour diverges *)
  cx_env : string;          (** which concrete valuation diverged *)
  cx_location : string;     (** ["live-out r3"] or ["mem[0x1234]"] *)
  cx_source : float option; (** [None]: cell not written on that side *)
  cx_transformed : float option;
}

type verdict = Proved | Refuted of counterexample | Unknown of string

type check = {
  check_name : string;  (** ["unroll"], ["unroll+rle"], ["pipeline[swp,rle]"], … *)
  verdict : verdict;
  trips_proved : int;   (** trip counts proved before stopping *)
  terms_built : int;
  rewrites : int;
  seconds : float;
}

type report = {
  loop_name : string;
  factor : int;
  bound : int;
  checks : check list;
}

val bound_for : int -> int
(** [2*factor + 2]: covers the empty loop, every remainder residue,
    exactly one kernel trip, and kernel+remainder mixes past the factor. *)

val retrip : Loop.t -> int -> Loop.t
(** Re-aim a loop at a trip count, keeping static trip knowledge static. *)

val decide :
  trip:int ->
  live_out:(string * Verify_term.t * Verify_term.t) list ->
  mem:Verify_term.t * Verify_term.t ->
  verdict
(** One trip's decision over already-built (source, transformed) term
    pairs.  Exposed for tests: ground-equal but term-unequal pairs must
    come back [Unknown], never [Proved]. *)

val verify_case :
  ?telemetry:Telemetry.t ->
  ?coords:(bool * bool) list ->
  machine:Machine.t ->
  Loop.t ->
  factor:int ->
  report
(** Run all checks for one loop at one unroll factor: unroll-only,
    unroll+RLE, and — when [loop.exit_prob = 0] — the full pipeline at
    each [(swp, rle)] coordinate in [coords] (default: all four).
    Telemetry lands in pass ["verify"]: per-trip timings, [terms-built],
    [rewrites], and [proved]/[refuted]/[unknown] counters. *)

val report_ok : report -> bool
(** Every check proved. *)

val verdict_to_string : verdict -> string
val report_to_string : report -> string
