(** Symbolic execution of loops over {!Verify_term} values.

    Mirrors {!Interp} op for op — same trip structure, same per-opcode
    formulas — but over the symbolic initial state.  Early exits become
    path-condition gating: the state's [alive] term collects
    [not (exit fired)] conjuncts, and every write is conditional on it,
    which models [Interp]'s run-aborting exception exactly under
    grounding. *)

type state

val create : Verify_term.ctx -> state

val register_term : state -> Op.reg -> Verify_term.t
(** The register's current term ([Reg0 id] if never written). *)

val memory_term : state -> Verify_term.t
(** The current memory chain. *)

val run : state -> Loop.t -> trips:int -> phase:int -> unit
(** Symbolic mirror of {!Interp.run} for a concrete trip count. *)

val run_unrolled : state -> Unroll.t -> unit
(** Symbolic mirror of {!Interp.run_unrolled}: kernel then remainder,
    remainder gated on the kernel's surviving path condition. *)

val run_schedules : state -> (Schedule.t * int * int) list -> unit
(** Symbolic mirror of the fuzz oracle's executable runner: each
    [(schedule, trips, phase)] in order, skipping zero-trip entries. *)
