(* Symbolic mirror of {!Interp}: same trip structure, same per-opcode
   formulas, but registers and memory hold {!Verify_term.t}s over the symbolic
   initial state instead of floats.

   Control is handled by path-condition gating rather than exceptions: an
   early exit conjoins [not (guard && pred src)] into the state's [alive]
   term, and every subsequent write — including the whole remainder loop
   and later schedules — is wrapped in [Ite (alive && guard, new, old)].
   That models Interp's [Exit_loop] abort exactly: once a concrete
   valuation makes the exit fire, every later write collapses to its
   old value under grounding. *)

type state = {
  ctx : Verify_term.ctx;
  regs : (int, Verify_term.t) Hashtbl.t;  (* keyed by id, like Interp's file *)
  mutable mem : Verify_term.t;
  mutable alive : Verify_term.t;  (* path condition: no early exit has fired *)
}

let create ctx =
  { ctx; regs = Hashtbl.create 64; mem = Verify_term.init_mem ctx; alive = Verify_term.top ctx }

let reg st (r : Op.reg) =
  match Hashtbl.find_opt st.regs r.Op.id with
  | Some t -> t
  | None -> Verify_term.reg0 st.ctx r.Op.id

let register_term = reg

let memory_term st = st.mem

let set_reg st (r : Op.reg) t = Hashtbl.replace st.regs r.Op.id t

(* Guarded definition: the register keeps its old term on the paths where
   the write does not happen.  The written value is only observable when
   [cond] holds, so it is simplified under that assumption — this is what
   lets a renamed replica register (whose untaken branches hold different
   initial-value debris than the source's) normalize to the same term. *)
let def_under st cond (d : Op.reg) v =
  set_reg st d (Verify_term.ite st.ctx cond (Verify_term.assume st.ctx cond v) (reg st d))

(* The guard's value only matters while alive (the op is skipped outright
   otherwise), so the guard register too is read under that assumption. *)
let guard_term st op =
  match Op.guard_reg op with
  | None -> Verify_term.top st.ctx
  | Some r -> Verify_term.pred_ st.ctx (Verify_term.assume st.ctx st.alive (reg st r))

(* Mirror of {!Interp.address}: affine references resolve to a concrete
   cell (the iteration is concrete under bounded validation); indirect
   references with an address operand become a data-indexed symbolic
   address over the array's footprint. *)
let address_term st (loop : Loop.t) (m : Op.mref) ~iter ~addr_value =
  let a = loop.Loop.arrays.(m.Op.array) in
  let len = max a.Loop.length 1 in
  match (m.Op.mkind, addr_value) with
  | Op.Indirect, Some v ->
    Verify_term.addr_ix st.ctx
      { Verify_term.ibase = a.Loop.base; ielem = a.Loop.elem_size; ilen = len }
      v
  | (Op.Indirect | Op.Direct), _ ->
    let idx = (m.Op.stride * iter) + m.Op.offset in
    let idx = ((idx mod len) + len) mod len in
    Verify_term.addr st.ctx (a.Loop.base + (a.Loop.elem_size * idx))

(* Mirror of {!Interp.exec_sel}: a select with a destination writes it
   whether or not the guard holds — the guard only chooses the operand —
   so it runs outside the usual guarded-skip path.  Only [alive] gates
   the write. *)
let exec_sel st (op : Op.t) =
  match (op.Op.opcode, op.Op.dst) with
  | Op.Sel, Some d ->
    (* The whole select (guard read included) is observable only while
       alive, so read everything under that assumption. *)
    let under r = Verify_term.assume st.ctx st.alive (reg st r) in
    let taken =
      match Op.guard_reg op with
      | None -> Verify_term.top st.ctx
      | Some r -> Verify_term.pred_ st.ctx (under r)
    in
    let value =
      match op.Op.srcs with
      | [] -> Verify_term.cst st.ctx 0.0
      | [ a ] -> under a
      | [ a; b ] -> Verify_term.ite st.ctx taken (under a) (under b)
      | a :: _ -> under a
    in
    def_under st st.alive d value;
    true
  | _ -> false

let exec_op st (loop : Loop.t) ~iter (op : Op.t) =
  let g = guard_term st op in
  let eff = Verify_term.and_ st.ctx st.alive g in
  let ctx = st.ctx in
  (* Sources only matter on paths where the op takes effect, so read them
     under the op's own path condition. *)
  let srcs = List.map (fun r -> Verify_term.assume ctx eff (reg st r)) op.Op.srcs in
  let def v = match op.Op.dst with Some d -> def_under st eff d v | None -> () in
  match op.Op.opcode with
  | Op.Ialu -> def (Verify_term.app ctx Verify_term.Ialu srcs)
  | Op.Imul -> def (Verify_term.app ctx Verify_term.Imul srcs)
  | Op.Fadd -> def (Verify_term.app ctx Verify_term.Fadd srcs)
  | Op.Fmul -> def (Verify_term.app ctx Verify_term.Fmul srcs)
  | Op.Fmadd -> def (Verify_term.app ctx Verify_term.Fmadd srcs)
  | Op.Fdiv -> def (Verify_term.app ctx Verify_term.Fdiv srcs)
  | Op.Cmp -> def (Verify_term.app ctx Verify_term.Cmp srcs)
  | Op.Sel -> ()  (* dst-less select: Interp's def is a no-op *)
  | Op.Mov -> def (match srcs with v :: _ -> v | [] -> Verify_term.cst ctx 0.0)
  | Op.Load m ->
    let addr_value = match srcs with v :: _ -> Some v | [] -> None in
    let a = address_term st loop m ~iter ~addr_value in
    def (Verify_term.select ctx st.mem a)
  | Op.Store m -> begin
    match srcs with
    | value :: rest ->
      let addr_value = match rest with v :: _ -> Some v | [] -> None in
      let a = address_term st loop m ~iter ~addr_value in
      st.mem <- Verify_term.store ctx st.mem eff a value
    | [] -> ()
  end
  | Op.Call -> ()
  | Op.Br Op.Exit -> begin
    match srcs with
    | v :: _ ->
      let fires = Verify_term.and_ ctx g (Verify_term.pred_ ctx v) in
      st.alive <- Verify_term.and_ ctx st.alive (Verify_term.not_ ctx fires)
    | [] -> ()
  end
  | Op.Br (Op.Backedge | Op.Internal) -> ()

let run st (loop : Loop.t) ~trips ~phase =
  for i = 0 to trips - 1 do
    let iter = phase + i in
    Array.iter
      (fun op -> if not (exec_sel st op) then exec_op st loop ~iter op)
      loop.Loop.body
  done

let run_unrolled st (u : Unroll.t) =
  run st u.Unroll.kernel ~trips:u.Unroll.kernel_trips ~phase:0;
  (* The concrete runner skips the remainder when the kernel exited early;
     [alive] carries that condition, so the remainder's writes are already
     gated on it. *)
  match u.Unroll.remainder with
  | None -> ()
  | Some r ->
    run st r ~trips:u.Unroll.remainder_trips
      ~phase:(u.Unroll.kernel_trips * u.Unroll.factor)

let run_schedules st schedules =
  List.iter
    (fun (sched, trips, phase) ->
      if trips > 0 then run st sched.Schedule.loop ~trips ~phase)
    schedules
