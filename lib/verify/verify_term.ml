(* Hash-consed symbolic terms over the interpreter's semantics.

   A term denotes a value computed by {!Interp} as a function of the
   initial state: [Reg0 id] and [InitMem] are the symbolic initial
   register and memory valuations, [App] applies one opcode's exact
   mixing function, and memory is a McCarthy select/store chain whose
   stores carry a guard (predication and early exits make written-ness
   conditional, and written-ness is observable through
   {!Interp.memory_image}).

   Hash-consing gives O(1) equality: within one context, two terms are
   structurally identical iff they have the same [tid].  The smart
   constructors normalise as they build, applying only rewrites that
   preserve the grounded value {e exactly} (float arithmetic is not
   associative, so there is no reassociation — only rewrites provable
   from IEEE commutativity of [+.]/[*.], select/store resolution, and
   boolean/conditional simplification). *)

type op = Ialu | Imul | Fadd | Fmul | Fmadd | Fdiv | Cmp

(* An indirect reference's address set: [wrap (|v| * 7)] indexed into the
   array footprint, mirroring {!Interp.address}. *)
type ix = { ibase : int; ielem : int; ilen : int }

type t = { tid : int; node : node }

and node =
  | Cst of float
  | Reg0 of int
  | InitMem
  | Top
  | Bot
  | App of op * t list
  | Pred of t
  | Not of t
  | And of t * t
  | Or of t * t
  | Ite of t * t * t
  | Addr of int
  | AddrIx of ix * t
  | Select of t * t
  | Store of t * t * t * t  (* mem, guard, addr, value *)

(* Shallow structural key: children compared by tid, so hash-cons lookups
   never recurse into the DAG. *)
module Key = struct
  type nonrec t = node

  let fb f = Int64.to_int (Int64.bits_of_float f)

  let equal a b =
    match (a, b) with
    | Cst x, Cst y -> fb x = fb y
    | Reg0 x, Reg0 y -> x = y
    | InitMem, InitMem | Top, Top | Bot, Bot -> true
    | App (o1, l1), App (o2, l2) ->
      o1 = o2 && List.compare_lengths l1 l2 = 0
      && List.for_all2 (fun x y -> x.tid = y.tid) l1 l2
    | Pred x, Pred y | Not x, Not y -> x.tid = y.tid
    | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      a1.tid = a2.tid && b1.tid = b2.tid
    | Ite (g1, a1, b1), Ite (g2, a2, b2) ->
      g1.tid = g2.tid && a1.tid = a2.tid && b1.tid = b2.tid
    | Addr x, Addr y -> x = y
    | AddrIx (i1, v1), AddrIx (i2, v2) -> i1 = i2 && v1.tid = v2.tid
    | Select (m1, a1), Select (m2, a2) -> m1.tid = m2.tid && a1.tid = a2.tid
    | Store (m1, g1, a1, v1), Store (m2, g2, a2, v2) ->
      m1.tid = m2.tid && g1.tid = g2.tid && a1.tid = a2.tid && v1.tid = v2.tid
    | _ -> false

  let mix h x = (h * 31) + x

  let hash n =
    match n with
    | Cst f -> mix 1 (Hashtbl.hash (fb f))
    | Reg0 i -> mix 2 i
    | InitMem -> 3
    | Top -> 4
    | Bot -> 5
    | App (o, l) ->
      List.fold_left (fun h x -> mix h x.tid) (mix 6 (Hashtbl.hash o)) l
    | Pred x -> mix 7 x.tid
    | Not x -> mix 8 x.tid
    | And (a, b) -> mix (mix 9 a.tid) b.tid
    | Or (a, b) -> mix (mix 10 a.tid) b.tid
    | Ite (g, a, b) -> mix (mix (mix 11 g.tid) a.tid) b.tid
    | Addr x -> mix 12 x
    | AddrIx (i, v) -> mix (mix (mix (mix 13 i.ibase) i.ielem) i.ilen) v.tid
    | Select (m, a) -> mix (mix 14 m.tid) a.tid
    | Store (m, g, a, v) -> mix (mix (mix (mix 15 m.tid) g.tid) a.tid) v.tid
end

module Tbl = Hashtbl.Make (Key)

(* One verification's term universe.  Contexts are not shared across
   domains: the fuzz oracle runs cases concurrently, so every check builds
   its own. *)
type ctx = {
  tbl : t Tbl.t;
  mutable next : int;
  mutable built : int;     (* distinct nodes created *)
  mutable rewrites : int;  (* normalisation rules fired *)
  assume_memo : (int * int, t) Hashtbl.t;  (* (cond.tid, t.tid) -> assumed t *)
}

let create_ctx () =
  {
    tbl = Tbl.create 4096;
    next = 0;
    built = 0;
    rewrites = 0;
    assume_memo = Hashtbl.create 1024;
  }
let terms_built ctx = ctx.built
let rewrites ctx = ctx.rewrites

let intern ctx node =
  match Tbl.find_opt ctx.tbl node with
  | Some t -> t
  | None ->
    let t = { tid = ctx.next; node } in
    ctx.next <- ctx.next + 1;
    ctx.built <- ctx.built + 1;
    Tbl.add ctx.tbl node t;
    t

let rewrote ctx = ctx.rewrites <- ctx.rewrites + 1

let equal a b = a.tid = b.tid

(* --- leaves ------------------------------------------------------------- *)

let cst ctx f = intern ctx (Cst f)
let reg0 ctx id = intern ctx (Reg0 id)
let init_mem ctx = intern ctx InitMem
let top ctx = intern ctx Top
let bot ctx = intern ctx Bot
let addr ctx n = intern ctx (Addr n)
let addr_ix ctx ix v = intern ctx (AddrIx (ix, v))

(* --- booleans ----------------------------------------------------------- *)

let is_top t = match t.node with Top -> true | _ -> false
let is_bot t = match t.node with Bot -> true | _ -> false

let pred_ ctx v = intern ctx (Pred v)

let not_ ctx t =
  match t.node with
  | Top -> rewrote ctx; bot ctx
  | Bot -> rewrote ctx; top ctx
  | Not x -> rewrote ctx; x
  | _ -> intern ctx (Not t)

let and_ ctx a b =
  if is_top a then b
  else if is_top b then a
  else if is_bot a || is_bot b then (rewrote ctx; bot ctx)
  else if equal a b then (rewrote ctx; a)
  else begin
    (* conjunction is commutative and idempotent: canonical operand order *)
    let a, b = if a.tid <= b.tid then (a, b) else (b, a) in
    intern ctx (And (a, b))
  end

let or_ ctx a b =
  if is_bot a then b
  else if is_bot b then a
  else if is_top a || is_top b then (rewrote ctx; top ctx)
  else if equal a b then (rewrote ctx; a)
  else begin
    let a, b = if a.tid <= b.tid then (a, b) else (b, a) in
    intern ctx (Or (a, b))
  end

(* --- conditionals ------------------------------------------------------- *)

let rec ite ctx g a b =
  match g.node with
  | Top -> rewrote ctx; a
  | Bot -> rewrote ctx; b
  | _ ->
    if equal a b then (rewrote ctx; a)
    else begin
      (* Predicated read-modify-write chains repeat the same guard:
         [Ite (g, x, Ite (g, _, y))] never takes the inner true branch. *)
      match (a.node, b.node) with
      | Ite (g', a', _), _ when equal g g' -> rewrote ctx; ite ctx g a' b
      | _, Ite (g', _, b') when equal g g' -> rewrote ctx; ite ctx g a b'
      | _ -> intern ctx (Ite (g, a, b))
    end

(* --- data --------------------------------------------------------------- *)

(* Operand sorting is applied only where the interpreter's formula is
   IEEE-exactly commutative: the binary forms fold to [x +. y] (or
   [bound (bound x *. bound y)]), and a 3-operand fmadd multiplies its
   first two sources.  N-ary sums/products beyond that are left in program
   order — float arithmetic is not associative. *)
let app ctx op args =
  let sort2 x y = if x.tid <= y.tid then [ x; y ] else (rewrote ctx; [ y; x ]) in
  let args =
    match (op, args) with
    | (Ialu | Fadd | Imul | Fmul | Cmp), [ x; y ] -> sort2 x y
    | Fmadd, [ x; y; z ] -> sort2 x y @ [ z ]
    | _ -> args
  in
  intern ctx (App (op, args))

(* --- memory ------------------------------------------------------------- *)

(* May the two address terms denote the same cell?  Concrete addresses
   compare directly; an indirect reference ranges over its array's
   footprint [ibase + ielem*i, i < ilen], so anything provably outside
   that lattice (spill slots, other arrays) cannot collide. *)
let ix_may_hit ix n =
  ix.ielem <= 0
  || (n >= ix.ibase
     && n <= ix.ibase + (ix.ielem * (ix.ilen - 1))
     && (n - ix.ibase) mod ix.ielem = 0)

let ix_ranges_overlap i1 i2 =
  i1.ielem <= 0 || i2.ielem <= 0
  || not
       (i1.ibase + (i1.ielem * (i1.ilen - 1)) < i2.ibase
       || i2.ibase + (i2.ielem * (i2.ilen - 1)) < i1.ibase)

let definitely_distinct a b =
  match (a.node, b.node) with
  | Addr x, Addr y -> x <> y
  | Addr x, AddrIx (ix, _) | AddrIx (ix, _), Addr x -> not (ix_may_hit ix x)
  | AddrIx (i1, _), AddrIx (i2, _) -> not (ix_ranges_overlap i1 i2)
  | _ -> false

let rec store ctx m g a v =
  if is_bot g then (rewrote ctx; m)
  else begin
    match m.node with
    | Store (m', g', a', v') when equal a a' ->
      (* Same cell twice: written iff either store fired; the outer value
         wins when its guard holds. *)
      rewrote ctx;
      store ctx m' (or_ ctx g' g) a (ite ctx g v v')
    | Store (m', g', a', v')
      when (match (a.node, a'.node) with
           | Addr x, Addr y -> x < y
           | _ -> false)
           && definitely_distinct a a' ->
      (* Provably-disjoint adjacent stores commute; keep concrete runs in
         ascending address order so both sides of a comparison reach the
         same normal form whatever order the passes emitted them in. *)
      rewrote ctx;
      let inner = store ctx m' g a v in
      store ctx inner g' a' v'
    | _ -> intern ctx (Store (m, g, a, v))
  end

let rec select ctx m a =
  match m.node with
  | Store (m', g, a', v) ->
    if equal a a' then begin
      rewrote ctx;
      if is_top g then v else ite ctx g v (select ctx m' a)
    end
    else if definitely_distinct a a' then (rewrote ctx; select ctx m' a)
    else intern ctx (Select (m, a))
  | _ -> intern ctx (Select (m, a))

(* --- guard-relative simplification ---------------------------------------

   A value that is only ever observed while [cond] holds can be simplified
   under that assumption: the unroller's renamed registers drag
   never-written initial values (and stale previous-iteration values) into
   the untaken branches of guarded definitions, and those branches are
   semantically dead at every use site gated by the same path condition.
   Without this, source and transformed live-outs differ syntactically on
   every predicated or early-exit loop even when provably equal.

   Implication is syntactic but conjunction-aware: a path condition built
   as [And (And (a, b), c)] implies each conjunct. *)

let rec implies cond g =
  equal cond g
  || match cond.node with And (a, b) -> implies a g || implies b g | _ -> false

let refutes cond g =
  (* cond => not g *)
  let rec has_negated cond =
    match cond.node with
    | Not h -> equal h g
    | And (a, b) -> has_negated a || has_negated b
    | _ -> false
  in
  has_negated cond || match g.node with Not h -> implies cond h | _ -> false

let is_boolean t =
  match t.node with
  | Top | Bot | Pred _ | Not _ | And _ | Or _ -> true
  | Cst _ | Reg0 _ | InitMem | App _ | Ite _ | Addr _ | AddrIx _ | Select _
  | Store _ -> false

let rec assume ctx cond t =
  if is_top cond then t
  else begin
    match Hashtbl.find_opt ctx.assume_memo (cond.tid, t.tid) with
    | Some t' -> t'
    | None ->
      let t' =
        if is_boolean t && implies cond t then (rewrote ctx; top ctx)
        else if is_boolean t && refutes cond t then (rewrote ctx; bot ctx)
        else begin
          let go = assume ctx cond in
          match t.node with
          | Cst _ | Reg0 _ | InitMem | Top | Bot | Addr _ -> t
          | App (op, args) -> app ctx op (List.map go args)
          | Pred v -> pred_ ctx (go v)
          | Not a -> not_ ctx (go a)
          | And (a, b) -> and_ ctx (go a) (go b)
          | Or (a, b) -> or_ ctx (go a) (go b)
          | Ite (g, a, b) -> begin
            (* Decide the guard first so only the live branch is rewritten
               (and the dead branch's subterms stay untouched). *)
            let g' = go g in
            if is_top g' then (rewrote ctx; go a)
            else if is_bot g' then (rewrote ctx; go b)
            else ite ctx g' (go a) (go b)
          end
          | AddrIx (ix, v) -> addr_ix ctx ix (go v)
          | Select (m, a) -> select ctx (go m) (go a)
          | Store (m, g, a, v) -> store ctx (go m) (go g) (go a) (go v)
        end
      in
      Hashtbl.add ctx.assume_memo (cond.tid, t.tid) t';
      t'
  end

(* Rebuild a store chain keeping only cells [keep] accepts (used to mask
   the allocator's spill slots, whose addresses are always concrete). *)
let rec filter_stores ctx ~keep m =
  match m.node with
  | Store (m', g, a, v) ->
    let below = filter_stores ctx ~keep m' in
    (match a.node with
    | Addr n when not (keep n) -> below
    | _ -> store ctx below g a v)
  | _ -> m

(* --- grounding ----------------------------------------------------------

   Evaluating a term under a concrete initial valuation must reproduce the
   interpreter bit for bit; the per-opcode cases below mirror
   {!Interp.exec_op} literally (raw sources into the folds, [bound] in the
   same places).  Grounding serves two masters: the cross-validation
   property (ground symbolic == concrete interpreter) and counterexample
   extraction (a term mismatch is only reported Refuted once some concrete
   valuation actually diverges). *)

type env = { greg : int -> float; gmem : int -> float }

let standard_env =
  { greg = Interp.initial_reg_value; gmem = Interp.initial_mem_value }

(* Deterministic pseudo-random valuations: a pure hash of (seed, index),
   spread across [-modulus, modulus) so predicates land on both sides of
   the truth threshold. *)
let random_env seed =
  let mixin k i =
    let h = (k * 0x9e3779b9) lxor (i * 0x85ebca6b) lxor 0x2545f491 in
    let h = h lxor (h lsr 13) in
    let h = (h * 0xc2b2ae35) land max_int in
    h lxor (h lsr 16)
  in
  let value k i =
    Interp.bound ((float_of_int (mixin k i mod 40840) /. 20.0) -. 1021.0)
  in
  { greg = value (2 * seed); gmem = value ((2 * seed) + 1) }

type gvalue = F of float | B of bool | A of int

type grounding = { env : env; memo : (int, gvalue) Hashtbl.t }

let grounding env = { env; memo = Hashtbl.create 256 }

let rec ground g t =
  match Hashtbl.find_opt g.memo t.tid with
  | Some v -> v
  | None ->
    let v = compute g t in
    Hashtbl.add g.memo t.tid v;
    v

and gfloat g t = match ground g t with F f -> f | _ -> invalid_arg "Term.ground: not data"
and gbool g t = match ground g t with B b -> b | _ -> invalid_arg "Term.ground: not bool"
and gaddr g t = match ground g t with A a -> a | _ -> invalid_arg "Term.ground: not addr"

and compute g t =
  match t.node with
  | Cst f -> F f
  | Reg0 id -> F (g.env.greg id)
  | InitMem -> invalid_arg "Term.ground: bare memory term"
  | Top -> B true
  | Bot -> B false
  | App (op, args) ->
    let srcs = List.map (gfloat g) args in
    let sum = List.fold_left ( +. ) 0.0 (List.map Interp.bound srcs) in
    let prod () =
      List.fold_left (fun acc v -> Interp.bound (acc *. Interp.bound v)) 1.0 srcs
    in
    F
      (match op with
      | Ialu -> Interp.bound (sum +. 1.0)
      | Imul -> Interp.bound (prod () +. 2.0)
      | Fadd -> Interp.bound (sum +. 0.5)
      | Fmul -> Interp.bound (prod () +. 0.25)
      | Fmadd -> begin
        match srcs with
        | [ a; b; c ] -> Interp.bound (Interp.bound (a *. b) +. c +. 0.125)
        | _ -> Interp.bound (sum +. 0.125)
      end
      | Fdiv -> begin
        match srcs with
        | [ a; b ] ->
          let d = if Float.abs b < 1.0 then 2.0 else b in
          Interp.bound ((a /. d) +. 3.0)
        | _ -> Interp.bound (sum +. 3.0)
      end
      | Cmp -> Interp.bound ((sum *. 3.0) +. 7.0))
  | Pred v -> B (Interp.pred_true (gfloat g v))
  | Not x -> B (not (gbool g x))
  | And (a, b) -> B (gbool g a && gbool g b)
  | Or (a, b) -> B (gbool g a || gbool g b)
  | Ite (c, a, b) -> if gbool g c then ground g a else ground g b
  | Addr n -> A n
  | AddrIx (ix, v) ->
    let idx = int_of_float (Float.abs (gfloat g v *. 7.0)) in
    let len = max ix.ilen 1 in
    let idx = ((idx mod len) + len) mod len in
    A (ix.ibase + (ix.ielem * idx))
  | Select (m, a) -> F (ground_cell g m (gaddr g a))
  | Store _ -> invalid_arg "Term.ground: bare memory term"

(* Final value of one memory cell: the outermost store that fired wins. *)
and ground_cell g m n =
  match m.node with
  | Store (m', guard, a, v) ->
    if gbool g guard && gaddr g a = n then gfloat g v else ground_cell g m' n
  | InitMem -> g.env.gmem n
  | _ -> invalid_arg "Term.ground_cell: not a memory term"

let ground_written g m n =
  let rec go m =
    match m.node with
    | Store (m', guard, a, v) ->
      ignore v;
      (gbool g guard && gaddr g a = n) || go m'
    | _ -> false
  in
  go m

(* Every address a chain's fired stores touch under this valuation: the
   candidate set for a concrete memory-image comparison. *)
let ground_store_addrs g m =
  let rec go acc m =
    match m.node with
    | Store (m', guard, a, _) ->
      go (if gbool g guard then gaddr g a :: acc else acc) m'
    | _ -> acc
  in
  List.sort_uniq compare (go [] m)

(* --- printing ----------------------------------------------------------- *)

let op_name = function
  | Ialu -> "ialu"
  | Imul -> "imul"
  | Fadd -> "fadd"
  | Fmul -> "fmul"
  | Fmadd -> "fmadd"
  | Fdiv -> "fdiv"
  | Cmp -> "cmp"

let rec to_string t =
  match t.node with
  | Cst f -> Printf.sprintf "%g" f
  | Reg0 id -> Printf.sprintf "r0_%d" id
  | InitMem -> "mem0"
  | Top -> "true"
  | Bot -> "false"
  | App (op, args) ->
    Printf.sprintf "%s(%s)" (op_name op) (String.concat ", " (List.map to_string args))
  | Pred v -> Printf.sprintf "pred(%s)" (to_string v)
  | Not x -> Printf.sprintf "!(%s)" (to_string x)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Ite (g, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (to_string g) (to_string a) (to_string b)
  | Addr n -> Printf.sprintf "0x%x" n
  | AddrIx (ix, v) ->
    Printf.sprintf "ix[0x%x+%d*wrap%d(%s)]" ix.ibase ix.ielem ix.ilen (to_string v)
  | Select (m, a) -> Printf.sprintf "sel(%s, %s)" (to_string m) (to_string a)
  | Store (m, g, a, v) ->
    Printf.sprintf "store(%s, %s, %s, %s)" (to_string m) (to_string g) (to_string a)
      (to_string v)
