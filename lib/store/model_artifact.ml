type provenance = {
  dataset_digest : string;
  machine_name : string;
  machine_digest : string;
  code_version : string;
}

type payload =
  | Nn of { radius : float; n_classes : int; db : (float array * int) array }
  | Svm of {
      kernel : Kernel.t;
      codewords : int array array;
      alphas : float array array;
      points : float array array;
    }
  | Mlp of { dims : int array; weights : float array array; biases : float array array }

type label_space = Factor | Joint

type t = {
  provenance : provenance;
  label_space : label_space;
  features : int array;
  feature_names : string array;
  mean : float array;
  std : float array;
  payload : payload;
}

(* v2 added the MLP payload and the label-space line.  This build writes
   v2 and still reads v1 (which is v2 minus those — a v1 artifact is
   always a factor-space NN or SVM). *)
let version = 2
let oldest_readable_version = 1
let code_version = "unrollml-features38-v1"

let machine_digest (m : Machine.t) = Digest.to_hex (Digest.string (Marshal.to_string m []))

let kind t = match t.payload with Nn _ -> "nn" | Svm _ -> "svm" | Mlp _ -> "mlp"
let label_space_name = function Factor -> "factor" | Joint -> "joint"

(* Floats are written as C99 hexadecimal literals: every bit of the
   mantissa survives the round trip, so a loaded model predicts exactly
   what the in-process model predicted.  [%h] prints nan/infinity in a
   form [float_of_string] reads back. *)
let hex f = Printf.sprintf "%h" f
let floats xs = String.concat " " (List.map hex (Array.to_list xs))
let ints xs = String.concat " " (List.map string_of_int (Array.to_list xs))

let kernel_to_fields = function
  | Kernel.Linear -> [ "linear" ]
  | Kernel.Rbf g -> [ "rbf"; hex g ]
  | Kernel.Poly { degree; bias } -> [ "poly"; string_of_int degree; hex bias ]

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "unrollml-artifact v%d" version;
  line "kind %s" (kind t);
  line "label-space %s" (label_space_name t.label_space);
  line "code-version %s" t.provenance.code_version;
  line "dataset-digest %s" t.provenance.dataset_digest;
  line "machine %s %s" t.provenance.machine_name t.provenance.machine_digest;
  line "features %s" (ints t.features);
  line "feature-names %s" (String.concat " " (Array.to_list t.feature_names));
  line "mean %s" (floats t.mean);
  line "std %s" (floats t.std);
  (match t.payload with
  | Nn { radius; n_classes; db } ->
    line "nn-radius %s" (hex radius);
    line "nn-classes %d" n_classes;
    Array.iter (fun (x, y) -> line "point %d %s" y (floats x)) db
  | Svm { kernel; codewords; alphas; points } ->
    line "kernel %s" (String.concat " " (kernel_to_fields kernel));
    Array.iter (fun cw -> line "codeword %s" (ints cw)) codewords;
    Array.iter (fun a -> line "alphas %s" (floats a)) alphas;
    Array.iter (fun x -> line "point %s" (floats x)) points
  | Mlp { dims; weights; biases } ->
    line "mlp-dims %s" (ints dims);
    Array.iter (fun w -> line "mlp-weights %s" (floats w)) weights;
    Array.iter (fun b -> line "mlp-bias %s" (floats b)) biases);
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "checksum %s\n" (Digest.to_hex (Digest.string body))

(* --- parsing ------------------------------------------------------------ *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let float_field ~ctx s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failf "%s: bad float %S" ctx s

let int_field ~ctx s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failf "%s: bad integer %S" ctx s

let float_fields ~ctx rest = Array.of_list (List.map (float_field ~ctx) rest)
let int_fields ~ctx rest = Array.of_list (List.map (int_field ~ctx) rest)

let kernel_of_fields = function
  | [ "linear" ] -> Kernel.Linear
  | [ "rbf"; g ] -> Kernel.Rbf (float_field ~ctx:"kernel" g)
  | [ "poly"; d; b ] ->
    Kernel.Poly { degree = int_field ~ctx:"kernel" d; bias = float_field ~ctx:"kernel" b }
  | fields -> failf "kernel: unknown form %S" (String.concat " " fields)

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let of_string text =
  try
    (* The checksum line covers every byte before it; verify before
       interpreting anything else so corruption fails fast and loudly. *)
    let content_end =
      let e = ref (String.length text) in
      while !e > 0 && (text.[!e - 1] = '\n' || text.[!e - 1] = '\r' || text.[!e - 1] = ' ') do
        decr e
      done;
      !e
    in
    if content_end = 0 then failf "empty artifact";
    let check_start =
      match String.rindex_from_opt text (content_end - 1) '\n' with
      | Some i -> i + 1
      | None -> failf "truncated artifact (no checksum line)"
    in
    let last_line = String.trim (String.sub text check_start (content_end - check_start)) in
    (match split_words last_line with
    | [ "checksum"; hex ] ->
      let body = String.sub text 0 check_start in
      if Digest.to_hex (Digest.string body) <> hex then
        failf "checksum mismatch: artifact corrupt"
    | _ -> failf "missing checksum line");
    let lines =
      String.split_on_char '\n' (String.sub text 0 check_start)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let header, rest =
      match lines with
      | first :: rest -> (first, rest)
      | [] -> failf "empty artifact"
    in
    (match split_words header with
    | [ "unrollml-artifact"; v ] ->
      let readable =
        List.init (version - oldest_readable_version + 1) (fun i ->
            Printf.sprintf "v%d" (oldest_readable_version + i))
      in
      if not (List.mem v readable) then
        failf "unsupported artifact version %s (this build reads v%d..v%d)" v
          oldest_readable_version version
    | _ -> failf "not a model artifact (bad header %S)" header);
    let kind = ref "" and code_version = ref "" and dataset_digest = ref "" in
    let machine_name = ref "" and machine_dig = ref "" in
    let features = ref [||] and feature_names = ref [||] in
    let mean = ref [||] and std = ref [||] in
    let radius = ref nan and n_classes = ref 0 and kernel = ref None in
    let db = ref [] and codewords = ref [] and alphas = ref [] and points = ref [] in
    (* v1 artifacts predate the label-space line; they are always factor. *)
    let label_space = ref Factor in
    let mlp_dims = ref [||] and mlp_weights = ref [] and mlp_biases = ref [] in
    List.iter
      (fun l ->
        match split_words l with
        | "kind" :: [ k ] -> kind := k
        | "label-space" :: [ s ] -> (
          match s with
          | "factor" -> label_space := Factor
          | "joint" -> label_space := Joint
          | s -> failf "label-space: unknown space %S" s)
        | "mlp-dims" :: rest -> mlp_dims := int_fields ~ctx:"mlp-dims" rest
        | "mlp-weights" :: rest -> mlp_weights := float_fields ~ctx:"mlp-weights" rest :: !mlp_weights
        | "mlp-bias" :: rest -> mlp_biases := float_fields ~ctx:"mlp-bias" rest :: !mlp_biases
        | "code-version" :: [ v ] -> code_version := v
        | "dataset-digest" :: [ d ] -> dataset_digest := d
        | "machine" :: [ name; d ] ->
          machine_name := name;
          machine_dig := d
        | "features" :: rest -> features := int_fields ~ctx:"features" rest
        | "feature-names" :: rest -> feature_names := Array.of_list rest
        | "mean" :: rest -> mean := float_fields ~ctx:"mean" rest
        | "std" :: rest -> std := float_fields ~ctx:"std" rest
        | "nn-radius" :: [ r ] -> radius := float_field ~ctx:"nn-radius" r
        | "nn-classes" :: [ c ] -> n_classes := int_field ~ctx:"nn-classes" c
        | "kernel" :: rest -> kernel := Some (kernel_of_fields rest)
        | "point" :: rest -> (
          match !kind with
          | "nn" -> (
            match rest with
            | y :: xs ->
              db := (float_fields ~ctx:"point" xs, int_field ~ctx:"point" y) :: !db
            | [] -> failf "nn point: missing label")
          | "svm" -> points := float_fields ~ctx:"point" rest :: !points
          | k -> failf "point before kind (kind %S)" k)
        | "codeword" :: rest -> codewords := int_fields ~ctx:"codeword" rest :: !codewords
        | "alphas" :: rest -> alphas := float_fields ~ctx:"alphas" rest :: !alphas
        | w :: _ -> failf "unrecognised artifact line %S" w
        | [] -> ())
      rest;
    let d = Array.length !features in
    if Array.length !feature_names <> d then failf "feature-names/features length mismatch";
    if Array.length !mean <> d || Array.length !std <> d then
      failf "scale parameters do not match the feature subset";
    let payload =
      match !kind with
      | "nn" ->
        if Float.is_nan !radius then failf "nn artifact missing nn-radius";
        if !n_classes <= 0 then failf "nn artifact missing nn-classes";
        Nn { radius = !radius; n_classes = !n_classes; db = Array.of_list (List.rev !db) }
      | "svm" ->
        let kernel = match !kernel with Some k -> k | None -> failf "svm artifact missing kernel" in
        let codewords = Array.of_list (List.rev !codewords) in
        let alphas = Array.of_list (List.rev !alphas) in
        if Array.length codewords = 0 then failf "svm artifact has no codewords";
        if Array.length alphas = 0 then failf "svm artifact has no machines";
        Svm { kernel; codewords; alphas; points = Array.of_list (List.rev !points) }
      | "mlp" ->
        let dims = !mlp_dims in
        if Array.length dims < 2 then failf "mlp artifact missing mlp-dims";
        if dims.(0) <> d then
          failf "mlp input width %d does not match the %d-feature subset" dims.(0) d;
        let n_layers = Array.length dims - 1 in
        let weights = Array.of_list (List.rev !mlp_weights) in
        let biases = Array.of_list (List.rev !mlp_biases) in
        if Array.length weights <> n_layers then
          failf "mlp artifact has %d weight blocks for %d layers" (Array.length weights)
            n_layers;
        if Array.length biases <> n_layers then
          failf "mlp artifact has %d bias blocks for %d layers" (Array.length biases) n_layers;
        for l = 0 to n_layers - 1 do
          if Array.length weights.(l) <> dims.(l + 1) * dims.(l) then
            failf "mlp layer %d weight block has %d floats, expected %d" l
              (Array.length weights.(l))
              (dims.(l + 1) * dims.(l));
          if Array.length biases.(l) <> dims.(l + 1) then
            failf "mlp layer %d bias block has %d floats, expected %d" l
              (Array.length biases.(l))
              dims.(l + 1)
        done;
        Mlp { dims; weights; biases }
      | k -> failf "unknown artifact kind %S" k
    in
    Ok
      {
        provenance =
          {
            dataset_digest = !dataset_digest;
            machine_name = !machine_name;
            machine_digest = !machine_dig;
            code_version = !code_version;
          };
        label_space = !label_space;
        features = !features;
        feature_names = !feature_names;
        mean = !mean;
        std = !std;
        payload;
      }
  with Bad msg -> Error ("Model_artifact: " ^ msg)

let save t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let payload_points t =
  match t.payload with
  | Nn { db; _ } -> Array.length db
  | Svm { points; _ } -> Array.length points
  | Mlp { weights; biases; _ } ->
    Array.fold_left (fun n w -> n + Array.length w) 0 weights
    + Array.fold_left (fun n b -> n + Array.length b) 0 biases

let load ?(telemetry = Telemetry.global) path =
  let t0 = Unix.gettimeofday () in
  let result =
    match
      (try
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> Ok (really_input_string ic (in_channel_length ic)))
       with Sys_error e -> Error ("Model_artifact: " ^ e))
    with
    | Ok text -> of_string text
    | Error _ as e -> e
  in
  (match result with
  | Ok a ->
    Telemetry.record telemetry ~pass:"artifact" ~seconds:(Unix.gettimeofday () -. t0)
      ~metrics:[ ("loads", 1); ("points", payload_points a) ]
      ()
  | Error _ -> ());
  result

let verify_machine t (m : Machine.t) =
  let d = machine_digest m in
  if d = t.provenance.machine_digest then Ok ()
  else
    Error
      (Printf.sprintf
         "Model_artifact: machine mismatch — trained for %s (digest %s), serving %s (digest %s)"
         t.provenance.machine_name t.provenance.machine_digest m.Machine.mach_name d)

let verify_dataset t ~digest =
  if digest = t.provenance.dataset_digest then Ok ()
  else
    Error
      (Printf.sprintf "Model_artifact: dataset mismatch — trained on %s, given %s"
         t.provenance.dataset_digest digest)
