(** Versioned, self-describing model artifacts — the train/serve split.

    The paper's end product is a trained classifier compiled {e into} the
    compiler: §4.1 argues "the learned classifier can easily be
    incorporated into a compiler" because a model is data, not code.  This
    module is that data: a trained predictor (NN radius model or LS-SVM
    one-vs-rest machines), the committed feature subset from greedy
    selection, the {!Scale} normalisation parameters, and provenance
    digests — serialised as a line-oriented text format that round-trips
    {e bit-identically} (floats are written as hexadecimal literals, so
    [of_string (to_string a)] reproduces every prediction exactly).

    An artifact is self-checking: the first line carries the format
    version, the last line a digest of everything above it, and the header
    records where the model came from (training-dataset digest, machine
    name + digest, code version).  Loading rejects version mismatches and
    content corruption outright; provenance digests are verified against
    the serving environment with {!verify_machine} / {!verify_dataset}, so
    a model trained for one machine description can never silently predict
    for another. *)

type provenance = {
  dataset_digest : string;  (** hex digest of the training dataset ({!Dataset.digest}) *)
  machine_name : string;
  machine_digest : string;  (** hex digest of the full machine description *)
  code_version : string;    (** {!code_version} of the trainer *)
}

type payload =
  | Nn of {
      radius : float;
      n_classes : int;
      db : (float array * int) array;  (** scaled training points + labels *)
    }
  | Svm of {
      kernel : Kernel.t;
      codewords : int array array;     (** ±1 output-code rows, one per class *)
      alphas : float array array;      (** dual coefficients, one row per binary machine *)
      points : float array array;      (** scaled training points shared by the machines *)
    }

type t = {
  provenance : provenance;
  features : int array;          (** committed feature subset (indices into the full vector) *)
  feature_names : string array;  (** names of those features when the model was trained *)
  mean : float array;            (** {!Scale} parameters over the subset *)
  std : float array;
  payload : payload;
}

val version : int
(** Format version this build writes and the only one it reads. *)

val code_version : string
(** Identifies the training code; bumped when the feature definitions or
    learner semantics change incompatibly. *)

val machine_digest : Machine.t -> string
(** Hex digest over every field of the machine description. *)

val kind : t -> string
(** ["nn"] or ["svm"]. *)

val to_string : t -> string
(** Serialise; deterministic (no timestamps), bit-exact floats. *)

val of_string : string -> (t, string) result
(** Parse and validate: the version line must match {!version} exactly and
    the trailing checksum must match the content.  Errors name the
    offending line. *)

val save : t -> string -> unit

val load : ?telemetry:Telemetry.t -> string -> (t, string) result
(** {!of_string} over a file.  Load wall-time is recorded in [telemetry]
    (default {!Telemetry.global}) under the ["artifact"] pass, with the
    payload size as a counter. *)

val verify_machine : t -> Machine.t -> (unit, string) result
(** Fails unless the serving machine's digest equals the training one. *)

val verify_dataset : t -> digest:string -> (unit, string) result
(** Fails unless [digest] equals the recorded training-dataset digest. *)
