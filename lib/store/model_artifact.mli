(** Versioned, self-describing model artifacts — the train/serve split.

    The paper's end product is a trained classifier compiled {e into} the
    compiler: §4.1 argues "the learned classifier can easily be
    incorporated into a compiler" because a model is data, not code.  This
    module is that data: a trained predictor (NN radius model or LS-SVM
    one-vs-rest machines), the committed feature subset from greedy
    selection, the {!Scale} normalisation parameters, and provenance
    digests — serialised as a line-oriented text format that round-trips
    {e bit-identically} (floats are written as hexadecimal literals, so
    [of_string (to_string a)] reproduces every prediction exactly).

    An artifact is self-checking: the first line carries the format
    version, the last line a digest of everything above it, and the header
    records where the model came from (training-dataset digest, machine
    name + digest, code version).  Loading rejects version mismatches and
    content corruption outright; provenance digests are verified against
    the serving environment with {!verify_machine} / {!verify_dataset}, so
    a model trained for one machine description can never silently predict
    for another. *)

type provenance = {
  dataset_digest : string;  (** hex digest of the training dataset ({!Dataset.digest}) *)
  machine_name : string;
  machine_digest : string;  (** hex digest of the full machine description *)
  code_version : string;    (** {!code_version} of the trainer *)
}

type payload =
  | Nn of {
      radius : float;
      n_classes : int;
      db : (float array * int) array;  (** scaled training points + labels *)
    }
  | Svm of {
      kernel : Kernel.t;
      codewords : int array array;     (** ±1 output-code rows, one per class *)
      alphas : float array array;      (** dual coefficients, one row per binary machine *)
      points : float array array;      (** scaled training points shared by the machines *)
    }
  | Mlp of {
      dims : int array;                (** layer widths [|d; hidden…; classes|] *)
      weights : float array array;     (** per-layer weight blocks, row-major *)
      biases : float array array;      (** per-layer bias vectors *)
    }

type label_space =
  | Factor  (** 8-way: unroll factor alone (class = factor − 1) *)
  | Joint   (** 16-way: (unroll factor × SWP on/off), {!Labeling.Joint} layout *)

type t = {
  provenance : provenance;
  label_space : label_space;     (** decision space the classes index into *)
  features : int array;          (** committed feature subset (indices into the full vector) *)
  feature_names : string array;  (** names of those features when the model was trained *)
  mean : float array;            (** {!Scale} parameters over the subset *)
  std : float array;
  payload : payload;
}

val version : int
(** Format version this build writes.  Older versions down to
    {!oldest_readable_version} still load: v1 (pre-MLP, no [label-space]
    line) parses as a factor-space NN or SVM artifact. *)

val oldest_readable_version : int

val code_version : string
(** Identifies the training code; bumped when the feature definitions or
    learner semantics change incompatibly. *)

val machine_digest : Machine.t -> string
(** Hex digest over every field of the machine description. *)

val kind : t -> string
(** ["nn"], ["svm"] or ["mlp"]. *)

val label_space_name : label_space -> string
(** ["factor"] or ["joint"]. *)

val to_string : t -> string
(** Serialise; deterministic (no timestamps), bit-exact floats. *)

val of_string : string -> (t, string) result
(** Parse and validate: the version line must name a version between
    {!oldest_readable_version} and {!version}, and the trailing checksum
    must match the content.  Errors name the offending line. *)

val save : t -> string -> unit

val load : ?telemetry:Telemetry.t -> string -> (t, string) result
(** {!of_string} over a file.  Load wall-time is recorded in [telemetry]
    (default {!Telemetry.global}) under the ["artifact"] pass, with the
    payload size as a counter. *)

val verify_machine : t -> Machine.t -> (unit, string) result
(** Fails unless the serving machine's digest equals the training one. *)

val verify_dataset : t -> digest:string -> (unit, string) result
(** Fails unless [digest] equals the recorded training-dataset digest. *)
