exception Injected_crash

let header = "unrollml-journal v1\n"

type t = {
  path : string;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr option;
  entries : (string * int, int) Hashtbl.t;  (* (key, factor) -> cycles *)
  telemetry : Telemetry.t;
  recovered : int;
  truncated : int;
  mutable crash_in : int;  (* records until injected crash; -1 = disabled *)
  mutable crashed : bool;  (* injected crash fired: no further writes land *)
}

(* --- record framing -----------------------------------------------------

   One record per line:  R <digest> <key> <factor> <cycles>
   where <digest> is the hex MD5 of "<key> <factor> <cycles>".  A record
   is valid iff the line parses and the digest matches; anything else is
   damage.  Appends write whole lines and fsync, so a crash can only tear
   the final line. *)

let payload ~key ~factor ~cycles = Printf.sprintf "%s %d %d" key factor cycles

let record_line ~key ~factor ~cycles =
  let p = payload ~key ~factor ~cycles in
  Printf.sprintf "R %s %s\n" (Digest.to_hex (Digest.string p)) p

let parse_record line =
  match String.split_on_char ' ' line with
  | [ "R"; digest; key; factor; cycles ] -> (
    match (int_of_string_opt factor, int_of_string_opt cycles) with
    | Some f, Some c ->
      if Digest.to_hex (Digest.string (payload ~key ~factor:f ~cycles:c)) = digest then
        Some (key, f, c)
      else None
    | _ -> None)
  | _ -> None

(* --- recovery ----------------------------------------------------------- *)

type recovery = {
  r_entries : (string * int * int) list;  (* reverse order *)
  r_count : int;
  r_keep : int;        (* byte offset of the end of the last valid record *)
  r_torn : int;        (* bytes after [r_keep] (the torn tail) *)
}

exception Corrupt of string

(* Scan the journal body line by line.  Valid records accumulate; the
   first invalid chunk is tolerated only if nothing valid follows it (a
   torn tail).  An invalid chunk with valid records after it is interior
   corruption — impossible under crash-only damage — and rejects the
   whole journal. *)
let scan body start =
  let n = String.length body in
  let acc = ref [] and count = ref 0 in
  let keep = ref start and pos = ref start in
  let bad_at = ref None in
  while !pos < n do
    let line_end = try String.index_from body !pos '\n' with Not_found -> n in
    let complete = line_end < n in
    let line = String.sub body !pos (line_end - !pos) in
    (match (parse_record line, complete) with
    | Some (key, f, c), true -> (
      match !bad_at with
      | None ->
        acc := (key, f, c) :: !acc;
        incr count;
        keep := line_end + 1
      | Some off ->
        raise
          (Corrupt
             (Printf.sprintf "interior corruption at byte %d (valid record follows at byte %d)"
                off !pos)))
    | Some _, false | None, _ ->
      (* Incomplete final line, or an unparseable chunk: record where the
         damage starts; only fatal if another valid record follows. *)
      if !bad_at = None then bad_at := Some !pos);
    pos := line_end + 1
  done;
  { r_entries = !acc; r_count = !count; r_keep = !keep; r_torn = n - !keep }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let open_ ?(telemetry = Telemetry.global) path =
  try
    let existing = Sys.file_exists path in
    let contents = if existing then read_file path else "" in
    let recovery =
      if contents = "" then { r_entries = []; r_count = 0; r_keep = String.length header; r_torn = 0 }
      else begin
        let hlen = String.length header in
        if String.length contents < hlen || String.sub contents 0 hlen <> header then
          raise (Corrupt "not a label journal (bad header)");
        scan contents hlen
      end
    in
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
    (* Truncate the torn tail (or stamp the header into a fresh file),
       leaving the file at exactly the last valid record. *)
    if contents = "" then begin
      ignore (Unix.write_substring fd header 0 (String.length header));
      Unix.fsync fd
    end
    else if recovery.r_torn > 0 then begin
      Unix.ftruncate fd recovery.r_keep;
      Unix.fsync fd
    end;
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    let entries = Hashtbl.create 1024 in
    (* r_entries is newest-first; [replace] walking oldest-first keeps the
       last write for duplicate (key, factor) records. *)
    List.iter (fun (k, f, c) -> Hashtbl.replace entries (k, f) c) (List.rev recovery.r_entries);
    Telemetry.incr telemetry ~pass:"label-store" "records-recovered" recovery.r_count;
    Telemetry.incr telemetry ~pass:"label-store" "truncated-bytes" recovery.r_torn;
    Ok
      {
        path;
        mutex = Mutex.create ();
        fd = Some fd;
        entries;
        telemetry;
        recovered = recovery.r_count;
        truncated = recovery.r_torn;
        crash_in = -1;
        crashed = false;
      }
  with
  | Corrupt msg -> Error (Printf.sprintf "Label_store: %s: %s" path msg)
  | Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "Label_store: %s: %s" path (Unix.error_message e))
  | Sys_error msg -> Error ("Label_store: " ^ msg)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let close t =
  locked t (fun () ->
      match t.fd with
      | Some fd ->
        Unix.close fd;
        t.fd <- None
      | None -> ())

let path t = t.path

let sweep_key ~machine ~swp ~noise ~noise_seed ~runs ~max_sim_iters ~bench ~index
    (loop : Loop.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( { loop with Loop.name = "" },
            machine,
            swp,
            noise,
            noise_seed,
            runs,
            max_sim_iters,
            bench,
            index )
          []))

let find t ~key ~factor = locked t (fun () -> Hashtbl.find_opt t.entries (key, factor))

let find_sweep t ~key ~n_factors =
  locked t (fun () ->
      let out = Array.make n_factors 0 in
      let complete = ref true in
      for f = 1 to n_factors do
        match Hashtbl.find_opt t.entries (key, f) with
        | Some c -> out.(f - 1) <- c
        | None -> complete := false
      done;
      if !complete then Some out else None)

let fd_exn t = match t.fd with Some fd -> fd | None -> invalid_arg "Label_store: closed"

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let append_sweep t ~key cycles =
  locked t (fun () ->
      (* Once the injected crash has fired, the store is as dead as the
         process it simulates: a real SIGKILL stops every writer at once,
         so later appends from still-running workers must not land after
         the torn record (they would turn tail damage into interior
         corruption, which recovery rightly rejects). *)
      if t.crashed then raise Injected_crash;
      let fd = fd_exn t in
      let buf = Buffer.create 512 in
      let crashed = ref false in
      Array.iteri
        (fun i c ->
          if not !crashed then begin
            let line = record_line ~key ~factor:(i + 1) ~cycles:c in
            if t.crash_in = 0 then begin
              (* Fault injection: tear this record in half and die, like a
                 SIGKILL landing between write and fsync. *)
              Buffer.add_string buf (String.sub line 0 (String.length line / 2));
              t.crash_in <- -1;
              t.crashed <- true;
              crashed := true
            end
            else begin
              if t.crash_in > 0 then t.crash_in <- t.crash_in - 1;
              Buffer.add_string buf line;
              Hashtbl.replace t.entries (key, i + 1) c
            end
          end)
        cycles;
      write_all fd (Buffer.contents buf);
      if !crashed then raise Injected_crash;
      Unix.fsync fd;
      Telemetry.incr t.telemetry ~pass:"label-store" "records-appended" (Array.length cycles))

let size t = locked t (fun () -> Hashtbl.length t.entries)
let recovered_records t = t.recovered
let truncated_bytes t = t.truncated
let inject_crash_after t n = locked t (fun () -> t.crash_in <- n)

(* --- tail following ------------------------------------------------------

   A follower is a read-only cursor over someone else's live journal: it
   delivers every valid record exactly once, in file order, blocking (by
   polling) until the writer fsyncs more.  Position tracking gives the
   exactly-once guarantee — [f_pos] only ever advances past records that
   have been handed to the caller or buffered for it.

   Each poll re-reads [f_pos, EOF) and applies the same classification as
   {!scan}: the valid prefix is buffered and [f_pos] advances past it; an
   invalid chunk with a valid record after it raises {!Corrupt} exactly
   like recovery; an invalid or incomplete *tail* is simply not consumed
   yet — the next poll re-reads it from scratch, which also absorbs the
   case where a recovering writer truncates a torn tail and appends fresh
   records over those bytes (recovery never truncates below the last
   valid record, and [f_pos] never passes an invalid one, so [f_pos]
   always stays within the stable prefix). *)

type follower = {
  fl_path : string;
  mutable fl_fd : Unix.file_descr option;
  mutable fl_pos : int; (* byte offset of the end of the last consumed record *)
  mutable fl_header_ok : bool;
  mutable fl_queue : (string * int * int) list; (* parsed, undelivered (in order) *)
}

let follow path =
  try
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Ok { fl_path = path; fl_fd = Some fd; fl_pos = 0; fl_header_ok = false; fl_queue = [] }
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "Label_store: %s: %s" path (Unix.error_message e))

let follower_fd_exn f =
  match f.fl_fd with Some fd -> fd | None -> invalid_arg "Label_store: follower closed"

let read_tail fd pos =
  let len = (Unix.fstat fd).Unix.st_size - pos in
  if len <= 0 then ""
  else begin
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let buf = Bytes.create len in
    let got = ref 0 in
    (try
       while !got < len do
         let r = Unix.read fd buf !got (len - !got) in
         if r = 0 then raise Exit;
         got := !got + r
       done
     with Exit -> ());
    (* a concurrent truncate can shorten the file mid-read; deliver what
       arrived — the next poll re-reads from a consistent offset *)
    Bytes.sub_string buf 0 !got
  end

(* One non-blocking poll: refill the queue from newly stable bytes. *)
let poll_once f =
  let fd = follower_fd_exn f in
  if not f.fl_header_ok then begin
    let hlen = String.length header in
    let h = read_tail fd 0 in
    if String.length h >= hlen then begin
      if String.sub h 0 hlen <> header then
        raise (Corrupt "not a label journal (bad header)");
      f.fl_header_ok <- true;
      f.fl_pos <- hlen
    end
  end;
  if f.fl_header_ok then begin
    let tail = read_tail fd f.fl_pos in
    if tail <> "" then begin
      let r = scan tail 0 in
      if r.r_keep > 0 then begin
        f.fl_queue <- f.fl_queue @ List.rev r.r_entries;
        f.fl_pos <- f.fl_pos + r.r_keep
      end
    end
  end

let follow_next ?timeout ?(poll = 0.02) f =
  let deadline =
    match timeout with None -> None | Some s -> Some (Unix.gettimeofday () +. s)
  in
  let rec loop () =
    match f.fl_queue with
    | r :: rest ->
      f.fl_queue <- rest;
      Some r
    | [] ->
      poll_once f;
      if f.fl_queue <> [] then loop ()
      else begin
        let expired =
          match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
        in
        if expired then None
        else begin
          Unix.sleepf poll;
          loop ()
        end
      end
  in
  loop ()

let follower_pos f = f.fl_pos

let close_follower f =
  match f.fl_fd with
  | Some fd ->
    Unix.close fd;
    f.fl_fd <- None
  | None -> ()
