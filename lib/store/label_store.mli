(** Crash-safe label journal — the persistence layer of the labelling sweep.

    Labelling measures every loop of the suite at unroll factors 1..8;
    at full scale that is a multi-hour sweep, and before this store a
    crash anywhere lost all of it.  The journal is an append-only file of
    per-(sweep-key, factor) cycle measurements with atomic record framing:
    each record carries a digest of its own payload, records for one
    loop's sweep are written in a single [write] and fsync'd before
    {!append_sweep} returns, so the journal on disk is always a prefix of
    the logical record stream plus at most one torn tail.

    Recovery on {!open_} distinguishes the two corruption cases:
    - a {e trailing} partial record (the torn tail of an interrupted
      append) is silently truncated — by construction it is the only kind
      of damage a crash can produce;
    - {e interior} corruption (a bad record followed by good ones) can
      only mean bitrot or tampering, and is rejected loudly with the
      offending byte offset.

    A resumed sweep ({!Labeling.collect} with a journal) skips every
    fully-journalled loop and re-measures the rest; because each loop's
    measurement RNG is derived from stable identifiers, the resumed
    result is bit-identical to an uninterrupted run at any [-j].

    All operations are mutex-protected: worker domains of the parallel
    sweep share one store.  Counters feed [telemetry] under the
    ["label-store"] pass: [records-recovered], [truncated-bytes],
    [records-appended]. *)

type t

exception Injected_crash
(** Raised by the test-only fault injector ({!inject_crash_after}) after
    it has written a deliberately torn record. *)

val open_ : ?telemetry:Telemetry.t -> string -> (t, string) result
(** Open (creating if absent) and recover the journal at a path.  Returns
    [Error] on interior corruption, a foreign file, or an unsupported
    journal version; a torn trailing record is truncated and counted. *)

val close : t -> unit

val path : t -> string

val sweep_key :
  machine:Machine.t -> swp:bool -> noise:float -> noise_seed:int -> runs:int ->
  max_sim_iters:int -> bench:string -> index:int -> Loop.t -> string
(** The identity of one loop's measurement sweep: a hex digest over the
    loop's content (name blanked, like {!Compile_cache.key}), the full
    machine description, the SWP flag, every measurement parameter, and
    the (benchmark, loop index) pair that seeds the noise RNG.  Two
    structurally identical loops in different suite slots get different
    keys — they observe different noise, so their measurements are not
    interchangeable. *)

val find : t -> key:string -> factor:int -> int option
(** The journalled cycle count of one (sweep, factor), if present. *)

val find_sweep : t -> key:string -> n_factors:int -> int array option
(** All of factors 1..[n_factors] for a sweep, or [None] if any is
    missing (a partially-journalled sweep is re-measured whole). *)

val append_sweep : t -> key:string -> int array -> unit
(** Journal a complete sweep (index 0 = factor 1): all records in one
    write, one fsync.  Duplicate (key, factor) records are legal — the
    last one wins on recovery; measurements are deterministic, so
    duplicates always agree. *)

val size : t -> int
(** Number of distinct (key, factor) records currently known. *)

val recovered_records : t -> int
(** Records read back by {!open_}. *)

val truncated_bytes : t -> int
(** Bytes of torn tail discarded by recovery (0 for a clean journal). *)

val inject_crash_after : t -> int -> unit
(** Test hook: after [n] more records are written, write a torn prefix of
    the next record (no fsync) and raise {!Injected_crash} — simulating a
    [SIGKILL] landing mid-write.  The store is dead from then on: every
    later {!append_sweep} raises {!Injected_crash} without writing, since
    a real kill stops all writers at once (anything appended after the
    torn record would be interior corruption, which recovery rejects). *)

(** {1 Tail following}

    A follower is a read-only cursor over someone else's live journal —
    the feed of [unroll-ml train --follow].  It delivers every valid
    record {e exactly once}, in file order, by polling the file for newly
    fsync'd bytes; the cursor only ever advances past records already
    handed to the caller.  Damage is classified exactly like {!open_}
    recovery: an invalid or incomplete {e tail} is simply not consumed
    yet (re-read on the next poll, which also absorbs a recovering
    writer truncating the torn bytes), while an invalid chunk with a
    valid record after it raises {!Corrupt}. *)

exception Corrupt of string
(** Interior journal corruption seen by a follower, with the offending
    byte offset relative to the unconsumed tail.  ({!open_} reports the
    same condition as an [Error].) *)

type follower

val follow : string -> (follower, string) result
(** Open a follower at the start of an existing journal (the first
    {!follow_next} delivers the oldest record).  The header is validated
    lazily, so following a journal whose writer has not finished creating
    it is safe. *)

val follow_next :
  ?timeout:float -> ?poll:float -> follower -> (string * int * int) option
(** [follow_next f] blocks until the next record [(key, factor, cycles)]
    is available and returns it, polling the file every [poll] seconds
    (default 0.02).  With [timeout] (seconds), returns [None] once that
    much time passes with no new complete record.  Raises {!Corrupt} on
    interior corruption. *)

val follower_pos : follower -> int
(** Byte offset of the end of the last consumed record (the stable
    prefix this follower has fully delivered or buffered). *)

val close_follower : follower -> unit
