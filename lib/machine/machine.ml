type unit_kind = M | I | F | B

type cache_geom = { size_bytes : int; line_bytes : int; assoc : int }

type t = {
  mach_name : string;
  issue_width : int;
  m_units : int;
  i_units : int;
  f_units : int;
  b_units : int;
  int_regs : int;
  fp_regs : int;
  rot_int_regs : int;
  rot_fp_regs : int;
  lat_ialu : int;
  lat_imul : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fmadd : int;
  lat_fdiv : int;
  lat_load : int;
  lat_store : int;
  lat_cmp : int;
  lat_br : int;
  lat_sel : int;
  lat_call : int;
  lat_mov : int;
  fdiv_unpipelined : bool;
  l1d : cache_geom;
  l1i : cache_geom;
  l2 : cache_geom;
  l2_hit_extra : int;
  mem_extra : int;
  l1i_miss_extra : int;
  taken_branch_cost : int;
  mispredict_cost : int;
  spill_cost_regs : int;
}

let unit_of (op : Op.t) =
  match op.Op.opcode with
  | Op.Load _ | Op.Store _ -> M
  | Op.Ialu | Op.Imul | Op.Cmp | Op.Mov | Op.Sel -> I
  | Op.Fadd | Op.Fmul | Op.Fmadd | Op.Fdiv -> F
  | Op.Br _ | Op.Call -> B

let latency m (op : Op.t) =
  match op.Op.opcode with
  | Op.Ialu -> m.lat_ialu
  | Op.Imul -> m.lat_imul
  | Op.Fadd -> m.lat_fadd
  | Op.Fmul -> m.lat_fmul
  | Op.Fmadd -> m.lat_fmadd
  | Op.Fdiv -> m.lat_fdiv
  | Op.Load _ -> m.lat_load
  | Op.Store _ -> m.lat_store
  | Op.Cmp -> m.lat_cmp
  | Op.Br _ -> m.lat_br
  | Op.Sel -> m.lat_sel
  | Op.Call -> m.lat_call
  | Op.Mov -> m.lat_mov

let units_of_kind m = function
  | M -> m.m_units
  | I -> m.i_units
  | F -> m.f_units
  | B -> m.b_units

let ceil_div a b = (a + b - 1) / b

let res_cycles m ops =
  let counts = [| 0; 0; 0; 0 |] in
  let idx = function M -> 0 | I -> 1 | F -> 2 | B -> 3 in
  (* An unpipelined divide occupies its unit for its full latency. *)
  Array.iter
    (fun op ->
      let cost =
        match op.Op.opcode with
        | Op.Fdiv when m.fdiv_unpipelined -> m.lat_fdiv
        | _ -> 1
      in
      let k = idx (unit_of op) in
      counts.(k) <- counts.(k) + cost)
    ops;
  let per_unit =
    List.fold_left
      (fun acc kind ->
        let c = counts.(idx kind) in
        if c = 0 then acc else max acc (ceil_div c (units_of_kind m kind)))
      1 [ M; I; F; B ]
  in
  max per_unit (ceil_div (Array.length ops) m.issue_width)

let itanium2 =
  {
    mach_name = "itanium2";
    issue_width = 6;
    m_units = 2;
    i_units = 2;
    f_units = 2;
    b_units = 1;
    int_regs = 24;
    fp_regs = 24;
    rot_int_regs = 64;
    rot_fp_regs = 64;
    lat_ialu = 1;
    lat_imul = 3;
    lat_fadd = 4;
    lat_fmul = 4;
    lat_fmadd = 4;
    lat_fdiv = 24;
    lat_load = 3;
    lat_store = 1;
    lat_cmp = 1;
    lat_br = 1;
    lat_sel = 1;
    lat_call = 8;
    lat_mov = 1;
    fdiv_unpipelined = true;
    l1d = { size_bytes = 16 * 1024; line_bytes = 64; assoc = 4 };
    l1i = { size_bytes = 16 * 1024; line_bytes = 64; assoc = 4 };
    l2 = { size_bytes = 256 * 1024; line_bytes = 128; assoc = 8 };
    l2_hit_extra = 8;
    mem_extra = 40;
    l1i_miss_extra = 11;
    taken_branch_cost = 1;
    mispredict_cost = 10;
    spill_cost_regs = 2;
  }

let wide_vliw =
  {
    itanium2 with
    mach_name = "wide_vliw";
    issue_width = 8;
    m_units = 3;
    i_units = 3;
    f_units = 4;
    b_units = 2;
    int_regs = 64;
    fp_regs = 64;
    rot_int_regs = 96;
    rot_fp_regs = 96;
    l1d = { size_bytes = 32 * 1024; line_bytes = 64; assoc = 8 };
    l1i = { size_bytes = 32 * 1024; line_bytes = 64; assoc = 8 };
    taken_branch_cost = 2;
  }

let embedded2 =
  {
    itanium2 with
    mach_name = "embedded2";
    issue_width = 2;
    m_units = 1;
    i_units = 1;
    f_units = 1;
    b_units = 1;
    int_regs = 16;
    fp_regs = 16;
    rot_int_regs = 24;
    rot_fp_regs = 24;
    lat_load = 2;
    l1d = { size_bytes = 8 * 1024; line_bytes = 32; assoc = 2 };
    l1i = { size_bytes = 8 * 1024; line_bytes = 32; assoc = 2 };
    l2 = { size_bytes = 64 * 1024; line_bytes = 64; assoc = 4 };
    l2_hit_extra = 12;
    mem_extra = 60;
    l1i_miss_extra = 4;
    taken_branch_cost = 3;
    mispredict_cost = 6;
  }

let all = [ itanium2; wide_vliw; embedded2 ]

let by_name name = List.find_opt (fun m -> m.mach_name = name) all
