(** Target machine descriptions.

    An explicit EPIC/VLIW-style in-order machine model: issue width,
    functional units, operation latencies, register files, cache hierarchy
    and branch costs.  The default, {!itanium2}, approximates the 1.3 GHz
    Itanium 2 the paper targets.  Two alternates exercise the
    retune-to-a-new-machine workflow from §4.5 of the paper. *)

type unit_kind =
  | M  (** memory *)
  | I  (** integer ALU *)
  | F  (** floating point *)
  | B  (** branch *)

type cache_geom = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;  (** ways; 1 = direct mapped *)
}

type t = {
  mach_name : string;
  issue_width : int;          (** ops issued per cycle, all units combined *)
  m_units : int;
  i_units : int;
  f_units : int;
  b_units : int;
  int_regs : int;             (** static integer registers allocatable to a loop *)
  fp_regs : int;
  rot_int_regs : int;         (** rotating registers available to the modulo
                                  scheduler (Itanium-style; larger than the
                                  static allocation budget) *)
  rot_fp_regs : int;
  lat_ialu : int;
  lat_imul : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fmadd : int;
  lat_fdiv : int;
  lat_load : int;             (** L1D-hit use latency *)
  lat_store : int;
  lat_cmp : int;
  lat_br : int;
  lat_sel : int;
  lat_call : int;
  lat_mov : int;
  fdiv_unpipelined : bool;    (** divides block their unit for their latency *)
  l1d : cache_geom;
  l1i : cache_geom;
  l2 : cache_geom;
  l2_hit_extra : int;         (** extra stall cycles for an L1 miss, L2 hit *)
  mem_extra : int;            (** extra stall cycles for an L2 miss *)
  l1i_miss_extra : int;       (** front-end stall per I-cache line miss *)
  taken_branch_cost : int;    (** pipeline bubble per taken branch *)
  mispredict_cost : int;      (** flush cost for a mispredicted branch *)
  spill_cost_regs : int;      (** registers reserved for spill addressing *)
}

val unit_of : Op.t -> unit_kind
(** The functional-unit class an op executes on. *)

val latency : t -> Op.t -> int
(** Result latency of an op on this machine (assuming an L1 hit for
    loads; cache misses add stalls at simulation time). *)

val res_cycles : t -> Op.t array -> int
(** Resource-bound lower bound on cycles for one iteration of [ops]:
    the most-subscribed unit class, also bounded by total issue width.
    This is ResMII for modulo scheduling and the "estimated cycle length"
    feature. *)

val itanium2 : t
(** 6-issue, 2M/2I/2F/1B(+2), Itanium-2-like latencies, 16 KB L1D/L1I,
    256 KB L2. *)

val wide_vliw : t
(** A wider 8-issue machine with more FP capacity and a larger L1 —
    unrolling pays off longer before resources saturate. *)

val embedded2 : t
(** A narrow dual-issue machine with a small cache and expensive branches —
    unrolling saturates almost immediately but branch savings matter. *)

val all : t list
(** The shipped machine descriptions. *)

val by_name : string -> t option
