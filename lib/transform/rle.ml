type result = { loop : Loop.t; loads_eliminated : int; stores_eliminated : int }

(* Test-only: reintroduces the historical soundness bug where available
   entries survived redefinition of the register holding the cached value
   (fixed after fuzzing caught it; the translation validator's refutation
   tests re-enable it). *)
let testing_stale_available = ref false

type key = { array : int; stride : int; offset : int }

let key_of (m : Op.mref) = { array = m.Op.array; stride = m.Op.stride; offset = m.Op.offset }

(* Two direct refs in the same iteration alias only at equal addresses:
   equal key.  Same array with equal stride but different offsets are
   provably distinct; differing strides may coincide.  Under C-style
   aliasing, references to different arrays may coincide too. *)
let may_alias_key ~aliased a b =
  if a.array <> b.array then aliased
  else a.stride <> b.stride || a.offset = b.offset

let direct_unpredicated (op : Op.t) =
  match (Op.mref op, op.Op.pred) with
  | Some ({ Op.mkind = Op.Direct; _ } as m), None -> Some m
  | _ -> None

(* Forward pass: replace loads whose value is already in a register. *)
let eliminate_loads ~aliased body =
  let available : (key, Op.reg) Hashtbl.t = Hashtbl.create 16 in
  let kill_may_alias k =
    let doomed =
      Hashtbl.fold (fun k' _ acc -> if may_alias_key ~aliased k k' then k' :: acc else acc)
        available []
    in
    List.iter (Hashtbl.remove available) doomed
  in
  let kill_all () = Hashtbl.reset available in
  let kill_array a =
    let doomed =
      Hashtbl.fold (fun k' _ acc -> if k'.array = a then k' :: acc else acc) available []
    in
    List.iter (Hashtbl.remove available) doomed
  in
  (* A cached register is only a stand-in for the memory cell while it still
     holds the stored/loaded value.  Any later definition of that register —
     including a predicated one, which the unroller deliberately leaves
     un-renamed across copies — invalidates every entry that points at it. *)
  let kill_reg (d : Op.reg) =
    let doomed =
      Hashtbl.fold (fun k' (r : Op.reg) acc -> if r.Op.id = d.Op.id then k' :: acc else acc)
        available []
    in
    List.iter (Hashtbl.remove available) doomed
  in
  let eliminated = ref 0 in
  let rewritten =
    Array.map
      (fun (op : Op.t) ->
        let op' =
          match op.Op.opcode with
          | Op.Load m -> begin
            match direct_unpredicated op with
            | Some m' -> begin
              let k = key_of m' in
              match Hashtbl.find_opt available k with
              | Some r ->
                incr eliminated;
                { op with Op.opcode = Op.Mov; srcs = [ r ] }
              | None -> op
            end
            | None ->
              ignore m;
              op
          end
          | Op.Store m -> begin
            match (direct_unpredicated op, op.Op.srcs) with
            | Some m', [ v ] ->
              let k = key_of m' in
              kill_may_alias k;
              Hashtbl.replace available k v;
              op
            | _ ->
              (* Indirect or predicated store: conservative. *)
              (match m.Op.mkind with
              | Op.Indirect -> kill_all ()
              | Op.Direct -> if aliased then kill_all () else kill_array m.Op.array);
              op
          end
          | Op.Call -> kill_all (); op
          | _ -> op
        in
        (match op'.Op.dst with
        | Some d -> if not !testing_stale_available then kill_reg d
        | None -> ());
        (match (op'.Op.opcode, direct_unpredicated op', op'.Op.dst) with
        | Op.Load _, Some m', Some d -> Hashtbl.replace available (key_of m') d
        | _ -> ());
        op')
      body
  in
  (rewritten, !eliminated)

(* Backward pass: drop stores overwritten in the same iteration before any
   possible read.  Early exits and calls make all pending overwrites
   observable, so they clear the tracking set. *)
let eliminate_dead_stores ~aliased body =
  let overwritten : (key, unit) Hashtbl.t = Hashtbl.create 16 in
  let clear_may_read k =
    let doomed =
      Hashtbl.fold (fun k' () acc -> if may_alias_key ~aliased k k' then k' :: acc else acc)
        overwritten []
    in
    List.iter (Hashtbl.remove overwritten) doomed
  in
  let dead = Hashtbl.create 4 in
  let n = Array.length body in
  for i = n - 1 downto 0 do
    let op = body.(i) in
    match op.Op.opcode with
    | Op.Store m -> begin
      match direct_unpredicated op with
      | Some m' ->
        let k = key_of m' in
        if Hashtbl.mem overwritten k then Hashtbl.replace dead i ()
        else Hashtbl.replace overwritten k ()
      | None ->
        ignore m;
        Hashtbl.reset overwritten
    end
    | Op.Load m -> begin
      match m.Op.mkind with
      | Op.Direct -> clear_may_read (key_of m)
      | Op.Indirect -> Hashtbl.reset overwritten
    end
    | Op.Call | Op.Br Op.Exit -> Hashtbl.reset overwritten
    | _ -> ()
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if not (Hashtbl.mem dead i) then kept := body.(i) :: !kept
  done;
  (Array.of_list !kept, Hashtbl.length dead)

let run (loop : Loop.t) =
  let aliased = loop.Loop.aliased in
  let body, loads_eliminated = eliminate_loads ~aliased loop.Loop.body in
  let body, stores_eliminated = eliminate_dead_stores ~aliased body in
  let body = Array.mapi (fun i op -> { op with Op.uid = i }) body in
  let loop = { loop with Loop.body } in
  (match Loop.validate loop with
  | Ok () -> ()
  | Error msg -> failwith ("Rle.run: invalid result: " ^ msg));
  { loop; loads_eliminated; stores_eliminated }
