type t = {
  kernel : Loop.t;
  kernel_trips : int;
  remainder : Loop.t option;
  remainder_trips : int;
  factor : int;
  code_bytes : int;
}

let max_factor = 8

module RegMap = Map.Make (struct
  type t = Op.reg
  let compare = compare
end)

module RegSet = Set.Make (struct
  type t = Op.reg
  let compare = compare
end)

(* The canonical loop overhead appended by [Builder.finish]: induction
   update, trip compare, backward branch.  If a loop was built some other
   way, fall back to treating only the backedge as overhead. *)
let split_overhead (body : Op.t array) =
  let n = Array.length body in
  let is_iv_update (op : Op.t) =
    match (op.Op.opcode, op.Op.dst, op.Op.srcs) with
    | Op.Ialu, Some d, [ s ] -> d = s
    | _ -> false
  in
  if
    n >= 3
    && is_iv_update body.(n - 3)
    && (match body.(n - 2).Op.opcode with Op.Cmp -> true | _ -> false)
  then (Array.sub body 0 (n - 3), Array.sub body (n - 3) 3)
  else (Array.sub body 0 (n - 1), Array.sub body (n - 1) 1)

(* Loop-carried registers: defined in the core and read at or before their
   first definition (the read sees the previous iteration's value).  Live-out
   registers defined in the core are treated the same way so that the final
   replica writes back the architecturally-visible name. *)
(* Registers written by a predicated op keep their old value when the guard
   is false — a read-modify-write.  Renaming them per replica would expose
   an undefined value on the false path, so they are pinned to their
   original name in every replica (the resulting anti/output dependences
   serialise the replicas through that register, which is also what a real
   compiler pays). *)
let pinned_regs core =
  Array.fold_left
    (fun acc (op : Op.t) ->
      match (op.Op.pred, op.Op.dst) with
      | Some _, Some d -> RegSet.add d acc
      | _ -> acc)
    RegSet.empty core

let carried_regs core live_out =
  let first_def = Hashtbl.create 16 in
  let first_use = Hashtbl.create 16 in
  Array.iteri
    (fun i op ->
      List.iter
        (fun r -> if not (Hashtbl.mem first_use r) then Hashtbl.add first_use r i)
        (Op.uses op);
      (match op.Op.pred with
      | Some p ->
        let r = { Op.id = p; cls = Op.Int } in
        if not (Hashtbl.mem first_use r) then Hashtbl.add first_use r i
      | None -> ());
      List.iter
        (fun r -> if not (Hashtbl.mem first_def r) then Hashtbl.add first_def r i)
        (Op.defs op))
    core;
  let carried = ref RegSet.empty in
  Hashtbl.iter
    (fun r d ->
      match Hashtbl.find_opt first_use r with
      | Some u when u <= d -> carried := RegSet.add r !carried
      | Some _ | None -> ())
    first_def;
  List.iter
    (fun r -> if Hashtbl.mem first_def r then carried := RegSet.add r !carried)
    live_out;
  !carried

let run (loop : Loop.t) u =
  if u < 1 || u > max_factor then
    invalid_arg (Printf.sprintf "Unroll.run: factor %d out of [1, %d]" u max_factor);
  if u = 1 then
    {
      kernel = loop;
      kernel_trips = loop.Loop.trip_actual;
      remainder = None;
      remainder_trips = 0;
      factor = 1;
      code_bytes = Loop.code_bytes loop;
    }
  else begin
    let core, overhead = split_overhead loop.Loop.body in
    let carried = carried_regs core loop.Loop.live_out in
    let pinned = pinned_regs core in
    (* An early exit can leave the loop from any replica, so loop-carried
       chains cannot be rotated through per-replica names — the
       architectural register must hold the live value at every exit
       point.  (This is one of the reasons ORC refuses to unroll such
       loops; when we do it mechanically for measurement, it must at least
       be correct.) *)
    let pinned =
      if Loop.has_early_exit loop then RegSet.union pinned carried else pinned
    in
    let stride_base = Loop.max_reg_id loop + 1 in
    let def_name k (r : Op.reg) =
      if RegSet.mem r pinned then r
      else if RegSet.mem r carried then
        if k = u - 1 then r else { r with Op.id = r.Op.id + ((k + 1) * stride_base) }
      else if k = 0 then r
      else { r with Op.id = r.Op.id + (k * stride_base) }
    in
    let current = Hashtbl.create 32 in
    let rename r = Option.value (Hashtbl.find_opt current r) ~default:r in
    let out = ref [] in
    let emit op = out := op :: !out in
    for k = 0 to u - 1 do
      Array.iter
        (fun (op : Op.t) ->
          let srcs = List.map rename op.Op.srcs in
          let pred =
            Option.map
              (fun p -> (rename { Op.id = p; cls = Op.Int }).Op.id)
              op.Op.pred
          in
          let opcode =
            match op.Op.opcode with
            | Op.Load m ->
              Op.Load
                { m with Op.stride = m.Op.stride * u; offset = m.Op.offset + (m.Op.stride * k) }
            | Op.Store m ->
              Op.Store
                { m with Op.stride = m.Op.stride * u; offset = m.Op.offset + (m.Op.stride * k) }
            | other -> other
          in
          let dst = Option.map (def_name k) op.Op.dst in
          Option.iter
            (fun d -> Hashtbl.replace current (Option.get op.Op.dst) d)
            dst;
          emit { op with Op.opcode; dst; srcs; pred })
        core
    done;
    (* Single merged copy of the loop overhead. *)
    Array.iter (fun op -> emit op) overhead;
    let body =
      Array.of_list (List.rev !out)
      |> Array.mapi (fun i op -> { op with Op.uid = i })
    in
    let trip = loop.Loop.trip_actual in
    let kernel_trips = trip / u in
    let remainder_trips = trip mod u in
    let needs_remainder =
      match loop.Loop.trip_static with None -> true | Some n -> n mod u <> 0
    in
    let kernel =
      {
        loop with
        Loop.name = Printf.sprintf "%s#u%d" loop.Loop.name u;
        body;
        trip_static = Option.map (fun n -> n / u) loop.Loop.trip_static;
        trip_actual = kernel_trips;
      }
    in
    (match Loop.validate kernel with
    | Ok () -> ()
    | Error msg -> failwith ("Unroll.run: invalid kernel: " ^ msg));
    let remainder =
      if needs_remainder then
        Some
          {
            loop with
            Loop.name = Printf.sprintf "%s#rem%d" loop.Loop.name u;
            trip_static = Option.map (fun n -> n mod u) loop.Loop.trip_static;
            trip_actual = remainder_trips;
          }
      else None
    in
    let code_bytes =
      Loop.code_bytes kernel
      + (match remainder with Some r -> Loop.code_bytes r + 16 | None -> 0)
    in
    {
      kernel;
      kernel_trips;
      remainder;
      remainder_trips = (if needs_remainder then remainder_trips else 0);
      factor = u;
      code_bytes;
    }
  end
