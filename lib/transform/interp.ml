(* Exact, bounded mixing: IEEE remainder keeps magnitudes under the modulus
   without rounding error, so identical dataflow yields identical floats. *)
let modulus = 1021.0

let bound x =
  let r = Float.rem x modulus in
  if Float.is_nan r then 0.0 else r

let initial_reg_value id = bound ((float_of_int id *. 1.37) +. 5.0)
let initial_mem_value addr = bound ((float_of_int addr *. 0.61) +. 11.0)

(* The interpreter backs every equivalence property test, so its store is
   array-backed rather than hashed: a dense growable register file and a
   paged memory, both prefilled with the deterministic initial values so
   reads never branch on "written yet?".  The [written] mask exists only
   so {!memory_image} can list exactly the cells the program stored to —
   the same set the old hashtable kept. *)
let page_bits = 9
let page_size = 1 lsl page_bits

type page = {
  vals : float array; (* prefilled with initial values *)
  written : bool array;
}

type state = {
  mutable regs : float array; (* dense by register id, prefilled *)
  pages : (int, page) Hashtbl.t; (* address lsr page_bits -> page *)
  mutable last_idx : int; (* one-entry page cache: loops touch few pages *)
  mutable last_page : page;
}

let dummy_page = { vals = [||]; written = [||] }

let fresh_state () =
  {
    regs = Array.init 64 initial_reg_value;
    pages = Hashtbl.create 16;
    last_idx = -1;
    last_page = dummy_page;
  }

type outcome = { iterations_run : int; exited_early : bool }

let reg_value st (r : Op.reg) =
  let id = r.Op.id in
  if id < Array.length st.regs then Array.unsafe_get st.regs id else initial_reg_value id

let set_reg st (r : Op.reg) v =
  let id = r.Op.id in
  let n = Array.length st.regs in
  if id >= n then begin
    let n' = max (2 * n) (id + 1) in
    let a = Array.init n' (fun i -> if i < n then st.regs.(i) else initial_reg_value i) in
    st.regs <- a
  end;
  Array.unsafe_set st.regs id v

let page_of st pidx =
  if st.last_idx = pidx then st.last_page
  else begin
    let p =
      match Hashtbl.find_opt st.pages pidx with
      | Some p -> p
      | None ->
        let base = pidx lsl page_bits in
        let p =
          {
            vals = Array.init page_size (fun i -> initial_mem_value (base + i));
            written = Array.make page_size false;
          }
        in
        Hashtbl.add st.pages pidx p;
        p
    in
    st.last_idx <- pidx;
    st.last_page <- p;
    p
  end

let mem_value st addr = (page_of st (addr lsr page_bits)).vals.(addr land (page_size - 1))

let set_mem st addr v =
  let p = page_of st (addr lsr page_bits) in
  let off = addr land (page_size - 1) in
  p.vals.(off) <- v;
  p.written.(off) <- true

(* Predicate truth: an arbitrary-but-deterministic threshold on the
   defining compare's value. *)
let pred_true v = Float.abs v > modulus /. 2.0

(* Element address of a reference, shared convention with the simulator:
   affine in the (phase-adjusted) iteration, wrapped to the array extent.
   An explicit address operand overrides the index for indirect refs. *)
let address (loop : Loop.t) (m : Op.mref) ~iter ~addr_value =
  let a = loop.Loop.arrays.(m.Op.array) in
  let len = max a.Loop.length 1 in
  let idx =
    match (m.Op.mkind, addr_value) with
    | Op.Indirect, Some v -> int_of_float (Float.abs (v *. 7.0))
    | (Op.Indirect | Op.Direct), _ -> (m.Op.stride * iter) + m.Op.offset
  in
  let idx = ((idx mod len) + len) mod len in
  a.Loop.base + (a.Loop.elem_size * idx)

exception Exit_loop

let exec_op st loop ~iter (op : Op.t) =
  let guarded =
    match Op.guard_reg op with
    | None -> true
    | Some r -> pred_true (reg_value st r)
  in
  if guarded then begin
    let srcs = List.map (reg_value st) op.Op.srcs in
    let sum = List.fold_left ( +. ) 0.0 (List.map bound srcs) in
    let def v = match op.Op.dst with Some d -> set_reg st d v | None -> () in
    match op.Op.opcode with
    | Op.Ialu -> def (bound (sum +. 1.0))
    | Op.Imul ->
      let p = List.fold_left (fun acc v -> bound (acc *. bound v)) 1.0 srcs in
      def (bound (p +. 2.0))
    | Op.Fadd -> def (bound (sum +. 0.5))
    | Op.Fmul ->
      let p = List.fold_left (fun acc v -> bound (acc *. bound v)) 1.0 srcs in
      def (bound (p +. 0.25))
    | Op.Fmadd -> begin
      match srcs with
      | [ a; b; c ] -> def (bound ((bound (a *. b)) +. c +. 0.125))
      | _ -> def (bound (sum +. 0.125))
    end
    | Op.Fdiv -> begin
      match srcs with
      | [ a; b ] ->
        let d = if Float.abs b < 1.0 then 2.0 else b in
        def (bound ((a /. d) +. 3.0))
      | _ -> def (bound (sum +. 3.0))
    end
    | Op.Cmp -> def (bound ((sum *. 3.0) +. 7.0))
    | Op.Sel -> begin
      (* pred chooses between the two operands; the guard was consumed
         above only for unpredicated sels. *)
      match (op.Op.pred, srcs) with
      | Some _, a :: _ -> def a
      | None, a :: _ -> def a
      | _, [] -> def 0.0
    end
    | Op.Mov -> def (match srcs with v :: _ -> v | [] -> 0.0)
    | Op.Load m ->
      let addr_value =
        (* the value operand list for a load holds only the address *)
        match srcs with v :: _ -> Some v | [] -> None
      in
      let addr = address loop m ~iter ~addr_value in
      def (mem_value st addr)
    | Op.Store m -> begin
      match srcs with
      | value :: rest ->
        let addr_value = match rest with v :: _ -> Some v | [] -> None in
        let addr = address loop m ~iter ~addr_value in
        set_mem st addr value
      | [] -> ()
    end
    | Op.Call -> ()
    | Op.Br Op.Exit -> begin
      match srcs with
      | v :: _ -> if pred_true v then raise Exit_loop
      | [] -> ()
    end
    | Op.Br (Op.Backedge | Op.Internal) -> ()
  end

(* Predicated selects need special care: when the guard is FALSE the sel
   takes its second operand.  exec_op above skips guarded-false ops
   entirely, which is right for every opcode except Sel, so Sel is handled
   before the guard. *)
let exec_sel st (op : Op.t) =
  match (op.Op.opcode, op.Op.dst) with
  | Op.Sel, Some d -> begin
    let taken =
      match Op.guard_reg op with
      | Some r -> pred_true (reg_value st r)
      | None -> true
    in
    (match (op.Op.srcs, taken) with
    | a :: _, true -> set_reg st d (reg_value st a)
    | [ _; b ], false -> set_reg st d (reg_value st b)
    | a :: _, false -> set_reg st d (reg_value st a)
    | [], _ -> set_reg st d 0.0);
    true
  end
  | _ -> false

let run st (loop : Loop.t) ~trips ~phase =
  let body = loop.Loop.body in
  let iterations = ref 0 in
  let exited = ref false in
  (try
     for i = 0 to trips - 1 do
       let iter = phase + i in
       Array.iter
         (fun op -> if not (exec_sel st op) then exec_op st loop ~iter op)
         body;
       incr iterations
     done
   with Exit_loop ->
     incr iterations;
     exited := true);
  { iterations_run = !iterations; exited_early = !exited }

let run_unrolled st (u : Unroll.t) =
  let k = run st u.Unroll.kernel ~trips:u.Unroll.kernel_trips ~phase:0 in
  if k.exited_early then
    { k with iterations_run = k.iterations_run }
  else begin
    match u.Unroll.remainder with
    | None -> k
    | Some r ->
      let rem =
        run st r ~trips:u.Unroll.remainder_trips
          ~phase:(u.Unroll.kernel_trips * u.Unroll.factor)
      in
      {
        iterations_run = k.iterations_run + rem.iterations_run;
        exited_early = rem.exited_early;
      }
  end

let register_value st r = reg_value st r

let memory_image st =
  Hashtbl.fold
    (fun pidx p acc ->
      let base = pidx lsl page_bits in
      let cells = ref acc in
      for off = page_size - 1 downto 0 do
        if p.written.(off) then cells := (base + off, p.vals.(off)) :: !cells
      done;
      !cells)
    st.pages []
  |> List.sort compare

let equivalent s1 s2 live_out =
  memory_image s1 = memory_image s2
  && List.for_all (fun r -> register_value s1 r = register_value s2 r) live_out
