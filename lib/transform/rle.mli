(** Redundant-load elimination and dead-store elimination over a loop body.

    This is the scalar-replacement effect that unrolling enables (§3 of the
    paper): after unrolling, adjacent iterations' references to the same
    address become distinct ops in one straight-line body, so a later load
    of an address already loaded — or just stored — in the same iteration
    can be replaced by a register copy, and a store overwritten before any
    intervening read can be dropped.

    Only provably-identical direct references are touched; any potentially
    aliasing intervening store (unknown or indirect) kills the available
    value.  Predicated ops are left alone. *)

type result = {
  loop : Loop.t;
  loads_eliminated : int;
  stores_eliminated : int;
}

val testing_stale_available : bool ref
(** Test-only: when set, available-table entries survive redefinition of
    the register holding the cached value — the historical soundness bug
    the fuzzer caught, reintroduced so the translation validator's
    refutation tests can prove they would catch it.  Never set outside
    tests. *)

val run : Loop.t -> result
(** Rewrites the body.  Eliminated loads become [Mov]s from the register
    holding the value; dead stores are removed outright (uids are
    renumbered). *)
