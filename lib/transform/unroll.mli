(** Loop unrolling.

    Unrolling by factor [u] replicates the body [u] times with register
    renaming, rewrites affine memory references (replica [k] reads offset
    [o + s*k]; the unrolled per-iteration stride becomes [s*u]), merges the
    [u] copies of the loop overhead (induction update, compare, backward
    branch) into one, and emits a remainder loop when the trip count is not
    provably divisible by [u].

    Renaming gives every replica fresh destination registers so that the
    scheduler can overlap replicas, {e except} genuine loop-carried values
    (used before defined), whose final replica writes back the original
    name — a real recurrence stays a recurrence, which is why unrolling
    cannot speed up reduction-bound loops.  Early-exit branches are
    replicated per copy, so control flow dilutes the benefit exactly as the
    paper describes. *)

type t = {
  kernel : Loop.t;        (** the unrolled loop *)
  kernel_trips : int;     (** runtime iterations of the kernel *)
  remainder : Loop.t option;
  remainder_trips : int;  (** runtime iterations of the remainder loop *)
  factor : int;
  code_bytes : int;       (** total static code footprint, kernel + remainder *)
}

val max_factor : int
(** 8, as in the paper (§4.3): larger factors are rejected. *)

val run : Loop.t -> int -> t
(** [run loop u] unrolls by [u] in \[1, {!max_factor}\].  [run loop 1]
    returns the loop unchanged (no remainder).  Raises [Invalid_argument]
    for factors out of range. *)
