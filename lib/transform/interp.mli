(** Reference interpreter for loop semantics.

    Executes a loop's dataflow — register reads and writes, memory loads
    and stores, predication, early exits — over a concrete store, with a
    fixed deterministic function per opcode.  The point is not numerical
    meaning but {e observational equivalence}: a transformation is correct
    iff the transformed loop produces the same final memory image and the
    same live-out register values as the original, because it performs the
    same dataflow.  Unrolling and redundant-load elimination are
    property-tested against this interpreter.

    Opcode semantics are bounded mixing functions (exact IEEE remainder by
    a fixed modulus), so long executions neither overflow nor lose the
    ability to compare exactly.  Memory cells are initialised as a
    deterministic function of their address; indirect references take
    their cell index from the address operand's value when one exists,
    falling back to the affine formula otherwise — consistent across
    unrolling either way. *)

type state
(** Registers and memory: a dense growable register file and a paged
    memory image, both prefilled with the deterministic initial values. *)

val fresh_state : unit -> state

(** {2 Semantic constants}

    Exported so the symbolic validator ({!module:Term}, {!module:Symexec})
    can mirror the concrete semantics exactly rather than re-derive them. *)

val bound : float -> float
(** Exact IEEE remainder by the fixed modulus (NaN maps to [0.0]); every
    opcode result passes through this. *)

val initial_reg_value : int -> float
(** Deterministic initial value of register [id]. *)

val initial_mem_value : int -> float
(** Deterministic initial value of memory cell [addr]. *)

val pred_true : float -> bool
(** Predicate truth threshold on a compare-defined value. *)

val address : Loop.t -> Op.mref -> iter:int -> addr_value:float option -> int
(** Element address of a memory reference at original-iteration [iter];
    [addr_value] overrides the affine index for indirect references. *)

val set_reg : state -> Op.reg -> float -> unit
(** Overwrite a register (used by tests to install arbitrary initial
    valuations before a run). *)

val set_mem : state -> int -> float -> unit
(** Overwrite a memory cell, marking it written. *)

val mem_value : state -> int -> float
(** Current value of a memory cell (its deterministic initial value if
    never written). *)

type outcome = {
  iterations_run : int;  (** iterations completed before trips or an exit *)
  exited_early : bool;
}

val run :
  state -> Loop.t -> trips:int -> phase:int -> outcome
(** [run state loop ~trips ~phase] executes [trips] iterations (or fewer if
    an early exit fires), reading memory addresses at original-iteration
    offset [phase] (the unroller's remainder-loop convention; see
    {!Simulator}).  The state persists across calls, so a kernel and its
    remainder chain naturally. *)

val run_unrolled : state -> Unroll.t -> outcome
(** Executes an unrolled loop: kernel then remainder (remainder skipped if
    the kernel exited early). *)

val register_value : state -> Op.reg -> float
(** Current value of a register (its deterministic initial value if never
    written). *)

val memory_image : state -> (int * float) list
(** All written memory cells as (address, value), sorted by address. *)

val equivalent : state -> state -> Op.reg list -> bool
(** [equivalent s1 s2 live_out] — same memory image and same values for
    every live-out register. *)
