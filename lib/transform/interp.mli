(** Reference interpreter for loop semantics.

    Executes a loop's dataflow — register reads and writes, memory loads
    and stores, predication, early exits — over a concrete store, with a
    fixed deterministic function per opcode.  The point is not numerical
    meaning but {e observational equivalence}: a transformation is correct
    iff the transformed loop produces the same final memory image and the
    same live-out register values as the original, because it performs the
    same dataflow.  Unrolling and redundant-load elimination are
    property-tested against this interpreter.

    Opcode semantics are bounded mixing functions (exact IEEE remainder by
    a fixed modulus), so long executions neither overflow nor lose the
    ability to compare exactly.  Memory cells are initialised as a
    deterministic function of their address; indirect references take
    their cell index from the address operand's value when one exists,
    falling back to the affine formula otherwise — consistent across
    unrolling either way. *)

type state
(** Registers and memory: a dense growable register file and a paged
    memory image, both prefilled with the deterministic initial values. *)

val fresh_state : unit -> state

type outcome = {
  iterations_run : int;  (** iterations completed before trips or an exit *)
  exited_early : bool;
}

val run :
  state -> Loop.t -> trips:int -> phase:int -> outcome
(** [run state loop ~trips ~phase] executes [trips] iterations (or fewer if
    an early exit fires), reading memory addresses at original-iteration
    offset [phase] (the unroller's remainder-loop convention; see
    {!Simulator}).  The state persists across calls, so a kernel and its
    remainder chain naturally. *)

val run_unrolled : state -> Unroll.t -> outcome
(** Executes an unrolled loop: kernel then remainder (remainder skipped if
    the kernel exited early). *)

val register_value : state -> Op.reg -> float
(** Current value of a register (its deterministic initial value if never
    written). *)

val memory_image : state -> (int * float) list
(** All written memory cells as (address, value), sorted by address. *)

val equivalent : state -> state -> Op.reg list -> bool
(** [equivalent s1 s2 live_out] — same memory image and same values for
    every live-out register. *)
