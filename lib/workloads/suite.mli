(** The 72-benchmark workload suite.

    Stands in for the paper's benchmark collection (§4.6): SPEC 2000 minus
    252.eon and 191.fma3d (24 programs), SPEC '95 and '92, Mediabench,
    Perfect and a handful of kernels — 72 in all, each owning a set of
    unrollable innermost loops with runtime weights.  SPEC 2000 benchmarks
    carry their real names so the per-benchmark speedup figures read like
    the paper's; their loops mix hand-written kernels with synthetic loops
    drawn from a per-suite profile.

    Everything is deterministic in [seed]; [scale] multiplies loop counts
    (1.0 ≈ 3,400 raw loops across the suite, of which the labelling filters
    keep roughly the paper's 2,500). *)

type tag = Spec2000fp | Spec2000int | Spec95 | Spec92 | Mediabench | Perfect | KernelSuite

type benchmark = {
  bname : string;
  tag : tag;
  fp : bool;                     (** counted in the SPECfp aggregate *)
  loop_fraction : float;         (** fraction of runtime spent in these loops *)
  loops : (Loop.t * float) array; (** loop, relative runtime weight (sums to 1) *)
}

val tag_name : tag -> string

val spec2000 : scale:float -> seed:int -> benchmark list
(** The 24 SPEC 2000 benchmarks of Figures 4 and 5, in the paper's order. *)

val full : scale:float -> seed:int -> benchmark list
(** All 72 benchmarks (SPEC 2000 first).  Loop names are globally unique. *)

val all_loops : benchmark list -> (string * Loop.t) list
(** Flattened [(benchmark name, loop)] list across a suite. *)
