type maker = name:string -> trip:int -> Loop.t

let flt = Op.Flt
let int = Op.Int

(* Most kernels walk arrays sized to the trip count so that streaming
   behaviour (and capacity misses) reflect the trip. *)
let arr b ?(elem = 8) ~trip name = Builder.add_array b ~elem_size:elem ~length:(trip + 16) name

let daxpy ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:1 ~offset:0 () in
  let r = Builder.fmadd b [ a; xv; yv ] in
  Builder.store b ~array:y ~stride:1 ~offset:0 r;
  Builder.finish b

let ddot ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" in
  let acc = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:1 ~offset:0 () in
  let p = Builder.fmul b [ xv; yv ] in
  Builder.accumulate b ~acc ~op:`Fadd [ p ];
  Builder.mark_live_out b acc;
  Builder.finish b

let dscal ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let r = Builder.fmul b [ a; xv ] in
  Builder.store b ~array:x ~stride:1 ~offset:0 r;
  Builder.finish b

let dcopy ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~trip "src" and y = arr b ~trip "dst" in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.store b ~array:y ~stride:1 ~offset:0 v;
  Builder.finish b

let daxpy_unknown_trip ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~trip_static:None ~name ~trip () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:1 ~offset:0 () in
  let r = Builder.fmadd b [ a; xv; yv ] in
  Builder.store b ~array:y ~stride:1 ~offset:0 r;
  Builder.finish b

let stencil3 ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:4 () in
  let a = arr b ~trip "a" and out = arr b ~trip "b" in
  let third = Builder.freg b in
  let l = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:0 () in
  let c = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:1 () in
  let r = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:2 () in
  let s1 = Builder.fadd b [ l; c ] in
  let s2 = Builder.fadd b [ s1; r ] in
  let v = Builder.fmul b [ s2; third ] in
  Builder.store b ~array:out ~stride:1 ~offset:1 v;
  Builder.finish b

let stencil5 ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran90 ~name ~trip ~nest_level:2 ~outer_trip:4 () in
  let a = arr b ~trip "a" and out = arr b ~trip "b" in
  let w = Builder.freg b in
  let v0 = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:0 () in
  let v1 = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:1 () in
  let v2 = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:2 () in
  let v3 = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:3 () in
  let v4 = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:4 () in
  let s1 = Builder.fadd b [ v0; v1 ] in
  let s2 = Builder.fadd b [ v2; v3 ] in
  let s3 = Builder.fadd b [ s1; s2 ] in
  let s4 = Builder.fadd b [ s3; v4 ] in
  let r = Builder.fmul b [ s4; w ] in
  Builder.store b ~array:out ~stride:1 ~offset:2 r;
  Builder.finish b

let fir8 ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip ~nest_level:1 () in
  let x = arr b ~trip "x" and out = arr b ~trip "y" in
  let coeffs = Array.init 8 (fun _ -> Builder.freg b) in
  let acc = ref None in
  Array.iteri
    (fun tap c ->
      let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:tap () in
      let term = Builder.fmul b [ c; v ] in
      acc :=
        Some
          (match !acc with
          | None -> term
          | Some a -> Builder.fadd b [ a; term ]))
    coeffs;
  Builder.store b ~array:out ~stride:1 ~offset:0 (Option.get !acc);
  Builder.finish b

let saxpy_strided ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = Builder.add_array b ~elem_size:8 ~length:((trip * 4) + 16) "x" in
  let y = Builder.add_array b ~elem_size:8 ~length:((trip * 4) + 16) "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:4 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:4 ~offset:0 () in
  let r = Builder.fmadd b [ a; xv; yv ] in
  Builder.store b ~array:y ~stride:4 ~offset:0 r;
  Builder.finish b

let gather ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let idx = arr b ~elem:4 ~trip "idx" in
  let tbl = Builder.add_array b ~elem_size:8 ~length:8192 "table" in
  let out = arr b ~trip "y" in
  let i = Builder.load b ~cls:int ~array:idx ~stride:1 ~offset:0 () in
  let v = Builder.load b ~cls:flt ~mkind:Op.Indirect ~addr:i ~array:tbl ~stride:0 ~offset:0 () in
  Builder.store b ~array:out ~stride:1 ~offset:0 v;
  Builder.finish b

let scatter ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let idx = arr b ~elem:4 ~trip "idx" in
  let x = arr b ~trip "x" in
  let tbl = Builder.add_array b ~elem_size:8 ~length:8192 "table" in
  let i = Builder.load b ~cls:int ~array:idx ~stride:1 ~offset:0 () in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.store b ~mkind:Op.Indirect ~addr:i ~array:tbl ~stride:0 ~offset:0 v;
  Builder.finish b

let pointer_chase ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let nodes = Builder.add_array b ~elem_size:8 ~length:4096 "nodes" in
  (* p = *p: an indirect load feeding itself is modelled as an indirect
     load whose result is accumulated — a serial int recurrence. *)
  let p = Builder.ireg b in
  let v = Builder.load b ~cls:int ~mkind:Op.Indirect ~addr:p ~array:nodes ~stride:0 ~offset:0 () in
  Builder.accumulate b ~acc:p ~op:`Ialu [ v ];
  Builder.mark_live_out b p;
  Builder.finish b

let int_sum ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~elem:4 ~trip "x" in
  let acc = Builder.ireg b in
  let v = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:0 () in
  Builder.accumulate b ~acc ~op:`Ialu [ v ];
  Builder.mark_live_out b acc;
  Builder.finish b

let int_histogram ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let key = arr b ~elem:4 ~trip "key" in
  let counts = Builder.add_array b ~elem_size:4 ~length:1024 "counts" in
  let k = Builder.load b ~cls:int ~array:key ~stride:1 ~offset:0 () in
  let c = Builder.load b ~cls:int ~mkind:Op.Indirect ~addr:k ~array:counts ~stride:0 ~offset:0 () in
  let c' = Builder.ialu b [ c ] in
  Builder.store b ~mkind:Op.Indirect ~addr:k ~array:counts ~stride:0 ~offset:0 c';
  Builder.finish b

let memset_like ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let dst = arr b ~elem:4 ~trip "dst" in
  let v = Builder.ireg b in
  Builder.store b ~array:dst ~stride:1 ~offset:0 v;
  Builder.finish b

let memcpy_like ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let src = arr b ~elem:4 ~trip "src" and dst = arr b ~elem:4 ~trip "dst" in
  let v = Builder.load b ~cls:int ~array:src ~stride:1 ~offset:0 () in
  Builder.store b ~array:dst ~stride:1 ~offset:0 v;
  Builder.finish b

let fp_divide ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" and q = arr b ~trip "q" in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:1 ~offset:0 () in
  let r = Builder.fdiv b [ xv; yv ] in
  Builder.store b ~array:q ~stride:1 ~offset:0 r;
  Builder.finish b

let sqrt_newton ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" and out = arr b ~trip "r" in
  let half = Builder.freg b in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  (* Two Newton steps: g = g*(1.5 - 0.5*x*g*g), seeded from x. *)
  let g0 = Builder.fmul b [ v; half ] in
  let t1 = Builder.fmul b [ g0; g0 ] in
  let t2 = Builder.fmul b [ t1; v ] in
  let t3 = Builder.fmadd b [ t2; half; half ] in
  let g1 = Builder.fmul b [ g0; t3 ] in
  let s1 = Builder.fmul b [ g1; g1 ] in
  let s2 = Builder.fmul b [ s1; v ] in
  let s3 = Builder.fmadd b [ s2; half; half ] in
  let g2 = Builder.fmul b [ g1; s3 ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 g2;
  Builder.finish b

let complex_mul ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let a = Builder.add_array b ~elem_size:8 ~length:((trip * 2) + 16) "a" in
  let c = Builder.add_array b ~elem_size:8 ~length:((trip * 2) + 16) "c" in
  let out = Builder.add_array b ~elem_size:8 ~length:((trip * 2) + 16) "o" in
  let ar = Builder.load b ~cls:flt ~array:a ~stride:2 ~offset:0 () in
  let ai = Builder.load b ~cls:flt ~array:a ~stride:2 ~offset:1 () in
  let cr = Builder.load b ~cls:flt ~array:c ~stride:2 ~offset:0 () in
  let ci = Builder.load b ~cls:flt ~array:c ~stride:2 ~offset:1 () in
  let rr1 = Builder.fmul b [ ar; cr ] in
  let rr2 = Builder.fmul b [ ai; ci ] in
  let re = Builder.fadd b [ rr1; rr2 ] in
  let ii1 = Builder.fmul b [ ar; ci ] in
  let ii2 = Builder.fmul b [ ai; cr ] in
  let im = Builder.fadd b [ ii1; ii2 ] in
  Builder.store b ~array:out ~stride:2 ~offset:0 re;
  Builder.store b ~array:out ~stride:2 ~offset:1 im;
  Builder.finish b

let dot_stride0 ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~trip "x" in
  let accm = Builder.add_array b ~elem_size:8 ~length:64 "acc" in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let cur = Builder.load b ~cls:flt ~array:accm ~stride:0 ~offset:0 () in
  let s = Builder.fadd b [ cur; v ] in
  Builder.store b ~array:accm ~stride:0 ~offset:0 s;
  Builder.finish b

let early_exit_search ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip ~exit_prob:0.002 () in
  let x = arr b ~elem:4 ~trip "x" in
  let needle = Builder.ireg b in
  let v = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:0 () in
  let p = Builder.cmp b [ v; needle ] in
  Builder.early_exit b ~pred:p;
  Builder.finish b

let predicated_max ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~trip "x" in
  let best = Builder.freg b in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let p = Builder.cmp b [ v; best ] in
  (* Track the max via a predicated select feeding the carried register. *)
  let chosen = Builder.sel b ~pred:p v best in
  Builder.accumulate b ~acc:best ~op:`Fadd [ chosen ];
  Builder.mark_live_out b best;
  Builder.finish b

let call_in_loop ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.call b;
  let r = Builder.fmul b [ v; v ] in
  Builder.store b ~array:y ~stride:1 ~offset:0 r;
  Builder.finish b

let matvec_row ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:8 () in
  let a = Builder.add_array b ~elem_size:8 ~length:(trip + 16) "arow" in
  let x = arr b ~trip "x" in
  let acc = Builder.freg b in
  let av = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:0 () in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.accumulate b ~acc ~op:`Fmadd [ av; xv ] ;
  Builder.mark_live_out b acc;
  Builder.finish b

let prefix_sum ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let s = arr b ~trip "s" and x = arr b ~trip "x" in
  let prev = Builder.load b ~cls:flt ~array:s ~stride:1 ~offset:0 () in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:1 () in
  let next = Builder.fadd b [ prev; v ] in
  Builder.store b ~array:s ~stride:1 ~offset:1 next;
  Builder.finish b

let wide_independent ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran90 ~name ~trip () in
  let xs = Array.init 4 (fun i -> arr b ~trip (Printf.sprintf "x%d" i)) in
  let os = Array.init 4 (fun i -> arr b ~trip (Printf.sprintf "o%d" i)) in
  let c = Builder.freg b in
  Array.iteri
    (fun i x ->
      let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
      let r1 = Builder.fmul b [ v; c ] in
      let r2 = Builder.fadd b [ r1; v ] in
      Builder.store b ~array:os.(i) ~stride:1 ~offset:0 r2)
    xs;
  Builder.finish b

let mixed_int_fp ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~trip "x" and k = arr b ~elem:4 ~trip "k" and out = arr b ~trip "o" in
  let scale = Builder.freg b in
  let kv = Builder.load b ~cls:int ~array:k ~stride:1 ~offset:0 () in
  let k2 = Builder.imul b [ kv; kv ] in
  let k3 = Builder.ialu b [ k2 ] in
  let _ = k3 in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let r = Builder.fmadd b [ xv; scale; xv ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 r;
  Builder.finish b

let long_latency_chain ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" and out = arr b ~trip "o" in
  let v = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let rec chain v n = if n = 0 then v else chain (Builder.fmul b [ v; v ]) (n - 1) in
  let r = chain v 5 in
  Builder.store b ~array:out ~stride:1 ~offset:0 r;
  Builder.finish b

let small_trip ~name ~trip:_ =
  let trip = 6 in
  let b = Builder.create ~lang:Loop.C ~name ~trip ~outer_trip:512 () in
  let x = Builder.add_array b ~elem_size:8 ~length:64 "x" in
  let y = Builder.add_array b ~elem_size:8 ~length:64 "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let r = Builder.fmul b [ a; xv ] in
  Builder.store b ~array:y ~stride:1 ~offset:0 r;
  Builder.finish b

let all =
  [
    ("daxpy", daxpy);
    ("ddot", ddot);
    ("dscal", dscal);
    ("dcopy", dcopy);
    ("daxpy_unknown_trip", daxpy_unknown_trip);
    ("stencil3", stencil3);
    ("stencil5", stencil5);
    ("fir8", fir8);
    ("saxpy_strided", saxpy_strided);
    ("gather", gather);
    ("scatter", scatter);
    ("pointer_chase", pointer_chase);
    ("int_sum", int_sum);
    ("int_histogram", int_histogram);
    ("memset_like", memset_like);
    ("memcpy_like", memcpy_like);
    ("fp_divide", fp_divide);
    ("sqrt_newton", sqrt_newton);
    ("complex_mul", complex_mul);
    ("dot_stride0", dot_stride0);
    ("early_exit_search", early_exit_search);
    ("predicated_max", predicated_max);
    ("call_in_loop", call_in_loop);
    ("matvec_row", matvec_row);
    ("prefix_sum", prefix_sum);
    ("wide_independent", wide_independent);
    ("mixed_int_fp", mixed_int_fp);
    ("long_latency_chain", long_latency_chain);
    ("small_trip", small_trip);
  ]
  @ Kernels2.all
