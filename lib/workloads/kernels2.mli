(** Second bank of hand-written kernel loops.

    Thirty further loop families — linear-algebra inner loops
    (gaxpy, back-substitution, Jacobi/Gauss–Seidel rows, tridiagonal
    solve, Horner, Givens rotation, 3x3 convolution, sparse mat-vec, FFT
    butterfly), image/DSP rows (RGB↔YUV, alpha blend, SAD, max-pool,
    clipping, downsampling) and integer/table code (CRC, hashing, string
    compare with exits, run-length with predicated stores, bit counting,
    table interpolation, compare-and-swap, reverse copy, checksums,
    Viterbi updates).  All are re-exported through {!Kernels.all}. *)

type maker = name:string -> trip:int -> Loop.t

val all : (string * maker) list
