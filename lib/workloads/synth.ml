type profile = {
  pname : string;
  fp_ratio : float;
  loads_per_comp : float;
  comps_min : int;
  comps_max : int;
  chain_min : int;
  chain_max : int;
  reduction_prob : float;
  stencil_prob : float;
  indirect_prob : float;
  store_prob : float;
  div_prob : float;
  pred_prob : float;
  early_exit_prob : float;
  call_prob : float;
  unknown_trip_prob : float;
  trip_log_min : float;
  trip_log_max : float;
  outer_max : int;
  nest_max : int;
  big_array_prob : float;
  strides : (float * int) array;
  langs : (float * Loop.lang) array;
}

let fp_numeric =
  {
    pname = "fp_numeric";
    fp_ratio = 0.9;
    loads_per_comp = 2.1;
    comps_min = 2;
    comps_max = 6;
    chain_min = 2;
    chain_max = 6;
    reduction_prob = 0.25;
    stencil_prob = 0.35;
    indirect_prob = 0.03;
    store_prob = 0.75;
    div_prob = 0.06;
    pred_prob = 0.05;
    early_exit_prob = 0.02;
    call_prob = 0.01;
    unknown_trip_prob = 0.45;
    trip_log_min = log 6.0;
    trip_log_max = log 600.0;
    outer_max = 8192;
    nest_max = 4;
    big_array_prob = 0.2;
    strides = [| (0.75, 1); (0.12, 2); (0.08, 4); (0.05, 8) |];
    langs = [| (0.7, Loop.Fortran); (0.2, Loop.Fortran90); (0.1, Loop.C) |];
  }

let int_pointer =
  {
    pname = "int_pointer";
    fp_ratio = 0.1;
    loads_per_comp = 1.5;
    comps_min = 1;
    comps_max = 4;
    chain_min = 1;
    chain_max = 5;
    reduction_prob = 0.3;
    stencil_prob = 0.1;
    indirect_prob = 0.25;
    store_prob = 0.55;
    div_prob = 0.01;
    pred_prob = 0.15;
    early_exit_prob = 0.2;
    call_prob = 0.08;
    unknown_trip_prob = 0.7;
    trip_log_min = log 4.0;
    trip_log_max = log 200.0;
    outer_max = 16384;
    nest_max = 3;
    big_array_prob = 0.15;
    strides = [| (0.8, 1); (0.1, 2); (0.1, 4) |];
    langs = [| (1.0, Loop.C) |];
  }

let media =
  {
    pname = "media";
    fp_ratio = 0.45;
    loads_per_comp = 1.8;
    comps_min = 2;
    comps_max = 8;
    chain_min = 1;
    chain_max = 5;
    reduction_prob = 0.2;
    stencil_prob = 0.45;
    indirect_prob = 0.08;
    store_prob = 0.7;
    div_prob = 0.02;
    pred_prob = 0.2;
    early_exit_prob = 0.05;
    call_prob = 0.02;
    unknown_trip_prob = 0.15;
    trip_log_min = log 8.0;
    trip_log_max = log 128.0;
    outer_max = 16384;
    nest_max = 3;
    big_array_prob = 0.05;
    strides = [| (0.6, 1); (0.25, 2); (0.1, 3); (0.05, 4) |];
    langs = [| (1.0, Loop.C) |];
  }

let scientific_c =
  {
    fp_numeric with
    pname = "scientific_c";
    indirect_prob = 0.08;
    unknown_trip_prob = 0.45;
    early_exit_prob = 0.06;
    call_prob = 0.03;
    langs = [| (1.0, Loop.C) |];
  }

let log_uniform rng lo hi =
  let x = lo +. Rng.float rng (hi -. lo) in
  max 1 (int_of_float (Float.round (exp x)))

(* Real trip counts are rarely arbitrary: problem sizes, unroll-friendly
   block factors and screen/table dimensions make most of them round.
   Snapping a majority of trips to multiples of 4/8/10 or powers of two is
   what gives even unroll factors their remainder-free advantage (the paper
   observes non-power-of-two factors are rarely optimal). *)
let snap_trip rng trip =
  if Rng.float rng 1.0 < 0.2 then trip
  else
    match Rng.int rng 5 with
    | 0 | 1 -> max 8 (trip / 8 * 8)
    | 2 -> max 4 (trip / 4 * 4)
    | 3 -> max 16 (trip / 16 * 16)
    | _ ->
      let rec pow2 p = if p * 2 > trip then p else pow2 (p * 2) in
      max 8 (pow2 1)

let generate rng profile ~name =
  (* Compile-time-unknown trips are typically input-sized dimensions, i.e.
     long; short loops tend to have literal bounds. *)
  let unknown_trip = Rng.float rng 1.0 < profile.unknown_trip_prob in
  let trip =
    let lo =
      if unknown_trip then (profile.trip_log_min +. profile.trip_log_max) /. 2.0
      else profile.trip_log_min
    in
    let hi =
      if unknown_trip then profile.trip_log_max +. 0.7 else profile.trip_log_max
    in
    snap_trip rng (log_uniform rng lo hi)
  in
  let nest_level = 1 + Rng.int rng profile.nest_max in
  (* Outer trip count derives from a total work budget: a small inner loop
     inside a hot nest is re-entered many times, which is exactly when
     per-entry costs (remainder iterations, code refetch) matter. *)
  let outer_trip =
    (* Re-entry count grows with nesting depth (a visible feature), times a
       program-hotness multiplier.  Hotness scales every entry equally, so
       it moves a loop's total runtime (and the >= 50k-cycle filter)
       without moving its optimal unroll factor. *)
    let base = 4.0 ** float_of_int (nest_level - 1) in
    let hotness = float_of_int (log_uniform rng (log 8.0) (log 512.0)) in
    let jitter = exp (0.5 *. Rng.gaussian rng) in
    max 1 (min profile.outer_max (int_of_float (Float.round (base *. hotness *. jitter))))
  in
  let lang = Rng.weighted_choice rng profile.langs in
  let has_exit = Rng.float rng 1.0 < profile.early_exit_prob in
  let exit_prob = if has_exit then 0.0005 +. Rng.float rng 0.004 else 0.0 in
  let trip_static = if unknown_trip then None else Some trip in
  (* For C loops, points-to analysis sometimes proves arrays distinct
     (restrict, locals); Fortran array semantics always do. *)
  let aliased =
    match lang with
    | Loop.Fortran | Loop.Fortran90 -> false
    | Loop.C -> Rng.float rng 1.0 >= 0.35
  in
  let b =
    Builder.create ~nest_level ~lang ~trip_static ~aliased ~outer_trip ~exit_prob ~name
      ~trip ()
  in
  let max_stride = Array.fold_left (fun acc (_, s) -> max acc s) 1 profile.strides in
  let array_length big =
    if big then 40_000 + Rng.int rng 80_000 else (trip * max_stride) + 16
  in
  let n_in = 1 + Rng.int rng 3 in
  let n_out = 1 + Rng.int rng 2 in
  let mk_arr tag i =
    let big = Rng.float rng 1.0 < profile.big_array_prob in
    let elem = if Rng.float rng 1.0 < 0.7 then 8 else 4 in
    Builder.add_array b ~elem_size:elem ~length:(array_length big) (Printf.sprintf "%s%d" tag i)
  in
  let ins = Array.init n_in (mk_arr "in") in
  let outs = Array.init n_out (mk_arr "out") in
  let invariants =
    Array.init (1 + Rng.int rng 2) (fun _ ->
        if Rng.float rng 1.0 < profile.fp_ratio then Builder.freg b else Builder.ireg b)
  in
  let pick_invariant cls =
    let matching = Array.to_list invariants |> List.filter (fun (r : Op.reg) -> r.Op.cls = cls) in
    match matching with [] -> None | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let comps = profile.comps_min + Rng.int rng (profile.comps_max - profile.comps_min + 1) in
  (* Shared predicate for predicated computations, defined once per body. *)
  let shared_pred = ref None in
  let get_pred v =
    match !shared_pred with
    | Some p -> p
    | None ->
      let p = Builder.cmp b [ v ] in
      shared_pred := Some p;
      p
  in
  for c = 0 to comps - 1 do
    let is_fp = Rng.float rng 1.0 < profile.fp_ratio in
    let cls = if is_fp then Op.Flt else Op.Int in
    let n_loads =
      let base = int_of_float profile.loads_per_comp in
      let frac = profile.loads_per_comp -. float_of_int base in
      max 1 (base + if Rng.float rng 1.0 < frac then 1 else 0)
    in
    let stencil = Rng.float rng 1.0 < profile.stencil_prob in
    let arrays_used = ref [] in
    let loads =
      List.init n_loads (fun l ->
          let array = ins.(Rng.int rng n_in) in
          let indirect = Rng.float rng 1.0 < profile.indirect_prob in
          if indirect then
            Builder.load b ~mkind:Op.Indirect ~cls ~array ~stride:0 ~offset:0 ()
          else begin
            let stride = Rng.weighted_choice rng profile.strides in
            let offset = if stencil then l else Rng.int rng 2 in
            arrays_used := array :: !arrays_used;
            Builder.load b ~cls ~array ~stride ~offset ()
          end)
    in
    let predicated = Rng.float rng 1.0 < profile.pred_prob in
    let pred = if predicated then Some (get_pred (List.hd loads)) else None in
    let chain_len =
      profile.chain_min + Rng.int rng (profile.chain_max - profile.chain_min + 1)
    in
    let combine acc v =
      if is_fp then
        if Rng.float rng 1.0 < profile.div_prob then Builder.fdiv b ?pred [ acc; v ]
        else if Rng.bool rng then Builder.fmul b ?pred [ acc; v ]
        else Builder.fadd b ?pred [ acc; v ]
      else if Rng.bool rng then Builder.imul b ?pred [ acc; v ]
      else Builder.ialu b ?pred [ acc; v ]
    in
    let seed = List.hd loads in
    let after_loads = List.fold_left combine seed (List.tl loads) in
    let value = ref after_loads in
    for _ = 1 to chain_len do
      let operand =
        match pick_invariant cls with
        | Some inv when Rng.bool rng -> inv
        | _ -> !value
      in
      value := combine !value operand
    done;
    let reduce = Rng.float rng 1.0 < profile.reduction_prob in
    if reduce then begin
      let acc = if is_fp then Builder.freg b else Builder.ireg b in
      Builder.accumulate b ~acc ~op:(if is_fp then `Fadd else `Ialu) [ !value ];
      Builder.mark_live_out b acc
    end;
    if (not reduce) || Rng.float rng 1.0 < profile.store_prob then
      if Rng.float rng 1.0 < profile.store_prob then begin
        let array = outs.(Rng.int rng n_out) in
        let indirect = Rng.float rng 1.0 < profile.indirect_prob in
        if indirect then
          Builder.store b ~mkind:Op.Indirect ~array ~stride:0 ~offset:0 !value
        else
          let stride = Rng.weighted_choice rng profile.strides in
          Builder.store b ~array ~stride ~offset:(Rng.int rng 2) !value
      end;
    ignore c
  done;
  if Rng.float rng 1.0 < profile.call_prob then Builder.call b;
  if has_exit then begin
    (* Exit condition computed from a fresh load so it has a real input. *)
    let v = Builder.load b ~cls:Op.Int ~array:ins.(0) ~stride:1 ~offset:0 () in
    let p = Builder.cmp b [ v ] in
    Builder.early_exit b ~pred:p
  end;
  Builder.finish b
