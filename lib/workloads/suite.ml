type tag = Spec2000fp | Spec2000int | Spec95 | Spec92 | Mediabench | Perfect | KernelSuite

type benchmark = {
  bname : string;
  tag : tag;
  fp : bool;
  loop_fraction : float;
  loops : (Loop.t * float) array;
}

let tag_name = function
  | Spec2000fp -> "SPEC2000fp"
  | Spec2000int -> "SPEC2000int"
  | Spec95 -> "SPEC95"
  | Spec92 -> "SPEC92"
  | Mediabench -> "Mediabench"
  | Perfect -> "Perfect"
  | KernelSuite -> "Kernels"

(* Benchmark roster: name, tag, profile, base loop count, kernel-loop count,
   loop runtime fraction.  SPEC 2000 first, in the paper's figure order. *)
let roster : (string * tag * Synth.profile * int * int * float) list =
  [
    (* --- SPEC 2000 (24 = paper's Figures 4/5) --- *)
    ("164.gzip", Spec2000int, Synth.int_pointer, 14, 2, 0.30);
    ("168.wupwise", Spec2000fp, Synth.fp_numeric, 40, 4, 0.75);
    ("171.swim", Spec2000fp, Synth.fp_numeric, 44, 5, 0.88);
    ("172.mgrid", Spec2000fp, Synth.fp_numeric, 38, 5, 0.90);
    ("173.applu", Spec2000fp, Synth.fp_numeric, 52, 4, 0.80);
    ("175.vpr", Spec2000int, Synth.int_pointer, 16, 1, 0.22);
    ("176.gcc", Spec2000int, Synth.int_pointer, 26, 0, 0.10);
    ("177.mesa", Spec2000fp, Synth.scientific_c, 34, 3, 0.45);
    ("178.galgel", Spec2000fp, Synth.fp_numeric, 48, 4, 0.82);
    ("179.art", Spec2000fp, Synth.scientific_c, 18, 3, 0.70);
    ("181.mcf", Spec2000int, Synth.int_pointer, 10, 1, 0.15);
    ("183.equake", Spec2000fp, Synth.scientific_c, 22, 3, 0.65);
    ("186.crafty", Spec2000int, Synth.int_pointer, 14, 0, 0.12);
    ("187.facerec", Spec2000fp, Synth.fp_numeric, 30, 3, 0.72);
    ("188.ammp", Spec2000fp, Synth.scientific_c, 26, 2, 0.55);
    ("189.lucas", Spec2000fp, Synth.fp_numeric, 32, 3, 0.80);
    ("197.parser", Spec2000int, Synth.int_pointer, 14, 0, 0.14);
    ("200.sixtrack", Spec2000fp, Synth.fp_numeric, 46, 3, 0.60);
    ("253.perlbmk", Spec2000int, Synth.int_pointer, 16, 0, 0.08);
    ("254.gap", Spec2000int, Synth.int_pointer, 16, 1, 0.16);
    ("255.vortex", Spec2000int, Synth.int_pointer, 14, 0, 0.08);
    ("256.bzip2", Spec2000int, Synth.int_pointer, 14, 2, 0.35);
    ("300.twolf", Spec2000int, Synth.int_pointer, 16, 1, 0.20);
    ("301.apsi", Spec2000fp, Synth.fp_numeric, 42, 3, 0.70);
    (* --- SPEC '95 --- *)
    ("101.tomcatv", Spec95, Synth.fp_numeric, 22, 3, 0.90);
    ("102.swim95", Spec95, Synth.fp_numeric, 24, 3, 0.88);
    ("103.su2cor", Spec95, Synth.fp_numeric, 28, 2, 0.75);
    ("104.hydro2d", Spec95, Synth.fp_numeric, 30, 2, 0.80);
    ("107.mgrid95", Spec95, Synth.fp_numeric, 22, 3, 0.90);
    ("110.applu95", Spec95, Synth.fp_numeric, 30, 2, 0.78);
    ("125.turb3d", Spec95, Synth.fp_numeric, 26, 2, 0.70);
    ("141.apsi95", Spec95, Synth.fp_numeric, 26, 2, 0.68);
    ("145.fpppp", Spec95, Synth.fp_numeric, 20, 0, 0.55);
    ("146.wave5", Spec95, Synth.fp_numeric, 28, 2, 0.72);
    ("099.go", Spec95, Synth.int_pointer, 12, 0, 0.10);
    ("129.compress", Spec95, Synth.int_pointer, 8, 1, 0.30);
    ("130.li", Spec95, Synth.int_pointer, 10, 0, 0.10);
    ("132.ijpeg", Spec95, Synth.media, 20, 1, 0.45);
    (* --- SPEC '92 --- *)
    ("013.spice2g6", Spec92, Synth.fp_numeric, 20, 1, 0.55);
    ("015.doduc", Spec92, Synth.fp_numeric, 18, 1, 0.60);
    ("034.mdljdp2", Spec92, Synth.fp_numeric, 18, 1, 0.70);
    ("047.tomcatv92", Spec92, Synth.fp_numeric, 14, 2, 0.88);
    ("048.ora", Spec92, Synth.fp_numeric, 10, 1, 0.75);
    ("052.alvinn", Spec92, Synth.scientific_c, 12, 2, 0.80);
    ("056.ear", Spec92, Synth.scientific_c, 14, 1, 0.70);
    ("077.mdljsp2", Spec92, Synth.fp_numeric, 16, 1, 0.70);
    ("078.swm256", Spec92, Synth.fp_numeric, 16, 2, 0.90);
    ("093.nasa7", Spec92, Synth.fp_numeric, 20, 3, 0.85);
    (* --- Mediabench --- *)
    ("adpcm", Mediabench, Synth.media, 6, 1, 0.60);
    ("epic", Mediabench, Synth.media, 14, 2, 0.65);
    ("g721", Mediabench, Synth.media, 10, 0, 0.45);
    ("gsm", Mediabench, Synth.media, 14, 1, 0.55);
    ("jpeg", Mediabench, Synth.media, 18, 2, 0.50);
    ("mpeg2", Mediabench, Synth.media, 20, 2, 0.60);
    ("pegwit", Mediabench, Synth.int_pointer, 10, 0, 0.35);
    ("ghostscript", Mediabench, Synth.int_pointer, 14, 0, 0.20);
    ("mesa_mb", Mediabench, Synth.scientific_c, 16, 1, 0.45);
    ("rasta", Mediabench, Synth.media, 12, 1, 0.50);
    (* --- Perfect Club --- *)
    ("ADM", Perfect, Synth.fp_numeric, 18, 1, 0.75);
    ("QCD", Perfect, Synth.fp_numeric, 16, 1, 0.65);
    ("MDG", Perfect, Synth.fp_numeric, 14, 1, 0.72);
    ("TRACK", Perfect, Synth.fp_numeric, 12, 1, 0.60);
    ("BDNA", Perfect, Synth.fp_numeric, 16, 1, 0.70);
    ("OCEAN", Perfect, Synth.fp_numeric, 18, 2, 0.80);
    ("DYFESM", Perfect, Synth.fp_numeric, 14, 1, 0.68);
    ("ARC2D", Perfect, Synth.fp_numeric, 18, 2, 0.85);
    ("FLO52", Perfect, Synth.fp_numeric, 14, 1, 0.78);
    ("TRFD", Perfect, Synth.fp_numeric, 10, 1, 0.70);
    ("SPEC77", Perfect, Synth.fp_numeric, 16, 1, 0.72);
    (* --- Kernels --- *)
    ("livermore", KernelSuite, Synth.fp_numeric, 10, 8, 0.95);
    ("linpack", KernelSuite, Synth.fp_numeric, 6, 6, 0.92);
    ("dspstone", KernelSuite, Synth.media, 8, 5, 0.90);
  ]

let is_fp_tagged = function
  | Spec2000fp | Spec95 | Spec92 | Perfect | KernelSuite -> true
  | Spec2000int | Mediabench -> false

(* Kernels instantiated inside a benchmark, excluding families that a given
   profile would not plausibly contain. *)
let kernel_pool (profile : Synth.profile) =
  let fp_families =
    [ "daxpy"; "ddot"; "dscal"; "stencil3"; "stencil5"; "fir8"; "saxpy_strided";
      "sqrt_newton"; "complex_mul"; "matvec_row"; "fp_divide"; "long_latency_chain";
      "wide_independent"; "dcopy"; "daxpy_unknown_trip"; "prefix_sum";
      "gaxpy2"; "back_subst_inner"; "jacobi2d_row"; "tridiag_solve"; "horner";
      "norm2"; "givens_rotate"; "conv3x3_row"; "fft_butterfly"; "gauss_seidel_row";
      "quantize"; "csr_spmv_inner" ]
  in
  let int_families =
    [ "int_sum"; "int_histogram"; "memset_like"; "memcpy_like"; "gather"; "scatter";
      "pointer_chase"; "early_exit_search"; "predicated_max"; "mixed_int_fp";
      "call_in_loop"; "small_trip";
      "crc_byte"; "hash_mix"; "strcmp_like"; "run_length"; "bitcount";
      "table_interp"; "bubble_inner"; "memmove_reverse"; "checksum_2way";
      "viterbi_inner" ]
  in
  let media_families =
    [ "fir8"; "complex_mul"; "stencil3"; "memcpy_like"; "mixed_int_fp"; "int_sum";
      "predicated_max"; "gather"; "saxpy_strided"; "small_trip";
      "rgb2yuv"; "alpha_blend"; "sad8"; "max_pool4"; "clip8"; "yuv_downsample";
      "lerp"; "strided_gather8"; "viterbi_inner"; "fft_butterfly" ]
  in
  let wanted =
    if profile.Synth.pname = "int_pointer" then int_families
    else if profile.Synth.pname = "media" then media_families
    else fp_families
  in
  List.filter (fun (n, _) -> List.mem n wanted) Kernels.all

(* Loop-count multiplier calibrated so that scale 1.0 yields ~3,400 raw
   loops, of which the labelling filters keep roughly the paper's 2,500. *)
let density = 2.2

let make_benchmark rng ~scale (bname, tag, profile, n_synth, n_kern, loop_fraction) =
  let rng = Rng.split rng in
  let scale = scale *. density in
  let n_synth = max 1 (int_of_float (Float.round (float_of_int n_synth *. scale))) in
  let n_kern = int_of_float (Float.round (float_of_int n_kern *. scale)) in
  let synth_loops =
    List.init n_synth (fun i ->
        Synth.generate rng profile ~name:(Printf.sprintf "%s/L%d" bname i))
  in
  let pool = Array.of_list (kernel_pool profile) in
  let kern_loops =
    List.init n_kern (fun i ->
        let kname, maker = Rng.choice rng pool in
        let trip =
          Synth.snap_trip rng
            (max 8
               (int_of_float
                  (Float.round
                     (exp (log 8.0 +. Rng.float rng (log 400.0 -. log 8.0))))))
        in
        maker ~name:(Printf.sprintf "%s/%s%d" bname kname i) ~trip)
  in
  let loops = Array.of_list (synth_loops @ kern_loops) in
  (* Runtime weights: heavy-tailed, like real profiles. *)
  let raw = Array.map (fun _ -> (Rng.float rng 1.0 +. 0.05) ** 2.0) loops in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let loops = Array.mapi (fun i l -> (l, raw.(i) /. total)) loops in
  { bname; tag; fp = is_fp_tagged tag; loop_fraction; loops }

let build roster_part ~scale ~seed =
  let rng = Rng.create seed in
  List.map (make_benchmark rng ~scale) roster_part

let spec2000 ~scale ~seed =
  build (List.filteri (fun i _ -> i < 24) roster) ~scale ~seed

let full ~scale ~seed = build roster ~scale ~seed

let all_loops benchmarks =
  List.concat_map
    (fun b -> Array.to_list (Array.map (fun (l, _) -> (b.bname, l)) b.loops))
    benchmarks
