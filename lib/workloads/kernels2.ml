(* Second bank of kernel loops: linear-algebra inner loops, image/DSP rows,
   and integer/table code.  Kept in a separate module only to keep file
   sizes reviewable; [Kernels.all] re-exports everything. *)

type maker = name:string -> trip:int -> Loop.t

let flt = Op.Flt
let int = Op.Int

let arr b ?(elem = 8) ?(mult = 1) ~trip name =
  Builder.add_array b ~elem_size:elem ~length:((trip * mult) + 32) name

(* --- scientific inner loops --- *)

let gaxpy2 ~name ~trip =
  (* two simultaneous axpys sharing x: y += a*x, z += b*x *)
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:8 () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" and z = arr b ~trip "z" in
  let a = Builder.freg b and c = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:1 ~offset:0 () in
  let zv = Builder.load b ~cls:flt ~array:z ~stride:1 ~offset:0 () in
  Builder.store b ~array:y ~stride:1 ~offset:0 (Builder.fmadd b [ a; xv; yv ]);
  Builder.store b ~array:z ~stride:1 ~offset:0 (Builder.fmadd b [ c; xv; zv ]);
  Builder.finish b

let back_subst_inner ~name ~trip =
  (* acc -= U[k][j] * x[j]: the dot-product core of back substitution *)
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:32 () in
  let u = arr b ~trip "urow" and x = arr b ~trip "x" in
  let acc = Builder.freg b in
  let uv = Builder.load b ~cls:flt ~array:u ~stride:1 ~offset:0 () in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.accumulate b ~acc ~op:`Fmadd [ uv; xv ];
  Builder.mark_live_out b acc;
  Builder.finish b

let jacobi2d_row ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:16 () in
  let g = arr b ~mult:3 ~trip "grid" and out = arr b ~trip "out" in
  let w = Builder.freg b in
  let n = Builder.load b ~cls:flt ~array:g ~stride:1 ~offset:0 () in
  let west = Builder.load b ~cls:flt ~array:g ~stride:1 ~offset:(trip + 31) () in
  let e = Builder.load b ~cls:flt ~array:g ~stride:1 ~offset:(trip + 33) () in
  let s = Builder.load b ~cls:flt ~array:g ~stride:1 ~offset:(2 * (trip + 32)) () in
  let s1 = Builder.fadd b [ n; s ] in
  let s2 = Builder.fadd b [ west; e ] in
  let s3 = Builder.fadd b [ s1; s2 ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 (Builder.fmul b [ s3; w ]);
  Builder.finish b

let tridiag_solve ~name ~trip =
  (* x[i] = (d[i] - l[i]*x[i-1]) / u[i] — serial memory recurrence with a
     divide: unrolling is hopeless, exactly the kind of loop that must be
     left alone. *)
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let l = arr b ~trip "l" and u = arr b ~trip "u" and d = arr b ~trip "d" in
  let x = arr b ~trip "x" in
  let prev = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let lv = Builder.load b ~cls:flt ~array:l ~stride:1 ~offset:0 () in
  let dv = Builder.load b ~cls:flt ~array:d ~stride:1 ~offset:0 () in
  let uv = Builder.load b ~cls:flt ~array:u ~stride:1 ~offset:0 () in
  let t = Builder.fmul b [ lv; prev ] in
  let num = Builder.fadd b [ dv; t ] in
  let q = Builder.fdiv b [ num; uv ] in
  Builder.store b ~array:x ~stride:1 ~offset:1 q;
  Builder.finish b

let horner ~name ~trip =
  (* acc = acc * x + c[i] — fused-multiply-add recurrence *)
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let c = arr b ~trip "coef" in
  let x = Builder.freg b in
  let acc = Builder.freg b in
  let cv = Builder.load b ~cls:flt ~array:c ~stride:1 ~offset:0 () in
  Builder.accumulate b ~acc ~op:`Fmadd [ x; cv ];
  Builder.mark_live_out b acc;
  Builder.finish b

let norm2 ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" in
  let acc = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.accumulate b ~acc ~op:`Fmadd [ xv; xv ];
  Builder.mark_live_out b acc;
  Builder.finish b

let givens_rotate ~name ~trip =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip () in
  let x = arr b ~trip "x" and y = arr b ~trip "y" in
  let c = Builder.freg b and s = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:flt ~array:y ~stride:1 ~offset:0 () in
  let cx = Builder.fmul b [ c; xv ] in
  let nx = Builder.fmadd b [ s; yv; cx ] in
  let cy = Builder.fmul b [ c; yv ] in
  let sx = Builder.fmul b [ s; xv ] in
  let ny = Builder.fadd b [ cy; sx ] in
  Builder.store b ~array:x ~stride:1 ~offset:0 nx;
  Builder.store b ~array:y ~stride:1 ~offset:0 ny;
  Builder.finish b

let lerp ~name ~trip =
  (* y[i] = a[i] + t*(b[i] - a[i]) *)
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let a = arr b ~trip "a" and bb = arr b ~trip "b" and y = arr b ~trip "y" in
  let t = Builder.freg b in
  let av = Builder.load b ~cls:flt ~array:a ~stride:1 ~offset:0 () in
  let bv = Builder.load b ~cls:flt ~array:bb ~stride:1 ~offset:0 () in
  let d = Builder.fadd b [ bv; av ] in
  Builder.store b ~array:y ~stride:1 ~offset:0 (Builder.fmadd b [ t; d; av ]);
  Builder.finish b

let conv3x3_row ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip ~nest_level:2 ~outer_trip:16 () in
  let img = arr b ~mult:3 ~trip "img" and out = arr b ~trip "out" in
  let ks = Array.init 9 (fun _ -> Builder.freg b) in
  let row = trip + 32 in
  let acc = ref None in
  Array.iteri
    (fun t k ->
      let offset = ((t / 3) * row) + (t mod 3) in
      let v = Builder.load b ~cls:flt ~array:img ~stride:1 ~offset () in
      acc :=
        Some
          (match !acc with
          | None -> Builder.fmul b [ k; v ]
          | Some a -> Builder.fmadd b [ k; v; a ]))
    ks;
  Builder.store b ~array:out ~stride:1 ~offset:0 (Option.get !acc);
  Builder.finish b

let csr_spmv_inner ~name ~trip =
  (* acc += val[k] * x[col[k]] — the classic sparse gather-reduce *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let vals = arr b ~trip "vals" in
  let cols = arr b ~elem:4 ~trip "cols" in
  let x = Builder.add_array b ~elem_size:8 ~length:8192 "x" in
  let acc = Builder.freg b in
  let v = Builder.load b ~cls:flt ~array:vals ~stride:1 ~offset:0 () in
  let c = Builder.load b ~cls:int ~array:cols ~stride:1 ~offset:0 () in
  let xv = Builder.load b ~cls:flt ~mkind:Op.Indirect ~addr:c ~array:x ~stride:0 ~offset:0 () in
  Builder.accumulate b ~acc ~op:`Fmadd [ v; xv ];
  Builder.mark_live_out b acc;
  Builder.finish b

let fft_butterfly ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let re = arr b ~mult:2 ~trip "re" and im = arr b ~mult:2 ~trip "im" in
  let wr = Builder.freg b and wi = Builder.freg b in
  let ar = Builder.load b ~cls:flt ~array:re ~stride:2 ~offset:0 () in
  let ai = Builder.load b ~cls:flt ~array:im ~stride:2 ~offset:0 () in
  let br = Builder.load b ~cls:flt ~array:re ~stride:2 ~offset:1 () in
  let bi = Builder.load b ~cls:flt ~array:im ~stride:2 ~offset:1 () in
  let tr1 = Builder.fmul b [ wr; br ] in
  let tr = Builder.fmadd b [ wi; bi; tr1 ] in
  let ti1 = Builder.fmul b [ wr; bi ] in
  let ti = Builder.fmadd b [ wi; br; ti1 ] in
  Builder.store b ~array:re ~stride:2 ~offset:0 (Builder.fadd b [ ar; tr ]);
  Builder.store b ~array:im ~stride:2 ~offset:0 (Builder.fadd b [ ai; ti ]);
  Builder.store b ~array:re ~stride:2 ~offset:1 (Builder.fadd b [ ar; tr ]);
  Builder.store b ~array:im ~stride:2 ~offset:1 (Builder.fadd b [ ai; ti ]);
  Builder.finish b

let gauss_seidel_row ~name ~trip =
  (* in-place stencil: reads its own freshly-written west neighbour — a
     distance-1 memory recurrence that caps the achievable overlap *)
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:8 () in
  let g = arr b ~trip "g" in
  let w = Builder.freg b in
  let west = Builder.load b ~cls:flt ~array:g ~stride:1 ~offset:0 () in
  let e = Builder.load b ~cls:flt ~array:g ~stride:1 ~offset:2 () in
  let s = Builder.fadd b [ west; e ] in
  Builder.store b ~array:g ~stride:1 ~offset:1 (Builder.fmul b [ s; w ]);
  Builder.finish b

let quantize ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let x = arr b ~trip "x" and q = arr b ~trip "q" in
  let step = Builder.freg b in
  let xv = Builder.load b ~cls:flt ~array:x ~stride:1 ~offset:0 () in
  Builder.store b ~array:q ~stride:1 ~offset:0 (Builder.fdiv b [ xv; step ]);
  Builder.finish b

(* --- image / DSP rows --- *)

let rgb2yuv ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let rgb = arr b ~mult:3 ~trip "rgb" in
  let yuv = arr b ~mult:3 ~trip "yuv" in
  let cs = Array.init 9 (fun _ -> Builder.freg b) in
  let r = Builder.load b ~cls:flt ~array:rgb ~stride:3 ~offset:0 () in
  let g = Builder.load b ~cls:flt ~array:rgb ~stride:3 ~offset:1 () in
  let bl = Builder.load b ~cls:flt ~array:rgb ~stride:3 ~offset:2 () in
  let plane k0 k1 k2 off =
    let t1 = Builder.fmul b [ cs.(k0); r ] in
    let t2 = Builder.fmadd b [ cs.(k1); g; t1 ] in
    let y = Builder.fmadd b [ cs.(k2); bl; t2 ] in
    Builder.store b ~array:yuv ~stride:3 ~offset:off y
  in
  plane 0 1 2 0;
  plane 3 4 5 1;
  plane 6 7 8 2;
  Builder.finish b

let alpha_blend ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let fg = arr b ~mult:4 ~trip "fg" and bg = arr b ~mult:4 ~trip "bg" in
  let out = arr b ~mult:4 ~trip "out" in
  let alpha = Builder.freg b in
  for ch = 0 to 3 do
    let f = Builder.load b ~cls:flt ~array:fg ~stride:4 ~offset:ch () in
    let g = Builder.load b ~cls:flt ~array:bg ~stride:4 ~offset:ch () in
    let d = Builder.fadd b [ f; g ] in
    Builder.store b ~array:out ~stride:4 ~offset:ch (Builder.fmadd b [ alpha; d; g ])
  done;
  Builder.finish b

let sad8 ~name ~trip =
  (* sum of absolute differences: compare + select implements abs *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let a = arr b ~elem:4 ~trip "a" and c = arr b ~elem:4 ~trip "c" in
  let acc = Builder.ireg b in
  let av = Builder.load b ~cls:int ~array:a ~stride:1 ~offset:0 () in
  let cv = Builder.load b ~cls:int ~array:c ~stride:1 ~offset:0 () in
  let d1 = Builder.ialu b [ av; cv ] in
  let d2 = Builder.ialu b [ cv; av ] in
  let p = Builder.cmp b [ d1 ] in
  let abs = Builder.sel b ~pred:p d1 d2 in
  Builder.accumulate b ~acc ~op:`Ialu [ abs ];
  Builder.mark_live_out b acc;
  Builder.finish b

let max_pool4 ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let x = arr b ~mult:4 ~trip "x" and out = arr b ~trip "out" in
  let v0 = Builder.load b ~cls:flt ~array:x ~stride:4 ~offset:0 () in
  let v1 = Builder.load b ~cls:flt ~array:x ~stride:4 ~offset:1 () in
  let v2 = Builder.load b ~cls:flt ~array:x ~stride:4 ~offset:2 () in
  let v3 = Builder.load b ~cls:flt ~array:x ~stride:4 ~offset:3 () in
  let p1 = Builder.cmp b [ v0; v1 ] in
  let m1 = Builder.sel b ~pred:p1 v0 v1 in
  let p2 = Builder.cmp b [ v2; v3 ] in
  let m2 = Builder.sel b ~pred:p2 v2 v3 in
  let p3 = Builder.cmp b [ m1; m2 ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 (Builder.sel b ~pred:p3 m1 m2);
  Builder.finish b

let clip8 ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let x = arr b ~elem:4 ~trip "x" and out = arr b ~elem:4 ~trip "out" in
  let hi = Builder.ireg b and lo = Builder.ireg b in
  let v = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:0 () in
  let p1 = Builder.cmp b [ v; hi ] in
  let c1 = Builder.sel b ~pred:p1 hi v in
  let p2 = Builder.cmp b [ c1; lo ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 (Builder.sel b ~pred:p2 lo c1);
  Builder.finish b

let yuv_downsample ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~aliased:false ~name ~trip () in
  let src = arr b ~mult:2 ~trip "src" and dst = arr b ~trip "dst" in
  let half = Builder.freg b in
  let a = Builder.load b ~cls:flt ~array:src ~stride:2 ~offset:0 () in
  let c = Builder.load b ~cls:flt ~array:src ~stride:2 ~offset:1 () in
  let s = Builder.fadd b [ a; c ] in
  Builder.store b ~array:dst ~stride:1 ~offset:0 (Builder.fmul b [ s; half ]);
  Builder.finish b

(* --- integer / table code --- *)

let crc_byte ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let data = arr b ~elem:4 ~trip "data" in
  let table = Builder.add_array b ~elem_size:4 ~length:256 "crc_table" in
  let crc = Builder.ireg b in
  let byte = Builder.load b ~cls:int ~array:data ~stride:1 ~offset:0 () in
  let idx = Builder.ialu b [ crc; byte ] in
  let t = Builder.load b ~cls:int ~mkind:Op.Indirect ~addr:idx ~array:table ~stride:0 ~offset:0 () in
  let shifted = Builder.ialu b [ crc ] in
  Builder.accumulate b ~acc:crc ~op:`Ialu [ t ];
  let _ = shifted in
  Builder.mark_live_out b crc;
  Builder.finish b

let hash_mix ~name ~trip =
  (* serial integer recurrence through multiply: h = h*33 + x[i] *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~elem:4 ~trip "x" in
  let h = Builder.ireg b in
  let c = Builder.ireg b in
  let v = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:0 () in
  let hm = Builder.imul b [ h; c ] in
  let _ = hm in
  Builder.accumulate b ~acc:h ~op:`Ialu [ v ];
  Builder.mark_live_out b h;
  Builder.finish b

let strcmp_like ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip ~exit_prob:0.004 () in
  let a = arr b ~elem:4 ~trip "a" and c = arr b ~elem:4 ~trip "b" in
  let av = Builder.load b ~cls:int ~array:a ~stride:1 ~offset:0 () in
  let cv = Builder.load b ~cls:int ~array:c ~stride:1 ~offset:0 () in
  let p = Builder.cmp b [ av; cv ] in
  Builder.early_exit b ~pred:p;
  Builder.finish b

let run_length ~name ~trip =
  (* predicated store: only emit when the value changed *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~elem:4 ~trip "x" and out = arr b ~elem:4 ~trip "out" in
  let v = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:0 () in
  let prev = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:1 () in
  let p = Builder.cmp b [ v; prev ] in
  Builder.store b ~pred:p ~array:out ~stride:1 ~offset:0 v;
  Builder.finish b

let bitcount ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~elem:4 ~trip "x" in
  let acc = Builder.ireg b in
  let v = Builder.load b ~cls:int ~array:x ~stride:1 ~offset:0 () in
  let t1 = Builder.ialu b [ v ] in
  let t2 = Builder.ialu b [ t1 ] in
  let t3 = Builder.ialu b [ t2 ] in
  let t4 = Builder.ialu b [ t3 ] in
  Builder.accumulate b ~acc ~op:`Ialu [ t4 ];
  Builder.mark_live_out b acc;
  Builder.finish b

let table_interp ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let idx = arr b ~elem:4 ~trip "idx" in
  let table = Builder.add_array b ~elem_size:8 ~length:4096 "table" in
  let out = arr b ~trip "out" in
  let frac = Builder.freg b in
  let i = Builder.load b ~cls:int ~array:idx ~stride:1 ~offset:0 () in
  let lo = Builder.load b ~cls:flt ~mkind:Op.Indirect ~addr:i ~array:table ~stride:0 ~offset:0 () in
  let hi = Builder.load b ~cls:flt ~mkind:Op.Indirect ~addr:i ~array:table ~stride:0 ~offset:1 () in
  let d = Builder.fadd b [ hi; lo ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 (Builder.fmadd b [ frac; d; lo ]);
  Builder.finish b

let bubble_inner ~name ~trip =
  (* compare-and-swap of adjacent elements via predicated selects *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let a = arr b ~elem:4 ~trip "a" in
  let x = Builder.load b ~cls:int ~array:a ~stride:1 ~offset:0 () in
  let y = Builder.load b ~cls:int ~array:a ~stride:1 ~offset:1 () in
  let p = Builder.cmp b [ x; y ] in
  let lo = Builder.sel b ~pred:p y x in
  let hi = Builder.sel b ~pred:p x y in
  Builder.store b ~array:a ~stride:1 ~offset:0 lo;
  Builder.store b ~array:a ~stride:1 ~offset:1 hi;
  Builder.finish b

let strided_gather8 ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~mult:8 ~trip "x" and out = arr b ~trip "out" in
  let v = Builder.load b ~cls:flt ~array:x ~stride:8 ~offset:0 () in
  let w = Builder.fmul b [ v; v ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 w;
  Builder.finish b

let memmove_reverse ~name ~trip =
  (* descending copy: negative stride *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let src = arr b ~elem:4 ~trip "src" and dst = arr b ~elem:4 ~trip "dst" in
  let v = Builder.load b ~cls:int ~array:src ~stride:(-1) ~offset:(trip - 1) () in
  Builder.store b ~array:dst ~stride:(-1) ~offset:(trip - 1) v;
  Builder.finish b

let checksum_2way ~name ~trip =
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let x = arr b ~elem:4 ~mult:2 ~trip "x" in
  let a1 = Builder.ireg b and a2 = Builder.ireg b in
  let v1 = Builder.load b ~cls:int ~array:x ~stride:2 ~offset:0 () in
  let v2 = Builder.load b ~cls:int ~array:x ~stride:2 ~offset:1 () in
  Builder.accumulate b ~acc:a1 ~op:`Ialu [ v1 ];
  Builder.accumulate b ~acc:a2 ~op:`Ialu [ v2 ];
  Builder.mark_live_out b a1;
  Builder.mark_live_out b a2;
  Builder.finish b

let viterbi_inner ~name ~trip =
  (* min-plus update with selects, int flavoured *)
  let b = Builder.create ~lang:Loop.C ~name ~trip () in
  let costs = arr b ~elem:4 ~trip "costs" and out = arr b ~elem:4 ~trip "out" in
  let trans0 = Builder.ireg b and trans1 = Builder.ireg b in
  let c0 = Builder.load b ~cls:int ~array:costs ~stride:1 ~offset:0 () in
  let c1 = Builder.load b ~cls:int ~array:costs ~stride:1 ~offset:1 () in
  let p0 = Builder.ialu b [ c0; trans0 ] in
  let p1 = Builder.ialu b [ c1; trans1 ] in
  let p = Builder.cmp b [ p0; p1 ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 (Builder.sel b ~pred:p p0 p1);
  Builder.finish b

let all =
  [
    ("gaxpy2", gaxpy2);
    ("back_subst_inner", back_subst_inner);
    ("jacobi2d_row", jacobi2d_row);
    ("tridiag_solve", tridiag_solve);
    ("horner", horner);
    ("norm2", norm2);
    ("givens_rotate", givens_rotate);
    ("lerp", lerp);
    ("conv3x3_row", conv3x3_row);
    ("csr_spmv_inner", csr_spmv_inner);
    ("fft_butterfly", fft_butterfly);
    ("gauss_seidel_row", gauss_seidel_row);
    ("quantize", quantize);
    ("rgb2yuv", rgb2yuv);
    ("alpha_blend", alpha_blend);
    ("sad8", sad8);
    ("max_pool4", max_pool4);
    ("clip8", clip8);
    ("yuv_downsample", yuv_downsample);
    ("crc_byte", crc_byte);
    ("hash_mix", hash_mix);
    ("strcmp_like", strcmp_like);
    ("run_length", run_length);
    ("bitcount", bitcount);
    ("table_interp", table_interp);
    ("bubble_inner", bubble_inner);
    ("strided_gather8", strided_gather8);
    ("memmove_reverse", memmove_reverse);
    ("checksum_2way", checksum_2way);
    ("viterbi_inner", viterbi_inner);
  ]
