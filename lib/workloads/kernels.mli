(** Hand-written kernel loops.

    Around thirty classic innermost loops — BLAS-1/2 style vector code,
    stencils, reductions, filters, table lookups, pointer chasing — written
    against {!Builder}.  They anchor the workload suite in recognisable
    code and are reused by the examples and tests.

    Each constructor takes the runtime trip count (and sensible defaults),
    so suites can instantiate the same kernel at different scales. *)

type maker = name:string -> trip:int -> Loop.t
(** A kernel family: instantiate with a name and trip count. *)

val daxpy : maker
(** y[i] += a * x[i] — the canonical stream kernel. *)

val ddot : maker
(** dot += x[i]*y[i] — FP reduction (recurrence-bound). *)

val dscal : maker
val dcopy : maker
val daxpy_unknown_trip : maker
(** daxpy with a compile-time-unknown trip count (remainder always needed). *)

val stencil3 : maker
(** b[i] = (a[i-1] + a[i] + a[i+1]) / 3-ish — neighbouring reuse that
    redundant-load elimination exploits after unrolling. *)

val stencil5 : maker
val fir8 : maker
(** 8-tap FIR filter: heavy reuse, wide parallelism. *)

val saxpy_strided : maker
(** Stride-4 accesses — poor spatial locality. *)

val gather : maker
(** y[i] = t[idx[i]] — indirect load (unanalysable). *)

val scatter : maker
(** t[idx[i]] = x[i] — indirect store kills disambiguation. *)

val pointer_chase : maker
(** p = next[p] — serial indirect recurrence; unrolling is useless. *)

val int_sum : maker
(** Integer reduction. *)

val int_histogram : maker
(** counts[key[i]]++ — indirect read-modify-write. *)

val memset_like : maker
val memcpy_like : maker
val fp_divide : maker
(** q[i] = x[i] / y[i] — unpipelined divider saturates immediately. *)

val sqrt_newton : maker
(** Newton iteration step per element: long dependence chains per
    computation but independent across iterations. *)

val complex_mul : maker
(** Interleaved re/im arrays: 4 muls, 2 adds per element. *)

val dot_stride0 : maker
(** acc accumulated into memory each iteration (stride-0 store). *)

val early_exit_search : maker
(** Linear search with a conditional exit each iteration. *)

val predicated_max : maker
(** max reduction via compare + select (if-converted). *)

val call_in_loop : maker
(** Loop with an opaque call — never software-pipelined. *)

val matvec_row : maker
(** One row of y = A*x: dot-product against a strided matrix row. *)

val prefix_sum : maker
(** s[i] = s[i-1] + x[i] — loop-carried memory recurrence (distance 1). *)

val wide_independent : maker
(** Many independent FP computations per iteration — ILP-rich, unrolling
    saturates resources quickly. *)

val mixed_int_fp : maker
val long_latency_chain : maker
(** One serial fmul chain per iteration, independent across iterations —
    unrolling overlaps chains and wins big. *)

val small_trip : maker
(** A loop whose trip count is tiny; high factors are wasted on the
    remainder. *)

val all : (string * maker) list
(** Name → maker for every kernel family above, plus the second bank in
    {!Kernels2} (~60 families in total). *)
