(** Profile-driven synthetic loop generation.

    The paper draws 2,500+ unrollable innermost loops from 72 benchmarks
    across SPEC, Mediabench, Perfect and kernel suites.  Without those
    sources, this generator produces loops from the same structural
    distribution: per-suite profiles control floating-point density, memory
    intensity, stencil-style neighbouring references, reductions, indirect
    accesses, control flow, calls, predication, trip-count ranges and array
    footprints.  Generation is fully deterministic given the RNG stream.

    What matters for the learning experiments is the {e joint} distribution
    of loop characteristics and optimal unroll factors; the profiles are
    chosen so that structure, not noise, determines the label — small
    bodies want high factors until resources, register pressure or code
    growth push back; recurrences and serial chains cap the benefit;
    indirect references and calls disable it. *)

type profile = {
  pname : string;
  fp_ratio : float;         (** probability a computation is floating point *)
  loads_per_comp : float;   (** average loads feeding each computation *)
  comps_min : int;          (** computations per body, inclusive range *)
  comps_max : int;
  chain_min : int;          (** arithmetic chain length per computation *)
  chain_max : int;
  reduction_prob : float;   (** computation accumulates into a carried reg *)
  stencil_prob : float;     (** loads reuse a neighbouring offset *)
  indirect_prob : float;    (** a load/store is indirect *)
  store_prob : float;       (** computation result is stored *)
  div_prob : float;         (** a chain op is a divide *)
  pred_prob : float;        (** computation is predicated *)
  early_exit_prob : float;  (** loop has a conditional exit *)
  call_prob : float;        (** loop contains an opaque call *)
  unknown_trip_prob : float;
  trip_log_min : float;     (** ln of minimum trip count *)
  trip_log_max : float;
  outer_max : int;          (** outer-trip upper bound (log-uniform) *)
  nest_max : int;
  big_array_prob : float;   (** arrays sized beyond L2 (streaming misses) *)
  strides : (float * int) array;  (** weighted stride choices *)
  langs : (float * Loop.lang) array;
}

val fp_numeric : profile
(** Fortran-style scientific code: FP-dense, regular strides, stencils and
    reductions, long trips. *)

val int_pointer : profile
(** C-style integer code: short bodies, indirect references, early exits,
    calls, unknown trips. *)

val media : profile
(** Media/DSP code: fixed trip counts, interleaved strides, wide ILP. *)

val scientific_c : profile
(** C scientific code: like {!fp_numeric} with pointer-flavoured noise. *)

val generate : Rng.t -> profile -> name:string -> Loop.t
(** One synthetic loop.  Always validates. *)

val snap_trip : Rng.t -> int -> int
(** Rounds most trip counts to realistic "nice" values (multiples of 4, 8,
    16, or powers of two), keeping ~30% arbitrary. *)
