let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geomean xs =
  assert (Array.length xs > 0);
  let acc = Array.fold_left (fun a x -> assert (x > 0.0); a +. log x) 0.0 xs in
  exp (acc /. float_of_int (Array.length xs))

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  assert (Array.length xs > 0);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 100.0);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else
    let pos = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let min_index xs =
  assert (Array.length xs > 0);
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best

let max_index xs =
  assert (Array.length xs > 0);
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

let histogram ~bins xs =
  assert (bins > 0 && Array.length xs > 0);
  let lo = Array.fold_left min xs.(0) xs in
  let hi = Array.fold_left max xs.(0) xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

let rank_of costs i =
  assert (i >= 0 && i < Array.length costs);
  let rank = ref 0 in
  for j = 0 to Array.length costs - 1 do
    if costs.(j) < costs.(i) || (costs.(j) = costs.(i) && j < i) then incr rank
  done;
  !rank
