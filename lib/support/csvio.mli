(** Minimal CSV reading and writing.

    Used to persist the labelled loop dataset (the paper released its raw
    loop data; we do the same).  Only the subset of CSV we emit is supported:
    fields are escaped with double quotes when they contain commas, quotes,
    or newlines. *)

val write : string -> string list list -> unit
(** [write path rows] writes rows to [path], one record per line. *)

val read : string -> string list list
(** [read path] parses a file written by {!write} (also tolerates unquoted
    simple CSV from other tools).  Raises [Sys_error] if the file cannot be
    opened and [Failure] on malformed quoting. *)

val escape : string -> string
(** Quotes a single field if necessary. *)
