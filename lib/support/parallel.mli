(** Domain-based worker pool.

    [map] fans an array of independent tasks over OCaml 5 domains and
    returns results in input order, so a parallel run is indistinguishable
    from a sequential one provided the tasks themselves are deterministic
    and share no mutable state (give each task its own {!Rng} stream,
    derived from stable identifiers rather than iteration order).

    [jobs <= 1] falls back to a plain sequential map with no domain ever
    spawned — the safe default everywhere. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] applies [f] to every element, running up to [jobs]
    domains (including the calling one).  Results keep their input index.
    Work is handed out through a shared atomic counter, so long and short
    tasks balance.  If any task raises, the first exception (by input
    index) is re-raised after all workers finish. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

val default_jobs : unit -> int
(** A sensible pool size for this host: [Domain.recommended_domain_count],
    capped at 8. *)
