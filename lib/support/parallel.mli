(** Work-stealing parallel runtime over a persistent domain pool.

    Worker domains are spawned once per process (lazily, on the first
    parallel call) and reused by every subsequent call — a greedy-selection
    run with hundreds of rounds pays the spawn cost zero times per round.
    Each batch of tasks is distributed over per-participant Chase–Lev
    deques: owners pop their own deque LIFO, idle participants steal from
    the top with a single lock-free compare-and-set, so heavy-tailed task
    costs (a labelling sweep where fast-forwarded loops finish 100x sooner
    than simulated ones) rebalance automatically instead of leaving cores
    idle behind a straggler.

    Determinism is the repo's standing contract and holds at every [jobs]
    value: results land at their input index, reductions read them back in
    input order, and if tasks raise, the first exception {e by input index}
    is re-raised after every task has run — exactly the sequential
    semantics, provided the tasks themselves are deterministic and share
    no mutable state (give each task its own {!Rng} stream, derived from
    stable identifiers rather than iteration order).

    All entry points are nesting-safe: a task may itself call [map],
    [tabulate], [iter] or [fork_join].  The inner batch gets its own
    deques; idle pool workers join it when they run out of outer work, and
    the pool never oversubscribes the machine by spawning extra domains
    for nested calls.

    [jobs <= 1] falls back to a plain sequential loop with no domain ever
    woken — the safe default everywhere.

    Scheduler counters accumulate in {!Telemetry.global}: pass
    ["parallel"] records [batches], [tasks], [steals] and [steal-misses]
    (lost CAS races); pass ["parallel.domains"] records tasks executed per
    domain ([d0] is the main domain, [dN] the Nth pool worker) — the
    per-domain utilization view surfaced by [--telemetry]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] applies [f] to every element, fanning out over up to
    [jobs] participants (the calling domain plus pool workers).  Results
    keep their input index. *)

val tabulate : ?jobs:int -> int -> (int -> 'b) -> 'b array
(** [tabulate ~jobs n f] is [Array.init n f] in parallel — the index-space
    form of {!map}, with no input array to allocate. *)

val iter : ?jobs:int -> int -> (int -> unit) -> unit
(** [iter ~jobs n f] runs [f 0 .. f (n-1)] for effect — {!tabulate}
    without a results array (blocked matrix kernels that write disjoint
    tiles in place). *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists.  Prefer the array forms on hot paths; this exists
    for call sites whose data is inherently list-shaped. *)

val fork_join : ?jobs:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [fork_join fa fb] evaluates both thunks, in parallel when [jobs]
    (default 2) allows, and returns both results.  If both raise, [fa]'s
    exception wins — first by index, as everywhere. *)

val default_jobs : unit -> int
(** Pool size for this host: the [UNROLLML_JOBS] environment variable when
    set to a positive integer, otherwise the full
    [Domain.recommended_domain_count] (no cap — big hosts are not
    throttled). *)
