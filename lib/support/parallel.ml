let default_jobs () = min 8 (Domain.recommended_domain_count ())

let map ?(jobs = 1) f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    let jobs = min jobs n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some (match f arr.(i) with v -> Ok v | exception e -> Error e));
          go ()
        end
      in
      go ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))
