(* Work-stealing runtime: a persistent domain pool executing batches of
   index-addressed tasks through per-participant Chase–Lev deques.

   A batch (one [map]/[tabulate]/[iter]/[fork_join] call) splits its index
   space into [jobs] contiguous chunks, seeds one deque per chunk, and
   publishes itself to the pool.  The caller works slot 0; idle pool
   workers claim the remaining slots.  Every participant drains its own
   deque from the bottom (LIFO, cache-warm) and, once empty, steals from
   the other slots' tops (FIFO, so thieves take the oldest — largest-
   remaining — end of a chunk).  Deques are seeded before the batch is
   published and never refill, so "every deque empty" is a stable
   observation that lets helpers leave and the batch retire; completion is
   a per-batch [pending] counter the caller waits on.

   Determinism needs no cooperation from the scheduler: tasks write
   results to their input index, and reductions (including the
   first-exception rule) read the results array back in input order. *)

(* ------------------------------------------------------------------ *)
(* Chase–Lev deque (Chase & Lev, SPAA'05; Lê et al., PPoPP'13).

   Owner pushes/pops at [bottom]; thieves compete for [top] with a CAS.
   OCaml [Atomic] operations are sequentially consistent, which covers
   the fences of the reference C11 implementation.  Slots hold ['a option]
   so there is a well-typed empty value; a slot is only cleared by the
   owner after it is ours, and a thief only dereferences a slot after
   winning the CAS on [top], so [Option.get] cannot observe [None]. *)

module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    tab : 'a option array; (* capacity fixed at creation: batches seed once *)
  }

  type 'a steal_result = Stolen of 'a | Empty | Retry

  let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

  let create ~capacity =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      tab = Array.make (pow2 (max capacity 1) 1) None;
    }

  (* Owner only, and only before the deque is visible to thieves. *)
  let push q v =
    let b = Atomic.get q.bottom in
    let mask = Array.length q.tab - 1 in
    if b - Atomic.get q.top > mask then invalid_arg "Deque.push: full";
    q.tab.(b land mask) <- Some v;
    Atomic.set q.bottom (b + 1)

  (* Owner only. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* empty: restore bottom *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let mask = Array.length q.tab - 1 in
      let v = q.tab.(b land mask) in
      if b > t then begin
        q.tab.(b land mask) <- None;
        v
      end
      else begin
        (* last element: race thieves for it through [top] *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          q.tab.(b land mask) <- None;
          v
        end
        else None
      end
    end

  (* Any domain. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then Empty
    else begin
      let v = q.tab.(t land (Array.length q.tab - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then
        match v with Some x -> Stolen x | None -> assert false
      else Retry
    end
end

(* ------------------------------------------------------------------ *)
(* The persistent pool. *)

type batch = {
  deques : int Deque.t array; (* one per slot; slot 0 is the caller *)
  run : int -> unit; (* executes task [i]; must not raise *)
  pending : int Atomic.t; (* tasks not yet completed *)
  active : int Atomic.t; (* participants that joined and have not left *)
  mutable free_slots : int list; (* claimable helper slots; under pool lock *)
  mutable live : bool; (* still accepting helpers; under pool lock *)
  finished : Mutex.t;
  finished_cond : Condition.t; (* signalled on [pending]/[active] edges *)
}

type pool = {
  lock : Mutex.t;
  work_available : Condition.t;
  mutable batches : batch list; (* FIFO: older batches get help first *)
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable shutdown : bool;
}

let pool =
  {
    lock = Mutex.create ();
    work_available = Condition.create ();
    batches = [];
    workers = [];
    n_workers = 0;
    shutdown = false;
  }

(* The runtime caps live domains at 128; leave headroom for the main
   domain and anything else the process spawns. *)
let max_workers = 120

(* 0 = the main (or any external) domain; pool workers are 1..N. *)
let domain_id_key = Domain.DLS.new_key (fun () -> 0)

let flush_counters ~tasks ~steals ~misses =
  if tasks > 0 || steals > 0 || misses > 0 then begin
    let t = Telemetry.global in
    if tasks > 0 then Telemetry.incr t ~pass:"parallel" "tasks" tasks;
    if steals > 0 then Telemetry.incr t ~pass:"parallel" "steals" steals;
    if misses > 0 then Telemetry.incr t ~pass:"parallel" "steal-misses" misses;
    if tasks > 0 then
      Telemetry.incr t ~pass:"parallel.domains"
        (Printf.sprintf "d%d" (Domain.DLS.get domain_id_key))
        tasks
  end

let exec b i =
  b.run i;
  if Atomic.fetch_and_add b.pending (-1) = 1 then begin
    Mutex.lock b.finished;
    Condition.signal b.finished_cond;
    Mutex.unlock b.finished
  end

(* Stop accepting helpers and drop off the pool's list.  Idempotent. *)
let retire b =
  Mutex.lock pool.lock;
  if b.live then begin
    b.live <- false;
    pool.batches <- List.filter (fun x -> x != b) pool.batches
  end;
  Mutex.unlock pool.lock

(* Work batch [b] from [slot] until every deque is empty.  Deques never
   refill, so that observation is stable; tasks still in flight on other
   participants are the caller's wait, not ours. *)
let participate b ~slot =
  let k = Array.length b.deques in
  let tasks = ref 0 and steals = ref 0 and misses = ref 0 in
  let rec drain_own () =
    match Deque.pop b.deques.(slot) with
    | Some i ->
      exec b i;
      incr tasks;
      drain_own ()
    | None -> steal_loop ()
  and steal_loop () =
    let all_empty = ref true in
    let stolen = ref (-1) in
    let v = ref 1 in
    while !stolen < 0 && !v < k do
      (match Deque.steal b.deques.((slot + !v) mod k) with
      | Deque.Stolen i ->
        stolen := i;
        incr steals
      | Deque.Empty -> ()
      | Deque.Retry ->
        all_empty := false;
        incr misses);
      incr v
    done;
    if !stolen >= 0 then begin
      exec b !stolen;
      incr tasks;
      (* our own deque cannot refill: straight back to stealing *)
      steal_loop ()
    end
    else if not !all_empty then begin
      (* lost a race: someone took work, more may remain *)
      Domain.cpu_relax ();
      steal_loop ()
    end
  in
  drain_own ();
  retire b;
  flush_counters ~tasks:!tasks ~steals:!steals ~misses:!misses;
  (* Leave only after flushing, and wake the caller: [run_batch] waits for
     [active] to reach 0 as well as [pending], so by the time a parallel
     call returns every participant's scheduler counters are visible. *)
  ignore (Atomic.fetch_and_add b.active (-1));
  Mutex.lock b.finished;
  Condition.signal b.finished_cond;
  Mutex.unlock b.finished

(* Under pool lock. *)
let claim_slot () =
  let rec go = function
    | [] -> None
    | b :: rest ->
      if b.live && b.free_slots <> [] && Atomic.get b.pending > 0 then (
        match b.free_slots with
        | s :: tl ->
          b.free_slots <- tl;
          (* Join while [b.live] still holds the pool lock against [retire],
             so the caller cannot observe [active] = 0 early. *)
          ignore (Atomic.fetch_and_add b.active 1);
          Some (b, s)
        | [] -> assert false)
      else go rest
  in
  go pool.batches

let rec worker_loop () =
  Mutex.lock pool.lock;
  let claimed =
    let rec wait () =
      if pool.shutdown then None
      else
        match claim_slot () with
        | Some _ as c -> c
        | None ->
          Condition.wait pool.work_available pool.lock;
          wait ()
    in
    wait ()
  in
  Mutex.unlock pool.lock;
  match claimed with
  | None -> () (* shutdown *)
  | Some (b, slot) ->
    participate b ~slot;
    worker_loop ()

(* Under pool lock.  Grows the pool monotonically; workers persist until
   process exit and are shared by every subsequent batch. *)
let ensure_workers n =
  let target = min n max_workers in
  while pool.n_workers < target do
    let id = pool.n_workers + 1 in
    let d =
      Domain.spawn (fun () ->
          Domain.DLS.set domain_id_key id;
          worker_loop ())
    in
    pool.workers <- d :: pool.workers;
    pool.n_workers <- pool.n_workers + 1
  done

(* Registered at module init, so it runs after every later-registered
   at_exit: the whole process gets to finish its parallel work first. *)
let shutdown_pool () =
  Mutex.lock pool.lock;
  pool.shutdown <- true;
  Condition.broadcast pool.work_available;
  let ws = pool.workers in
  pool.workers <- [];
  pool.n_workers <- 0;
  Mutex.unlock pool.lock;
  List.iter Domain.join ws

let () = at_exit shutdown_pool

(* Run tasks 0..n-1 through the pool: seed [min jobs n] chunked deques,
   publish, work slot 0, then wait out stragglers stolen by helpers. *)
let run_batch ~jobs ~n run =
  if n > 0 then begin
    if jobs <= 1 || n = 1 then
      for i = 0 to n - 1 do
        run i
      done
    else begin
      let k = min jobs n in
      let deques =
        Array.init k (fun s ->
            let lo = s * n / k and hi = (s + 1) * n / k in
            let d = Deque.create ~capacity:(hi - lo) in
            for i = lo to hi - 1 do
              Deque.push d i
            done;
            d)
      in
      let b =
        {
          deques;
          run;
          pending = Atomic.make n;
          active = Atomic.make 1; (* the caller, pre-registered *)
          free_slots = List.init (k - 1) (fun i -> i + 1);
          live = true;
          finished = Mutex.create ();
          finished_cond = Condition.create ();
        }
      in
      Telemetry.incr Telemetry.global ~pass:"parallel" "batches" 1;
      Mutex.lock pool.lock;
      ensure_workers (k - 1);
      pool.batches <- pool.batches @ [ b ];
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.lock;
      participate b ~slot:0;
      if Atomic.get b.pending > 0 || Atomic.get b.active > 0 then begin
        Mutex.lock b.finished;
        while Atomic.get b.pending > 0 || Atomic.get b.active > 0 do
          Condition.wait b.finished_cond b.finished
        done;
        Mutex.unlock b.finished
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Public API.  Results are index-addressed; reductions scan in input
   order, which is all determinism (and the first-exception-by-index
   rule) requires. *)

let unwrap = function
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let map ?(jobs = 1) f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    run_batch ~jobs ~n (fun i ->
        results.(i) <-
          Some (match f arr.(i) with v -> Ok v | exception e -> Error e));
    Array.map unwrap results
  end

let tabulate ?(jobs = 1) n f =
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run_batch ~jobs ~n (fun i ->
        results.(i) <- Some (match f i with v -> Ok v | exception e -> Error e));
    Array.map unwrap results
  end

let iter ?(jobs = 1) n f =
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let errors = Array.make n None in
    run_batch ~jobs ~n (fun i ->
        match f i with () -> () | exception e -> errors.(i) <- Some e);
    Array.iter (function Some e -> raise e | None -> ()) errors
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

let fork_join ?(jobs = 2) fa fb =
  if jobs <= 1 then begin
    let a = fa () in
    let b = fb () in
    (a, b)
  end
  else begin
    let ra = ref None and rb = ref None in
    run_batch ~jobs:2 ~n:2 (fun i ->
        if i = 0 then
          ra := Some (match fa () with v -> Ok v | exception e -> Error e)
        else rb := Some (match fb () with v -> Ok v | exception e -> Error e));
    let a = unwrap !ra in
    let b = unwrap !rb in
    (a, b)
  end

let default_jobs () =
  match Sys.getenv_opt "UNROLLML_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
