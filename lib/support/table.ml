type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let to_string t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iteri (fun i (h, _) -> widths.(i) <- String.length h) t.headers;
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let aligns = List.map snd t.headers in
  let render_cells cells =
    let padded = List.mapi (fun i c -> pad (List.nth aligns i) widths.(i) c) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    let segs = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    "+" ^ String.concat "+" segs ^ "+"
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_cells (List.map fst t.headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      (match row with
      | Separator -> Buffer.add_string buf rule
      | Cells cells -> Buffer.add_string buf (render_cells cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (to_string t)

let cell_float ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v

let cell_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)

let bar ~width v =
  let v = Float.max 0.0 (Float.min 1.0 v) in
  let n = int_of_float (Float.round (v *. float_of_int width)) in
  String.make n '#'
