(** ASCII table rendering for experiment output.

    Every reproduced paper table and figure is ultimately printed as rows;
    this module gives them a uniform, aligned presentation. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title headers] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Appends a row.  The row must have exactly as many cells as there are
    columns; raises [Invalid_argument] otherwise. *)

val add_separator : t -> unit
(** Appends a horizontal rule between rows. *)

val to_string : t -> string
(** Renders the table with padded, aligned columns. *)

val print : t -> unit
(** [print t] writes [to_string t] to standard output. *)

val cell_float : ?decimals:int -> float -> string
(** Formats a float cell with a fixed number of decimals (default 3). *)

val cell_pct : ?decimals:int -> float -> string
(** Formats a ratio as a percentage string, e.g. [cell_pct 0.051 = "5.1%"]
    (default 1 decimal). *)

val bar : width:int -> float -> string
(** [bar ~width v] renders a proportion [v] in \[0, 1\] as a horizontal bar
    of at most [width] characters — used for ASCII histograms. *)
