type entry = {
  mutable calls : int;
  mutable seconds : float;
  counters : (string, int ref) Hashtbl.t;
  mutable counter_order : string list; (* reversed first-seen order *)
}

type t = {
  mutex : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable order : string list; (* reversed first-seen order *)
}

let create () = { mutex = Mutex.create (); entries = Hashtbl.create 16; order = [] }

let global = create ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let entry_of t pass =
  match Hashtbl.find_opt t.entries pass with
  | Some e -> e
  | None ->
    let e = { calls = 0; seconds = 0.0; counters = Hashtbl.create 8; counter_order = [] } in
    Hashtbl.add t.entries pass e;
    t.order <- pass :: t.order;
    e

let bump e metric n =
  match Hashtbl.find_opt e.counters metric with
  | Some r -> r := !r + n
  | None ->
    Hashtbl.add e.counters metric (ref n);
    e.counter_order <- metric :: e.counter_order

let record t ~pass ~seconds ?(metrics = []) () =
  locked t (fun () ->
      let e = entry_of t pass in
      e.calls <- e.calls + 1;
      e.seconds <- e.seconds +. seconds;
      List.iter (fun (m, n) -> bump e m n) metrics)

let incr t ~pass metric n =
  locked t (fun () -> bump (entry_of t pass) metric n)

let calls t ~pass =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries pass with Some e -> e.calls | None -> 0)

let seconds t ~pass =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries pass with Some e -> e.seconds | None -> 0.0)

let counter t ~pass metric =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries pass with
      | Some e -> (match Hashtbl.find_opt e.counters metric with Some r -> !r | None -> 0)
      | None -> 0)

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.entries;
      t.order <- [])

let pretty_time s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
  else Printf.sprintf "%.0f ns" (s *. 1e9)

let to_table t =
  locked t (fun () ->
      let tbl =
        Table.create ~title:"pipeline telemetry"
          [
            ("pass", Table.Left);
            ("calls", Table.Right);
            ("total", Table.Right);
            ("mean", Table.Right);
            ("counters", Table.Left);
          ]
      in
      List.iter
        (fun pass ->
          let e = Hashtbl.find t.entries pass in
          let counters =
            List.rev e.counter_order
            |> List.map (fun m -> Printf.sprintf "%s=%d" m !(Hashtbl.find e.counters m))
            |> String.concat " "
          in
          Table.add_row tbl
            [
              pass;
              string_of_int e.calls;
              pretty_time e.seconds;
              (if e.calls > 0 then pretty_time (e.seconds /. float_of_int e.calls) else "-");
              counters;
            ])
        (List.rev t.order);
      Table.to_string tbl)
