(** Deterministic pseudo-random number generation.

    All stochastic components of the library (synthetic workload generation,
    measurement-noise injection, tie breaking) draw from explicit generator
    values so that every experiment is reproducible from its seed.  The
    implementation is SplitMix64, which has a tiny state, passes BigCrush,
    and supports cheap stream splitting. *)

type t
(** A mutable pseudo-random stream. *)

val create : int -> t
(** [create seed] returns a fresh stream determined entirely by [seed]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent stream from [t],
    advancing [t].  Use to give sub-components their own streams so that
    adding draws in one component does not perturb another. *)

val derive : int -> string -> int -> t
(** [derive seed name index] is a stream determined only by the triple —
    not by any other stream's draw history.  Measurement sweeps key their
    noise stream on [(noise_seed, benchmark, loop index)] this way, so a
    loop's label is identical whether the sweep runs sequentially, in
    parallel, or alone. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val choice : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted_choice : t -> (float * 'a) array -> 'a
(** [weighted_choice t items] picks an item with probability proportional to
    its weight.  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
