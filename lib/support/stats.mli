(** Summary statistics used throughout measurement and evaluation. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val geomean : float array -> float
(** Geometric mean.  Requires non-empty, strictly positive entries. *)

val variance : float array -> float
(** Unbiased sample variance (0 for arrays of length < 2). *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val median : float array -> float
(** Median (average of middle two for even lengths).  Does not mutate the
    argument.  Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0, 100\], linear interpolation between
    order statistics.  Does not mutate the argument. *)

val min_index : float array -> int
(** Index of the smallest element (first on ties). *)

val max_index : float array -> int
(** Index of the largest element (first on ties). *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] partitions the value range into [bins] equal-width
    bins and returns [(lo, hi, count)] per bin. *)

val rank_of : float array -> int -> int
(** [rank_of costs i] is the 0-based rank of element [i] when [costs] is
    sorted ascending (rank 0 = smallest).  Ties are resolved by index order,
    so the reported rank of an element never exceeds the number of elements
    strictly smaller plus the ties preceding it. *)
