(** Per-pass telemetry accumulation.

    Every stage of the compile pipeline (and the compile cache) reports
    into a sink: how often it ran, how much wall-clock time it consumed,
    and any integer metrics it cares to expose (op-count deltas, spills,
    initiation intervals, cache hits).  Sinks are cheap, thread-safe
    (worker domains of the parallel sweep report concurrently), and
    renderable as a table from the CLI.

    A process-wide {!global} sink exists so that deeply-buried call sites
    ({!val:Simulator.compile} behind {!Measure.sweep} behind a labelling
    sweep) need not thread a sink explicitly; experiments that want
    isolated numbers create their own. *)

type t
(** A mutable, mutex-protected sink. *)

val create : unit -> t

val global : t
(** The process-wide default sink. *)

val record :
  t -> pass:string -> seconds:float -> ?metrics:(string * int) list -> unit -> unit
(** [record t ~pass ~seconds ~metrics ()] adds one invocation of [pass]:
    increments its call count, accumulates wall time, and sums each metric
    into the pass's named counters. *)

val incr : t -> pass:string -> string -> int -> unit
(** [incr t ~pass metric n] bumps a bare counter without touching the
    call count or timing (cache hit/miss counters). *)

val calls : t -> pass:string -> int
(** Number of recorded invocations of [pass] (0 if never seen). *)

val seconds : t -> pass:string -> float
(** Accumulated wall-clock seconds of [pass]. *)

val counter : t -> pass:string -> string -> int
(** Value of a named counter (0 if never seen). *)

val reset : t -> unit
(** Drop everything recorded so far. *)

val to_table : t -> string
(** Render the sink as an ASCII table: one row per pass in first-seen
    order — calls, total and mean wall time, then every named counter as
    [name=value] pairs. *)
