type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let derive seed name index =
  let t = create seed in
  (* Fold the identifiers into the state through the output function so
     that (seed, name, index) triples differing in any component land in
     statistically unrelated streams. *)
  String.iter
    (fun c ->
      t.state <- Int64.add t.state (Int64.of_int (Char.code c));
      ignore (int64 t))
    name;
  t.state <- Int64.add t.state (Int64.of_int index);
  ignore (int64 t);
  t

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let weighted_choice t items =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let x = float t total in
  let rec pick i acc =
    if i = Array.length items - 1 then snd items.(i)
    else
      let w, v = items.(i) in
      let acc = acc +. w in
      if x < acc then v else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
