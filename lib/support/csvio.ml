let needs_quote s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if not (needs_quote s) then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let write path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map escape row));
          output_char oc '\n')
        rows)

(* A small state machine over the whole file contents: quoted fields may
   contain embedded newlines, so parsing cannot be line-by-line. *)
let parse_string contents =
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let n = String.length contents in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then flush_row ())
    else
      match contents.[i] with
      | ',' -> flush_field (); plain (i + 1)
      | '\n' -> flush_row (); plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c -> Buffer.add_char buf c; plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csvio.read: unterminated quoted field"
    else
      match contents.[i] with
      | '"' ->
        if i + 1 < n && contents.[i + 1] = '"' then (
          Buffer.add_char buf '"';
          quoted (i + 2))
        else plain (i + 1)
      | c -> Buffer.add_char buf c; quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let read path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string contents
