(** Imperative construction of loops.

    The builder allocates virtual registers and array slots, appends ops in
    program order, and on {!finish} closes the body with the canonical loop
    overhead — induction increment, trip-count compare, backward branch —
    then validates the result.  Both the hand-written kernels and the
    synthetic workload generator are written against this API, as is the
    quickstart example. *)

type t

val create :
  ?nest_level:int ->
  ?lang:Loop.lang ->
  ?trip_static:int option ->
  ?aliased:bool ->
  ?outer_trip:int ->
  ?exit_prob:float ->
  ?base_addr:int ->
  name:string ->
  trip:int ->
  unit ->
  t
(** [create ~name ~trip ()] starts a loop whose runtime trip count is
    [trip].  [trip_static] defaults to [Some trip] (the compiler knows the
    trip count); pass [~trip_static:None] for a compile-time-unknown trip.
    [base_addr] (default 0x10000) is where array allocation begins. *)

val add_array : t -> ?elem_size:int -> ?length:int -> string -> int
(** Declares an array and returns its id.  Arrays are laid out sequentially
    from [base_addr], 64-byte aligned.  [elem_size] defaults to 8,
    [length] to 4096 elements. *)

val ireg : t -> Op.reg
val freg : t -> Op.reg
(** Fresh virtual registers of each class. *)

val load : t -> ?pred:Op.reg -> ?mkind:Op.mem_kind -> ?addr:Op.reg -> cls:Op.reg_class ->
  array:int -> stride:int -> offset:int -> unit -> Op.reg
(** Appends a load and returns the destination register.  [addr] names the
    register the address is computed from (used with [Indirect] references
    so the address-generation dependence is visible to the scheduler). *)

val store : t -> ?pred:Op.reg -> ?mkind:Op.mem_kind -> ?addr:Op.reg ->
  array:int -> stride:int -> offset:int -> Op.reg -> unit

val ialu : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
val imul : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
val fadd : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
val fmul : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
val fmadd : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
val fdiv : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
(** Arithmetic ops: sources as given, fresh destination returned.
    Register classes of sources must match the op (checked). *)

val accumulate : t -> ?pred:Op.reg -> acc:Op.reg -> op:[ `Fadd | `Fmadd | `Ialu ] ->
  Op.reg list -> unit
(** Appends [acc <- op (acc :: srcs)] — the loop-carried reduction pattern
    that creates a recurrence. *)

val mov : t -> ?pred:Op.reg -> Op.reg -> Op.reg

val assign : t -> ?pred:Op.reg -> dst:Op.reg -> Op.reg -> unit
(** [assign t ~dst src] appends [dst <- mov src] into an {e existing}
    register of the same class.  Writing a named register (rather than a
    fresh one, as {!mov} does) is what rotation chains need: a sequence of
    assigns [a(k) <- a(k-1); ...; a(0) <- v] carries [v] across [k]
    iterations — a loop-carried dependence at distance [k]. *)

val sel : t -> pred:Op.reg -> Op.reg -> Op.reg -> Op.reg
val cmp : t -> ?pred:Op.reg -> Op.reg list -> Op.reg
(** Compare producing a predicate (an integer register usable as [~pred]). *)

val call : t -> unit
val early_exit : t -> pred:Op.reg -> unit
(** Conditional exit out of the loop, guarded by [pred]. *)

val mark_live_out : t -> Op.reg -> unit
(** Declares a register live after the loop (reduction results). *)

val finish : t -> Loop.t
(** Appends induction update, trip-count compare and backward branch, then
    validates.  Raises [Failure] with a diagnostic if validation fails. *)
