type stats = {
  critical_path : int;
  computations : int;
  max_dependence_height : int;
  avg_dependence_height : float;
  max_memory_height : int;
  max_control_height : int;
  max_fan_in : int;
  avg_fan_in : float;
  min_mem_to_mem_distance : int;
  mem_to_mem_dependences : int;
  recurrence_latency : int;
}

let is_mem_kind = function
  | Deps.Mem_flow | Deps.Mem_anti | Deps.Mem_output -> true
  | Deps.Reg_flow | Deps.Reg_anti | Deps.Reg_output | Deps.Control | Deps.Serial -> false

(* Reverse topological order of the distance-0 subgraph restricted to edges
   satisfying [keep].  The distance-0 graph of a valid loop is acyclic. *)
let topo_order (deps : Deps.t) keep =
  let n = deps.Deps.n in
  let visited = Array.make n false in
  let order = ref [] in
  let rec visit v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter
        (fun (e : Deps.edge) -> if e.Deps.distance = 0 && keep e then visit e.Deps.dst)
        deps.Deps.succs.(v);
      order := v :: !order
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  !order (* sources first *)

(* Latency-weighted longest path over the kept distance-0 edges. *)
let heights (deps : Deps.t) op_latency keep =
  let n = deps.Deps.n in
  let h = Array.make n 0 in
  let order = List.rev (topo_order deps keep) in
  (* sinks first *)
  List.iter
    (fun v ->
      let best = ref 0 in
      List.iter
        (fun (e : Deps.edge) ->
          if e.Deps.distance = 0 && keep e then best := max !best h.(e.Deps.dst))
        deps.Deps.succs.(v);
      h.(v) <- op_latency v + !best)
    order;
  h

let union_find n =
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (find, union)

let analyze (deps : Deps.t) op_latency =
  let n = deps.Deps.n in
  let keep_flow (e : Deps.edge) = e.Deps.dkind = Deps.Reg_flow in
  let keep_data (e : Deps.edge) =
    match e.Deps.dkind with
    | Deps.Reg_flow | Deps.Mem_flow -> true
    | Deps.Reg_anti | Deps.Reg_output | Deps.Mem_anti | Deps.Mem_output
    | Deps.Control | Deps.Serial -> false
  in
  let keep_mem (e : Deps.edge) = is_mem_kind e.Deps.dkind in
  let keep_control (e : Deps.edge) = e.Deps.dkind = Deps.Control in
  let data_heights = heights deps op_latency keep_data in
  let critical_path = Array.fold_left max 0 data_heights in
  (* Computations: components of the register-flow graph over non-branch ops. *)
  let find, union = union_find n in
  List.iter
    (fun (e : Deps.edge) ->
      if keep_flow e && e.Deps.distance = 0 then union e.Deps.src e.Deps.dst)
    deps.Deps.edges;
  let flow_heights = heights deps op_latency keep_flow in
  let comp_height = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let r = find v in
    let cur = Option.value (Hashtbl.find_opt comp_height r) ~default:0 in
    Hashtbl.replace comp_height r (max cur flow_heights.(v))
  done;
  let computations = Hashtbl.length comp_height in
  let max_dependence_height = Hashtbl.fold (fun _ h acc -> max h acc) comp_height 0 in
  let sum_heights = Hashtbl.fold (fun _ h acc -> acc + h) comp_height 0 in
  let avg_dependence_height =
    if computations = 0 then 0.0 else float_of_int sum_heights /. float_of_int computations
  in
  let mem_heights = heights deps op_latency keep_mem in
  let max_memory_height =
    (* Only meaningful on ops that participate in a memory chain. *)
    let best = ref 0 in
    for v = 0 to n - 1 do
      let participates =
        List.exists (fun e -> keep_mem e && e.Deps.distance = 0) deps.Deps.succs.(v)
        || List.exists (fun e -> keep_mem e && e.Deps.distance = 0) deps.Deps.preds.(v)
      in
      if participates then best := max !best mem_heights.(v)
    done;
    !best
  in
  let control_heights = heights deps op_latency keep_control in
  let max_control_height =
    let best = ref 0 in
    for v = 0 to n - 1 do
      let participates =
        List.exists (fun e -> keep_control e && e.Deps.distance = 0) deps.Deps.succs.(v)
        || List.exists (fun e -> keep_control e && e.Deps.distance = 0) deps.Deps.preds.(v)
      in
      if participates then best := max !best control_heights.(v)
    done;
    !best
  in
  let fan_in = Array.make n 0 in
  List.iter
    (fun (e : Deps.edge) ->
      if keep_flow e && e.Deps.distance = 0 then fan_in.(e.Deps.dst) <- fan_in.(e.Deps.dst) + 1)
    deps.Deps.edges;
  let max_fan_in = Array.fold_left max 0 fan_in in
  let avg_fan_in =
    if n = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 fan_in) /. float_of_int n
  in
  let min_mem_to_mem_distance, mem_to_mem_dependences =
    List.fold_left
      (fun (mind, count) (e : Deps.edge) ->
        if is_mem_kind e.Deps.dkind && e.Deps.distance > 0 then
          (min mind e.Deps.distance, count + 1)
        else (mind, count))
      (max_int, 0) deps.Deps.edges
  in
  (* Recurrence bound: a loop-carried flow edge d->s at distance k closes a
     cycle with the longest distance-0 flow path from s back to d. *)
  let recurrence_latency =
    let longest_path_from src =
      (* longest distance-0 flow path latencies starting at [src] *)
      let dist = Array.make n min_int in
      dist.(src) <- op_latency src;
      let order = topo_order deps keep_flow in
      List.iter
        (fun v ->
          if dist.(v) > min_int then
            List.iter
              (fun (e : Deps.edge) ->
                if keep_flow e && e.Deps.distance = 0 then
                  let cand = dist.(v) + op_latency e.Deps.dst in
                  if cand > dist.(e.Deps.dst) then dist.(e.Deps.dst) <- cand)
              deps.Deps.succs.(v))
        order;
      dist
    in
    List.fold_left
      (fun acc (e : Deps.edge) ->
        if e.Deps.dkind = Deps.Reg_flow && e.Deps.distance > 0 then begin
          let cycle_latency =
            if e.Deps.src = e.Deps.dst then op_latency e.Deps.src
            else
              let dist = longest_path_from e.Deps.dst in
              if dist.(e.Deps.src) > min_int then dist.(e.Deps.src) else 0
          in
          if cycle_latency > 0 then
            let bound =
              (cycle_latency + e.Deps.distance - 1) / e.Deps.distance
            in
            max acc bound
          else acc
        end
        else acc)
      0 deps.Deps.edges
  in
  {
    critical_path;
    computations;
    max_dependence_height;
    avg_dependence_height;
    max_memory_height;
    max_control_height;
    max_fan_in;
    avg_fan_in;
    min_mem_to_mem_distance;
    mem_to_mem_dependences;
    recurrence_latency;
  }
