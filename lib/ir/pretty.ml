let lang_name = function
  | Loop.C -> "C"
  | Loop.Fortran -> "Fortran"
  | Loop.Fortran90 -> "Fortran90"

let pp_loop fmt (loop : Loop.t) =
  Format.fprintf fmt "loop %s (%s, nest %d, trip %s/%d, outer %d):@."
    loop.Loop.name (lang_name loop.Loop.lang) loop.Loop.nest_level
    (match loop.Loop.trip_static with Some n -> string_of_int n | None -> "?")
    loop.Loop.trip_actual loop.Loop.outer_trip;
  Array.iteri
    (fun i ai ->
      Format.fprintf fmt "  array A%d = %s[%d x %dB] @@0x%x@." i ai.Loop.aname
        ai.Loop.length ai.Loop.elem_size ai.Loop.base)
    loop.Loop.arrays;
  Array.iteri
    (fun i op -> Format.fprintf fmt "  %3d: %a@." i Op.pp op)
    loop.Loop.body;
  if loop.Loop.live_out <> [] then begin
    Format.fprintf fmt "  live-out:";
    List.iter (fun r -> Format.fprintf fmt " %a" Op.pp_reg r) loop.Loop.live_out;
    Format.fprintf fmt "@."
  end

let loop_to_string loop = Format.asprintf "%a" pp_loop loop

let kind_name = function
  | Deps.Reg_flow -> "flow"
  | Deps.Reg_anti -> "anti"
  | Deps.Reg_output -> "out"
  | Deps.Mem_flow -> "mflow"
  | Deps.Mem_anti -> "manti"
  | Deps.Mem_output -> "mout"
  | Deps.Control -> "ctrl"
  | Deps.Serial -> "serial"

let pp_deps fmt (deps : Deps.t) =
  List.iter
    (fun (e : Deps.edge) ->
      Format.fprintf fmt "  %d -> %d [%s lat=%d dist=%d]@." e.Deps.src e.Deps.dst
        (kind_name e.Deps.dkind) e.Deps.latency e.Deps.distance)
    (List.sort compare deps.Deps.edges)
