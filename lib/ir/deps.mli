(** Dependence analysis over a loop body.

    Produces the data-dependence graph used by the list scheduler, the
    modulo scheduler (software pipelining) and feature extraction.  Nodes
    are body positions; every edge carries a latency and an iteration
    {e distance}: a scheduling constraint
    [start dst >= start src + latency - II * distance].

    Register dependences are exact (virtual registers, single reaching def
    by position).  Memory dependences use the affine references: two direct
    references to the same array with equal strides either never alias or
    alias at a constant iteration distance; differing strides and indirect
    references degrade to conservative edges — an indirect reference may
    alias {e any} array, modelling unanalysable pointers. *)

type kind =
  | Reg_flow    (** true dependence through a register *)
  | Reg_anti    (** write-after-read *)
  | Reg_output  (** write-after-write *)
  | Mem_flow    (** store → load *)
  | Mem_anti    (** load → store *)
  | Mem_output  (** store → store *)
  | Control     (** ordering below an early-exit branch *)
  | Serial      (** serialisation: calls, and op → backedge delimiting *)

type edge = {
  src : int;       (** body position of the source op *)
  dst : int;       (** body position of the sink op *)
  dkind : kind;
  latency : int;
  distance : int;  (** iterations separating src and dst (>= 0) *)
}

type t = {
  n : int;                         (** number of ops *)
  edges : edge list;
  succs : edge list array;         (** outgoing edges per position *)
  preds : edge list array;         (** incoming edges per position *)
}

val build : latency:(Op.t -> int) -> Loop.t -> t
(** Builds the dependence graph.  [latency] maps an op to its result
    latency on the target machine (so the IR stays machine-independent). *)

type csr = {
  csr_n : int;            (** number of ops *)
  n_edges : int;
  e_src : int array;
  e_dst : int array;
  e_kind : int array;     (** {!kind_code} per edge *)
  e_lat : int array;
  e_dist : int array;
  succ_off : int array;   (** [csr_n + 1] offsets into [succ_edge] *)
  succ_edge : int array;  (** edge indices grouped by source op *)
  pred_off : int array;
  pred_edge : int array;
}
(** Flat int-array (CSR) view of the same graph: edge [i] of [edges] (in
    list order) occupies index [i] of every [e_*] array, and the adjacency
    arrays list edge indices grouped by endpoint.  The scheduling and
    simulation fixpoints iterate these instead of [edge] lists. *)

val to_csr : t -> csr

val kind_code : kind -> int
(** Stable small-int encoding of {!kind} used by [e_kind]
    ([Reg_flow] = 0 … [Serial] = 7). *)

val serial_code : int
val reg_flow_code : int

val intra_iteration : t -> t
(** Restriction to distance-0 edges — the per-iteration DAG consumed by
    list scheduling and DAG statistics.  The distance-0 subgraph is acyclic
    for any valid loop. *)

val has_cycle_at_distance_zero : t -> bool
(** Sanity check: true if the distance-0 subgraph contains a cycle (which
    would indicate a malformed loop or an analysis bug). *)
