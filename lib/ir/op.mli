(** Operations of the three-address loop IR.

    A loop body is a straight-line sequence of operations over virtual
    registers, closed by a backward branch.  Memory operations carry an
    affine reference — base array, per-iteration stride and element offset —
    which is what dependence analysis, unrolling, redundant-load elimination
    and the cache simulator all consume.  Indirect references (address
    computed from loaded data) defeat precise analysis and force conservative
    dependences, exactly as in a real compiler. *)

type reg_class = Int | Flt

type reg = { id : int; cls : reg_class }
(** A virtual register.  Ids are unique within a loop, per class. *)

type mem_kind =
  | Direct    (** affine address: base + elem_size * (stride * i + offset) *)
  | Indirect  (** address depends on loaded data (pointer chasing) *)

type mref = {
  array : int;   (** index into the loop's array table *)
  stride : int;  (** elements advanced per original loop iteration *)
  offset : int;  (** constant element offset *)
  mkind : mem_kind;
}

type branch_kind =
  | Backedge  (** the loop-closing branch *)
  | Exit      (** a conditional early exit out of the loop *)
  | Internal  (** intra-body control flow (if-converted diamond edge) *)

type opcode =
  | Ialu                (** integer add/sub/logical, 1-cycle class *)
  | Imul                (** integer multiply *)
  | Fadd                (** FP add/sub *)
  | Fmul                (** FP multiply *)
  | Fmadd               (** fused multiply-add *)
  | Fdiv                (** FP divide (long latency, unpipelined) *)
  | Load of mref
  | Store of mref
  | Cmp                 (** comparison producing a predicate *)
  | Br of branch_kind
  | Sel                 (** predicated select *)
  | Call                (** opaque call: scheduling barrier *)
  | Mov                 (** register copy — an "implicit" instruction *)

type t = {
  uid : int;            (** position-independent unique id within the loop *)
  opcode : opcode;
  dst : reg option;
  srcs : reg list;
  pred : int option;    (** guarding predicate id, if the op is predicated *)
}

val make : uid:int -> ?dst:reg -> ?srcs:reg list -> ?pred:int -> opcode -> t

val is_memory : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_branch : t -> bool
val is_float : t -> bool
(** FP arithmetic (not FP loads/stores). *)

val is_implicit : t -> bool
(** Compiler-inserted bookkeeping ops: register copies and selects. *)

val mref : t -> mref option
(** The memory reference of a load/store, if any. *)

val guard_reg : t -> reg option
(** The (integer) register holding an op's guarding predicate, if the op
    is predicated.  Predicates live in the integer class by convention;
    this is the one place that convention is encoded. *)

val defs : t -> reg list
val uses : t -> reg list
val operand_count : t -> int
(** Total number of register operands (defs + uses), the paper's
    "number of operands" feature. *)

val pp : Format.formatter -> t -> unit
val pp_reg : Format.formatter -> reg -> unit
val to_string : t -> string
