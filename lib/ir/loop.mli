(** Innermost loops — the unit of optimisation throughout the paper.

    A loop owns a straight-line body (ending in its backward branch), a table
    of the arrays it touches, trip-count knowledge split into what the
    {e compiler} can see ([trip_static]) and what actually happens at run
    time ([trip_actual]), and metadata that feeds feature extraction
    (nest level, source language, early exits). *)

type lang = C | Fortran | Fortran90

type array_info = {
  aname : string;
  elem_size : int;   (** bytes per element (4 or 8) *)
  length : int;      (** number of elements *)
  base : int;        (** base byte address in the simulated address space *)
}

type t = {
  name : string;
  body : Op.t array;        (** includes the closing [Br Backedge] op *)
  arrays : array_info array;
  nest_level : int;         (** 1 = not nested *)
  lang : lang;
  trip_static : int option; (** trip count if the compiler can prove it *)
  trip_actual : int;        (** trip count realised at run time *)
  aliased : bool;
  (** when true the compiler must assume references to {e different} arrays
      may alias (C without restrict / failed points-to analysis);
      Fortran-style semantics set it false *)
  outer_trip : int;         (** times the loop is re-entered (enclosing loops) *)
  exit_prob : float;        (** per-iteration probability an [Exit] branch fires *)
  live_out : Op.reg list;   (** registers live after the loop (e.g. reductions) *)
}

val backedge_index : t -> int
(** Index of the backward branch in [body].  Raises [Invalid_argument] if the
    body has none (a malformed loop). *)

val validate : t -> (unit, string) result
(** Structural well-formedness: body non-empty and closed by a backedge as
    its final op;
    every register use is reachable by a def in the body or is an implicit
    live-in (uses before defs are loop-carried and allowed); memory
    references index existing arrays; predicates used by predicated ops are
    defined by some [Cmp]; trip counts positive. *)

val op_count : t -> int
val float_op_count : t -> int
val branch_count : t -> int
val memory_op_count : t -> int
val load_count : t -> int
val store_count : t -> int
val operand_count : t -> int
val implicit_count : t -> int
val unique_predicates : t -> int
val use_count : t -> int
val def_count : t -> int
val indirect_ref_count : t -> int
val has_early_exit : t -> bool
val has_call : t -> bool

val unrollable : t -> bool
(** Whether the reference compiler's unroller handles this loop: no calls
    and no early exits (as in ORC; the paper trains only on "loops that ORC
    can unroll", §4.6). *)

val code_bytes : t -> int
(** Static code size estimate of the body in bytes, assuming EPIC bundles
    (16 bytes per 3-op bundle) — drives I-cache footprint modelling. *)

val live_in_regs : t -> Op.reg list
(** Registers read before any def in body order (loop invariants and
    loop-carried values entering the first iteration). *)

val max_reg_id : t -> int
(** Largest virtual register id used, across both classes — the renaming
    base for unrolling. *)
