type t = {
  name : string;
  nest_level : int;
  lang : Loop.lang;
  trip_static : int option;
  trip_actual : int;
  aliased : bool;
  outer_trip : int;
  exit_prob : float;
  mutable next_addr : int;
  mutable arrays : Loop.array_info list; (* reversed *)
  mutable ops : Op.t list;               (* reversed *)
  mutable next_reg : int;
  mutable next_uid : int;
  mutable live_out : Op.reg list;
}

let create ?(nest_level = 1) ?(lang = Loop.C) ?trip_static ?aliased ?(outer_trip = 1)
    ?(exit_prob = 0.0) ?(base_addr = 0x10000) ~name ~trip () =
  let trip_static = match trip_static with None -> Some trip | Some ts -> ts in
  let aliased =
    match aliased with
    | Some a -> a
    | None -> (match lang with Loop.C -> true | Loop.Fortran | Loop.Fortran90 -> false)
  in
  {
    name;
    nest_level;
    lang;
    trip_static;
    trip_actual = trip;
    aliased;
    outer_trip;
    exit_prob;
    next_addr = base_addr;
    arrays = [];
    ops = [];
    next_reg = 0;
    next_uid = 0;
    live_out = [];
  }

let align64 n = (n + 63) land lnot 63

let add_array t ?(elem_size = 8) ?(length = 4096) aname =
  let id = List.length t.arrays in
  let base = align64 t.next_addr in
  t.next_addr <- base + (elem_size * length);
  t.arrays <- { Loop.aname; elem_size; length; base } :: t.arrays;
  id

let fresh_reg t cls =
  let id = t.next_reg in
  t.next_reg <- id + 1;
  { Op.id; cls }

let ireg t = fresh_reg t Op.Int
let freg t = fresh_reg t Op.Flt

let append t ?dst ?(srcs = []) ?pred opcode =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let pred = Option.map (fun (r : Op.reg) -> r.Op.id) pred in
  t.ops <- Op.make ~uid ?dst ~srcs ?pred opcode :: t.ops

let load t ?pred ?(mkind = Op.Direct) ?addr ~cls ~array ~stride ~offset () =
  let dst = fresh_reg t cls in
  let srcs = match addr with Some a -> [ a ] | None -> [] in
  append t ~dst ~srcs ?pred (Op.Load { Op.array; stride; offset; mkind });
  dst

let store t ?pred ?(mkind = Op.Direct) ?addr ~array ~stride ~offset src =
  let srcs = src :: (match addr with Some a -> [ a ] | None -> []) in
  append t ~srcs ?pred (Op.Store { Op.array; stride; offset; mkind })

let check_class opname cls srcs =
  List.iter
    (fun (r : Op.reg) ->
      if r.Op.cls <> cls then
        invalid_arg (Printf.sprintf "Builder.%s: operand class mismatch" opname))
    srcs

let arith t opname opcode cls ?pred srcs =
  check_class opname cls srcs;
  let dst = fresh_reg t cls in
  append t ~dst ~srcs ?pred opcode;
  dst

let ialu t ?pred srcs = arith t "ialu" Op.Ialu Op.Int ?pred srcs
let imul t ?pred srcs = arith t "imul" Op.Imul Op.Int ?pred srcs
let fadd t ?pred srcs = arith t "fadd" Op.Fadd Op.Flt ?pred srcs
let fmul t ?pred srcs = arith t "fmul" Op.Fmul Op.Flt ?pred srcs
let fmadd t ?pred srcs = arith t "fmadd" Op.Fmadd Op.Flt ?pred srcs
let fdiv t ?pred srcs = arith t "fdiv" Op.Fdiv Op.Flt ?pred srcs

let accumulate t ?pred ~acc ~op srcs =
  let opcode, cls =
    match op with
    | `Fadd -> (Op.Fadd, Op.Flt)
    | `Fmadd -> (Op.Fmadd, Op.Flt)
    | `Ialu -> (Op.Ialu, Op.Int)
  in
  check_class "accumulate" cls (acc :: srcs);
  append t ~dst:acc ~srcs:(acc :: srcs) ?pred opcode

let mov t ?pred src =
  let dst = fresh_reg t src.Op.cls in
  append t ~dst ~srcs:[ src ] ?pred Op.Mov;
  dst

let assign t ?pred ~dst src =
  if dst.Op.cls <> src.Op.cls then invalid_arg "Builder.assign: operand class mismatch";
  append t ~dst ~srcs:[ src ] ?pred Op.Mov

let sel t ~pred a b =
  if a.Op.cls <> b.Op.cls then invalid_arg "Builder.sel: operand class mismatch";
  let dst = fresh_reg t a.Op.cls in
  append t ~dst ~srcs:[ a; b ] ~pred Op.Sel;
  dst

let cmp t ?pred srcs =
  let dst = fresh_reg t Op.Int in
  append t ~dst ~srcs ?pred Op.Cmp;
  dst

let call t = append t Op.Call

let early_exit t ~pred =
  append t ~srcs:[ pred ] (Op.Br Op.Exit)

let mark_live_out t r = t.live_out <- r :: t.live_out

let finish t =
  (* Canonical loop overhead: induction update, trip compare, back branch. *)
  let iv = ireg t in
  (* Seed the induction variable as loop-carried: iv = iv + 1. *)
  append t ~dst:iv ~srcs:[ iv ] Op.Ialu;
  let p = cmp t [ iv ] in
  append t ~srcs:[ p ] (Op.Br Op.Backedge);
  let loop =
    {
      Loop.name = t.name;
      body = Array.of_list (List.rev t.ops);
      arrays = Array.of_list (List.rev t.arrays);
      nest_level = t.nest_level;
      lang = t.lang;
      trip_static = t.trip_static;
      trip_actual = t.trip_actual;
      aliased = t.aliased;
      outer_trip = t.outer_trip;
      exit_prob = t.exit_prob;
      live_out = t.live_out;
    }
  in
  match Loop.validate loop with
  | Ok () -> loop
  | Error msg -> failwith ("Builder.finish: " ^ msg)
