(** Textual format for loops.

    The paper released its raw loop data so other researchers could apply
    their own learning techniques; this module is that artifact for the
    reproduction: every loop — hand-written, synthetic, or user-authored —
    can be serialised to a small readable DSL and parsed back.  The CLI
    uses it to export suites ([unroll-ml export]) and to compile loops a
    user wrote by hand ([unroll-ml inspect-file]).

    Grammar (one directive per line; [#] starts a comment):

    {v
loop NAME {
  lang fortran            # c | fortran | fortran90
  trip 256                # runtime trip count
  trip_static unknown     # optional; 'unknown' or an integer (default: trip)
  nest 2                  # optional, default 1
  outer 8                 # optional, default 1
  aliased true            # optional, default by language
  exit_prob 0.001         # optional, default 0
  array x 272 elem=8      # name, length, element size
  reg f a                 # declare a live-in register: class f or i
  f xv = load x [1*i+0]
  f r  = fmadd a xv yv    # ops: ialu imul fadd fmul fmadd fdiv cmp sel mov
  store y [1*i+0] r
  i p  = cmp xv
  (p) f z = fmul xv xv    # predication: guard with a previously-defined cmp
  load! t [idx]           # '!' marks an indirect reference (addr operand)
  exit p                  # early exit guarded by p
  call
  liveout r
}
    v}

    The loop overhead (induction update, compare, backedge) is appended
    automatically, as with {!Builder.finish}. *)

val to_string : Loop.t -> string
(** Serialise a loop.  Loops produced by {!Builder} (every loop in this
    repository) round-trip: [parse (to_string l)] is structurally equal to
    [l] up to register numbering. *)

val parse : string -> (Loop.t, string) result
(** Parse one loop definition.  Errors carry a line number and message. *)

val parse_many : string -> (Loop.t list, string) result
(** Parse a file of several loop definitions. *)
