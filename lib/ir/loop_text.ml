(* Serialisation *)

let lang_name = function
  | Loop.C -> "c"
  | Loop.Fortran -> "fortran"
  | Loop.Fortran90 -> "fortran90"

let lang_of_name = function
  | "c" -> Some Loop.C
  | "fortran" -> Some Loop.Fortran
  | "fortran90" -> Some Loop.Fortran90
  | _ -> None

let default_aliased = function
  | Loop.C -> true
  | Loop.Fortran | Loop.Fortran90 -> false

let reg_name (r : Op.reg) =
  match r.Op.cls with
  | Op.Int -> Printf.sprintf "r%d" r.Op.id
  | Op.Flt -> Printf.sprintf "f%d" r.Op.id

let cls_letter = function Op.Int -> "i" | Op.Flt -> "f"

let mref_text (loop : Loop.t) (m : Op.mref) =
  Printf.sprintf "%s [%d*i%+d]" loop.Loop.arrays.(m.Op.array).Loop.aname m.Op.stride
    m.Op.offset

(* The canonical overhead trio appended by Builder.finish / the unroller. *)
let core_of (loop : Loop.t) =
  let body = loop.Loop.body in
  let n = Array.length body in
  let is_iv (op : Op.t) =
    match (op.Op.opcode, op.Op.dst, op.Op.srcs) with
    | Op.Ialu, Some d, [ s ] -> d = s
    | _ -> false
  in
  if
    n >= 3
    && is_iv body.(n - 3)
    && (match body.(n - 2).Op.opcode with Op.Cmp -> true | _ -> false)
    && (match body.(n - 1).Op.opcode with Op.Br Op.Backedge -> true | _ -> false)
  then Array.sub body 0 (n - 3)
  else Array.sub body 0 (max 0 (n - 1))

let op_text loop (op : Op.t) =
  let pred_prefix =
    match op.Op.pred with
    | Some p -> Printf.sprintf "(%s) " (reg_name { Op.id = p; cls = Op.Int })
    | None -> ""
  in
  let bang (m : Op.mref) = if m.Op.mkind = Op.Indirect then "!" else "" in
  let srcs_text srcs = String.concat " " (List.map reg_name srcs) in
  match (op.Op.opcode, op.Op.dst) with
  | Op.Load m, Some d ->
    Printf.sprintf "%s%s %s = load%s %s%s" pred_prefix (cls_letter d.Op.cls) (reg_name d)
      (bang m) (mref_text loop m)
      (match op.Op.srcs with [] -> "" | srcs -> " " ^ srcs_text srcs)
  | Op.Store m, None ->
    Printf.sprintf "%sstore%s %s %s" pred_prefix (bang m) (mref_text loop m)
      (srcs_text op.Op.srcs)
  | Op.Br Op.Exit, None -> Printf.sprintf "%sexit %s" pred_prefix (srcs_text op.Op.srcs)
  | Op.Call, None -> pred_prefix ^ "call"
  | opcode, Some d ->
    let name =
      match opcode with
      | Op.Ialu -> "ialu"
      | Op.Imul -> "imul"
      | Op.Fadd -> "fadd"
      | Op.Fmul -> "fmul"
      | Op.Fmadd -> "fmadd"
      | Op.Fdiv -> "fdiv"
      | Op.Cmp -> "cmp"
      | Op.Sel -> "sel"
      | Op.Mov -> "mov"
      | Op.Load _ | Op.Store _ | Op.Br _ | Op.Call -> assert false
    in
    Printf.sprintf "%s%s %s = %s %s" pred_prefix (cls_letter d.Op.cls) (reg_name d) name
      (srcs_text op.Op.srcs)
  | (Op.Ialu | Op.Imul | Op.Fadd | Op.Fmul | Op.Fmadd | Op.Fdiv | Op.Cmp | Op.Sel
    | Op.Mov | Op.Br _ | Op.Load _), None ->
    pred_prefix ^ "# (malformed op)"

let to_string (loop : Loop.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  add "loop %s {" loop.Loop.name;
  add "  lang %s" (lang_name loop.Loop.lang);
  add "  trip %d" loop.Loop.trip_actual;
  (match loop.Loop.trip_static with
  | None -> add "  trip_static unknown"
  | Some t when t <> loop.Loop.trip_actual -> add "  trip_static %d" t
  | Some _ -> ());
  if loop.Loop.nest_level <> 1 then add "  nest %d" loop.Loop.nest_level;
  if loop.Loop.outer_trip <> 1 then add "  outer %d" loop.Loop.outer_trip;
  if loop.Loop.aliased <> default_aliased loop.Loop.lang then
    add "  aliased %b" loop.Loop.aliased;
  if loop.Loop.exit_prob > 0.0 then add "  exit_prob %g" loop.Loop.exit_prob;
  Array.iter
    (fun (a : Loop.array_info) ->
      add "  array %s %d elem=%d" a.Loop.aname a.Loop.length a.Loop.elem_size)
    loop.Loop.arrays;
  let core = core_of loop in
  (* Live-ins of the core need declarations. *)
  let core_loop = { loop with Loop.body = core } in
  List.iter
    (fun (r : Op.reg) -> add "  reg %s %s" (cls_letter r.Op.cls) (reg_name r))
    (Loop.live_in_regs core_loop);
  Array.iter (fun op -> add "  %s" (op_text loop op)) core;
  List.iter (fun r -> add "  liveout %s" (reg_name r)) loop.Loop.live_out;
  add "}";
  Buffer.contents buf

(* Parsing *)

type pstate = {
  mutable name : string;
  mutable lang : Loop.lang;
  mutable trip : int option;
  mutable trip_static : [ `Default | `Unknown | `Known of int ];
  mutable nest : int;
  mutable outer : int;
  mutable aliased : bool option;
  mutable exit_prob : float;
  mutable arrays : (string * Loop.array_info) list; (* reversed *)
  mutable next_addr : int;
  mutable regs : (string, Op.reg) Hashtbl.t;
  mutable next_reg : int;
  mutable ops : Op.t list; (* reversed *)
  mutable next_uid : int;
  mutable live_out : Op.reg list;
}

let fresh_state () =
  {
    name = "";
    lang = Loop.C;
    trip = None;
    trip_static = `Default;
    nest = 1;
    outer = 1;
    aliased = None;
    exit_prob = 0.0;
    arrays = [];
    next_addr = 0x10000;
    regs = Hashtbl.create 32;
    next_reg = 0;
    next_uid = 0;
    ops = [];
    live_out = [];
  }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let lookup_reg st name =
  match Hashtbl.find_opt st.regs name with
  | Some r -> r
  | None -> fail "unknown register '%s'" name

let declare_reg st cls name =
  if Hashtbl.mem st.regs name then fail "register '%s' declared twice" name;
  let r = { Op.id = st.next_reg; cls } in
  st.next_reg <- st.next_reg + 1;
  Hashtbl.replace st.regs name r;
  r

(* Destination registers: first write declares, later writes reuse (the
   accumulate pattern), with a class check. *)
let dest_reg st cls name =
  match Hashtbl.find_opt st.regs name with
  | Some r ->
    if r.Op.cls <> cls then fail "register '%s' changes class" name;
    r
  | None -> declare_reg st cls name

let array_index st name =
  let rec go i = function
    | [] -> fail "unknown array '%s'" name
    | (n, _) :: rest -> if n = name then i else go (i - 1) rest
  in
  go (List.length st.arrays - 1) st.arrays

let cls_of_letter = function
  | "f" -> Op.Flt
  | "i" -> Op.Int
  | s -> fail "expected register class 'f' or 'i', got '%s'" s

let parse_mref st ~indirect arr_name bracket =
  let array = array_index st arr_name in
  let stride, offset =
    try Scanf.sscanf bracket "[%d*i%d]" (fun s o -> (s, o))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "bad memory reference '%s' (expected [S*i+O])" bracket
  in
  { Op.array; stride; offset; mkind = (if indirect then Op.Indirect else Op.Direct) }

let append st ?dst ?(srcs = []) ?pred opcode =
  let uid = st.next_uid in
  st.next_uid <- uid + 1;
  st.ops <- Op.make ~uid ?dst ~srcs ?pred opcode :: st.ops

let opcode_of_name = function
  | "ialu" -> Some Op.Ialu
  | "imul" -> Some Op.Imul
  | "fadd" -> Some Op.Fadd
  | "fmul" -> Some Op.Fmul
  | "fmadd" -> Some Op.Fmadd
  | "fdiv" -> Some Op.Fdiv
  | "cmp" -> Some Op.Cmp
  | "sel" -> Some Op.Sel
  | "mov" -> Some Op.Mov
  | _ -> None

let parse_op_line st tokens =
  (* Optional predication prefix: (rN) *)
  let pred, tokens =
    match tokens with
    | t :: rest when String.length t >= 3 && t.[0] = '(' && t.[String.length t - 1] = ')' ->
      let pname = String.sub t 1 (String.length t - 2) in
      let r = lookup_reg st pname in
      if r.Op.cls <> Op.Int then fail "predicate '%s' is not an integer register" pname;
      (Some r.Op.id, rest)
    | _ -> (None, tokens)
  in
  match tokens with
  | [ "call" ] -> append st ?pred Op.Call
  | [ "exit"; p ] -> append st ~srcs:[ lookup_reg st p ] ?pred (Op.Br Op.Exit)
  | ("store" | "store!") :: arr :: bracket :: rest ->
    let indirect = List.hd tokens = "store!" in
    let m = parse_mref st ~indirect arr bracket in
    let srcs = List.map (lookup_reg st) rest in
    if srcs = [] then fail "store needs a value operand";
    append st ~srcs ?pred (Op.Store m)
  | cls :: name :: "=" :: ("load" | "load!") :: arr :: bracket :: rest ->
    let cls = cls_of_letter cls in
    let indirect = List.nth tokens 3 = "load!" in
    let m = parse_mref st ~indirect arr bracket in
    let srcs = List.map (lookup_reg st) rest in
    let dst = dest_reg st cls name in
    append st ~dst ~srcs ?pred (Op.Load m)
  | cls :: name :: "=" :: opname :: rest -> begin
    let cls = cls_of_letter cls in
    match opcode_of_name opname with
    | None -> fail "unknown opcode '%s'" opname
    | Some opcode ->
      let srcs = List.map (lookup_reg st) rest in
      let dst = dest_reg st cls name in
      append st ~dst ~srcs ?pred opcode
  end
  | _ -> fail "cannot parse op line: %s" (String.concat " " tokens)

let align64 n = (n + 63) land lnot 63

let parse_line st tokens =
  match tokens with
  | [] -> ()
  | [ "}" ] -> () (* handled by caller *)
  | "lang" :: [ l ] -> begin
    match lang_of_name l with
    | Some lang -> st.lang <- lang
    | None -> fail "unknown language '%s'" l
  end
  | "trip" :: [ n ] -> st.trip <- Some (int_of_string n)
  | "trip_static" :: [ "unknown" ] -> st.trip_static <- `Unknown
  | "trip_static" :: [ n ] -> st.trip_static <- `Known (int_of_string n)
  | "nest" :: [ n ] -> st.nest <- int_of_string n
  | "outer" :: [ n ] -> st.outer <- int_of_string n
  | "aliased" :: [ b ] -> st.aliased <- Some (bool_of_string b)
  | "exit_prob" :: [ p ] -> st.exit_prob <- float_of_string p
  | "array" :: name :: len :: rest ->
    let elem =
      match rest with
      | [] -> 8
      | [ e ] when String.length e > 5 && String.sub e 0 5 = "elem=" ->
        int_of_string (String.sub e 5 (String.length e - 5))
      | _ -> fail "bad array declaration"
    in
    let length = int_of_string len in
    let base = align64 st.next_addr in
    st.next_addr <- base + (elem * length);
    st.arrays <- (name, { Loop.aname = name; elem_size = elem; length; base }) :: st.arrays
  | "reg" :: cls :: [ name ] -> ignore (declare_reg st (cls_of_letter cls) name)
  | "liveout" :: [ name ] -> st.live_out <- lookup_reg st name :: st.live_out
  | _ -> parse_op_line st tokens

let tokenize line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let finish st =
  let trip =
    match st.trip with Some t -> t | None -> fail "missing 'trip' declaration"
  in
  let iv = declare_reg st Op.Int "$iv" in
  append st ~dst:iv ~srcs:[ iv ] Op.Ialu;
  let p = { Op.id = st.next_reg; cls = Op.Int } in
  st.next_reg <- st.next_reg + 1;
  append st ~dst:p ~srcs:[ iv ] Op.Cmp;
  append st ~srcs:[ p ] (Op.Br Op.Backedge);
  let loop =
    {
      Loop.name = st.name;
      body = Array.of_list (List.rev st.ops);
      arrays = Array.of_list (List.rev_map snd st.arrays);
      nest_level = st.nest;
      lang = st.lang;
      trip_static =
        (match st.trip_static with
        | `Default -> Some trip
        | `Unknown -> None
        | `Known t -> Some t);
      trip_actual = trip;
      aliased = Option.value st.aliased ~default:(default_aliased st.lang);
      outer_trip = st.outer;
      exit_prob = st.exit_prob;
      live_out = List.rev st.live_out;
    }
  in
  match Loop.validate loop with
  | Ok () -> loop
  | Error e -> fail "invalid loop: %s" e

let parse_many text =
  let lines = String.split_on_char '\n' text in
  let loops = ref [] in
  let current = ref None in
  try
    List.iteri
      (fun lineno line ->
        let tokens = tokenize line in
        try
          match (tokens, !current) with
          | [], _ -> ()
          | "loop" :: name :: [ "{" ], None ->
            let st = fresh_state () in
            st.name <- name;
            current := Some st
          | "loop" :: _, Some _ -> fail "nested 'loop' (missing '}'?)"
          | [ "}" ], Some st ->
            loops := finish st :: !loops;
            current := None
          | [ "}" ], None -> fail "'}' without an open loop"
          | _, None -> fail "directive outside a loop block"
          | _, Some st -> parse_line st tokens
        with Parse_error msg -> fail "line %d: %s" (lineno + 1) msg)
      lines;
    match !current with
    | Some _ -> Error "unterminated loop block (missing '}')"
    | None -> Ok (List.rev !loops)
  with Parse_error msg -> Error msg

let parse text =
  match parse_many text with
  | Error e -> Error e
  | Ok [ l ] -> Ok l
  | Ok [] -> Error "no loop definition found"
  | Ok _ -> Error "expected exactly one loop definition"
