type kind =
  | Reg_flow
  | Reg_anti
  | Reg_output
  | Mem_flow
  | Mem_anti
  | Mem_output
  | Control
  | Serial

type edge = { src : int; dst : int; dkind : kind; latency : int; distance : int }

type t = {
  n : int;
  edges : edge list;
  succs : edge list array;
  preds : edge list array;
}

let mem_flow_latency = 2
let mem_anti_latency = 0
let mem_output_latency = 1

module RegMap = Map.Make (struct
  type t = Op.reg
  let compare = compare
end)

let dedupe_regs regs =
  List.sort_uniq compare regs

(* Per-op register reads, folding the guard predicate in as a read of the
   integer register that the defining Cmp wrote. *)
let reads_of op =
  let pred_reads =
    match op.Op.pred with
    | Some p -> [ { Op.id = p; cls = Op.Int } ]
    | None -> []
  in
  dedupe_regs (Op.uses op @ pred_reads)

let register_edges body =
  let n = Array.length body in
  let defs_of = ref RegMap.empty in
  for i = 0 to n - 1 do
    List.iter
      (fun r ->
        let cur = Option.value (RegMap.find_opt r !defs_of) ~default:[] in
        defs_of := RegMap.add r (i :: cur) !defs_of)
      (Op.defs body.(i))
  done;
  let defs_of = RegMap.map List.rev !defs_of in
  let edges = ref [] in
  let add src dst dkind latency distance =
    if not (src = dst && distance = 0) then
      edges := { src; dst; dkind; latency; distance } :: !edges
  in
  let last_def defs = List.nth defs (List.length defs - 1) in
  (* Flow and anti dependences, per use. *)
  for u = 0 to n - 1 do
    List.iter
      (fun r ->
        match RegMap.find_opt r defs_of with
        | None -> () (* pure live-in *)
        | Some defs ->
          (* Reaching def: nearest def strictly before [u], else the last def
             of the previous iteration. *)
          let before = List.filter (fun d -> d < u) defs in
          (match List.rev before with
          | d :: _ -> add d u Reg_flow 0 0 (* latency patched by caller *)
          | [] -> add (last_def defs) u Reg_flow 0 1);
          (* Anti: the next def after [u] must wait, else the first def of
             the next iteration. *)
          let after = List.filter (fun d -> d > u) defs in
          (match after with
          | d :: _ -> add u d Reg_anti 0 0
          | [] -> add u (List.hd defs) Reg_anti 0 1))
      (reads_of body.(u))
  done;
  (* Output dependences between successive defs of the same register. *)
  RegMap.iter
    (fun _r defs ->
      let rec chain = function
        | d1 :: (d2 :: _ as rest) ->
          add d1 d2 Reg_output 1 0;
          chain rest
        | [ _ ] | [] -> ()
      in
      chain defs;
      match defs with
      | d1 :: _ :: _ -> add (last_def defs) d1 Reg_output 1 1
      | _ -> ())
    defs_of;
  !edges

(* Memory disambiguation for one ordered pair of references.  Returns the
   dependence direction and distance, or [None] when they provably never
   alias. *)
type alias = No_alias | Same_iter | A_then_b of int | B_then_a of int | Unknown

let classify_pair ~aliased (a : Op.mref) (b : Op.mref) =
  match (a.Op.mkind, b.Op.mkind) with
  | Op.Indirect, _ | _, Op.Indirect -> Unknown
  | Op.Direct, Op.Direct ->
    if a.Op.array <> b.Op.array then (if aliased then Unknown else No_alias)
    else if a.Op.stride = b.Op.stride then begin
      if a.Op.stride = 0 then if a.Op.offset = b.Op.offset then Same_iter else No_alias
      else
        let diff = a.Op.offset - b.Op.offset in
        if diff mod a.Op.stride <> 0 then No_alias
        else
          let d = diff / a.Op.stride in
          if d = 0 then Same_iter else if d > 0 then A_then_b d else B_then_a (-d)
    end
    else Unknown

let mem_kind_of src_is_store dst_is_store =
  match (src_is_store, dst_is_store) with
  | true, false -> (Mem_flow, mem_flow_latency)
  | false, true -> (Mem_anti, mem_anti_latency)
  | true, true -> (Mem_output, mem_output_latency)
  | false, false -> assert false

let memory_edges ~aliased body =
  let n = Array.length body in
  let mem_positions = ref [] in
  for i = n - 1 downto 0 do
    if Op.is_memory body.(i) then mem_positions := i :: !mem_positions
  done;
  let edges = ref [] in
  let add src dst src_store dst_store distance =
    let dkind, latency = mem_kind_of src_store dst_store in
    edges := { src; dst; dkind; latency; distance } :: !edges
  in
  let pairs = !mem_positions in
  List.iteri
    (fun ia pa ->
      List.iteri
        (fun ib pb ->
          if ib > ia then begin
            let a = body.(pa) and b = body.(pb) in
            let sa = Op.is_store a and sb = Op.is_store b in
            if sa || sb then
              match (Op.mref a, Op.mref b) with
              | Some ra, Some rb -> begin
                match classify_pair ~aliased ra rb with
                | No_alias -> ()
                | Same_iter ->
                  add pa pb sa sb 0;
                  (* A stride-0 pair hits the same address every iteration,
                     so the later op also feeds the earlier one next time. *)
                  if ra.Op.stride = 0 then add pb pa sb sa 1
                | A_then_b d -> add pa pb sa sb d
                | B_then_a d -> add pb pa sb sa d
                | Unknown ->
                  (* Conservative: order within the iteration and forbid
                     reordering across one iteration in either direction. *)
                  add pa pb sa sb 0;
                  add pb pa sb sa 1
              end
              | _ -> assert false
          end)
        pairs)
    pairs;
  !edges

let control_edges body =
  let n = Array.length body in
  let edges = ref [] in
  for e = 0 to n - 1 do
    match body.(e).Op.opcode with
    | Op.Br Op.Exit ->
      for j = e + 1 to n - 1 do
        edges := { src = e; dst = j; dkind = Control; latency = 0; distance = 0 } :: !edges
      done
    | _ -> ()
  done;
  !edges

let serial_edges body =
  let n = Array.length body in
  let edges = ref [] in
  (* Calls serialise against everything around them. *)
  for c = 0 to n - 1 do
    match body.(c).Op.opcode with
    | Op.Call ->
      for j = 0 to n - 1 do
        if j < c then
          edges := { src = j; dst = c; dkind = Serial; latency = 1; distance = 0 } :: !edges
        else if j > c then
          edges := { src = c; dst = j; dkind = Serial; latency = 1; distance = 0 } :: !edges
      done
    | _ -> ()
  done;
  (* The backedge delimits the iteration: nothing may schedule after it. *)
  Array.iteri
    (fun i op ->
      match op.Op.opcode with
      | Op.Br Op.Backedge ->
        for j = 0 to n - 1 do
          if j <> i then
            edges := { src = j; dst = i; dkind = Serial; latency = 0; distance = 0 } :: !edges
        done
      | _ -> ())
    body;
  !edges

let build ~latency (loop : Loop.t) =
  let body = loop.Loop.body in
  let n = Array.length body in
  let reg_edges =
    List.map
      (fun e ->
        if e.dkind = Reg_flow then { e with latency = latency body.(e.src) } else e)
      (register_edges body)
  in
  let edges =
    reg_edges
    @ memory_edges ~aliased:loop.Loop.aliased body
    @ control_edges body
    @ serial_edges body
  in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  List.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  { n; edges; succs; preds }

(* Flat int-array (CSR) view of the graph.  The hot fixpoints — modulo
   scheduling's [feasible_ii]/[heights] and the simulator's slack pass —
   iterate these arrays instead of chasing [edge] records through lists.
   Edge indices follow [t.edges] order, so the CSR and the list views
   describe the same edge with the same index. *)

let kind_code = function
  | Reg_flow -> 0
  | Reg_anti -> 1
  | Reg_output -> 2
  | Mem_flow -> 3
  | Mem_anti -> 4
  | Mem_output -> 5
  | Control -> 6
  | Serial -> 7

let serial_code = kind_code Serial
let reg_flow_code = kind_code Reg_flow

type csr = {
  csr_n : int;
  n_edges : int;
  e_src : int array;
  e_dst : int array;
  e_kind : int array;     (* kind_code *)
  e_lat : int array;
  e_dist : int array;
  succ_off : int array;   (* n+1 offsets into succ_edge *)
  succ_edge : int array;  (* edge indices grouped by source *)
  pred_off : int array;
  pred_edge : int array;
}

let to_csr t =
  let n = t.n in
  let m = List.length t.edges in
  let e_src = Array.make m 0
  and e_dst = Array.make m 0
  and e_kind = Array.make m 0
  and e_lat = Array.make m 0
  and e_dist = Array.make m 0 in
  List.iteri
    (fun i e ->
      e_src.(i) <- e.src;
      e_dst.(i) <- e.dst;
      e_kind.(i) <- kind_code e.dkind;
      e_lat.(i) <- e.latency;
      e_dist.(i) <- e.distance)
    t.edges;
  (* Counting sort of edge indices by endpoint, preserving edge order
     within each group. *)
  let group key =
    let off = Array.make (n + 1) 0 in
    for i = 0 to m - 1 do
      off.(key.(i) + 1) <- off.(key.(i) + 1) + 1
    done;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let idx = Array.make m 0 in
    let cursor = Array.copy off in
    for i = 0 to m - 1 do
      let v = key.(i) in
      idx.(cursor.(v)) <- i;
      cursor.(v) <- cursor.(v) + 1
    done;
    (off, idx)
  in
  let succ_off, succ_edge = group e_src in
  let pred_off, pred_edge = group e_dst in
  {
    csr_n = n;
    n_edges = m;
    e_src;
    e_dst;
    e_kind;
    e_lat;
    e_dist;
    succ_off;
    succ_edge;
    pred_off;
    pred_edge;
  }

let intra_iteration t =
  let edges = List.filter (fun e -> e.distance = 0) t.edges in
  let succs = Array.make t.n [] in
  let preds = Array.make t.n [] in
  List.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  { n = t.n; edges; succs; preds }

let has_cycle_at_distance_zero t =
  let color = Array.make t.n 0 in
  (* 0 = white, 1 = grey, 2 = black *)
  let cyclic = ref false in
  let rec visit v =
    if color.(v) = 1 then cyclic := true
    else if color.(v) = 0 then begin
      color.(v) <- 1;
      List.iter (fun e -> if e.distance = 0 then visit e.dst) t.succs.(v);
      color.(v) <- 2
    end
  in
  for v = 0 to t.n - 1 do
    if not !cyclic then visit v
  done;
  !cyclic
