type lang = C | Fortran | Fortran90

type array_info = { aname : string; elem_size : int; length : int; base : int }

type t = {
  name : string;
  body : Op.t array;
  arrays : array_info array;
  nest_level : int;
  lang : lang;
  trip_static : int option;
  trip_actual : int;
  aliased : bool;
  outer_trip : int;
  exit_prob : float;
  live_out : Op.reg list;
}

let backedge_index t =
  let found = ref (-1) in
  Array.iteri
    (fun i op -> match op.Op.opcode with Op.Br Op.Backedge -> found := i | _ -> ())
    t.body;
  if !found < 0 then invalid_arg (Printf.sprintf "Loop %s: no backedge" t.name)
  else !found

let count p t = Array.fold_left (fun acc op -> if p op then acc + 1 else acc) 0 t.body

let op_count t = Array.length t.body
let float_op_count = count Op.is_float
let branch_count = count Op.is_branch
let memory_op_count = count Op.is_memory
let load_count = count Op.is_load
let store_count = count Op.is_store
let implicit_count = count Op.is_implicit

let operand_count t =
  Array.fold_left (fun acc op -> acc + Op.operand_count op) 0 t.body

let use_count t =
  Array.fold_left (fun acc op -> acc + List.length (Op.uses op)) 0 t.body

let def_count t =
  Array.fold_left (fun acc op -> acc + List.length (Op.defs op)) 0 t.body

let unique_predicates t =
  let module IS = Set.Make (Int) in
  let set =
    Array.fold_left
      (fun acc op -> match op.Op.pred with Some p -> IS.add p acc | None -> acc)
      IS.empty t.body
  in
  IS.cardinal set

let indirect_ref_count t =
  count
    (fun op ->
      match Op.mref op with
      | Some { Op.mkind = Op.Indirect; _ } -> true
      | Some _ | None -> false)
    t

let has_early_exit t =
  count (fun op -> match op.Op.opcode with Op.Br Op.Exit -> true | _ -> false) t > 0

let has_call t = count (fun op -> match op.Op.opcode with Op.Call -> true | _ -> false) t > 0

let unrollable t = not (has_call t || has_early_exit t)

let code_bytes t =
  (* Itanium-style: 3 ops per 16-byte bundle. *)
  let bundles = (op_count t + 2) / 3 in
  bundles * 16

let live_in_regs t =
  let module RS = Set.Make (struct
    type t = Op.reg
    let compare = compare
  end) in
  let defined = ref RS.empty in
  let live_in = ref RS.empty in
  Array.iter
    (fun op ->
      List.iter
        (fun r -> if not (RS.mem r !defined) then live_in := RS.add r !live_in)
        (Op.uses op);
      List.iter (fun r -> defined := RS.add r !defined) (Op.defs op))
    t.body;
  RS.elements !live_in

let max_reg_id t =
  Array.fold_left
    (fun acc op ->
      List.fold_left
        (fun acc (r : Op.reg) -> max acc r.Op.id)
        acc
        (Op.defs op @ Op.uses op))
    0 t.body

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt in
  if Array.length t.body = 0 then err "empty body"
  else if
    count (fun op -> match op.Op.opcode with Op.Br Op.Backedge -> true | _ -> false) t <> 1
  then err "body must contain exactly one backedge"
  else if
    (match t.body.(Array.length t.body - 1).Op.opcode with
    | Op.Br Op.Backedge -> false
    | _ -> true)
  then err "backedge must be the last op in the body"
  else if t.trip_actual < 0 then err "trip_actual must be non-negative"
  else if t.outer_trip <= 0 then err "outer_trip must be positive"
  else if t.exit_prob < 0.0 || t.exit_prob >= 1.0 then err "exit_prob out of range"
  else if
    match t.trip_static with Some n -> n < 0 | None -> false
  then err "static trip count must be non-negative"
  else begin
    let bad_mref = ref None in
    Array.iter
      (fun op ->
        match Op.mref op with
        | Some { Op.array; _ } when array < 0 || array >= Array.length t.arrays ->
          bad_mref := Some op.Op.uid
        | Some _ | None -> ())
      t.body;
    match !bad_mref with
    | Some uid -> err "op %d references an out-of-range array" uid
    | None ->
      let module IS = Set.Make (Int) in
      let defined_preds =
        Array.fold_left
          (fun acc op ->
            match (op.Op.opcode, op.Op.dst) with
            | Op.Cmp, Some { Op.id; _ } -> IS.add id acc
            | _ -> acc)
          IS.empty t.body
      in
      let bad_pred = ref None in
      Array.iter
        (fun op ->
          match op.Op.pred with
          | Some p when not (IS.mem p defined_preds) -> bad_pred := Some op.Op.uid
          | Some _ | None -> ())
        t.body;
      (match !bad_pred with
      | Some uid -> err "op %d is guarded by an undefined predicate" uid
      | None -> Ok ())
  end
