(** Statistics over the per-iteration dependence DAG.

    These are the structural loop characteristics from the paper's Table 1
    that require graph analysis: critical-path latency, the partition of the
    body into independent "computations", dependence heights per kind, and
    fan-in.  All heights are latency-weighted longest paths where a node
    contributes the latency of its op. *)

type stats = {
  critical_path : int;
  (** latency of the longest distance-0 dependence chain *)
  computations : int;
  (** number of weakly-connected components of the register-flow DAG —
      the paper's "number of parallel computations in loop" *)
  max_dependence_height : int;
  (** largest critical path over any single computation *)
  avg_dependence_height : float;
  (** mean critical path over computations *)
  max_memory_height : int;
  (** longest chain restricted to memory dependences *)
  max_control_height : int;
  (** longest chain restricted to control dependences *)
  max_fan_in : int;
  (** maximum flow in-degree of any op *)
  avg_fan_in : float;
  (** mean flow in-degree *)
  min_mem_to_mem_distance : int;
  (** smallest positive iteration distance of a memory-to-memory
      dependence; [max_int] when there is none (paper: "-1 if none",
      translated at feature-extraction time) *)
  mem_to_mem_dependences : int;
  (** count of loop-carried memory-to-memory dependences *)
  recurrence_latency : int;
  (** max over loop-carried register flow self-chains of
      ceil(latency / distance) — a lower bound on achievable
      cycles-per-iteration regardless of unrolling *)
}

val analyze : Deps.t -> (int -> int) -> stats
(** [analyze deps op_latency] computes the statistics; [op_latency i] is the
    latency of the op at body position [i]. *)
