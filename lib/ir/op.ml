type reg_class = Int | Flt

type reg = { id : int; cls : reg_class }

type mem_kind = Direct | Indirect

type mref = { array : int; stride : int; offset : int; mkind : mem_kind }

type branch_kind = Backedge | Exit | Internal

type opcode =
  | Ialu
  | Imul
  | Fadd
  | Fmul
  | Fmadd
  | Fdiv
  | Load of mref
  | Store of mref
  | Cmp
  | Br of branch_kind
  | Sel
  | Call
  | Mov

type t = {
  uid : int;
  opcode : opcode;
  dst : reg option;
  srcs : reg list;
  pred : int option;
}

let make ~uid ?dst ?(srcs = []) ?pred opcode = { uid; opcode; dst; srcs; pred }

let is_memory op =
  match op.opcode with Load _ | Store _ -> true
  | Ialu | Imul | Fadd | Fmul | Fmadd | Fdiv | Cmp | Br _ | Sel | Call | Mov -> false

let is_load op = match op.opcode with Load _ -> true | _ -> false
let is_store op = match op.opcode with Store _ -> true | _ -> false
let is_branch op = match op.opcode with Br _ -> true | _ -> false

let is_float op =
  match op.opcode with
  | Fadd | Fmul | Fmadd | Fdiv -> true
  | Ialu | Imul | Load _ | Store _ | Cmp | Br _ | Sel | Call | Mov -> false

let is_implicit op =
  match op.opcode with
  | Mov | Sel -> true
  | Ialu | Imul | Fadd | Fmul | Fmadd | Fdiv | Load _ | Store _ | Cmp | Br _ | Call -> false

let mref op = match op.opcode with Load r | Store r -> Some r | _ -> None

let guard_reg op = Option.map (fun p -> { id = p; cls = Int }) op.pred

let defs op = match op.dst with None -> [] | Some r -> [ r ]
let uses op = op.srcs

let operand_count op = List.length (defs op) + List.length (uses op)

let pp_reg fmt r =
  match r.cls with
  | Int -> Format.fprintf fmt "r%d" r.id
  | Flt -> Format.fprintf fmt "f%d" r.id

let opcode_name = function
  | Ialu -> "ialu"
  | Imul -> "imul"
  | Fadd -> "fadd"
  | Fmul -> "fmul"
  | Fmadd -> "fmadd"
  | Fdiv -> "fdiv"
  | Load _ -> "load"
  | Store _ -> "store"
  | Cmp -> "cmp"
  | Br Backedge -> "br.loop"
  | Br Exit -> "br.exit"
  | Br Internal -> "br.int"
  | Sel -> "sel"
  | Call -> "call"
  | Mov -> "mov"

let pp_mref fmt { array; stride; offset; mkind } =
  match mkind with
  | Direct -> Format.fprintf fmt "A%d[%d*i%+d]" array stride offset
  | Indirect -> Format.fprintf fmt "A%d[*]" array

let pp fmt op =
  (match op.pred with
  | Some p -> Format.fprintf fmt "(p%d) " p
  | None -> ());
  (match op.dst with
  | Some d -> Format.fprintf fmt "%a = " pp_reg d
  | None -> ());
  Format.fprintf fmt "%s" (opcode_name op.opcode);
  (match mref op with
  | Some r -> Format.fprintf fmt " %a" pp_mref r
  | None -> ());
  List.iteri
    (fun i r ->
      Format.fprintf fmt (if i = 0 then " %a" else ", %a") pp_reg r)
    op.srcs

let to_string op = Format.asprintf "%a" pp op
