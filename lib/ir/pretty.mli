(** Human-readable rendering of loops and dependence graphs. *)

val pp_loop : Format.formatter -> Loop.t -> unit
val loop_to_string : Loop.t -> string

val pp_deps : Format.formatter -> Deps.t -> unit
(** One line per edge: positions, kind, latency, distance. *)
