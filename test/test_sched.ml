(* Tests for schedulers and the register allocator. *)

let machine = Machine.itanium2

let kernels_for_test =
  List.map (fun (name, maker) -> (name, maker ~name ~trip:64)) Kernels.all

let test_list_sched_validates () =
  List.iter
    (fun (name, loop) ->
      let s = List_sched.schedule machine loop in
      match Schedule.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    kernels_for_test

let test_list_sched_respects_res_bound () =
  List.iter
    (fun (name, loop) ->
      let s = List_sched.schedule machine loop in
      Alcotest.(check bool)
        (name ^ " length >= res bound")
        true
        (s.Schedule.length >= Machine.res_cycles machine loop.Loop.body))
    kernels_for_test

let test_list_sched_backedge_last () =
  List.iter
    (fun (name, loop) ->
      let s = List_sched.schedule machine loop in
      let be = Loop.backedge_index loop in
      let max_cycle = Array.fold_left max 0 s.Schedule.assignment in
      Alcotest.(check int) (name ^ " backedge in final cycle") max_cycle
        s.Schedule.assignment.(be))
    kernels_for_test

let test_list_sched_latency_respected () =
  let loop = Kernels.long_latency_chain ~name:"s_chain" ~trip:32 in
  let s = List_sched.schedule machine loop in
  (* chain: load(3) + 5 fmul(4) + store must span at least 23 issue cycles *)
  Alcotest.(check bool) "span covers chain" true (s.Schedule.length >= 23)

let test_list_sched_unrolled_validates () =
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun f ->
          let u = Unroll.run loop f in
          let s = List_sched.schedule machine u.Unroll.kernel in
          match Schedule.validate s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s u=%d: %s" name f e)
        [ 2; 8 ])
    kernels_for_test

let test_list_sched_amortizes () =
  (* Per-original-iteration issue length shrinks with unrolling for an
     ILP-rich loop. *)
  let loop = Kernels.daxpy ~name:"s_daxpy" ~trip:64 in
  let len f =
    let u = Unroll.run loop f in
    let s = List_sched.schedule machine u.Unroll.kernel in
    float_of_int s.Schedule.length /. float_of_int f
  in
  Alcotest.(check bool) "u4 cheaper per iteration than u1" true (len 4 < len 1)

(* --- Modulo scheduling --- *)

let test_mii_ddot () =
  let loop = Kernels.ddot ~name:"m_ddot" ~trip:64 in
  Alcotest.(check int) "RecMII = fadd latency" machine.Machine.lat_fadd
    (Modulo_sched.rec_mii machine loop);
  Alcotest.(check bool) "ResMII <= RecMII here" true
    (Modulo_sched.res_mii machine loop <= machine.Machine.lat_fadd)

let test_mii_daxpy_resource () =
  let loop = Kernels.daxpy ~name:"m_daxpy" ~trip:64 in
  (* 3 memory ops on 2 M units: ResMII 2. *)
  Alcotest.(check int) "ResMII" 2 (Modulo_sched.res_mii machine loop)

let test_modulo_achieves_mii_ddot () =
  let loop = Kernels.ddot ~name:"m_ddot2" ~trip:64 in
  match Modulo_sched.schedule machine loop with
  | None -> Alcotest.fail "ddot should pipeline"
  | Some s -> begin
    match s.Schedule.kind with
    | Schedule.Pipelined { ii; _ } ->
      Alcotest.(check int) "II = RecMII" machine.Machine.lat_fadd ii
    | Schedule.Straight -> Alcotest.fail "expected pipelined"
  end

let test_modulo_validates () =
  List.iter
    (fun (name, loop) ->
      match Modulo_sched.schedule machine loop with
      | None -> ()
      | Some s -> begin
        match Schedule.validate s with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" name e
      end)
    kernels_for_test

let test_modulo_refuses_calls_exits () =
  let call_loop = Kernels.call_in_loop ~name:"m_call" ~trip:64 in
  let exit_loop = Kernels.early_exit_search ~name:"m_exit" ~trip:64 in
  Alcotest.(check bool) "no SWP for calls" true
    (Modulo_sched.schedule machine call_loop = None);
  Alcotest.(check bool) "no SWP for exits" true
    (Modulo_sched.schedule machine exit_loop = None)

let test_modulo_beats_straight_ddot () =
  (* The whole point of SWP: ddot's steady state reaches RecMII per
     iteration, far below the straight schedule's span. *)
  let loop = Kernels.ddot ~name:"m_win" ~trip:64 in
  let straight = List_sched.schedule machine loop in
  match Modulo_sched.schedule machine loop with
  | None -> Alcotest.fail "should pipeline"
  | Some s ->
    Alcotest.(check bool) "II < straight span" true
      (Schedule.ii s < straight.Schedule.length)

let test_modulo_register_pressure_backoff () =
  (* A very wide unrolled FP loop cannot hold all rotating values in 24
     registers at a tight II; the scheduler must either raise II or give
     up — but never return an invalid schedule. *)
  let loop = Kernels.fir8 ~name:"m_fir" ~trip:64 in
  let u = Unroll.run loop 8 in
  match Modulo_sched.schedule machine u.Unroll.kernel with
  | None -> ()
  | Some s ->
    Alcotest.(check bool) "fits rotating register files" true
      (s.Schedule.int_pressure <= machine.Machine.rot_int_regs
      && s.Schedule.fp_pressure <= machine.Machine.rot_fp_regs)

(* --- Regalloc --- *)

let test_pressure_positive () =
  let loop = Kernels.fir8 ~name:"ra_fir" ~trip:64 in
  let s = List_sched.schedule machine loop in
  let int_p, fp_p = Regalloc.pressure s in
  Alcotest.(check bool) "some fp pressure" true (fp_p > 0);
  Alcotest.(check bool) "some int pressure" true (int_p > 0)

let test_allocate_within_limits_or_spills () =
  List.iter
    (fun (name, loop) ->
      List.iter
        (fun f ->
          let u = Unroll.run loop f in
          let s =
            Regalloc.allocate ~sched:(List_sched.schedule machine) u.Unroll.kernel
          in
          (match Schedule.validate s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s u=%d: %s" name f e);
          if s.Schedule.spills = 0 then begin
            Alcotest.(check bool)
              (Printf.sprintf "%s u=%d pressure ok" name f)
              true
              (s.Schedule.int_pressure <= machine.Machine.int_regs
              && s.Schedule.fp_pressure <= machine.Machine.fp_regs)
          end)
        [ 1; 8 ])
    kernels_for_test

let test_spill_code_inserted () =
  (* Force pressure: a machine with almost no FP registers. *)
  let tiny = { machine with Machine.fp_regs = 4; int_regs = 16 } in
  let loop = Kernels.fir8 ~name:"ra_spill" ~trip:64 in
  let u = Unroll.run loop 4 in
  let s = Regalloc.allocate ~sched:(List_sched.schedule tiny) u.Unroll.kernel in
  Alcotest.(check bool) "spills happened" true (s.Schedule.spills > 0);
  let has_spill_array =
    Array.exists
      (fun (a : Loop.array_info) -> a.Loop.aname = "$spill")
      s.Schedule.loop.Loop.arrays
  in
  Alcotest.(check bool) "spill slots allocated" true has_spill_array;
  match Schedule.validate s with Ok () -> () | Error e -> Alcotest.fail e

let test_spill_lowers_pressure () =
  let tiny = { machine with Machine.fp_regs = 6 } in
  let loop = Kernels.fir8 ~name:"ra_lower" ~trip:64 in
  let u = Unroll.run loop 2 in
  let before = List_sched.schedule tiny u.Unroll.kernel in
  let _, fp_before = Regalloc.pressure before in
  let s = Regalloc.allocate ~sched:(List_sched.schedule tiny) u.Unroll.kernel in
  Alcotest.(check bool) "pressure reduced by spilling" true
    (s.Schedule.fp_pressure < fp_before || s.Schedule.spills > 0)

(* --- QCheck --- *)

let synth_gen =
  QCheck.Gen.(
    let* seed = 0 -- 30000 in
    let* f = 1 -- 8 in
    let rng = Rng.create seed in
    let profile = if seed mod 3 = 0 then Synth.int_pointer else Synth.fp_numeric in
    let l = Synth.generate rng profile ~name:(Printf.sprintf "qs%d" seed) in
    return (l, f))

let prop_list_schedule_valid =
  QCheck.Test.make ~count:80 ~name:"list schedules of random unrolled loops validate"
    (QCheck.make synth_gen)
    (fun (l, f) ->
      let u = Unroll.run l f in
      let kernel = (Rle.run u.Unroll.kernel).Rle.loop in
      let s = Regalloc.allocate ~sched:(List_sched.schedule machine) kernel in
      match Schedule.validate s with Ok () -> true | Error _ -> false)

let prop_modulo_schedule_valid =
  QCheck.Test.make ~count:40 ~name:"modulo schedules of random loops validate"
    (QCheck.make synth_gen)
    (fun (l, _) ->
      match Modulo_sched.schedule machine l with
      | None -> true
      | Some s -> (
        match Schedule.validate s with Ok () -> true | Error _ -> false))

let prop_modulo_ii_at_least_mii =
  QCheck.Test.make ~count:40 ~name:"II >= max(ResMII, RecMII)"
    (QCheck.make synth_gen)
    (fun (l, _) ->
      match Modulo_sched.schedule machine l with
      | None -> true
      | Some s -> (
        match s.Schedule.kind with
        | Schedule.Pipelined { ii; _ } ->
          ii >= Modulo_sched.res_mii machine l && ii >= Modulo_sched.rec_mii machine l
        | Schedule.Straight -> false))

let suite =
  [
    ("list sched validates", `Quick, test_list_sched_validates);
    ("list sched res bound", `Quick, test_list_sched_respects_res_bound);
    ("list sched backedge last", `Quick, test_list_sched_backedge_last);
    ("list sched latency", `Quick, test_list_sched_latency_respected);
    ("list sched unrolled", `Quick, test_list_sched_unrolled_validates);
    ("list sched amortizes", `Quick, test_list_sched_amortizes);
    ("mii ddot", `Quick, test_mii_ddot);
    ("mii daxpy resource", `Quick, test_mii_daxpy_resource);
    ("modulo achieves mii", `Quick, test_modulo_achieves_mii_ddot);
    ("modulo validates", `Quick, test_modulo_validates);
    ("modulo refuses calls/exits", `Quick, test_modulo_refuses_calls_exits);
    ("modulo beats straight", `Quick, test_modulo_beats_straight_ddot);
    ("modulo pressure backoff", `Quick, test_modulo_register_pressure_backoff);
    ("regalloc pressure", `Quick, test_pressure_positive);
    ("regalloc limits or spills", `Quick, test_allocate_within_limits_or_spills);
    ("regalloc spill code", `Quick, test_spill_code_inserted);
    ("regalloc lowers pressure", `Quick, test_spill_lowers_pressure);
    QCheck_alcotest.to_alcotest prop_list_schedule_valid;
    QCheck_alcotest.to_alcotest prop_modulo_schedule_valid;
    QCheck_alcotest.to_alcotest prop_modulo_ii_at_least_mii;
  ]
