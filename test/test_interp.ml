(* Semantic equivalence: the reference interpreter checks that unrolling
   (at every factor) and redundant-load/dead-store elimination preserve a
   loop's observable behaviour — final memory image and live-out register
   values.  This is the strongest correctness statement in the repository:
   it exercises register renaming, loop-carried value threading, remainder
   phase arithmetic, memory-offset rewriting and RLE's alias reasoning all
   at once. *)

let run_original loop =
  let st = Interp.fresh_state () in
  let out = Interp.run st loop ~trips:loop.Loop.trip_actual ~phase:0 in
  (st, out)

let check_equiv name (loop : Loop.t) transformed_state =
  let original_state, _ = run_original loop in
  if not (Interp.equivalent original_state transformed_state loop.Loop.live_out) then
    Alcotest.failf "%s: transformed loop is not observationally equivalent" name

let test_unroll_preserves_kernels () =
  List.iter
    (fun (name, maker) ->
      List.iter
        (fun trip ->
          let loop = maker ~name ~trip in
          List.iter
            (fun f ->
              let u = Unroll.run loop f in
              let st = Interp.fresh_state () in
              ignore (Interp.run_unrolled st u);
              check_equiv (Printf.sprintf "%s trip=%d u=%d" name trip f) loop st)
            [ 2; 3; 5; 8 ])
        [ 5; 16; 33 ])
    Kernels.all

let test_rle_preserves_kernels () =
  List.iter
    (fun (name, maker) ->
      let loop = maker ~name ~trip:24 in
      List.iter
        (fun f ->
          let u = Unroll.run loop f in
          let r = Rle.run u.Unroll.kernel in
          let u' = { u with Unroll.kernel = r.Rle.loop } in
          let st = Interp.fresh_state () in
          ignore (Interp.run_unrolled st u');
          check_equiv (Printf.sprintf "%s rle u=%d" name f) loop st)
        [ 2; 4; 8 ])
    Kernels.all

let test_interp_deterministic () =
  let loop = Kernels.stencil5 ~name:"i_det" ~trip:40 in
  let s1, o1 = run_original loop in
  let s2, o2 = run_original loop in
  Alcotest.(check bool) "same outcome" true (o1 = o2);
  Alcotest.(check bool) "same state" true
    (Interp.equivalent s1 s2 loop.Loop.live_out)

let test_interp_writes_memory () =
  let loop = Kernels.dcopy ~name:"i_mem" ~trip:10 in
  let st, out = run_original loop in
  Alcotest.(check int) "ran all trips" 10 out.Interp.iterations_run;
  Alcotest.(check bool) "not exited" false out.Interp.exited_early;
  Alcotest.(check int) "one store per iteration" 10 (List.length (Interp.memory_image st))

let test_interp_early_exit () =
  (* With a deterministic threshold some iteration eventually fires the
     exit; both the original and every unrolled version must agree on the
     final state. *)
  let loop = Kernels.early_exit_search ~name:"i_exit" ~trip:500 in
  let _, out = run_original loop in
  if out.Interp.exited_early then begin
    List.iter
      (fun f ->
        let u = Unroll.run loop f in
        let st = Interp.fresh_state () in
        let out' = Interp.run_unrolled st u in
        Alcotest.(check bool) "unrolled also exits" true out'.Interp.exited_early;
        check_equiv (Printf.sprintf "exit u=%d" f) loop st)
      [ 2; 4; 8 ]
  end

let test_interp_reduction_value_flows () =
  let loop = Kernels.ddot ~name:"i_red" ~trip:20 in
  let acc = List.hd loop.Loop.live_out in
  let st, _ = run_original loop in
  let v_orig = Interp.register_value st acc in
  let u = Unroll.run loop 4 in
  let st' = Interp.fresh_state () in
  ignore (Interp.run_unrolled st' u);
  Alcotest.(check (float 0.0)) "accumulator identical" v_orig
    (Interp.register_value st' acc)

(* Property test over random synthetic loops: the full transformation
   pipeline (unroll + RLE) is observationally equivalent to the original.
   Trip counts are capped so each case runs in microseconds. *)
let gen =
  QCheck.Gen.(
    let* seed = 0 -- 60000 in
    let* f = 1 -- 8 in
    let rng = Rng.create seed in
    let profile =
      match seed mod 4 with
      | 0 -> Synth.fp_numeric
      | 1 -> Synth.int_pointer
      | 2 -> Synth.media
      | _ -> Synth.scientific_c
    in
    let l = Synth.generate rng profile ~name:(Printf.sprintf "qi%d" seed) in
    let trip = 1 + (seed mod 41) in
    let l = { l with Loop.trip_actual = trip; trip_static = Option.map (fun _ -> trip) l.Loop.trip_static } in
    return (l, f))

let prop_pipeline_equivalent =
  QCheck.Test.make ~count:300 ~name:"unroll + RLE observationally equivalent"
    (QCheck.make gen)
    (fun (loop, f) ->
      let u = Unroll.run loop f in
      let r = Rle.run u.Unroll.kernel in
      let u = { u with Unroll.kernel = r.Rle.loop } in
      let st_orig = Interp.fresh_state () in
      ignore (Interp.run st_orig loop ~trips:loop.Loop.trip_actual ~phase:0);
      let st_new = Interp.fresh_state () in
      ignore (Interp.run_unrolled st_new u);
      Interp.equivalent st_orig st_new loop.Loop.live_out)

let suite =
  [
    ("interp deterministic", `Quick, test_interp_deterministic);
    ("interp writes memory", `Quick, test_interp_writes_memory);
    ("interp early exit", `Quick, test_interp_early_exit);
    ("interp reduction flows", `Quick, test_interp_reduction_value_flows);
    ("unroll preserves kernels", `Quick, test_unroll_preserves_kernels);
    ("rle preserves kernels", `Quick, test_rle_preserves_kernels);
    QCheck_alcotest.to_alcotest prop_pipeline_equivalent;
  ]
