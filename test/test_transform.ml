(* Tests for loop transformations: unrolling and redundant-load/dead-store
   elimination. *)

let machine = Machine.itanium2
let latency op = Machine.latency machine op

let test_unroll_identity () =
  let l = Kernels.daxpy ~name:"u1" ~trip:100 in
  let u = Unroll.run l 1 in
  Alcotest.(check int) "factor" 1 u.Unroll.factor;
  Alcotest.(check int) "kernel trips" 100 u.Unroll.kernel_trips;
  Alcotest.(check bool) "no remainder" true (u.Unroll.remainder = None);
  Alcotest.(check int) "same ops" (Loop.op_count l) (Loop.op_count u.Unroll.kernel)

let test_unroll_out_of_range () =
  let l = Kernels.daxpy ~name:"u_bad" ~trip:100 in
  Alcotest.(check bool) "rejects 0" true
    (try ignore (Unroll.run l 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects 9" true
    (try ignore (Unroll.run l 9); false with Invalid_argument _ -> true)

let test_unroll_op_count () =
  let l = Kernels.daxpy ~name:"u4" ~trip:100 in
  let u = Unroll.run l 4 in
  (* 4 ops core * 4 replicas + 3 overhead = 19 *)
  Alcotest.(check int) "unrolled ops" 19 (Loop.op_count u.Unroll.kernel)

let test_unroll_mref_rewrite () =
  let l = Kernels.daxpy ~name:"u_mref" ~trip:100 in
  let u = Unroll.run l 4 in
  let offsets = ref [] in
  Array.iter
    (fun op ->
      match Op.mref op with
      | Some m when Op.is_load op && m.Op.array = 0 ->
        Alcotest.(check int) "stride scaled" 4 m.Op.stride;
        offsets := m.Op.offset :: !offsets
      | _ -> ())
    u.Unroll.kernel.Loop.body;
  Alcotest.(check (list int)) "per-replica offsets" [ 0; 1; 2; 3 ]
    (List.sort compare !offsets)

let test_unroll_trip_arithmetic () =
  let l = Kernels.daxpy ~name:"u_trip" ~trip:103 in
  let u = Unroll.run l 4 in
  Alcotest.(check int) "kernel trips" 25 u.Unroll.kernel_trips;
  Alcotest.(check int) "remainder trips" 3 u.Unroll.remainder_trips;
  Alcotest.(check bool) "remainder exists" true (u.Unroll.remainder <> None);
  Alcotest.(check int) "total iterations preserved" 103
    ((u.Unroll.kernel_trips * 4) + u.Unroll.remainder_trips)

let test_unroll_divisible_no_remainder () =
  let l = Kernels.daxpy ~name:"u_div" ~trip:128 in
  let u = Unroll.run l 8 in
  Alcotest.(check bool) "no remainder when divisible and known" true
    (u.Unroll.remainder = None);
  Alcotest.(check int) "kernel trips" 16 u.Unroll.kernel_trips

let test_unroll_unknown_trip_remainder () =
  let l = Kernels.daxpy_unknown_trip ~name:"u_unk" ~trip:128 in
  let u = Unroll.run l 8 in
  (* Even though 128 is divisible, the compiler cannot prove it. *)
  Alcotest.(check bool) "remainder code present" true (u.Unroll.remainder <> None);
  Alcotest.(check int) "runtime remainder trips" 0 u.Unroll.remainder_trips

let test_unroll_small_trip () =
  let l = Kernels.daxpy ~name:"u_small" ~trip:3 in
  let u = Unroll.run l 8 in
  Alcotest.(check int) "kernel never runs" 0 u.Unroll.kernel_trips;
  Alcotest.(check int) "all in remainder" 3 u.Unroll.remainder_trips

let test_unroll_kernel_validates () =
  List.iter
    (fun (name, maker) ->
      let l = maker ~name ~trip:64 in
      List.iter
        (fun f ->
          let u = Unroll.run l f in
          (match Loop.validate u.Unroll.kernel with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s u=%d: %s" name f e);
          Alcotest.(check bool)
            (Printf.sprintf "%s u=%d acyclic" name f)
            false
            (Deps.has_cycle_at_distance_zero
               (Deps.build ~latency u.Unroll.kernel)))
        [ 2; 3; 8 ])
    Kernels.all

let test_unroll_carried_register () =
  let l = Kernels.ddot ~name:"u_acc" ~trip:64 in
  let acc =
    match l.Loop.live_out with [ r ] -> r | _ -> Alcotest.fail "one live-out"
  in
  let u = Unroll.run l 4 in
  (* The accumulator keeps a serial chain: exactly one op defines the
     original register (the last replica), and the kernel still carries it. *)
  let defs_of_acc =
    Array.to_list u.Unroll.kernel.Loop.body
    |> List.filter (fun (op : Op.t) -> List.mem acc (Op.defs op))
  in
  Alcotest.(check int) "one def of original acc" 1 (List.length defs_of_acc);
  let deps = Deps.build ~latency u.Unroll.kernel in
  Alcotest.(check bool) "still a recurrence" true
    (List.exists
       (fun (e : Deps.edge) -> e.Deps.dkind = Deps.Reg_flow && e.Deps.distance = 1)
       deps.Deps.edges)

let test_unroll_overhead_merged () =
  let l = Kernels.daxpy ~name:"u_ovh" ~trip:64 in
  let u = Unroll.run l 8 in
  Alcotest.(check int) "one backedge" 1 (Loop.branch_count u.Unroll.kernel)

let test_unroll_exit_replicated () =
  let l = Kernels.early_exit_search ~name:"u_exit" ~trip:64 in
  let u = Unroll.run l 4 in
  (* 4 exit branches + 1 backedge *)
  Alcotest.(check int) "branches" 5 (Loop.branch_count u.Unroll.kernel)

let test_unroll_code_growth () =
  let l = Kernels.stencil5 ~name:"u_code" ~trip:64 in
  let u2 = Unroll.run l 2 and u8 = Unroll.run l 8 in
  Alcotest.(check bool) "code grows" true (u8.Unroll.code_bytes > u2.Unroll.code_bytes)

(* --- RLE --- *)

let test_rle_stencil_reuse () =
  let l = Kernels.stencil3 ~name:"r_st3" ~trip:64 in
  let u = Unroll.run l 4 in
  let r = Rle.run u.Unroll.kernel in
  (* Replicas k>=1 reload offsets already loaded by replica k-1: two loads
     saved per later replica = 6. *)
  Alcotest.(check int) "loads eliminated" 6 r.Rle.loads_eliminated;
  Alcotest.(check int) "no dead stores" 0 r.Rle.stores_eliminated;
  match Loop.validate r.Rle.loop with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_rle_rolled_stencil_nothing () =
  let l = Kernels.stencil3 ~name:"r_st1" ~trip:64 in
  let r = Rle.run l in
  Alcotest.(check int) "nothing to eliminate rolled" 0 r.Rle.loads_eliminated

let test_rle_store_forwarding () =
  (* store a[i] then load a[i] in the same iteration: load collapses. *)
  let b = Builder.create ~lang:Loop.Fortran ~name:"r_fwd" ~trip:32 () in
  let a = Builder.add_array b "a" in
  let x = Builder.freg b in
  Builder.store b ~array:a ~stride:1 ~offset:0 x;
  let v = Builder.load b ~cls:Op.Flt ~array:a ~stride:1 ~offset:0 () in
  let w = Builder.fmul b [ v; v ] in
  Builder.store b ~array:a ~stride:1 ~offset:1 w;
  let l = Builder.finish b in
  let r = Rle.run l in
  Alcotest.(check int) "forwarded" 1 r.Rle.loads_eliminated

let test_rle_aliasing_blocks () =
  (* In a may-alias (C) loop an intervening store to another array kills
     the available load. *)
  let build aliased =
    let b = Builder.create ~lang:Loop.C ~aliased ~name:"r_alias" ~trip:32 () in
    let x = Builder.add_array b "x" in
    let y = Builder.add_array b "y" in
    let v1 = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
    Builder.store b ~array:y ~stride:1 ~offset:0 v1;
    let v2 = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
    Builder.store b ~array:y ~stride:1 ~offset:1 v2;
    Builder.finish b
  in
  let r_alias = Rle.run (build true) in
  let r_clean = Rle.run (build false) in
  Alcotest.(check int) "aliased keeps the reload" 0 r_alias.Rle.loads_eliminated;
  Alcotest.(check int) "non-aliased eliminates" 1 r_clean.Rle.loads_eliminated

let test_rle_dead_store () =
  (* Two stores to the same stride-0 slot, no read between: first is dead. *)
  let b = Builder.create ~lang:Loop.Fortran ~name:"r_dse" ~trip:32 () in
  let a = Builder.add_array b "a" in
  let x = Builder.freg b and y = Builder.freg b in
  Builder.store b ~array:a ~stride:0 ~offset:0 x;
  Builder.store b ~array:a ~stride:0 ~offset:0 y;
  let l = Builder.finish b in
  let r = Rle.run l in
  Alcotest.(check int) "dead store removed" 1 r.Rle.stores_eliminated

let test_rle_exit_blocks_dse () =
  (* An early exit between the stores makes the first one observable. *)
  let b = Builder.create ~lang:Loop.C ~name:"r_dse_exit" ~trip:32 ~exit_prob:0.01 () in
  let a = Builder.add_array b "a" in
  let x = Builder.freg b and y = Builder.freg b in
  Builder.store b ~array:a ~stride:0 ~offset:0 x;
  let v = Builder.load b ~cls:Op.Int ~array:a ~stride:1 ~offset:1 () in
  let p = Builder.cmp b [ v ] in
  Builder.early_exit b ~pred:p;
  Builder.store b ~array:a ~stride:0 ~offset:0 y;
  let l = Builder.finish b in
  let r = Rle.run l in
  Alcotest.(check int) "exit keeps store" 0 r.Rle.stores_eliminated

let test_rle_predicated_untouched () =
  let b = Builder.create ~lang:Loop.Fortran ~name:"r_pred" ~trip:32 () in
  let a = Builder.add_array b "a" in
  let v1 = Builder.load b ~cls:Op.Flt ~array:a ~stride:1 ~offset:0 () in
  let p = Builder.cmp b [ v1 ] in
  let v2 = Builder.load b ~pred:p ~cls:Op.Flt ~array:a ~stride:1 ~offset:0 () in
  Builder.store b ~array:a ~stride:1 ~offset:1 v2;
  let l = Builder.finish b in
  let r = Rle.run l in
  Alcotest.(check int) "predicated load kept" 0 r.Rle.loads_eliminated

(* --- QCheck: unrolling invariants over random loops --- *)

let loop_and_factor_gen =
  QCheck.Gen.(
    let* seed = 0 -- 50000 in
    let* f = 1 -- 8 in
    let rng = Rng.create seed in
    let profile = if seed mod 2 = 0 then Synth.fp_numeric else Synth.int_pointer in
    return (Synth.generate rng profile ~name:(Printf.sprintf "qu%d" seed), f))

let prop_unroll_valid =
  QCheck.Test.make ~count:150 ~name:"unrolled kernels validate"
    (QCheck.make loop_and_factor_gen)
    (fun (l, f) ->
      let u = Unroll.run l f in
      (match Loop.validate u.Unroll.kernel with Ok () -> true | Error _ -> false)
      && (u.Unroll.kernel_trips * f) + u.Unroll.remainder_trips = l.Loop.trip_actual)

let prop_rle_only_shrinks =
  QCheck.Test.make ~count:150 ~name:"RLE never grows the body"
    (QCheck.make loop_and_factor_gen)
    (fun (l, f) ->
      let u = Unroll.run l f in
      let r = Rle.run u.Unroll.kernel in
      Loop.op_count r.Rle.loop <= Loop.op_count u.Unroll.kernel
      && Loop.store_count r.Rle.loop
         = Loop.store_count u.Unroll.kernel - r.Rle.stores_eliminated)

let suite =
  [
    ("unroll identity", `Quick, test_unroll_identity);
    ("unroll out of range", `Quick, test_unroll_out_of_range);
    ("unroll op count", `Quick, test_unroll_op_count);
    ("unroll mref rewrite", `Quick, test_unroll_mref_rewrite);
    ("unroll trip arithmetic", `Quick, test_unroll_trip_arithmetic);
    ("unroll divisible", `Quick, test_unroll_divisible_no_remainder);
    ("unroll unknown trip", `Quick, test_unroll_unknown_trip_remainder);
    ("unroll small trip", `Quick, test_unroll_small_trip);
    ("unroll kernels validate", `Quick, test_unroll_kernel_validates);
    ("unroll carried register", `Quick, test_unroll_carried_register);
    ("unroll overhead merged", `Quick, test_unroll_overhead_merged);
    ("unroll exit replicated", `Quick, test_unroll_exit_replicated);
    ("unroll code growth", `Quick, test_unroll_code_growth);
    ("rle stencil reuse", `Quick, test_rle_stencil_reuse);
    ("rle rolled nothing", `Quick, test_rle_rolled_stencil_nothing);
    ("rle store forwarding", `Quick, test_rle_store_forwarding);
    ("rle aliasing blocks", `Quick, test_rle_aliasing_blocks);
    ("rle dead store", `Quick, test_rle_dead_store);
    ("rle exit blocks dse", `Quick, test_rle_exit_blocks_dse);
    ("rle predicated untouched", `Quick, test_rle_predicated_untouched);
    QCheck_alcotest.to_alcotest prop_unroll_valid;
    QCheck_alcotest.to_alcotest prop_rle_only_shrinks;
  ]
