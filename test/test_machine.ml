(* Tests for machine models: unit mapping, latencies, resource bounds. *)

let m = Machine.itanium2

let mk ?dst ?(srcs = []) opcode = Op.make ~uid:0 ?dst ~srcs opcode

let test_unit_of () =
  let mref = { Op.array = 0; stride = 1; offset = 0; mkind = Op.Direct } in
  Alcotest.(check bool) "load -> M" true (Machine.unit_of (mk (Op.Load mref)) = Machine.M);
  Alcotest.(check bool) "store -> M" true (Machine.unit_of (mk (Op.Store mref)) = Machine.M);
  Alcotest.(check bool) "ialu -> I" true (Machine.unit_of (mk Op.Ialu) = Machine.I);
  Alcotest.(check bool) "cmp -> I" true (Machine.unit_of (mk Op.Cmp) = Machine.I);
  Alcotest.(check bool) "fmadd -> F" true (Machine.unit_of (mk Op.Fmadd) = Machine.F);
  Alcotest.(check bool) "br -> B" true (Machine.unit_of (mk (Op.Br Op.Backedge)) = Machine.B);
  Alcotest.(check bool) "call -> B" true (Machine.unit_of (mk Op.Call) = Machine.B)

let test_latency_values () =
  Alcotest.(check int) "ialu" m.Machine.lat_ialu (Machine.latency m (mk Op.Ialu));
  Alcotest.(check int) "fmul" m.Machine.lat_fmul (Machine.latency m (mk Op.Fmul));
  Alcotest.(check int) "fdiv" m.Machine.lat_fdiv (Machine.latency m (mk Op.Fdiv));
  Alcotest.(check bool) "fdiv is long" true (m.Machine.lat_fdiv > m.Machine.lat_fmul)

let test_res_cycles_issue_bound () =
  (* 12 integer ops on 2 I units: bound 6. *)
  let ops = Array.init 12 (fun i -> Op.make ~uid:i Op.Ialu) in
  Alcotest.(check int) "I-bound" 6 (Machine.res_cycles m ops)

let test_res_cycles_width_bound () =
  (* 7 ops spread across units still need ceil(7/6) = 2 cycles. *)
  let mref = { Op.array = 0; stride = 1; offset = 0; mkind = Op.Direct } in
  let ops =
    [|
      mk (Op.Load mref); mk (Op.Load mref); mk Op.Ialu; mk Op.Ialu; mk Op.Fadd;
      mk Op.Fadd; mk (Op.Br Op.Backedge);
    |]
  in
  Alcotest.(check int) "width bound" 2 (Machine.res_cycles m ops)

let test_res_cycles_fdiv_unpipelined () =
  let ops = [| mk Op.Fdiv; mk Op.Fdiv |] in
  (* two divides of latency L on 2 F units: each blocks a unit for L *)
  Alcotest.(check int) "divides block" m.Machine.lat_fdiv (Machine.res_cycles m ops)

let test_by_name () =
  Alcotest.(check bool) "itanium2 found" true (Machine.by_name "itanium2" <> None);
  Alcotest.(check bool) "bogus missing" true (Machine.by_name "pdp11" = None);
  Alcotest.(check int) "three machines" 3 (List.length Machine.all)

let test_machines_distinct () =
  let names = List.map (fun mm -> mm.Machine.mach_name) Machine.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    ("unit_of", `Quick, test_unit_of);
    ("latency values", `Quick, test_latency_values);
    ("res_cycles issue bound", `Quick, test_res_cycles_issue_bound);
    ("res_cycles width bound", `Quick, test_res_cycles_width_bound);
    ("res_cycles fdiv", `Quick, test_res_cycles_fdiv_unpipelined);
    ("by_name", `Quick, test_by_name);
    ("machines distinct", `Quick, test_machines_distinct);
  ]
