(* Tests for the extension modules: boosting, regression, the cycle
   profiler and schedule rendering. *)

let rng = Rng.create 31415

let blobs ~classes ~per_class =
  Array.init (classes * per_class) (fun i ->
      let c = i mod classes in
      let cx = 6.0 *. float_of_int c in
      ([| cx +. Rng.gaussian rng; Rng.gaussian rng |], c))

(* --- Boost --- *)

let test_boost_separable () =
  let pairs = blobs ~classes:2 ~per_class:40 in
  let model = Boost.train ~rounds:10 ~n_classes:2 pairs in
  let errs = ref 0 in
  Array.iter (fun (x, y) -> if Boost.predict model x <> y then incr errs) pairs;
  Alcotest.(check bool) "boosting separates blobs" true
    (float_of_int !errs /. float_of_int (Array.length pairs) < 0.05)

let test_boost_beats_stump_on_xor () =
  (* XOR needs more than one axis-aligned split; depth-1 stumps fail alone
     but boosted stumps of depth 2 recover it. *)
  let pairs =
    Array.init 200 (fun i ->
        let a = (i lsr 0) land 1 and b = (i lsr 1) land 1 in
        let x = float_of_int a +. (0.1 *. Rng.gaussian rng) in
        let y = float_of_int b +. (0.1 *. Rng.gaussian rng) in
        ([| x; y |], a lxor b))
  in
  let single = Decision_tree.train ~max_depth:1 ~n_classes:2 pairs in
  let boosted = Boost.train ~rounds:30 ~max_depth:2 ~n_classes:2 pairs in
  let acc predict =
    let hits = ref 0 in
    Array.iter (fun (x, y) -> if predict x = y then incr hits) pairs;
    float_of_int !hits /. float_of_int (Array.length pairs)
  in
  Alcotest.(check bool) "stump fails xor" true (acc (Decision_tree.predict single) < 0.75);
  Alcotest.(check bool) "boosted solves xor" true (acc (Boost.predict boosted) > 0.9)

let test_boost_deterministic () =
  let pairs = blobs ~classes:3 ~per_class:15 in
  let a = Boost.train ~seed:7 ~n_classes:3 pairs in
  let b = Boost.train ~seed:7 ~n_classes:3 pairs in
  Array.iter
    (fun (x, _) ->
      Alcotest.(check int) "same predictions" (Boost.predict a x) (Boost.predict b x))
    pairs

(* --- Regression --- *)

let test_ridge_fits_linear () =
  let points = Array.init 40 (fun i -> [| float_of_int i /. 10.0 |]) in
  let responses = Array.map (fun p -> (3.0 *. p.(0)) +. 1.0) points in
  let r = Regression.train_ridge ~kernel:(Kernel.Rbf 0.5) ~gamma:1000.0 points responses in
  let predicted = Array.map (Regression.predict_ridge r) points in
  Alcotest.(check bool) "r2 high" true (Regression.r_squared ~truth:responses ~predicted > 0.99)

let test_knn_regression_interpolates () =
  let points = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] in
  let responses = [| 0.0; 10.0; 20.0; 30.0 |] in
  let r = Regression.train_knn ~k:2 points responses in
  let mid = Regression.predict_knn r [| 1.5 |] in
  Alcotest.(check bool) "between neighbors" true (mid > 10.0 && mid < 20.0);
  (* exactly on a training point: that point dominates the weighting *)
  Alcotest.(check bool) "near exact at training point" true
    (Float.abs (Regression.predict_knn r [| 2.0 |] -. 20.0) < 0.5)

let test_argmin_factor () =
  let predict _ u = Float.abs (float_of_int u -. 5.2) in
  Alcotest.(check int) "argmin at 5" 5 (Regression.argmin_factor ~predict [||])

let test_r_squared_perfect_and_mean () =
  let truth = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Regression.r_squared ~truth ~predicted:truth);
  let mean_pred = [| 2.0; 2.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "mean predictor = 0" 0.0
    (Regression.r_squared ~truth ~predicted:mean_pred)

(* --- Profiler --- *)

let machine = Machine.itanium2

let test_profile_accounts_for_total () =
  let loop = Kernels.daxpy ~name:"pr_daxpy" ~trip:256 in
  let exe = Simulator.compile machine ~swp:false loop 2 in
  let st = Simulator.create_state machine in
  ignore (Simulator.run st exe);
  let cycles, s = Simulator.run_profiled st exe in
  let accounted =
    s.Simulator.issue_cycles + s.Simulator.data_stall_cycles
    + s.Simulator.fetch_stall_cycles + s.Simulator.branch_cycles
    + s.Simulator.entry_overhead_cycles + s.Simulator.pipeline_fill_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "breakdown ~ total (%d vs %d)" accounted cycles)
    true
    (abs (accounted - cycles) * 10 <= cycles)

let test_profile_gather_stalls () =
  (* The indirect gather must show data stalls; the dense copy mustn't. *)
  let prof k =
    let loop = k ~trip:512 in
    let exe = Simulator.compile machine ~swp:false loop 1 in
    let st = Simulator.create_state machine in
    ignore (Simulator.run st exe);
    snd (Simulator.run_profiled st exe)
  in
  let g = prof (fun ~trip -> Kernels.gather ~name:"pr_gather" ~trip) in
  Alcotest.(check bool) "gather stalls on data" true (g.Simulator.data_stall_cycles > 0)

let test_profile_unroll_reduces_branch () =
  let loop = Kernels.dscal ~name:"pr_branch" ~trip:512 in
  let branch u =
    let exe = Simulator.compile machine ~swp:false loop u in
    let st = Simulator.create_state machine in
    ignore (Simulator.run st exe);
    (snd (Simulator.run_profiled st exe)).Simulator.branch_cycles
  in
  Alcotest.(check bool) "u8 pays fewer branches" true (branch 8 * 4 < branch 1)

let test_profile_swp_reports_fill () =
  let loop = Kernels.ddot ~name:"pr_fill" ~trip:256 in
  let exe = Simulator.compile machine ~swp:true loop 1 in
  let st = Simulator.create_state machine in
  ignore (Simulator.run st exe);
  let _, s = Simulator.run_profiled st exe in
  Alcotest.(check bool) "pipeline fill accounted" true
    (s.Simulator.pipeline_fill_cycles > 0)

(* --- Sched_pretty --- *)

let test_render_mentions_every_op () =
  let loop = Kernels.daxpy ~name:"sp_daxpy" ~trip:64 in
  let s = List_sched.schedule machine loop in
  let rendered = Sched_pretty.render s in
  for pos = 0 to Loop.op_count loop - 1 do
    let needle = Printf.sprintf "#%d." pos in
    let found =
      let n = String.length needle and h = String.length rendered in
      let rec go i = i + n <= h && (String.sub rendered i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (Printf.sprintf "op %d rendered" pos) true found
  done

let test_render_occupancy_shape () =
  let loop = Kernels.fir8 ~name:"sp_fir" ~trip:64 in
  let s = List_sched.schedule machine loop in
  let occ = Sched_pretty.render_occupancy s in
  Alcotest.(check int) "four unit rows" 4
    (List.length (String.split_on_char '\n' (String.trim occ)))

let test_render_pipelined_stages () =
  let loop = Kernels.ddot ~name:"sp_swp" ~trip:64 in
  match Modulo_sched.schedule machine loop with
  | None -> Alcotest.fail "expected pipelined schedule"
  | Some s ->
    let rendered = Sched_pretty.render s in
    Alcotest.(check bool) "mentions II" true
      (let n = "II=" in
       let h = String.length rendered in
       let rec go i =
         i + 3 <= h && (String.sub rendered i 3 = n || go (i + 1))
       in
       go 0)

let base_suite =
  [
    ("boost separable", `Quick, test_boost_separable);
    ("boost xor", `Quick, test_boost_beats_stump_on_xor);
    ("boost deterministic", `Quick, test_boost_deterministic);
    ("ridge linear", `Quick, test_ridge_fits_linear);
    ("knn regression", `Quick, test_knn_regression_interpolates);
    ("argmin factor", `Quick, test_argmin_factor);
    ("r squared", `Quick, test_r_squared_perfect_and_mean);
    ("profile totals", `Quick, test_profile_accounts_for_total);
    ("profile gather stalls", `Quick, test_profile_gather_stalls);
    ("profile branch amortised", `Quick, test_profile_unroll_reduces_branch);
    ("profile swp fill", `Quick, test_profile_swp_reports_fill);
    ("render ops", `Quick, test_render_mentions_every_op);
    ("render occupancy", `Quick, test_render_occupancy_shape);
    ("render pipelined", `Quick, test_render_pipelined_stages);
  ]

(* --- Strip mining / tiling --- *)

let test_chunks_cover_iteration_space () =
  List.iter
    (fun (trip, outer, strip) ->
      let chunks = Strip_mine.chunks ~trip ~outer ~strip in
      (* every chunk repeated outer times; total work = trip * outer *)
      let total = List.fold_left (fun acc (len, _) -> acc + len) 0 chunks in
      Alcotest.(check int)
        (Printf.sprintf "total %d/%d/%d" trip outer strip)
        (trip * outer) total;
      (* each phase covered exactly outer times *)
      let phases = Hashtbl.create 16 in
      List.iter
        (fun (len, phase) ->
          for i = phase to phase + len - 1 do
            Hashtbl.replace phases i (1 + Option.value (Hashtbl.find_opt phases i) ~default:0)
          done)
        chunks;
      for i = 0 to trip - 1 do
        Alcotest.(check int) "coverage" outer
          (Option.value (Hashtbl.find_opt phases i) ~default:0)
      done)
    [ (16, 2, 4); (17, 3, 4); (8, 1, 8); (5, 2, 16) ]

let test_chunks_tile_major_order () =
  let chunks = Strip_mine.chunks ~trip:8 ~outer:2 ~strip:4 in
  Alcotest.(check (list (pair int int))) "order"
    [ (4, 0); (4, 0); (4, 4); (4, 4) ]
    chunks

let test_tiling_beats_thrashing () =
  (* 2x-L1 footprint with heavy outer reuse: a cache-sized strip wins. *)
  let b = Builder.create ~lang:Loop.Fortran ~name:"sm_reuse" ~trip:2048 ~nest_level:2
      ~outer_trip:32 () in
  let x = Builder.add_array b ~length:2064 "x" in
  let y = Builder.add_array b ~length:2064 "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:Op.Flt ~array:y ~stride:1 ~offset:0 () in
  Builder.store b ~array:y ~stride:1 ~offset:0 (Builder.fmadd b [ a; xv; yv ]);
  let loop = Builder.finish b in
  let run exe =
    let st = Simulator.create_state machine in
    ignore (Simulator.run st exe);
    Simulator.run st exe
  in
  let untiled = run (Simulator.compile machine ~swp:false loop 4) in
  let tiled = run (Strip_mine.executable machine ~swp:false loop ~strip:512 ~unroll:4) in
  Alcotest.(check bool)
    (Printf.sprintf "tiled %d < untiled %d" tiled untiled)
    true (tiled < untiled)

let test_tiling_unaligned_strip () =
  (* strip not divisible by the unroll factor: head/tail chunks align. *)
  let loop = Kernels.daxpy ~name:"sm_unaligned" ~trip:100 in
  let exe = Strip_mine.executable machine ~swp:false loop ~strip:7 ~unroll:4 in
  let total =
    List.fold_left
      (fun acc (s, trips, _) ->
        let per =
          match s.Schedule.kind with
          | _ ->
            (* kernel chunks cover unroll iterations per trip *)
            if Loop.op_count s.Schedule.loop > Loop.op_count loop then trips * 4 else trips
        in
        acc + per)
      0 exe.Simulator.schedules
  in
  Alcotest.(check int) "iterations covered" (100 * loop.Loop.outer_trip) total

let test_best_strip_fits_cache () =
  (* Two 32 KB streams against a 16 KB L1: the traversal thrashes within
     the simulated window, so a cache-sized strip must win the sweep. *)
  let b = Builder.create ~lang:Loop.Fortran ~name:"sm_best" ~trip:4096 ~nest_level:2
      ~outer_trip:32 () in
  let x = Builder.add_array b ~length:4112 "x" in
  let y = Builder.add_array b ~length:4112 "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:Op.Flt ~array:y ~stride:1 ~offset:0 () in
  Builder.store b ~array:y ~stride:1 ~offset:0 (Builder.fmadd b [ a; xv; yv ]);
  let loop = Builder.finish b in
  let strip, _ = Strip_mine.best_strip machine ~swp:false loop ~candidates:[ 256; 1024; 4096 ] ~unroll:4 in
  Alcotest.(check bool) "small strip wins" true (strip < 4096)

let strip_suite =
  [
    ("chunks cover space", `Quick, test_chunks_cover_iteration_space);
    ("chunks tile-major", `Quick, test_chunks_tile_major_order);
    ("tiling beats thrashing", `Quick, test_tiling_beats_thrashing);
    ("tiling unaligned strip", `Quick, test_tiling_unaligned_strip);
    ("best strip fits cache", `Quick, test_best_strip_fits_cache);
  ]

let suite = base_suite @ strip_suite
