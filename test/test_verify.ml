(* Tests for the bounded translation validator: the term normalizer's
   rewrite rules, cross-validation of the symbolic evaluator against the
   concrete interpreter (grounding the terms under random stores must
   reproduce Interp bit for bit), refutation of the two reintroduced
   historical bugs (phantom trip-0 iteration, stale RLE available-table
   entry), and the soundness boundary: ground-equal but term-unequal pairs
   come back Unknown, never Proved. *)

module Term = Verify.Term
module Symexec = Verify.Symexec
module Validate = Verify.Validate

let machine = Machine.itanium2

(* --- term normalizer ----------------------------------------------------- *)

let test_commutative_sort () =
  let ctx = Term.create_ctx () in
  let x = Term.reg0 ctx 1 and y = Term.reg0 ctx 2 in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        "binary operands sort to one normal form" true
        (Term.equal (Term.app ctx op [ x; y ]) (Term.app ctx op [ y; x ])))
    [ Term.Ialu; Term.Imul; Term.Fadd; Term.Fmul; Term.Cmp ];
  let z = Term.reg0 ctx 3 in
  Alcotest.(check bool) "fmadd sorts its two factors" true
    (Term.equal
       (Term.app ctx Term.Fmadd [ x; y; z ])
       (Term.app ctx Term.Fmadd [ y; x; z ]));
  Alcotest.(check bool) "fmadd keeps the addend in place" false
    (Term.equal
       (Term.app ctx Term.Fmadd [ x; y; z ])
       (Term.app ctx Term.Fmadd [ x; z; y ]))

let test_no_float_reassociation () =
  (* Three-operand sums are NOT reassociated: float addition is only
     commutative, and the normalizer must not claim more than IEEE gives. *)
  let ctx = Term.create_ctx () in
  let x = Term.reg0 ctx 1 and y = Term.reg0 ctx 2 and z = Term.reg0 ctx 3 in
  Alcotest.(check bool) "ternary operand order is significant" false
    (Term.equal (Term.app ctx Term.Fadd [ x; y; z ]) (Term.app ctx Term.Fadd [ z; y; x ]))

let test_select_over_store_normalized_index () =
  (* The store's index term and the select's are syntactically different
     ([x+y] vs [y+x]) but normalize equal, so the select must resolve. *)
  let ctx = Term.create_ctx () in
  let ix = { Term.ibase = 0x1000; ielem = 8; ilen = 64 } in
  let x = Term.reg0 ctx 1 and y = Term.reg0 ctx 2 in
  let v = Term.cst ctx 42.0 in
  let a_store = Term.addr_ix ctx ix (Term.app ctx Term.Fadd [ x; y ]) in
  let a_load = Term.addr_ix ctx ix (Term.app ctx Term.Fadd [ y; x ]) in
  let mem = Term.store ctx (Term.init_mem ctx) (Term.top ctx) a_store v in
  Alcotest.(check bool) "select resolves through the store" true
    (Term.equal (Term.select ctx mem a_load) v)

let test_select_skips_distinct_stores () =
  let ctx = Term.create_ctx () in
  let m0 = Term.init_mem ctx in
  let mem = Term.store ctx m0 (Term.top ctx) (Term.addr ctx 8) (Term.cst ctx 1.0) in
  Alcotest.(check bool) "distinct concrete store is skipped" true
    (Term.equal (Term.select ctx mem (Term.addr ctx 16)) (Term.select ctx m0 (Term.addr ctx 16)));
  (* A spill slot far outside an indirect reference's footprint is provably
     distinct from it, so the select skips the symbolic store too. *)
  let ix = { Term.ibase = 0x1000; ielem = 8; ilen = 64 } in
  let sym = Term.store ctx m0 (Term.top ctx) (Term.addr_ix ctx ix (Term.reg0 ctx 1)) (Term.cst ctx 2.0) in
  Alcotest.(check bool) "spill select skips the indirect store" true
    (Term.equal
       (Term.select ctx sym (Term.addr ctx 0x8000))
       (Term.select ctx m0 (Term.addr ctx 0x8000)))

let test_select_stuck_on_may_alias () =
  (* An in-footprint concrete address may collide with the indirect store:
     the select must go stuck rather than resolve either way. *)
  let ctx = Term.create_ctx () in
  let ix = { Term.ibase = 0x1000; ielem = 8; ilen = 64 } in
  let m0 = Term.init_mem ctx in
  let mem = Term.store ctx m0 (Term.top ctx) (Term.addr_ix ctx ix (Term.reg0 ctx 1)) (Term.cst ctx 2.0) in
  let s = Term.select ctx mem (Term.addr ctx 0x1008) in
  Alcotest.(check bool) "not resolved to the stored value" false
    (Term.equal s (Term.cst ctx 2.0));
  Alcotest.(check bool) "not resolved past the store" false
    (Term.equal s (Term.select ctx m0 (Term.addr ctx 0x1008)))

let test_store_over_store_collapse () =
  let ctx = Term.create_ctx () in
  let a = Term.addr ctx 64 in
  let g = Term.pred_ ctx (Term.reg0 ctx 1) in
  let m0 = Term.init_mem ctx in
  let m1 = Term.store ctx m0 (Term.top ctx) a (Term.cst ctx 1.0) in
  let m2 = Term.store ctx m1 g a (Term.cst ctx 2.0) in
  (* Same cell twice: one store remains, guard Or-merged (here Top), value
     selected by the outer guard. *)
  let expected =
    Term.store ctx m0 (Term.top ctx) a
      (Term.ite ctx g (Term.cst ctx 2.0) (Term.cst ctx 1.0))
  in
  Alcotest.(check bool) "same-address stores collapse" true (Term.equal m2 expected)

let test_concrete_stores_canonical_order () =
  let ctx = Term.create_ctx () in
  let m0 = Term.init_mem ctx in
  let g = Term.top ctx in
  let s a v m = Term.store ctx m g (Term.addr ctx a) (Term.cst ctx v) in
  let chain1 = m0 |> s 8 1.0 |> s 24 2.0 |> s 16 3.0 in
  let chain2 = m0 |> s 24 2.0 |> s 16 3.0 |> s 8 1.0 in
  Alcotest.(check bool) "disjoint concrete stores reach one normal form" true
    (Term.equal chain1 chain2)

let test_assume_collapses_guarded_reads () =
  let ctx = Term.create_ctx () in
  let g = Term.pred_ ctx (Term.reg0 ctx 1) in
  let x = Term.reg0 ctx 2 and y = Term.reg0 ctx 3 in
  let t = Term.ite ctx g x y in
  Alcotest.(check bool) "assume g (ite g x y) = x" true (Term.equal (Term.assume ctx g t) x);
  let h = Term.pred_ ctx (Term.reg0 ctx 4) in
  let conj = Term.and_ ctx g h in
  Alcotest.(check bool) "a conjunction implies its conjuncts" true
    (Term.equal (Term.assume ctx conj t) x);
  Alcotest.(check bool) "assume (not g) takes the else branch" true
    (Term.equal (Term.assume ctx (Term.not_ ctx g) t) y)

(* --- bound exhaustion: unknown is never proved --------------------------- *)

let test_unknown_not_proved () =
  (* Cst 1.0 and fmadd(0,0,0.875) ground to 1.0 under EVERY valuation
     (no symbolic leaves), so no counterexample exists — but the terms
     differ, and the verdict must be Unknown, never Proved. *)
  let ctx = Term.create_ctx () in
  let a = Term.cst ctx 1.0 in
  let b =
    Term.app ctx Term.Fmadd [ Term.cst ctx 0.0; Term.cst ctx 0.0; Term.cst ctx 0.875 ]
  in
  let g = Term.grounding Term.standard_env in
  Alcotest.(check (float 0.0)) "the two terms ground equal" (Term.gfloat g a) (Term.gfloat g b);
  let m = Term.init_mem ctx in
  (match Validate.decide ~trip:0 ~live_out:[ ("r0", a, b) ] ~mem:(m, m) with
  | Validate.Unknown _ -> ()
  | Validate.Proved -> Alcotest.fail "ground-equal but term-unequal pair claimed Proved"
  | Validate.Refuted _ -> Alcotest.fail "no valuation diverges, yet Refuted")

let test_decide_refutes_on_ground_divergence () =
  let ctx = Term.create_ctx () in
  let m = Term.init_mem ctx in
  match
    Validate.decide ~trip:3
      ~live_out:[ ("r0", Term.cst ctx 1.0, Term.cst ctx 2.0) ]
      ~mem:(m, m)
  with
  | Validate.Refuted cx ->
    Alcotest.(check int) "trip recorded" 3 cx.Validate.cx_trip;
    Alcotest.(check string) "location recorded" "live-out r0" cx.Validate.cx_location;
    Alcotest.(check (option (float 0.0))) "source value" (Some 1.0) cx.Validate.cx_source;
    Alcotest.(check (option (float 0.0))) "transformed value" (Some 2.0)
      cx.Validate.cx_transformed
  | _ -> Alcotest.fail "diverging constants must refute"

(* --- cross-validation: grounding == concrete interpreter ----------------- *)

(* Pre-seed a concrete state with the valuation [env] over every register
   id up to [max_id] and every array cell, so the concrete run and the
   grounded symbolic run start from the same world. *)
let seeded_state env ~max_id (loop : Loop.t) =
  let st = Interp.fresh_state () in
  for id = 0 to max_id do
    Interp.set_reg st { Op.id; cls = Op.Int } (env.Term.greg id)
  done;
  Array.iter
    (fun (a : Loop.array_info) ->
      for i = 0 to a.Loop.length - 1 do
        let addr = a.Loop.base + (a.Loop.elem_size * i) in
        Interp.set_mem st addr (env.Term.gmem addr)
      done)
    loop.Loop.arrays;
  st

let check_ground_matches ~what env ~max_id (loop : Loop.t) st sym =
  let ctx_g = Term.grounding env in
  let mem = Symexec.memory_term sym in
  for id = 0 to max_id do
    let r = { Op.id; cls = Op.Int } in
    let concrete = Interp.register_value st r in
    let symbolic = Term.gfloat ctx_g (Symexec.register_term sym r) in
    if concrete <> symbolic then
      Alcotest.failf "%s: r%d concrete %h vs ground %h" what id concrete symbolic
  done;
  Array.iter
    (fun (a : Loop.array_info) ->
      for i = 0 to a.Loop.length - 1 do
        let addr = a.Loop.base + (a.Loop.elem_size * i) in
        let concrete = Interp.mem_value st addr in
        let symbolic = Term.ground_cell ctx_g mem addr in
        if concrete <> symbolic then
          Alcotest.failf "%s: mem[0x%x] concrete %h vs ground %h" what addr concrete symbolic
      done)
    loop.Loop.arrays

let prop_grounding_matches_interp =
  QCheck.Test.make ~count:40 ~name:"grounded symbolic run == concrete interp"
    QCheck.(make Gen.(pair (0 -- 400) (0 -- 2)))
    (fun (id, env_seed) ->
      let c = Fuzz.Gen.case ~seed:77 ~id () in
      let loop = c.Fuzz.Gen.loop in
      let factor = c.Fuzz.Gen.factor in
      let env = if env_seed = 0 then Term.standard_env else Term.random_env env_seed in
      let u = Unroll.run loop factor in
      let max_id =
        List.fold_left
          (fun acc l -> max acc (Loop.max_reg_id l))
          (Loop.max_reg_id loop)
          (u.Unroll.kernel :: Option.to_list u.Unroll.remainder)
      in
      List.iter
        (fun trips ->
          let lt = Validate.retrip loop trips in
          (* plain run *)
          let st = seeded_state env ~max_id lt in
          ignore (Interp.run st lt ~trips ~phase:0);
          let ctx = Term.create_ctx () in
          let sym = Symexec.create ctx in
          Symexec.run sym lt ~trips ~phase:0;
          check_ground_matches ~what:(Printf.sprintf "case %d run t=%d" id trips) env
            ~max_id lt st sym;
          (* unrolled run: exercises renaming, remainder chaining and the
             alive-gated early-exit model against Exit_loop *)
          let ut = Unroll.run lt factor in
          let st' = seeded_state env ~max_id lt in
          ignore (Interp.run_unrolled st' ut);
          let ctx' = Term.create_ctx () in
          let sym' = Symexec.create ctx' in
          Symexec.run_unrolled sym' ut;
          check_ground_matches ~what:(Printf.sprintf "case %d unrolled t=%d" id trips) env
            ~max_id lt st' sym')
        [ 0; 1; factor; factor + 1 ];
      true)

(* --- refutation of the reintroduced historical bugs ---------------------- *)

let with_hook hook f =
  hook := true;
  Fun.protect ~finally:(fun () -> hook := false) f

let find_check (report : Validate.report) name =
  match List.find_opt (fun c -> c.Validate.check_name = name) report.Validate.checks with
  | Some c -> c
  | None ->
    Alcotest.failf "report has no %s check (has: %s)" name
      (String.concat ", " (List.map (fun c -> c.Validate.check_name) report.Validate.checks))

let test_phantom_trip_refuted () =
  (* The historical assembler bug: a zero-trip loop compiled as if it ran
     once.  The validator must refute it at trip 0 with a concrete
     location. *)
  let loop = Fuzz.Gen.with_exact_trip (Kernels.daxpy ~name:"phantom" ~trip:4) 4 in
  with_hook Pipeline.testing_phantom_trips (fun () ->
      let report =
        Validate.verify_case ~coords:[ (false, true) ] ~machine loop ~factor:1
      in
      match (find_check report "pipeline[list,rle]").Validate.verdict with
      | Validate.Refuted cx ->
        Alcotest.(check int) "diverges exactly at trip 0" 0 cx.Validate.cx_trip;
        Alcotest.(check bool) "counterexample names a location" true
          (String.length cx.Validate.cx_location > 0)
      | v ->
        Alcotest.failf "phantom-trip bug not refuted: %s" (Validate.verdict_to_string v));
  (* and with the hook off the same configuration proves *)
  let report = Validate.verify_case ~coords:[ (false, true) ] ~machine loop ~factor:1 in
  Alcotest.(check bool) "fixed pipeline proves" true (Validate.report_ok report)

(* The historical RLE bug in miniature: a store caches [r0] for cell
   a[i+16]; [r0] is then redefined; a later load of a[i+16] must NOT be
   forwarded from the redefined register. *)
let stale_rle_loop () =
  let b = Builder.create ~name:"stale" ~trip:4 () in
  let a = Builder.add_array b ~elem_size:8 ~length:64 "a" in
  let r0 = Builder.load b ~cls:Op.Flt ~array:a ~stride:1 ~offset:0 () in
  Builder.store b ~array:a ~stride:1 ~offset:16 r0;
  Builder.accumulate b ~acc:r0 ~op:`Fadd [ r0 ];
  let y = Builder.load b ~cls:Op.Flt ~array:a ~stride:1 ~offset:16 () in
  Builder.mark_live_out b y;
  Builder.finish b

let test_stale_rle_refuted () =
  let loop = stale_rle_loop () in
  with_hook Rle.testing_stale_available (fun () ->
      let report = Validate.verify_case ~coords:[] ~machine loop ~factor:1 in
      match (find_check report "unroll+rle").Validate.verdict with
      | Validate.Refuted cx ->
        Alcotest.(check bool) "diverges at a positive trip" true (cx.Validate.cx_trip >= 1);
        Alcotest.(check bool) "both sides produced a value" true
          (cx.Validate.cx_source <> None && cx.Validate.cx_transformed <> None)
      | v -> Alcotest.failf "stale-RLE bug not refuted: %s" (Validate.verdict_to_string v));
  let report = Validate.verify_case ~coords:[] ~machine loop ~factor:1 in
  Alcotest.(check bool) "fixed rle proves" true (Validate.report_ok report)

(* Replays of the fuzzer's own shrunk reproducers under the reintroduced
   bugs: the directed corpus entries that caught each bug originally must
   be refuted by the validator too. *)
let corpus_loop file =
  let rec up dir =
    let candidate = Filename.concat dir "corpus" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "corpus/ not found" else up parent
  in
  let dir = up (Sys.getcwd ()) in
  let ic = open_in_bin (Filename.concat dir file) in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Fuzz.Driver.parse_repro contents with
  | Ok r -> r.Fuzz.Driver.rcase
  | Error e -> Alcotest.failf "%s: %s" file e

let test_historical_reproducers_refuted () =
  let stale = corpus_loop "rle-interp-0857.loop" in
  with_hook Rle.testing_stale_available (fun () ->
      let report =
        Validate.verify_case ~coords:[] ~machine:stale.Fuzz.Gen.machine
          stale.Fuzz.Gen.loop ~factor:stale.Fuzz.Gen.factor
      in
      match (find_check report "unroll+rle").Validate.verdict with
      | Validate.Refuted _ -> ()
      | v ->
        Alcotest.failf "rle-interp-0857 under stale hook: %s" (Validate.verdict_to_string v));
  let phantom = corpus_loop "remainder-trip0.loop" in
  with_hook Pipeline.testing_phantom_trips (fun () ->
      let report =
        Validate.verify_case
          ~coords:[ (phantom.Fuzz.Gen.swp, phantom.Fuzz.Gen.rle) ]
          ~machine:phantom.Fuzz.Gen.machine phantom.Fuzz.Gen.loop
          ~factor:phantom.Fuzz.Gen.factor
      in
      let name =
        Printf.sprintf "pipeline[%s,%s]"
          (if phantom.Fuzz.Gen.swp then "swp" else "list")
          (if phantom.Fuzz.Gen.rle then "rle" else "norle")
      in
      match (find_check report name).Validate.verdict with
      | Validate.Refuted cx -> Alcotest.(check int) "refuted at trip 0" 0 cx.Validate.cx_trip
      | v ->
        Alcotest.failf "remainder-trip0 under phantom hook: %s" (Validate.verdict_to_string v))

(* Soundness under mutation, property-tested: whatever the mutant does to a
   random case, a Proved verdict must imply actual concrete equivalence at
   every trip up to the bound (the mutation may legitimately not fire —
   many loops have no eliminable load — but a false proof is never ok). *)
let concrete_rle_equivalent (loop : Loop.t) factor t =
  let lt = Validate.retrip loop t in
  let st0 = Interp.fresh_state () in
  ignore (Interp.run st0 lt ~trips:t ~phase:0);
  let u = Unroll.run lt factor in
  let r = Rle.run u.Unroll.kernel in
  let u = { u with Unroll.kernel = r.Rle.loop } in
  let st1 = Interp.fresh_state () in
  ignore (Interp.run_unrolled st1 u);
  Interp.equivalent st0 st1 lt.Loop.live_out

let prop_stale_mutant_never_falsely_proved =
  QCheck.Test.make ~count:25 ~name:"stale-RLE mutant is never falsely proved"
    QCheck.(make Gen.(0 -- 500))
    (fun id ->
      let c = Fuzz.Gen.case ~seed:41 ~id () in
      with_hook Rle.testing_stale_available (fun () ->
          let report =
            Validate.verify_case ~coords:[] ~machine:c.Fuzz.Gen.machine c.Fuzz.Gen.loop
              ~factor:c.Fuzz.Gen.factor
          in
          match (find_check report "unroll+rle").Validate.verdict with
          | Validate.Refuted _ | Validate.Unknown _ -> true
          | Validate.Proved ->
            let bound = Validate.bound_for c.Fuzz.Gen.factor in
            let ok = ref true in
            for t = 0 to bound do
              if not (concrete_rle_equivalent c.Fuzz.Gen.loop c.Fuzz.Gen.factor t) then
                ok := false
            done;
            if !ok then true
            else
              QCheck.Test.fail_reportf
                "case %d: mutant proved but concretely inequivalent" id))

let suite =
  [
    ("commutative operands sort to a normal form", `Quick, test_commutative_sort);
    ("no float reassociation", `Quick, test_no_float_reassociation);
    ("select resolves normalized-equal indices", `Quick, test_select_over_store_normalized_index);
    ("select skips provably-distinct stores", `Quick, test_select_skips_distinct_stores);
    ("select goes stuck on may-alias", `Quick, test_select_stuck_on_may_alias);
    ("same-address stores collapse", `Quick, test_store_over_store_collapse);
    ("disjoint concrete stores canonicalize", `Quick, test_concrete_stores_canonical_order);
    ("assume collapses guarded reads", `Quick, test_assume_collapses_guarded_reads);
    ("ground-equal term-unequal is Unknown, not Proved", `Quick, test_unknown_not_proved);
    ("diverging terms refute with a counterexample", `Quick, test_decide_refutes_on_ground_divergence);
    QCheck_alcotest.to_alcotest prop_grounding_matches_interp;
    ("phantom trip-0 bug is refuted at trip 0", `Quick, test_phantom_trip_refuted);
    ("stale-RLE bug is refuted with values", `Quick, test_stale_rle_refuted);
    ("historical reproducers refuted under reintroduced bugs", `Quick, test_historical_reproducers_refuted);
    QCheck_alcotest.to_alcotest prop_stale_mutant_never_falsely_proved;
  ]
