(* Tests for the machine-learning substrate: datasets, scaling, NN, LS-SVM,
   output codes, metrics, MIS, greedy selection, LDA, decision trees. *)

let rng = Rng.create 808

(* Two well-separated Gaussian blobs per class in 2-D. *)
let blobs ~classes ~per_class =
  Array.init (classes * per_class) (fun i ->
      let c = i mod classes in
      let cx = 6.0 *. float_of_int c in
      let x = [| cx +. Rng.gaussian rng; Rng.gaussian rng |] in
      (x, c))

let mk_example ?(group = "g") ?(tag = "t") features label costs =
  { Dataset.features; label; tag; group; costs }

let tiny_dataset () =
  Dataset.create
    ~feature_names:[| "f0"; "f1" |]
    ~n_classes:2
    [
      mk_example ~tag:"a" ~group:"g1" [| 0.0; 1.0 |] 0 [| 1.0; 2.0 |];
      mk_example ~tag:"b" ~group:"g1" [| 1.0; 3.0 |] 1 [| 3.0; 1.5 |];
      mk_example ~tag:"c" ~group:"g2" [| 2.0; 5.0 |] 1 [| 4.0; 2.0 |];
    ]

(* --- Dataset --- *)

let test_dataset_create_checks () =
  Alcotest.(check bool) "wrong feature arity rejected" true
    (try
       ignore
         (Dataset.create ~feature_names:[| "a" |] ~n_classes:2
            [ mk_example [| 1.0; 2.0 |] 0 [| 1.0; 1.0 |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "label range checked" true
    (try
       ignore
         (Dataset.create ~feature_names:[| "a" |] ~n_classes:2
            [ mk_example [| 1.0 |] 5 [| 1.0; 1.0 |] ]);
       false
     with Invalid_argument _ -> true)

let test_dataset_select_features () =
  let ds = tiny_dataset () in
  let sel = Dataset.select_features ds [| 1 |] in
  Alcotest.(check (array string)) "names" [| "f1" |] sel.Dataset.feature_names;
  Alcotest.(check (array (float 0.0))) "column" [| 1.0; 3.0; 5.0 |]
    (Dataset.feature_column sel 0)

let test_dataset_groups () =
  let ds = tiny_dataset () in
  Alcotest.(check (list string)) "groups in order" [ "g1"; "g2" ] (Dataset.groups ds);
  let without = Dataset.without_group ds "g1" in
  Alcotest.(check int) "g1 dropped" 1 (Dataset.size without)

let test_dataset_csv_roundtrip () =
  let ds = tiny_dataset () in
  let path = Filename.temp_file "unrollml_ds" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.to_csv ds path;
      let ds' = Dataset.of_csv path in
      Alcotest.(check int) "size" (Dataset.size ds) (Dataset.size ds');
      Alcotest.(check (array string)) "names" ds.Dataset.feature_names ds'.Dataset.feature_names;
      Array.iteri
        (fun i (e : Dataset.example) ->
          let e' = ds'.Dataset.examples.(i) in
          Alcotest.(check string) "tag" e.Dataset.tag e'.Dataset.tag;
          Alcotest.(check int) "label" e.Dataset.label e'.Dataset.label;
          Alcotest.(check (array (float 1e-9))) "features" e.Dataset.features e'.Dataset.features)
        ds.Dataset.examples)

(* --- Scale --- *)

let test_scale_zscore () =
  let ds = tiny_dataset () in
  let s = Scale.fit ds in
  let scaled = Scale.apply s ds in
  for j = 0 to 1 do
    let col = Dataset.feature_column scaled j in
    Alcotest.(check (float 1e-9)) "zero mean" 0.0 (Stats.mean col);
    Alcotest.(check (float 1e-9)) "unit std" 1.0 (Stats.stddev col)
  done

let test_scale_constant_feature () =
  let ds =
    Dataset.create ~feature_names:[| "c" |] ~n_classes:2
      [
        mk_example [| 7.0 |] 0 [| 1.0; 1.0 |];
        mk_example [| 7.0 |] 1 [| 1.0; 1.0 |];
      ]
  in
  let s = Scale.fit ds in
  Alcotest.(check (array (float 1e-9))) "constant maps to 0" [| 0.0 |]
    (Scale.transform s [| 7.0 |])

(* --- Knn --- *)

let test_knn_separable () =
  let pairs = blobs ~classes:3 ~per_class:30 in
  let knn = Knn.train ~radius:0.8 ~n_classes:3 pairs in
  let errors = ref 0 in
  Array.iteri
    (fun i p -> if p <> snd pairs.(i) then incr errors)
    (Knn.loo_predictions knn);
  Alcotest.(check bool) "high accuracy on blobs" true
    (float_of_int !errors /. float_of_int (Array.length pairs) < 0.05)

let test_knn_1nn_fallback () =
  (* Radius 0 forces the fallback; nearest neighbor decides. *)
  let pairs = [| ([| 0.0 |], 0); ([| 10.0 |], 1) |] in
  let knn = Knn.train ~radius:0.0 ~n_classes:2 pairs in
  Alcotest.(check int) "nearest wins" 0 (Knn.predict knn [| 1.0 |]);
  Alcotest.(check int) "other side" 1 (Knn.predict knn [| 9.0 |])

let test_knn_confidence () =
  let pairs = [| ([| 0.0 |], 0); ([| 0.1 |], 0); ([| 0.2 |], 0); ([| 10.0 |], 1) |] in
  let knn = Knn.train ~radius:1.0 ~n_classes:2 pairs in
  let pred, conf = Knn.predict_confidence knn [| 0.1 |] in
  Alcotest.(check int) "majority" 0 pred;
  Alcotest.(check (float 1e-9)) "unanimous" 1.0 conf;
  let _, conf_far = Knn.predict_confidence knn [| 100.0 |] in
  Alcotest.(check (float 1e-9)) "fallback confidence 0" 0.0 conf_far

let test_knn_majority_vote () =
  let pairs = [| ([| 0.0 |], 1); ([| 0.2 |], 1); ([| 0.4 |], 0) |] in
  let knn = Knn.train ~radius:2.0 ~n_classes:2 pairs in
  Alcotest.(check int) "2-1 vote" 1 (Knn.predict knn [| 0.2 |])

(* --- Kernel --- *)

let test_kernel_values () =
  Alcotest.(check (float 1e-9)) "rbf self" 1.0 (Kernel.apply (Kernel.Rbf 0.7) [| 1.; 2. |] [| 1.; 2. |]);
  Alcotest.(check (float 1e-9)) "linear" 11.0 (Kernel.apply Kernel.Linear [| 1.; 2. |] [| 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "poly" 16.0
    (Kernel.apply (Kernel.Poly { degree = 2; bias = 1.0 }) [| 1.; 1. |] [| 1.; 2. |])

let test_kernel_gram_symmetric () =
  let pts = Array.init 10 (fun _ -> [| Rng.gaussian rng; Rng.gaussian rng |]) in
  let g = Kernel.gram (Kernel.Rbf 0.5) pts in
  Alcotest.(check bool) "symmetric" true (Mat.equal g (Mat.transpose g))

(* --- Lssvm --- *)

let test_lssvm_separable () =
  let pairs = blobs ~classes:2 ~per_class:25 in
  let points = Array.map fst pairs in
  let targets = Array.map (fun (_, y) -> if y = 0 then -1.0 else 1.0) pairs in
  let model = Lssvm.train ~kernel:(Kernel.Rbf 0.5) ~gamma:10.0 points targets in
  let errors = ref 0 in
  Array.iteri
    (fun i (x, _) ->
      let d = Lssvm.decision model x in
      if (d >= 0.0) <> (targets.(i) > 0.0) then incr errors)
    pairs;
  Alcotest.(check int) "separates blobs" 0 !errors

let test_lssvm_loo_matches_brute_force () =
  (* The closed-form LOO residual must equal actually retraining without
     each example. *)
  let pairs = blobs ~classes:2 ~per_class:8 in
  let points = Array.map fst pairs in
  let targets = Array.map (fun (_, y) -> if y = 0 then -1.0 else 1.0) pairs in
  let kernel = Kernel.Rbf 0.3 and gamma = 5.0 in
  let loo = (Lssvm.loo_decisions ~kernel ~gamma points [| targets |]).(0) in
  let n = Array.length points in
  for i = 0 to n - 1 do
    let keep j = j <> i in
    let pts' = Array.of_list (List.filteri (fun j _ -> keep j) (Array.to_list points)) in
    let tgt' = Array.of_list (List.filteri (fun j _ -> keep j) (Array.to_list targets)) in
    let model = Lssvm.train ~kernel ~gamma pts' tgt' in
    let direct = Lssvm.decision model points.(i) in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "loo decision %d" i)
      direct loo.(i)
  done

let test_lssvm_decision_batch () =
  let pairs = blobs ~classes:2 ~per_class:10 in
  let points = Array.map fst pairs in
  let t1 = Array.map (fun (_, y) -> if y = 0 then -1.0 else 1.0) pairs in
  let t2 = Array.map (fun t -> -.t) t1 in
  let ms = Lssvm.train_multi ~kernel:(Kernel.Rbf 0.5) ~gamma:4.0 points [| t1; t2 |] in
  let q = [| 0.5; 0.5 |] in
  let batch = Lssvm.decision_batch ms q in
  Alcotest.(check (float 1e-9)) "batch = individual 0" (Lssvm.decision ms.(0) q) batch.(0);
  Alcotest.(check (float 1e-9)) "batch = individual 1" (Lssvm.decision ms.(1) q) batch.(1)

let test_lssvm_gamma_positive () =
  Alcotest.(check bool) "gamma must be positive" true
    (try
       ignore (Lssvm.train ~kernel:Kernel.Linear ~gamma:0.0 [| [| 1.0 |] |] [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

(* --- Multiclass --- *)

let test_multiclass_blobs () =
  let pairs = blobs ~classes:4 ~per_class:20 in
  let model = Multiclass.train ~n_classes:4 ~kernel:(Kernel.Rbf 0.3) ~gamma:10.0 pairs in
  let errors = ref 0 in
  Array.iter (fun (x, y) -> if Multiclass.predict model x <> y then incr errors) pairs;
  Alcotest.(check bool) "trains on 4 classes" true
    (float_of_int !errors /. float_of_int (Array.length pairs) < 0.05)

let test_multiclass_codewords () =
  let pairs = blobs ~classes:3 ~per_class:5 in
  let model = Multiclass.train ~n_classes:3 ~kernel:Kernel.Linear ~gamma:1.0 pairs in
  Alcotest.(check (array int)) "one-vs-rest codeword" [| 1; -1; -1 |]
    (Multiclass.codeword model 0);
  Alcotest.(check int) "decision per class" 3
    (Array.length (Multiclass.decision_values model [| 0.0; 0.0 |]))

let test_multiclass_loo_matches_brute_force () =
  let pairs = blobs ~classes:3 ~per_class:6 in
  let kernel = Kernel.Rbf 0.3 and gamma = 5.0 in
  let loo = Multiclass.loo_predictions ~n_classes:3 ~kernel ~gamma pairs in
  Array.iteri
    (fun i (x, _) ->
      let rest =
        Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list pairs))
      in
      let model = Multiclass.train ~n_classes:3 ~kernel ~gamma rest in
      Alcotest.(check int) (Printf.sprintf "loo pred %d" i) (Multiclass.predict model x)
        loo.(i))
    pairs

let test_multiclass_ecoc () =
  let pairs = blobs ~classes:4 ~per_class:15 in
  let model =
    Multiclass.train ~code:(Multiclass.Dense_random { bits = 8; seed = 3 }) ~n_classes:4
      ~kernel:(Kernel.Rbf 0.3) ~gamma:10.0 pairs
  in
  let errors = ref 0 in
  Array.iter (fun (x, y) -> if Multiclass.predict model x <> y then incr errors) pairs;
  Alcotest.(check bool) "ECOC works too" true
    (float_of_int !errors /. float_of_int (Array.length pairs) < 0.1)

(* --- Metrics --- *)

let test_metrics_accuracy () =
  Alcotest.(check (float 1e-9)) "accuracy" 0.75
    (Metrics.accuracy ~pred:[| 0; 1; 2; 0 |] ~truth:[| 0; 1; 2; 1 |])

let test_metrics_rank_distribution () =
  let costs = [| [| 10.0; 20.0; 30.0 |]; [| 30.0; 10.0; 20.0 |] |] in
  let d = Metrics.rank_distribution ~pred:[| 0; 2 |] ~costs in
  Alcotest.(check (array (float 1e-9))) "half optimal half second" [| 0.5; 0.5; 0.0 |] d

let test_metrics_rank_cost_penalty () =
  let costs = [| [| 10.0; 20.0 |]; [| 40.0; 20.0 |] |] in
  let p = Metrics.rank_cost_penalty ~costs in
  Alcotest.(check (float 1e-9)) "rank0 = 1x" 1.0 p.(0);
  Alcotest.(check (float 1e-9)) "rank1 = 2x" 2.0 p.(1)

let test_metrics_cost_ratio () =
  let costs = [| [| 10.0; 15.0 |] |] in
  Alcotest.(check (float 1e-9)) "ratio" 1.5 (Metrics.mean_cost_ratio ~pred:[| 1 |] ~costs)

let test_metrics_within () =
  let costs = [| [| 100.0; 106.0 |]; [| 100.0; 120.0 |] |] in
  Alcotest.(check (float 1e-9)) "within 7%" 0.5
    (Metrics.within_of_optimal ~pred:[| 1; 1 |] ~costs 1.07)

let test_metrics_confusion () =
  let m = Metrics.confusion ~n_classes:2 ~pred:[| 0; 1; 1 |] ~truth:[| 0; 0; 1 |] in
  Alcotest.(check int) "tp class0" 1 m.(0).(0);
  Alcotest.(check int) "confused" 1 m.(0).(1);
  Alcotest.(check int) "tp class1" 1 m.(1).(1)

(* --- Mis --- *)

let test_mis_informative () =
  let labels = Array.init 200 (fun i -> i mod 2) in
  let perfect = Array.map float_of_int labels in
  let constant = Array.make 200 1.0 in
  let noise = Array.init 200 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check (float 1e-6)) "perfect feature = 1 bit" 1.0 (Mis.score perfect labels);
  Alcotest.(check (float 1e-9)) "constant = 0 bits" 0.0 (Mis.score constant labels);
  Alcotest.(check bool) "noise near 0" true (Mis.score noise labels < 0.25)

let test_mis_rank_order () =
  let labels = Array.init 100 (fun i -> i mod 2) in
  let ds =
    Dataset.create ~feature_names:[| "noise"; "perfect" |] ~n_classes:2
      (List.init 100 (fun i ->
           mk_example
             [| Rng.gaussian rng; float_of_int (i mod 2) |]
             labels.(i) [| 1.0; 1.0 |]))
  in
  let ranked = Mis.rank ds in
  Alcotest.(check int) "perfect feature first" 1 (fst ranked.(0))

(* --- Greedy selection --- *)

let test_greedy_finds_informative () =
  let ds =
    Dataset.create ~feature_names:[| "noise"; "perfect"; "constant" |] ~n_classes:2
      (List.init 60 (fun i ->
           let y = i mod 2 in
           mk_example
             [| Rng.gaussian rng; (6.0 *. float_of_int y) +. (0.1 *. Rng.gaussian rng); 1.0 |]
             y [| 1.0; 1.0 |]))
  in
  let picks =
    Greedy_select.run ~n_features:3 ~k:2 (Greedy_select.nn_training_error ds)
  in
  Alcotest.(check int) "first pick is the informative feature" 1 (fst (List.hd picks));
  Alcotest.(check bool) "error drops" true (snd (List.hd picks) < 0.2)

let test_greedy_error_monotone_interface () =
  (* run reports the error at each accepted step; the first is the best
     single feature. *)
  let errs = Hashtbl.create 4 in
  Hashtbl.replace errs [ 0 ] 0.5;
  Hashtbl.replace errs [ 1 ] 0.3;
  Hashtbl.replace errs [ 1; 0 ] 0.2;
  let error subset = Option.value (Hashtbl.find_opt errs subset) ~default:0.9 in
  let picks = Greedy_select.run ~n_features:2 ~k:2 error in
  Alcotest.(check (list (pair int (float 1e-9)))) "greedy order" [ (1, 0.3); (0, 0.2) ] picks

(* --- Lda --- *)

let test_lda_separates () =
  let pairs = blobs ~classes:2 ~per_class:40 in
  let lda = Lda.fit pairs in
  (* The first discriminant axis must separate the two blobs almost
     perfectly: project and threshold at the midpoint of class means. *)
  let proj = Array.map (fun (x, y) -> ((Lda.project lda x).(0), y)) pairs in
  let mean c =
    let vs = Array.to_list proj |> List.filter (fun (_, y) -> y = c) |> List.map fst in
    List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)
  in
  let m0 = mean 0 and m1 = mean 1 in
  let mid = (m0 +. m1) /. 2.0 in
  let errors = ref 0 in
  Array.iter
    (fun (v, y) ->
      let side = if (v -. mid) *. (m1 -. m0) > 0.0 then 1 else 0 in
      if side <> y then incr errors)
    proj;
  Alcotest.(check bool) "projection separates" true
    (float_of_int !errors /. float_of_int (Array.length proj) < 0.05)

let test_lda_dims () =
  let pairs = blobs ~classes:3 ~per_class:10 in
  let lda = Lda.fit ~dims:2 pairs in
  Alcotest.(check int) "two axes" 2 (Array.length (Lda.axes lda));
  Alcotest.(check int) "projection is 2-D" 2 (Array.length (Lda.project lda (fst pairs.(0))))

(* --- Decision tree --- *)

let test_tree_learns_threshold () =
  let pairs =
    Array.init 100 (fun i ->
        let y = if i < 50 then 0 else 1 in
        ([| (if y = 0 then 1.0 else 5.0) +. (0.3 *. Rng.gaussian rng) |], y))
  in
  let tree = Decision_tree.train ~n_classes:2 pairs in
  Alcotest.(check int) "left" 0 (Decision_tree.predict tree [| 1.0 |]);
  Alcotest.(check int) "right" 1 (Decision_tree.predict tree [| 5.0 |]);
  Alcotest.(check bool) "small tree" true (Decision_tree.leaves tree <= 4)

let test_tree_depth_bound () =
  let pairs = blobs ~classes:4 ~per_class:30 in
  let tree = Decision_tree.train ~max_depth:3 ~n_classes:4 pairs in
  Alcotest.(check bool) "depth bounded" true (Decision_tree.depth tree <= 4)

(* --- QCheck --- *)

let prop_scale_inverse_consistent =
  QCheck.Test.make ~count:50 ~name:"scaled columns are z-scored"
    QCheck.(list_of_size Gen.(3 -- 20) (pair (float_bound_exclusive 10.0) bool))
    (fun rows ->
      let ds =
        Dataset.create ~feature_names:[| "x" |] ~n_classes:2
          (List.map
             (fun (v, b) -> mk_example [| v |] (if b then 1 else 0) [| 1.0; 1.0 |])
             rows)
      in
      let scaled = Scale.apply (Scale.fit ds) ds in
      let col = Dataset.feature_column scaled 0 in
      Float.abs (Stats.mean col) < 1e-6)

let prop_knn_predicts_training_label_radius0 =
  QCheck.Test.make ~count:50 ~name:"1-NN classifies a training point as itself"
    QCheck.(list_of_size Gen.(2 -- 20) (pair (float_bound_exclusive 100.0) (0 -- 3)))
    (fun rows ->
      (* Distinct points: de-duplicate by x. *)
      let rows = List.sort_uniq (fun (a, _) (b, _) -> compare a b) rows in
      if List.length rows < 2 then true
      else begin
        let pairs = Array.of_list (List.map (fun (x, y) -> ([| x |], y)) rows) in
        let knn = Knn.train ~radius:0.0 ~n_classes:4 pairs in
        Array.for_all (fun (x, y) -> Knn.predict knn x = y) pairs
      end)

let base_tests =
  [
    ("dataset create checks", `Quick, test_dataset_create_checks);
    ("dataset select features", `Quick, test_dataset_select_features);
    ("dataset groups", `Quick, test_dataset_groups);
    ("dataset csv roundtrip", `Quick, test_dataset_csv_roundtrip);
    ("scale zscore", `Quick, test_scale_zscore);
    ("scale constant", `Quick, test_scale_constant_feature);
    ("knn separable", `Quick, test_knn_separable);
    ("knn 1nn fallback", `Quick, test_knn_1nn_fallback);
    ("knn confidence", `Quick, test_knn_confidence);
    ("knn majority", `Quick, test_knn_majority_vote);
    ("kernel values", `Quick, test_kernel_values);
    ("kernel gram", `Quick, test_kernel_gram_symmetric);
    ("lssvm separable", `Quick, test_lssvm_separable);
    ("lssvm loo = brute force", `Quick, test_lssvm_loo_matches_brute_force);
    ("lssvm batch", `Quick, test_lssvm_decision_batch);
    ("lssvm gamma", `Quick, test_lssvm_gamma_positive);
    ("multiclass blobs", `Quick, test_multiclass_blobs);
    ("multiclass codewords", `Quick, test_multiclass_codewords);
    ("multiclass loo = brute force", `Quick, test_multiclass_loo_matches_brute_force);
    ("multiclass ecoc", `Quick, test_multiclass_ecoc);
    ("metrics accuracy", `Quick, test_metrics_accuracy);
    ("metrics rank distribution", `Quick, test_metrics_rank_distribution);
    ("metrics rank cost penalty", `Quick, test_metrics_rank_cost_penalty);
    ("metrics cost ratio", `Quick, test_metrics_cost_ratio);
    ("metrics within", `Quick, test_metrics_within);
    ("metrics confusion", `Quick, test_metrics_confusion);
    ("mis informative", `Quick, test_mis_informative);
    ("mis rank order", `Quick, test_mis_rank_order);
    ("greedy informative", `Quick, test_greedy_finds_informative);
    ("greedy interface", `Quick, test_greedy_error_monotone_interface);
    ("lda separates", `Quick, test_lda_separates);
    ("lda dims", `Quick, test_lda_dims);
    ("tree threshold", `Quick, test_tree_learns_threshold);
    ("tree depth bound", `Quick, test_tree_depth_bound);
    QCheck_alcotest.to_alcotest prop_scale_inverse_consistent;
    QCheck_alcotest.to_alcotest prop_knn_predicts_training_label_radius0;
  ]

let _ = ()

(* --- Loocv (generic driver) --- *)

let test_loocv_generic_matches_knn_fast_path () =
  let pairs = blobs ~classes:2 ~per_class:10 in
  let fast = Knn.loo_predictions (Knn.train ~radius:0.8 ~n_classes:2 pairs) in
  let generic =
    Loocv.run
      ~train:(Knn.train ~radius:0.8 ~n_classes:2)
      ~predict:Knn.predict pairs
  in
  Alcotest.(check (array int)) "generic = classifier shortcut" fast generic

let test_loocv_accuracy_bounds () =
  let pairs = blobs ~classes:2 ~per_class:15 in
  let acc =
    Loocv.accuracy ~train:(Decision_tree.train ~n_classes:2)
      ~predict:Decision_tree.predict pairs
  in
  Alcotest.(check bool) "separable blobs classified" true (acc > 0.85)

let test_loocv_grouped_excludes_group () =
  (* Two groups with opposite labels at the same point: a grouped LOO
     prediction can only come from the other group, so it must be wrong. *)
  let pairs = [| ([| 0.0 |], 0); ([| 0.1 |], 0); ([| 0.0 |], 1); ([| 0.1 |], 1) |] in
  let groups = [| "a"; "a"; "b"; "b" |] in
  let preds =
    Loocv.grouped ~groups
      ~train:(Knn.train ~radius:1.0 ~n_classes:2)
      ~predict:Knn.predict pairs
  in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "cross-group prediction flips" true (p <> snd pairs.(i)))
    preds

let loocv_tests =
  [
    ("loocv generic = fast path", `Quick, test_loocv_generic_matches_knn_fast_path);
    ("loocv accuracy", `Quick, test_loocv_accuracy_bounds);
    ("loocv grouped", `Quick, test_loocv_grouped_excludes_group);
  ]


(* --- Kernel string roundtrip --- *)

let test_kernel_of_string_roundtrip () =
  List.iter
    (fun k ->
      match Kernel.of_string (Kernel.name k) with
      | Some k' -> Alcotest.(check string) "roundtrip" (Kernel.name k) (Kernel.name k')
      | None -> Alcotest.failf "failed to parse %s" (Kernel.name k))
    [ Kernel.Linear; Kernel.Rbf 0.03; Kernel.Rbf 12.5; Kernel.Poly { degree = 3; bias = 0.5 } ];
  Alcotest.(check bool) "garbage rejected" true (Kernel.of_string "quux(1)" = None)

let kernel_string_tests =
  [ ("kernel of_string", `Quick, test_kernel_of_string_roundtrip) ]

(* --- Pairwise engine --- *)

(* Blobs as a Dataset: feature 0 carries the classes, the rest is noise. *)
let blob_dataset ~classes ~per_class ~d =
  Dataset.create
    ~feature_names:(Array.init d (Printf.sprintf "f%d"))
    ~n_classes:classes
    (List.init (classes * per_class) (fun i ->
         let c = i mod classes in
         let features =
           Array.init d (fun j ->
               if j = 0 then (6.0 *. float_of_int c) +. Rng.gaussian rng
               else Rng.gaussian rng)
         in
         mk_example features c (Array.make classes 1.0)))

let test_points_matrix () =
  let ds = tiny_dataset () in
  let m, labels = Dataset.points_matrix ds in
  Alcotest.(check int) "rows" 3 (Mat.rows m);
  Alcotest.(check int) "cols" 2 (Mat.cols m);
  Alcotest.(check (array (float 0.0))) "row 1" [| 1.0; 3.0 |] (Mat.row m 1);
  Alcotest.(check (array int)) "labels" [| 0; 1; 1 |] labels

let test_pairwise_rbf_gram_matches_kernel () =
  (* With every feature committed in natural order, the triangle's
     accumulation order equals Vec.dist2's summation order, so the RBF
     Gram is bit-identical to Kernel.apply. *)
  let ds = blob_dataset ~classes:2 ~per_class:6 ~d:3 in
  let engine, _ = Pairwise.of_dataset ds in
  List.iter (Pairwise.commit engine) [ 0; 1; 2 ];
  let g = Pairwise.rbf_gram ~gamma:0.4 engine in
  let n = Dataset.size ds in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let direct =
        Kernel.apply (Kernel.Rbf 0.4) ds.Dataset.examples.(i).Dataset.features
          ds.Dataset.examples.(k).Dataset.features
      in
      Alcotest.(check (float 0.0)) (Printf.sprintf "gram %d,%d" i k) direct (Mat.get g i k)
    done
  done

let test_nn_run_matches_generic () =
  let ds = blob_dataset ~classes:3 ~per_class:12 ~d:5 in
  let reference =
    Greedy_select.run ~n_features:5 ~k:3 (Greedy_select.nn_training_error ds)
  in
  Alcotest.(check (list (pair int (float 0.0)))) "jobs 1" reference
    (Greedy_select.nn_run ~jobs:1 ~k:3 ds);
  Alcotest.(check (list (pair int (float 0.0)))) "jobs 4" reference
    (Greedy_select.nn_run ~jobs:4 ~k:3 ds)

let test_svm_run_matches_generic () =
  let ds = blob_dataset ~classes:2 ~per_class:10 ~d:4 in
  let kernel = Kernel.Rbf 0.5 and gamma = 16.0 in
  let reference =
    Greedy_select.run ~n_features:4 ~k:2
      (Greedy_select.svm_training_error ~kernel ~gamma ~max_examples:400 ds)
  in
  Alcotest.(check (list (pair int (float 1e-9)))) "jobs 1" reference
    (Greedy_select.svm_run ~jobs:1 ~kernel ~gamma ~max_examples:400 ~k:2 ds);
  Alcotest.(check (list (pair int (float 1e-9)))) "jobs 4" reference
    (Greedy_select.svm_run ~jobs:4 ~kernel ~gamma ~max_examples:400 ~k:2 ds)

let test_greedy_telemetry_rounds () =
  let ds = blob_dataset ~classes:2 ~per_class:8 ~d:4 in
  let sink = Telemetry.create () in
  ignore (Greedy_select.nn_run ~telemetry:sink ~k:2 ds);
  Alcotest.(check int) "round 1 recorded" 1 (Telemetry.calls sink ~pass:"greedy.nn[round 1]");
  Alcotest.(check int) "round 1 candidates" 4
    (Telemetry.counter sink ~pass:"greedy.nn[round 1]" "candidates");
  Alcotest.(check int) "round 2 candidates" 3
    (Telemetry.counter sink ~pass:"greedy.nn[round 2]" "candidates")

let test_loo_jobs_invariant () =
  let pairs = blobs ~classes:3 ~per_class:15 in
  let knn = Knn.train ~radius:0.8 ~n_classes:3 pairs in
  Alcotest.(check (array int)) "knn loo jobs 1 = jobs 4"
    (Knn.loo_predictions ~jobs:1 knn)
    (Knn.loo_predictions ~jobs:4 knn);
  let small = blobs ~classes:3 ~per_class:6 in
  let loo jobs =
    Multiclass.loo_predictions ~jobs ~n_classes:3 ~kernel:(Kernel.Rbf 0.3) ~gamma:5.0 small
  in
  Alcotest.(check (array int)) "multiclass loo jobs 1 = jobs 4" (loo 1) (loo 4)

let test_training_predictions_matches_predict () =
  let pairs = blobs ~classes:3 ~per_class:8 in
  let kernel = Kernel.Rbf 0.4 and gamma = 5.0 in
  let gram = Kernel.gram_matrix kernel (Mat.of_rows (Array.map fst pairs)) in
  let labels = Array.map snd pairs in
  let preds = Multiclass.training_predictions ~n_classes:3 ~gamma ~gram labels in
  let model = Multiclass.train ~n_classes:3 ~kernel ~gamma pairs in
  Array.iteri
    (fun i (x, _) ->
      Alcotest.(check int) (Printf.sprintf "pred %d" i) (Multiclass.predict model x)
        preds.(i))
    pairs

let pairwise_case_gen =
  QCheck.Gen.(
    let* n = 2 -- 8 in
    let* d = 1 -- 5 in
    let* entries = array_size (return (n * d)) (float_bound_exclusive 4.0) in
    return (n, d, entries))

let prop_pairwise_incremental_exact =
  QCheck.Test.make ~count:100 ~name:"incremental dist2 = direct recomputation"
    (QCheck.make pairwise_case_gen)
    (fun (n, d, entries) ->
      let m = Mat.init n d (fun i j -> entries.((i * d) + j) -. 2.0) in
      let engine = Pairwise.create m in
      let chosen = ref [] in
      let ok = ref true in
      let proj subset r = Array.of_list (List.map (fun j -> Mat.get m r j) subset) in
      for f = 0 to d - 1 do
        let subset = List.rev (f :: !chosen) in
        for i = 0 to n - 1 do
          for k = i + 1 to n - 1 do
            let direct = Vec.dist2 (proj subset i) (proj subset k) in
            if not (Float.equal direct (Pairwise.dist2 ~cand:f engine i k)) then ok := false
          done
        done;
        Pairwise.commit engine f;
        chosen := f :: !chosen
      done;
      (* fully committed triangle = dist2 over the whole rows *)
      for i = 0 to n - 1 do
        for k = i + 1 to n - 1 do
          if not (Float.equal (Vec.dist2 (Mat.row m i) (Mat.row m k)) (Pairwise.dist2 engine i k))
          then ok := false
        done
      done;
      !ok)

(* --- Incremental (online-training) identities --- *)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v) a b

(* A reproducible pool of points with graded per-feature signal, so greedy
   selection has a stable feature ordering across prefixes. *)
let pool_points ~n ~d ~classes seed =
  let st = Random.State.make [| seed |] in
  let labels = Array.init n (fun _ -> Random.State.int st classes) in
  let points =
    Array.map
      (fun l ->
        Array.init d (fun j ->
            (float_of_int l *. 0.8 *. float_of_int j /. float_of_int d)
            +. Random.State.float st 2.0 -. 1.0))
      labels
  in
  (points, labels)

let pool_dataset ~classes ~d points labels n =
  Dataset.create
    ~feature_names:(Array.init d (Printf.sprintf "f%d"))
    ~n_classes:classes
    (List.init n (fun i -> mk_example (Array.copy points.(i)) labels.(i) (Array.make classes 1.0)))

let test_pairwise_append_matches_scratch () =
  let d = 5 in
  let points, labels = pool_points ~n:14 ~d ~classes:3 101 in
  let flat k = Mat.init k d (fun i j -> points.(i).(j)) in
  let engine = Pairwise.create (flat 11) in
  List.iter (Pairwise.commit engine) [ 2; 0 ];
  for i = 11 to 13 do
    Pairwise.append engine points.(i)
  done;
  let scratch = Pairwise.create (flat 14) in
  List.iter (Pairwise.commit scratch) [ 2; 0 ];
  (* bit-identical triangles: every pairwise distance, every candidate
     count, and the RBF Gram agree with the from-scratch engine *)
  for i = 0 to 13 do
    for k = i + 1 to 13 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "dist2 %d,%d" i k)
        (Pairwise.dist2 scratch i k) (Pairwise.dist2 engine i k)
    done
  done;
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "count cand %d" c)
        (Pairwise.nn_loo_error_count ~cand:c scratch ~labels)
        (Pairwise.nn_loo_error_count ~cand:c engine ~labels))
    [ 1; 3; 4 ];
  Alcotest.(check int) "count committed"
    (Pairwise.nn_loo_error_count scratch ~labels)
    (Pairwise.nn_loo_error_count engine ~labels);
  Alcotest.(check bool) "rbf gram bits" true
    (bits_equal
       (Mat.data (Pairwise.rbf_gram ~gamma:0.7 scratch))
       (Mat.data (Pairwise.rbf_gram ~gamma:0.7 engine)))

let test_pairwise_nearest_out () =
  let d = 4 in
  let points, labels = pool_points ~n:10 ~d ~classes:2 102 in
  let engine = Pairwise.create (Mat.init 10 d (fun i j -> points.(i).(j))) in
  Pairwise.commit engine 1;
  let out = Array.make 10 nan in
  ignore (Pairwise.nn_loo_error_count ~cand:3 ~nearest_out:out engine ~labels);
  for i = 0 to 9 do
    let m = ref infinity in
    for k = 0 to 9 do
      if k <> i then m := Float.min !m (Pairwise.dist2 ~cand:3 engine i k)
    done;
    Alcotest.(check (float 0.0)) (Printf.sprintf "nearest %d" i) !m out.(i)
  done

let test_knn_append_matches_retrain () =
  let points, labels = pool_points ~n:30 ~d:4 ~classes:3 103 in
  let pair i = (points.(i), labels.(i)) in
  let grown = Knn.train ~radius:0.6 ~n_classes:3 (Array.init 22 pair) in
  for i = 22 to 29 do
    Knn.append grown (pair i)
  done;
  let scratch = Knn.train ~radius:0.6 ~n_classes:3 (Array.init 30 pair) in
  Alcotest.(check (array int)) "loo predictions" (Knn.loo_predictions scratch)
    (Knn.loo_predictions grown);
  let r1, c1, p1 = Knn.export grown and r2, c2, p2 = Knn.export scratch in
  Alcotest.(check bool) "export equal" true
    (r1 = r2 && c1 = c2
    && Array.for_all2 (fun (x, l) (y, m) -> l = m && bits_equal x y) p1 p2);
  let probe = Array.make 4 0.25 in
  Alcotest.(check int) "predict agrees" (Knn.predict scratch probe) (Knn.predict grown probe)

let test_lssvm_system_append_matches_train_multi () =
  let kernel = Kernel.Rbf 0.5 and gamma = 8.0 in
  let points, labels = pool_points ~n:12 ~d:4 ~classes:2 104 in
  let targets n =
    Array.init 2 (fun c ->
        Array.init n (fun i -> if labels.(i) = c then 1.0 else -1.0))
  in
  let sys = Lssvm.system_of_points ~kernel ~gamma (Array.sub points 0 9) in
  for i = 9 to 11 do
    Lssvm.system_append sys points.(i)
  done;
  let inc = Lssvm.system_train sys (targets 12) in
  let batch = Lssvm.train_multi ~kernel ~gamma points (targets 12) in
  Alcotest.(check bool) "machines bit-identical" true
    (Array.for_all2 (fun a b -> bits_equal (Lssvm.export a) (Lssvm.export b)) inc batch);
  (* downdate is the exact inverse of append *)
  for _ = 1 to 3 do
    Lssvm.system_remove_last sys
  done;
  let back = Lssvm.system_train sys (targets 9) in
  let batch9 = Lssvm.train_multi ~kernel ~gamma (Array.sub points 0 9) (targets 9) in
  Alcotest.(check bool) "downdate bit-identical" true
    (Array.for_all2 (fun a b -> bits_equal (Lssvm.export a) (Lssvm.export b)) back batch9)

let test_multiclass_train_system_matches_train () =
  let kernel = Kernel.Rbf 0.4 and gamma = 6.0 in
  let points, labels = pool_points ~n:18 ~d:3 ~classes:3 105 in
  let pairs = Array.init 18 (fun i -> (points.(i), labels.(i))) in
  let sys = Lssvm.system_of_points ~kernel ~gamma (Array.sub points 0 13) in
  for i = 13 to 17 do
    Lssvm.system_append sys points.(i)
  done;
  let via_system = Multiclass.train_system ~n_classes:3 sys labels in
  let batch = Multiclass.train ~n_classes:3 ~kernel ~gamma pairs in
  let cw1, m1 = Multiclass.export via_system and cw2, m2 = Multiclass.export batch in
  Alcotest.(check bool) "codewords equal" true (cw1 = cw2);
  Alcotest.(check bool) "machines bit-identical" true
    (Array.for_all2 (fun a b -> bits_equal (Lssvm.export a) (Lssvm.export b)) m1 m2)

let test_warm_nn_run_matches_batch () =
  let d = 6 and classes = 3 and k = 3 in
  let n0 = 40 and step = 5 and gens = 3 in
  let points, labels = pool_points ~n:(n0 + (step * gens)) ~d ~classes 106 in
  let cache = Greedy_select.Warm.create () in
  for g = 0 to gens do
    let n = n0 + (g * step) in
    let ds = pool_dataset ~classes ~d points labels n in
    let warm = Greedy_select.Warm.nn_run ~k cache ds in
    let batch = Greedy_select.nn_run ~k ds in
    Alcotest.(check (list (pair int (float 0.0))))
      (Printf.sprintf "gen %d picks" g)
      batch warm
  done;
  Alcotest.(check int) "one prime" 1 (Greedy_select.Warm.primes cache);
  Alcotest.(check int) "extending generations" gens (Greedy_select.Warm.generations cache);
  Alcotest.(check int) "round accounting" ((gens + 1) * k)
    (Greedy_select.Warm.certified_rounds cache + Greedy_select.Warm.full_rounds cache)

let test_warm_nn_run_reprimes_on_mutation () =
  (* A dataset that is NOT a bitwise extension of the cached one (same
     size, one perturbed feature) must fall back to a full re-prime and
     still match the batch output. *)
  let d = 5 and classes = 2 and k = 2 in
  let points, labels = pool_points ~n:24 ~d ~classes 107 in
  let cache = Greedy_select.Warm.create () in
  let ds = pool_dataset ~classes ~d points labels 24 in
  ignore (Greedy_select.Warm.nn_run ~k cache ds);
  points.(3).(2) <- points.(3).(2) +. 0.5;
  let mutated = pool_dataset ~classes ~d points labels 24 in
  let warm = Greedy_select.Warm.nn_run ~k cache mutated in
  let batch = Greedy_select.nn_run ~k mutated in
  Alcotest.(check (list (pair int (float 0.0)))) "mutated picks" batch warm;
  Alcotest.(check int) "re-primed" 2 (Greedy_select.Warm.primes cache);
  (* shrinking is not an extension either *)
  let shrunk = pool_dataset ~classes ~d points labels 20 in
  let warm' = Greedy_select.Warm.nn_run ~k cache shrunk in
  Alcotest.(check (list (pair int (float 0.0)))) "shrunk picks"
    (Greedy_select.nn_run ~k shrunk) warm';
  Alcotest.(check int) "re-primed again" 3 (Greedy_select.Warm.primes cache)

let prop_warm_equals_batch =
  (* The certification contract across random growth schedules: warm
     output is identical to from-scratch output at every generation. *)
  QCheck.Test.make ~count:25 ~name:"warm greedy = batch greedy across generations"
    QCheck.(
      make
        Gen.(
          let* seed = 0 -- 1000 in
          let* n0 = 12 -- 30 in
          let* steps = list_size (1 -- 3) (1 -- 6) in
          return (seed, n0, steps)))
    (fun (seed, n0, steps) ->
      let d = 5 and classes = 3 and k = 3 in
      let n_max = n0 + List.fold_left ( + ) 0 steps in
      let points, labels = pool_points ~n:n_max ~d ~classes (1000 + seed) in
      let cache = Greedy_select.Warm.create () in
      let check n =
        let ds = pool_dataset ~classes ~d points labels n in
        Greedy_select.Warm.nn_run ~k cache ds = Greedy_select.nn_run ~k ds
      in
      let n = ref n0 in
      check !n
      && List.for_all
           (fun s ->
             n := !n + s;
             check !n)
           steps)

let incremental_tests =
  [
    ("pairwise append = scratch", `Quick, test_pairwise_append_matches_scratch);
    ("pairwise nearest_out", `Quick, test_pairwise_nearest_out);
    ("knn append = retrain", `Quick, test_knn_append_matches_retrain);
    ("lssvm system append = train_multi", `Quick, test_lssvm_system_append_matches_train_multi);
    ("multiclass train_system = train", `Quick, test_multiclass_train_system_matches_train);
    ("warm greedy = batch greedy", `Quick, test_warm_nn_run_matches_batch);
    ("warm greedy re-primes", `Quick, test_warm_nn_run_reprimes_on_mutation);
    QCheck_alcotest.to_alcotest prop_warm_equals_batch;
  ]

let pairwise_tests =
  [
    ("dataset points matrix", `Quick, test_points_matrix);
    ("pairwise rbf gram = kernel apply", `Quick, test_pairwise_rbf_gram_matches_kernel);
    ("greedy nn_run = generic run", `Quick, test_nn_run_matches_generic);
    ("greedy svm_run = generic run", `Quick, test_svm_run_matches_generic);
    ("greedy telemetry rounds", `Quick, test_greedy_telemetry_rounds);
    ("loo jobs invariance", `Quick, test_loo_jobs_invariant);
    ("training predictions = predict", `Quick, test_training_predictions_matches_predict);
    QCheck_alcotest.to_alcotest prop_pairwise_incremental_exact;
  ]

(* --- Mlp --- *)

let mlp_flat m =
  let _, ws, bs = Mlp.export m in
  Array.concat (Array.to_list ws @ Array.to_list bs)

(* Blob inputs are unscaled (the training pipeline z-scores first), so a
   gentler learning rate than the production default keeps tanh units out
   of saturation. *)
let small_hyper =
  {
    Mlp.default_hyper with
    Mlp.hidden = [| 8 |];
    epochs = 60;
    batch = 16;
    patience = 60;
    lr = 0.02;
  }

(* Central finite differences vs the analytic gradient, on random small
   nets with random parameters and inputs.  The tolerance is relative:
   second-order truncation error scales with the magnitudes involved. *)
let prop_mlp_gradient_check =
  QCheck.Test.make ~count:40 ~name:"mlp analytic gradient = finite differences"
    QCheck.(
      make
        Gen.(
          let* seed = 0 -- 10_000 in
          let* d = 2 -- 5 in
          let* layers = 1 -- 2 in
          let* widths = list_size (return layers) (2 -- 6) in
          let* k = 2 -- 5 in
          let* y = 0 -- (k - 1) in
          let* x = list_size (return d) (float_bound_exclusive 2.0) in
          return (seed, d, widths, k, y, x)))
    (fun (seed, d, widths, k, y, x) ->
      let dims = Array.concat [ [| d |]; Array.of_list widths; [| k |] ] in
      let net = Mlp.init ~seed ~dims in
      (* Perturb away from the symmetric zero-bias start so the check also
         covers non-trivial bias gradients. *)
      let r = Rng.derive seed "grad-check" 0 in
      for p = 0 to Mlp.param_count net - 1 do
        Mlp.set_param net p (Mlp.get_param net p +. (0.2 *. Rng.gaussian r))
      done;
      let x = Array.of_list (List.map (fun v -> v -. 1.0) x) in
      let analytic = Mlp.example_gradient net x y in
      let eps = 1e-3 in
      let ok = ref true in
      for p = 0 to Mlp.param_count net - 1 do
        let saved = Mlp.get_param net p in
        Mlp.set_param net p (saved +. eps);
        let up = Mlp.example_loss net x y in
        Mlp.set_param net p (saved -. eps);
        let down = Mlp.example_loss net x y in
        Mlp.set_param net p saved;
        let fd = (up -. down) /. (2.0 *. eps) in
        let a = analytic.(p) in
        if Float.abs (a -. fd) > 1e-5 +. (1e-3 *. Float.max (Float.abs a) (Float.abs fd))
        then ok := false
      done;
      !ok)

let test_mlp_loss_decreases_on_separable () =
  (* Separable blobs: training must reduce the loss well below the fresh
     net's, and the trained net must classify its own training set. *)
  let pairs = blobs ~classes:3 ~per_class:20 in
  let d = Array.length (fst pairs.(0)) in
  let hyper = { small_hyper with Mlp.holdout = 0.0 } in
  let fresh = Mlp.init ~seed:11 ~dims:[| d; 8; 3 |] in
  let fresh_loss =
    Array.fold_left (fun acc (x, y) -> acc +. Mlp.example_loss fresh x y) 0.0 pairs
    /. float_of_int (Array.length pairs)
  in
  let m, stats = Mlp.train ~seed:11 ~hyper ~n_classes:3 pairs in
  Alcotest.(check bool) "loss drops" true (stats.Mlp.final_loss < 0.5 *. fresh_loss);
  let errors = ref 0 in
  Array.iter (fun (x, y) -> if Mlp.predict m x <> y then incr errors) pairs;
  Alcotest.(check bool) "separable blobs learned" true
    (float_of_int !errors /. float_of_int (Array.length pairs) < 0.1)

let test_mlp_same_seed_bit_identical () =
  let pairs = blobs ~classes:3 ~per_class:15 in
  let train () = fst (Mlp.train ~seed:5 ~hyper:small_hyper ~n_classes:3 pairs) in
  Alcotest.(check bool) "same seed, same bits" true
    (bits_equal (mlp_flat (train ())) (mlp_flat (train ())));
  let other = fst (Mlp.train ~seed:6 ~hyper:small_hyper ~n_classes:3 pairs) in
  Alcotest.(check bool) "different seed differs" false
    (bits_equal (mlp_flat (train ())) (mlp_flat other))

let test_mlp_jobs_bit_identical () =
  let pairs = blobs ~classes:4 ~per_class:12 in
  let train jobs = fst (Mlp.train ~jobs ~seed:9 ~hyper:small_hyper ~n_classes:4 pairs) in
  let m1 = train 1 and m4 = train 4 in
  Alcotest.(check bool) "j1 = j4 weights" true (bits_equal (mlp_flat m1) (mlp_flat m4));
  Array.iter
    (fun (x, _) ->
      Alcotest.(check int) "j1 = j4 prediction" (Mlp.predict m1 x) (Mlp.predict m4 x);
      Alcotest.(check bool) "j1 = j4 logits" true
        (bits_equal (Mlp.decision_values m1 x) (Mlp.decision_values m4 x)))
    pairs

let test_mlp_holdout_append_order_stable () =
  (* Holdout membership is content-keyed: permuting the dataset must not
     move any example across the split. *)
  let pairs = blobs ~classes:3 ~per_class:20 in
  let member (x, y) = Mlp.holdout_member ~seed:7 ~holdout:0.25 x y in
  let forward = Array.map member pairs in
  let reversed = Array.map member (Array.of_list (List.rev (Array.to_list pairs))) in
  Alcotest.(check (array bool)) "membership survives reversal" forward
    (Array.of_list (List.rev (Array.to_list reversed)));
  let frac =
    let m = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 forward in
    float_of_int m /. float_of_int (Array.length forward)
  in
  Alcotest.(check bool) "roughly the requested fraction" true (frac > 0.05 && frac < 0.5)

let test_mlp_export_import_roundtrip () =
  let pairs = blobs ~classes:3 ~per_class:10 in
  let m = fst (Mlp.train ~seed:3 ~hyper:small_hyper ~n_classes:3 pairs) in
  let dims, weights, biases = Mlp.export m in
  let m' = Mlp.import ~dims ~weights ~biases in
  Alcotest.(check bool) "round-trip bits" true (bits_equal (mlp_flat m) (mlp_flat m'));
  Array.iter
    (fun (x, _) ->
      Alcotest.(check bool) "round-trip logits" true
        (bits_equal (Mlp.decision_values m x) (Mlp.decision_values m' x)))
    pairs;
  Alcotest.(check bool) "bad shape rejected" true
    (try
       ignore (Mlp.import ~dims:[| 2; 3 |] ~weights:[| [| 1.0 |] |] ~biases:[| [| 0.0 |] |]);
       false
     with Invalid_argument _ -> true)

let test_mlp_input_validation () =
  Alcotest.(check bool) "empty training set rejected" true
    (try
       ignore (Mlp.train ~seed:1 ~hyper:small_hyper ~n_classes:2 [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out-of-range label rejected" true
    (try
       ignore (Mlp.train ~seed:1 ~hyper:small_hyper ~n_classes:2 [| ([| 0.0 |], 5) |]);
       false
     with Invalid_argument _ -> true)

let test_mlp_predict_is_argmax () =
  let pairs = blobs ~classes:4 ~per_class:8 in
  let m = fst (Mlp.train ~seed:2 ~hyper:small_hyper ~n_classes:4 pairs) in
  Alcotest.(check int) "n_classes" 4 (Mlp.n_classes m);
  Array.iter
    (fun (x, _) ->
      let logits = Mlp.decision_values m x in
      Alcotest.(check int) "logit count" 4 (Array.length logits);
      let best = ref 0 in
      Array.iteri (fun i v -> if v > logits.(!best) then best := i) logits;
      Alcotest.(check int) "predict = argmax" !best (Mlp.predict m x))
    pairs

let mlp_tests =
  [
    ("mlp loss decreases on separable data", `Quick, test_mlp_loss_decreases_on_separable);
    ("mlp same seed bit-identical", `Quick, test_mlp_same_seed_bit_identical);
    ("mlp j1 = j4 bit-identical", `Quick, test_mlp_jobs_bit_identical);
    ("mlp holdout append-order stable", `Quick, test_mlp_holdout_append_order_stable);
    ("mlp export/import roundtrip", `Quick, test_mlp_export_import_roundtrip);
    ("mlp input validation", `Quick, test_mlp_input_validation);
    ("mlp predict = argmax", `Quick, test_mlp_predict_is_argmax);
    QCheck_alcotest.to_alcotest prop_mlp_gradient_check;
  ]

let suite =
  base_tests @ loocv_tests @ kernel_string_tests @ pairwise_tests @ incremental_tests
  @ mlp_tests
